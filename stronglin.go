// Package stronglin is a Go implementation of "Strong Linearizability using
// Primitives with Consensus Number 2" (Attiya, Castañeda, Enea; PODC 2024).
//
// It provides wait-free and lock-free STRONGLY-LINEARIZABLE concurrent
// objects built only from primitives with consensus number 2 (fetch&add,
// test&set), per the paper's constructions:
//
//   - MaxRegister — wait-free, from one fetch&add register (Theorem 1)
//   - Snapshot — wait-free n-component atomic snapshot, from one fetch&add
//     register (Theorem 2)
//   - Counter, LogicalClock, GSet and any other "simple type" — wait-free,
//     via Algorithm 1 over the snapshot (Theorems 3–4)
//   - ReadableTAS — wait-free readable test&set, from plain test&set
//     (Theorem 5)
//   - MultiShotTAS — wait-free readable multi-shot test&set, from test&set
//     and a max register (Theorem 6, Corollary 7)
//   - FetchInc — lock-free readable fetch&increment, from test&set
//     (Theorem 9)
//   - Set — lock-free set with put/take, from test&set (Algorithm 2,
//     Theorem 10)
//
// Strong linearizability (Golab–Higham–Woelfel) strengthens linearizability
// with prefix-closure of the linearization function; it is exactly what is
// needed for concurrent objects to preserve hyperproperties — e.g. the
// probability distributions of randomized algorithms against a strong
// adversary. Queues and stacks (and their relaxed variants) provably have NO
// lock-free strongly-linearizable implementations from these primitives
// (the paper's Theorem 17/19); this library reproduces that side too, as
// executable experiments (see internal/agreement and internal/baseline).
//
// Every construction is verified in-repo by an exhaustive
// strong-linearizability model checker over all interleavings of bounded
// configurations (internal/sim + internal/history), plus randomized
// linearizability stress tests under real goroutine concurrency.
//
// # Quick start
//
//	w := stronglin.NewWorld()
//	m := stronglin.NewMaxRegister(w, 4) // 4 processes
//	// from goroutine p (0..3):
//	m.WriteMax(stronglin.Thread(p), 42)
//	v := m.ReadMax(stronglin.Thread(p))
//
// Operations take an explicit Thread identifying the calling process in
// [0, n); the per-process lanes of the fetch&add constructions depend on it.
// Callers that cannot dedicate one goroutine per process identity — servers,
// worker pools — lease identities from a Pool instead:
//
//	w := stronglin.NewWorld()
//	c := stronglin.NewShardedCounter(w, 8, 4) // 8 lanes, 4 shards
//	p := stronglin.NewPool(w, 8)
//	// from any goroutine:
//	p.With(func(t stronglin.Thread) { c.Inc(t) })
//
// The Sharded* objects stripe monotone writes across independent fetch&add
// cores for multicore throughput (internal/shard documents — and
// model-checks — why the combining reads remain strongly linearizable), and
// cmd/slserve fronts the whole stack with HTTP.
package stronglin

import (
	"fmt"

	"stronglin/internal/adversary"
	"stronglin/internal/core"
	"stronglin/internal/interleave"
	"stronglin/internal/keyed"
	"stronglin/internal/migrate"
	"stronglin/internal/obs"
	"stronglin/internal/pool"
	"stronglin/internal/prim"
	"stronglin/internal/shard"
)

// Thread identifies a process. Pass Thread(p) with p in [0, n) consistently
// from the goroutine acting as process p.
type Thread = prim.RealThread

// World allocates the shared base objects of constructions. One World per
// object family; names of base objects must be unique within it.
type World = prim.RealWorld

// NewWorld returns a world whose primitives are backed by sync/atomic.
func NewWorld() *World { return prim.NewRealWorld() }

// MaxRegister is the paper's Theorem 1 object: a wait-free
// strongly-linearizable max register from a single fetch&add register.
type MaxRegister = core.FAMaxRegister

// NewMaxRegister builds a max register for n processes.
func NewMaxRegister(w *World, n int) *MaxRegister {
	return core.NewFAMaxRegister(w, "stronglin.maxreg", n)
}

// Snapshot is the paper's Theorem 2 object: a wait-free
// strongly-linearizable n-component single-writer atomic snapshot from a
// single fetch&add register. Component i is written by Thread(i).
type Snapshot = core.FASnapshot

// SnapshotOption configures NewSnapshot and the Algorithm 1 constructors
// layered on it; see WithSnapshotBound.
type SnapshotOption = core.SnapshotOption

// WithSnapshotBound declares the component value domain [0, maxValue] of a
// snapshot, selecting its register engine by the codec's budget arithmetic:
// when n × bitWidth(maxValue) ≤ 63 the snapshot runs over a single hardware
// XADD int64 (Update one XADD of a signed in-lane field delta, Scan one
// XADD(0) plus shift-and-mask); when bitWidth(maxValue) ≤ 48 it runs on the
// multi-word engine — components striped across k XADD words, each with a
// per-word sequence field that updates bump atomically with their payload
// (word 0's doubling as the announce counter), Update one payload XADD plus
// at most one announce, Scan a lock-free double collect with a closing
// announce check — so every bounded snapshot with fields up to 48 bits is
// machine-word-backed at any lane count. The wide big.Int register remains
// for unbounded snapshots and for bounds needing 49..63-bit fields (which
// exceed the validated multi-word payload budget). The bound is enforced on
// every engine (Update past it panics). On an Algorithm 1 object the
// snapshot components hold graph-node references, so the bound doubles as a
// lifetime operation budget; see core.SimpleObject.TryExecute.
func WithSnapshotBound(maxValue int64) SnapshotOption {
	return core.WithSnapshotBound(maxValue)
}

// WithScanRetryBudget sets how many invalidated collect rounds a multi-word
// snapshot scan absorbs before raising the helping protocol's pressure
// register and adopting helper deposits (default 2). Multi-word scans are
// HELPED: an update that announces while the pressure register is raised
// performs a bounded validated collect of its own and deposits it in the
// help slot; a starving scan adopts the freshest deposit, its final step
// still witnessing word 0's sequence field so adoption cannot resurrect a
// past state. The budget affects progress only, never returned views — a
// budget of 0 (help after the first failed round) is useful for fuzzing the
// adopt path. Snapshot.HelpStats reports the deposit/adopt telemetry. No-op
// on the single-word and wide engines, whose scans are one fetch&add.
func WithScanRetryBudget(rounds int) SnapshotOption {
	return core.WithScanRetryBudget(rounds)
}

// WithViewCache enables the multi-word snapshot engine's anchor-revalidated
// view cache: every validated scan publishes its decoded view keyed by the
// collect's word-0 value, and a later scan serves the cached view after
// re-validating the anchor with ONE fresh word-0 read — still its final
// view-determining step, the identical closing announce witness the full
// collect ends with, so the strong-linearizability argument (and its model
// checks) carry over. Steady-state read-mostly scans drop from a 2k-word
// double collect to two register reads and a copy; Snapshot.CacheStats
// reports the hit/miss telemetry. No-op on the single-word and wide engines,
// whose scans are already one fetch&add.
func WithViewCache(enabled bool) SnapshotOption {
	return core.WithViewCache(enabled)
}

// WithLiveRebase enables the multi-word snapshot engine's live re-base: the
// Snapshot gains Rebase, which rolls the running object onto a fresh
// generation of words — renewing the mod-2^16 per-word sequence budget —
// without stopping readers or writers. Generation, CutoverInFlight,
// SeqWatermark, and RebaseStats expose the scrape-safe telemetry. At most
// one Rebase may run at a time; the Rebaser (see NewRebaser) provides the
// serialisation and the watermark-triggered policy. No-op on the
// single-register engines, whose substrates have no sequence fields to
// exhaust.
func WithLiveRebase(enabled bool) SnapshotOption {
	return core.WithLiveRebase(enabled)
}

// RebaseStats is the live re-base telemetry block reported by
// Snapshot.RebaseStats: completed cutovers, scans that parked and adopted
// the migrator's deposit, scans that parked and awaited the install, and
// updates diverted onto a successor generation.
type RebaseStats = core.RebaseStats

// WithReadCache is WithViewCache for the sharded objects: a validated
// combining read publishes its combined value keyed by the exact epoch value
// it validated at, and a later read serves it after re-validating the epoch
// with one fresh read — its final shared step, the same closing epoch witness
// as the collect loop. Steady-state read-mostly combines drop from an S-shard
// collect to two register reads; each sharded object's CacheStats reports the
// hit/miss telemetry.
func WithReadCache(enabled bool) ShardOption {
	return shard.WithReadCache(enabled)
}

// CacheStats is the view-/combine-cache telemetry block reported by
// Snapshot.CacheStats and the sharded objects' CacheStats: anchor-match hits
// (counted only when a SnapMetrics/ShardMetrics CacheHits counter is
// attached, keeping the uninstrumented hit path free of added atomics),
// anchor misses, and cache refreshes.
type CacheStats = obs.CacheStats

// HelpStats is the helping/retry telemetry block reported by
// Snapshot.HelpStats and the sharded objects' HelpStats: helper deposits,
// adopted reads/scans, failed adoption witnesses, failed validation rounds,
// and pressure-raise episodes. All counts are slow-path events — an
// uncontended operation touches none of them.
type HelpStats = obs.HelpStats

// SnapMetrics is optional scrape-layer snapshot instrumentation for
// WithSnapshotObs; see internal/obs.
type SnapMetrics = obs.SnapMetrics

// ShardMetrics is optional scrape-layer sharded-object instrumentation for
// WithShardObs; see internal/obs.
type ShardMetrics = obs.ShardMetrics

// WithSnapshotObs attaches optional retry-distribution histograms to a
// snapshot, observed on contended scan completions only (the uncontended
// fast path is untouched; nil fields are no-ops).
func WithSnapshotObs(m SnapMetrics) SnapshotOption {
	return core.WithSnapshotObs(m)
}

// WithShardObs attaches optional retry-distribution histograms to a sharded
// object, observed on contended combining-read completions only.
func WithShardObs(m ShardMetrics) ShardOption {
	return shard.WithObs(m)
}

// MaxSnapshotBound returns the largest WithSnapshotBound value that packs a
// snapshot (or an Algorithm 1 object over one) into a SINGLE machine word
// for n processes, or 0 when no bound packs one word (n > 63). Sizing bounds
// through it keeps callers in sync with the packed engine's machine-word
// budget.
func MaxSnapshotBound(n int) int64 { return interleave.MaxFieldBound(n) }

// MaxSnapshotBoundWords returns the largest WithSnapshotBound value whose
// encoding hosts n processes within at most the given number of machine
// words — the multi-word engine's own budget arithmetic
// (interleave.MaxMultiFieldBound: 48 payload bits per word next to the
// sequence field). It generalizes MaxSnapshotBound (the words=1 case) past
// the 63-bit ceiling: with words ≥ ⌈n/2⌉ every lane gets at least a 24-bit
// field (a ≥ 2²⁴−1 operation budget for an Algorithm 1 object at ANY lane
// count), and with words ≥ n a full 48-bit field (≥ 2⁴⁸−1). Sizing bounds
// through it keeps callers in sync with the engine's word-count arithmetic.
func MaxSnapshotBoundWords(n, words int) int64 { return interleave.MaxMultiFieldBound(n, words) }

// NewSnapshot builds a snapshot for n processes.
func NewSnapshot(w *World, n int, opts ...SnapshotOption) *Snapshot {
	return core.NewFASnapshot(w, "stronglin.snapshot", n, opts...)
}

// NewMultiwordSnapshot builds a second, independently named snapshot sized
// by the multi-word engine's word-budget arithmetic: its bound is the
// largest MaxSnapshotBoundWords(n, words) value, so the components stripe
// across at most words machine words (the constructor still picks the
// single packed word when the bound happens to fit one, e.g. n ≤ 2 with
// words = ⌈n/2⌉). It panics when the word budget cannot host n lanes at all
// (n > 48 × words and n > 63 — MaxSnapshotBoundWords returns 0, i.e. not
// even 1-bit fields fit), rather than returning an object whose every
// nonzero Update would panic. It can live in the same World as a
// NewSnapshot object.
// Extra options (a scan retry budget, WithSnapshotObs) apply after the
// engine-selecting bound.
func NewMultiwordSnapshot(w *World, n, words int, opts ...SnapshotOption) *Snapshot {
	bound := MaxSnapshotBoundWords(n, words)
	if bound == 0 {
		panic(fmt.Sprintf("stronglin: NewMultiwordSnapshot: %d words cannot host %d lanes (need at least ⌈n/48⌉ words)", words, n))
	}
	return core.NewFASnapshot(w, "stronglin.msnapshot", n,
		append([]SnapshotOption{WithSnapshotBound(bound)}, opts...)...)
}

// Counter is a wait-free strongly-linearizable counter (Theorems 3–4:
// Algorithm 1 over the fetch&add snapshot).
type Counter = core.Counter

// NewCounter builds a counter for n processes.
func NewCounter(w *World, n int, opts ...SnapshotOption) *Counter {
	return core.NewCounterFromFA(w, "stronglin.counter", n, opts...)
}

// LogicalClock is a wait-free strongly-linearizable logical clock
// (Theorems 3–4).
type LogicalClock = core.LogicalClock

// NewLogicalClock builds a logical clock for n processes.
func NewLogicalClock(w *World, n int, opts ...SnapshotOption) *LogicalClock {
	return core.NewLogicalClockFromFA(w, "stronglin.clock", n, opts...)
}

// GSet is a wait-free strongly-linearizable grow-only set (Theorems 3–4).
type GSet = core.GSet

// NewGSet builds a grow-only set for n processes.
func NewGSet(w *World, n int, opts ...SnapshotOption) *GSet {
	return core.NewGSetFromFA(w, "stronglin.gset", n, opts...)
}

// SimpleMax is a wait-free strongly-linearizable max-with-read built via
// Algorithm 1 (Theorems 3–4) — the simple-type max register of Section 3.3,
// as distinct from Theorem 1's direct MaxRegister construction. With a
// WithSnapshotBound it is machine-word-backed at any lane count (multi-word
// past 63 lanes).
type SimpleMax = core.Max

// NewSimpleMax builds a max-with-read for n processes.
func NewSimpleMax(w *World, n int, opts ...SnapshotOption) *SimpleMax {
	return core.NewMaxFromFA(w, "stronglin.simplemax", n, opts...)
}

// ReadableTAS is the paper's Theorem 5 object: a wait-free
// strongly-linearizable readable test&set from a plain test&set.
type ReadableTAS = core.ReadableTAS

// NewReadableTAS builds a readable test&set.
func NewReadableTAS(w *World) *ReadableTAS {
	return core.NewReadableTAS(w, "stronglin.rtas")
}

// MultiShotTAS is the paper's Theorem 6 / Corollary 7 object: a wait-free
// strongly-linearizable readable multi-shot test&set from test&set and
// fetch&add.
type MultiShotTAS = core.MultiShotTAS

// NewMultiShotTAS builds a multi-shot test&set for n processes.
func NewMultiShotTAS(w *World, n int) *MultiShotTAS {
	return core.NewMultiShotTASFromPrimitives(w, "stronglin.mstas", n)
}

// FetchInc is the paper's Theorem 9 object: a lock-free
// strongly-linearizable readable fetch&increment from test&set.
type FetchInc = core.FetchInc

// NewFetchInc builds a fetch&increment counting from 1.
func NewFetchInc(w *World) *FetchInc {
	return core.NewFetchIncFromTAS(w, "stronglin.fai")
}

// Set is the paper's Theorem 10 / Algorithm 2 object: a lock-free
// strongly-linearizable set from test&set. Items must be positive; Take
// returns the canonical responses of package semantics: an item's decimal
// encoding or "empty".
type Set = core.TASSet

// NewSet builds a set.
func NewSet(w *World) *Set {
	return core.NewTASSetFromTAS(w, "stronglin.set")
}

// Pool is the lane-leasing runtime: it manages n process identities as
// leases so that arbitrary goroutines (HTTP handlers, worker pools) can use
// the n-process objects above without manual thread bookkeeping. Lane claim
// and release are single steps on per-lane swap registers (consensus number
// 2); see internal/pool for the protocol.
type Pool = pool.Pool

// Lease is a claimed process identity; pass Lease.Thread() to object
// operations and Release exactly once when done.
type Lease = pool.Lease

// NewPool builds a pool leasing the n process identities of w's objects.
// Acquire/With hand out Threads in [0, n); use the same n as the objects the
// leases will drive.
func NewPool(w *World, n int) *Pool {
	return pool.New(w, "stronglin.pool", n)
}

// ShardOption configures the sharded constructors; see WithBound.
type ShardOption = shard.Option

// WithBound declares the value domain [0, bound] of a sharded object
// (max-register values, grow-only-set elements, the counter's final count).
// Each shard core then packs its register into a single machine word — a
// hardware XADD int64 instead of the arbitrary-precision fetch&add — whenever
// its per-shard encoding fits, with automatic per-shard fallback to the wide
// register when it does not. The packed fast path removes the mutex, the
// big.Int arithmetic, and all per-operation allocation from writes and reads;
// the strong-linearizability guarantee (and its model checks) are unchanged.
// Max-register writes and set adds beyond the bound panic (uniformly, whether
// or not the shard packed); the counter's bound is a capacity declaration
// used for engine selection only — see shard.WithBound.
func WithBound(bound int64) ShardOption { return shard.WithBound(bound) }

// WithReadRetryBudget sets how many invalidated collect rounds a sharded
// object's combining read absorbs before raising pressure (carried in the
// epoch register's high bits) and adopting helper deposits (default 2). The
// sharded reads are HELPED: a write whose epoch announce returns raised
// pressure bits deposits an epoch-validated collect of its own, and a
// starving read adopts it, its closing epoch read still witnessing that no
// write completed since the helper validated. The budget affects progress
// only, never returned values; each sharded object's HelpStats reports the
// deposit/adopt telemetry. See internal/shard's package comment for the
// protocol and its strong-linearizability argument.
func WithReadRetryBudget(rounds int) ShardOption {
	return shard.WithReadRetryBudget(rounds)
}

// ShardedCounter is a monotone counter whose increments stripe across S
// independent fetch&add cores (shard picked by lane ID) and whose reads
// combine the shards by an epoch-validated sum. Strong linearizability of
// the sharded layer is model-checked in internal/shard; reads are lock-free.
type ShardedCounter = shard.Counter

// NewShardedCounter builds a sharded monotone counter for n processes over
// shards cores (shards <= n).
func NewShardedCounter(w *World, n, shards int, opts ...ShardOption) *ShardedCounter {
	return shard.NewCounter(w, "stronglin.shardctr", n, shards, opts...)
}

// ShardedMaxRegister is a max register whose writes stripe across S
// independent Theorem 1 cores and whose reads combine the shards by an
// epoch-validated max.
type ShardedMaxRegister = shard.MaxRegister

// NewShardedMaxRegister builds a sharded max register for n processes over
// shards cores (shards <= n).
func NewShardedMaxRegister(w *World, n, shards int, opts ...ShardOption) *ShardedMaxRegister {
	return shard.NewMaxRegister(w, "stronglin.shardmax", n, shards, opts...)
}

// ShardedGSet is a grow-only set whose adds stripe across S independent
// fetch&add cores and whose membership reads witness directly or validate
// absence against the epoch.
type ShardedGSet = shard.GSet

// NewShardedGSet builds a sharded grow-only set for n processes over shards
// cores (shards <= n).
func NewShardedGSet(w *World, n, shards int, opts ...ShardOption) *ShardedGSet {
	return shard.NewGSet(w, "stronglin.shardgset", n, shards, opts...)
}

// WatermarkState classifies a watched object's budget consumption; see
// NewRebaser.
type WatermarkState = migrate.State

// Watermark states, in degradation order. Warn means a re-base is due (the
// Rebaser performs it on its next Step); Crit means the budget is nearly
// spent — and a successful rollover still recovers it to OK.
const (
	WatermarkOK   = migrate.StateOK
	WatermarkWarn = migrate.StateWarn
	WatermarkCrit = migrate.StateCrit
)

// RebaseThresholds are the warn/crit fractions of a watched budget; see
// NewRebaser.
type RebaseThresholds = migrate.Thresholds

// DefaultRebaseThresholds re-bases at half the budget and pages at 90%.
func DefaultRebaseThresholds() RebaseThresholds { return migrate.DefaultThresholds() }

// RebaseTarget is one live object whose finite budget a Rebaser renews:
// the multi-word snapshot's mod-2^16 sequence budget, or a sharded object's
// 2^48 epoch announce budget.
type RebaseTarget = migrate.Target

// SnapshotRebaseTarget watches a multi-word snapshot's sequence watermark
// and renews it with a live Rebase. The snapshot must have been built with
// WithLiveRebase.
func SnapshotRebaseTarget(name string, s *Snapshot) RebaseTarget {
	return migrate.SnapshotTarget(name, s)
}

// CounterRebaseTarget watches a sharded counter's epoch announce count and
// renews it with RolloverEpoch.
func CounterRebaseTarget(name string, c *ShardedCounter) RebaseTarget {
	return migrate.CounterTarget(name, c)
}

// MaxRegisterRebaseTarget is CounterRebaseTarget for a sharded max-register.
func MaxRegisterRebaseTarget(name string, m *ShardedMaxRegister) RebaseTarget {
	return migrate.MaxRegisterTarget(name, m)
}

// GSetRebaseTarget is CounterRebaseTarget for a sharded grow-only set.
func GSetRebaseTarget(name string, g *ShardedGSet) RebaseTarget {
	return migrate.GSetTarget(name, g)
}

// Rebaser drives watermark-triggered live re-bases over a set of targets,
// serialising cutovers (the at-most-one-migrator contract of the underlying
// primitives). State and StateOf are scrape-safe; Step performs the due
// cutovers.
type Rebaser = migrate.Rebaser

// RebaserStats is the Rebaser's cumulative telemetry.
type RebaserStats = migrate.Stats

// NewRebaser builds a Rebaser over the given targets. Thresholds must
// satisfy 0 < warn <= crit < 1.
func NewRebaser(thr RebaseThresholds, targets ...RebaseTarget) (*Rebaser, error) {
	return migrate.NewRebaser(thr, targets...)
}

// KeyedOption configures the keyed (string-domain) constructors NewKeyedGSet
// and NewMonotoneMap; see WithKeyedBuckets and friends.
type KeyedOption = keyed.Option

// WithKeyedBuckets sets a keyed object's initial bucket count (default 8).
// Keys hash (fnv-1a 64) to buckets; each bucket is its own k-XADD engine.
func WithKeyedBuckets(n int) KeyedOption { return keyed.WithBuckets(n) }

// WithKeyedSlots sets how many distinct keys one bucket hosts (default 16
// for a KeyedGSet, 8 for a MonotoneMap). For a KeyedGSet the slot count is
// also the per-lane bitmap width in bits, so it is capped at 48.
func WithKeyedSlots(n int) KeyedOption { return keyed.WithSlots(n) }

// WithKeyedWidth sets a MonotoneMap's bits per (key, lane) value field
// (default 32, max 48). The stored field cap is 2^width - 1, but the
// client-visible cap is FieldCap = 2^width - 2: one unit is reserved for the
// existence bias that keeps a landed Max(k, 0) distinguishable from no write
// at all. No-op for a KeyedGSet, whose fields are 1-bit memberships.
func WithKeyedWidth(bits int) KeyedOption { return keyed.WithWidth(bits) }

// WithKeyedMaxBuckets caps Rehash growth (default 1<<16 buckets).
func WithKeyedMaxBuckets(n int) KeyedOption { return keyed.WithMaxBuckets(n) }

// KeyedStats is the telemetry snapshot reported by KeyedGSet.Stats and
// MonotoneMap.Stats.
type KeyedStats = keyed.Stats

// MapKind is the monotone flavor a MonotoneMap key is bound to at its first
// write: a counter (Inc/IncBy) or a max register (Max).
type MapKind = keyed.Kind

// MonotoneMap key kinds.
const (
	// MapKindNone is the zero MapKind; no key is ever bound to it.
	MapKindNone = keyed.KindNone
	// MapKindCounter keys support Inc/IncBy; Get sums the lanes.
	MapKindCounter = keyed.KindCounter
	// MapKindMax keys support Max; Get maxes the lanes.
	MapKindMax = keyed.KindMax
)

// Keyed-universe errors. All are terminal for the op that received them;
// ErrKeyedFull is resolved by Rehash to a larger bucket count.
var (
	// ErrKeyedFull means the key's bucket has no free slot; grow with Rehash.
	ErrKeyedFull = keyed.ErrFull
	// ErrKeyedBudget means the per-(key, lane) field cannot absorb the update.
	ErrKeyedBudget = keyed.ErrBudget
	// ErrKeyedKindMismatch means the key is bound to the other kind.
	ErrKeyedKindMismatch = keyed.ErrKindMismatch
	// ErrKeyedUnknownKey means the key has never been written.
	ErrKeyedUnknownKey = keyed.ErrUnknownKey
	// ErrKeyedRange means a delta or value lies outside the field domain.
	ErrKeyedRange = keyed.ErrRange
)

// KeyedHash is the keyed universe's bucket hash (fnv-1a 64 over the key
// bytes), exported so routing tiers partition the keyspace with the identical
// function.
func KeyedHash(key string) uint64 { return keyed.Hash(key) }

// KeyedGSet is a strongly-linearizable grow-only set over STRING keys — the
// sparse companion to the dense-domain sharded GSet. Keys hash to buckets;
// each bucket is a k-XADD engine holding one membership bit per (key, lane),
// so Add is one fetch&add and Has is an epoch-validated collect. Buckets grow
// at runtime with Rehash (flip-after-migrate; no acked add is ever lost).
// Strong linearizability of both ops and of reads overlapping a rehash is
// model-checked exhaustively in internal/keyed.
type KeyedGSet = keyed.GSet

// NewKeyedGSet builds a keyed grow-only set for n process lanes.
func NewKeyedGSet(w *World, n int, opts ...KeyedOption) *KeyedGSet {
	return keyed.NewGSet(w, "stronglin.kgset", n, opts...)
}

// MonotoneMap is a strongly-linearizable map from string keys to monotone
// values: each key binds at first write to a monotone counter (Inc/IncBy) or
// a max register (Max); Get combines the key's per-lane fields (sum or max)
// under the epoch-validated closing-witness discipline. Buckets grow at
// runtime with Rehash exactly as KeyedGSet's.
type MonotoneMap = keyed.MonotoneMap

// NewMonotoneMap builds a keyed monotone map for n process lanes.
func NewMonotoneMap(w *World, n int, opts ...KeyedOption) *MonotoneMap {
	return keyed.NewMonotoneMap(w, "stronglin.kmap", n, opts...)
}

// AdversaryOutcome aggregates strong-adversary game trials (see
// PlayAdversary).
type AdversaryOutcome = adversary.Outcome

// Adversary game targets.
const (
	// AdversaryVsStrong attacks the strongly-linearizable fetch&add
	// snapshot; the adversary's win rate stays at 1/2.
	AdversaryVsStrong = adversary.FASnapshot
	// AdversaryVsLinearizable attacks the merely-linearizable Afek et al.
	// snapshot; the adversary wins every trial.
	AdversaryVsLinearizable = adversary.AfekSnapshot
	// AdversaryVsStrongPacked attacks the packed machine-word engine of the
	// fetch&add snapshot; the win rate stays at 1/2, exactly as wide.
	AdversaryVsStrongPacked = adversary.PackedFASnapshot
	// AdversaryVsStrongMultiword attacks the multi-word k-XADD engine, whose
	// scans are double collects with a closing announce check; the win rate
	// stays at 1/2 — a completed (announced) update's visibility to a
	// validated scan is committed before the coin exists.
	AdversaryVsStrongMultiword = adversary.MultiwordFASnapshot
)

// PlayAdversary runs the hyperproperty-preservation game: a strong
// adversary tries to correlate a scanner's view with a later coin flip. It
// demonstrates why strongly-linearizable objects are required by randomized
// programs.
func PlayAdversary(kind adversary.SnapshotKind, trials int, seed int64) AdversaryOutcome {
	return adversary.Play(kind, trials, seed)
}
