#!/usr/bin/env bash
# Multi-backend chaos smoke: three slserve backends, one -frontend routing
# tier, a Poisson load against the frontend, and a kill -9 of the counter's
# OWNER backend at the midpoint (rebooted empty a few seconds later).
#
# Pass criteria, checked at the end:
#   - the attack client exits 0 and completed requests;
#   - ZERO LOST ACKED UPDATES: the authoritative /counter value read through
#     the frontend is >= the frontend's acked-increment ledger;
#   - the frontend actually moved ownership (handoffs > 0 in /stats and
#     cluster_handoffs_total > 0 in /metrics) — a run where the kill went
#     unnoticed would pass vacuously and must fail instead.
set -euo pipefail

FPORT=19100
BPORTS=(19101 19102 19103)
DUR=16s
KILL_AT=8
RESTART_AT=4 # seconds after the kill

cd "$(dirname "$0")/.."
BIN=$(mktemp -d)/slserve
go build -o "$BIN" ./cmd/slserve

declare -a BPIDS
cleanup() {
  kill "${BPIDS[@]}" "$FPID" "$ATTACK_PID" 2>/dev/null || true
  wait 2>/dev/null || true
}
trap cleanup EXIT

start_backend() { # $1 = index into BPORTS
  "$BIN" -addr "127.0.0.1:${BPORTS[$1]}" >"/tmp/chaos_backend_$1.log" 2>&1 &
  BPIDS[$1]=$!
}

for i in 0 1 2; do start_backend "$i"; done

backends="http://127.0.0.1:${BPORTS[0]},http://127.0.0.1:${BPORTS[1]},http://127.0.0.1:${BPORTS[2]}"
"$BIN" -frontend -addr "127.0.0.1:$FPORT" -backends "$backends" \
  -health-interval 100ms -health-down-after 2 -health-up-after 1 \
  -handoff-drain 200ms -retries 5 >/tmp/chaos_frontend.log 2>&1 &
FPID=$!

front="http://127.0.0.1:$FPORT"
for _ in $(seq 1 50); do
  if curl -fsS "$front/healthz" >/dev/null 2>&1; then break; fi
  sleep 0.2
done
curl -fsS "$front/healthz" >/dev/null # frontend must be up or fail here

"$BIN" -attack -url "$front" -mix counter -arrivals poisson -rate 1500 \
  -clients 4 -dur "$DUR" >/tmp/chaos_attack.json &
ATTACK_PID=$!

sleep "$KILL_AT"
owner=$(curl -fsS "$front/stats" | python3 -c 'import json,sys; print(json.load(sys.stdin)["objects"]["counter"]["owner"])')
echo "chaos: counter owner is backend $owner — kill -9"
kill -9 "${BPIDS[$owner]}"
sleep "$RESTART_AT"
echo "chaos: rebooting backend $owner empty"
start_backend "$owner"

if ! wait "$ATTACK_PID"; then
  echo "chaos: attack client failed"
  cat /tmp/chaos_attack.json
  exit 1
fi
ATTACK_PID=""

# Let any trailing handoff (the rebooted backend re-adopting keys) settle.
sleep 2

curl -fsS "$front/stats" >/tmp/chaos_stats.json
curl -fsS "$front/metrics" >/tmp/chaos_metrics.txt
curl -fsS "$front/counter" >/tmp/chaos_counter.json

python3 - <<'EOF'
import json

attack = json.load(open("/tmp/chaos_attack.json"))
stats = json.load(open("/tmp/chaos_stats.json"))
counter = json.load(open("/tmp/chaos_counter.json"))
metrics = open("/tmp/chaos_metrics.txt").read()

assert attack["requests"] > 0, "attack completed no requests"
ledger = stats["counter_ledger"]
value = counter["value"]
assert ledger > 0, "no increment was ever acked: vacuous run"
assert value >= ledger, f"LOST UPDATE: counter {value} < acked ledger {ledger}"
assert stats["handoffs"] > 0, "no ownership handoff happened: kill went unnoticed"

handoffs_metric = 0
for line in metrics.splitlines():
    if line.startswith("cluster_handoffs_total"):
        handoffs_metric = int(float(line.split()[-1]))
assert handoffs_metric > 0, "cluster_handoffs_total not exported or zero"

print(f"chaos smoke ok: acked={ledger} final={value} phantoms={value-ledger} "
      f"handoffs={stats['handoffs']} steals={stats['steals']} raced={stats['raced']} "
      f"retries={stats['retries']} attack: {attack['requests']} reqs, "
      f"{attack['errors']} errors, {attack['retried']} retried, {attack['exhausted']} exhausted")
EOF
