#!/bin/sh
# Records the perf-trajectory baseline (BENCH_PR10.json): the slbench cells
# the CI perf gate compares against (slbench -baseline) — including the PR 7
# cached-scan/cached-read rows and the PR 10 keyed kgset/map rows — plus a
# closed/open loop attack pair on the
# same host. The pair is the coordinated-omission exhibit: both runs use the
# same mix and duration, but the open-loop run offers 2x the closed loop's
# measured throughput, so its percentiles carry the queueing delay the
# closed loop structurally cannot see.
#
# Usage: scripts/record_baseline.sh [output.json]
#
# Rerecord on the branch's merge host whenever slbench rows are added or an
# intentional perf change lands, and commit the result.
set -e
cd "$(dirname "$0")/.."
out=${1:-BENCH_PR10.json}
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

go run ./cmd/slbench -dur 100ms -procs 1,4 -json >"$tmp/slbench.json"
go run ./cmd/slserve -attack -dur 3s -clients 4 -mix default >"$tmp/closed.json"
rate=$(python3 -c "import json; print(int(json.load(open('$tmp/closed.json'))['ops_per_sec'] * 2))")
go run ./cmd/slserve -attack -dur 3s -clients 4 -mix default \
	-arrivals poisson -rate "$rate" -attack-seed 1 >"$tmp/open.json"

python3 - "$out" "$tmp" <<'EOF'
import json, sys
out, tmp = sys.argv[1], sys.argv[2]
doc = {
    "slbench": json.load(open(tmp + "/slbench.json")),
    "attack": [json.load(open(tmp + "/closed.json")),
               json.load(open(tmp + "/open.json"))],
}
# The server-stats blocks are a point-in-time diagnostic, not a trajectory;
# keep the baseline file to the rows the gate and the README cite.
for a in doc["attack"]:
    a.pop("server_stats", None)
with open(out, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
closed, open_ = doc["attack"]
print(f"closed loop: {closed['ops_per_sec']:.0f} ops/s, p99 {closed['latency_ms']['p99']:.2f} ms")
print(f"open loop @ {open_['rate_rps']:.0f} rps offered: p99 {open_['latency_ms']['p99']:.2f} ms"
      f" ({open_.get('unsent', 0)} unsent)")
EOF
echo "wrote $out"
