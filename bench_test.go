package stronglin

import (
	"fmt"
	"math/big"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"stronglin/internal/baseline"
	"stronglin/internal/core"
	"stronglin/internal/history"
	"stronglin/internal/keyed"
	"stronglin/internal/obs"
	"stronglin/internal/pool"
	"stronglin/internal/prim"
	"stronglin/internal/shard"
	"stronglin/internal/sim"
	"stronglin/internal/spec"
)

// The benchmarks regenerate the E-PERF/E-WIDTH tables of EXPERIMENTS.md.
// Parallel benchmarks run exactly benchProcs workers with EXCLUSIVE process
// identities: the single-writer constructions (per-process lanes, snapshot
// components) require that at most one goroutine acts as process i.

const benchProcs = 8

func parallelWithIDs(b *testing.B, fn func(t prim.Thread, i int)) {
	b.Helper()
	var wg sync.WaitGroup
	per := b.N / benchProcs
	for p := 0; p < benchProcs; p++ {
		n := per
		if p == 0 {
			n += b.N % benchProcs
		}
		wg.Add(1)
		go func(p, n int) {
			defer wg.Done()
			th := prim.RealThread(p)
			for i := 0; i < n; i++ {
				fn(th, i)
			}
		}(p, n)
	}
	wg.Wait()
}

// E-PERF row 1: max registers.
func BenchmarkMaxRegister(b *testing.B) {
	b.Run("fa-thm1", func(b *testing.B) {
		m := core.NewFAMaxRegister(prim.NewRealWorld(), "m", benchProcs)
		parallelWithIDs(b, func(t prim.Thread, i int) {
			if i%4 == 0 {
				m.WriteMax(t, int64(i%256))
			} else {
				m.ReadMax(t)
			}
		})
	})
	b.Run("aac-registers", func(b *testing.B) {
		m := baseline.NewAACMaxRegister(prim.NewRealWorld(), "m", 8)
		parallelWithIDs(b, func(t prim.Thread, i int) {
			if i%4 == 0 {
				m.WriteMax(t, int64(i%256))
			} else {
				m.ReadMax(t)
			}
		})
	})
	b.Run("atomic-maxreg", func(b *testing.B) {
		m := prim.NewRealWorld().MaxReg("m", 0)
		parallelWithIDs(b, func(t prim.Thread, i int) {
			if i%4 == 0 {
				m.WriteMax(t, int64(i%256))
			} else {
				m.ReadMax(t)
			}
		})
	})
}

// E-PERF row 2: snapshots.
func BenchmarkSnapshot(b *testing.B) {
	b.Run("fa-thm2", func(b *testing.B) {
		s := core.NewFASnapshot(prim.NewRealWorld(), "s", benchProcs)
		parallelWithIDs(b, func(t prim.Thread, i int) {
			if i%4 == 0 {
				s.Update(t, int64(i%64))
			} else {
				s.Scan(t)
			}
		})
	})
	b.Run("afek-registers", func(b *testing.B) {
		s := baseline.NewAfekSnapshot(prim.NewRealWorld(), "s", benchProcs)
		parallelWithIDs(b, func(t prim.Thread, i int) {
			if i%4 == 0 {
				s.Update(t, int64(i%64))
			} else {
				s.Scan(t)
			}
		})
	})
}

// E-PERF row 3: simple types over the fetch&add snapshot.
func BenchmarkSimpleCounter(b *testing.B) {
	c := core.NewCounterFromFA(prim.NewRealWorld(), "c", benchProcs)
	parallelWithIDs(b, func(t prim.Thread, i int) {
		if i%4 == 0 {
			c.Inc(t)
		} else {
			c.Read(t)
		}
	})
}

// E-PERF row 4: readable test&set (one-shot, so bench read-heavy).
func BenchmarkReadableTAS(b *testing.B) {
	r := core.NewReadableTAS(prim.NewRealWorld(), "r")
	parallelWithIDs(b, func(t prim.Thread, i int) {
		if i == 0 {
			r.TestAndSet(t)
		} else {
			r.Read(t)
		}
	})
}

// E-PERF row 5: multi-shot test&set (Corollary 7 composition).
func BenchmarkMultiShotTAS(b *testing.B) {
	m := core.NewMultiShotTASFromPrimitives(prim.NewRealWorld(), "m", benchProcs)
	parallelWithIDs(b, func(t prim.Thread, i int) {
		switch i % 3 {
		case 0:
			m.TestAndSet(t)
		case 1:
			m.Read(t)
		default:
			m.Reset(t)
		}
	})
}

// E-PERF row 6: fetch&increment variants.
func BenchmarkFetchInc(b *testing.B) {
	b.Run("tas-thm9", func(b *testing.B) {
		f := core.NewFetchIncFromTAS(prim.NewRealWorld(), "f")
		parallelWithIDs(b, func(t prim.Thread, i int) { f.FetchIncrement(t) })
	})
	b.Run("fa-direct", func(b *testing.B) {
		f := core.NewFAFetchInc(prim.NewRealWorld(), "f")
		parallelWithIDs(b, func(t prim.Thread, i int) { f.FetchIncrement(t) })
	})
	b.Run("sync-atomic", func(b *testing.B) {
		var c atomic.Int64
		parallelWithIDs(b, func(t prim.Thread, i int) { c.Add(1) })
	})
}

// E-PERF row 7: sets.
func BenchmarkSet(b *testing.B) {
	b.Run("tas-thm10", func(b *testing.B) {
		s := core.NewTASSetAtomic(prim.NewRealWorld(), "s")
		var next atomic.Int64
		parallelWithIDs(b, func(t prim.Thread, i int) {
			if i%2 == 0 {
				s.Put(t, next.Add(1))
			} else {
				s.Take(t)
			}
		})
	})
}

// E-PERF row 8: queues (the impossibility-side objects).
func BenchmarkQueue(b *testing.B) {
	b.Run("herlihy-wing-lin", func(b *testing.B) {
		q := baseline.NewHWQueueLazy(prim.NewRealWorld(), "q", 1<<24)
		parallelWithIDs(b, func(t prim.Thread, i int) {
			if i%2 == 0 {
				q.Enqueue(t, int64(i+1))
			} else {
				q.DequeueBounded(t)
			}
		})
	})
	b.Run("cas-universal-sl", func(b *testing.B) {
		q := baseline.NewCASQueue(prim.NewRealWorld(), "q", benchProcs)
		parallelWithIDs(b, func(t prim.Thread, i int) {
			if i%2 == 0 {
				q.Enqueue(t, int64(i+1))
			} else {
				q.Dequeue(t)
			}
		})
	})
	b.Run("naive-stack-lin", func(b *testing.B) {
		s := baseline.NewNaiveStackLazy(prim.NewRealWorld(), "st", 1<<24)
		parallelWithIDs(b, func(t prim.Thread, i int) {
			if i%2 == 0 {
				s.Push(t, int64(i+1))
			} else {
				s.PopBounded(t)
			}
		})
	})
}

// E-SHARD: write throughput of the sharded monotone objects against their
// single-register baselines, at 1-8 shards with 8 parallel writers. The
// unsharded rows funnel every writer through one mutex-guarded wide register;
// the sharded rows split writers across S registers plus one narrow epoch
// XADD, which is where the scaling comes from.
func BenchmarkShardedCounter(b *testing.B) {
	b.Run("unsharded-fa", func(b *testing.B) {
		c := core.NewFACounter(prim.NewRealWorld(), "c")
		parallelWithIDs(b, func(t prim.Thread, i int) { c.Inc(t) })
	})
	for _, s := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", s), func(b *testing.B) {
			c := shard.NewCounter(prim.NewRealWorld(), "c", benchProcs, s)
			parallelWithIDs(b, func(t prim.Thread, i int) { c.Inc(t) })
		})
	}
	for _, s := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d-packed", s), func(b *testing.B) {
			c := shard.NewCounter(prim.NewRealWorld(), "c", benchProcs, s, shard.WithBound(1<<40))
			parallelWithIDs(b, func(t prim.Thread, i int) { c.Inc(t) })
		})
	}
}

func BenchmarkShardedMaxRegister(b *testing.B) {
	b.Run("unsharded-thm1", func(b *testing.B) {
		m := core.NewFAMaxRegister(prim.NewRealWorld(), "m", benchProcs)
		parallelWithIDs(b, func(t prim.Thread, i int) { m.WriteMax(t, int64(i%512)) })
	})
	for _, s := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", s), func(b *testing.B) {
			m := shard.NewMaxRegister(prim.NewRealWorld(), "m", benchProcs, s)
			parallelWithIDs(b, func(t prim.Thread, i int) { m.WriteMax(t, int64(i%512)) })
		})
	}
}

// E-SHARD read path: epoch-validated combining reads against a write-heavy
// background (3 writes : 1 read, as in the E-PERF rows).
func BenchmarkShardedCounterMixed(b *testing.B) {
	for _, s := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", s), func(b *testing.B) {
			c := shard.NewCounter(prim.NewRealWorld(), "c", benchProcs, s)
			parallelWithIDs(b, func(t prim.Thread, i int) {
				if i%4 == 0 {
					c.Read(t)
				} else {
					c.Inc(t)
				}
			})
		})
	}
}

// E-PACK: the packed machine-word cores against the wide registers on the
// same configuration (same lanes, same value domain). The packed rows must
// run at 0 allocs/op: one hardware XADD, no mutex, no big.Int arithmetic.
// The wide write rows mix raising writes with no-op writes (the register is
// monotone, so raises are finitely many per run); the read rows are where the
// wide register pays its full decode cost per op.
func BenchmarkPackedCounter(b *testing.B) {
	th := prim.RealThread(0)
	b.Run("packed-inc", func(b *testing.B) {
		c := core.NewFACounter(prim.NewRealWorld(), "c", core.WithCounterBound(1<<40))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.Inc(th)
		}
	})
	b.Run("wide-inc", func(b *testing.B) {
		c := core.NewFACounter(prim.NewRealWorld(), "c")
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.Inc(th)
		}
	})
	b.Run("packed-read", func(b *testing.B) {
		c := core.NewFACounter(prim.NewRealWorld(), "c", core.WithCounterBound(1<<40))
		c.Add(th, 123456)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.Read(th)
		}
	})
	b.Run("wide-read", func(b *testing.B) {
		c := core.NewFACounter(prim.NewRealWorld(), "c")
		c.Add(th, 123456)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.Read(th)
		}
	})
}

func BenchmarkPackedMaxRegister(b *testing.B) {
	const lanes, bound = 2, 30 // 2 x 31 = 62 bits: packs
	th := prim.RealThread(0)
	b.Run("packed-write", func(b *testing.B) {
		m := core.NewFAMaxRegister(prim.NewRealWorld(), "m", lanes, core.WithMaxRegBound(bound))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m.WriteMax(th, int64(i)%(bound+1))
		}
	})
	b.Run("wide-write", func(b *testing.B) {
		m := core.NewFAMaxRegister(prim.NewRealWorld(), "m", lanes)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m.WriteMax(th, int64(i)%(bound+1))
		}
	})
	b.Run("packed-read", func(b *testing.B) {
		m := core.NewFAMaxRegister(prim.NewRealWorld(), "m", lanes, core.WithMaxRegBound(bound))
		m.WriteMax(th, bound)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m.ReadMax(th)
		}
	})
	b.Run("wide-read", func(b *testing.B) {
		m := core.NewFAMaxRegister(prim.NewRealWorld(), "m", lanes)
		m.WriteMax(th, bound)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m.ReadMax(th)
		}
	})
}

func BenchmarkPackedGSet(b *testing.B) {
	const lanes, bound = 2, 30
	th := prim.RealThread(0)
	b.Run("packed-add", func(b *testing.B) {
		s := core.NewFAGSet(prim.NewRealWorld(), "s", lanes, core.WithGSetBound(bound))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s.Add(th, int64(i)%(bound+1))
		}
	})
	b.Run("wide-add", func(b *testing.B) {
		s := core.NewFAGSet(prim.NewRealWorld(), "s", lanes)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s.Add(th, int64(i)%(bound+1))
		}
	})
	// The grow-only set saturates its bounded domain, so the loops above
	// measure the steady state (once-guard hit, fetch&add(0)). The fresh
	// variants rebuild the set each time the domain fills, timing only the
	// adds — every timed Add performs a genuine register update.
	b.Run("packed-add-fresh", func(b *testing.B) {
		var s *core.FAGSet
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if i%(bound+1) == 0 {
				b.StopTimer()
				s = core.NewFAGSet(prim.NewRealWorld(), "s", lanes, core.WithGSetBound(bound))
				b.StartTimer()
			}
			s.Add(th, int64(i)%(bound+1))
		}
	})
	b.Run("wide-add-fresh", func(b *testing.B) {
		var s *core.FAGSet
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if i%(bound+1) == 0 {
				b.StopTimer()
				s = core.NewFAGSet(prim.NewRealWorld(), "s", lanes)
				b.StartTimer()
			}
			s.Add(th, int64(i)%(bound+1))
		}
	})
	b.Run("packed-has", func(b *testing.B) {
		s := core.NewFAGSet(prim.NewRealWorld(), "s", lanes, core.WithGSetBound(bound))
		s.Add(th, 7)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s.Has(th, int64(i)%(bound+1))
		}
	})
	b.Run("wide-has", func(b *testing.B) {
		s := core.NewFAGSet(prim.NewRealWorld(), "s", lanes)
		s.Add(th, 7)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s.Has(th, int64(i)%(bound+1))
		}
	})
}

// E-KEYED: the hashed string-domain objects on their packed fast path. With
// lanes=2 and 8 slots a KeyedGSet bucket is 16 payload bits — one word — so
// Add is a directory lookup plus one XADD and Has an epoch-validated
// single-word collect; both must run at 0 allocs/op. The multiword rows keep
// the wider default bucket honest: same ops, more words per collect.
func BenchmarkKeyedGSet(b *testing.B) {
	th := prim.RealThread(0)
	keys := benchKeyUniverse(16)
	mk := func(opts ...keyed.Option) *keyed.GSet {
		return mkKeyedGSet(b, th, keys, opts...)
	}
	b.Run("packed-add", func(b *testing.B) {
		g := mk(keyed.WithSlots(8)) // 2 lanes x 8 slots = 16 bits: one word
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			g.Add(th, keys[i&15])
		}
	})
	b.Run("packed-add-fresh", func(b *testing.B) {
		// The steady-state loop above hits the once-guard (the key set
		// saturates). Here every key is pre-claimed from the OTHER lane
		// during the off-clock rebuild, so each timed lane-0 add performs a
		// genuine membership XADD against an existing directory entry —
		// the first-writer claim's map insert stays off the clock.
		th1 := prim.RealThread(1)
		var g *keyed.GSet
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if i&15 == 0 {
				b.StopTimer()
				g = mkKeyedGSet(b, th1, keys, keyed.WithSlots(8))
				b.StartTimer()
			}
			if err := g.Add(th, keys[i&15]); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("packed-has", func(b *testing.B) {
		g := mk(keyed.WithSlots(8))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			g.Has(th, keys[i&15])
		}
	})
	b.Run("multiword-has", func(b *testing.B) {
		g := mk(keyed.WithSlots(48)) // 48-bit fields: one lane per word, 2 words
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			g.Has(th, keys[i&15])
		}
	})
}

// E-KEYED: the monotone map's packed shape — slots=1, lanes=2, width=24
// packs the bucket's two fields into one word, so IncBy is shadow-read plus
// one in-field XADD and Get a single-word validated collect, 0 allocs/op.
// The multiword rows run the default bucket (8 slots x 32 bits: one field
// per word) for contrast.
func BenchmarkKeyedMap(b *testing.B) {
	const lanes = 2
	th := prim.RealThread(0)
	keys := benchKeyUniverse(8)
	mk := func(opts ...keyed.Option) *keyed.MonotoneMap {
		m := keyed.NewMonotoneMap(prim.NewRealWorld(), "km", lanes, opts...)
		for _, k := range keys {
			for m.IncBy(th, k, 1) == keyed.ErrFull {
				if err := m.Rehash(th, 2*m.Buckets(th)); err != nil {
					b.Fatal(err)
				}
			}
		}
		return m
	}
	packed := []keyed.Option{keyed.WithSlots(1), keyed.WithWidth(24)}
	b.Run("packed-inc", func(b *testing.B) {
		m := mk(packed...)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if m.IncBy(th, keys[i&7], 1) != nil {
				// 24-bit field budget exhausted: rebuild off the clock.
				b.StopTimer()
				m = mk(packed...)
				b.StartTimer()
			}
		}
	})
	b.Run("packed-get", func(b *testing.B) {
		m := mk(packed...)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := m.Get(th, keys[i&7]); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("multiword-inc", func(b *testing.B) {
		m := mk()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := m.IncBy(th, keys[i&7], 1); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("multiword-get", func(b *testing.B) {
		m := mk()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := m.Get(th, keys[i&7]); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func benchKeyUniverse(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%d", i)
	}
	return keys
}

// mkKeyedGSet builds a 2-lane keyed set with every key already added by th,
// growing past hash-collision ErrFull so cramped shapes cannot wedge setup.
func mkKeyedGSet(b *testing.B, th prim.Thread, keys []string, opts ...keyed.Option) *keyed.GSet {
	b.Helper()
	g := keyed.NewGSet(prim.NewRealWorld(), "kg", 2, opts...)
	for _, k := range keys {
		for g.Add(th, k) == keyed.ErrFull {
			if err := g.Rehash(th, 2*g.Buckets(th)); err != nil {
				b.Fatal(err)
			}
		}
	}
	return g
}

// E-SNAP: the packed machine-word snapshot (Theorem 2 on binary fields over
// one XADD register) against the wide big.Int register at the same lane count
// and value domain. The packed rows must run at 0 allocs/op: Update is one
// XADD of a signed in-lane field delta, Scan (via ScanInto) one XADD(0) plus
// shift-and-mask. Update values cycle, so every wide update pays the full
// posAdj-negAdj big.Int delta — the cost the packed engine deletes.
func BenchmarkPackedSnapshot(b *testing.B) {
	const lanes, bound = 4, 1<<15 - 1 // 4 x 15 = 60 bits: packs
	th := prim.RealThread(0)
	b.Run("packed-update", func(b *testing.B) {
		s := core.NewFASnapshot(prim.NewRealWorld(), "s", lanes, core.WithSnapshotBound(bound))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s.Update(th, int64(i)&bound)
		}
	})
	b.Run("wide-update", func(b *testing.B) {
		s := core.NewFASnapshot(prim.NewRealWorld(), "s", lanes)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s.Update(th, int64(i)&bound)
		}
	})
	b.Run("packed-scan", func(b *testing.B) {
		s := core.NewFASnapshot(prim.NewRealWorld(), "s", lanes, core.WithSnapshotBound(bound))
		s.Update(th, bound)
		view := make([]int64, lanes)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s.ScanInto(th, view)
		}
	})
	b.Run("wide-scan", func(b *testing.B) {
		s := core.NewFASnapshot(prim.NewRealWorld(), "s", lanes)
		s.Update(th, bound)
		view := make([]int64, lanes)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s.ScanInto(th, view)
		}
	})
}

// E-SNAP multi-word: the k-XADD snapshot engine past the 63-bit ceiling
// (n x bitWidth(maxValue) > 63, where PR 3's single packed word had to fall
// back to the wide big.Int register) against that wide register at the same
// lane count and value domain. Update is a payload+sequence XADD on the
// owning word plus at most one announce on word 0; ScanInto is the
// double-collect k-word gather with its closing announce check. Both must
// run at 0 allocs/op and ≥5x faster than wide at n=8 (the measured gap is
// ~10-40x; see README).
func BenchmarkMultiwordSnapshot(b *testing.B) {
	for _, lanes := range []int{8, 16} {
		// 15-bit fields: 3 lanes/word -> 3 words at n=8, 6 words at n=16.
		const bound = 1<<15 - 1
		th := prim.RealThread(0)
		name := func(op string) string { return fmt.Sprintf("%s/n=%d", op, lanes) }
		b.Run(name("multiword-update"), func(b *testing.B) {
			s := core.NewFASnapshot(prim.NewRealWorld(), "s", lanes, core.WithSnapshotBound(bound))
			if !s.Multiword() {
				b.Fatal("bench config must stripe")
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s.Update(th, int64(i)&bound)
			}
		})
		b.Run(name("wide-update"), func(b *testing.B) {
			s := core.NewFASnapshot(prim.NewRealWorld(), "s", lanes)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s.Update(th, int64(i)&bound)
			}
		})
		b.Run(name("multiword-scan"), func(b *testing.B) {
			s := core.NewFASnapshot(prim.NewRealWorld(), "s", lanes, core.WithSnapshotBound(bound))
			s.Update(th, bound)
			view := make([]int64, lanes)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s.ScanInto(th, view)
			}
		})
		b.Run(name("wide-scan"), func(b *testing.B) {
			s := core.NewFASnapshot(prim.NewRealWorld(), "s", lanes)
			s.Update(th, bound)
			view := make([]int64, lanes)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s.ScanInto(th, view)
			}
		})
	}
}

// E-SNAP view cache (PR 7): steady-state scans against the anchor-keyed view
// cache vs the full helped double collect on the identical 8-lane multi-word
// configuration. A cache-hit scan is one cache read plus ONE fresh word-0
// XADD(0) — O(1) in the word count — where the full collect gathers 2k+1
// words and decodes every field; the acceptance criterion is ≥5x at n=8 with
// 0 allocs/op on the cached rows. The read-mostly rows keep one update per
// 1024 scans flowing (each one invalidates the anchor), which is the
// steady-state shape the slserve deployment sees; the pure rows bound the
// gap from above. The configuration is slserve's own 8-lane /msnapshot
// shape — 24-bit fields, ⌈lanes/2⌉ = 4 XADD words — so the gap measured
// here is the gap the server serves.
func BenchmarkMultiwordSnapshotCachedScan(b *testing.B) {
	const lanes, bound = 8, 1<<24 - 1 // 4 words at 24-bit fields: the slserve shape
	// Hold the thread as the interface the engine takes so the timed loops
	// measure the scan, not a per-call RealThread->Thread boxing.
	var th prim.Thread = prim.RealThread(0)
	mk := func(cached bool) *core.FASnapshot {
		s := core.NewFASnapshot(prim.NewRealWorld(), "s", lanes,
			core.WithSnapshotBound(bound), core.WithViewCache(cached))
		if !s.Multiword() {
			b.Fatal("bench config must stripe")
		}
		s.Update(th, bound)
		return s
	}
	b.Run("cached-scan/n=8", func(b *testing.B) {
		s := mk(true)
		view := make([]int64, lanes)
		s.ScanInto(th, view) // publish the entry; every timed scan is a hit
		warm := s.CacheStats().Misses
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.ScanInto(th, view)
		}
		// Hits are only tallied through an attached obs counter (the engine
		// keeps its fast path free of a mandatory atomic), so the check here
		// is the miss counter: every timed scan must have been a hit.
		if m := s.CacheStats().Misses - warm; m != 0 {
			b.Fatalf("timed scans missed the cache %d times", m)
		}
	})
	b.Run("full-collect-scan/n=8", func(b *testing.B) {
		s := mk(false)
		view := make([]int64, lanes)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s.ScanInto(th, view)
		}
	})
	b.Run("cached-read-mostly/n=8", func(b *testing.B) {
		s := mk(true)
		view := make([]int64, lanes)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if i%1024 == 0 {
				s.Update(th, int64(i)&bound) // moves the anchor: next scan misses
			}
			s.ScanInto(th, view)
		}
		b.ReportMetric(float64(s.CacheStats().Misses), "misses")
	})
	b.Run("full-collect-read-mostly/n=8", func(b *testing.B) {
		s := mk(false)
		view := make([]int64, lanes)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if i%1024 == 0 {
				s.Update(th, int64(i)&bound)
			}
			s.ScanInto(th, view)
		}
	})
}

// E-SHARD combine cache (PR 7): the epoch-keyed combine cache on the sharded
// counter's read path — a hit re-validates with one epoch XADD(0) instead of
// collecting every shard twice. Same read-mostly shape as the snapshot rows.
func BenchmarkShardedCachedRead(b *testing.B) {
	var th prim.Thread = prim.RealThread(0)
	for _, cached := range []bool{true, false} {
		name := "cached"
		if !cached {
			name = "full-collect"
		}
		b.Run(fmt.Sprintf("%s/shards=4", name), func(b *testing.B) {
			c := shard.NewCounter(prim.NewRealWorld(), "c", benchProcs, 4,
				shard.WithBound(1<<40), shard.WithReadCache(cached))
			c.Inc(th)
			c.Read(th)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if i%1024 == 0 {
					c.Inc(th)
				}
				c.Read(th)
			}
			if cached {
				// Hits only tally through an attached obs counter; the
				// miss count is the engine-side evidence the timed loop
				// ran on the cache (one miss per epoch-moving Inc).
				b.ReportMetric(float64(c.CacheStats().Misses), "misses")
			}
		})
	}
}

// E-SNAP multi-word under contention: the validated double-collect scan
// with a concurrent updater continuously landing XADDs and announces — the
// retry path and (since PR 5) the helping machinery are what this measures
// (single-threaded scans never retry). The default-budget row is the
// shipped configuration; the budget0 row forces every failed round straight
// into the pressure-raise/adopt path, pricing the helping worst case. Both
// must stay 0 allocs/op on the scanner side (the only allocation in the
// machinery is the HELPER's deposit, on the updater).
func BenchmarkMultiwordSnapshotContendedScan(b *testing.B) {
	for _, cfg := range []struct {
		name   string
		budget int
	}{{"default-budget", -1}, {"budget0-adopt", 0}} {
		b.Run(cfg.name, func(b *testing.B) {
			const lanes, bound = 8, 1<<15 - 1
			opts := []core.SnapshotOption{core.WithSnapshotBound(bound)}
			if cfg.budget >= 0 {
				opts = append(opts, core.WithScanRetryBudget(cfg.budget))
			}
			s := core.NewFASnapshot(prim.NewRealWorld(), "s", lanes, opts...)
			stop := make(chan struct{})
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				th := prim.RealThread(1)
				for v := int64(0); ; v++ {
					select {
					case <-stop:
						return
					default:
					}
					s.Update(th, v&bound)
					runtime.Gosched()
				}
			}()
			th := prim.RealThread(0)
			view := make([]int64, lanes)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.ScanInto(th, view)
			}
			b.StopTimer()
			close(stop)
			wg.Wait()
			hs := s.HelpStats()
			b.ReportMetric(float64(hs.Deposits), "deposits")
			b.ReportMetric(float64(hs.Adopts), "adopts")
			b.ReportMetric(float64(hs.Retries), "retries")
		})
	}
}

// PR 6 acceptance pair: the same hot paths with and without the telemetry
// registry attached. The always-on help/retry counters batch on slow paths
// only, and the retry-round histogram observes contended completions only,
// so obs-on must stay 0 allocs/op and within 5% of obs-off on every row —
// the criterion that keeps /metrics free on the fast path. The contended
// rows price the histogram's Observe on the retry path itself (the only
// place it runs); the uncontended rows prove attaching obs adds nothing.
func BenchmarkTelemetryOverhead(b *testing.B) {
	const lanes, bound = 8, 1<<15 - 1
	mkOpts := func(on bool, budget int) []core.SnapshotOption {
		opts := []core.SnapshotOption{core.WithSnapshotBound(bound)}
		if budget >= 0 {
			opts = append(opts, core.WithScanRetryBudget(budget))
		}
		if on {
			opts = append(opts, core.WithSnapshotObs(obs.SnapMetrics{
				ScanRounds: obs.NewRegistry().Histogram("bench_scan_rounds", "bench"),
			}))
		}
		return opts
	}
	for _, mode := range []struct {
		name string
		on   bool
	}{{"obs-off", false}, {"obs-on", true}} {
		b.Run("multiword-update/"+mode.name, func(b *testing.B) {
			s := core.NewFASnapshot(prim.NewRealWorld(), "s", lanes, mkOpts(mode.on, -1)...)
			th := prim.RealThread(0)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s.Update(th, int64(i)&bound)
			}
		})
		b.Run("multiword-scan/"+mode.name, func(b *testing.B) {
			s := core.NewFASnapshot(prim.NewRealWorld(), "s", lanes, mkOpts(mode.on, -1)...)
			th := prim.RealThread(0)
			s.Update(th, bound)
			view := make([]int64, lanes)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s.ScanInto(th, view)
			}
		})
		b.Run("contended-scan-budget0/"+mode.name, func(b *testing.B) {
			s := core.NewFASnapshot(prim.NewRealWorld(), "s", lanes, mkOpts(mode.on, 0)...)
			stop := make(chan struct{})
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				th := prim.RealThread(1)
				for v := int64(0); ; v++ {
					select {
					case <-stop:
						return
					default:
					}
					s.Update(th, v&bound)
					runtime.Gosched()
				}
			}()
			th := prim.RealThread(0)
			view := make([]int64, lanes)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.ScanInto(th, view)
			}
			b.StopTimer()
			close(stop)
			wg.Wait()
			b.ReportMetric(float64(s.HelpStats().Retries), "retries")
		})
	}
}

// E-SNAP simple-object op: one Algorithm 1 operation (logical-clock tick)
// over the packed vs the wide snapshot. The snapshot step is one of many in
// Execute (graph collect + linearize dominate as history grows), so the gap
// is smaller than the raw-snapshot rows — the packed win here is that the
// SHARED state is one machine word. 2 lanes x 31-bit fields give a ~2^31 op
// budget, far beyond any b.N.
func BenchmarkSimpleObjectOp(b *testing.B) {
	const lanes, refBound = 2, int64(1)<<31 - 1 // 2 x 31 = 62 bits: packs
	th := prim.RealThread(0)
	b.Run("packed-clock-tick", func(b *testing.B) {
		c := core.NewLogicalClockFromFA(prim.NewRealWorld(), "c", lanes, core.WithSnapshotBound(refBound))
		if !c.Packed() {
			b.Fatal("bench config must pack")
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.Tick(th)
		}
	})
	b.Run("wide-clock-tick", func(b *testing.B) {
		c := core.NewLogicalClockFromFA(prim.NewRealWorld(), "c", lanes)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.Tick(th)
		}
	})
}

// E-PACK contended read: fetch&add(0) on the wide register is a single atomic
// pointer load under the copy-on-write implementation — it must stay 0
// allocs/op and mutex-free while a writer keeps publishing. (Before COW this
// benchmark serialised on the register mutex and copied the word per read.)
func BenchmarkWideFetchAddContendedRead(b *testing.B) {
	w := prim.NewRealWorld()
	r := w.FetchAdd("R")
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		th := prim.RealThread(1)
		delta := big.NewInt(1)
		for {
			select {
			case <-stop:
				return
			default:
			}
			r.FetchAdd(th, delta)
			runtime.Gosched()
		}
	}()
	th := prim.RealThread(0)
	zeroDelta := new(big.Int)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.FetchAdd(th, zeroDelta)
	}
	b.StopTimer()
	close(stop)
	wg.Wait()
}

// E-POOL: lane lease overhead — the cost of routing an operation through
// Acquire/Release instead of a dedicated process identity.
func BenchmarkPoolWith(b *testing.B) {
	w := prim.NewRealWorld()
	p := pool.New(w, "p", benchProcs)
	c := shard.NewCounter(w, "c", benchProcs, 4)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			p.With(func(t prim.RealThread) { c.Inc(t) })
		}
	})
}

// E-WIDTH: register width growth of the fetch&add constructions (the
// Section 6 cost). Reports bits per written value magnitude.
func BenchmarkRegisterWidth(b *testing.B) {
	for _, maxVal := range []int64{16, 256, 4096} {
		b.Run(fmt.Sprintf("maxreg-unary/val=%d", maxVal), func(b *testing.B) {
			w := sim.NewSoloWorld()
			m := core.NewFAMaxRegister(w, "m", benchProcs)
			th := sim.SoloThread(0)
			for i := 0; i < b.N; i++ {
				m.WriteMax(th, int64(i)%maxVal)
			}
			b.ReportMetric(float64(m.Width(th)), "bits")
		})
		b.Run(fmt.Sprintf("snapshot-binary/val=%d", maxVal), func(b *testing.B) {
			w := sim.NewSoloWorld()
			s := core.NewFASnapshot(w, "s", benchProcs)
			th := sim.SoloThread(0)
			for i := 0; i < b.N; i++ {
				s.Update(th, int64(i)%maxVal)
			}
			b.ReportMetric(float64(s.Width(th)), "bits")
		})
	}
}

// E-CHECK: throughput of the verification machinery itself.
func BenchmarkCheckers(b *testing.B) {
	b.Run("explore+stronglin", func(b *testing.B) {
		setup := func(w *sim.World) []sim.Program {
			m := core.NewFAMaxRegister(w, "m", 2)
			wm := sim.Op{Name: "w", Spec: spec.MkOp(spec.MethodWriteMax, 1),
				Run: func(t prim.Thread) string { m.WriteMax(t, 1); return spec.RespOK }}
			rm := sim.Op{Name: "r", Spec: spec.MkOp(spec.MethodReadMax),
				Run: func(t prim.Thread) string { return spec.RespInt(m.ReadMax(t)) }}
			return []sim.Program{{wm, rm}, {wm, rm}}
		}
		for i := 0; i < b.N; i++ {
			tree, err := sim.Explore(2, setup, nil)
			if err != nil {
				b.Fatal(err)
			}
			if res := history.CheckStrongLin(tree, spec.MaxRegister{}, nil); !res.Ok {
				b.Fatal("unexpected refutation")
			}
		}
	})
	b.Run("wgl-linearizability", func(b *testing.B) {
		w := prim.NewRealWorld()
		m := core.NewFAMaxRegister(w, "m", 4)
		rngs := make([]*rand.Rand, 4)
		for p := range rngs {
			rngs[p] = rand.New(rand.NewSource(int64(p) + 5))
		}
		h := history.Stress(history.StressConfig{
			Procs:      4,
			OpsPerProc: 50,
			Gen: func(p, i int) history.StressOp {
				if rngs[p].Intn(2) == 0 {
					v := int64(rngs[p].Intn(16))
					return history.StressOp{Op: spec.MkOp(spec.MethodWriteMax, v),
						Run: func(t prim.Thread) string { m.WriteMax(t, v); return spec.RespOK }}
				}
				return history.StressOp{Op: spec.MkOp(spec.MethodReadMax),
					Run: func(t prim.Thread) string { return spec.RespInt(m.ReadMax(t)) }}
			},
		})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if res := history.CheckLinearizable(h, spec.MaxRegister{}); !res.Ok {
				b.Fatal("stress history rejected")
			}
		}
	})
}

// E-ADV as a benchmark: trials per second of the adversary game.
func BenchmarkAdversaryGame(b *testing.B) {
	b.Run("vs-strongly-linearizable", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			PlayAdversary(AdversaryVsStrong, 10, int64(i))
		}
	})
	b.Run("vs-linearizable", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			PlayAdversary(AdversaryVsLinearizable, 10, int64(i))
		}
	})
}
