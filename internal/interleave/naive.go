package interleave

import (
	"fmt"
	"math/big"
)

// NaiveCodec is the "natural idea" the paper rejects in Section 3.1: give
// process i the consecutive bits i*d .. (i+1)*d-1 of the shared word. It
// bounds the value each process can store at 2^d - 1, which is why the
// constructions use interleaved lanes instead. It exists for the E-ABL2
// ablation and as a contrast in the documentation.
type NaiveCodec struct {
	n, d int
	max  *big.Int
}

// ErrLaneOverflow is reported when a value does not fit in a naive d-bit
// field.
type ErrLaneOverflow struct {
	Lane  int
	Width int
	Value *big.Int
}

func (e *ErrLaneOverflow) Error() string {
	return fmt.Sprintf("interleave: value %v overflows %d-bit field of lane %d", e.Value, e.Width, e.Lane)
}

// NewNaive returns a codec with n consecutive fields of d bits each.
func NewNaive(n, d int) (NaiveCodec, error) {
	if n < 1 || d < 1 {
		return NaiveCodec{}, fmt.Errorf("interleave: naive codec needs n >= 1 and d >= 1, got n=%d d=%d", n, d)
	}
	max := new(big.Int).Lsh(big.NewInt(1), uint(d))
	max.Sub(max, big.NewInt(1))
	return NaiveCodec{n: n, d: d, max: max}, nil
}

// Lanes returns the number of fields.
func (c NaiveCodec) Lanes() int { return c.n }

// Width returns the bit width d of each field.
func (c NaiveCodec) Width() int { return c.d }

// Spread places v into field lane, or reports ErrLaneOverflow when v needs
// more than d bits.
func (c NaiveCodec) Spread(v *big.Int, lane int) (*big.Int, error) {
	if v.Sign() < 0 {
		return nil, fmt.Errorf("interleave: naive Spread requires a non-negative value")
	}
	if v.Cmp(c.max) > 0 {
		return nil, &ErrLaneOverflow{Lane: lane, Width: c.d, Value: new(big.Int).Set(v)}
	}
	return new(big.Int).Lsh(v, uint(lane*c.d)), nil
}

// Lane extracts field lane from the packed word.
func (c NaiveCodec) Lane(word *big.Int, lane int) *big.Int {
	out := new(big.Int).Rsh(word, uint(lane*c.d))
	return out.And(out, c.max)
}
