package interleave

import (
	"fmt"
	"math"
)

// MultiPacked is the multi-word extension of Packed: n lanes of width bits
// each, striped across k machine words. Word w hosts the contiguous lane
// range [w*perWord, (w+1)*perWord), each lane a fixed-width binary field of
// its word — so a lane's field never straddles a word boundary, and a field
// delta is still an exact in-word addition that cannot carry across lanes
// (the Packed invariant, per word).
//
// Packed fits when n*width <= 63; MultiPacked fits whenever width <= 63,
// whatever n: the word count grows instead of the bound shrinking. This is
// the codec that lifts the single-word snapshot's n × bitWidth(maxValue) ≤ 63
// ceiling. What it does NOT give for free is atomic cross-word reads: a
// multi-word register state can only be observed one word at a time, so a
// consumer that needs a consistent view must validate its collect (the
// epoch/seqlock protocol of core.FASnapshot's multi-word engine — naive
// multi-register combining reads are not even linearizable, let alone
// strongly linearizable; see the engine's negative model check).
//
// The zero value is not usable; construct with NewMultiPacked.
type MultiPacked struct {
	n       int
	width   int
	perWord int // lanes hosted per word: floor(63 / width)
	words   int // ceil(n / perWord)
	mask    int64
}

// NewMultiPacked returns a codec striping n lanes of width bits over
// ceil(n / floor(63/width)) words, or ok=false when no word can host even one
// field (width > 63) or the shape is degenerate (n < 1, width < 1).
func NewMultiPacked(n, width int) (MultiPacked, bool) {
	if n < 1 || width < 1 || width > packedBits {
		return MultiPacked{}, false
	}
	perWord := packedBits / width
	return MultiPacked{
		n:       n,
		width:   width,
		perWord: perWord,
		words:   (n + perWord - 1) / perWord,
		mask:    (int64(1) << width) - 1,
	}, true
}

// MustNewMultiPacked is like NewMultiPacked but panics when the shape is
// invalid. It is intended for callers that have already checked the width.
func MustNewMultiPacked(n, width int) MultiPacked {
	m, ok := NewMultiPacked(n, width)
	if !ok {
		panic(fmt.Sprintf("interleave: %d lanes x %d bits have no multi-word striping", n, width))
	}
	return m
}

// Lanes returns the number of lanes n.
func (m MultiPacked) Lanes() int { return m.n }

// LaneWidth returns the bits per lane.
func (m MultiPacked) LaneWidth() int { return m.width }

// Words returns the word count k.
func (m MultiPacked) Words() int { return m.words }

// LanesPerWord returns how many lanes each word hosts (the last word may host
// fewer).
func (m MultiPacked) LanesPerWord() int { return m.perWord }

// WordOf returns the index of the word hosting the given lane.
func (m MultiPacked) WordOf(lane int) int { return lane / m.perWord }

// slot is the lane's field index within its word.
func (m MultiPacked) slot(lane int) int { return lane % m.perWord }

// Spread places the compact lane value v into the lane's field of its OWN
// word: the value to add to word WordOf(lane) so that an all-zero field
// becomes v. The multi-word analogue of Packed.Spread.
func (m MultiPacked) Spread(v int64, lane int) int64 {
	if v < 0 || v > m.mask {
		panic(fmt.Sprintf("interleave: multipacked Spread value %d outside [0, %d]", v, m.mask))
	}
	return v << (m.slot(lane) * m.width)
}

// FieldDelta returns the signed fetch&add delta, to be applied to word
// WordOf(lane), that changes the lane's binary field from value from to value
// to: Packed.FieldDelta relative to the owning word. The arithmetic is exact
// within the field, so no carry or borrow escapes it.
func (m MultiPacked) FieldDelta(from, to int64, lane int) int64 {
	if from < 0 || from > m.mask || to < 0 || to > m.mask {
		panic(fmt.Sprintf("interleave: multipacked FieldDelta values (%d, %d) outside [0, %d]", from, to, m.mask))
	}
	return (to - from) << (m.slot(lane) * m.width)
}

// Lane extracts the given lane's value from the value of its OWN word (the
// caller selects the word with WordOf). word must be non-negative.
func (m MultiPacked) Lane(word int64, lane int) int64 {
	if word < 0 {
		panic("interleave: multipacked Lane requires a non-negative word")
	}
	return (word >> (m.slot(lane) * m.width)) & m.mask
}

// GatherWord decodes every lane hosted by word w from the word value into
// view (a slice of length Lanes), leaving other words' lanes untouched: the
// allocation-free scatter-gather half used by multi-word scans. Calling it
// once per word with that word's value fills the whole view.
func (m MultiPacked) GatherWord(word int64, w int, view []int64) {
	if len(view) != m.n {
		panic(fmt.Sprintf("interleave: multipacked GatherWord view has length %d, want %d", len(view), m.n))
	}
	if word < 0 {
		panic("interleave: multipacked GatherWord requires a non-negative word")
	}
	lo := w * m.perWord
	hi := lo + m.perWord
	if hi > m.n {
		hi = m.n
	}
	for lane := lo; lane < hi; lane++ {
		view[lane] = (word >> ((lane - lo) * m.width)) & m.mask
	}
}

// ScatterWords encodes a full view (length Lanes) into the per-word register
// values, writing them into words (a slice of length Words): the inverse of
// repeated GatherWord, used by tests and oracles.
func (m MultiPacked) ScatterWords(view []int64, words []int64) {
	if len(view) != m.n || len(words) != m.words {
		panic(fmt.Sprintf("interleave: multipacked ScatterWords got (%d, %d), want (%d, %d)",
			len(view), len(words), m.n, m.words))
	}
	for w := range words {
		words[w] = 0
	}
	for lane, v := range view {
		words[m.WordOf(lane)] |= m.Spread(v, lane)
	}
}

// MaxMultiFieldBound returns the largest maxValue whose binary-field encoding
// stripes n lanes over at most the given number of words — the multi-word
// analogue of MaxFieldBound, built on the same per-word bit budget so
// bound-sizing callers can never desynchronize from the engine. With words >=
// n every lane gets its own word and the bound is the full 63-bit domain
// (math.MaxInt64); it returns 0 when not even 1-bit fields fit the word
// budget (n > 63*words).
func MaxMultiFieldBound(n, words int) int64 {
	if n < 1 || words < 1 {
		panic(fmt.Sprintf("interleave: MaxMultiFieldBound requires n >= 1 and words >= 1, got (%d, %d)", n, words))
	}
	perWord := (n + words - 1) / words // the fullest word hosts this many lanes
	w := packedBits / perWord
	if w < 1 {
		return 0
	}
	if w >= 63 {
		return math.MaxInt64
	}
	return int64(1)<<w - 1
}
