package interleave

import (
	"fmt"
	"math/bits"
)

// MultiPacked is the multi-word extension of Packed: n lanes of width bits
// each, striped across k machine words. Word w hosts the contiguous lane
// range [w*perWord, (w+1)*perWord), each lane a fixed-width binary field of
// its word — so a lane's field never straddles a word boundary, and a field
// delta is still an exact in-word addition that cannot carry across lanes
// (the Packed invariant, per word).
//
// # The per-word sequence field
//
// The top SeqBits bits of every word (bits 48..63, sign bit included) are a
// wrapping modification counter, not lane payload: every value-changing
// update adds SeqIncrement to its field delta, so the payload change and the
// counter bump land in ONE atomic XADD. The counter is what lets a
// multi-word consumer validate a collect: a multi-word register state can
// only be observed one word at a time, and an unvalidated multi-register
// collect is not even linearizable (see core.FASnapshot's negative model
// check) — but two consecutive collects that read identical words (payload
// AND sequence field) pin the whole k-word state to a real instant between
// them. Without the sequence field, word-value equality would be fooled by
// ABA (an update away from a value and back); with it, equality can only lie
// if a word receives an exact multiple of 2^16 value-changing updates
// between one collect's read of it and the next's — the standard seqlock
// wrap caveat, impossible inside a scan window on real hardware unless the
// scanner is descheduled through ≥ 65536 writes to one word.
//
// The sequence field wraps through the sign bit by design (int64 addition is
// mod 2^64, so the carry out of bit 63 vanishes and lane payloads are
// untouched); word values are therefore legitimately negative once a word's
// counter reaches 2^15, and all payload extraction here uses logical
// (uint64) shifts.
//
// Packed fits when n*width <= 63; MultiPacked fits whenever width <=
// LaneBits = 48, whatever n: the word count grows instead of the bound
// shrinking. This is the codec that lifts the single-word snapshot's
// n × bitWidth(maxValue) ≤ 63 ceiling.
//
// The zero value is not usable; construct with NewMultiPacked.
type MultiPacked struct {
	n       int
	width   int
	perWord int // lanes hosted per word: floor(LaneBits / width)
	words   int // ceil(n / perWord)
	mask    int64
}

const (
	// SeqBits is the width of the per-word sequence field.
	SeqBits = 16
	// LaneBits is the payload bit budget of a multi-packed word: a 64-bit
	// word minus the sequence field. Unlike Packed's 63-bit budget there is
	// no sign-bit exclusion — the sequence field owns bit 63 and wraps
	// through it.
	LaneBits = 64 - SeqBits
	// SeqIncrement is the XADD delta that bumps a word's sequence field by
	// one: a value-changing update adds it to its field delta so payload
	// change and counter bump are one atomic step.
	SeqIncrement = int64(1) << LaneBits
	// payloadMask selects the lane payload bits of a word.
	payloadMask = uint64(1)<<LaneBits - 1
)

// NewMultiPacked returns a codec striping n lanes of width bits over
// ceil(n / floor(LaneBits/width)) words, or ok=false when no word can host
// even one field next to the sequence field (width > LaneBits) or the shape
// is degenerate (n < 1, width < 1). Bounds needing 49..63-bit fields do NOT
// stripe — they exceed the validated word's payload budget — and callers
// fall back to the wide register for them.
func NewMultiPacked(n, width int) (MultiPacked, bool) {
	if n < 1 || width < 1 || width > LaneBits {
		return MultiPacked{}, false
	}
	perWord := LaneBits / width
	return MultiPacked{
		n:       n,
		width:   width,
		perWord: perWord,
		words:   (n + perWord - 1) / perWord,
		mask:    (int64(1) << width) - 1,
	}, true
}

// MustNewMultiPacked is like NewMultiPacked but panics when the shape is
// invalid. It is intended for callers that have already checked the width.
func MustNewMultiPacked(n, width int) MultiPacked {
	m, ok := NewMultiPacked(n, width)
	if !ok {
		panic(fmt.Sprintf("interleave: %d lanes x %d bits have no multi-word striping", n, width))
	}
	return m
}

// Lanes returns the number of lanes n.
func (m MultiPacked) Lanes() int { return m.n }

// LaneWidth returns the bits per lane.
func (m MultiPacked) LaneWidth() int { return m.width }

// Words returns the word count k.
func (m MultiPacked) Words() int { return m.words }

// LanesPerWord returns how many lanes each word hosts (the last word may host
// fewer).
func (m MultiPacked) LanesPerWord() int { return m.perWord }

// WordOf returns the index of the word hosting the given lane.
func (m MultiPacked) WordOf(lane int) int { return lane / m.perWord }

// slot is the lane's field index within its word.
func (m MultiPacked) slot(lane int) int { return lane % m.perWord }

// Seq extracts a word's sequence field: the number of value-changing updates
// the word has received, modulo 2^SeqBits.
func (m MultiPacked) Seq(word int64) int64 {
	return int64(uint64(word) >> LaneBits)
}

// Payload returns the word with its sequence field cleared: the lane bits
// only, always non-negative.
func (m MultiPacked) Payload(word int64) int64 {
	return int64(uint64(word) & payloadMask)
}

// Spread places the compact lane value v into the lane's field of its OWN
// word: the value to add to word WordOf(lane) so that an all-zero field
// becomes v. The multi-word analogue of Packed.Spread. It does not bump the
// sequence field; writers add SeqIncrement themselves.
func (m MultiPacked) Spread(v int64, lane int) int64 {
	if v < 0 || v > m.mask {
		panic(fmt.Sprintf("interleave: multipacked Spread value %d outside [0, %d]", v, m.mask))
	}
	return v << (m.slot(lane) * m.width)
}

// FieldDelta returns the signed fetch&add delta, to be applied to word
// WordOf(lane), that changes the lane's binary field from value from to
// value to AND bumps the word's sequence field by one: Packed.FieldDelta
// relative to the owning word, plus SeqIncrement. The payload arithmetic is
// exact within the field, so no carry or borrow escapes it; the sequence bump
// lands above the payload bits in the same atomic addition.
func (m MultiPacked) FieldDelta(from, to int64, lane int) int64 {
	if from < 0 || from > m.mask || to < 0 || to > m.mask {
		panic(fmt.Sprintf("interleave: multipacked FieldDelta values (%d, %d) outside [0, %d]", from, to, m.mask))
	}
	return (to-from)<<(m.slot(lane)*m.width) + SeqIncrement
}

// Lane extracts the given lane's value from the value of its OWN word (the
// caller selects the word with WordOf). The word may be negative — the
// sequence field wraps through the sign bit — so extraction uses logical
// shifts.
func (m MultiPacked) Lane(word int64, lane int) int64 {
	return int64((uint64(word) >> (m.slot(lane) * m.width)) & uint64(m.mask))
}

// GatherWord decodes every lane hosted by word w from the word value into
// view (a slice of length Lanes), leaving other words' lanes untouched: the
// allocation-free scatter-gather half used by multi-word scans. Calling it
// once per word with that word's value fills the whole view. The sequence
// field is ignored.
func (m MultiPacked) GatherWord(word int64, w int, view []int64) {
	if len(view) != m.n {
		panic(fmt.Sprintf("interleave: multipacked GatherWord view has length %d, want %d", len(view), m.n))
	}
	lo := w * m.perWord
	hi := lo + m.perWord
	if hi > m.n {
		hi = m.n
	}
	u := uint64(word)
	for lane := lo; lane < hi; lane++ {
		view[lane] = int64((u >> ((lane - lo) * m.width)) & uint64(m.mask))
	}
}

// ScatterWords encodes a full view (length Lanes) into the per-word register
// values with zero sequence fields, writing them into words (a slice of
// length Words): the inverse of repeated GatherWord, used by tests and
// oracles.
func (m MultiPacked) ScatterWords(view []int64, words []int64) {
	if len(view) != m.n || len(words) != m.words {
		panic(fmt.Sprintf("interleave: multipacked ScatterWords got (%d, %d), want (%d, %d)",
			len(view), len(words), m.n, m.words))
	}
	for w := range words {
		words[w] = 0
	}
	for lane, v := range view {
		words[m.WordOf(lane)] |= m.Spread(v, lane)
	}
}

// PayloadLen returns the bit length of a word's occupied lane payload,
// ignoring the sequence field — the per-word term of a multi-word register's
// width measure.
func (m MultiPacked) PayloadLen(word int64) int {
	return bits.Len64(uint64(word) & payloadMask)
}

// MaxMultiFieldBound returns the largest maxValue whose binary-field encoding
// hosts n lanes within at most the given number of machine words under the
// engine-selection rules — the multi-word analogue of MaxFieldBound, built
// on the same per-word budgets so bound-sizing callers can never
// desynchronize from the engine. Within one word the single packed word
// (63-bit budget, no sequence field — a one-word register needs no collect
// validation) is always admissible, so the result is the larger of the
// packed bound and the multi-word bound (LaneBits of payload per word next
// to the sequence field). With words >= n every lane gets a full LaneBits
// field (or, for n = 1, the packed word's 63 bits); it returns 0 when
// neither engine fits the word budget (n > LaneBits*words and n > 63).
func MaxMultiFieldBound(n, words int) int64 {
	if n < 1 || words < 1 {
		panic(fmt.Sprintf("interleave: MaxMultiFieldBound requires n >= 1 and words >= 1, got (%d, %d)", n, words))
	}
	bound := MaxFieldBound(n) // one packed word, always within budget
	perWord := (n + words - 1) / words
	// Multi-word fields top out at LaneBits (48) < 63, so the full int64
	// domain can only come from the packed term (n = 1).
	if w := LaneBits / perWord; w >= 1 {
		if multi := int64(1)<<w - 1; multi > bound {
			bound = multi
		}
	}
	return bound
}
