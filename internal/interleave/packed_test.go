package interleave

import (
	"math/big"
	"math/rand"
	"testing"
)

func TestNewPackedBudget(t *testing.T) {
	cases := []struct {
		n, width int
		ok       bool
	}{
		{1, 1, true}, {1, 63, true}, {2, 31, true}, {2, 32, false},
		{3, 21, true}, {3, 22, false}, {63, 1, true}, {64, 1, false},
		{0, 4, false}, {4, 0, false}, {-1, 4, false},
	}
	for _, c := range cases {
		if _, ok := NewPacked(c.n, c.width); ok != c.ok {
			t.Errorf("NewPacked(%d, %d) ok = %v, want %v", c.n, c.width, ok, c.ok)
		}
	}
}

func TestMustNewPackedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNewPacked(8, 8) did not panic")
		}
	}()
	MustNewPacked(8, 8)
}

func TestPackedSpreadLaneRoundTrip(t *testing.T) {
	p := MustNewPacked(3, 7)
	rng := rand.New(rand.NewSource(1))
	word := int64(0)
	want := make([]int64, 3)
	for lane := 0; lane < 3; lane++ {
		v := int64(rng.Intn(128))
		want[lane] = v
		word += p.Spread(v, lane)
	}
	for lane := 0; lane < 3; lane++ {
		if got := p.Lane(word, lane); got != want[lane] {
			t.Fatalf("Lane(%d) = %d, want %d", lane, got, want[lane])
		}
	}
}

func TestPackedSpreadRejectsOutOfRange(t *testing.T) {
	p := MustNewPacked(2, 4)
	for _, bad := range []int64{-1, 16, 99} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Spread(%d) did not panic", bad)
				}
			}()
			p.Spread(bad, 0)
		}()
	}
}

// TestPackedMatchesWideUnary: raising lanes by unary deltas through the
// packed codec decodes to the same per-lane unary values as the wide codec —
// the packed word is a faithful bounded image of the interleaved big.Int.
func TestPackedMatchesWideUnary(t *testing.T) {
	const lanes, bound = 3, 5
	p := MustNewPacked(lanes, bound+1)
	c := MustNew(lanes)
	rng := rand.New(rand.NewSource(7))

	word := int64(0)
	wide := new(big.Int)
	cur := make([]int, lanes)
	for step := 0; step < 200; step++ {
		lane := rng.Intn(lanes)
		to := 1 + rng.Intn(bound)
		if to <= cur[lane] {
			continue
		}
		word += p.Spread(PackedUnaryDelta(cur[lane], to), lane)
		wide.Add(wide, c.Spread(UnaryDelta(cur[lane], to), lane))
		cur[lane] = to

		for i := 0; i < lanes; i++ {
			pv := PackedUnaryValue(p.Lane(word, i))
			wv := UnaryValue(c.Lane(wide, i))
			if pv != wv || pv != cur[i] {
				t.Fatalf("step %d lane %d: packed %d, wide %d, want %d", step, i, pv, wv, cur[i])
			}
		}
	}
}

func TestPackedUnaryDelta(t *testing.T) {
	for from := 0; from < 10; from++ {
		for to := from + 1; to < 12; to++ {
			got := PackedUnaryDelta(from, to)
			want := int64(0)
			for k := from + 1; k <= to; k++ {
				want |= 1 << k
			}
			if got != want {
				t.Fatalf("PackedUnaryDelta(%d, %d) = %b, want %b", from, to, got, want)
			}
		}
	}
}

func TestPackedUnaryDeltaPanics(t *testing.T) {
	for _, bad := range [][2]int{{3, 3}, {5, 2}, {-1, 4}, {10, 63}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("PackedUnaryDelta(%d, %d) did not panic", bad[0], bad[1])
				}
			}()
			PackedUnaryDelta(bad[0], bad[1])
		}()
	}
}

func TestPackedUnaryValue(t *testing.T) {
	if got := PackedUnaryValue(0); got != 0 {
		t.Fatalf("PackedUnaryValue(0) = %d, want 0", got)
	}
	for k := 1; k < 20; k++ {
		v := PackedUnaryDelta(0, k) // bits 1..k
		if got := PackedUnaryValue(v); got != k {
			t.Fatalf("PackedUnaryValue(unary %d) = %d", k, got)
		}
	}
}

// --- binary field deltas (packed snapshot) -----------------------------------

func TestFieldWidth(t *testing.T) {
	cases := []struct {
		maxValue int64
		want     int
	}{
		{0, 1}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1<<15 - 1, 15}, {1 << 15, 16}, {1<<62 - 1, 62}, {1<<63 - 1, 63},
	}
	for _, c := range cases {
		if got := FieldWidth(c.maxValue); got != c.want {
			t.Errorf("FieldWidth(%d) = %d, want %d", c.maxValue, got, c.want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("FieldWidth(-1) did not panic")
		}
	}()
	FieldWidth(-1)
}

// TestMaxFieldBound: for every lane count the returned bound packs and is
// maximal (bound+1 needs a wider field that no longer fits); past 63 lanes
// nothing packs.
func TestMaxFieldBound(t *testing.T) {
	for n := 1; n <= 70; n++ {
		b := MaxFieldBound(n)
		if n > 63 {
			if b != 0 {
				t.Fatalf("MaxFieldBound(%d) = %d, want 0", n, b)
			}
			continue
		}
		if b < 1 {
			t.Fatalf("MaxFieldBound(%d) = %d, want >= 1", n, b)
		}
		if _, ok := NewPacked(n, FieldWidth(b)); !ok {
			t.Fatalf("MaxFieldBound(%d) = %d does not pack", n, b)
		}
		if b == int64(1)<<62 { // guard the +1 overflow for the 1-lane case
			continue
		}
		if b != 1<<63-1 {
			if _, ok := NewPacked(n, FieldWidth(b+1)); ok {
				t.Fatalf("MaxFieldBound(%d) = %d is not maximal: %d also packs", n, b, b+1)
			}
		}
	}
}

// TestFieldDeltaRoundTrip: applying signed field deltas to a packed word
// tracks per-lane values exactly — raises, lowers, and zero-crossings never
// leak into neighbouring fields. This is the correctness core of the packed
// snapshot's Update.
func TestFieldDeltaRoundTrip(t *testing.T) {
	const lanes, width = 4, 5 // 20 bits
	p := MustNewPacked(lanes, width)
	rng := rand.New(rand.NewSource(3))
	word := int64(0)
	cur := make([]int64, lanes)
	for step := 0; step < 500; step++ {
		lane := rng.Intn(lanes)
		to := int64(rng.Intn(1 << width))
		word += p.FieldDelta(cur[lane], to, lane)
		cur[lane] = to
		if word < 0 {
			t.Fatalf("step %d: word went negative", step)
		}
		for i := 0; i < lanes; i++ {
			if got := p.Lane(word, i); got != cur[i] {
				t.Fatalf("step %d lane %d: decoded %d, want %d", step, i, got, cur[i])
			}
		}
	}
}

// TestFieldDeltaMatchesWideDelta: the packed field delta is numerically the
// wide Codec.Delta of the same transition, re-laid onto contiguous fields —
// verified by comparing full decoded states after each update on both codecs.
func TestFieldDeltaMatchesWideDelta(t *testing.T) {
	const lanes = 3
	p := MustNewPacked(lanes, 4)
	c := MustNew(lanes)
	rng := rand.New(rand.NewSource(9))
	word := int64(0)
	wide := new(big.Int)
	cur := make([]int64, lanes)
	for step := 0; step < 300; step++ {
		lane := rng.Intn(lanes)
		to := int64(rng.Intn(16))
		word += p.FieldDelta(cur[lane], to, lane)
		wide.Add(wide, c.Delta(big.NewInt(cur[lane]), big.NewInt(to), lane))
		cur[lane] = to
		for i := 0; i < lanes; i++ {
			if pv, wv := p.Lane(word, i), c.Lane(wide, i).Int64(); pv != wv || pv != cur[i] {
				t.Fatalf("step %d lane %d: packed %d, wide %d, want %d", step, i, pv, wv, cur[i])
			}
		}
	}
}

func TestFieldDeltaPanics(t *testing.T) {
	p := MustNewPacked(2, 4)
	for _, bad := range [][2]int64{{-1, 3}, {3, -1}, {16, 0}, {0, 16}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("FieldDelta(%d, %d) did not panic", bad[0], bad[1])
				}
			}()
			p.FieldDelta(bad[0], bad[1], 0)
		}()
	}
}

// --- memoized wide deltas ----------------------------------------------------

func TestSpreadUnaryDeltaMemoized(t *testing.T) {
	c := MustNew(3)
	a := c.SpreadUnaryDelta(1, 2, 5)
	b := c.SpreadUnaryDelta(1, 2, 5)
	if a != b {
		t.Fatal("repeated small SpreadUnaryDelta did not return the cached value")
	}
	want := c.Spread(UnaryDelta(2, 5), 1)
	if a.Cmp(want) != 0 {
		t.Fatalf("memoized delta = %v, want %v", a, want)
	}
	// Beyond the memo cap it still computes correctly.
	big1 := c.SpreadUnaryDelta(0, memoMaxTo, memoMaxTo+10)
	if big1.Cmp(c.Spread(UnaryDelta(memoMaxTo, memoMaxTo+10), 0)) != 0 {
		t.Fatal("uncached SpreadUnaryDelta mismatch")
	}
}

func TestSpreadBitDeltaMemoized(t *testing.T) {
	c := MustNew(4)
	a := c.SpreadBitDelta(2, 7)
	b := c.SpreadBitDelta(2, 7)
	if a != b {
		t.Fatal("repeated small SpreadBitDelta did not return the cached value")
	}
	if a.BitLen() != c.BitPos(2, 7)+1 || a.Bit(c.BitPos(2, 7)) != 1 {
		t.Fatalf("SpreadBitDelta(2, 7) = %v, want single bit at %d", a, c.BitPos(2, 7))
	}
	huge := c.SpreadBitDelta(1, memoMaxBitPos)
	if huge.Bit(c.BitPos(1, memoMaxBitPos)) != 1 {
		t.Fatal("uncached SpreadBitDelta mismatch")
	}
}

func TestSmallInt(t *testing.T) {
	if SmallInt(5) != SmallInt(5) {
		t.Fatal("SmallInt(5) not cached")
	}
	if SmallInt(5).Int64() != 5 {
		t.Fatal("SmallInt(5) wrong value")
	}
	if SmallInt(memoMaxTo+1).Int64() != memoMaxTo+1 {
		t.Fatal("uncached SmallInt wrong value")
	}
}
