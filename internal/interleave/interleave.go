// Package interleave packs n independent unbounded bit-lanes into a single
// arbitrary-precision word.
//
// Lane i of an n-lane word occupies bit positions i, n+i, 2n+i, 3n+i, ....
// This is the representation used by the fetch&add-based constructions of
// Attiya, Castañeda and Enea (PODC 2024, Sections 3.1 and 3.2), originally
// from the recoverable fetch&add of Nahum et al. (OPODIS 2021): every process
// owns one lane of a shared fetch&add register and can update its lane —
// without bound on the stored value — by adding a delta whose set bits all
// fall inside its own lane.
package interleave

import (
	"fmt"
	"math/big"
	"sync"
)

// Codec maps between compact per-lane values and their interleaved positions
// inside an n-lane word. The zero value is not usable; construct with New.
type Codec struct {
	n int
}

// New returns a codec for words with n interleaved lanes.
func New(n int) (Codec, error) {
	if n < 1 {
		return Codec{}, fmt.Errorf("interleave: lane count must be >= 1, got %d", n)
	}
	return Codec{n: n}, nil
}

// MustNew is like New but panics on an invalid lane count. It is intended for
// callers that have already validated n (for example, a process count checked
// at world construction time).
func MustNew(n int) Codec {
	c, err := New(n)
	if err != nil {
		panic(err)
	}
	return c
}

// Lanes returns the number of lanes n.
func (c Codec) Lanes() int { return c.n }

// BitPos returns the absolute bit position of lane-local bit k of lane i,
// that is k*n + i.
func (c Codec) BitPos(lane, k int) int { return k*c.n + lane }

// Spread expands the compact value v into lane positions of the given lane:
// bit k of v is placed at absolute position k*n + lane. v must be
// non-negative. The result shares no storage with v.
func (c Codec) Spread(v *big.Int, lane int) *big.Int {
	if v.Sign() < 0 {
		panic("interleave: Spread requires a non-negative value")
	}
	out := new(big.Int)
	for k := 0; k < v.BitLen(); k++ {
		if v.Bit(k) == 1 {
			out.SetBit(out, c.BitPos(lane, k), 1)
		}
	}
	return out
}

// Lane extracts the compact value of the given lane from an interleaved word:
// absolute bit k*n + lane of word becomes bit k of the result. word must be
// non-negative.
func (c Codec) Lane(word *big.Int, lane int) *big.Int {
	if word.Sign() < 0 {
		panic("interleave: Lane requires a non-negative word")
	}
	out := new(big.Int)
	for pos := lane; pos < word.BitLen(); pos += c.n {
		if word.Bit(pos) == 1 {
			out.SetBit(out, (pos-lane)/c.n, 1)
		}
	}
	return out
}

// Decode extracts every lane of the interleaved word.
func (c Codec) Decode(word *big.Int) []*big.Int {
	out := make([]*big.Int, c.n)
	for i := range out {
		out[i] = new(big.Int)
	}
	for pos := 0; pos < word.BitLen(); pos++ {
		if word.Bit(pos) == 1 {
			lane := pos % c.n
			out[lane].SetBit(out[lane], pos/c.n, 1)
		}
	}
	return out
}

// Encode builds the interleaved word holding vals[i] in lane i. It is the
// inverse of Decode. len(vals) must equal Lanes().
func (c Codec) Encode(vals []*big.Int) *big.Int {
	if len(vals) != c.n {
		panic(fmt.Sprintf("interleave: Encode needs exactly %d lane values, got %d", c.n, len(vals)))
	}
	out := new(big.Int)
	for i, v := range vals {
		out.Or(out, c.Spread(v, i))
	}
	return out
}

// Delta returns the fetch&add delta that changes lane i of a word currently
// holding the compact value from in that lane so that it holds to instead:
// Spread(to, lane) - Spread(from, lane). Adding the delta to a word whose
// lane i equals from yields a word whose lane i equals to and whose other
// lanes are untouched; this is exactly the posAdj-negAdj update of the
// snapshot construction (paper Section 3.2).
func (c Codec) Delta(from, to *big.Int, lane int) *big.Int {
	d := c.Spread(to, lane)
	return d.Sub(d, c.Spread(from, lane))
}

// UnaryValue interprets the compact lane value v as a unary-encoded natural
// number: value K is represented by bits 1..K set (bit 0 unused), as in the
// max-register construction of paper Section 3.1. It returns the index of the
// highest set bit, which for well-formed unary values equals the encoded
// number; 0 means "nothing written".
func UnaryValue(v *big.Int) int {
	if v.BitLen() == 0 {
		return 0
	}
	return v.BitLen() - 1
}

// UnaryDelta returns the compact lane delta that raises a unary-encoded lane
// from value `from` to value `to` (to > from >= 0): bits from+1..to. Spread
// it into the process's lane and fetch&add the result, as in paper Section
// 3.1 step 2.
func UnaryDelta(from, to int) *big.Int {
	if to <= from || from < 0 {
		panic(fmt.Sprintf("interleave: UnaryDelta requires 0 <= from < to, got from=%d to=%d", from, to))
	}
	out := new(big.Int)
	for k := from + 1; k <= to; k++ {
		out.SetBit(out, k, 1)
	}
	return out
}

// The delta memos cache the spread big.Ints of common small lane updates.
// They are PROCESS-GLOBAL, not per-codec: within one register a raising lane
// never repeats a (from, to) pair and an element bit is added once, so a
// per-register cache could never hit — the hits come from siblings (the S
// shard cores of a sharded object share lane geometry and value domain, and
// re-walk the same deltas) and from same-shape registers elsewhere in the
// process. Cached values are published once and never mutated afterwards;
// FetchAdd neither retains nor modifies its delta argument, so sharing one
// *big.Int across operations, registers and processes is safe.
var (
	unaryDeltas sync.Map // unaryDeltaKey -> *big.Int (Spread(UnaryDelta(from,to), lane))
	bitDeltas   sync.Map // int bit position -> *big.Int (single absolute bit)
)

// unaryDeltaKey identifies a spread unary delta: the result depends on the
// lane count n as well as the lane and value range.
type unaryDeltaKey struct{ n, lane, from, to int }

// memoMaxTo bounds the unary memo: deltas whose target value exceeds it are
// built fresh, keeping each register shape to at most ~memoMaxTo^2/2 small
// cached entries per lane.
const memoMaxTo = 128

// SpreadUnaryDelta returns Spread(UnaryDelta(from, to), lane), memoized for
// small targets so the wide max-register write path stops allocating per
// operation once a sibling register (e.g. another shard) has walked the same
// raise. The returned value is shared and must not be mutated.
func (c Codec) SpreadUnaryDelta(lane, from, to int) *big.Int {
	if to > memoMaxTo {
		return c.Spread(UnaryDelta(from, to), lane)
	}
	key := unaryDeltaKey{n: c.n, lane: lane, from: from, to: to}
	if d, ok := unaryDeltas.Load(key); ok {
		return d.(*big.Int)
	}
	d, _ := unaryDeltas.LoadOrStore(key, c.Spread(UnaryDelta(from, to), lane))
	return d.(*big.Int)
}

// memoMaxBitPos bounds the single-bit memo (absolute positions, so it covers
// element*lanes+lane for the grow-only set's common small elements).
const memoMaxBitPos = 4096

// SpreadBitDelta returns the delta with the single absolute bit k*n + lane
// set — lane-local bit k of the given lane, the grow-only set's element
// delta — memoized for small positions (a single-bit word depends only on
// the absolute position, so the cache is shared across codecs). The returned
// value is shared and must not be mutated.
func (c Codec) SpreadBitDelta(lane, k int) *big.Int {
	pos := c.BitPos(lane, k)
	if pos > memoMaxBitPos {
		out := new(big.Int)
		return out.SetBit(out, pos, 1)
	}
	if d, ok := bitDeltas.Load(pos); ok {
		return d.(*big.Int)
	}
	fresh := new(big.Int)
	fresh.SetBit(fresh, pos, 1)
	d, _ := bitDeltas.LoadOrStore(pos, fresh)
	return d.(*big.Int)
}

// smallInts caches the plain big.Int encodings of small non-negative deltas
// (the wide counter's Add argument). Shared and immutable.
var smallInts sync.Map // int64 -> *big.Int

// SmallInt returns a shared immutable *big.Int holding v (>= 0), cached for
// small values. The returned value must not be mutated.
func SmallInt(v int64) *big.Int {
	if v < 0 || v > memoMaxTo {
		return big.NewInt(v)
	}
	if d, ok := smallInts.Load(v); ok {
		return d.(*big.Int)
	}
	d, _ := smallInts.LoadOrStore(v, big.NewInt(v))
	return d.(*big.Int)
}
