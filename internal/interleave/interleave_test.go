package interleave

import (
	"errors"
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

func big64(v uint64) *big.Int { return new(big.Int).SetUint64(v) }

func TestNewValidation(t *testing.T) {
	for _, n := range []int{-3, -1, 0} {
		if _, err := New(n); err == nil {
			t.Errorf("New(%d): want error, got nil", n)
		}
	}
	for _, n := range []int{1, 2, 64, 1000} {
		c, err := New(n)
		if err != nil {
			t.Fatalf("New(%d): %v", n, err)
		}
		if c.Lanes() != n {
			t.Errorf("New(%d).Lanes() = %d", n, c.Lanes())
		}
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew(0) did not panic")
		}
	}()
	MustNew(0)
}

func TestBitPos(t *testing.T) {
	c := MustNew(4)
	tests := []struct {
		lane, k, want int
	}{
		{0, 0, 0},
		{1, 0, 1},
		{3, 0, 3},
		{0, 1, 4},
		{2, 3, 14},
		{3, 5, 23},
	}
	for _, tt := range tests {
		if got := c.BitPos(tt.lane, tt.k); got != tt.want {
			t.Errorf("BitPos(%d,%d) = %d, want %d", tt.lane, tt.k, got, tt.want)
		}
	}
}

func TestSpreadLaneRoundTrip(t *testing.T) {
	tests := []struct {
		n    int
		lane int
		v    uint64
	}{
		{1, 0, 0},
		{1, 0, 0xdeadbeef},
		{2, 0, 5},
		{2, 1, 5},
		{3, 2, 0b1011},
		{7, 3, 1<<40 + 17},
	}
	for _, tt := range tests {
		c := MustNew(tt.n)
		w := c.Spread(big64(tt.v), tt.lane)
		got := c.Lane(w, tt.lane)
		if got.Cmp(big64(tt.v)) != 0 {
			t.Errorf("n=%d lane=%d: Lane(Spread(%d)) = %v", tt.n, tt.lane, tt.v, got)
		}
		// All other lanes must be zero.
		for l := 0; l < tt.n; l++ {
			if l == tt.lane {
				continue
			}
			if other := c.Lane(w, l); other.Sign() != 0 {
				t.Errorf("n=%d: Spread into lane %d leaked into lane %d: %v", tt.n, tt.lane, l, other)
			}
		}
	}
}

func TestSpreadRejectsNegative(t *testing.T) {
	c := MustNew(2)
	defer func() {
		if recover() == nil {
			t.Fatal("Spread(-1) did not panic")
		}
	}()
	c.Spread(big.NewInt(-1), 0)
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	c := MustNew(3)
	vals := []*big.Int{big64(0b101), big64(0), big64(1 << 33)}
	w := c.Encode(vals)
	got := c.Decode(w)
	for i := range vals {
		if got[i].Cmp(vals[i]) != 0 {
			t.Errorf("lane %d: got %v want %v", i, got[i], vals[i])
		}
	}
}

func TestEncodeLengthMismatchPanics(t *testing.T) {
	c := MustNew(2)
	defer func() {
		if recover() == nil {
			t.Fatal("Encode with wrong arity did not panic")
		}
	}()
	c.Encode([]*big.Int{big64(1)})
}

// Property: for any lane assignment, Decode(Encode(vals)) == vals, and the
// encoded word's bit count equals the sum of lane bit counts (lanes are
// disjoint).
func TestEncodeDecodeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(n8 uint8, raw [6]uint64) bool {
		n := int(n8%6) + 1
		c := MustNew(n)
		vals := make([]*big.Int, n)
		bits := 0
		for i := range vals {
			vals[i] = big64(raw[i])
			for k := 0; k < 64; k++ {
				if raw[i]&(1<<k) != 0 {
					bits++
				}
			}
		}
		w := c.Encode(vals)
		// Disjointness: popcount preserved.
		pc := 0
		for k := 0; k < w.BitLen(); k++ {
			pc += int(w.Bit(k))
		}
		if pc != bits {
			return false
		}
		got := c.Decode(w)
		for i := range vals {
			if got[i].Cmp(vals[i]) != 0 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: applying Delta(from,to,lane) to a word whose lane holds `from`
// yields a word whose lane holds `to` and whose other lanes are untouched.
// This is the correctness core of the snapshot construction's
// fetch&add(R, posAdj-negAdj).
func TestDeltaProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := func(n8, lane8 uint8, from64, to64, other64 uint64) bool {
		n := int(n8%5) + 2
		lane := int(lane8) % n
		otherLane := (lane + 1) % n
		c := MustNew(n)
		from, to := big64(from64), big64(to64)

		word := new(big.Int).Or(c.Spread(from, lane), c.Spread(big64(other64), otherLane))
		word.Add(word, c.Delta(from, to, lane))

		if c.Lane(word, lane).Cmp(to) != 0 {
			return false
		}
		if c.Lane(word, otherLane).Cmp(big64(other64)) != 0 {
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestUnaryValue(t *testing.T) {
	tests := []struct {
		bits []int
		want int
	}{
		{nil, 0},
		{[]int{1}, 1},
		{[]int{1, 2, 3}, 3},
		{[]int{1, 2, 3, 4, 5, 6, 7}, 7},
		{[]int{3}, 3}, // non-contiguous unary still reports highest bit
	}
	for _, tt := range tests {
		v := new(big.Int)
		for _, b := range tt.bits {
			v.SetBit(v, b, 1)
		}
		if got := UnaryValue(v); got != tt.want {
			t.Errorf("UnaryValue(bits %v) = %d, want %d", tt.bits, got, tt.want)
		}
	}
}

func TestUnaryDelta(t *testing.T) {
	// Raising unary 2 -> 5 must set bits 3,4,5.
	d := UnaryDelta(2, 5)
	want := new(big.Int)
	for _, b := range []int{3, 4, 5} {
		want.SetBit(want, b, 1)
	}
	if d.Cmp(want) != 0 {
		t.Fatalf("UnaryDelta(2,5) = %v, want %v", d, want)
	}
}

func TestUnaryDeltaPanicsOnBadRange(t *testing.T) {
	for _, tt := range []struct{ from, to int }{{3, 3}, {5, 2}, {-1, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("UnaryDelta(%d,%d) did not panic", tt.from, tt.to)
				}
			}()
			UnaryDelta(tt.from, tt.to)
		}()
	}
}

// Property: accumulating UnaryDelta steps reproduces the unary encoding of
// the final value, independent of the intermediate write sequence. This is
// the max-register invariant of paper Section 3.1.
func TestUnaryAccumulationProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	f := func(steps [5]uint8) bool {
		lane := new(big.Int)
		prev := 0
		for _, s := range steps {
			k := prev + int(s%7) + 1
			lane.Add(lane, UnaryDelta(prev, k))
			prev = k
		}
		return UnaryValue(lane) == prev
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestNaiveCodecRoundTrip(t *testing.T) {
	c, err := NewNaive(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if c.Lanes() != 4 || c.Width() != 8 {
		t.Fatalf("unexpected codec shape: %+v", c)
	}
	word := new(big.Int)
	for lane, v := range []uint64{0, 1, 200, 255} {
		s, err := c.Spread(big64(v), lane)
		if err != nil {
			t.Fatalf("Spread lane %d: %v", lane, err)
		}
		word.Or(word, s)
	}
	for lane, v := range []uint64{0, 1, 200, 255} {
		if got := c.Lane(word, lane); got.Cmp(big64(v)) != 0 {
			t.Errorf("naive lane %d: got %v want %v", lane, got, v)
		}
	}
}

// E-ABL2: the naive packing overflows once a process writes a value >= 2^d;
// the interleaved codec accepts the same value. This is the reason the paper
// interleaves bits (Section 3.1).
func TestNaivePackingOverflows(t *testing.T) {
	naive, err := NewNaive(2, 8)
	if err != nil {
		t.Fatal(err)
	}
	tooBig := big64(256) // needs 9 bits
	if _, err := naive.Spread(tooBig, 1); err == nil {
		t.Fatal("naive codec accepted an out-of-range value")
	} else {
		var overflow *ErrLaneOverflow
		if !errors.As(err, &overflow) {
			t.Fatalf("want ErrLaneOverflow, got %T: %v", err, err)
		}
		if overflow.Lane != 1 || overflow.Width != 8 {
			t.Fatalf("unexpected overflow details: %+v", overflow)
		}
	}

	il := MustNew(2)
	w := il.Spread(tooBig, 1)
	if il.Lane(w, 1).Cmp(tooBig) != 0 {
		t.Fatal("interleaved codec mangled a wide value")
	}
}

func TestNewNaiveValidation(t *testing.T) {
	if _, err := NewNaive(0, 4); err == nil {
		t.Error("NewNaive(0,4): want error")
	}
	if _, err := NewNaive(2, 0); err == nil {
		t.Error("NewNaive(2,0): want error")
	}
}
