package interleave

import (
	"math"
	"math/rand"
	"testing"
)

func TestMultiPackedShape(t *testing.T) {
	for _, c := range []struct {
		n, width       int
		ok             bool
		perWord, words int
	}{
		{n: 4, width: 15, ok: true, perWord: 3, words: 2}, // 48-bit payload budget: 3 lanes/word
		{n: 8, width: 15, ok: true, perWord: 3, words: 3}, // past the 63-bit ceiling
		{n: 16, width: 15, ok: true, perWord: 3, words: 6},
		{n: 3, width: 32, ok: true, perWord: 1, words: 3},  // one lane per word
		{n: 64, width: 1, ok: true, perWord: 48, words: 2}, // 64 1-bit lanes: 2 words
		{n: 2, width: 48, ok: true, perWord: 1, words: 2},  // full-payload lanes
		{n: 2, width: 49, ok: false},                       // no payload room next to the sequence field
		{n: 2, width: 63, ok: false},
		{n: 1, width: 64, ok: false},
		{n: 0, width: 1, ok: false},
		{n: 1, width: 0, ok: false},
	} {
		m, ok := NewMultiPacked(c.n, c.width)
		if ok != c.ok {
			t.Errorf("NewMultiPacked(%d, %d) ok = %v, want %v", c.n, c.width, ok, c.ok)
			continue
		}
		if !ok {
			continue
		}
		if m.LanesPerWord() != c.perWord || m.Words() != c.words {
			t.Errorf("NewMultiPacked(%d, %d) = %d lanes/word x %d words, want %d x %d",
				c.n, c.width, m.LanesPerWord(), m.Words(), c.perWord, c.words)
		}
	}
}

func TestMultiPackedRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for _, shape := range []struct{ n, width int }{
		{8, 15}, {16, 15}, {3, 32}, {64, 1}, {100, 7}, {5, 48},
	} {
		m := MustNewMultiPacked(shape.n, shape.width)
		view := make([]int64, shape.n)
		for lane := range view {
			view[lane] = rng.Int63() & m.mask
		}
		words := make([]int64, m.Words())
		m.ScatterWords(view, words)
		// Extraction must see through any sequence-field state, including a
		// set sign bit, so load the counters with random values first.
		for w := range words {
			words[w] += int64(rng.Intn(1<<SeqBits)) * SeqIncrement
		}
		// Per-lane extraction agrees with the view.
		for lane, want := range view {
			if got := m.Lane(words[m.WordOf(lane)], lane); got != want {
				t.Fatalf("%dx%d: Lane(%d) = %d, want %d", shape.n, shape.width, lane, got, want)
			}
		}
		// Word-at-a-time gathering rebuilds the view exactly.
		got := make([]int64, shape.n)
		for w, word := range words {
			m.GatherWord(word, w, got)
		}
		for lane := range view {
			if got[lane] != view[lane] {
				t.Fatalf("%dx%d: gathered view[%d] = %d, want %d", shape.n, shape.width, lane, got[lane], view[lane])
			}
		}
	}
}

// TestMultiPackedFieldDelta: applying the delta to the owning word moves the
// lane from -> to, bumps the word's sequence field by exactly one, and leaves
// every other lane of that word untouched, for random neighbours — the
// carry-free invariant the engine's single-XADD Update rests on.
func TestMultiPackedFieldDelta(t *testing.T) {
	m := MustNewMultiPacked(8, 15) // 3 lanes/word x 3 words
	rng := rand.New(rand.NewSource(72))
	view := make([]int64, 8)
	words := make([]int64, m.Words())
	changes := make([]int64, m.Words())
	for i := 0; i < 2000; i++ {
		lane := rng.Intn(8)
		from := view[lane]
		to := rng.Int63() & m.mask
		words[m.WordOf(lane)] += m.FieldDelta(from, to, lane)
		changes[m.WordOf(lane)]++
		view[lane] = to
		want := make([]int64, m.Words())
		m.ScatterWords(view, want)
		for w := range words {
			if m.Payload(words[w]) != want[w] {
				t.Fatalf("step %d: word %d payload = %#x, want %#x", i, w, m.Payload(words[w]), want[w])
			}
			if m.Seq(words[w]) != changes[w]%(1<<SeqBits) {
				t.Fatalf("step %d: word %d seq = %d, want %d", i, w, m.Seq(words[w]), changes[w])
			}
		}
	}
}

// TestMultiPackedSeqWrap: the sequence field wraps through the sign bit
// without disturbing lane payloads — 2^16 value-changing updates return the
// counter to 0 and the word to its pre-wrap payload.
func TestMultiPackedSeqWrap(t *testing.T) {
	m := MustNewMultiPacked(2, 32) // 1 lane/word
	word := m.Spread(12345, 0)
	sawNegative := false
	for i := 0; i < 1<<SeqBits; i++ {
		if got := m.Seq(word); got != int64(i) {
			t.Fatalf("after %d bumps: seq = %d", i, got)
		}
		if got := m.Lane(word, 0); got != 12345 {
			t.Fatalf("after %d bumps: lane = %d, want 12345", i, got)
		}
		if word < 0 {
			sawNegative = true
		}
		word += SeqIncrement
	}
	if !sawNegative {
		t.Fatal("the sequence field never crossed the sign bit")
	}
	if word < 0 || m.Seq(word) != 0 || m.Payload(word) != m.Spread(12345, 0) {
		t.Fatalf("after wrap: word = %#x, want clean payload with seq 0", word)
	}
}

func TestMultiPackedPanics(t *testing.T) {
	m := MustNewMultiPacked(4, 15)
	for name, f := range map[string]func(){
		"spread-negative":   func() { m.Spread(-1, 0) },
		"spread-over":       func() { m.Spread(1<<15, 0) },
		"delta-over":        func() { m.FieldDelta(0, 1<<15, 0) },
		"gather-short-view": func() { m.GatherWord(0, 0, make([]int64, 3)) },
		"scatter-bad-shape": func() { m.ScatterWords(make([]int64, 4), make([]int64, 1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

// fitsWords mirrors the engine-selection rule: a bound of the given field
// width is hosted within k machine words if the single packed word takes it
// (one word, no sequence field) or the multi-word codec stripes it across at
// most k.
func fitsWords(n, width, k int) bool {
	if _, ok := NewPacked(n, width); ok {
		return true
	}
	m, ok := NewMultiPacked(n, width)
	return ok && m.Words() <= k
}

// TestMaxMultiFieldBoundRoundTrip: the bound arithmetic and the engine
// selection can never desynchronize — FieldWidth(MaxMultiFieldBound(n, k))
// always fits within k words, and the next wider field does not (unless the
// bound is already the whole int64 domain).
func TestMaxMultiFieldBoundRoundTrip(t *testing.T) {
	for n := 1; n <= 130; n++ {
		for k := 1; k <= 9; k++ {
			b := MaxMultiFieldBound(n, k)
			if b == 0 {
				if n <= LaneBits*k || n <= packedBits {
					t.Fatalf("MaxMultiFieldBound(%d, %d) = 0 but 1-bit fields fit", n, k)
				}
				continue
			}
			if !fitsWords(n, FieldWidth(b), k) {
				t.Fatalf("MaxMultiFieldBound(%d, %d) = %d does not fit %d words", n, k, b, k)
			}
			if b == math.MaxInt64 {
				continue
			}
			if fitsWords(n, FieldWidth(b)+1, k) {
				t.Fatalf("MaxMultiFieldBound(%d, %d) = %d is not maximal: width %d also fits",
					n, k, b, FieldWidth(b)+1)
			}
		}
	}
}

// TestMaxMultiFieldBoundExtendsSingleWord: with one word the multi-word
// arithmetic degenerates to MaxFieldBound, and with n words every lane gets
// a full-payload LaneBits field (the packed word's full 63-bit domain for a
// single lane, where no collect needs validating).
func TestMaxMultiFieldBoundExtendsSingleWord(t *testing.T) {
	for n := 1; n <= 80; n++ {
		if got, want := MaxMultiFieldBound(n, 1), MaxFieldBound(n); got != want {
			t.Fatalf("MaxMultiFieldBound(%d, 1) = %d, want MaxFieldBound = %d", n, got, want)
		}
		want := int64(1)<<LaneBits - 1
		if n == 1 {
			want = math.MaxInt64
		}
		if got := MaxMultiFieldBound(n, n); got != want {
			t.Fatalf("MaxMultiFieldBound(%d, %d) = %d, want %d", n, n, got, want)
		}
	}
}
