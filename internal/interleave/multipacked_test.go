package interleave

import (
	"math"
	"math/rand"
	"testing"
)

func TestMultiPackedShape(t *testing.T) {
	for _, c := range []struct {
		n, width       int
		ok             bool
		perWord, words int
	}{
		{n: 4, width: 15, ok: true, perWord: 4, words: 1}, // fits one word like Packed
		{n: 8, width: 15, ok: true, perWord: 4, words: 2}, // past the 63-bit ceiling: 2 words
		{n: 16, width: 15, ok: true, perWord: 4, words: 4},
		{n: 3, width: 32, ok: true, perWord: 1, words: 3},  // one lane per word
		{n: 64, width: 1, ok: true, perWord: 63, words: 2}, // 64 1-bit lanes: 2 words
		{n: 2, width: 63, ok: true, perWord: 1, words: 2},  // full-width lanes
		{n: 1, width: 64, ok: false},                       // no word hosts a 64-bit field
		{n: 0, width: 1, ok: false},
		{n: 1, width: 0, ok: false},
	} {
		m, ok := NewMultiPacked(c.n, c.width)
		if ok != c.ok {
			t.Errorf("NewMultiPacked(%d, %d) ok = %v, want %v", c.n, c.width, ok, c.ok)
			continue
		}
		if !ok {
			continue
		}
		if m.LanesPerWord() != c.perWord || m.Words() != c.words {
			t.Errorf("NewMultiPacked(%d, %d) = %d lanes/word x %d words, want %d x %d",
				c.n, c.width, m.LanesPerWord(), m.Words(), c.perWord, c.words)
		}
	}
}

func TestMultiPackedRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for _, shape := range []struct{ n, width int }{
		{8, 15}, {16, 15}, {3, 32}, {64, 1}, {100, 7}, {5, 63},
	} {
		m := MustNewMultiPacked(shape.n, shape.width)
		view := make([]int64, shape.n)
		for lane := range view {
			view[lane] = rng.Int63() & m.mask
		}
		words := make([]int64, m.Words())
		m.ScatterWords(view, words)
		// Per-lane extraction agrees with the view.
		for lane, want := range view {
			if got := m.Lane(words[m.WordOf(lane)], lane); got != want {
				t.Fatalf("%dx%d: Lane(%d) = %d, want %d", shape.n, shape.width, lane, got, want)
			}
		}
		// Word-at-a-time gathering rebuilds the view exactly.
		got := make([]int64, shape.n)
		for w, word := range words {
			m.GatherWord(word, w, got)
		}
		for lane := range view {
			if got[lane] != view[lane] {
				t.Fatalf("%dx%d: gathered view[%d] = %d, want %d", shape.n, shape.width, lane, got[lane], view[lane])
			}
		}
	}
}

// TestMultiPackedFieldDelta: applying the delta to the owning word moves the
// lane from -> to and leaves every other lane of that word untouched, for
// random neighbours — the carry-free invariant the engine's single-XADD
// Update rests on.
func TestMultiPackedFieldDelta(t *testing.T) {
	m := MustNewMultiPacked(8, 15) // 4 lanes/word x 2 words
	rng := rand.New(rand.NewSource(72))
	view := make([]int64, 8)
	words := make([]int64, m.Words())
	for i := 0; i < 2000; i++ {
		lane := rng.Intn(8)
		from := view[lane]
		to := rng.Int63() & m.mask
		words[m.WordOf(lane)] += m.FieldDelta(from, to, lane)
		view[lane] = to
		want := make([]int64, m.Words())
		m.ScatterWords(view, want)
		for w := range words {
			if words[w] != want[w] {
				t.Fatalf("step %d: word %d = %#x, want %#x", i, w, words[w], want[w])
			}
		}
	}
}

func TestMultiPackedPanics(t *testing.T) {
	m := MustNewMultiPacked(4, 15)
	for name, f := range map[string]func(){
		"spread-negative":    func() { m.Spread(-1, 0) },
		"spread-over":        func() { m.Spread(1<<15, 0) },
		"delta-over":         func() { m.FieldDelta(0, 1<<15, 0) },
		"lane-negative-word": func() { m.Lane(-1, 0) },
		"gather-short-view":  func() { m.GatherWord(0, 0, make([]int64, 3)) },
		"scatter-bad-shape":  func() { m.ScatterWords(make([]int64, 4), make([]int64, 2)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

// TestMaxMultiFieldBoundRoundTrip: the bound arithmetic and the codec can
// never desynchronize — striping FieldWidth(MaxMultiFieldBound(n, k)) always
// fits within k words, and the next wider field does not (unless the bound is
// already the whole int64 domain).
func TestMaxMultiFieldBoundRoundTrip(t *testing.T) {
	for n := 1; n <= 130; n++ {
		for k := 1; k <= 9; k++ {
			b := MaxMultiFieldBound(n, k)
			if b == 0 {
				if n <= packedBits*k {
					t.Fatalf("MaxMultiFieldBound(%d, %d) = 0 but 1-bit fields fit", n, k)
				}
				continue
			}
			m, ok := NewMultiPacked(n, FieldWidth(b))
			if !ok || m.Words() > k {
				t.Fatalf("MaxMultiFieldBound(%d, %d) = %d does not stripe within %d words (got %d, ok %v)",
					n, k, b, k, m.Words(), ok)
			}
			if b == math.MaxInt64 {
				continue
			}
			if m2, ok := NewMultiPacked(n, FieldWidth(b)+1); ok && m2.Words() <= k {
				t.Fatalf("MaxMultiFieldBound(%d, %d) = %d is not maximal: width %d also fits %d words",
					n, k, b, FieldWidth(b)+1, m2.Words())
			}
		}
	}
}

// TestMaxMultiFieldBoundExtendsSingleWord: with one word the multi-word
// arithmetic degenerates to MaxFieldBound, and with n words every lane gets
// the full 63-bit domain.
func TestMaxMultiFieldBoundExtendsSingleWord(t *testing.T) {
	for n := 1; n <= 80; n++ {
		if got, want := MaxMultiFieldBound(n, 1), MaxFieldBound(n); got != want {
			t.Fatalf("MaxMultiFieldBound(%d, 1) = %d, want MaxFieldBound = %d", n, got, want)
		}
		if got := MaxMultiFieldBound(n, n); got != math.MaxInt64 {
			t.Fatalf("MaxMultiFieldBound(%d, %d) = %d, want MaxInt64", n, n, got)
		}
	}
}
