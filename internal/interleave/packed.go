package interleave

import (
	"fmt"
	"math"
	"math/bits"
)

// Packed is the bounded, machine-word counterpart of Codec: it packs n lanes
// of width bits each into a single non-negative int64, lane i occupying the
// contiguous bit field [i*width, (i+1)*width).
//
// The wide Codec interleaves lanes bit-by-bit because lanes are unbounded —
// no contiguous field assignment works when any lane can grow forever. Once a
// constructor declares a bound, the lanes become fixed-width fields and the
// layouts are equivalent: lanes still occupy disjoint bit sets, every update
// still adds only bits that are currently 0 inside the updater's own field
// (unary raises and element once-bits), so a fetch&add never carries across a
// lane boundary and the single-fetch&add linearization arguments of the wide
// constructions (paper Sections 3.1-3.2) transfer unchanged. What changes is
// the substrate: the register is a hardware XADD word (prim.FetchAddInt)
// instead of a mutex-guarded big.Int.
//
// The zero value is not usable; construct with NewPacked.
type Packed struct {
	n     int
	width int
	mask  int64 // (1 << width) - 1
}

// packedBits is the bit budget of a packed word: an int64 must stay
// non-negative (bit 63 is the sign), so lanes may use bits 0..62.
const packedBits = 63

// NewPacked returns a codec for n lanes of width bits each, or ok=false when
// the word does not fit the machine-word budget (n*width > 63) — the caller's
// cue to fall back to the wide Codec.
func NewPacked(n, width int) (Packed, bool) {
	if n < 1 || width < 1 || n*width > packedBits {
		return Packed{}, false
	}
	return Packed{n: n, width: width, mask: (int64(1) << width) - 1}, true
}

// MustNewPacked is like NewPacked but panics when the word does not fit. It
// is intended for callers that have already checked the budget.
func MustNewPacked(n, width int) Packed {
	p, ok := NewPacked(n, width)
	if !ok {
		panic(fmt.Sprintf("interleave: %d lanes x %d bits exceed the %d-bit packed word", n, width, packedBits))
	}
	return p
}

// Lanes returns the number of lanes n.
func (p Packed) Lanes() int { return p.n }

// LaneWidth returns the bits per lane.
func (p Packed) LaneWidth() int { return p.width }

// Spread places the compact lane value v (in [0, 2^width)) into the given
// lane's field: the packed analogue of Codec.Spread.
func (p Packed) Spread(v int64, lane int) int64 {
	if v < 0 || v > p.mask {
		panic(fmt.Sprintf("interleave: packed Spread value %d outside [0, %d]", v, p.mask))
	}
	return v << (lane * p.width)
}

// Lane extracts the compact value of the given lane: the packed analogue of
// Codec.Lane. word must be non-negative.
func (p Packed) Lane(word int64, lane int) int64 {
	if word < 0 {
		panic("interleave: packed Lane requires a non-negative word")
	}
	return (word >> (lane * p.width)) & p.mask
}

// FieldWidth returns the number of bits a binary field needs to hold every
// value in [0, maxValue]: bits.Len64(maxValue), but at least 1 so that a
// degenerate all-zero domain still occupies a real field. It is the width a
// bounded-component snapshot passes to NewPacked. maxValue must be
// non-negative.
func FieldWidth(maxValue int64) int {
	if maxValue < 0 {
		panic(fmt.Sprintf("interleave: FieldWidth requires a non-negative maxValue, got %d", maxValue))
	}
	if maxValue == 0 {
		return 1
	}
	return bits.Len64(uint64(maxValue))
}

// MaxFieldBound returns the largest maxValue whose binary-field encoding
// packs for n lanes — the inverse of the NewPacked(n, FieldWidth(maxValue))
// fit check, built on the same bit budget so bound-sizing callers can never
// desynchronize from the engine. It returns 0 when not even a 1-bit field
// fits (n > 63; note maxValue 0 itself still needs a 1-bit field, so 0 also
// means "nothing packs").
func MaxFieldBound(n int) int64 {
	if n < 1 {
		panic(fmt.Sprintf("interleave: MaxFieldBound requires n >= 1, got %d", n))
	}
	w := packedBits / n
	if w < 1 {
		return 0
	}
	if w >= 63 {
		return math.MaxInt64 // FieldWidth(2^63-1) = 63: a single lane packs it
	}
	return int64(1)<<w - 1
}

// FieldDelta returns the signed fetch&add delta that changes the given lane's
// binary field from value from to value to: (to - from) << (lane * width).
// This is the packed analogue of Codec.Delta (the posAdj - negAdj update of
// the snapshot construction, paper Section 3.2), collapsed to a single
// machine-word subtraction and shift. Adding it to a word whose lane holds
// from yields a word whose lane holds to with every other lane untouched:
// the arithmetic is exact (both values are in [0, 2^width)), so no carry or
// borrow escapes the field even though the delta itself may be negative.
func (p Packed) FieldDelta(from, to int64, lane int) int64 {
	if from < 0 || from > p.mask || to < 0 || to > p.mask {
		panic(fmt.Sprintf("interleave: packed FieldDelta values (%d, %d) outside [0, %d]", from, to, p.mask))
	}
	return (to - from) << (lane * p.width)
}

// PackedUnaryValue is UnaryValue on a compact int64 lane: value K is
// represented by bits 1..K set (bit 0 unused); 0 means "nothing written".
func PackedUnaryValue(v int64) int {
	if v == 0 {
		return 0
	}
	return bits.Len64(uint64(v)) - 1
}

// PackedUnaryDelta is UnaryDelta on int64: the compact delta raising a
// unary-encoded lane from value from to value to (bits from+1..to), computed
// with two shifts instead of a bit loop. to must stay within the packed lane
// width of the codec the result is spread through.
func PackedUnaryDelta(from, to int) int64 {
	if to <= from || from < 0 || to >= 63 {
		panic(fmt.Sprintf("interleave: PackedUnaryDelta requires 0 <= from < to < 63, got from=%d to=%d", from, to))
	}
	return (int64(1) << (to + 1)) - (int64(1) << (from + 1))
}
