package shard

import (
	"reflect"
	"sync/atomic"
	"testing"

	"stronglin/internal/obs"
	"stronglin/internal/prim"
	"stronglin/internal/sim"
	"stronglin/internal/spec"
)

// The sharded objects' COMBINE CACHE (WithReadCache): a validated combining
// read publishes its combined value keyed by the exact epoch value it
// validated at, and a later read serves it after re-validating the epoch
// with one fresh read — its final shared step, the identical closing epoch
// witness the collect loop and the adopt path end with. The cached
// configurations are verified by exhaustive strong-linearizability model
// checks whose explorations provably reach hits AND refreshes (counter and
// max register — the max being the combine that is not even linearizable
// unvalidated), plus a real-concurrency quiescent-phase check pinning the
// hit path on all three objects. The witness-free stale-serve hazard itself
// is pinned once, in internal/core (TestMultiwordCachedStaleNotStrongLin) —
// the shard cache performs the structurally identical closing witness
// through validatedRead, exactly as the adopt path defers to core's
// witness-free-adoption twin.

// cachedTally wraps a program's ops to accumulate an object's cache
// telemetry across the exploration's stateless replays, for the
// non-vacuity assertions.
func cachedTally(stats func() obs.CacheStats, misses, refreshes *atomic.Int64, op sim.Op) sim.Op {
	run := op.Run
	op.Run = func(th prim.Thread) string {
		resp := run(th)
		cs := stats()
		misses.Add(cs.Misses)
		refreshes.Add(cs.Refreshes)
		return resp
	}
	return op
}

// TestShardedCachedCounterStrongLin is the exhaustive cached-path check on
// the counter: two combining reads against one increment with the combine
// cache enabled. The tree this verdict covers must actually contain refresh
// branches AND epoch-match hit branches, otherwise the test is vacuous and
// fails.
func TestShardedCachedCounterStrongLin(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive model check; skipped in -short mode")
	}
	var hits obs.Counter
	var misses, refreshes atomic.Int64
	setup := func(w *sim.World) []sim.Program {
		c := NewCounter(w, "c", 2, 2, WithReadCache(true),
			WithObs(obs.ShardMetrics{CacheHits: &hits}))
		tally := func(op sim.Op) sim.Op { return cachedTally(c.CacheStats, &misses, &refreshes, op) }
		return []sim.Program{
			{tally(opRead(c)), tally(opRead(c))},
			{tally(opInc(c))},
		}
	}
	verifySL(t, 2, setup, spec.MonotonicCounter{})
	if hits.Load() == 0 || refreshes.Load() == 0 {
		t.Fatalf("exploration reached hits=%d refreshes=%d (misses=%d); the cached-path verdict must cover both",
			hits.Load(), refreshes.Load(), misses.Load())
	}
	t.Logf("combine cache reached across replays: hits=%d misses=%d refreshes=%d",
		hits.Load(), misses.Load(), refreshes.Load())
}

// TestShardedCachedMaxRegisterStrongLin: the cached shape on the max
// register, whose combine (max) is the one that is not even linearizable
// without validation — serving a cached max past its epoch would be the
// single-collect trap all over again.
func TestShardedCachedMaxRegisterStrongLin(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive model check; skipped in -short mode")
	}
	var hits obs.Counter
	var misses, refreshes atomic.Int64
	setup := func(w *sim.World) []sim.Program {
		m := NewMaxRegister(w, "m", 2, 2, WithReadCache(true),
			WithObs(obs.ShardMetrics{CacheHits: &hits}))
		tally := func(op sim.Op) sim.Op { return cachedTally(m.CacheStats, &misses, &refreshes, op) }
		return []sim.Program{
			{tally(opReadMax(m)), tally(opReadMax(m))},
			{tally(opWriteMax(m, 2))},
		}
	}
	verifySL(t, 2, setup, spec.MaxRegister{})
	if hits.Load() == 0 || refreshes.Load() == 0 {
		t.Fatalf("exploration reached hits=%d refreshes=%d (misses=%d); the cached-path verdict must cover both",
			hits.Load(), refreshes.Load(), misses.Load())
	}
}

// TestShardedCachedQuiescentHits pins the hit path deterministically on all
// three objects under the real world: once the object stops changing, the
// first validated read publishes the entry and every later read must serve
// it by epoch match, agreeing with the collected value exactly. The gset
// leg also pins the membership read's serve-only contract: Has never
// refreshes the cache (its collect does not compute the union), it serves
// entries published by Elems.
func TestShardedCachedQuiescentHits(t *testing.T) {
	w := prim.NewRealWorld()
	var chits, mhits, ghits obs.Counter
	c := NewCounter(w, "c", 4, 2, WithReadCache(true), WithObs(obs.ShardMetrics{CacheHits: &chits}))
	m := NewMaxRegister(w, "m", 4, 2, WithReadCache(true), WithObs(obs.ShardMetrics{CacheHits: &mhits}))
	g := NewGSet(w, "g", 4, 2, WithReadCache(true), WithObs(obs.ShardMetrics{CacheHits: &ghits}))
	for lane := 0; lane < 4; lane++ {
		th := prim.RealThread(lane)
		c.Inc(th)
		m.WriteMax(th, int64(10+lane))
		g.Add(th, int64(lane))
	}
	th := prim.RealThread(0)
	const quiet = 50

	if got := c.Read(th); got != 4 {
		t.Fatalf("counter Read = %d, want 4", got)
	}
	before := chits.Load()
	for i := 0; i < quiet; i++ {
		if got := c.Read(th); got != 4 {
			t.Fatalf("quiescent counter Read %d = %d, want 4", i, got)
		}
	}
	if gained := chits.Load() - before; gained < quiet {
		t.Fatalf("quiescent counter reads hit %d times, want at least %d (stats %+v)", gained, quiet, c.CacheStats())
	}

	if got := m.ReadMax(th); got != 13 {
		t.Fatalf("ReadMax = %d, want 13", got)
	}
	before = mhits.Load()
	for i := 0; i < quiet; i++ {
		if got := m.ReadMax(th); got != 13 {
			t.Fatalf("quiescent ReadMax %d = %d, want 13", i, got)
		}
	}
	if gained := mhits.Load() - before; gained < quiet {
		t.Fatalf("quiescent max reads hit %d times, want at least %d (stats %+v)", gained, quiet, m.CacheStats())
	}

	want := []int64{0, 1, 2, 3}
	if got := g.Elems(th); !reflect.DeepEqual(got, want) {
		t.Fatalf("Elems = %v, want %v", got, want)
	}
	before = ghits.Load()
	for i := 0; i < quiet; i++ {
		if got := g.Elems(th); !reflect.DeepEqual(got, want) {
			t.Fatalf("quiescent Elems %d = %v, want %v", i, got, want)
		}
		if !g.Has(th, 2) || g.Has(th, 9) {
			t.Fatalf("quiescent membership %d is wrong", i)
		}
	}
	// Elems hits plus Has(2)/Has(9) serves: Has(2)'s direct shard witness may
	// shortcut before the cache, so only the Elems serves are guaranteed.
	if gained := ghits.Load() - before; gained < quiet {
		t.Fatalf("quiescent gset reads hit %d times, want at least %d (stats %+v)", gained, quiet, g.CacheStats())
	}
	refreshes := g.CacheStats().Refreshes
	for i := 0; i < quiet; i++ {
		g.Has(th, 2)
		g.Has(th, 9)
	}
	if got := g.CacheStats().Refreshes; got != refreshes {
		t.Fatalf("Has refreshed the cache (%d -> %d); membership reads are serve-only", refreshes, got)
	}
}
