package shard

import (
	"testing"

	"stronglin/internal/history"
	"stronglin/internal/prim"
	"stronglin/internal/sim"
	"stronglin/internal/spec"
)

// Live epoch rollover tests: RolloverEpoch rewinds the announce count —
// the 2^48 per-object write budget — without stopping traffic. The positive
// checks pin the protocol's mechanism (the generation bump forcing every
// spanning validation window to miss, the slot/cache flush, crash adoption,
// the generation-wrap arithmetic); the negative twin re-runs the exact
// stale-cache scenario against a rollover WITHOUT the generation bump and
// demands the wrong value, pinning why the bump is load-bearing.

// opRollover models RolloverEpoch as a read for the checked histories: the
// rollover itself is abstract-state-invariant maintenance (no counter value
// changes), so the operation's observable effect is the validated read it is
// composed with — the migrator's own combine must carry the same
// strong-linearizability guarantee as everyone else's.
func opRollover(c *Counter, minAnnounces int64) sim.Op {
	return sim.Op{
		Name: "rollover+read()",
		Spec: spec.MkOp(spec.MethodRead),
		Run: func(t prim.Thread) string {
			c.RolloverEpoch(t, minAnnounces)
			return spec.RespInt(c.Read(t))
		},
	}
}

// opRolloverRaw responds with the wound-back announce count (or "refused"),
// for schedules that assert on the rollover itself rather than on a
// composed read.
func opRolloverRaw(c *Counter, minAnnounces int64) sim.Op {
	return sim.Op{
		Name: "rollover()",
		Spec: spec.MkOp(spec.MethodRead),
		Run: func(t prim.Thread) string {
			wound, ok := c.RolloverEpoch(t, minAnnounces)
			if !ok {
				return "refused"
			}
			return spec.RespInt(wound)
		},
	}
}

func TestEpochRolloverSequentialSolo(t *testing.T) {
	w := sim.NewSoloWorld()
	th := sim.SoloThread(0)
	c := NewCounter(w, "c", 2, 2)

	for i := 0; i < 5; i++ {
		c.Inc(th)
	}
	if got := c.EpochAnnounces(th); got != 5 {
		t.Fatalf("announces before rollover = %d, want 5", got)
	}
	// Floor: a rollover below minAnnounces is refused outright.
	if wound, ok := c.RolloverEpoch(th, 100); ok || wound != 0 {
		t.Fatalf("rollover below floor ran: wound=%d ok=%v", wound, ok)
	}
	if got := c.EpochGeneration(th); got != 0 {
		t.Fatalf("refused rollover moved the generation to %d", got)
	}

	wound, ok := c.RolloverEpoch(th, 5)
	if !ok || wound != 5 {
		t.Fatalf("rollover at floor: wound=%d ok=%v, want 5 true", wound, ok)
	}
	if got := c.EpochAnnounces(th); got != 0 {
		t.Fatalf("announces after rollover = %d, want 0", got)
	}
	if got := c.EpochGeneration(th); got != 1 {
		t.Fatalf("generation after rollover = %d, want 1", got)
	}
	if got := c.PressureRaised(th); got != 0 {
		t.Fatalf("phantom pressure after rollover: %d", got)
	}
	// The counter's value is untouched — only the epoch was re-based.
	if got := c.Read(th); got != 5 {
		t.Fatalf("read after rollover = %d, want 5", got)
	}
	c.Inc(th)
	if got, want := c.Read(th), int64(6); got != want {
		t.Fatalf("read after post-rollover inc = %d, want %d", got, want)
	}
	if got := c.EpochAnnounces(th); got != 1 {
		// Exactly the one post-rollover inc: reads never announce.
		t.Fatalf("announces after post-rollover inc = %d, want 1", got)
	}
}

// TestEpochRolloverReaderWindowCrafted pins the generation bump doing its
// job mid-flight: a reader opens its validation window before a rollover and
// closes it after, at a moment when the POST-rollover announce count has
// climbed back to the exact pre-rollover value the reader snapshotted. A
// bare rewind would validate that window (the ABA); the generation field
// forces the exact-value comparison to miss, and the reader retries onto a
// consistent post-rollover collect.
func TestEpochRolloverReaderWindowCrafted(t *testing.T) {
	var c *Counter
	setup := func(w *sim.World) []sim.Program {
		c = NewCounter(w, "c", 3, 2)
		return []sim.Program{
			{opInc(c), opInc(c)},  // proc 0: one inc each side of the rollover
			{opRead(c)},           // proc 1: the spanning reader
			{opRolloverRaw(c, 1)}, // proc 2: the migrator
		}
	}
	// Grants: inc = invoke + shard XADD + announce = 3. read (2 shards, no
	// cache) = invoke + epoch + collect x2 + closing epoch = 5 clean, +3 per
	// failed round. rollover = invoke + epoch read + arm + slot flush +
	// epoch read + rewind = 6.
	window := []int{
		0, 0, 0, // inc#1 completes: announces=1 (gen 0)
		1, 1, 1, // reader: invoke, epoch snapshot (gen0|1), collect shard 0
		2, 2, 2, 2, 2, 2, // migrator: full rollover, wound=1, gen 0->1
		0, 0, 0, // inc#2 completes: announces back to 1 (gen 1!)
		// reader resumes: collect shard 1, closing epoch read — bytewise the
		// announce count matches its snapshot; only the generation differs.
	}
	policy := func(v sim.PolicyView) int {
		if v.Step < len(window) {
			for _, p := range v.Enabled {
				if p == window[v.Step] {
					return p
				}
			}
		}
		return v.Enabled[0]
	}
	exec, err := sim.RunToCompletion(3, setup, policy, 200)
	if err != nil {
		t.Fatal(err)
	}
	if !exec.Complete {
		t.Fatalf("execution incomplete:\n%v", exec.Events)
	}
	resp := exec.Responses()
	if resp[2] != "2" { // proc 1's read (OpID 2): both incs, never a torn sum
		t.Fatalf("spanning read = %q, want 2", resp[2])
	}
	if resp[3] != "1" { // rollover wound back the single pre-arm announce
		t.Fatalf("rollover wound = %q, want 1", resp[3])
	}
	if got := c.HelpStats().Retries; got < 1 {
		t.Fatalf("spanning window validated without a retry (retries=%d) — generation bump missing?", got)
	}
}

// TestEpochRolloverCacheFlushAndGeneration drives the exact stale-cache ABA
// end to end in a deterministic solo world — a combine cached at announce
// count A before a rollover, queried again when the post-rollover count is
// again exactly A — and demands a miss plus a fresh collect. The negative
// twin below re-runs the same scenario against a bump-less rollover and
// demands the STALE value, proving this test can fail.
func TestEpochRolloverCacheFlushAndGeneration(t *testing.T) {
	w := sim.NewSoloWorld()
	th := sim.SoloThread(0)
	c := NewCounter(w, "c", 2, 2, WithReadCache(true))

	c.Inc(th) // announces = 1
	if got := c.Read(th); got != 1 {
		t.Fatalf("pre-rollover read = %d, want 1", got)
	} // validated combine (value 1) now cached, keyed gen0|announces1

	if _, ok := c.RolloverEpoch(th, 1); !ok {
		t.Fatal("rollover refused")
	}
	c.Inc(th) // announces climb back to exactly 1 — gen 1 now
	if got := c.Read(th); got != 2 {
		t.Fatalf("post-rollover read = %d, want 2 (stale cache hit?)", got)
	}
}

// buggyRolloverNoGen is the negative twin: the identical arm/flush/rewind
// sequence with the generation bump omitted — the rewind lands the epoch on
// bytewise-identical values once the announce count climbs back. Kept in the
// test file so the shipped rebaseEpoch cannot accidentally lose the bump
// without this test noticing the twin and the real one diverging.
func buggyRolloverNoGen(t prim.Thread, c *Counter) {
	c.epoch.FetchAddInt(t, epochCutoverBit)
	c.help.slot.WriteAny(t, &helpDeposit{epoch: -1})
	if c.help.cache != nil {
		c.help.cache.WriteAny(t, &helpDeposit{epoch: -1})
	}
	cur := c.epoch.FetchAddInt(t, 0)
	c.epoch.FetchAddInt(t, -epochAnnounces(cur)-epochCutoverBit)
}

func TestEpochRolloverNoGenerationTwinServesStaleCache(t *testing.T) {
	w := sim.NewSoloWorld()
	th := sim.SoloThread(0)
	c := NewCounter(w, "c", 2, 2, WithReadCache(true))

	c.Inc(th)
	if got := c.Read(th); got != 1 {
		t.Fatalf("pre-rollover read = %d, want 1", got)
	}
	// The twin flushes the cache too — so re-cache a pre-rollover combine
	// AFTER the flush, the in-flight-reader race the flush alone cannot
	// close (a reader suspended between its closing epoch read and its
	// cache write). Solo-world determinism lets us stage it directly.
	buggyRolloverNoGen(th, c)
	c.help.cache.WriteAny(th, &helpDeposit{epoch: 1, value: 1}) // gen0|announces1, value 1
	c.Inc(th)                                                   // announce count back to exactly 1
	if got := c.Read(th); got != 1 {
		t.Fatalf("twin read = %d; the bump-less rollover was expected to serve the stale cached 1", got)
	}
	// Same staging against the SHIPPED rollover: the generation bump makes
	// the re-cached pre-rollover entry unmatchable even though it was
	// written after the flush.
	c2 := NewCounter(w, "c2", 2, 2, WithReadCache(true))
	c2.Inc(th)
	if got := c2.Read(th); got != 1 {
		t.Fatalf("pre-rollover read = %d, want 1", got)
	}
	if _, ok := c2.RolloverEpoch(th, 1); !ok {
		t.Fatal("rollover refused")
	}
	c2.help.cache.WriteAny(th, &helpDeposit{epoch: 1, value: 1})
	c2.Inc(th)
	if got := c2.Read(th); got != 2 {
		t.Fatalf("shipped rollover read = %d, want 2", got)
	}
}

// TestEpochRolloverKilledMigratorCompleted injects the migrator crash: a
// rollover killed immediately after its ARM step leaves the cutover bit set
// and the epoch otherwise live — writes keep announcing, reads keep
// validating — and a second RolloverEpoch call (the restarted migrator)
// adopts the armed cutover, skipping the floor, and completes it.
func TestEpochRolloverKilledMigratorCompleted(t *testing.T) {
	setup := func(w *sim.World) []sim.Program {
		c := NewCounter(w, "c", 4, 2)
		gen := sim.Op{
			Name: "generation()",
			Spec: spec.MkOp(spec.MethodRead),
			Run:  func(t prim.Thread) string { return spec.RespInt(c.EpochGeneration(t)) },
		}
		return []sim.Program{
			{opInc(c), opInc(c)},   // proc 0
			{opRead(c), gen},       // proc 1
			{opRolloverRaw(c, 1)},  // proc 2: killed mid-rollover
			{opRolloverRaw(c, 99)}, // proc 3: restart — floor 99 would refuse a
			// fresh rollover; adopting the armed one must ignore it
		}
	}
	window := []int{
		0, 0, 0, // inc#1: announces = 1
		2, 2, 2, // migrator: invoke, epoch read, ARM — then killed
		3, 3, 3, 3, 3, // restart: invoke, epoch read (bit set -> adopt), flush, read, rewind
		0, 0, 0, // inc#2 on the fresh generation
		1, 1, 1, 1, 1, // reader: clean validated collect
		1, 1, // generation probe: invoke + epoch read
	}
	base := func(v sim.PolicyView) int {
		if v.Step < len(window) {
			for _, p := range v.Enabled {
				if p == window[v.Step] {
					return p
				}
			}
		}
		return v.Enabled[0]
	}
	exec, err := sim.RunToCompletion(4, setup, sim.FaultedPolicy(4, base, sim.Kill(2, 3)), 200)
	if err != nil {
		t.Fatal(err)
	}
	if exec.Complete {
		t.Fatal("execution reported complete despite the killed migrator")
	}
	resp := exec.Responses()
	if _, pending := resp[4]; pending { // OpID 4 = killed migrator's rollover
		t.Fatalf("killed rollover has a response: %q", resp[4])
	}
	if resp[5] != "1" { // restart wound back inc#1's announce
		t.Fatalf("restarted rollover = %q, want wound 1", resp[5])
	}
	if resp[2] != "2" { // reader after both incs
		t.Fatalf("post-restart read = %q, want 2", resp[2])
	}
	if resp[3] != "1" { // exactly one completed rollover
		t.Fatalf("generation = %q, want 1", resp[3])
	}
}

// TestEpochRolloverGenerationWrap exercises the generation field's modulus:
// 64 rollovers wrap the field back to 0 through the carry that would
// otherwise land on the cutover bit, leaving announces, pressure, and the
// bit itself all clean.
func TestEpochRolloverGenerationWrap(t *testing.T) {
	w := sim.NewSoloWorld()
	th := sim.SoloThread(0)
	c := NewCounter(w, "c", 2, 2)

	for g := int64(0); g < epochGenCount; g++ {
		if got := c.EpochGeneration(th); got != g {
			t.Fatalf("generation before rollover %d = %d", g, got)
		}
		c.Inc(th)
		if wound, ok := c.RolloverEpoch(th, 1); !ok || wound != 1 {
			t.Fatalf("rollover %d: wound=%d ok=%v", g, wound, ok)
		}
	}
	if got := c.EpochGeneration(th); got != 0 {
		t.Fatalf("generation after wrap = %d, want 0", got)
	}
	if got := c.EpochAnnounces(th); got != 0 {
		t.Fatalf("announces after wrap = %d, want 0", got)
	}
	if got := c.PressureRaised(th); got != 0 {
		t.Fatalf("pressure after wrap = %d, want 0", got)
	}
	if raw := c.epoch.FetchAddInt(th, 0); raw&epochCutoverBit != 0 || raw < 0 {
		t.Fatalf("epoch register dirty after wrap: %#x", raw)
	}
	if got := c.Read(th); got != epochGenCount {
		t.Fatalf("count after wrap = %d, want %d", got, epochGenCount)
	}
}

// TestEpochRolloverStrongLin model-checks the rollover exhaustively in two
// 2-process games (the 3-process product blows past any workable node
// budget; the crafted-window tests above cover the mixed case). In each,
// the migrator's rollover is composed with its own validated read, so every
// schedule must produce a strongly linearizable counter history — including
// those where the rollover's arm, flush, and rewind steps split the other
// process's validation window.
func TestEpochRolloverStrongLin(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive exploration")
	}
	t.Run("writer-vs-migrator", func(t *testing.T) {
		verifySL(t, 2, func(w *sim.World) []sim.Program {
			c := NewCounter(w, "c", 2, 2)
			return []sim.Program{
				{opInc(c), opInc(c)},
				{opRollover(c, 0)},
			}
		}, spec.MonotonicCounter{})
	})
	t.Run("reader-vs-migrator", func(t *testing.T) {
		// The read's retry rounds branch harder than the writer game: it
		// needs a larger node budget than Verify's default.
		v, err := history.Verify(2, func(w *sim.World) []sim.Program {
			c := NewCounter(w, "c", 2, 2)
			return []sim.Program{
				{opInc(c), opRead(c)},
				{opRollover(c, 0)},
			}
		}, spec.MonotonicCounter{}, &sim.ExploreOptions{MaxNodes: 3_000_000, MaxDepth: 4096}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !v.Linearizable {
			t.Fatalf("linearizability violated: %s", v.LinViolation)
		}
		if !v.StrongLin.Ok {
			t.Fatalf("strong linearizability violated: %v", v.StrongLin.Counterexample)
		}
	})
}

// TestEpochRolloverMaxRegisterAndGSet covers the other two objects' exported
// rollover surface on the same solo scenario: value preserved, generation
// bumped, announce budget renewed.
func TestEpochRolloverMaxRegisterAndGSet(t *testing.T) {
	w := sim.NewSoloWorld()
	th := sim.SoloThread(0)

	m := NewMaxRegister(w, "m", 2, 2)
	m.WriteMax(th, 7)
	if wound, ok := m.RolloverEpoch(th, 1); !ok || wound != 1 {
		t.Fatalf("max register rollover: wound=%d ok=%v", wound, ok)
	}
	if got := m.ReadMax(th); got != 7 {
		t.Fatalf("max after rollover = %d, want 7", got)
	}
	if got := m.EpochGeneration(th); got != 1 {
		t.Fatalf("max register generation = %d, want 1", got)
	}

	g := NewGSet(w, "g", 2, 2)
	g.Add(th, 1)
	if wound, ok := g.RolloverEpoch(th, 1); !ok || wound != 1 {
		t.Fatalf("gset rollover: wound=%d ok=%v", wound, ok)
	}
	if !g.Has(th, 1) || g.Has(th, 0) {
		t.Fatal("gset membership changed across rollover")
	}
	if got := g.EpochGeneration(th); got != 1 {
		t.Fatalf("gset generation = %d, want 1", got)
	}
}
