package shard

import (
	"math/rand"
	"testing"

	"stronglin/internal/history"
	"stronglin/internal/prim"
	"stronglin/internal/sim"
	"stronglin/internal/spec"
)

// The sharded monotone objects are verified the same way as the paper's
// constructions: exhaustive strong-linearizability model checks of bounded
// configurations (here 2 shards x 2-3 processes), plus randomized
// linearizability stress under real goroutine concurrency. The naive
// single-collect combines are checked NEGATIVELY, reproducing the hierarchy
// in the package comment: the unvalidated max combine is not even
// linearizable, and the unvalidated sum/membership combines are linearizable
// but not strongly linearizable — the checker must exhibit both traps.

// --- sim.Op builders ---------------------------------------------------------

func opInc(c *Counter) sim.Op {
	return sim.Op{
		Name: "inc()",
		Spec: spec.MkOp(spec.MethodInc),
		Run: func(t prim.Thread) string {
			c.Inc(t)
			return spec.RespOK
		},
	}
}

func opRead(c *Counter) sim.Op {
	return sim.Op{
		Name: "read()",
		Spec: spec.MkOp(spec.MethodRead),
		Run:  func(t prim.Thread) string { return spec.RespInt(c.Read(t)) },
	}
}

func opReadSingleCollect(c *Counter) sim.Op {
	return sim.Op{
		Name: "read-single()",
		Spec: spec.MkOp(spec.MethodRead),
		Run:  func(t prim.Thread) string { return spec.RespInt(c.readSingleCollect(t)) },
	}
}

func opWriteMax(m *MaxRegister, v int64) sim.Op {
	return sim.Op{
		Name: spec.MkOp(spec.MethodWriteMax, v).String(),
		Spec: spec.MkOp(spec.MethodWriteMax, v),
		Run: func(t prim.Thread) string {
			m.WriteMax(t, v)
			return spec.RespOK
		},
	}
}

func opReadMax(m *MaxRegister) sim.Op {
	return sim.Op{
		Name: "rmax()",
		Spec: spec.MkOp(spec.MethodReadMax),
		Run:  func(t prim.Thread) string { return spec.RespInt(m.ReadMax(t)) },
	}
}

func opReadMaxSingleCollect(m *MaxRegister) sim.Op {
	return sim.Op{
		Name: "rmax-single()",
		Spec: spec.MkOp(spec.MethodReadMax),
		Run:  func(t prim.Thread) string { return spec.RespInt(m.readMaxSingleCollect(t)) },
	}
}

func opAdd(g *GSet, x int64) sim.Op {
	return sim.Op{
		Name: spec.MkOp(spec.MethodAdd, x).String(),
		Spec: spec.MkOp(spec.MethodAdd, x),
		Run: func(t prim.Thread) string {
			g.Add(t, x)
			return spec.RespOK
		},
	}
}

func opHas(g *GSet, x int64) sim.Op {
	return sim.Op{
		Name: spec.MkOp(spec.MethodHas, x).String(),
		Spec: spec.MkOp(spec.MethodHas, x),
		Run: func(t prim.Thread) string {
			if g.Has(t, x) {
				return "1"
			}
			return "0"
		},
	}
}

func opHasSingleCollect(g *GSet, x int64) sim.Op {
	return sim.Op{
		Name: "has-single(" + spec.RespInt(x) + ")",
		Spec: spec.MkOp(spec.MethodHas, x),
		Run: func(t prim.Thread) string {
			if g.hasSingleCollect(t, x) {
				return "1"
			}
			return "0"
		},
	}
}

// verifySL explores every interleaving of the configuration and requires
// both linearizability and strong linearizability.
func verifySL(t *testing.T, procs int, setup sim.Setup, sp spec.Spec) history.Verdict {
	t.Helper()
	v, err := history.Verify(procs, setup, sp, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Linearizable {
		t.Fatalf("linearizability violated: %s", v.LinViolation)
	}
	if !v.StrongLin.Ok {
		t.Fatalf("strong linearizability violated: %v", v.StrongLin.Counterexample)
	}
	return v
}

// --- Sequential sanity -------------------------------------------------------

func TestShardedCounterSequential(t *testing.T) {
	w := sim.NewSoloWorld()
	c := NewCounter(w, "c", 4, 2)
	for lane := 0; lane < 4; lane++ {
		c.Inc(sim.SoloThread(lane)) // lanes 0,2 hit shard 0; lanes 1,3 shard 1
	}
	c.Add(sim.SoloThread(3), 10)
	if got := c.Read(sim.SoloThread(0)); got != 14 {
		t.Fatalf("Read = %d, want 14", got)
	}
}

func TestShardedMaxRegisterSequential(t *testing.T) {
	w := sim.NewSoloWorld()
	m := NewMaxRegister(w, "m", 4, 2)
	m.WriteMax(sim.SoloThread(0), 7) // shard 0
	m.WriteMax(sim.SoloThread(1), 3) // shard 1
	m.WriteMax(sim.SoloThread(2), 5) // shard 0
	if got := m.ReadMax(sim.SoloThread(3)); got != 7 {
		t.Fatalf("ReadMax = %d, want 7", got)
	}
}

func TestShardedGSetSequential(t *testing.T) {
	w := sim.NewSoloWorld()
	g := NewGSet(w, "g", 4, 2)
	g.Add(sim.SoloThread(0), 1)
	g.Add(sim.SoloThread(1), 2)
	g.Add(sim.SoloThread(3), 2) // same element via the other shard
	if !g.Has(sim.SoloThread(2), 1) || !g.Has(sim.SoloThread(2), 2) || g.Has(sim.SoloThread(2), 3) {
		t.Fatal("membership after adds is wrong")
	}
	if got := g.Elems(sim.SoloThread(0)); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("Elems = %v, want [1 2]", got)
	}
}

func TestShardValidation(t *testing.T) {
	for _, bad := range []struct{ lanes, shards int }{{0, 1}, {1, 0}, {2, 3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewCounter(lanes=%d, shards=%d) did not panic", bad.lanes, bad.shards)
				}
			}()
			NewCounter(sim.NewSoloWorld(), "c", bad.lanes, bad.shards)
		}()
	}
}

// --- Bounded model checks (2 shards x 2-3 processes) -------------------------

func TestShardedCounterStrongLinTwoIncsOneReader(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive model check; skipped in -short mode")
	}
	setup := func(w *sim.World) []sim.Program {
		c := NewCounter(w, "c", 3, 2)
		return []sim.Program{
			{opInc(c)}, // shard 0
			{opInc(c)}, // shard 1
			{opRead(c)},
		}
	}
	verifySL(t, 3, setup, spec.MonotonicCounter{})
}

func TestShardedCounterStrongLinIncReadMix(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive model check; skipped in -short mode")
	}
	setup := func(w *sim.World) []sim.Program {
		c := NewCounter(w, "c", 2, 2)
		return []sim.Program{
			{opInc(c), opRead(c)},
			{opInc(c), opRead(c)},
		}
	}
	verifySL(t, 2, setup, spec.MonotonicCounter{})
}

func TestShardedMaxRegisterStrongLinTwoWritersOneReader(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive model check; skipped in -short mode")
	}
	setup := func(w *sim.World) []sim.Program {
		m := NewMaxRegister(w, "m", 3, 2)
		return []sim.Program{
			{opWriteMax(m, 2)}, // shard 0
			{opWriteMax(m, 1)}, // shard 1
			{opReadMax(m)},
		}
	}
	verifySL(t, 3, setup, spec.MaxRegister{})
}

func TestShardedMaxRegisterStrongLinWriteReadMix(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive model check; skipped in -short mode")
	}
	setup := func(w *sim.World) []sim.Program {
		m := NewMaxRegister(w, "m", 2, 2)
		return []sim.Program{
			{opWriteMax(m, 2), opReadMax(m)},
			{opWriteMax(m, 1), opReadMax(m)},
		}
	}
	verifySL(t, 2, setup, spec.MaxRegister{})
}

// TestShardedMaxRegisterSingleCollectNotLinearizable is the coarsest negative
// result motivating the epoch validation: combining one read per shard by max
// is NOT linearizable, because the global max does not pass through
// intermediate values. The checker finds the package comment's counterexample — the reader
// collects shard 0 before WriteMax(7) lands there, WriteMax(7) completes
// before WriteMax(3) starts, and the reader then collects 3 from shard 1 and
// returns 3 < 7.
func TestShardedMaxRegisterSingleCollectNotLinearizable(t *testing.T) {
	setup := func(w *sim.World) []sim.Program {
		m := NewMaxRegister(w, "m", 3, 2)
		return []sim.Program{
			{opWriteMax(m, 7)}, // shard 0
			{opWriteMax(m, 3)}, // shard 1
			{opReadMaxSingleCollect(m)},
		}
	}
	v, err := history.Verify(3, setup, spec.MaxRegister{}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v.Linearizable {
		t.Fatal("single-collect sharded max register verified linearizable; expected a violation")
	}
}

// TestShardedCounterSingleCollectNotStrongLin is the finer negative result:
// the unvalidated sum IS linearizable (the total passes through every
// intermediate value) but NOT strongly linearizable — once an inc completes
// mid-collect, prefix-closure forces it into the linearization while the
// reader's eventual sum still depends on the schedule, so no commitment
// survives every future. This is the gap the epoch validation closes.
func TestShardedCounterSingleCollectNotStrongLin(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive model check; skipped in -short mode")
	}
	setup := func(w *sim.World) []sim.Program {
		c := NewCounter(w, "c", 3, 2)
		return []sim.Program{
			{opInc(c)}, // shard 0
			{opInc(c)}, // shard 1
			{opReadSingleCollect(c), opReadSingleCollect(c)},
		}
	}
	v, err := history.Verify(3, setup, spec.MonotonicCounter{}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Linearizable {
		t.Fatalf("single-collect sum should be linearizable; violation: %s", v.LinViolation)
	}
	if v.StrongLin.Ok {
		t.Fatal("single-collect sharded counter verified strongly linearizable; expected a refutation")
	}
}

// TestShardedGSetSingleCollectNotStrongLin: the unvalidated membership scan
// is linearizable (monotone contrapositive) but not strongly linearizable —
// the same trap as the counter, with an add completing between the reader's
// visit to its shard and the reader's final step.
func TestShardedGSetSingleCollectNotStrongLin(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive model check; skipped in -short mode")
	}
	setup := func(w *sim.World) []sim.Program {
		g := NewGSet(w, "g", 3, 2)
		return []sim.Program{
			{opAdd(g, 1)}, // shard 0
			{opAdd(g, 1)}, // shard 1: the same element, reachable via either shard
			{opHasSingleCollect(g, 1), opHasSingleCollect(g, 1)},
		}
	}
	v, err := history.Verify(3, setup, spec.GSet{}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Linearizable {
		t.Fatalf("single-collect membership should be linearizable; violation: %s", v.LinViolation)
	}
	if v.StrongLin.Ok {
		t.Fatal("single-collect sharded gset verified strongly linearizable; expected a refutation")
	}
}

func TestShardedGSetStrongLinTwoAddersOneReader(t *testing.T) {
	setup := func(w *sim.World) []sim.Program {
		g := NewGSet(w, "g", 3, 2)
		return []sim.Program{
			{opAdd(g, 1)}, // shard 0
			{opAdd(g, 2)}, // shard 1
			{opHas(g, 2)}, // misses shard 0, witnesses shard 1
		}
	}
	verifySL(t, 3, setup, spec.GSet{})
}

func TestShardedGSetStrongLinAddHasMix(t *testing.T) {
	setup := func(w *sim.World) []sim.Program {
		g := NewGSet(w, "g", 2, 2)
		return []sim.Program{
			{opAdd(g, 1), opHas(g, 2)},
			{opAdd(g, 2), opHas(g, 1)},
		}
	}
	verifySL(t, 2, setup, spec.GSet{})
}

// --- Packed shard cores (WithBound) ------------------------------------------
//
// The packed sharded objects must pass the SAME exhaustive model checks as
// the wide ones on the same 2-shard x 2-3-process configurations: a packed
// shard operation is still one fetch&add step on one register, so the
// configurations — and the strong-linearizability argument — carry over.

func TestPackedShardedSequential(t *testing.T) {
	w := sim.NewSoloWorld()
	c := NewCounter(w, "c", 4, 2, WithBound(1<<30))
	m := NewMaxRegister(w, "m", 4, 2, WithBound(20)) // 2 lanes/shard x 21 bits = 42
	g := NewGSet(w, "g", 4, 2, WithBound(20))
	if !c.Packed() || !m.Packed() || !g.Packed() {
		t.Fatalf("Packed() = (%v, %v, %v), want all true", c.Packed(), m.Packed(), g.Packed())
	}
	for lane := 0; lane < 4; lane++ {
		c.Inc(sim.SoloThread(lane))
	}
	m.WriteMax(sim.SoloThread(0), 17)
	m.WriteMax(sim.SoloThread(1), 3)
	g.Add(sim.SoloThread(2), 9)
	g.Add(sim.SoloThread(3), 9)
	if got := c.Read(sim.SoloThread(0)); got != 4 {
		t.Fatalf("Read = %d, want 4", got)
	}
	if got := m.ReadMax(sim.SoloThread(2)); got != 17 {
		t.Fatalf("ReadMax = %d, want 17", got)
	}
	if !g.Has(sim.SoloThread(0), 9) || g.Has(sim.SoloThread(0), 8) {
		t.Fatal("membership after adds is wrong")
	}
}

// TestPackedShardedWideFallback: a bound the per-shard encoding cannot hold
// must still construct a working (wide) object.
func TestPackedShardedWideFallback(t *testing.T) {
	w := sim.NewSoloWorld()
	m := NewMaxRegister(w, "m", 4, 2, WithBound(1<<20))
	if m.Packed() {
		t.Fatal("2 lanes x 2^20 bound cannot pack")
	}
	m.WriteMax(sim.SoloThread(1), 99999)
	if got := m.ReadMax(sim.SoloThread(0)); got != 99999 {
		t.Fatalf("ReadMax = %d, want 99999", got)
	}
}

// TestMixedEngineShardsEnforceBoundUniformly: 3 lanes / 2 shards with bound
// 31 gives shard 0 two lanes (2 x 32 = 64 bits: wide) and shard 1 one lane
// (32 bits: packed). The declared bound must be enforced identically through
// both shards — a write's fate cannot depend on which lane issued it.
func TestMixedEngineShardsEnforceBoundUniformly(t *testing.T) {
	w := sim.NewSoloWorld()
	m := NewMaxRegister(w, "m", 3, 2, WithBound(31))
	if m.Packed() {
		t.Fatal("shard 0 must be wide in this config")
	}
	for _, id := range []int{0, 1} { // id 0 -> wide shard 0, id 1 -> packed shard 1
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("WriteMax(40) via lane %d did not panic", id)
				}
			}()
			m.WriteMax(sim.SoloThread(id), 40)
		}()
	}
	m.WriteMax(sim.SoloThread(0), 31)
	m.WriteMax(sim.SoloThread(1), 30)
	if got := m.ReadMax(sim.SoloThread(2)); got != 31 {
		t.Fatalf("ReadMax = %d, want 31", got)
	}
}

func TestPackedShardedCounterStrongLinTwoIncsOneReader(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive model check; skipped in -short mode")
	}
	setup := func(w *sim.World) []sim.Program {
		c := NewCounter(w, "c", 3, 2, WithBound(100))
		return []sim.Program{
			{opInc(c)}, // shard 0
			{opInc(c)}, // shard 1
			{opRead(c)},
		}
	}
	verifySL(t, 3, setup, spec.MonotonicCounter{})
}

func TestPackedShardedCounterStrongLinIncReadMix(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive model check; skipped in -short mode")
	}
	setup := func(w *sim.World) []sim.Program {
		c := NewCounter(w, "c", 2, 2, WithBound(100))
		return []sim.Program{
			{opInc(c), opRead(c)},
			{opInc(c), opRead(c)},
		}
	}
	verifySL(t, 2, setup, spec.MonotonicCounter{})
}

func TestPackedShardedMaxRegisterStrongLinTwoWritersOneReader(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive model check; skipped in -short mode")
	}
	setup := func(w *sim.World) []sim.Program {
		m := NewMaxRegister(w, "m", 3, 2, WithBound(5))
		return []sim.Program{
			{opWriteMax(m, 2)}, // shard 0
			{opWriteMax(m, 1)}, // shard 1
			{opReadMax(m)},
		}
	}
	verifySL(t, 3, setup, spec.MaxRegister{})
}

func TestPackedShardedMaxRegisterStrongLinWriteReadMix(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive model check; skipped in -short mode")
	}
	setup := func(w *sim.World) []sim.Program {
		m := NewMaxRegister(w, "m", 2, 2, WithBound(5))
		return []sim.Program{
			{opWriteMax(m, 2), opReadMax(m)},
			{opWriteMax(m, 1), opReadMax(m)},
		}
	}
	verifySL(t, 2, setup, spec.MaxRegister{})
}

func TestPackedShardedGSetStrongLinTwoAddersOneReader(t *testing.T) {
	setup := func(w *sim.World) []sim.Program {
		g := NewGSet(w, "g", 3, 2, WithBound(5))
		return []sim.Program{
			{opAdd(g, 1)}, // shard 0
			{opAdd(g, 2)}, // shard 1
			{opHas(g, 2)}, // misses shard 0, witnesses shard 1
		}
	}
	verifySL(t, 3, setup, spec.GSet{})
}

func TestPackedShardedGSetStrongLinAddHasMix(t *testing.T) {
	setup := func(w *sim.World) []sim.Program {
		g := NewGSet(w, "g", 2, 2, WithBound(5))
		return []sim.Program{
			{opAdd(g, 1), opHas(g, 2)},
			{opAdd(g, 2), opHas(g, 1)},
		}
	}
	verifySL(t, 2, setup, spec.GSet{})
}

func TestPackedShardedCounterRealWorldStress(t *testing.T) {
	w := prim.NewRealWorld()
	const procs = 4
	c := NewCounter(w, "c", procs, 2, WithBound(1<<30))
	if !c.Packed() {
		t.Fatal("stress config must pack")
	}
	rngs := stressRngs(procs, 53)
	h := history.Stress(history.StressConfig{
		Procs:      procs,
		OpsPerProc: 40,
		Gen: func(p, i int) history.StressOp {
			if rngs[p].Intn(3) == 0 {
				return history.StressOp{Op: spec.MkOp(spec.MethodRead),
					Run: func(t prim.Thread) string { return spec.RespInt(c.Read(t)) }}
			}
			return history.StressOp{Op: spec.MkOp(spec.MethodInc),
				Run: func(t prim.Thread) string { c.Inc(t); return spec.RespOK }}
		},
	})
	if res := history.CheckLinearizable(h, spec.MonotonicCounter{}); !res.Ok {
		t.Fatalf("stress history not linearizable:\n%s", h.String())
	}
}

func TestPackedShardedMaxRegisterRealWorldStress(t *testing.T) {
	w := prim.NewRealWorld()
	const procs, bound = 4, 14 // 2 lanes/shard x 15 bits = 30: packs
	m := NewMaxRegister(w, "m", procs, 2, WithBound(bound))
	if !m.Packed() {
		t.Fatal("stress config must pack")
	}
	rngs := stressRngs(procs, 59)
	h := history.Stress(history.StressConfig{
		Procs:      procs,
		OpsPerProc: 30,
		Gen: func(p, i int) history.StressOp {
			if rngs[p].Intn(2) == 0 {
				v := int64(rngs[p].Intn(bound + 1))
				return history.StressOp{Op: spec.MkOp(spec.MethodWriteMax, v),
					Run: func(t prim.Thread) string { m.WriteMax(t, v); return spec.RespOK }}
			}
			return history.StressOp{Op: spec.MkOp(spec.MethodReadMax),
				Run: func(t prim.Thread) string { return spec.RespInt(m.ReadMax(t)) }}
		},
	})
	if res := history.CheckLinearizable(h, spec.MaxRegister{}); !res.Ok {
		t.Fatalf("stress history not linearizable:\n%s", h.String())
	}
}

// --- Randomized stress under real goroutine concurrency ----------------------

func TestShardedCounterRealWorldStress(t *testing.T) {
	w := prim.NewRealWorld()
	const procs = 4
	c := NewCounter(w, "c", procs, 2)
	rngs := stressRngs(procs, 11)
	h := history.Stress(history.StressConfig{
		Procs:      procs,
		OpsPerProc: 40,
		Gen: func(p, i int) history.StressOp {
			if rngs[p].Intn(3) == 0 {
				return history.StressOp{Op: spec.MkOp(spec.MethodRead),
					Run: func(t prim.Thread) string { return spec.RespInt(c.Read(t)) }}
			}
			return history.StressOp{Op: spec.MkOp(spec.MethodInc),
				Run: func(t prim.Thread) string { c.Inc(t); return spec.RespOK }}
		},
	})
	if res := history.CheckLinearizable(h, spec.MonotonicCounter{}); !res.Ok {
		t.Fatalf("stress history not linearizable:\n%s", h.String())
	}
}

func TestShardedMaxRegisterRealWorldStress(t *testing.T) {
	w := prim.NewRealWorld()
	const procs = 4
	m := NewMaxRegister(w, "m", procs, 2)
	rngs := stressRngs(procs, 23)
	h := history.Stress(history.StressConfig{
		Procs:      procs,
		OpsPerProc: 30,
		Gen: func(p, i int) history.StressOp {
			if rngs[p].Intn(2) == 0 {
				v := int64(rngs[p].Intn(16))
				return history.StressOp{Op: spec.MkOp(spec.MethodWriteMax, v),
					Run: func(t prim.Thread) string { m.WriteMax(t, v); return spec.RespOK }}
			}
			return history.StressOp{Op: spec.MkOp(spec.MethodReadMax),
				Run: func(t prim.Thread) string { return spec.RespInt(m.ReadMax(t)) }}
		},
	})
	if res := history.CheckLinearizable(h, spec.MaxRegister{}); !res.Ok {
		t.Fatalf("stress history not linearizable:\n%s", h.String())
	}
}

func TestShardedGSetRealWorldStress(t *testing.T) {
	w := prim.NewRealWorld()
	const procs = 4
	g := NewGSet(w, "g", procs, 2)
	rngs := stressRngs(procs, 37)
	h := history.Stress(history.StressConfig{
		Procs:      procs,
		OpsPerProc: 40,
		Gen: func(p, i int) history.StressOp {
			x := int64(rngs[p].Intn(8))
			if rngs[p].Intn(2) == 0 {
				return history.StressOp{Op: spec.MkOp(spec.MethodAdd, x),
					Run: func(t prim.Thread) string { g.Add(t, x); return spec.RespOK }}
			}
			return history.StressOp{Op: spec.MkOp(spec.MethodHas, x),
				Run: func(t prim.Thread) string {
					if g.Has(t, x) {
						return "1"
					}
					return "0"
				}}
		},
	})
	if res := history.CheckLinearizable(h, spec.GSet{}); !res.Ok {
		t.Fatalf("stress history not linearizable:\n%s", h.String())
	}
}

// --- helped combining reads: exhaustive model checks (PR 5) ------------------

// The helped sharded reads are verified in layers, because the shard
// pressure poll is FUSED into the epoch announce: adoption needs a write
// that announces AFTER the reader raised, i.e. a second write — and the
// 2-write budget-0 tree exceeds 3M nodes, far past the exploration budget
// (measured; the core engine's 1-update shape stays exhaustive because its
// poll is a separate step after the announce). The split, mirroring PR
// 4.1's envelope discipline: (1) exhaustive budget-0 checks on the 1-write
// shape, whose trees contain the raise and the raised rounds' slot reads
// on many branches; (2) a crafted-schedule deterministic adoption
// (TestShardedHelpedAdoptCraftedRace: lin-checked, adopted value pinned);
// (3) the storm progress witnesses below, where adoption is what bounds
// the reader; (4) real-concurrency stress via the budget-0 slfuzz
// workloads. The witness-free-adoption hazard itself is pinned once, in
// internal/core (TestMultiwordAdoptUnanchoredNotStrongLin) — the shard
// adopt performs the structurally identical closing epoch witness through
// the shared validatedRead.

// TestShardedHelpedCounterStrongLin: exhaustive budget-0 counter — the
// reader raises pressure after its first failed round and every later
// round reads the help slot before its closing epoch witness.
func TestShardedHelpedCounterStrongLin(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive model check; skipped in -short mode")
	}
	setup := func(w *sim.World) []sim.Program {
		c := NewCounter(w, "c", 2, 2, WithReadRetryBudget(0))
		return []sim.Program{
			{opRead(c)},
			{opInc(c)},
		}
	}
	verifySL(t, 2, setup, spec.MonotonicCounter{})
}

// TestShardedHelpedMaxRegisterStrongLin: the budget-0 helped shape on the
// max register, whose combine (max) is the one that is not even
// linearizable without validation.
func TestShardedHelpedMaxRegisterStrongLin(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive model check; skipped in -short mode")
	}
	setup := func(w *sim.World) []sim.Program {
		m := NewMaxRegister(w, "m", 2, 2, WithReadRetryBudget(0))
		return []sim.Program{
			{opReadMax(m)},
			{opWriteMax(m, 2)},
		}
	}
	verifySL(t, 2, setup, spec.MaxRegister{})
}

// TestShardedHelpedGSetStrongLin: the budget-0 helped shape on the
// grow-only set — a miss must validate (or adopt) every round.
func TestShardedHelpedGSetStrongLin(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive model check; skipped in -short mode")
	}
	setup := func(w *sim.World) []sim.Program {
		g := NewGSet(w, "g", 2, 2, WithReadRetryBudget(0))
		return []sim.Program{
			{opHas(g, 3)},
			{opAdd(g, 1)},
		}
	}
	verifySL(t, 2, setup, spec.GSet{})
}

// TestShardedHelpedAdoptCraftedRace drives the shipped counter through a
// deterministic adoption: the budget-0 reader fails its first round on
// inc1's announce and raises pressure in the epoch's high bits; inc2's
// announce returns the raised bits, so it deposits an epoch-validated sum;
// the reader's next round fails its own validation (inc2 announced since)
// but the deposit's epoch equals the closing read — the reader must adopt,
// return the deposited sum, and the recorded history must linearize.
func TestShardedHelpedAdoptCraftedRace(t *testing.T) {
	var adopted int64
	setup := func(w *sim.World) []sim.Program {
		c := NewCounter(w, "c", 2, 2, WithReadRetryBudget(0))
		read := sim.Op{
			Name: "read()",
			Spec: spec.MkOp(spec.MethodRead),
			Run: func(th prim.Thread) string {
				v := c.Read(th)
				adopted = c.HelpStats().Adopts
				return spec.RespInt(v)
			},
		}
		return []sim.Program{
			{read},
			{opInc(c), opInc(c)},
		}
	}
	window := []int{
		0, 0, // read: invoke, epoch baseline
		1, 1, 1, // inc1: invoke, shard XADD, announce (sees no pressure) -> returns
		0, 0, 0, // read round 0: c0, c1, epoch (moved) -> fail
		0,                      // read: raise pressure (epoch high bits)
		1, 1, 1, 1, 1, 1, 1, 1, // inc2: invoke, shard, announce (sees pressure), help e, c0, c1, e2, deposit -> returns
		0, 0, 0, 0, // read round 1: c0, c1, slot (deposit), epoch -> own fail, deposit epoch matches -> ADOPT
		0, // read: lower pressure -> returns
	}
	policy := func(v sim.PolicyView) int {
		if v.Step < len(window) {
			p := window[v.Step]
			for _, e := range v.Enabled {
				if e == p {
					return p
				}
			}
		}
		return v.Enabled[0]
	}
	exec, err := sim.RunToCompletion(2, setup, policy, 200)
	if err != nil {
		t.Fatal(err)
	}
	if !exec.Complete {
		t.Fatalf("crafted adoption did not complete (schedule %v)", exec.Schedule)
	}
	h := history.FromEvents(2, exec.Ops, exec.Events)
	if res := history.CheckLinearizable(h, spec.MonotonicCounter{}); !res.Ok {
		t.Fatalf("crafted adoption history not linearizable: %s", h.String())
	}
	if adopted == 0 {
		t.Fatalf("crafted schedule did not reach the adopt path (schedule %v, history %s)", exec.Schedule, h.String())
	}
	if got := exec.Responses()[0]; got != spec.RespInt(2) {
		t.Fatalf("adopted read = %s, want %s (the helper's validated sum)", got, spec.RespInt(2))
	}
	t.Logf("adopted read, history: %s", h.String())
}

// --- wait-freedom of the helped combining read (PR 5) ------------------------
//
// The storm adversary (sim.AnchorStormPolicy, anchored here on the epoch
// register) lives in internal/sim so that this witness and internal/core's
// drive the identical scheduler.

// shardedStormReadSteps runs one counter read against a storm of
// increments under the anchor-storm adversary and returns the reader's own
// step count. helped selects the shipped (budget-0, adopting) Read;
// otherwise the reader runs readSpin, the pre-helping lock-free protocol.
func shardedStormReadSteps(t *testing.T, storm int, helped bool) int {
	t.Helper()
	setup := func(w *sim.World) []sim.Program {
		c := NewCounter(w, "c", 2, 2, WithReadRetryBudget(0))
		read := sim.Op{
			Name: "read()",
			Spec: spec.MkOp(spec.MethodRead),
			Run: func(th prim.Thread) string {
				if helped {
					return spec.RespInt(c.Read(th))
				}
				return spec.RespInt(c.readSpin(th))
			},
		}
		var incs sim.Program
		for i := 0; i < storm; i++ {
			incs = append(incs, opInc(c))
		}
		return []sim.Program{{read}, incs}
	}
	exec, err := sim.RunToCompletion(2, setup, sim.AnchorStormPolicy(0, 1, "c.epoch"), 100000)
	if err != nil {
		t.Fatal(err)
	}
	if !exec.Complete {
		t.Fatalf("storm run incomplete (schedule %v)", exec.Schedule)
	}
	steps := 0
	for _, e := range exec.Events {
		if e.Kind == sim.EventStep && e.Proc == 0 {
			steps++
		}
	}
	return steps
}

// TestShardedReadStormStarvesLockFreeBaseline pins the starvation the
// helping path closes: under the anchor-storm adversary the pre-helping
// epoch-validated read retries for as long as the storm lasts — its own
// step count grows linearly, with no schedule-independent bound.
func TestShardedReadStormStarvesLockFreeBaseline(t *testing.T) {
	s1, s2, s3 := shardedStormReadSteps(t, 6, false), shardedStormReadSteps(t, 12, false), shardedStormReadSteps(t, 24, false)
	if !(s1 < s2 && s2 < s3) {
		t.Fatalf("lock-free read steps %d/%d/%d do not grow with the storm — the baseline is not starving", s1, s2, s3)
	}
	t.Logf("lock-free read own steps under storms 6/12/24: %d/%d/%d (unbounded growth)", s1, s2, s3)
}

// TestShardedHelpedReadWaitFreeUnderStorm is the progress witness: on the
// SAME adversary schedule, the helped read raises pressure in the epoch's
// high bits, the storm's own writes deposit validated sums, and the read
// adopts — completing within a fixed own-step budget independent of the
// storm length.
func TestShardedHelpedReadWaitFreeUnderStorm(t *testing.T) {
	const fixedBudget = 16
	base := shardedStormReadSteps(t, 6, true)
	if base > fixedBudget {
		t.Fatalf("helped read took %d own steps, want <= %d", base, fixedBudget)
	}
	for _, storm := range []int{12, 24, 48} {
		if got := shardedStormReadSteps(t, storm, true); got != base {
			t.Fatalf("helped read steps = %d under storm %d, want the storm-independent %d", got, storm, base)
		}
	}
	t.Logf("helped read own steps: %d under storms 6/12/24/48 (fixed budget %d)", base, fixedBudget)
}

func stressRngs(procs int, seed int64) []*rand.Rand {
	out := make([]*rand.Rand, procs)
	for p := range out {
		out[p] = rand.New(rand.NewSource(seed + int64(p)))
	}
	return out
}
