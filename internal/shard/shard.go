// Package shard stripes the library's monotone objects across S independent
// fetch&add cores so that writers on different shards never contend on the
// same wide register, and combines shard reads into the object's value.
//
// Writes pick their shard by lane ID (t.ID() % S): with lanes leased from
// internal/pool, concurrent writers spread across shards, turning the single
// fetch&add hot spot of the unsharded constructions into S independent ones.
// Reads visit every shard and combine: sum for the counter, max for the max
// register, or-over-membership for the grow-only set.
//
// # Why naive monotone combination is not enough
//
// Each shard is strongly linearizable with single-step operations, and each
// shard's value is MONOTONE (non-decreasing in the object's natural order).
// For a read that performs one shard read per shard at times t_1 < ... < t_S,
// monotonicity buys plain linearizability for sum and membership combines:
//
//   - Counter (sum): total(t_1) <= sum <= total(t_S), and the total passes
//     through every intermediate value in unit steps, so the sum was the
//     exact total at some instant inside the read.
//   - GSet (or): a membership miss at t_s >= t_1 means (monotonicity) a miss
//     at t_1 too, so "absent" was globally true at t_1; a hit was true when
//     witnessed.
//   - MaxRegister (max): the argument FAILS — the global max does not pass
//     through intermediate values. If a reader collects shard A before
//     WriteMax(7) lands there, WriteMax(7) completes, WriteMax(3) completes
//     on shard B, and the reader then collects B, it returns 3 even though 7
//     was written strictly earlier: not linearizable. The model checker
//     reproduces exactly this (TestShardedMaxRegisterSingleCollectNotLinearizable).
//
// Linearizability is still not the library's contract — STRONG
// linearizability is, and the naive combine fails it even where it is
// linearizable. The execution-tree game checker exhibits the trap for the
// single-collect counter: a reader collects shard A = 0; an inc lands on A
// and RETURNS. Prefix-closure forces the completed inc into the
// linearization now, and only APPENDS are allowed later — but the reader's
// eventual value (0 or 1) still depends on whether a second inc beats its
// read of shard B, so no commitment made at this point survives both
// futures. The sum combine is linearizable but NOT strongly linearizable
// (TestShardedCounterSingleCollectNotStrongLin), precisely the
// hyperproperty-relevant gap this library exists to close.
//
// # Epoch-validated collects
//
// The sharded objects therefore close the staleness window with one narrow
// machine-word fetch&add register, the EPOCH: a write performs its shard
// fetch&add (its linearization point) and then announces completion by
// fetch&add(epoch, 1); a read snapshots the epoch, collects the shards, and
// re-reads the epoch, retrying the collect until the epoch is unchanged. On
// success, every write that completed before the read's final step had
// announced before the window opened — so its shard step is included in the
// collect, and the combined value is consistent with every operation the
// prefix-closed linearization has already committed. Writes the collect saw
// whose announce is still pending linearize eagerly (their void responses
// are determined at their shard step), exactly the pending-operation
// linearization the game checker explores. Strong linearizability of all
// three sharded objects is decided mechanically on bounded configurations
// (2 shards x 2-3 processes) in the package tests.
//
// The epoch register is shared by all writers, but it is the bounded
// special case of fetch&add (hardware XADD on an int64) — the expensive,
// contended work of the unsharded constructions, the mutex-guarded
// arbitrary-precision arithmetic on registers whose width grows with values
// times lanes, is what gets striped.
//
// # Helping: reads survive write storms
//
// An epoch-validated collect alone is only lock-free: every retry consumes a
// concurrent write's announce, so a write storm can starve a reader
// indefinitely. The sharded objects therefore HELP starving readers, with
// the same discipline as internal/core's multi-word snapshot scans.
//
// The pressure signal rides the epoch register itself: the low 48 bits
// count announces, the bits above them count readers currently past their
// retry budget (WithReadRetryBudget, default 2 rounds). A starving reader
// raises pressure with fetch&add(epoch, 2^48) and lowers it on return —
// ordinary epoch movement to everyone else's validation, which compares
// exact values. A write already performs fetch&add(epoch, 1) to announce,
// and that XADD RETURNS the previous epoch — so writes learn of starving
// readers for free, with zero additional steps on the uncontended path.
// A write whose announce returns raised pressure bits then performs one
// bounded epoch-validated collect of its own and deposits the combined
// value, keyed by the exact epoch value it validated at, in the help slot.
//
// From then on each of the starving reader's rounds also reads the slot
// BEFORE its closing epoch read, and a round whose own validation fails
// ADOPTS the deposit if the closing epoch read — still the read's final
// shared step — equals the deposit's epoch: the identical validation
// applied to a helper's collect instead of the reader's own, so an adopted
// value carries the same strong-linearizability argument (every write that
// completed before the read's final step had announced before the helper's
// window opened, so the deposit includes its shard step; a write announcing
// after the helper validated moves the epoch and forces a retry — adoption
// cannot resurrect a past value). Helping bounds a starved reader's own
// steps against any single-writer storm — each storm write must refresh the
// deposit before its next announce can invalidate it (the progress witness
// in the package tests pins the fixed budget on the schedule that provably
// starves the unhelped read) — while writes stay wait-free: the helper's
// collect is bounded, and a helper that keeps being invalidated gives up,
// leaving the obligation to whichever write invalidated it. Against
// adversarial multi-writer schedules an adopt retry still consumes a fresh
// announce (strictly, reads remain lock-free, matching the guarantee of the
// paper's Theorem 9/10 objects; the helpers shrink the starvation window
// from the full S-shard collect to the two steps between the slot read and
// the epoch witness). The 2^48 announce capacity before the count would
// carry into the pressure bits is of a kind with the engine's other
// rollover caveats; at one announce per nanosecond it is ~3 days of
// continuous writes, and the count is per-object — and unlike the
// pre-migration engine it is no longer terminal: RolloverEpoch re-bases the
// announce count live (see the live-rollover section below).
//
// # Live epoch rollover: the announce budget is renewable
//
// RolloverEpoch (on every sharded object) rewinds the epoch's announce
// count to ~0 without stopping traffic, converting the 2^48 announce budget
// from a lifetime into a lease. The whole cutover is one short sequence on
// the migrator — no writer or reader path changes, and no operation blocks:
//
//  1. ARM: set epochCutoverBit with one fetch&add. The bit announces a
//     rollover in flight (at most one runs at a time — internal/migrate
//     serialises — and a crashed migrator's rollover is completed by simply
//     calling RolloverEpoch again, which sees the bit and skips to step 2).
//  2. FLUSH: overwrite the help slot and the combine cache with the
//     no-deposit sentinel, so no combine validated against a pre-rollover
//     epoch value survives the rewind.
//  3. REWIND: read the epoch, take wound = its current announce count, and
//     apply ONE fetch&add of (epochGenUnit - wound - epochCutoverBit) —
//     rewinding the announces, bumping the rollover GENERATION field (bits
//     56..61), and disarming, atomically. Announces that land between the
//     read and the rewind survive as the new epoch's small starting count.
//
// Safety is the exact-value epoch witness plus the generation field: every
// validation in the package — collect rounds, adoptions, cache hits —
// compares exact 64-bit epoch values, and the rewind moves the generation,
// so no value read before the rewind can equal one read after it. The ABA
// a bare rewind would open (a reader's window spanning the rollover closing
// on a bytewise-equal epoch) therefore needs the generation to wrap all the
// way around: 64 rollovers, each at least the caller's announce floor apart,
// inside one reader's open window — with the slot and cache also flushed
// every rollover. The floor (RolloverEpoch's minAnnounces, the watermark
// thresholds in cmd/slserve) makes that quantitatively absurd rather than
// merely unlikely: 64 x floor announces must fit between two adjacent steps
// of one reader. The generation field narrows raised-reader capacity from
// 2^14 to 2^8 concurrent starved readers (pressure bits 48..55), still far
// above any deployment's concurrent slow-path population.
//
// # Cached combines: steady-state reads skip the collect
//
// A validated combine can also be CACHED (WithReadCache, opt-in), keyed by
// the exact epoch value its validation window closed at. A later read first
// reads the cache and then ONE fresh epoch value — performed after the cache
// read, so it is the read's final shared step — and returns the cached
// combine on an exact match: that is the identical closing epoch witness
// every other completion performs, applied to an older validated collect
// (every write announces on the epoch before completing, so an unchanged
// epoch certifies the cached combine is still the current value). The
// steady-state read-mostly combine is thereby two register reads instead of
// an S-shard collect. Entries are refreshed by validated reads and by
// adopted helper deposits, last-writer-wins; unlike the help slot the cache
// persists across pressure episodes, which is safe because announce counts
// are monotone — an epoch value can only recur while no write completed,
// exactly the state the entry is valid in (up to the 2^48 announce rollover
// the helping section already carries).
//
// # Packed shard cores
//
// With WithBound, each shard core additionally packs its register into a
// single machine word when the per-shard encoding fits (internal/core's
// bound options; internal/interleave.Packed). The compact lane maps are what
// make this the common case: a shard hosts lanes/S writers, so its width
// budget is S times larger than the unsharded construction's, and every
// object register in the system — S shard words plus the epoch — is then a
// hardware XADD int64. The strong-linearizability argument is untouched
// (each shard operation is still one fetch&add on one register), and the
// packed sharded objects pass the same exhaustive model checks as the wide
// ones in the package tests.
package shard

import (
	"fmt"
	"sort"
	"sync/atomic"

	"stronglin/internal/core"
	"stronglin/internal/obs"
	"stronglin/internal/prim"
)

func validate(lanes, shards int) {
	if lanes < 1 || shards < 1 {
		panic(fmt.Sprintf("shard: lanes (%d) and shards (%d) must be >= 1", lanes, shards))
	}
	if shards > lanes {
		panic(fmt.Sprintf("shard: %d shards exceed %d lanes — shards would sit idle", shards, lanes))
	}
}

// Option configures the sharded constructors.
type Option func(*config)

type config struct {
	bound    int64 // -1: unbounded (wide cores)
	budget   int   // failed validation rounds a read absorbs before raising pressure
	useCache bool  // enables the epoch-anchored combine cache (WithReadCache)
	met      obs.ShardMetrics
}

// readSpinRounds is the default read retry budget (WithReadRetryBudget).
const readSpinRounds = 2

// helperRounds bounds the validation attempts of a writer's help collect,
// keeping writes wait-free: a helper whose collect is invalidated gives up —
// the invalidating write inherits the obligation at its own pressure check.
// One attempt suffices: an uninterfered helper always validates, and under
// interference the interferer re-helps (the bound also keeps the helped
// configurations inside the model checker's exploration budget).
const helperRounds = 1

// WithReadRetryBudget sets how many invalidated collect rounds a combining
// read absorbs before raising the pressure register and adopting helper
// deposits (default readSpinRounds). A budget of 0 requests help after the
// first failed round — the configuration the adopt-path model checks use to
// make adoption the common case. The budget affects progress only, never
// returned values: adopted and self-collected values pass the same closing
// epoch validation.
func WithReadRetryBudget(rounds int) Option {
	if rounds < 0 {
		panic(fmt.Sprintf("shard: WithReadRetryBudget(%d): budget must be non-negative", rounds))
	}
	return func(c *config) { c.budget = rounds }
}

// WithReadCache enables the epoch-anchored combine cache (default disabled):
// a validated combining read publishes its combined value keyed by the exact
// epoch value it validated at, and a later read first reads the cache and ONE
// fresh epoch value — still its final shared step — returning the cached
// combine on an exact match. That is the identical closing epoch witness the
// collect loop and the adopt path end with (every write announces on the
// epoch before completing), so the strong-linearizability argument is
// unchanged; the steady-state read-mostly combine is two register reads
// instead of an S-shard collect. The cache is opt-in because it adds one
// shared register and two read steps to the protocol: deployments (slserve,
// the benchmarks) turn it on, while the bare collect/help protocol's model
// checks keep the default — the cached configurations carry their own
// dedicated checks. Correctness never depends on the setting.
func WithReadCache(enabled bool) Option {
	return func(c *config) { c.useCache = enabled }
}

// WithObs attaches optional scrape-layer instrumentation: histograms observed
// on CONTENDED read completions only (a read whose first round validates is
// never observed), so the uncontended fast path is untouched. Nil fields
// inside m are no-ops. The always-on HelpStats counters are kept regardless;
// this option adds the distribution view on top.
func WithObs(m obs.ShardMetrics) Option {
	return func(c *config) { c.met = m }
}

// pressureUnit is one raised reader in the epoch register's pressure bits.
// The epoch register's full layout (see the package comment's helping and
// live-rollover sections):
//
//	bits  0..47  announce count (monotone within a generation)
//	bits 48..55  raised-reader pressure (up to 256 concurrent starved reads)
//	bits 56..61  rollover generation (mod 64, bumped by RolloverEpoch)
//	bit  62      epochCutoverBit — a rollover is in flight
const pressureUnit = int64(1) << 48

// epochGenUnit is one rollover generation: RolloverEpoch's rewind adds it so
// that post-rollover epoch values can never compare equal to pre-rollover
// ones, no matter where the rewound announce count lands. 6 bits wide.
const epochGenUnit = int64(1) << 56

// epochGenCount is the generation field's modulus (64): the number of live
// rollovers before generations recur — the residual ABA window the package
// comment's live-rollover section bounds.
const epochGenCount = int64(epochCutoverBit / epochGenUnit)

// epochCutoverBit marks a rollover in flight on the epoch register itself,
// the same announce-as-final-step discipline as internal/core's mwCutoverBit.
// Set by RolloverEpoch's arm step, cleared atomically by its rewind step.
const epochCutoverBit = int64(1) << 62

// helpDeposit is a helper's epoch-validated collect: the combined value
// (value for the counter and max register, elems for the grow-only set)
// and the exact epoch value the helper's validation window closed at
// (pressure bits included — the adopting reader compares exact values).
// Immutable once deposited; epoch -1 is the no-deposit sentinel — the
// slot's initial value, restored by the last raised reader when it lowers
// pressure.
type helpDeposit struct {
	epoch int64
	value int64
	elems []int64
}

// helpKit is the per-object helping machinery: the help slot writers
// deposit into and the read retry budget. The pressure signal itself rides
// the object's epoch register. The atomic counters are telemetry only (never
// read by the protocol), and all of them are batched on the SLOW path — a
// read whose first round validates touches none of them, so the instrumented
// fast paths carry zero added atomic operations.
type helpKit struct {
	slot   prim.AnyRegister
	budget int
	met    obs.ShardMetrics

	// cache is the epoch-anchored combine cache (WithReadCache, opt-in; nil
	// when disabled): the freshest validated combine keyed by the exact
	// epoch value its validation closed at. Entries are helpDeposits —
	// adopted deposits are stored as is, own validations through the read's
	// deposit closure. Unlike the help slot it persists across pressure
	// episodes: its anchor is the exact 64-bit epoch value, which (announce
	// counts being monotone) can only recur while no write announced — the
	// one state a cached combine is valid in anyway — up to the 2^48 announce
	// rollover the package comment already carries for the epoch itself.
	cache prim.AnyRegister

	deposits    atomic.Int64
	adopts      atomic.Int64
	adoptMisses atomic.Int64
	retries     atomic.Int64
	raises      atomic.Int64

	// Combine-cache telemetry: misses/refreshes always (they bracket a full
	// collect anyway); hits only via the optional met.CacheHits, keeping the
	// uninstrumented hit path free of added atomics (obs.CacheStats).
	cacheMisses    atomic.Int64
	cacheRefreshes atomic.Int64
}

func newHelpKit(w prim.World, name string, cfg config) *helpKit {
	k := &helpKit{
		slot:   w.AnyRegister(name+".slot", &helpDeposit{epoch: -1}),
		budget: cfg.budget,
		met:    cfg.met,
	}
	if cfg.useCache {
		k.cache = w.AnyRegister(name+".cache", &helpDeposit{epoch: -1})
	}
	return k
}

// announce performs a write's epoch announce — fetch&add(epoch, 1), exactly
// the step the pre-helping protocol performed — and inspects the returned
// previous value for raised pressure bits: learning of starving readers
// costs the write zero additional steps. While pressure is raised the write
// honours its help obligation: a bounded epoch-validated collect deposited
// in the help slot, keyed by the exact epoch value it validated at.
// Deposits are last-writer-wins; a stale deposit never corrupts a read (its
// epoch witness fails and the read retries), it only delays adoption.
func (k *helpKit) announce(t prim.Thread, epoch prim.FetchAddInt, collect func(prim.Thread) (int64, []int64)) {
	if epochPressure(epoch.FetchAddInt(t, 1)) == 0 {
		return
	}
	e := epoch.FetchAddInt(t, 0)
	for r := 0; r < helperRounds; r++ {
		v, elems := collect(t)
		e2 := epoch.FetchAddInt(t, 0)
		if e2 == e {
			k.slot.WriteAny(t, &helpDeposit{epoch: e2, value: v, elems: elems})
			k.deposits.Add(1)
			return
		}
		e = e2
	}
}

// HelpStats reports an object's helping telemetry: helper deposits made by
// writes, reads that returned an adopted value, adoption attempts whose
// closing epoch witness failed, failed validation rounds, and pressure-raise
// episodes. Safe to call from any goroutine; counts are slow-path events.
func (k *helpKit) HelpStats() obs.HelpStats {
	return obs.HelpStats{
		Deposits:    k.deposits.Load(),
		Adopts:      k.adopts.Load(),
		AdoptMisses: k.adoptMisses.Load(),
		Retries:     k.retries.Load(),
		Raises:      k.raises.Load(),
	}
}

// CacheStats reports the combine cache's telemetry (see obs.CacheStats for
// the hit-counting contract). All fields are 0 with the cache disabled.
func (k *helpKit) CacheStats() obs.CacheStats {
	return obs.CacheStats{
		Hits:      k.met.CacheHits.Load(),
		Misses:    k.cacheMisses.Load(),
		Refreshes: k.cacheRefreshes.Load(),
	}
}

// epochAnnounces extracts the announce count from an epoch value: the low 48
// bits, the position within the register's 2^48 announce lifetime budget (the
// rollover caveat in the package comment). The watermark the live-migration
// plans trigger on.
func epochAnnounces(e int64) int64 { return e & (pressureUnit - 1) }

// epochPressure extracts the raised-reader count from an epoch value: bits
// 48..55, masked so neither the rollover generation nor an in-flight
// cutover bit reads as phantom pressure.
func epochPressure(e int64) int64 { return (e >> 48) & (epochGenUnit/pressureUnit - 1) }

// epochGeneration extracts the rollover generation from an epoch value
// (bits 56..61): how many times RolloverEpoch has re-based the announce
// count, mod epochGenCount.
func epochGeneration(e int64) int64 { return (e >> 56) & (epochGenCount - 1) }

// rebaseEpoch is the live epoch rollover shared by the three objects (the
// package comment's live-rollover section): floor-check, ARM, FLUSH the help
// slot and combine cache, then one rewind-bump-disarm fetch&add. Returns the
// announce count it wound back and whether a rollover ran at all — a count
// below minAnnounces is refused (and reported as (0, false)), EXCEPT when
// the cutover bit is already set, which marks a crashed migrator's rollover:
// the call adopts it and completes the remaining steps idempotently (the
// flush re-writes a sentinel, the rewind measures wound fresh).
//
// At most one rollover may run at a time (internal/migrate serialises);
// writers and readers need no quiescence — announces landing inside the
// window simply survive the rewind as the new generation's starting count,
// and every in-flight validation window spanning the rewind fails its exact
// epoch comparison (the generation moved) and retries against post-rollover
// values.
func rebaseEpoch(t prim.Thread, epoch prim.FetchAddInt, k *helpKit, minAnnounces int64) (int64, bool) {
	e := epoch.FetchAddInt(t, 0)
	if e&epochCutoverBit == 0 {
		if epochAnnounces(e) < minAnnounces {
			return 0, false
		}
		epoch.FetchAddInt(t, epochCutoverBit) // ARM: a rollover is in flight
	}
	// FLUSH: no combine validated against a pre-rollover epoch value may
	// survive the rewind. Clearing races a concurrent helper deposit or
	// cache refresh exactly like the last raised reader's clear does — a
	// progress delay for one reader, never a wrong value (adoption and cache
	// hits still demand their own closing epoch witness, which the rewind's
	// generation bump forces to miss).
	k.slot.WriteAny(t, &helpDeposit{epoch: -1})
	if k.cache != nil {
		k.cache.WriteAny(t, &helpDeposit{epoch: -1})
	}
	// REWIND: one fetch&add rewinds the announces measured this instant,
	// bumps the generation, and clears the cutover bit atomically. At the
	// generation modulus the +epochGenUnit carry would land on the cutover
	// bit; subtract the full field instead so the generation wraps to 0
	// with the bit still cleanly cleared.
	cur := epoch.FetchAddInt(t, 0)
	wound := epochAnnounces(cur)
	delta := epochGenUnit - wound - epochCutoverBit
	if epochGeneration(cur) == epochGenCount-1 {
		delta = -(epochGenCount-1)*epochGenUnit - wound - epochCutoverBit
	}
	epoch.FetchAddInt(t, delta)
	return wound, true
}

// WithBound declares the value domain [0, bound] of the object (max-register
// values, grow-only-set elements, or the counter's final count). Each shard
// core then packs its register into a single machine word whenever its
// per-shard encoding fits (internal/core's bound options) — sharding already
// narrows every shard's register by the compact lane maps, so a bound that is
// hopeless for the unsharded construction often packs per shard: "sharding
// narrows the register" becomes "sharding makes the register a machine word".
// Shards whose encoding does not fit fall back to the wide register
// individually.
//
// For the max register and the grow-only set the bound is enforced on every
// shard regardless of engine: writes beyond it panic uniformly, and reads
// simply never see such values. For the counter it is a capacity declaration
// only (a shard cannot see the global count, and any count up to 2^62-1 is
// machine-word representable); the packed counter panics only at that
// capacity.
func WithBound(bound int64) Option {
	if bound < 0 {
		panic(fmt.Sprintf("shard: WithBound(%d): bound must be non-negative", bound))
	}
	return func(c *config) { c.bound = bound }
}

func buildConfig(opts []Option) config {
	cfg := config{bound: -1, budget: readSpinRounds}
	for _, o := range opts {
		o(&cfg)
	}
	return cfg
}

// Counter is a monotone counter striped across S fetch&add cores. Inc touches
// the caller's shard and the epoch; Read performs an epoch-validated collect.
type Counter struct {
	shards []*core.FACounter
	epoch  prim.FetchAddInt
	help   *helpKit
}

// NewCounter builds a sharded counter for the given lane count.
func NewCounter(w prim.World, name string, lanes, shards int, opts ...Option) *Counter {
	validate(lanes, shards)
	cfg := buildConfig(opts)
	c := &Counter{
		shards: make([]*core.FACounter, shards),
		epoch:  w.FetchAddInt(name+".epoch", 0),
		help:   newHelpKit(w, name, cfg),
	}
	for s := range c.shards {
		var coreOpts []core.CounterOption
		if cfg.bound >= 0 {
			// Any one shard's count is bounded by the whole counter's.
			coreOpts = append(coreOpts, core.WithCounterBound(cfg.bound))
		}
		c.shards[s] = core.NewFACounter(w, shardName(name, s), coreOpts...)
	}
	return c
}

// Shards returns the shard count S.
func (c *Counter) Shards() int { return len(c.shards) }

// Packed reports whether every shard core runs on a packed machine word.
func (c *Counter) Packed() bool {
	for _, s := range c.shards {
		if !s.Packed() {
			return false
		}
	}
	return true
}

// Inc increments the counter via the caller's shard and announces on the
// epoch; the announce's return value carries the pressure bits, so the
// write additionally honours its help obligation — depositing a validated
// sum — exactly while a reader is starving (see the package comment).
func (c *Counter) Inc(t prim.Thread) {
	c.shards[t.ID()%len(c.shards)].Inc(t)
	c.help.announce(t, c.epoch, c.collectSum)
}

// Add adds k (non-negative) via the caller's shard.
func (c *Counter) Add(t prim.Thread, k int64) {
	c.shards[t.ID()%len(c.shards)].Add(t, k)
	c.help.announce(t, c.epoch, c.collectSum)
}

// collectSum is the counter's help collect: the unvalidated sum (the
// helper's afterWrite wraps it in its own epoch validation).
func (c *Counter) collectSum(t prim.Thread) (int64, []int64) {
	return c.readSingleCollect(t), nil
}

// Read returns the counter value: an epoch-validated sum of one read per
// shard — served from the epoch-anchored combine cache when the epoch has
// not moved since the last validated sum — adopting a helper's validated sum
// once starved (see the package comment's helping protocol).
func (c *Counter) Read(t prim.Thread) int64 {
	return validatedRead(t, c.epoch, c.help,
		func() (int64, bool) { return c.readSingleCollect(t), false },
		func(d *helpDeposit) int64 { return d.value },
		func(v int64) *helpDeposit { return &helpDeposit{value: v} })
}

// HelpStats reports the counter's helping telemetry.
func (c *Counter) HelpStats() obs.HelpStats { return c.help.HelpStats() }

// CacheStats reports the counter's combine-cache telemetry.
func (c *Counter) CacheStats() obs.CacheStats { return c.help.CacheStats() }

// EpochAnnounces returns the counter's epoch announce count — the position
// within the register's 2^48 announce lifetime budget (the rollover caveat in
// the package comment), the watermark migration planning triggers on.
func (c *Counter) EpochAnnounces(t prim.Thread) int64 {
	return epochAnnounces(c.epoch.FetchAddInt(t, 0))
}

// PressureRaised returns how many readers currently hold the epoch's pressure
// bits raised (an instantaneous gauge, usually 0).
func (c *Counter) PressureRaised(t prim.Thread) int64 {
	return epochPressure(c.epoch.FetchAddInt(t, 0))
}

// EpochGeneration returns how many live rollovers the counter's epoch has
// absorbed (mod 64 — see the package comment's live-rollover section).
func (c *Counter) EpochGeneration(t prim.Thread) int64 {
	return epochGeneration(c.epoch.FetchAddInt(t, 0))
}

// RolloverEpoch performs one live re-base of the counter's epoch register:
// the announce count — the object's 2^48 lifetime write budget — is wound
// back to ~0 without stopping traffic (see the package comment's
// live-rollover section). Refused, returning (0, false), while the count is
// below minAnnounces: the floor is the quantitative ABA argument, so callers
// pass their watermark threshold, not 0. At most one rollover may run at a
// time (internal/migrate serialises); a crashed rollover is completed by
// calling again.
func (c *Counter) RolloverEpoch(t prim.Thread, minAnnounces int64) (int64, bool) {
	return rebaseEpoch(t, c.epoch, c.help, minAnnounces)
}

// readSingleCollect is the naive combine kept for the negative model check:
// linearizable (the sum passes through every intermediate total) but not
// strongly linearizable (see the package comment's trap).
func (c *Counter) readSingleCollect(t prim.Thread) int64 {
	var sum int64
	for _, s := range c.shards {
		sum += s.Read(t)
	}
	return sum
}

// readSpin is the pre-helping lock-free read — epoch-validated collect with
// unbounded retries, no pressure, no adoption — kept exclusively for the
// progress witness: under the single-writer storm schedule its retry count
// (and so the reader's own steps) grows without bound, which is exactly the
// starvation the helping path closes. Its returned values carry the full
// epoch-validation guarantee; only progress differs.
func (c *Counter) readSpin(t prim.Thread) int64 {
	e := c.epoch.FetchAddInt(t, 0)
	for {
		v := c.readSingleCollect(t)
		e2 := c.epoch.FetchAddInt(t, 0)
		if e2 == e {
			return v
		}
		e = e2
	}
}

// MaxRegister is a max register striped across S fetch&add unary cores.
// WriteMax touches the caller's shard and the epoch; ReadMax performs an
// epoch-validated collect.
type MaxRegister struct {
	shards []*core.FAMaxRegister
	epoch  prim.FetchAddInt
	help   *helpKit
}

// NewMaxRegister builds a sharded max register for the given lane count.
// Shard s is a Theorem 1 construction hosting only the lanes mapped to it
// (l % S == s), compacted to indices l/S — so each shard's unary register is
// S times narrower than the unsharded construction's, which shrinks every
// fetch&add proportionally on top of splitting writer contention. With
// WithBound, that narrowing is what lets each shard pack into a machine word.
func NewMaxRegister(w prim.World, name string, lanes, shards int, opts ...Option) *MaxRegister {
	validate(lanes, shards)
	cfg := buildConfig(opts)
	m := &MaxRegister{
		shards: make([]*core.FAMaxRegister, shards),
		epoch:  w.FetchAddInt(name+".epoch", 0),
		help:   newHelpKit(w, name, cfg),
	}
	for s := range m.shards {
		coreOpts := []core.MaxRegOption{core.WithLaneMap(compactLane(shards))}
		if cfg.bound >= 0 {
			coreOpts = append(coreOpts, core.WithMaxRegBound(cfg.bound))
		}
		m.shards[s] = core.NewFAMaxRegister(w, shardName(name, s), laneCount(lanes, shards, s), coreOpts...)
	}
	return m
}

// Shards returns the shard count S.
func (m *MaxRegister) Shards() int { return len(m.shards) }

// Packed reports whether every shard core runs on a packed machine word.
func (m *MaxRegister) Packed() bool {
	for _, s := range m.shards {
		if !s.Packed() {
			return false
		}
	}
	return true
}

// WriteMax writes v (non-negative) via the caller's shard and announces on
// the epoch, honouring its help obligation when the announce's return value
// carries raised pressure bits (see the package comment).
func (m *MaxRegister) WriteMax(t prim.Thread, v int64) {
	m.shards[t.ID()%len(m.shards)].WriteMax(t, v)
	m.help.announce(t, m.epoch, m.collectMax)
}

// collectMax is the max register's help collect (unvalidated; afterWrite
// epoch-validates it).
func (m *MaxRegister) collectMax(t prim.Thread) (int64, []int64) {
	return m.readMaxSingleCollect(t), nil
}

// ReadMax returns the largest value written so far: an epoch-validated max of
// one read per shard, adopting a helper's validated max once starved (see
// the package comment's helping protocol).
func (m *MaxRegister) ReadMax(t prim.Thread) int64 {
	return validatedRead(t, m.epoch, m.help,
		func() (int64, bool) { return m.readMaxSingleCollect(t), false },
		func(d *helpDeposit) int64 { return d.value },
		func(v int64) *helpDeposit { return &helpDeposit{value: v} })
}

// HelpStats reports the register's helping telemetry.
func (m *MaxRegister) HelpStats() obs.HelpStats { return m.help.HelpStats() }

// CacheStats reports the register's combine-cache telemetry.
func (m *MaxRegister) CacheStats() obs.CacheStats { return m.help.CacheStats() }

// EpochAnnounces returns the register's epoch announce count (see
// Counter.EpochAnnounces).
func (m *MaxRegister) EpochAnnounces(t prim.Thread) int64 {
	return epochAnnounces(m.epoch.FetchAddInt(t, 0))
}

// PressureRaised returns the register's currently-raised reader count.
func (m *MaxRegister) PressureRaised(t prim.Thread) int64 {
	return epochPressure(m.epoch.FetchAddInt(t, 0))
}

// EpochGeneration returns how many live rollovers the register's epoch has
// absorbed (see Counter.EpochGeneration).
func (m *MaxRegister) EpochGeneration(t prim.Thread) int64 {
	return epochGeneration(m.epoch.FetchAddInt(t, 0))
}

// RolloverEpoch performs one live re-base of the register's epoch announce
// count (see Counter.RolloverEpoch).
func (m *MaxRegister) RolloverEpoch(t prim.Thread, minAnnounces int64) (int64, bool) {
	return rebaseEpoch(t, m.epoch, m.help, minAnnounces)
}

// readMaxSingleCollect is the broken combine kept for the negative model
// check: one unvalidated collect is not even linearizable. See the package
// comment's counterexample.
func (m *MaxRegister) readMaxSingleCollect(t prim.Thread) int64 {
	var max int64
	for _, sh := range m.shards {
		if v := sh.ReadMax(t); v > max {
			max = v
		}
	}
	return max
}

// GSet is a grow-only set striped across S fetch&add cores. Add touches the
// caller's shard and the epoch; Has witnesses membership directly or
// validates absence against the epoch.
type GSet struct {
	shards []*core.FAGSet
	epoch  prim.FetchAddInt
	help   *helpKit
}

// NewGSet builds a sharded grow-only set for the given lane count. Like the
// max register, shard s hosts only its own lanes, compacted — narrowing each
// shard's element-bit register by the shard count (and, with WithBound,
// packing it into a machine word when the per-shard bitmap fits).
func NewGSet(w prim.World, name string, lanes, shards int, opts ...Option) *GSet {
	validate(lanes, shards)
	cfg := buildConfig(opts)
	g := &GSet{
		shards: make([]*core.FAGSet, shards),
		epoch:  w.FetchAddInt(name+".epoch", 0),
		help:   newHelpKit(w, name, cfg),
	}
	for s := range g.shards {
		coreOpts := []core.GSetOption{core.WithGSetLaneMap(compactLane(shards))}
		if cfg.bound >= 0 {
			coreOpts = append(coreOpts, core.WithGSetBound(cfg.bound))
		}
		g.shards[s] = core.NewFAGSet(w, shardName(name, s), laneCount(lanes, shards, s), coreOpts...)
	}
	return g
}

// Shards returns the shard count S.
func (g *GSet) Shards() int { return len(g.shards) }

// Packed reports whether every shard core runs on a packed machine word.
func (g *GSet) Packed() bool {
	for _, s := range g.shards {
		if !s.Packed() {
			return false
		}
	}
	return true
}

// Add inserts x (non-negative) via the caller's shard and announces on the
// epoch, honouring its help obligation when the announce's return value
// carries raised pressure bits: the grow-only set's helper deposits the
// full validated UNION, which answers any starving membership query or
// enumeration.
func (g *GSet) Add(t prim.Thread, x int64) {
	g.shards[t.ID()%len(g.shards)].Add(t, x)
	g.help.announce(t, g.epoch, g.collectUnion)
}

// collectUnion is the set's help collect: the unvalidated shard union
// (afterWrite epoch-validates it).
func (g *GSet) collectUnion(t prim.Thread) (int64, []int64) {
	return 0, g.unionSingleCollect(t)
}

// Has reports membership of x. A hit needs no validation — membership only
// grows, so "present" stays appendable after any later operations; a miss is
// epoch-validated like the other combining reads, and a starved miss adopts
// a helper's validated union (absent from the union at the witnessed epoch
// means absent, full stop).
func (g *GSet) Has(t prim.Thread, x int64) bool {
	return validatedRead(t, g.epoch, g.help,
		func() (bool, bool) {
			found := g.hasSingleCollect(t, x)
			return found, found // a witnessed hit is final without validation
		},
		func(d *helpDeposit) bool {
			for _, y := range d.elems {
				if y == x {
					return true
				}
			}
			return false
		},
		// A membership collect does not compute the union, so Has publishes
		// no entries of its own; it serves hits from — and adoption refreshes
		// with — the unions Elems reads and helpers publish.
		nil)
}

// HelpStats reports the set's helping telemetry.
func (g *GSet) HelpStats() obs.HelpStats { return g.help.HelpStats() }

// CacheStats reports the set's combine-cache telemetry.
func (g *GSet) CacheStats() obs.CacheStats { return g.help.CacheStats() }

// EpochAnnounces returns the set's epoch announce count (see
// Counter.EpochAnnounces).
func (g *GSet) EpochAnnounces(t prim.Thread) int64 {
	return epochAnnounces(g.epoch.FetchAddInt(t, 0))
}

// PressureRaised returns the set's currently-raised reader count.
func (g *GSet) PressureRaised(t prim.Thread) int64 {
	return epochPressure(g.epoch.FetchAddInt(t, 0))
}

// EpochGeneration returns how many live rollovers the set's epoch has
// absorbed (see Counter.EpochGeneration).
func (g *GSet) EpochGeneration(t prim.Thread) int64 {
	return epochGeneration(g.epoch.FetchAddInt(t, 0))
}

// RolloverEpoch performs one live re-base of the set's epoch announce count
// (see Counter.RolloverEpoch).
func (g *GSet) RolloverEpoch(t prim.Thread, minAnnounces int64) (int64, bool) {
	return rebaseEpoch(t, g.epoch, g.help, minAnnounces)
}

// hasSingleCollect is the naive combine kept for the negative model check:
// linearizable (a miss at t_s implies a miss at t_1 by monotonicity) but not
// strongly linearizable.
func (g *GSet) hasSingleCollect(t prim.Thread, x int64) bool {
	for _, s := range g.shards {
		if s.Has(t, x) {
			return true
		}
	}
	return false
}

// Elems returns the members in ascending order: an epoch-validated union of
// the shards, adopting a helper's validated union once starved.
func (g *GSet) Elems(t prim.Thread) []int64 {
	out := validatedRead(t, g.epoch, g.help,
		func() ([]int64, bool) { return g.unionSingleCollect(t), false },
		func(d *helpDeposit) []int64 { return append([]int64(nil), d.elems...) },
		// Copy: cache entries are immutable, and the caller sorts the
		// returned slice in place.
		func(u []int64) *helpDeposit { return &helpDeposit{elems: append([]int64(nil), u...)} })
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// unionSingleCollect is one unvalidated union of the shards, deduplicated
// (validatedRead and afterWrite wrap it in the epoch validation).
func (g *GSet) unionSingleCollect(t prim.Thread) []int64 {
	seen := make(map[int64]struct{})
	var union []int64
	for _, s := range g.shards {
		for _, x := range s.Elems(t) {
			if _, dup := seen[x]; !dup {
				seen[x] = struct{}{}
				union = append(union, x)
			}
		}
	}
	return union
}

// validatedRead is the package's combining-read protocol, written once:
// snapshot the epoch, run collect, re-read the epoch, and retry until the
// epoch is unchanged — at which point every write that completed before the
// final epoch read had announced before the window opened, so collect saw
// its shard step (the strong-linearizability argument in the package
// comment). A collect may short-circuit by returning final=true for values
// that need no validation (e.g. a witnessed membership hit, which
// monotonicity keeps true forever).
//
// With the combine cache on, the loop is preceded by the cached fast path:
// read the cache, then ONE fresh epoch value — performed AFTER the cache
// read, so it is the read's final shared step on a hit — and return
// adopt(entry) when the entry's epoch matches exactly. That is the identical
// closing epoch witness every other completion performs, applied to a
// previously validated combine: an unchanged epoch means no write announced
// (completed) since that combine's window closed, so it is still the current
// value. On a miss the fresh epoch read seeds the collect loop's baseline.
//
// A read past its retry budget raises the pressure register and from then
// on reads the help slot before each closing epoch read: when its own round
// fails validation but the deposit's epoch equals the closing read — the
// read's final shared step, performed AFTER the slot read — it returns
// adopt(deposit) instead. The adopted value passed the identical epoch
// validation (the helper's), witnessed still-current by the read's own
// final step; see the package comment's helping section.
//
// deposit converts a successfully self-validated value into a cache entry
// (validatedRead stamps the epoch); reads that cannot produce one cheaply
// pass nil (a membership query does not compute the union) and still serve
// hits from — and refresh the cache with — entries published by other read
// kinds, helpers, and adoptions.
func validatedRead[T any](t prim.Thread, epoch prim.FetchAddInt, k *helpKit,
	collect func() (v T, final bool), adopt func(*helpDeposit) T,
	deposit func(v T) *helpDeposit) T {
	var e int64
	cachedEpoch := int64(-1)
	if k.cache != nil {
		if d, ok := k.cache.ReadAny(t).(*helpDeposit); ok && d.epoch >= 0 {
			cachedEpoch = d.epoch
			e = epoch.FetchAddInt(t, 0)
			if e == d.epoch {
				k.met.CacheHits.Inc()
				return adopt(d)
			}
		}
		k.cacheMisses.Add(1) // cold entry or a completed write moved the epoch
	}
	if cachedEpoch < 0 {
		e = epoch.FetchAddInt(t, 0)
	}
	raised, adopted := false, false
	var failedRounds, missed int64
	var out T
	for spins := 0; ; spins++ {
		v, final := collect()
		if final {
			out = v
			break
		}
		// The adoption candidate must be read BEFORE the closing epoch read:
		// the witness has to be the later of the two, or a write could
		// announce (and complete) between them unseen.
		var dep *helpDeposit
		if raised {
			if d, ok := k.slot.ReadAny(t).(*helpDeposit); ok && d.epoch >= 0 {
				dep = d
			}
		}
		e2 := epoch.FetchAddInt(t, 0)
		if e2 == e {
			out = v
			// Refresh the cache with this validated combine, keyed by the
			// epoch its window closed at. Last-writer-wins, like the help
			// slot: an overwrite can only delay hits, never corrupt one — a
			// hit still demands its own fresh epoch witness.
			if k.cache != nil && deposit != nil && e2 != cachedEpoch {
				d := deposit(v)
				d.epoch = e2
				k.cache.WriteAny(t, d)
				k.cacheRefreshes.Add(1)
			}
			break
		}
		failedRounds++
		if dep != nil {
			if dep.epoch == e2 {
				out = adopt(dep)
				adopted = true
				// An adopted deposit is already an immutable epoch-keyed
				// validated combine: store it as the cache entry directly.
				if k.cache != nil && e2 != cachedEpoch {
					k.cache.WriteAny(t, dep)
					k.cacheRefreshes.Add(1)
				}
				break
			}
			missed++ // deposit present but an announce moved past it
		}
		e = e2
		if spins >= k.budget && !raised {
			// Raise pressure in the epoch's high bits; the XADD's return
			// value gives the exact post-raise epoch, the next round's
			// baseline (the raise is ordinary epoch movement to every other
			// reader's validation).
			raised = true
			e = epoch.FetchAddInt(t, pressureUnit) + pressureUnit
		}
	}
	// Telemetry, batched: a read whose first round validates (or whose first
	// collect is final) skips all of it — the uncontended fast path carries
	// zero added atomic ops.
	if failedRounds > 0 {
		k.retries.Add(failedRounds)
		if missed > 0 {
			k.adoptMisses.Add(missed)
		}
		k.met.ReadRounds.Observe(failedRounds)
	}
	if raised {
		k.raises.Add(1)
		// Lowering returns the previous epoch for free: the LAST raised
		// reader clears the slot, so deposits never outlive the pressure
		// episode that solicited them (a persistent deposit would reopen an
		// adopt window across the epoch's 2^48-announce rollover; clearing
		// bounds the exposure to one episode). The clear may race a
		// concurrent raise and clobber a fresher deposit — a progress delay
		// for that reader, never a wrong value: adoption still demands the
		// closing epoch witness.
		if epochPressure(epoch.FetchAddInt(t, -pressureUnit)) == 1 {
			k.slot.WriteAny(t, &helpDeposit{epoch: -1})
		}
		if adopted {
			k.adopts.Add(1)
		}
	}
	return out
}

func shardName(base string, s int) string {
	return fmt.Sprintf("%s.shard%d", base, s)
}

// laneCount returns how many of the lanes in [0, lanes) map to shard s,
// i.e. |{l : l % shards == s}|.
func laneCount(lanes, shards, s int) int {
	return (lanes - s + shards - 1) / shards
}

// compactLane maps a process ID to its shard-local lane index: the processes
// hitting shard s are s, s+S, s+2S, ..., compacted to 0, 1, 2, ....
func compactLane(shards int) func(id int) int {
	return func(id int) int { return id / shards }
}
