// Package shard stripes the library's monotone objects across S independent
// fetch&add cores so that writers on different shards never contend on the
// same wide register, and combines shard reads into the object's value.
//
// Writes pick their shard by lane ID (t.ID() % S): with lanes leased from
// internal/pool, concurrent writers spread across shards, turning the single
// fetch&add hot spot of the unsharded constructions into S independent ones.
// Reads visit every shard and combine: sum for the counter, max for the max
// register, or-over-membership for the grow-only set.
//
// # Why naive monotone combination is not enough
//
// Each shard is strongly linearizable with single-step operations, and each
// shard's value is MONOTONE (non-decreasing in the object's natural order).
// For a read that performs one shard read per shard at times t_1 < ... < t_S,
// monotonicity buys plain linearizability for sum and membership combines:
//
//   - Counter (sum): total(t_1) <= sum <= total(t_S), and the total passes
//     through every intermediate value in unit steps, so the sum was the
//     exact total at some instant inside the read.
//   - GSet (or): a membership miss at t_s >= t_1 means (monotonicity) a miss
//     at t_1 too, so "absent" was globally true at t_1; a hit was true when
//     witnessed.
//   - MaxRegister (max): the argument FAILS — the global max does not pass
//     through intermediate values. If a reader collects shard A before
//     WriteMax(7) lands there, WriteMax(7) completes, WriteMax(3) completes
//     on shard B, and the reader then collects B, it returns 3 even though 7
//     was written strictly earlier: not linearizable. The model checker
//     reproduces exactly this (TestShardedMaxRegisterSingleCollectNotLinearizable).
//
// Linearizability is still not the library's contract — STRONG
// linearizability is, and the naive combine fails it even where it is
// linearizable. The execution-tree game checker exhibits the trap for the
// single-collect counter: a reader collects shard A = 0; an inc lands on A
// and RETURNS. Prefix-closure forces the completed inc into the
// linearization now, and only APPENDS are allowed later — but the reader's
// eventual value (0 or 1) still depends on whether a second inc beats its
// read of shard B, so no commitment made at this point survives both
// futures. The sum combine is linearizable but NOT strongly linearizable
// (TestShardedCounterSingleCollectNotStrongLin), precisely the
// hyperproperty-relevant gap this library exists to close.
//
// # Epoch-validated collects
//
// The sharded objects therefore close the staleness window with one narrow
// machine-word fetch&add register, the EPOCH: a write performs its shard
// fetch&add (its linearization point) and then announces completion by
// fetch&add(epoch, 1); a read snapshots the epoch, collects the shards, and
// re-reads the epoch, retrying the collect until the epoch is unchanged. On
// success, every write that completed before the read's final step had
// announced before the window opened — so its shard step is included in the
// collect, and the combined value is consistent with every operation the
// prefix-closed linearization has already committed. Writes the collect saw
// whose announce is still pending linearize eagerly (their void responses
// are determined at their shard step), exactly the pending-operation
// linearization the game checker explores. Strong linearizability of all
// three sharded objects is decided mechanically on bounded configurations
// (2 shards x 2-3 processes) in the package tests.
//
// The epoch register is shared by all writers, but it is the bounded
// special case of fetch&add (hardware XADD on an int64) — the expensive,
// contended work of the unsharded constructions, the mutex-guarded
// arbitrary-precision arithmetic on registers whose width grows with values
// times lanes, is what gets striped. Reads are lock-free rather than
// wait-free (a retry consumes a write's announce), matching the guarantee of
// the paper's Theorem 9/10 objects.
//
// # Packed shard cores
//
// With WithBound, each shard core additionally packs its register into a
// single machine word when the per-shard encoding fits (internal/core's
// bound options; internal/interleave.Packed). The compact lane maps are what
// make this the common case: a shard hosts lanes/S writers, so its width
// budget is S times larger than the unsharded construction's, and every
// object register in the system — S shard words plus the epoch — is then a
// hardware XADD int64. The strong-linearizability argument is untouched
// (each shard operation is still one fetch&add on one register), and the
// packed sharded objects pass the same exhaustive model checks as the wide
// ones in the package tests.
package shard

import (
	"fmt"
	"sort"

	"stronglin/internal/core"
	"stronglin/internal/prim"
)

func validate(lanes, shards int) {
	if lanes < 1 || shards < 1 {
		panic(fmt.Sprintf("shard: lanes (%d) and shards (%d) must be >= 1", lanes, shards))
	}
	if shards > lanes {
		panic(fmt.Sprintf("shard: %d shards exceed %d lanes — shards would sit idle", shards, lanes))
	}
}

// Option configures the sharded constructors.
type Option func(*config)

type config struct {
	bound int64 // -1: unbounded (wide cores)
}

// WithBound declares the value domain [0, bound] of the object (max-register
// values, grow-only-set elements, or the counter's final count). Each shard
// core then packs its register into a single machine word whenever its
// per-shard encoding fits (internal/core's bound options) — sharding already
// narrows every shard's register by the compact lane maps, so a bound that is
// hopeless for the unsharded construction often packs per shard: "sharding
// narrows the register" becomes "sharding makes the register a machine word".
// Shards whose encoding does not fit fall back to the wide register
// individually.
//
// For the max register and the grow-only set the bound is enforced on every
// shard regardless of engine: writes beyond it panic uniformly, and reads
// simply never see such values. For the counter it is a capacity declaration
// only (a shard cannot see the global count, and any count up to 2^62-1 is
// machine-word representable); the packed counter panics only at that
// capacity.
func WithBound(bound int64) Option {
	if bound < 0 {
		panic(fmt.Sprintf("shard: WithBound(%d): bound must be non-negative", bound))
	}
	return func(c *config) { c.bound = bound }
}

func buildConfig(opts []Option) config {
	cfg := config{bound: -1}
	for _, o := range opts {
		o(&cfg)
	}
	return cfg
}

// Counter is a monotone counter striped across S fetch&add cores. Inc touches
// the caller's shard and the epoch; Read performs an epoch-validated collect.
type Counter struct {
	shards []*core.FACounter
	epoch  prim.FetchAddInt
}

// NewCounter builds a sharded counter for the given lane count.
func NewCounter(w prim.World, name string, lanes, shards int, opts ...Option) *Counter {
	validate(lanes, shards)
	cfg := buildConfig(opts)
	c := &Counter{
		shards: make([]*core.FACounter, shards),
		epoch:  w.FetchAddInt(name+".epoch", 0),
	}
	for s := range c.shards {
		var coreOpts []core.CounterOption
		if cfg.bound >= 0 {
			// Any one shard's count is bounded by the whole counter's.
			coreOpts = append(coreOpts, core.WithCounterBound(cfg.bound))
		}
		c.shards[s] = core.NewFACounter(w, shardName(name, s), coreOpts...)
	}
	return c
}

// Shards returns the shard count S.
func (c *Counter) Shards() int { return len(c.shards) }

// Packed reports whether every shard core runs on a packed machine word.
func (c *Counter) Packed() bool {
	for _, s := range c.shards {
		if !s.Packed() {
			return false
		}
	}
	return true
}

// Inc increments the counter via the caller's shard.
func (c *Counter) Inc(t prim.Thread) {
	c.shards[t.ID()%len(c.shards)].Inc(t)
	c.epoch.FetchAddInt(t, 1)
}

// Add adds k (non-negative) via the caller's shard.
func (c *Counter) Add(t prim.Thread, k int64) {
	c.shards[t.ID()%len(c.shards)].Add(t, k)
	c.epoch.FetchAddInt(t, 1)
}

// Read returns the counter value: an epoch-validated sum of one read per
// shard. Lock-free: a retry consumes a write's epoch announce.
func (c *Counter) Read(t prim.Thread) int64 {
	v := epochValidated(t, c.epoch, func() (int64, bool) {
		return c.readSingleCollect(t), false
	})
	return v
}

// readSingleCollect is the naive combine kept for the negative model check:
// linearizable (the sum passes through every intermediate total) but not
// strongly linearizable (see the package comment's trap).
func (c *Counter) readSingleCollect(t prim.Thread) int64 {
	var sum int64
	for _, s := range c.shards {
		sum += s.Read(t)
	}
	return sum
}

// MaxRegister is a max register striped across S fetch&add unary cores.
// WriteMax touches the caller's shard and the epoch; ReadMax performs an
// epoch-validated collect.
type MaxRegister struct {
	shards []*core.FAMaxRegister
	epoch  prim.FetchAddInt
}

// NewMaxRegister builds a sharded max register for the given lane count.
// Shard s is a Theorem 1 construction hosting only the lanes mapped to it
// (l % S == s), compacted to indices l/S — so each shard's unary register is
// S times narrower than the unsharded construction's, which shrinks every
// fetch&add proportionally on top of splitting writer contention. With
// WithBound, that narrowing is what lets each shard pack into a machine word.
func NewMaxRegister(w prim.World, name string, lanes, shards int, opts ...Option) *MaxRegister {
	validate(lanes, shards)
	cfg := buildConfig(opts)
	m := &MaxRegister{
		shards: make([]*core.FAMaxRegister, shards),
		epoch:  w.FetchAddInt(name+".epoch", 0),
	}
	for s := range m.shards {
		coreOpts := []core.MaxRegOption{core.WithLaneMap(compactLane(shards))}
		if cfg.bound >= 0 {
			coreOpts = append(coreOpts, core.WithMaxRegBound(cfg.bound))
		}
		m.shards[s] = core.NewFAMaxRegister(w, shardName(name, s), laneCount(lanes, shards, s), coreOpts...)
	}
	return m
}

// Shards returns the shard count S.
func (m *MaxRegister) Shards() int { return len(m.shards) }

// Packed reports whether every shard core runs on a packed machine word.
func (m *MaxRegister) Packed() bool {
	for _, s := range m.shards {
		if !s.Packed() {
			return false
		}
	}
	return true
}

// WriteMax writes v (non-negative) via the caller's shard.
func (m *MaxRegister) WriteMax(t prim.Thread, v int64) {
	m.shards[t.ID()%len(m.shards)].WriteMax(t, v)
	m.epoch.FetchAddInt(t, 1)
}

// ReadMax returns the largest value written so far: an epoch-validated max of
// one read per shard. Lock-free: a retry consumes a write's epoch announce.
func (m *MaxRegister) ReadMax(t prim.Thread) int64 {
	v := epochValidated(t, m.epoch, func() (int64, bool) {
		return m.readMaxSingleCollect(t), false
	})
	return v
}

// readMaxSingleCollect is the broken combine kept for the negative model
// check: one unvalidated collect is not even linearizable. See the package
// comment's counterexample.
func (m *MaxRegister) readMaxSingleCollect(t prim.Thread) int64 {
	var max int64
	for _, sh := range m.shards {
		if v := sh.ReadMax(t); v > max {
			max = v
		}
	}
	return max
}

// GSet is a grow-only set striped across S fetch&add cores. Add touches the
// caller's shard and the epoch; Has witnesses membership directly or
// validates absence against the epoch.
type GSet struct {
	shards []*core.FAGSet
	epoch  prim.FetchAddInt
}

// NewGSet builds a sharded grow-only set for the given lane count. Like the
// max register, shard s hosts only its own lanes, compacted — narrowing each
// shard's element-bit register by the shard count (and, with WithBound,
// packing it into a machine word when the per-shard bitmap fits).
func NewGSet(w prim.World, name string, lanes, shards int, opts ...Option) *GSet {
	validate(lanes, shards)
	cfg := buildConfig(opts)
	g := &GSet{
		shards: make([]*core.FAGSet, shards),
		epoch:  w.FetchAddInt(name+".epoch", 0),
	}
	for s := range g.shards {
		coreOpts := []core.GSetOption{core.WithGSetLaneMap(compactLane(shards))}
		if cfg.bound >= 0 {
			coreOpts = append(coreOpts, core.WithGSetBound(cfg.bound))
		}
		g.shards[s] = core.NewFAGSet(w, shardName(name, s), laneCount(lanes, shards, s), coreOpts...)
	}
	return g
}

// Shards returns the shard count S.
func (g *GSet) Shards() int { return len(g.shards) }

// Packed reports whether every shard core runs on a packed machine word.
func (g *GSet) Packed() bool {
	for _, s := range g.shards {
		if !s.Packed() {
			return false
		}
	}
	return true
}

// Add inserts x (non-negative) via the caller's shard.
func (g *GSet) Add(t prim.Thread, x int64) {
	g.shards[t.ID()%len(g.shards)].Add(t, x)
	g.epoch.FetchAddInt(t, 1)
}

// Has reports membership of x. A hit needs no validation — membership only
// grows, so "present" stays appendable after any later operations; a miss is
// epoch-validated like the other combining reads.
func (g *GSet) Has(t prim.Thread, x int64) bool {
	hit := epochValidated(t, g.epoch, func() (bool, bool) {
		found := g.hasSingleCollect(t, x)
		return found, found // a witnessed hit is final without validation
	})
	return hit
}

// hasSingleCollect is the naive combine kept for the negative model check:
// linearizable (a miss at t_s implies a miss at t_1 by monotonicity) but not
// strongly linearizable.
func (g *GSet) hasSingleCollect(t prim.Thread, x int64) bool {
	for _, s := range g.shards {
		if s.Has(t, x) {
			return true
		}
	}
	return false
}

// Elems returns the members in ascending order: an epoch-validated union of
// the shards.
func (g *GSet) Elems(t prim.Thread) []int64 {
	out := epochValidated(t, g.epoch, func() ([]int64, bool) {
		seen := make(map[int64]struct{})
		var union []int64
		for _, s := range g.shards {
			for _, x := range s.Elems(t) {
				if _, dup := seen[x]; !dup {
					seen[x] = struct{}{}
					union = append(union, x)
				}
			}
		}
		return union, false
	})
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// epochValidated is the package's seqlock-style combining-read protocol,
// written once: snapshot the epoch, run collect, re-read the epoch, and
// retry until the epoch is unchanged — at which point every write that
// completed before the final epoch read had announced before the window
// opened, so collect saw its shard step (the strong-linearizability argument
// in the package comment). A collect may short-circuit by returning
// final=true for values that need no validation (e.g. a witnessed membership
// hit, which monotonicity keeps true forever).
func epochValidated[T any](t prim.Thread, epoch prim.FetchAddInt, collect func() (v T, final bool)) T {
	e := epoch.FetchAddInt(t, 0)
	for {
		v, final := collect()
		if final {
			return v
		}
		e2 := epoch.FetchAddInt(t, 0)
		if e2 == e {
			return v
		}
		e = e2
	}
}

func shardName(base string, s int) string {
	return fmt.Sprintf("%s.shard%d", base, s)
}

// laneCount returns how many of the lanes in [0, lanes) map to shard s,
// i.e. |{l : l % shards == s}|.
func laneCount(lanes, shards, s int) int {
	return (lanes - s + shards - 1) / shards
}

// compactLane maps a process ID to its shard-local lane index: the processes
// hitting shard s are s, s+S, s+2S, ..., compacted to 0, 1, 2, ....
func compactLane(shards int) func(id int) int {
	return func(id int) int { return id / shards }
}
