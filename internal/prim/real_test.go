package prim

import (
	"fmt"
	"math/big"
	"sync"
	"testing"
	"time"
)

func TestRealRegister(t *testing.T) {
	w := NewRealWorld()
	r := w.Register("r", 7)
	th := RealThread(0)
	if got := r.Read(th); got != 7 {
		t.Fatalf("initial Read = %d, want 7", got)
	}
	r.Write(th, -3)
	if got := r.Read(th); got != -3 {
		t.Fatalf("Read after Write = %d, want -3", got)
	}
}

func TestRealTASSingleWinner(t *testing.T) {
	w := NewRealWorld()
	ts := w.TAS("ts")
	const procs = 8
	wins := make([]int64, procs)
	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			wins[p] = ts.TestAndSet(RealThread(p))
		}(p)
	}
	wg.Wait()
	zeros := 0
	for _, v := range wins {
		if v == 0 {
			zeros++
		} else if v != 1 {
			t.Fatalf("TestAndSet returned %d", v)
		}
	}
	if zeros != 1 {
		t.Fatalf("want exactly one winner, got %d", zeros)
	}
	if ts.Read(RealThread(0)) != 1 {
		t.Fatal("state not 1 after TestAndSet")
	}
}

func TestRealTASReadBeforeSet(t *testing.T) {
	w := NewRealWorld()
	ts := w.TAS("ts")
	if got := ts.Read(RealThread(0)); got != 0 {
		t.Fatalf("fresh TAS Read = %d, want 0", got)
	}
}

func TestRealFetchAddConcurrentSum(t *testing.T) {
	w := NewRealWorld()
	fa := w.FetchAdd("R")
	const procs, reps = 8, 200
	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			th := RealThread(p)
			for i := 0; i < reps; i++ {
				fa.FetchAdd(th, big.NewInt(1))
			}
		}(p)
	}
	wg.Wait()
	got := fa.FetchAdd(RealThread(0), new(big.Int))
	if got.Int64() != procs*reps {
		t.Fatalf("sum = %v, want %d", got, procs*reps)
	}
}

func TestRealFetchAddReturnsPrevious(t *testing.T) {
	w := NewRealWorld()
	fa := w.FetchAdd("R")
	th := RealThread(0)
	if prev := fa.FetchAdd(th, big.NewInt(5)); prev.Sign() != 0 {
		t.Fatalf("first FetchAdd prev = %v, want 0", prev)
	}
	if prev := fa.FetchAdd(th, big.NewInt(-2)); prev.Int64() != 5 {
		t.Fatalf("second FetchAdd prev = %v, want 5", prev)
	}
	if cur := fa.FetchAdd(th, new(big.Int)); cur.Int64() != 3 {
		t.Fatalf("read = %v, want 3", cur)
	}
}

func TestRealFetchAddDoesNotAliasDelta(t *testing.T) {
	w := NewRealWorld()
	fa := w.FetchAdd("R")
	th := RealThread(0)
	delta := big.NewInt(4)
	fa.FetchAdd(th, delta)
	delta.SetInt64(1000) // mutating the caller's delta must not affect the register
	if cur := fa.FetchAdd(th, new(big.Int)); cur.Int64() != 4 {
		t.Fatalf("register state = %v, want 4", cur)
	}
}

// TestRealFetchAddReadIgnoresMutatorMutex pins the copy-on-write contract:
// fetch&add(0) is an atomic pointer load that never touches the mutex
// serialising mutators. The test holds the mutex and requires a concurrent
// read to complete anyway — under the pre-COW implementation this deadlocks.
func TestRealFetchAddReadIgnoresMutatorMutex(t *testing.T) {
	w := NewRealWorld()
	fa := w.FetchAdd("R")
	th := RealThread(0)
	fa.FetchAdd(th, big.NewInt(9))

	r := fa.(*realFetchAdd)
	r.mu.Lock()
	defer r.mu.Unlock()

	done := make(chan int64, 1)
	go func() {
		done <- fa.FetchAdd(RealThread(1), new(big.Int)).Int64()
	}()
	select {
	case got := <-done:
		if got != 9 {
			t.Fatalf("read under held mutator mutex = %d, want 9", got)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("FetchAdd(0) blocked on the mutator mutex; reads must be lock-free")
	}
}

// TestRealFetchAddCOWStress drives mutators against lock-free readers. Every
// reader must observe a monotonically non-decreasing sequence of counts (the
// register only grows here), and the final total must be exact. Run with
// -race, this also certifies the safe publication of the immutable snapshots.
func TestRealFetchAddCOWStress(t *testing.T) {
	w := NewRealWorld()
	fa := w.FetchAdd("R")
	const writers, readers, reps = 4, 4, 300
	var wg sync.WaitGroup
	for p := 0; p < writers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			th := RealThread(p)
			for i := 0; i < reps; i++ {
				fa.FetchAdd(th, big.NewInt(1))
			}
		}(p)
	}
	errs := make(chan error, readers)
	for p := 0; p < readers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			th := RealThread(writers + p)
			last := int64(-1)
			for i := 0; i < reps; i++ {
				got := fa.FetchAdd(th, new(big.Int)).Int64()
				if got < last {
					errs <- fmt.Errorf("reader %d: value went backwards: %d after %d", p, got, last)
					return
				}
				last = got
			}
		}(p)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := fa.FetchAdd(RealThread(0), new(big.Int)).Int64(); got != writers*reps {
		t.Fatalf("final total = %d, want %d", got, writers*reps)
	}
}

func TestRealSwap(t *testing.T) {
	w := NewRealWorld()
	s := w.Swap("s", 10)
	th := RealThread(1)
	if old := s.Swap(th, 20); old != 10 {
		t.Fatalf("Swap returned %d, want 10", old)
	}
	if got := s.Read(th); got != 20 {
		t.Fatalf("Read = %d, want 20", got)
	}
}

func TestRealCAS(t *testing.T) {
	w := NewRealWorld()
	c := w.CAS("c", 1)
	th := RealThread(0)
	if c.CompareAndSwap(th, 2, 3) {
		t.Fatal("CAS with wrong old succeeded")
	}
	if !c.CompareAndSwap(th, 1, 9) {
		t.Fatal("CAS with right old failed")
	}
	if got := c.Read(th); got != 9 {
		t.Fatalf("Read = %d, want 9", got)
	}
}

func TestRealCASCell(t *testing.T) {
	type node struct{ v int }
	w := NewRealWorld()
	a, b := &node{1}, &node{2}
	c := w.CASCell("cell", a)
	th := RealThread(0)
	if got := c.Load(th); got != any(a) {
		t.Fatal("Load != init")
	}
	if c.CompareAndSwap(th, b, a) {
		t.Fatal("CAS with wrong old succeeded")
	}
	if !c.CompareAndSwap(th, a, b) {
		t.Fatal("CAS with right old failed")
	}
	if got := c.Load(th); got != any(b) {
		t.Fatal("Load != new value")
	}
}

func TestDuplicateNamePanics(t *testing.T) {
	w := NewRealWorld()
	w.Register("x", 0)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate name did not panic")
		}
	}()
	w.TAS("x")
}

func TestTAS2AccessDiscipline(t *testing.T) {
	w := NewRealWorld()
	ts := w.TAS2("t2", 0, 2)
	if got := ts.TestAndSet(RealThread(0)); got != 0 {
		t.Fatalf("first TestAndSet = %d, want 0", got)
	}
	if got := ts.TestAndSet(RealThread(2)); got != 1 {
		t.Fatalf("second TestAndSet = %d, want 1", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("third-party access did not panic")
		}
	}()
	ts.Read(RealThread(1))
}

func TestTASArrayLazyAllocation(t *testing.T) {
	w := NewRealWorld()
	arr := NewTASArray(w, "TS")
	th := RealThread(0)
	a := arr.Get(3)
	if b := arr.Get(3); a != b {
		t.Fatal("Get(3) returned distinct objects")
	}
	if got := arr.Get(5).TestAndSet(th); got != 0 {
		t.Fatalf("fresh entry TestAndSet = %d, want 0", got)
	}
	if got := arr.Get(3).Read(th); got != 0 {
		t.Fatalf("entry 3 affected by entry 5: %d", got)
	}
}

func TestRegisterArray(t *testing.T) {
	w := NewRealWorld()
	arr := NewRegisterArray(w, "Items", -1)
	th := RealThread(0)
	if got := arr.Get(10).Read(th); got != -1 {
		t.Fatalf("init = %d, want -1", got)
	}
	arr.Get(10).Write(th, 42)
	if got := arr.Get(10).Read(th); got != 42 {
		t.Fatalf("Read = %d, want 42", got)
	}
}

func TestSwapArray(t *testing.T) {
	w := NewRealWorld()
	arr := NewSwapArray(w, "S", 0)
	th := RealThread(0)
	if old := arr.Get(2).Swap(th, 5); old != 0 {
		t.Fatalf("Swap = %d, want 0", old)
	}
	if got := arr.Get(2).Read(th); got != 5 {
		t.Fatalf("Read = %d, want 5", got)
	}
}

func TestArrayConcurrentGet(t *testing.T) {
	w := NewRealWorld()
	arr := NewTASArray(w, "TS")
	var wg sync.WaitGroup
	objs := make([]ReadableTAS, 16)
	for p := range objs {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			objs[p] = arr.Get(0)
		}(p)
	}
	wg.Wait()
	for p := 1; p < len(objs); p++ {
		if objs[p] != objs[0] {
			t.Fatal("concurrent Get(0) returned distinct objects")
		}
	}
}
