package prim

import (
	"strconv"
	"sync"
)

// The paper's constructions use infinite arrays of base objects (the TS
// array of the multi-shot test&set, the M array of fetch&increment, the
// Items and TS arrays of Algorithm 2). The types below model an infinite
// array by lazy, name-indexed allocation: entry i of array "A" is the base
// object named "A[i]", created on first access. Allocation is an addressing
// artifact of modelling an infinite array, not a shared-memory step of the
// algorithm; in the simulated world objects are identified by name, so
// lazily allocating them does not perturb determinism.

// TASArray is an infinite array of readable test&set objects.
type TASArray struct {
	mu   sync.Mutex
	w    World
	name string
	objs map[int]ReadableTAS
}

// NewTASArray returns an infinite test&set array allocating from w.
func NewTASArray(w World, name string) *TASArray {
	return &TASArray{w: w, name: name, objs: make(map[int]ReadableTAS)}
}

// Get returns entry i, allocating it on first use.
func (a *TASArray) Get(i int) ReadableTAS {
	a.mu.Lock()
	defer a.mu.Unlock()
	if o, ok := a.objs[i]; ok {
		return o
	}
	o := a.w.TAS(indexName(a.name, i))
	a.objs[i] = o
	return o
}

// RegisterArray is an infinite array of read/write registers, each with the
// same initial value.
type RegisterArray struct {
	mu   sync.Mutex
	w    World
	name string
	init int64
	objs map[int]Register
}

// NewRegisterArray returns an infinite register array allocating from w.
func NewRegisterArray(w World, name string, init int64) *RegisterArray {
	return &RegisterArray{w: w, name: name, init: init, objs: make(map[int]Register)}
}

// Get returns entry i, allocating it on first use.
func (a *RegisterArray) Get(i int) Register {
	a.mu.Lock()
	defer a.mu.Unlock()
	if o, ok := a.objs[i]; ok {
		return o
	}
	o := a.w.Register(indexName(a.name, i), a.init)
	a.objs[i] = o
	return o
}

// SwapArray is an infinite array of readable swap registers.
type SwapArray struct {
	mu   sync.Mutex
	w    World
	name string
	init int64
	objs map[int]ReadableSwap
}

// NewSwapArray returns an infinite swap array allocating from w.
func NewSwapArray(w World, name string, init int64) *SwapArray {
	return &SwapArray{w: w, name: name, init: init, objs: make(map[int]ReadableSwap)}
}

// Get returns entry i, allocating it on first use.
func (a *SwapArray) Get(i int) ReadableSwap {
	a.mu.Lock()
	defer a.mu.Unlock()
	if o, ok := a.objs[i]; ok {
		return o
	}
	o := a.w.Swap(indexName(a.name, i), a.init)
	a.objs[i] = o
	return o
}

func indexName(base string, i int) string {
	return base + "[" + strconv.Itoa(i) + "]"
}
