// Package prim defines the shared-memory base objects ("primitives") that
// every construction in this repository is written against, together with the
// notion of a World that allocates them.
//
// The paper's model (Section 2) is a standard asynchronous shared-memory
// system: processes communicate by applying atomic operations to shared base
// objects. Two worlds implement these interfaces:
//
//   - prim.NewRealWorld: primitives backed by sync/atomic (the wide
//     fetch&add register is copy-on-write: mutating fetch&adds serialise on a
//     mutex and publish immutable big.Int snapshots, while fetch&add(0) reads
//     are single atomic pointer loads — an implementation detail of the
//     substrate; the primitive is specified atomic). Used for stress tests
//     and benchmarks.
//   - sim.NewWorld (package internal/sim): primitives executed as single
//     atomic steps of a deterministic cooperative scheduler, so that all
//     interleavings of a bounded program can be enumerated. Used for model
//     checking linearizability and strong linearizability.
//
// Consensus numbers (Herlihy 1991), as used throughout the paper:
//
//	read/write registers         consensus number 1
//	test&set, swap, fetch&add    consensus number 2
//	compare&swap                 consensus number ∞
//
// Constructions declare which primitives they use by the interfaces they
// accept; e.g. the readable test&set of Theorem 5 takes a TAS (not a
// ReadableTAS), matching the paper's claim that it builds readability from a
// plain test&set.
package prim

import "math/big"

// Thread identifies the process applying a primitive operation. Every
// primitive method takes the calling thread explicitly: the simulated world
// uses it to schedule the step, the constructions use its ID to select
// per-process lanes/components, and the stress harness uses it to attribute
// operations in recorded histories.
type Thread interface {
	// ID returns the process index in [0, n).
	ID() int
}

// Register is an atomic multi-writer multi-reader read/write register holding
// an int64. Consensus number 1.
type Register interface {
	Read(t Thread) int64
	Write(t Thread, v int64)
}

// AnyRegister is an atomic read/write register holding an opaque immutable
// value (consensus number 1). It models the standard assumption of registers
// with unbounded/composite values (e.g. the (data, seq, view) tuples of the
// Afek et al. snapshot). Stored values must be non-nil and, in the real
// world, of a single concrete type per register; pointers are recommended.
type AnyRegister interface {
	ReadAny(t Thread) any
	WriteAny(t Thread, v any)
}

// TAS is a one-shot test&set object. Consensus number 2. The first
// TestAndSet returns 0 (the caller "wins"); every later call returns 1.
type TAS interface {
	TestAndSet(t Thread) int64
}

// ReadableTAS is a test&set object that additionally supports reading its
// state without modifying it. The paper distinguishes readable from
// non-readable base objects: Theorem 5 shows how to build this interface
// from a plain TAS plus a register, and Lemma 16 shows strong linearizability
// is preserved when base objects are made readable.
type ReadableTAS interface {
	TAS
	Read(t Thread) int64
}

// FetchAdd is an unbounded-width atomic fetch&add register, initially 0.
// Consensus number 2. FetchAdd returns the previous value; a read is
// performed as FetchAdd(0), exactly as in the paper's constructions. The
// returned value must not be mutated by the caller, and delta is not retained.
type FetchAdd interface {
	FetchAdd(t Thread, delta *big.Int) *big.Int
}

// FetchAddInt is a bounded-width (machine-word) fetch&add register holding an
// int64. Consensus number 2 — this is the hardware XADD primitive, the
// bounded special case of FetchAdd. The runtime layers (internal/pool,
// internal/shard) use it for narrow bookkeeping — lease tickets, epoch
// announce counters — where the unbounded register's width (and, in the real
// world, its mutex-guarded big.Int arithmetic) is not needed.
type FetchAddInt interface {
	// FetchAddInt adds delta and returns the previous value.
	FetchAddInt(t Thread, delta int64) int64
}

// Swap is an atomic swap register holding an int64. Consensus number 2.
type Swap interface {
	Swap(t Thread, v int64) int64
}

// ReadableSwap is a swap register that additionally supports reads.
type ReadableSwap interface {
	Swap
	Read(t Thread) int64
}

// MaxReg is an atomic max register base object: ReadMax returns the largest
// value previously written (initially the constructor's init). It is not a
// hardware primitive — the paper's Theorem 6 takes "readable test&set and
// max register" as atomic base objects, which compositions then discharge
// against Theorems 1 and 5 (Corollary 7) or against the lock-free
// register-based max register (Corollary 8).
type MaxReg interface {
	WriteMax(t Thread, v int64)
	ReadMax(t Thread) int64
}

// CAS is an atomic compare&swap register holding an int64. Consensus number
// ∞; it is used only by the universal-object comparators (the "known
// wait-free strongly-linearizable implementations use primitives such as
// compare&swap" the paper contrasts with), never by the paper's own
// constructions.
type CAS interface {
	Read(t Thread) int64
	CompareAndSwap(t Thread, old, new int64) bool
}

// CASCell is a compare&swap cell holding an opaque immutable value compared
// by interface equality. Stored values must be non-nil, comparable, and of a
// single concrete type per cell; pointers are recommended. Consensus number
// ∞ (comparator use only, like CAS).
type CASCell interface {
	Load(t Thread) any
	CompareAndSwap(t Thread, old, new any) bool
}

// LinPointMarker is implemented by worlds that record linearization-point
// certificates (the simulated world). Constructions whose operations have
// fixed own-step linearization points may declare them via MarkLinPoint,
// enabling linear-time strong-linearizability certification in addition to
// the game search.
type LinPointMarker interface {
	MarkLinPoint(t Thread)
}

// MarkLinPoint declares the calling operation's most recent step as its
// linearization point, when the world records certificates; otherwise it is
// a no-op.
func MarkLinPoint(w World, t Thread) {
	if m, ok := w.(LinPointMarker); ok {
		m.MarkLinPoint(t)
	}
}

// Awaiter is implemented by worlds that support a CONDITIONAL read step on an
// AnyRegister: the step executes (and returns the register's value) only once
// ready reports true of it. The simulated world models it as a step that is
// simply not enabled while the condition is false — which keeps exhaustive
// exploration finite where a read-and-retry spin would branch forever — and
// the real world spins. Semantically an await is a plain read that the
// scheduler happens to grant only when the predicate holds: a weak-fairness
// assumption, not a new primitive (the elided reads all return values the
// predicate rejects and carry no information). The migration protocol's
// wait-for-generation-flip is its only client.
type Awaiter interface {
	AwaitAny(t Thread, r AnyRegister, ready func(any) bool) any
}

// AwaitAny reads r repeatedly until ready accepts its value, and returns that
// value. On worlds implementing Awaiter the wait is a single conditional step
// (see Awaiter); elsewhere it degrades to a read spin.
func AwaitAny(w World, t Thread, r AnyRegister, ready func(any) bool) any {
	if a, ok := w.(Awaiter); ok {
		return a.AwaitAny(t, r, ready)
	}
	for {
		if v := r.ReadAny(t); ready(v) {
			return v
		}
	}
}

// World allocates shared base objects. Each object has a name, unique within
// the world, which identifies it in recorded execution traces and in the
// base-object state collections used by the reduction of Lemma 12.
type World interface {
	Register(name string, init int64) Register
	AnyRegister(name string, init any) AnyRegister
	TAS(name string) ReadableTAS
	// TAS2 is a 2-process test&set: only the two given process IDs may apply
	// operations (Theorem 19 uses systems whose only base objects are
	// 2-process test&set). Misuse by a third process panics.
	TAS2(name string, p, q int) ReadableTAS
	FetchAdd(name string) FetchAdd
	FetchAddInt(name string, init int64) FetchAddInt
	MaxReg(name string, init int64) MaxReg
	Swap(name string, init int64) ReadableSwap
	CAS(name string, init int64) CAS
	CASCell(name string, init any) CASCell
}
