package prim

import (
	"fmt"
	"math/big"
	"runtime"
	"sync"
	"sync/atomic"
)

// RealWorld allocates primitives backed by sync/atomic for use under genuine
// hardware concurrency (stress tests, benchmarks). Object names must be
// unique; allocation is safe for concurrent use.
type RealWorld struct {
	mu    sync.Mutex
	names map[string]struct{}
}

var _ World = (*RealWorld)(nil)
var _ Awaiter = (*RealWorld)(nil)

// AwaitAny implements Awaiter by spinning on the register, yielding the
// processor between probes. The real scheduler provides the weak fairness the
// simulated world's conditional step models (see Awaiter): the writer that
// makes ready true is a running goroutine, so the spin terminates.
func (w *RealWorld) AwaitAny(t Thread, r AnyRegister, ready func(any) bool) any {
	for {
		if v := r.ReadAny(t); ready(v) {
			return v
		}
		runtime.Gosched()
	}
}

// NewRealWorld returns an empty real world.
func NewRealWorld() *RealWorld {
	return &RealWorld{names: make(map[string]struct{})}
}

func (w *RealWorld) claim(name string) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, dup := w.names[name]; dup {
		panic(fmt.Sprintf("prim: duplicate base object name %q", name))
	}
	w.names[name] = struct{}{}
}

// Register allocates an atomic read/write register.
func (w *RealWorld) Register(name string, init int64) Register {
	w.claim(name)
	r := &realRegister{}
	r.v.Store(init)
	return r
}

// AnyRegister allocates an atomic register holding opaque values.
func (w *RealWorld) AnyRegister(name string, init any) AnyRegister {
	w.claim(name)
	r := &realAnyRegister{}
	r.v.Store(init)
	return r
}

// TAS allocates a readable one-shot test&set object.
func (w *RealWorld) TAS(name string) ReadableTAS {
	w.claim(name)
	return &realTAS{}
}

// TAS2 allocates a 2-process test&set restricted to processes p and q.
func (w *RealWorld) TAS2(name string, p, q int) ReadableTAS {
	w.claim(name)
	return &tas2{inner: &realTAS{}, p: p, q: q, name: name}
}

// FetchAdd allocates an unbounded-width fetch&add register, initially 0.
func (w *RealWorld) FetchAdd(name string) FetchAdd {
	w.claim(name)
	r := &realFetchAdd{}
	r.val.Store(new(big.Int))
	return r
}

// FetchAddInt allocates a machine-word fetch&add register.
func (w *RealWorld) FetchAddInt(name string, init int64) FetchAddInt {
	w.claim(name)
	f := &realFetchAddInt{}
	f.v.Store(init)
	return f
}

// MaxReg allocates an atomic max register.
func (w *RealWorld) MaxReg(name string, init int64) MaxReg {
	w.claim(name)
	m := &realMaxReg{}
	m.v.Store(init)
	return m
}

// Swap allocates a readable swap register.
func (w *RealWorld) Swap(name string, init int64) ReadableSwap {
	w.claim(name)
	s := &realSwap{}
	s.v.Store(init)
	return s
}

// CAS allocates a compare&swap register.
func (w *RealWorld) CAS(name string, init int64) CAS {
	w.claim(name)
	c := &realCAS{}
	c.v.Store(init)
	return c
}

// CASCell allocates a compare&swap cell holding an opaque value.
func (w *RealWorld) CASCell(name string, init any) CASCell {
	w.claim(name)
	c := &realCASCell{}
	c.v.Store(init)
	return c
}

type realRegister struct{ v atomic.Int64 }

func (r *realRegister) Read(Thread) int64       { return r.v.Load() }
func (r *realRegister) Write(_ Thread, v int64) { r.v.Store(v) }

type realAnyRegister struct{ v atomic.Value }

func (r *realAnyRegister) ReadAny(Thread) any       { return r.v.Load() }
func (r *realAnyRegister) WriteAny(_ Thread, v any) { r.v.Store(v) }

type realTAS struct{ v atomic.Int64 }

func (r *realTAS) TestAndSet(Thread) int64 { return r.v.Swap(1) }
func (r *realTAS) Read(Thread) int64       { return r.v.Load() }

// realFetchAdd is copy-on-write: the current value is an immutable big.Int
// behind an atomic pointer. Mutating fetch&adds serialise on the mutex and
// publish a fresh value; a read — fetch&add(0), the only way the paper's
// constructions read the register — is a single atomic pointer load (its
// linearization point), taking no lock and copying nothing. Published values
// are never modified afterwards, which is why handing the same *big.Int to
// every concurrent reader is safe (the FetchAdd contract forbids callers from
// mutating the returned value).
type realFetchAdd struct {
	mu  sync.Mutex // serialises mutating fetch&adds
	val atomic.Pointer[big.Int]
}

func (r *realFetchAdd) FetchAdd(_ Thread, delta *big.Int) *big.Int {
	if delta.Sign() == 0 {
		return r.val.Load()
	}
	r.mu.Lock()
	prev := r.val.Load()
	r.val.Store(new(big.Int).Add(prev, delta))
	r.mu.Unlock()
	return prev
}

type realFetchAddInt struct{ v atomic.Int64 }

func (r *realFetchAddInt) FetchAddInt(_ Thread, delta int64) int64 {
	if delta == 0 {
		// A read — fetch&add(0), the constructions' only read of the register —
		// is a plain atomic load rather than a lock-prefixed XADD: it
		// participates in the same total modification order (its linearization
		// point is the load), like the copy-on-write wide register's read.
		return r.v.Load()
	}
	return r.v.Add(delta) - delta
}

type realMaxReg struct{ v atomic.Int64 }

func (r *realMaxReg) WriteMax(_ Thread, v int64) {
	for {
		cur := r.v.Load()
		if v <= cur || r.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

func (r *realMaxReg) ReadMax(Thread) int64 { return r.v.Load() }

type realSwap struct{ v atomic.Int64 }

func (r *realSwap) Swap(_ Thread, v int64) int64 { return r.v.Swap(v) }
func (r *realSwap) Read(Thread) int64            { return r.v.Load() }

type realCAS struct{ v atomic.Int64 }

func (r *realCAS) Read(Thread) int64 { return r.v.Load() }
func (r *realCAS) CompareAndSwap(_ Thread, old, new int64) bool {
	return r.v.CompareAndSwap(old, new)
}

type realCASCell struct{ v atomic.Value }

func (r *realCASCell) Load(Thread) any { return r.v.Load() }
func (r *realCASCell) CompareAndSwap(_ Thread, old, new any) bool {
	return r.v.CompareAndSwap(old, new)
}

// tas2 enforces the 2-process access discipline of a 2-process test&set.
type tas2 struct {
	inner ReadableTAS
	p, q  int
	name  string
}

func (t *tas2) check(th Thread) {
	if id := th.ID(); id != t.p && id != t.q {
		panic(fmt.Sprintf("prim: process %d applied an operation to 2-process test&set %q owned by processes %d and %d", id, t.name, t.p, t.q))
	}
}

func (t *tas2) TestAndSet(th Thread) int64 {
	t.check(th)
	return t.inner.TestAndSet(th)
}

func (t *tas2) Read(th Thread) int64 {
	t.check(th)
	return t.inner.Read(th)
}

// RealThread is a Thread for use with RealWorld.
type RealThread int

// ID returns the process index.
func (t RealThread) ID() int { return int(t) }
