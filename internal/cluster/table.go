package cluster

import (
	"errors"
	"fmt"
	"sync/atomic"

	"stronglin/internal/prim"
)

// Routing errors. ErrFenced is special: it is returned by the CALLER's apply
// function when the owner backend rejected the request's generation (the
// backend-side fence), and Route reacts by re-routing against the current
// record instead of surfacing it.
var (
	// ErrMigrating: the object's cutover bit is up — a handoff is between
	// fence and install. Callers back off and retry; Route never blocks on
	// the hot path.
	ErrMigrating = errors.New("cluster: object ownership is mid-handoff")
	// ErrNoOwner: no owner has ever been installed for the key.
	ErrNoOwner = errors.New("cluster: object has no owner")
	// ErrFenced: sentinel for apply to report "the backend refused my
	// generation" (HTTP 409 from the fence check). Route re-routes.
	ErrFenced = errors.New("cluster: request generation fenced by backend")
	// ErrRacedHandoff: the request's drain slot was STOLEN while its apply
	// was in flight — the migrator timed out waiting and seeded the new
	// owner without waiting for this request. The ack is withdrawn and the
	// request refused as retryable; the operation stays pending, which
	// every linearization of a concurrent history permits (its effect, if
	// it landed, is carried by the graceful seed as an unacked phantom —
	// monotone value may exceed the acked ledger, never undercut it).
	ErrRacedHandoff = errors.New("cluster: request raced an ownership handoff")
	// ErrRerouteLimit: the request chased generations MaxReroutes times
	// without landing — ownership is churning faster than routing.
	ErrRerouteLimit = errors.New("cluster: re-route limit exceeded")
)

// The ownership record is ONE register word, so a routed request can never
// observe a torn (generation, owner) pair — the exact race the first cut of
// this protocol lost to (a request reading the bumped generation next to
// the not-yet-retired owner sails through the backend's generation floor):
//
//	rec = generation<<9 | (owner+1)<<1 | cutoverBit
//
// owner+1 occupies 8 bits (0 = no owner, up to 254 backends); the
// generation has 54 bits — at one handoff per millisecond that is five
// centuries of membership churn. Fence and Install each rewrite the whole
// word, so cutover, generation and owner always move together.
const (
	recCutoverBit = int64(1)
	recOwnerShift = 1
	recOwnerMask  = int64(0xff)
	recGenShift   = 9
)

func packRec(gen int64, owner int, cutover bool) int64 {
	rec := gen<<recGenShift | int64(owner+1)<<recOwnerShift
	if cutover {
		rec |= recCutoverBit
	}
	return rec
}

func unpackRec(rec int64) (gen int64, owner int, cutover bool) {
	return rec >> recGenShift, int(rec>>recOwnerShift&recOwnerMask) - 1, rec&recCutoverBit != 0
}

// slot states (besides g+1 = occupied by a request routed at generation g).
const (
	slotFree   = int64(0)
	slotStolen = int64(-1)
)

// Record is one object's ownership record: the packed
// cutover/generation/owner word and the per-request drain slots. Both live
// on prim registers so the protocol runs — and is model-checked — in the
// simulated world; the slots are AnyRegisters so drain waits are
// CONDITIONAL steps there (prim.AwaitAny), keeping exhaustive game trees
// finite.
type Record struct {
	key   string
	rec   prim.Register
	slots []prim.AnyRegister
}

// TableStats counts routing-protocol events. Plain atomics (not world
// objects): they are bookkeeping, not protocol state, and reading them
// costs the simulated games no steps.
type TableStats struct {
	Reroutes atomic.Int64 // record-moved / backend-fenced re-route loops taken
	Raced    atomic.Int64 // requests refused because their slot was stolen
	Fences   atomic.Int64 // Fence calls (handoffs started)
	Steals   atomic.Int64 // slots stolen at drain timeout
}

// Table is the ownership table: one Record per declared object key.
type Table struct {
	w     prim.World
	keys  []string
	recs  map[string]*Record
	Stats TableStats

	// MaxReroutes bounds Route's generation-chasing loop.
	MaxReroutes int
}

// NewTable allocates the ownership records in w: `slots` concurrent routed
// requests per object, every object starting at owner initOwner (-1 = no
// owner; Route answers ErrNoOwner until the first handoff installs one).
// The initial owner is a register INIT value, not a write — setup code runs
// before any simulated process holds a step.
func NewTable(w prim.World, name string, slots, initOwner int, keys ...string) *Table {
	tb := &Table{w: w, keys: keys, recs: make(map[string]*Record, len(keys)), MaxReroutes: 4}
	for _, k := range keys {
		r := &Record{
			key: k,
			rec: w.Register(fmt.Sprintf("%s.%s.rec", name, k), packRec(0, initOwner, false)),
		}
		for i := 0; i < slots; i++ {
			r.slots = append(r.slots, w.AnyRegister(fmt.Sprintf("%s.%s.slot%d", name, k, i), slotFree))
		}
		tb.recs[k] = r
	}
	return tb
}

// Keys returns the declared object keys.
func (tb *Table) Keys() []string { return tb.keys }

func (tb *Table) rec(key string) *Record {
	r, ok := tb.recs[key]
	if !ok {
		panic("cluster: unknown object key " + key)
	}
	return r
}

func asI(v any) int64 { return v.(int64) }

// Owner reads key's current record: the owner backend index and fence
// generation, with settled=false while a cutover is in flight (the owner
// value is then the OLD owner, about to be retired).
func (tb *Table) Owner(t prim.Thread, key string) (owner int, gen int64, settled bool) {
	gen, owner, cut := unpackRec(tb.rec(key).rec.Read(t))
	return owner, gen, !cut
}

// Route dispatches one operation on key through the fenced-ownership
// discipline, using drain slot `slot` (callers hold distinct slots):
//
//  1. read the record word — one atomic read of (cutover, generation,
//     owner), so the triple can never tear; refuse ErrMigrating while the
//     cutover bit is up (back off, the handoff completes without us);
//  2. OCCUPY the slot, tagged generation+1, and RE-READ the record: any
//     change (a fence, an install, a whole later handoff — the generation
//     is monotone, so word equality has no ABA) means this dispatch would
//     target a record that moved, and the request withdraws and re-routes;
//  3. apply at the owner. apply performs the backend effect WITHOUT
//     acking, and returns ErrFenced if the backend refused the
//     generation (then: withdraw, re-route);
//  4. on success, fold the ack (the caller's `ack` closure — the ledger
//     write the drain barrier orders against), THEN check the slot:
//     intact → release and return nil; STOLEN → retract via `unack` and
//     refuse with ErrRacedHandoff. The ack-then-check order means a
//     migrator that steals this slot and then reads the ledger can only
//     see the ledger WITH the ack or refuse... (see below);
//
// Why the ordering is sound: the migrator steals, then reads the ledger,
// then seeds. If this request's ack landed before that ledger read, the
// seed carries it — and the request observes its slot stolen, retracts,
// and is refused, leaving the carried effect an unacked phantom (monotone
// value >= acked ledger, never below). If the ack landed after, unack
// retracts it before anything depended on it. A request whose slot
// SURVIVES to the check released it after acking, so the drain barrier
// (await all slots <= 0, then read the ledger) provably includes every
// acked effect in the seed: no lost acked update, mechanically checked in
// the exhaustive game.
func (tb *Table) Route(t prim.Thread, slot int, key string,
	apply func(owner int, gen int64) error, ack, unack func()) error {
	r := tb.rec(key)
	s := r.slots[slot]
	for attempt := 0; ; attempt++ {
		if attempt > tb.MaxReroutes {
			return ErrRerouteLimit
		}
		rec := r.rec.Read(t)
		gen, owner, cutover := unpackRec(rec)
		if cutover {
			return ErrMigrating
		}
		if owner < 0 {
			return ErrNoOwner
		}
		s.WriteAny(t, gen+1)
		if r.rec.Read(t) != rec {
			// The record moved after our read: this dispatch would target
			// a retired (or not-yet-installed) owner. Withdraw before any
			// effect exists.
			s.WriteAny(t, slotFree)
			tb.Stats.Reroutes.Add(1)
			continue
		}
		err := apply(owner, gen)
		if errors.Is(err, ErrFenced) {
			// The backend's own generation floor refused us — the handoff
			// won the race at the owner. No effect, no ack; withdraw and
			// chase the new record.
			s.WriteAny(t, slotFree)
			tb.Stats.Reroutes.Add(1)
			continue
		}
		if err != nil {
			s.WriteAny(t, slotFree)
			return err
		}
		ack()
		if asI(s.ReadAny(t)) == slotStolen {
			unack()
			s.WriteAny(t, slotFree)
			tb.Stats.Raced.Add(1)
			return ErrRacedHandoff
		}
		s.WriteAny(t, slotFree)
		return nil
	}
}

// Fence starts a handoff on key: one atomic record rewrite that raises the
// cutover bit and bumps the generation (owner unchanged — the successor is
// not authoritative until Install). Returns the retiring owner (-1 on
// first install) and the NEW generation. Re-fencing a key whose cutover is
// already up is legal — a second migrator adopting a crashed handoff just
// bumps the generation again.
func (tb *Table) Fence(t prim.Thread, key string) (oldOwner int, gen int64) {
	r := tb.rec(key)
	g, owner, _ := unpackRec(r.rec.Read(t))
	gen = g + 1
	r.rec.Write(t, packRec(gen, owner, true))
	tb.Stats.Fences.Add(1)
	return owner, gen
}

// Drained reports whether no routed request holds a slot on key (every slot
// free or stolen). A true answer read AFTER Fence proves every acked
// operation's effect is visible in the caller's ledger (Route releases
// slots only after acking).
func (tb *Table) Drained(t prim.Thread, key string) bool {
	for _, s := range tb.rec(key).slots {
		if asI(s.ReadAny(t)) > 0 {
			return false
		}
	}
	return true
}

// AwaitDrain blocks until every slot on key clears. In the simulated world
// each wait is one CONDITIONAL step (prim.AwaitAny), so exhaustive games
// over a draining migrator stay finite; the real frontend polls Drained
// under a timeout instead, because a real straggler needs StealSlots, not
// an unbounded wait.
func (tb *Table) AwaitDrain(t prim.Thread, key string) {
	for _, s := range tb.rec(key).slots {
		prim.AwaitAny(tb.w, t, s, func(v any) bool { return asI(v) <= 0 })
	}
}

// StealSlots marks every still-occupied slot on key STOLEN and returns how
// many it took. The marked requests' acks will be withdrawn
// (ErrRacedHandoff): the migrator is about to seed the successor without
// waiting for them.
func (tb *Table) StealSlots(t prim.Thread, key string) int {
	stolen := 0
	for _, s := range tb.rec(key).slots {
		if asI(s.ReadAny(t)) > 0 {
			s.WriteAny(t, slotStolen)
			stolen++
		}
	}
	if stolen > 0 {
		tb.Stats.Steals.Add(int64(stolen))
	}
	return stolen
}

// Install completes a handoff: one atomic record rewrite that makes the
// new owner visible AND drops the cutover bit at the handoff's generation.
// Callers must have seeded the owner before calling (flip-after-migrate);
// a request admitted after this step finds the new owner authoritative.
func (tb *Table) Install(t prim.Thread, key string, owner int) {
	r := tb.rec(key)
	gen, _, _ := unpackRec(r.rec.Read(t))
	r.rec.Write(t, packRec(gen, owner, false))
}
