package cluster_test

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"stronglin/internal/cluster"
	"stronglin/internal/prim"
	"stronglin/internal/sim"
)

// The games model the distributed system the frontend runs: two backend
// counters (beA, beB), each ONE CAS word encoding its fence floor next to
// its value — the real backend serializes each request's fence check with
// its application, so modeling both as a single atomic step is exact — a
// front-tier acked LEDGER (a fetch&add), and the ownership Table under
// test. Route folds the ack into the ledger AFTER a successful apply and
// retracts it if the request's drain slot was stolen, so the final ledger
// value equals the number of client-visible acks exactly. A handoff moves
// the counter from backend A (owner 0) to backend B (owner 1) through the
// fenced cutover; the invariants checked at every complete leaf are the
// distribution contract itself:
//
//	no lost acked update   value(B) covers every ledger ack
//	single ownership       no apply lands at A after A's fence,
//	                       none lands at B before B's install
//
// plus the response discipline (a routed increment is acked, re-routed, or
// refused-retryable — never silently dropped).

const (
	floorShift = 44
	valMask    = (int64(1) << floorShift) - 1
)

type gameEnv struct {
	tb     *cluster.Table
	be     []prim.CAS
	ledger prim.FetchAddInt

	// log records protocol milestones in global step order (the runner
	// serializes steps, and the code appending after a step's access runs
	// inside that grant): "applyA"/"applyB" on a successful backend CAS,
	// "fencedA" once A's floor holds the handoff generation, "install"
	// when B becomes owner.
	log []string
}

// newGameEnv starts every game with backend A (index 0) owning the counter.
func newGameEnv(w *sim.World, slots int) *gameEnv {
	return &gameEnv{
		tb:     cluster.NewTable(w, "route", slots, 0, "counter"),
		be:     []prim.CAS{w.CAS("beA", 0), w.CAS("beB", 0)},
		ledger: w.FetchAddInt("ledger", 0),
	}
}

func beName(owner int) string {
	if owner == 0 {
		return "A"
	}
	return "B"
}

// applyInc is one increment landing at owner: fence check and application
// are one CAS on the backend's word. No ack here — Route owns the ack.
func (e *gameEnv) applyInc(t prim.Thread, owner int, gen int64) error {
	for {
		v := e.be[owner].Read(t)
		if gen < v>>floorShift {
			return cluster.ErrFenced
		}
		if e.be[owner].CompareAndSwap(t, v, (v>>floorShift)<<floorShift|(v&valMask)+1) {
			e.log = append(e.log, "apply"+beName(owner))
			return nil
		}
	}
}

// fenceBackend raises owner's floor to gen: from this step on no apply
// carrying an older generation can land there. (Requests can only carry
// gen itself once the NEW owner is installed — the packed record makes a
// torn generation/owner read impossible — so floor = gen with a strict <
// check fences every request of the retired tenure.)
func (e *gameEnv) fenceBackend(t prim.Thread, owner int, gen int64) {
	for {
		v := e.be[owner].Read(t)
		if v>>floorShift >= gen {
			e.log = append(e.log, "fenced"+beName(owner))
			return
		}
		if e.be[owner].CompareAndSwap(t, v, gen<<floorShift|v&valMask) {
			e.log = append(e.log, "fenced"+beName(owner))
			return
		}
	}
}

// seedBackend installs the migrated value at the successor (monotone: only
// raises).
func (e *gameEnv) seedBackend(t prim.Thread, to int, seed int64) {
	for {
		v := e.be[to].Read(t)
		if v&valMask >= seed {
			return
		}
		if e.be[to].CompareAndSwap(t, v, (v>>floorShift)<<floorShift|seed) {
			return
		}
	}
}

// opRoutedInc: one fenced routed increment holding drain slot `slot`.
// Happy path is 9 grants: invoke, record read, slot occupy, record
// re-validate, backend read, backend CAS, ledger ack, slot check, release.
func (e *gameEnv) opRoutedInc(slot int) sim.Op {
	return sim.Op{
		Name: fmt.Sprintf("routedInc(slot%d)", slot),
		Run: func(t prim.Thread) string {
			err := e.tb.Route(t, slot, "counter",
				func(owner int, gen int64) error { return e.applyInc(t, owner, gen) },
				func() { e.ledger.FetchAddInt(t, 1) },
				func() { e.ledger.FetchAddInt(t, -1) })
			switch {
			case err == nil:
				return "acked"
			case errors.Is(err, cluster.ErrRacedHandoff):
				return "raced"
			case errors.Is(err, cluster.ErrMigrating):
				return "migrating"
			default:
				return "err:" + err.Error()
			}
		},
	}
}

// opHandoff is the fenced ownership transfer A -> B. steal=false waits for
// the drain barrier (each slot a conditional step — the exhaustive game's
// migrator); steal=true takes the stragglers' slots immediately (the
// timeout path). graceful=true additionally merges the retired owner's
// post-fence value into the seed (the live-backend handoff; without it the
// seed is the acked ledger alone — the crash handoff, where the old
// backend's memory is gone).
func (e *gameEnv) opHandoff(steal, graceful bool) sim.Op {
	return sim.Op{
		Name: "handoff(A->B)",
		Run: func(t prim.Thread) string {
			old, gen := e.tb.Fence(t, "counter")
			if old >= 0 {
				e.fenceBackend(t, old, gen)
			}
			if steal {
				e.tb.StealSlots(t, "counter")
			} else {
				e.tb.AwaitDrain(t, "counter")
			}
			seed := e.ledger.FetchAddInt(t, 0)
			if graceful && old >= 0 {
				if v := e.be[old].Read(t) & valMask; v > seed {
					seed = v
				}
			}
			e.seedBackend(t, 1, seed)
			e.tb.Install(t, "counter", 1)
			e.log = append(e.log, "install")
			return "done"
		},
	}
}

// opHandoffNoFence is the NEGATIVE TWIN: the same transfer with the fence
// discipline deleted — no cutover flag, no generation bump, no backend
// fence, no drain. It reads the ledger, seeds B, and flips the owner.
func (e *gameEnv) opHandoffNoFence() sim.Op {
	return sim.Op{
		Name: "handoffNoFence(A->B)",
		Run: func(t prim.Thread) string {
			seed := e.ledger.FetchAddInt(t, 0)
			e.seedBackend(t, 1, seed)
			e.tb.Install(t, "counter", 1)
			e.log = append(e.log, "install")
			return "done"
		},
	}
}

// opProbe reads the ownership record n times — a routing-tier process that
// keeps the scheduler fed (partition games sever every client; without a
// live process the faulted policy would stop the run the moment the
// migrator finishes, and the severed clients would never resume).
func (e *gameEnv) opProbe(n int) sim.Op {
	return sim.Op{
		Name: "probe",
		Run: func(t prim.Thread) string {
			for i := 0; i < n; i++ {
				e.tb.Owner(t, "counter")
			}
			return "done"
		},
	}
}

// peekI reads a world object's final state after a run.
func peekI(t *testing.T, w *sim.World, name string) int64 {
	t.Helper()
	st, ok := w.PeekObject(name)
	if !ok {
		t.Fatalf("no object %q", name)
	}
	return st.I64
}

// peekOwner decodes the final ownership record.
func peekOwner(t *testing.T, w *sim.World) (owner int, gen int64, cutover bool) {
	t.Helper()
	gen, owner, cutover = cluster.UnpackRecord(peekI(t, w, "route.counter.rec"))
	return owner, gen, cutover
}

// ackedReturns counts the client operations that returned "acked" — with
// Route's ack/unack bookkeeping this must equal the final ledger value.
func ackedReturns(exec *sim.Execution) int64 {
	n := int64(0)
	for _, ev := range exec.Events {
		if ev.Kind == sim.EventReturn && ev.Resp == "acked" {
			n++
		}
	}
	return n
}

// checkSingleOwnership asserts the log ordering that IS the no-dual-owner
// claim: once A is fenced no apply lands at A, and no apply lands at B
// before B's install (fence always precedes install in the protocol, so
// the two acceptance windows never overlap).
func checkSingleOwnership(t *testing.T, log []string, ctx string) {
	t.Helper()
	fenced, installed := false, false
	for _, ev := range log {
		switch ev {
		case "fencedA":
			fenced = true
		case "install":
			installed = true
		case "applyA":
			if fenced {
				t.Fatalf("%s: apply landed at A AFTER its fence (dual ownership): log %v", ctx, log)
			}
		case "applyB":
			if !installed {
				t.Fatalf("%s: apply landed at B BEFORE its install (dual ownership): log %v", ctx, log)
			}
		}
	}
}

// checkLedgerIsAcks pins the ack/unack bookkeeping: the final ledger value
// equals the number of acked client responses (raced requests retract).
func checkLedgerIsAcks(t *testing.T, w *sim.World, exec *sim.Execution, ctx string) int64 {
	t.Helper()
	acked := peekI(t, w, "ledger")
	if rets := ackedReturns(exec); acked != rets {
		t.Fatalf("%s: ledger %d != %d acked responses — ack/unack bookkeeping broke", ctx, acked, rets)
	}
	return acked
}

// exhaustGames runs EVERY schedule of the given programs (depth-first over
// the enabled sets, one sim.Run per prefix — the same cost model as
// sim.Explore, with the per-run env visible to the leaf check). The check
// receives the run's env, world and execution at every complete leaf.
func exhaustGames(t *testing.T, procs, maxNodes int,
	build func(w *sim.World) (*gameEnv, []sim.Program),
	check func(t *testing.T, env *gameEnv, w *sim.World, exec *sim.Execution)) (leaves int) {
	t.Helper()
	nodes := 0
	var dfs func(prefix []int)
	dfs = func(prefix []int) {
		nodes++
		if nodes > maxNodes {
			t.Fatalf("game tree exceeded %d nodes — shrink the shape", maxNodes)
		}
		var env *gameEnv
		var world *sim.World
		exec, err := sim.Run(procs, func(w *sim.World) []sim.Program {
			world = w
			var progs []sim.Program
			env, progs = build(w)
			return progs
		}, prefix)
		if err != nil {
			t.Fatalf("schedule %v: %v", prefix, err)
		}
		next := exec.Enabled[len(prefix)]
		if len(next) == 0 {
			if !exec.Complete {
				t.Fatalf("wedged execution (no fault injected): schedule %v", prefix)
			}
			leaves++
			check(t, env, world, exec)
			return
		}
		for _, p := range next {
			dfs(append(prefix[:len(prefix):len(prefix)], p))
		}
	}
	dfs(nil)
	t.Logf("exhausted %d nodes, %d complete leaves", nodes, leaves)
	return leaves
}

// respOf returns the response of proc's single operation.
func respOf(exec *sim.Execution, proc int) string {
	for _, ev := range exec.Events {
		if ev.Kind == sim.EventReturn && ev.Proc == proc {
			return ev.Resp
		}
	}
	return ""
}

// TestExhaustiveHandoffNoLostUpdate is the model check of the tentpole
// claim: ONE routed increment against ONE full fenced handoff (drain
// barrier, crash-style ledger seed), under EVERY interleaving. At every
// complete leaf: ownership has settled on B, B's value equals the acked
// ledger exactly (an acked increment is never lost, an unacked one never
// counted — with the drain barrier and no slot stealing there are no
// phantoms either), the apply/fence/install ordering shows no
// dual-ownership window, and the increment's response is "acked" or
// "migrating" (refused-retryable before any effect), never a silent drop.
// Coverage assertions pin that the tree actually contains the interesting
// leaves: acks at A, acks at B (post-install re-routes), and cutover
// refusals.
func TestExhaustiveHandoffNoLostUpdate(t *testing.T) {
	tally := map[string]int{}
	leaves := exhaustGames(t, 2, 4_000_000,
		func(w *sim.World) (*gameEnv, []sim.Program) {
			env := newGameEnv(w, 1)
			return env, []sim.Program{
				{env.opRoutedInc(0)},
				{env.opHandoff(false, false)},
			}
		},
		func(t *testing.T, env *gameEnv, w *sim.World, exec *sim.Execution) {
			acked := checkLedgerIsAcks(t, w, exec, fmt.Sprintf("schedule %v", exec.Schedule))
			valB := peekI(t, w, "beB") & valMask
			owner, _, cutover := peekOwner(t, w)
			if owner != 1 || cutover {
				t.Fatalf("record (owner %d, cutover %v) after handoff, want settled on 1: %v",
					owner, cutover, exec.Schedule)
			}
			if valB != acked {
				t.Fatalf("LOST/PHANTOM UPDATE: backend B holds %d, acked ledger %d: schedule %v\nlog %v",
					valB, acked, exec.Schedule, env.log)
			}
			resp := respOf(exec, 0)
			if resp != "acked" && resp != "migrating" {
				t.Fatalf("routed inc answered %q, want acked or migrating: %v", resp, exec.Schedule)
			}
			checkSingleOwnership(t, env.log, fmt.Sprintf("schedule %v", exec.Schedule))
			key := resp
			for _, ev := range env.log {
				if ev == "applyA" {
					key += "+A"
				}
				if ev == "applyB" {
					key += "+B"
				}
			}
			if env.tb.Stats.Reroutes.Load() > 0 {
				key += "+rerouted"
			}
			tally[key]++
		})
	if leaves < 100 {
		t.Fatalf("only %d leaves — the game did not explore", leaves)
	}
	for _, want := range []string{"acked+A", "acked+B+rerouted", "migrating"} {
		if tally[want] == 0 {
			t.Fatalf("no leaf of class %q — vacuous coverage: %v", want, tally)
		}
	}
	t.Logf("leaf classes: %v", tally)
}

// TestFenceFreeTwinLosesUpdate pins the negative twin: the identical
// transfer WITHOUT the fence discipline, on the crafted schedule where a
// routed increment occupies its slot and validates against the
// pre-handoff record, the fence-free migrator then moves ownership, and
// the increment lands at the RETIRED backend and is acked. The acked
// update is not in the new owner's value — a reader at B is served a
// resurrected past state — which is exactly the lost-update the record
// re-validation + backend fence + drain barrier exist to prevent; the
// crafted schedules under the REAL handoff re-route or refuse the same
// increment.
func TestFenceFreeTwinLosesUpdate(t *testing.T) {
	var env *gameEnv
	var world *sim.World
	// Client (proc 0), 4 grants: invoke, record read, slot occupy, record
	// re-validate — all against the old record. Migrator (proc 1), 5
	// grants: invoke, ledger read (0 — nothing acked yet), B read (seed 0,
	// no CAS), record read+write (owner flip; no generation bump, no
	// fence). Client resumes, 5 grants: A read (no floor — the fence never
	// happened), A CAS, ledger ack, slot check (never stolen — no steal
	// either), release.
	sched := []int{
		0, 0, 0, 0,
		1, 1, 1, 1, 1,
		0, 0, 0, 0, 0,
	}
	exec, err := sim.Run(2, func(w *sim.World) []sim.Program {
		world = w
		env = newGameEnv(w, 1)
		return []sim.Program{
			{env.opRoutedInc(0)},
			{env.opHandoffNoFence()},
		}
	}, sched)
	if err != nil {
		t.Fatal(err)
	}
	if !exec.Complete {
		t.Fatalf("crafted schedule incomplete: enabled %v", exec.Enabled[len(exec.Schedule)])
	}
	acked := peekI(t, world, "ledger")
	valB := peekI(t, world, "beB") & valMask
	valA := peekI(t, world, "beA") & valMask
	owner, _, _ := peekOwner(t, world)
	if respOf(exec, 0) != "acked" {
		t.Fatalf("twin setup drifted: inc answered %q, want acked", respOf(exec, 0))
	}
	if owner != 1 || acked != 1 {
		t.Fatalf("twin setup drifted: owner %d acked %d", owner, acked)
	}
	// THE defect, pinned: the acked increment lives only at the retired
	// backend; the authoritative owner B serves 0.
	if valB != 0 || valA != 1 {
		t.Fatalf("fence-free twin did not lose the update (valA %d valB %d) — is the discipline still load-bearing?", valA, valB)
	}
}

// TestCraftedHandoffRaces drives the fenced handoff through three crafted
// alignments of a routed increment against a transfer, each with exact
// outcome assertions.
func TestCraftedHandoffRaces(t *testing.T) {
	run := func(t *testing.T, steal, graceful bool, sched []int) (*gameEnv, *sim.World, *sim.Execution) {
		t.Helper()
		var env *gameEnv
		var world *sim.World
		exec, err := sim.Run(2, func(w *sim.World) []sim.Program {
			world = w
			env = newGameEnv(w, 1)
			return []sim.Program{
				{env.opRoutedInc(0)},
				{env.opHandoff(steal, graceful)},
			}
		}, sched)
		if err != nil {
			t.Fatal(err)
		}
		if !exec.Complete {
			t.Fatalf("crafted schedule incomplete: schedule %v, enabled %v", exec.Schedule, exec.Enabled[len(exec.Schedule)])
		}
		checkSingleOwnership(t, env.log, "crafted")
		return env, world, exec
	}

	t.Run("validated-then-fenced-reroutes-to-B", func(t *testing.T) {
		// The fence-free twin's client prefix, against the REAL handoff
		// with slot stealing: the client occupies and validates (4 grants),
		// the full fenced crash transfer runs (11 grants: invoke, fence
		// read+write, A fence read+CAS, steal read+write, ledger, B read,
		// install read+write), and the client's apply at A bounces off the
		// fence floor and re-routes to B (10 grants: A read -> ErrFenced,
		// release, then a full fresh attempt at B) — acked there, exact.
		sched := []int{
			0, 0, 0, 0,
			1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1,
			0, 0, 0, 0, 0, 0, 0, 0, 0, 0,
		}
		env, world, exec := run(t, true, false, sched)
		if got := respOf(exec, 0); got != "acked" {
			t.Fatalf("resp = %q, want acked (re-routed)", got)
		}
		if valB := peekI(t, world, "beB") & valMask; valB != 1 || peekI(t, world, "ledger") != 1 {
			t.Fatalf("valB %d ledger %d, want 1/1", valB, peekI(t, world, "ledger"))
		}
		if env.tb.Stats.Reroutes.Load() == 0 {
			t.Fatal("expected a fenced re-route")
		}
	})

	t.Run("pre-occupy-invalidated-by-record-move", func(t *testing.T) {
		// The client reads the old record but has NOT occupied when the
		// whole drain-barrier transfer runs (10 grants — the drain's
		// conditional step fires immediately, the slot is free); its
		// occupy/re-validate pair catches the moved record and re-routes
		// cleanly to B (11 grants: occupy, failed validate, release, fresh
		// 8-grant attempt at B).
		sched := []int{
			0, 0,
			1, 1, 1, 1, 1, 1, 1, 1, 1, 1,
			0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0,
		}
		env, world, exec := run(t, false, false, sched)
		if got := respOf(exec, 0); got != "acked" {
			t.Fatalf("resp = %q, want acked at B", got)
		}
		if valB := peekI(t, world, "beB") & valMask; valB != 1 {
			t.Fatalf("valB = %d, want 1", valB)
		}
		if env.tb.Stats.Reroutes.Load() == 0 {
			t.Fatal("expected a record-moved re-route")
		}
	})

	t.Run("stolen-slot-refused-without-ack", func(t *testing.T) {
		// The client applies at A pre-fence (6 grants, CAS landed) but its
		// slot is STOLEN before it can ack: the graceful steal transfer
		// runs (13 grants; its ledger read sees 0, the graceful merge
		// reads A's value 1 and seeds B with it), then the client resumes
		// (4 grants: ack, slot check -> stolen, unack, release) and is
		// refused raced-retryable. The effect it landed travels to B as an
		// UNACKED phantom — value >= ledger, a legal pending op — and the
		// final ledger is 0 because the ack was retracted.
		sched := []int{
			0, 0, 0, 0, 0, 0,
			1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1,
			0, 0, 0, 0,
		}
		env, world, exec := run(t, true, true, sched)
		if got := respOf(exec, 0); got != "raced" {
			t.Fatalf("resp = %q, want raced (stolen slot must refuse the ack)", got)
		}
		acked := peekI(t, world, "ledger")
		valB := peekI(t, world, "beB") & valMask
		if acked != 0 {
			t.Fatalf("ledger = %d, want 0 (raced request's ack must be retracted)", acked)
		}
		if valB != 1 {
			t.Fatalf("valB = %d, want 1 (graceful seed carries the pending effect)", valB)
		}
		if env.tb.Stats.Raced.Load() != 1 || env.tb.Stats.Steals.Load() != 1 {
			t.Fatalf("stats raced/steals = %d/%d, want 1/1",
				env.tb.Stats.Raced.Load(), env.tb.Stats.Steals.Load())
		}
	})
}

// TestPartitionedClientsResumeSafely exercises the NEW Partition fault
// hook: two clients are severed mid-route (slots occupied, applies not
// yet landed), the migrator completes a steal handoff alone, and when the
// partition heals the clients resume against the moved record. Every
// resumed request re-routes (its occupied slot was stolen, its record
// re-validation fails) and either acks at B or is refused retryable — no
// effect is ever acked against the retired owner. A probe process is
// never severed, so the run keeps stepping until the window heals.
func TestPartitionedClientsResumeSafely(t *testing.T) {
	var env *gameEnv
	var world *sim.World
	// Round-robin over 4 procs: by step 10 each client has 3 grants —
	// invoke, record read, slot OCCUPY — then [10,40) severs both clients.
	// The migrator (~14 grants, alternating with the probe) finishes its
	// steal handoff well inside the window; the probe keeps the run alive
	// to step 40, where the clients resume against ownership settled on B.
	exec, err := sim.RunToCompletion(4, func(w *sim.World) []sim.Program {
		world = w
		env = newGameEnv(w, 2)
		return []sim.Program{
			{env.opRoutedInc(0)},
			{env.opRoutedInc(1)},
			{env.opHandoff(true, true)},
			{env.opProbe(40)},
		}
	}, sim.FaultedPolicy(4, sim.RoundRobinPolicy(), sim.Partition([]int{0, 1}, 10, 40)), 400)
	if err != nil {
		t.Fatal(err)
	}
	if !exec.Complete {
		t.Fatalf("partitioned run incomplete: enabled %v", exec.Enabled[len(exec.Schedule)])
	}
	checkSingleOwnership(t, env.log, "partition")
	acked := checkLedgerIsAcks(t, world, exec, "partition")
	valB := peekI(t, world, "beB") & valMask
	if owner, _, cutover := peekOwner(t, world); owner != 1 || cutover {
		t.Fatalf("record (owner %d, cutover %v), want settled on 1", owner, cutover)
	}
	if valB < acked {
		t.Fatalf("LOST UPDATE across partition: valB %d < acked %d (log %v)", valB, acked, env.log)
	}
	// Coverage: the partition must have caught both clients with occupied
	// slots — the migrator's timeout path stole them.
	if env.tb.Stats.Steals.Load() == 0 {
		t.Fatalf("partition window missed the clients (no slots stolen) — retune the window")
	}
	ackedClients := 0
	for p := 0; p <= 1; p++ {
		switch r := respOf(exec, p); r {
		case "acked":
			ackedClients++
		case "raced", "migrating":
		default:
			t.Fatalf("client %d answered %q, want acked/raced/migrating", p, r)
		}
	}
	if ackedClients == 0 {
		t.Fatal("no client acked after the heal — the resume path was not exercised")
	}
}

// TestKilledMigratorAdopted kills the migrator at every depth of its
// handoff and lets a second migrator run the SAME transfer: fencing is
// idempotent-by-rebump, stealing and seeding are monotone, install is
// last — so adoption completes from any prefix, ownership settles on B,
// and no acked update is lost.
func TestKilledMigratorAdopted(t *testing.T) {
	for depth := 0; depth <= 16; depth++ {
		depth := depth
		t.Run(fmt.Sprintf("kill-at-%d", depth), func(t *testing.T) {
			var env *gameEnv
			var world *sim.World
			exec, err := sim.RunToCompletion(3, func(w *sim.World) []sim.Program {
				world = w
				env = newGameEnv(w, 1)
				return []sim.Program{
					{env.opRoutedInc(0)},
					{env.opHandoff(true, true)},
					{env.opHandoff(true, true)},
				}
			}, sim.FaultedPolicy(3, sim.RoundRobinPolicy(), sim.Kill(1, depth)), 400)
			if err != nil {
				t.Fatal(err)
			}
			// The killed migrator's op stays pending; the run is
			// "incomplete" by definition. What must have finished is the
			// CLIENT and the ADOPTER — check their returns directly.
			if respOf(exec, 2) != "done" {
				t.Fatalf("adopter did not complete (kill at %d)", depth)
			}
			if r := respOf(exec, 0); r != "acked" && r != "raced" && r != "migrating" {
				t.Fatalf("client answered %q (kill at %d)", r, depth)
			}
			acked := peekI(t, world, "ledger")
			valB := peekI(t, world, "beB") & valMask
			if owner, _, cutover := peekOwner(t, world); owner != 1 || cutover {
				t.Fatalf("record (owner %d, cutover %v) after adoption, want settled on 1", owner, cutover)
			}
			if valB < acked {
				t.Fatalf("LOST UPDATE under killed migrator: valB %d < acked %d (log %v)",
					valB, acked, env.log)
			}
			checkSingleOwnership(t, env.log, fmt.Sprintf("kill-at-%d", depth))
		})
	}
}

// TestRandomizedHandoffStress sweeps random schedules over 2 clients x 2
// increments against a graceful steal handoff: the statistical sweep over
// the 3-proc interleaving space the exhaustive 2-proc game cannot cover.
// Invariants at every leaf: the ledger equals the acked responses, B's
// value covers every ack, and any excess over the acks is bounded by the
// raced (refused) requests whose landed effects travelled as phantoms.
func TestRandomizedHandoffStress(t *testing.T) {
	seeds := 3000
	if testing.Short() {
		seeds = 300
	}
	for seed := 0; seed < seeds; seed++ {
		var env *gameEnv
		var world *sim.World
		exec, err := sim.RunToCompletion(3, func(w *sim.World) []sim.Program {
			world = w
			env = newGameEnv(w, 2)
			return []sim.Program{
				{env.opRoutedInc(0), env.opRoutedInc(0)},
				{env.opRoutedInc(1), env.opRoutedInc(1)},
				{env.opHandoff(true, true)},
			}
		}, sim.RandomPolicy(rand.New(rand.NewSource(int64(seed)))), 800)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !exec.Complete {
			t.Fatalf("seed %d: incomplete (enabled %v)", seed, exec.Enabled[len(exec.Schedule)])
		}
		acked := checkLedgerIsAcks(t, world, exec, fmt.Sprintf("seed %d", seed))
		if owner, _, cutover := peekOwner(t, world); owner != 1 || cutover {
			t.Fatalf("seed %d: record (owner %d, cutover %v), want settled on 1", seed, owner, cutover)
		}
		valB := peekI(t, world, "beB") & valMask
		if valB < acked {
			t.Fatalf("seed %d: LOST UPDATE valB %d < acked %d (schedule %v)\nlog %v",
				seed, valB, acked, exec.Schedule, env.log)
		}
		if phantoms := valB - acked; phantoms > env.tb.Stats.Raced.Load() {
			t.Fatalf("seed %d: %d phantom effects but only %d raced requests — an ack leaked (schedule %v)",
				seed, phantoms, env.tb.Stats.Raced.Load(), exec.Schedule)
		}
		checkSingleOwnership(t, env.log, fmt.Sprintf("seed %d", seed))
		for _, ev := range exec.Events {
			if ev.Kind == sim.EventReturn && strings.HasPrefix(ev.Resp, "err:") {
				t.Fatalf("seed %d: hard routing error %q", seed, ev.Resp)
			}
		}
	}
}
