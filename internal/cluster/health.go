package cluster

import (
	"context"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// HealthConfig tunes the active checker.
type HealthConfig struct {
	// Interval between probe sweeps; Timeout bounds each probe.
	Interval, Timeout time.Duration
	// DownAfter consecutive bad probes (unreachable or 503) take a backend
	// down; UpAfter consecutive good probes (200/429) bring it back. Both
	// default to 2 — one flaky probe must not trigger a handoff storm.
	DownAfter, UpAfter int
}

func (c HealthConfig) withDefaults() HealthConfig {
	if c.Interval <= 0 {
		c.Interval = 250 * time.Millisecond
	}
	if c.Timeout <= 0 {
		c.Timeout = c.Interval
	}
	if c.DownAfter <= 0 {
		c.DownAfter = 2
	}
	if c.UpAfter <= 0 {
		c.UpAfter = 2
	}
	return c
}

// Health actively probes each backend's /healthz and classifies it through
// the slserve watermark ladder: 200 = up, 429 = degraded (alive, shedding —
// keeps its ownerships), 503 or unreachable = counting toward down (a 503
// healthz means a budget is nearly spent or the process is gone; either
// way ownership should move). Transitions are debounced by consecutive-probe
// thresholds, and every sweep that changes any state bumps the view epoch
// and notifies the owner (the frontend's reconciler).
type Health struct {
	urls []string
	cfg  HealthConfig
	cl   *http.Client

	states []atomic.Int32 // BackendState per backend
	epoch  atomic.Int64

	// onChange, when set, is called (outside any lock) after a sweep that
	// changed at least one backend's state, with the new epoch.
	onChange func(epoch int64)

	mu       sync.Mutex // guards the consecutive-probe streaks
	badRuns  []int
	goodRuns []int
}

// NewHealth builds a checker over the backend base URLs. onChange may be
// nil. No probes run until Start or Sweep.
func NewHealth(urls []string, cfg HealthConfig, onChange func(epoch int64)) *Health {
	cfg = cfg.withDefaults()
	h := &Health{
		urls:     urls,
		cfg:      cfg,
		cl:       &http.Client{Timeout: cfg.Timeout},
		states:   make([]atomic.Int32, len(urls)),
		badRuns:  make([]int, len(urls)),
		goodRuns: make([]int, len(urls)),
		onChange: onChange,
	}
	return h
}

// Start runs probe sweeps every Interval until ctx is done.
func (h *Health) Start(ctx context.Context) {
	go func() {
		tick := time.NewTicker(h.cfg.Interval)
		defer tick.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-tick.C:
				h.Sweep(ctx)
			}
		}
	}()
}

// Sweep probes every backend once (concurrently) and applies the debounced
// transitions; it returns true if any state changed. Exported so tests and
// the frontend's startup path can drive the checker deterministically.
func (h *Health) Sweep(ctx context.Context) bool {
	good := make([]bool, len(h.urls))
	degraded := make([]bool, len(h.urls))
	var wg sync.WaitGroup
	for i := range h.urls {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			good[i], degraded[i] = h.probe(ctx, h.urls[i])
		}(i)
	}
	wg.Wait()

	h.mu.Lock()
	changed := false
	for i := range h.urls {
		old := BackendState(h.states[i].Load())
		next := old
		if good[i] {
			h.goodRuns[i]++
			h.badRuns[i] = 0
			target := StateUp
			if degraded[i] {
				target = StateDegraded
			}
			// Up<->Degraded moves are immediate (the backend answered; only
			// its shedding signal changed); leaving Down is debounced.
			if old != StateDown || h.goodRuns[i] >= h.cfg.UpAfter {
				next = target
			}
		} else {
			h.badRuns[i]++
			h.goodRuns[i] = 0
			if h.badRuns[i] >= h.cfg.DownAfter {
				next = StateDown
			}
		}
		if next != old {
			h.states[i].Store(int32(next))
			changed = true
		}
	}
	h.mu.Unlock()
	if changed {
		ep := h.epoch.Add(1)
		if h.onChange != nil {
			h.onChange(ep)
		}
	}
	return changed
}

// probe classifies one /healthz answer: good (alive) and whether it was a
// shedding (429) answer.
func (h *Health) probe(ctx context.Context, url string) (good, degraded bool) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/healthz", nil)
	if err != nil {
		return false, false
	}
	resp, err := h.cl.Do(req)
	if err != nil {
		return false, false
	}
	resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusOK:
		return true, false
	case resp.StatusCode == http.StatusTooManyRequests:
		return true, true
	default: // 503 and anything unexpected count toward down
		return false, false
	}
}

// State returns backend i's current classification.
func (h *Health) State(i int) BackendState { return BackendState(h.states[i].Load()) }

// Epoch returns the current view epoch (bumped on every state change).
func (h *Health) Epoch() int64 { return h.epoch.Load() }

// View snapshots the membership: a backend is a candidate owner unless Down.
func (h *Health) View() View {
	v := View{Epoch: h.epoch.Load(), Alive: make([]bool, len(h.urls))}
	for i := range h.urls {
		v.Alive[i] = BackendState(h.states[i].Load()) != StateDown
	}
	return v
}
