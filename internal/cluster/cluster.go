// Package cluster distributes the served objects across a pool of backend
// processes under the only guarantee the impossibility results leave open:
// SINGLE OWNERSHIP. Strong linearizability cannot survive naive replication
// in a message-passing system (arXiv 2108.01651, arXiv 2105.06614), so this
// package never replicates an object — each object key maps to exactly one
// owner backend (rendezvous hashing over the live membership view), every
// operation on the object executes at its owner, and every SL argument stays
// node-local where the repo's model checks already hold.
//
// What remains distributed is OWNERSHIP ITSELF, and moving it is exactly the
// cutover problem internal/migrate solved for in-process generations. The
// ownership Table (table.go) reuses that discipline on prim registers, so
// the transfer protocol runs unchanged in the simulated world where its
// races are model-checked:
//
//   - a fence GENERATION per object, bumped before any transfer; routed
//     requests register in a slot tagged with the generation they read and
//     re-validate it before dispatching, so a request that raced a handoff
//     re-routes instead of landing at a retired owner;
//   - a CUTOVER flag flipped only AFTER the new owner holds the migrated
//     value (flip-after-migrate); while it is up, routing answers
//     ErrMigrating rather than guessing an owner;
//   - a DRAIN barrier: the migrator waits for every registered slot to
//     clear (each cleared slot proves that request's effect is already
//     folded into the front tier's acked ledger and therefore into the
//     seed), or times out and STEALS the stragglers — a stolen slot's
//     request is refused without an ack, never acked against a seed that
//     missed it.
//
// The health checker (health.go) consumes the slserve /healthz ladder —
// 200 up, 429 degraded (alive, shedding), 503 or unreachable counting
// toward down — and publishes an epoch-numbered membership view; ownership
// follows the view via rendezvous hashing, so any two components that agree
// on the member list and liveness agree on every owner without
// coordination.
package cluster

import "hash/fnv"

// BackendState classifies one backend in the current membership view.
type BackendState int32

// Backend states, ordered by health.
const (
	// StateUp: consecutive healthy probes (HTTP 200).
	StateUp BackendState = iota
	// StateDegraded: the backend answers but sheds load (HTTP 429, a
	// watermark warn) or reports a budget near exhaustion (HTTP 503 counts
	// toward down — see Health). Degraded backends keep their ownerships:
	// they are alive, and churning ownership on a shedding signal would
	// trade a slow answer for a handoff storm.
	StateDegraded
	// StateDown: consecutive failed probes (unreachable, or 503 — nearly
	// spent). Down backends lose their ownerships via fenced handoff.
	StateDown
)

func (s BackendState) String() string {
	switch s {
	case StateUp:
		return "up"
	case StateDegraded:
		return "degraded"
	case StateDown:
		return "down"
	default:
		return "unknown"
	}
}

// View is an epoch-numbered membership snapshot: which backends are
// candidates for ownership. Epochs only move forward; a larger epoch wins.
type View struct {
	Epoch int64
	// Alive[i] reports whether backend i (by pool index) may own objects.
	Alive []bool
}

// Candidates returns the alive backend indices, in pool order.
func (v View) Candidates() []int {
	var out []int
	for i, ok := range v.Alive {
		if ok {
			out = append(out, i)
		}
	}
	return out
}

// RendezvousOwner maps key to its owner among the candidate backends by
// highest-random-weight (rendezvous) hashing over (key, member URL): every
// component that agrees on the member list and the candidate set computes
// the same owner with no coordination, and removing one member re-maps only
// that member's keys. Returns -1 when no candidate is alive.
func RendezvousOwner(key string, members []string, candidates []int) int {
	best, bestHash := -1, uint64(0)
	for _, i := range candidates {
		if i < 0 || i >= len(members) {
			continue
		}
		h := fnv.New64a()
		h.Write([]byte(key))
		h.Write([]byte{0})
		h.Write([]byte(members[i]))
		if hv := h.Sum64(); best == -1 || hv > bestHash || (hv == bestHash && i < best) {
			best, bestHash = i, hv
		}
	}
	return best
}
