package cluster

// UnpackRecord exposes the packed ownership-record layout to the external
// game tests, which decode the final record state after a run.
func UnpackRecord(rec int64) (gen int64, owner int, cutover bool) { return unpackRec(rec) }
