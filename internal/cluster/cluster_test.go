package cluster_test

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"stronglin/internal/cluster"
)

// TestRendezvousOwnerProperties pins the routing function's contract:
// deterministic, total over alive candidates, balanced enough to use, and
// MINIMALLY DISRUPTIVE — removing one member re-maps only that member's
// keys, never a survivor's (the property that keeps a backend death from
// triggering a cluster-wide handoff storm).
func TestRendezvousOwnerProperties(t *testing.T) {
	members := []string{
		"http://b0.internal:9001",
		"http://b1.internal:9002",
		"http://b2.internal:9003",
	}
	all := []int{0, 1, 2}

	counts := make([]int, 3)
	ownerOfAll := make(map[string]int)
	for i := 0; i < 300; i++ {
		key := fmt.Sprintf("obj-%d", i)
		o := cluster.RendezvousOwner(key, members, all)
		if o < 0 || o > 2 {
			t.Fatalf("owner(%q) = %d out of range", key, o)
		}
		if o2 := cluster.RendezvousOwner(key, members, all); o2 != o {
			t.Fatalf("owner(%q) nondeterministic: %d then %d", key, o, o2)
		}
		counts[o]++
		ownerOfAll[key] = o
	}
	for i, c := range counts {
		if c == 0 {
			t.Fatalf("backend %d owns nothing across 300 keys: degenerate hash (%v)", i, counts)
		}
	}

	// Kill backend 1: its keys re-map, everyone else's keys DO NOT move.
	for key, was := range ownerOfAll {
		now := cluster.RendezvousOwner(key, members, []int{0, 2})
		if was != 1 && now != was {
			t.Fatalf("key %q moved %d -> %d though its owner survived (disruption)", key, was, now)
		}
		if was == 1 && now == 1 {
			t.Fatalf("key %q still maps to the dead backend", key)
		}
	}

	if o := cluster.RendezvousOwner("anything", members, nil); o != -1 {
		t.Fatalf("owner with no candidates = %d, want -1", o)
	}
}

// TestHealthLadderTransitions walks one backend through the slserve
// /healthz ladder and checks the debounced classification: 200 = up, 429 =
// degraded immediately (alive — no debounce between the live states), 503
// and unreachable count toward down only after DownAfter consecutive bad
// probes, and recovery needs UpAfter consecutive good ones.
func TestHealthLadderTransitions(t *testing.T) {
	var code atomic.Int64
	code.Store(http.StatusOK)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/healthz" {
			t.Errorf("probe hit %q, want /healthz", r.URL.Path)
		}
		w.WriteHeader(int(code.Load()))
	}))
	defer ts.Close()

	var epochs []int64
	h := cluster.NewHealth([]string{ts.URL}, cluster.HealthConfig{
		Interval:  time.Hour, // sweeps are driven manually
		Timeout:   time.Second,
		DownAfter: 2, UpAfter: 2,
	}, func(ep int64) { epochs = append(epochs, ep) })
	ctx := context.Background()

	h.Sweep(ctx)
	if got := h.State(0); got != cluster.StateUp {
		t.Fatalf("after 200 probe: %v, want up", got)
	}

	code.Store(http.StatusTooManyRequests)
	h.Sweep(ctx)
	if got := h.State(0); got != cluster.StateDegraded {
		t.Fatalf("after 429 probe: %v, want degraded (immediate: the backend answered)", got)
	}
	if v := h.View(); !v.Alive[0] {
		t.Fatal("degraded backend must stay a candidate owner")
	}

	code.Store(http.StatusServiceUnavailable)
	h.Sweep(ctx)
	if got := h.State(0); got == cluster.StateDown {
		t.Fatal("one 503 probe must not take the backend down (debounce)")
	}
	h.Sweep(ctx)
	if got := h.State(0); got != cluster.StateDown {
		t.Fatalf("after 2 consecutive 503 probes: %v, want down", got)
	}
	if v := h.View(); v.Alive[0] {
		t.Fatal("down backend must not be a candidate owner")
	}

	code.Store(http.StatusOK)
	h.Sweep(ctx)
	if got := h.State(0); got != cluster.StateDown {
		t.Fatal("one good probe must not revive the backend (debounce)")
	}
	h.Sweep(ctx)
	if got := h.State(0); got != cluster.StateUp {
		t.Fatalf("after 2 consecutive 200 probes: %v, want up", got)
	}

	// Four transitions (up->degraded, degraded->down... state changes:
	// 200: nothing on first sweep? initial state is up and first sweep
	// confirms it) — what matters: epochs strictly increase and match Epoch.
	for i := 1; i < len(epochs); i++ {
		if epochs[i] <= epochs[i-1] {
			t.Fatalf("epochs not strictly increasing: %v", epochs)
		}
	}
	if len(epochs) == 0 || h.Epoch() != epochs[len(epochs)-1] {
		t.Fatalf("epoch bookkeeping drifted: notified %v, Epoch() %d", epochs, h.Epoch())
	}
}

// TestHealthUnreachableBackend: a probe against a dead address counts
// toward down exactly like a 503.
func TestHealthUnreachableBackend(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	ts.Close() // dead on arrival
	h := cluster.NewHealth([]string{ts.URL}, cluster.HealthConfig{
		Interval: time.Hour, Timeout: 200 * time.Millisecond, DownAfter: 2, UpAfter: 2,
	}, nil)
	ctx := context.Background()
	h.Sweep(ctx)
	h.Sweep(ctx)
	if got := h.State(0); got != cluster.StateDown {
		t.Fatalf("unreachable backend: %v, want down", got)
	}
}
