package history

import (
	"strings"
	"testing"

	"stronglin/internal/prim"
	"stronglin/internal/sim"
	"stronglin/internal/spec"
)

// Synthetic execution trees let us unit-test the game checker against known
// verdicts independently of any real implementation.

func inv(proc, opID int) sim.Event {
	return sim.Event{Kind: sim.EventInvoke, Proc: proc, OpID: opID}
}

func step(proc, opID int, info string) sim.Event {
	return sim.Event{Kind: sim.EventStep, Proc: proc, OpID: opID, Info: info}
}

func ret(proc, opID int, resp string) sim.Event {
	return sim.Event{Kind: sim.EventReturn, Proc: proc, OpID: opID, Resp: resp}
}

func chain(events ...[]sim.Event) (*sim.Node, *sim.Node) {
	root := &sim.Node{Proc: -1}
	cur := root
	for _, evs := range events {
		child := &sim.Node{Proc: evs[0].Proc, Events: evs}
		cur.Children = []*sim.Node{child}
		cur = child
	}
	return root, cur
}

// oracleTree builds: both enqueues complete, then the tree BRANCHES into a
// dequeue returning 1 and a dequeue returning 2. No implementation behaves
// like this (a deterministic dequeue cannot return both), but it is the
// minimal witness that tree-branching forces commitment: any prefix-closed L
// must already order the enqueues before the branch, and each branch
// invalidates one order.
func oracleTree(branches ...string) *sim.Tree {
	// The two enqueues overlap (both invoked before either returns), so
	// either linearization order is a priori legal.
	root, mid := chain(
		[]sim.Event{inv(0, 0)},
		[]sim.Event{inv(1, 1)},
		[]sim.Event{step(0, 0, "s"), ret(0, 0, "ok")},
		[]sim.Event{step(1, 1, "s"), ret(1, 1, "ok")},
	)
	for _, resp := range branches {
		mid.Children = append(mid.Children, &sim.Node{
			Proc:   2,
			Events: []sim.Event{inv(2, 2), step(2, 2, "s"), ret(2, 2, resp)},
		})
	}
	return &sim.Tree{
		Procs: 3,
		Ops: []sim.OpInfo{
			{ID: 0, Proc: 0, Name: "enq(1)", Spec: spec.MkOp(spec.MethodEnq, 1)},
			{ID: 1, Proc: 1, Name: "enq(2)", Spec: spec.MkOp(spec.MethodEnq, 2)},
			{ID: 2, Proc: 2, Name: "deq()", Spec: spec.MkOp(spec.MethodDeq)},
		},
		Root: root,
	}
}

func TestStrongLinRejectsBranchForcedCommitment(t *testing.T) {
	res := CheckStrongLin(oracleTree("1", "2"), spec.Queue{}, nil)
	if res.Ok {
		t.Fatal("tree requiring incompatible commitments accepted")
	}
	if res.Counterexample == nil {
		t.Fatal("no counterexample produced")
	}
	if !strings.Contains(res.Counterexample.String(), "enq") {
		t.Fatalf("uninformative counterexample: %s", res.Counterexample)
	}
}

func TestStrongLinAcceptsSingleBranch(t *testing.T) {
	for _, resp := range []string{"1", "2"} {
		res := CheckStrongLin(oracleTree(resp), spec.Queue{}, nil)
		if !res.Ok {
			t.Fatalf("single-branch tree (deq=%s) rejected: %v", resp, res.Counterexample)
		}
	}
}

func TestStrongLinLeafHistoriesStillLinearizable(t *testing.T) {
	// Sanity: each branch of the rejected tree is individually linearizable;
	// the failure is purely a prefix-closure failure.
	tree := oracleTree("1", "2")
	leaves := 0
	tree.Walk(func(n *sim.Node, trace []sim.Event) bool {
		if len(n.Children) == 0 {
			leaves++
			h := FromEvents(tree.Procs, tree.Ops, trace)
			if res := CheckLinearizable(h, spec.Queue{}); !res.Ok {
				t.Fatalf("leaf history not linearizable: %s", h.String())
			}
		}
		return true
	})
	if leaves != 2 {
		t.Fatalf("leaves = %d, want 2", leaves)
	}
}

// pendingEagerTree models the Algorithm-2 take/EMPTY situation: p0's deq has
// taken the step that determines it returns empty, but has not returned;
// then p1's enq(1) completes; then p0 returns empty. A prefix-closed L must
// linearize the PENDING deq (with response empty) no later than the enq.
func pendingEagerTree() *sim.Tree {
	root, _ := chain(
		[]sim.Event{inv(0, 0)},
		[]sim.Event{step(0, 0, "determining-read")},
		[]sim.Event{inv(1, 1), step(1, 1, "s"), ret(1, 1, "ok")},
		[]sim.Event{step(0, 0, "local-exit"), ret(0, 0, spec.RespEmpty)},
	)
	return &sim.Tree{
		Procs: 2,
		Ops: []sim.OpInfo{
			{ID: 0, Proc: 0, Name: "deq()", Spec: spec.MkOp(spec.MethodDeq)},
			{ID: 1, Proc: 1, Name: "enq(1)", Spec: spec.MkOp(spec.MethodEnq, 1)},
		},
		Root: root,
	}
}

func TestStrongLinLinearizesPendingOpsEagerly(t *testing.T) {
	res := CheckStrongLin(pendingEagerTree(), spec.Queue{}, nil)
	if !res.Ok {
		t.Fatalf("eager pending linearization not found: %v", res.Counterexample)
	}
}

// pendingWrongResponseTree is the same shape, but the deq eventually returns
// "1" along one branch and "empty" along another — committing to either
// pending response fails the other branch, and not committing fails the
// empty branch. Not strongly linearizable.
func pendingWrongResponseTree() *sim.Tree {
	root, mid := chain(
		[]sim.Event{inv(0, 0)},
		[]sim.Event{step(0, 0, "read")},
		[]sim.Event{inv(1, 1), step(1, 1, "s"), ret(1, 1, "ok")},
	)
	mid.Children = []*sim.Node{
		{Proc: 0, Events: []sim.Event{step(0, 0, "x"), ret(0, 0, spec.RespEmpty)}},
		{Proc: 0, Events: []sim.Event{step(0, 0, "x"), ret(0, 0, "1")}},
	}
	return &sim.Tree{
		Procs: 2,
		Ops: []sim.OpInfo{
			{ID: 0, Proc: 0, Name: "deq()", Spec: spec.MkOp(spec.MethodDeq)},
			{ID: 1, Proc: 1, Name: "enq(1)", Spec: spec.MkOp(spec.MethodEnq, 1)},
		},
		Root: root,
	}
}

func TestStrongLinPendingCommitmentConflict(t *testing.T) {
	res := CheckStrongLin(pendingWrongResponseTree(), spec.Queue{}, nil)
	if res.Ok {
		t.Fatal("conflicting pending commitments accepted")
	}
}

// realTimeTree checks that extensions respect real-time order: op A
// completes strictly before op B is invoked, so B can never be linearized
// before A.
func TestStrongLinRespectsRealTime(t *testing.T) {
	// p0: enq(1) completes. p1: deq() then returns empty — illegal, since
	// the deq started after enq(1) completed.
	root, _ := chain(
		[]sim.Event{inv(0, 0), step(0, 0, "s"), ret(0, 0, "ok")},
		[]sim.Event{inv(1, 1), step(1, 1, "s"), ret(1, 1, spec.RespEmpty)},
	)
	tree := &sim.Tree{
		Procs: 2,
		Ops: []sim.OpInfo{
			{ID: 0, Proc: 0, Name: "enq(1)", Spec: spec.MkOp(spec.MethodEnq, 1)},
			{ID: 1, Proc: 1, Name: "deq()", Spec: spec.MkOp(spec.MethodDeq)},
		},
		Root: root,
	}
	if res := CheckStrongLin(tree, spec.Queue{}, nil); res.Ok {
		t.Fatal("real-time violation accepted")
	}
}

// atomicQueueSetup builds programs whose every operation is a single
// scheduler step applying the sequential queue directly — an atomic object.
// (Local computation following a primitive step executes atomically with it
// under the cooperative scheduler, so "step then mutate" is one step.)
// Atomic objects are strongly linearizable by definition; this is the
// checker's soundness smoke test on real explored trees.
func atomicQueueSetup(w *sim.World) []sim.Program {
	type cell struct{ items []int64 }
	st := &cell{}
	tick := w.Register("tick", 0) // one shared object so every op is one step

	enq := func(v int64) sim.Op {
		return sim.Op{
			Name: "enq",
			Spec: spec.MkOp(spec.MethodEnq, v),
			Run: func(t prim.Thread) string {
				tick.Write(t, 0)
				st.items = append(st.items, v)
				return spec.RespOK
			},
		}
	}
	deq := func() sim.Op {
		return sim.Op{
			Name: "deq",
			Spec: spec.MkOp(spec.MethodDeq),
			Run: func(t prim.Thread) string {
				tick.Write(t, 0)
				if len(st.items) == 0 {
					return spec.RespEmpty
				}
				v := st.items[0]
				st.items = st.items[1:]
				return spec.RespInt(v)
			},
		}
	}
	return []sim.Program{
		{enq(1)},
		{enq(2)},
		{deq(), deq()},
	}
}

func TestStrongLinAcceptsAtomicObjectTree(t *testing.T) {
	tree, err := sim.Explore(3, atomicQueueSetup, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Truncated {
		t.Fatal("tree truncated")
	}
	res := CheckStrongLin(tree, spec.Queue{}, nil)
	if !res.Ok {
		t.Fatalf("atomic queue rejected: %v", res.Counterexample)
	}
	if res.Aborted {
		t.Fatal("search aborted")
	}
}

func TestStrongLinAbortsOnTinyStateBudget(t *testing.T) {
	tree, err := sim.Explore(3, atomicQueueSetup, nil)
	if err != nil {
		t.Fatal(err)
	}
	res := CheckStrongLin(tree, spec.Queue{}, &StrongLinOptions{MaxStates: 5})
	if !res.Aborted || res.Ok {
		t.Fatalf("want aborted result, got %+v", res)
	}
}
