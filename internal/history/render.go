package history

import (
	"fmt"
	"sort"
	"strings"

	"stronglin/internal/sim"
)

// RenderTimeline draws a history as per-process swimlanes over the event
// clock, for counterexample and stress-failure diagnostics:
//
//	p0 |--enq(1)=ok--|        |--deq()=2--|
//	p1     |--enq(2)=ok--|
//
// Each operation spans its invocation..return columns; pending operations
// extend to the right margin.
func RenderTimeline(h History) string {
	if len(h.Ops) == 0 {
		return "(empty history)"
	}
	maxClock := 0
	for _, o := range h.Ops {
		if o.Invoke > maxClock {
			maxClock = o.Invoke
		}
		if o.Complete() && o.Return > maxClock {
			maxClock = o.Return
		}
	}
	scale := 6 // columns per clock tick
	width := (maxClock + 2) * scale

	// Group operations per process, sorted by invocation.
	byProc := make(map[int][]OpRecord)
	var procs []int
	for _, o := range h.Ops {
		if _, seen := byProc[o.Proc]; !seen {
			procs = append(procs, o.Proc)
		}
		byProc[o.Proc] = append(byProc[o.Proc], o)
	}
	sort.Ints(procs)

	var b strings.Builder
	for _, p := range procs {
		ops := byProc[p]
		sort.Slice(ops, func(i, j int) bool { return ops[i].Invoke < ops[j].Invoke })
		line := make([]byte, width)
		for i := range line {
			line[i] = ' '
		}
		for _, o := range ops {
			start := o.Invoke * scale
			end := width - 1
			if o.Complete() {
				end = o.Return*scale + scale - 1
			}
			if end >= width {
				end = width - 1
			}
			label := o.Op.String()
			if o.Complete() {
				label += "=" + o.Resp
			} else {
				label += "=?"
			}
			segment := renderSegment(end-start+1, label)
			copy(line[start:end+1], segment)
		}
		fmt.Fprintf(&b, "p%-2d %s\n", p, strings.TrimRight(string(line), " "))
	}
	return strings.TrimRight(b.String(), "\n")
}

func renderSegment(n int, label string) []byte {
	if n < 2 {
		return []byte("|")[:min(n, 1)]
	}
	inner := n - 2
	if len(label) > inner {
		label = label[:inner]
	}
	pad := inner - len(label)
	left := pad / 2
	var sb strings.Builder
	sb.WriteByte('|')
	sb.WriteString(strings.Repeat("-", left))
	sb.WriteString(label)
	sb.WriteString(strings.Repeat("-", pad-left))
	sb.WriteByte('|')
	return []byte(sb.String())
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// RenderTree draws an execution tree (or its top maxDepth levels) with one
// line per node, for inspecting witness subtrees:
//
//	└─ p0: invoke#0
//	   └─ p0: R.fa(+2) ret#0=ok
func RenderTree(tree *sim.Tree, maxDepth int) string {
	var b strings.Builder
	var rec func(n *sim.Node, depth int, prefix string)
	rec = func(n *sim.Node, depth int, prefix string) {
		if maxDepth > 0 && depth > maxDepth {
			return
		}
		if n.Proc >= 0 {
			parts := make([]string, len(n.Events))
			for i, ev := range n.Events {
				parts[i] = ev.String()
				if ev.LinPoint {
					parts[i] += "*"
				}
			}
			marker := "├─"
			if len(n.Children) == 0 {
				marker = "└─"
			}
			fmt.Fprintf(&b, "%s%s %s\n", prefix, marker, strings.Join(parts, " "))
			prefix += "   "
		}
		for _, c := range n.Children {
			rec(c, depth+1, prefix)
		}
	}
	fmt.Fprintf(&b, "execution tree: %d nodes, %d leaves\n", tree.Nodes, tree.Leaves)
	rec(tree.Root, 0, "")
	return strings.TrimRight(b.String(), "\n")
}
