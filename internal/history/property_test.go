package history

import (
	"math/rand"
	"testing"

	"stronglin/internal/prim"
	"stronglin/internal/sim"
	"stronglin/internal/spec"
)

// randomAtomicTree explores a random configuration of an atomic queue (every
// operation one scheduler step) and returns the tree. Atomic objects are the
// ground truth: always linearizable and strongly linearizable.
func randomAtomicTree(t *testing.T, rng *rand.Rand) *sim.Tree {
	t.Helper()
	nprocs := 2 + rng.Intn(2)
	opsPer := 1
	if nprocs == 2 {
		opsPer = 1 + rng.Intn(2)
	}
	plan := make([][]spec.Op, nprocs)
	next := int64(1)
	for p := range plan {
		for i := 0; i < opsPer; i++ {
			if rng.Intn(2) == 0 {
				plan[p] = append(plan[p], spec.MkOp(spec.MethodEnq, next))
				next++
			} else {
				plan[p] = append(plan[p], spec.MkOp(spec.MethodDeq))
			}
		}
	}
	setup := func(w *sim.World) []sim.Program {
		items := &[]int64{}
		tick := w.Register("tick", 0)
		progs := make([]sim.Program, nprocs)
		for p := range plan {
			for _, op := range plan[p] {
				op := op
				progs[p] = append(progs[p], sim.Op{
					Name: op.String(),
					Spec: op,
					Run: func(th prim.Thread) string {
						tick.Write(th, 0) // the single atomic step
						if op.Method == spec.MethodEnq {
							*items = append(*items, op.Args[0])
							return spec.RespOK
						}
						if len(*items) == 0 {
							return spec.RespEmpty
						}
						v := (*items)[0]
						*items = (*items)[1:]
						return spec.RespInt(v)
					},
				})
			}
		}
		return progs
	}
	tree, err := sim.Explore(nprocs, setup, nil)
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

// Property: atomic objects are strongly linearizable and all their leaf
// histories linearize — on every random configuration.
func TestPropertyAtomicObjectsAlwaysStronglyLinearizable(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 15; trial++ {
		tree := randomAtomicTree(t, rng)
		res := CheckStrongLin(tree, spec.Queue{}, nil)
		if !res.Ok {
			t.Fatalf("trial %d: atomic queue refuted: %v", trial, res.Counterexample)
		}
		tree.Walk(func(n *sim.Node, trace []sim.Event) bool {
			if len(n.Children) == 0 {
				h := FromEvents(tree.Procs, tree.Ops, trace)
				if lr := CheckLinearizable(h, spec.Queue{}); !lr.Ok {
					t.Fatalf("trial %d: atomic leaf not linearizable: %s", trial, h.String())
				}
			}
			return true
		})
	}
}

// Property: strong linearizability of a tree implies linearizability of
// every node's history (not just leaves) — checked on the Theorem 5
// construction, whose group linearizations make this non-trivial.
func TestPropertyStrongLinImpliesNodewiseLinearizable(t *testing.T) {
	setup := func(w *sim.World) []sim.Program {
		state := w.Register("rt.state", 0)
		ts := w.TAS("rt.ts")
		tas := sim.Op{
			Name: "tas",
			Spec: spec.MkOp(spec.MethodTAS),
			Run: func(t prim.Thread) string {
				v := ts.TestAndSet(t)
				state.Write(t, 1)
				return spec.RespInt(v)
			},
		}
		read := sim.Op{
			Name: "read",
			Spec: spec.MkOp(spec.MethodRead),
			Run:  func(t prim.Thread) string { return spec.RespInt(state.Read(t)) },
		}
		return []sim.Program{{tas}, {tas}, {read}}
	}
	tree, err := sim.Explore(3, setup, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res := CheckStrongLin(tree, spec.ReadableTAS{}, nil); !res.Ok {
		t.Fatalf("Theorem 5 inline construction refuted: %v", res.Counterexample)
	}
	checked := 0
	tree.Walk(func(n *sim.Node, trace []sim.Event) bool {
		h := FromEvents(tree.Procs, tree.Ops, trace)
		if lr := CheckLinearizable(h, spec.ReadableTAS{}); !lr.Ok {
			t.Fatalf("node history not linearizable: %s", h.String())
		}
		checked++
		return true
	})
	if checked < 100 {
		t.Fatalf("only %d nodes checked", checked)
	}
}

// Property: pruning children can only make strong linearizability easier —
// if the full tree passes, every schedule-union subtree passes.
func TestPropertyPrunedSubtreePreservesAcceptance(t *testing.T) {
	setup := func(w *sim.World) []sim.Program {
		r := w.Register("r", 0)
		wr := func(v int64) sim.Op {
			return sim.Op{Name: "w", Spec: spec.MkOp(spec.MethodWrite, v),
				Run: func(t prim.Thread) string { r.Write(t, v); return spec.RespOK }}
		}
		rd := sim.Op{Name: "r", Spec: spec.MkOp(spec.MethodRead),
			Run: func(t prim.Thread) string { return spec.RespInt(r.Read(t)) }}
		return []sim.Program{{wr(1), rd}, {wr(2), rd}}
	}
	full, err := sim.Explore(2, setup, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res := CheckStrongLin(full, spec.RWRegister{}, nil); !res.Ok {
		t.Fatalf("atomic register tree refuted: %v", res.Counterexample)
	}
	pruned, err := sim.TreeFromSchedules(2, setup, [][]int{
		{0, 0, 0, 0, 1, 1, 1, 1},
		{1, 1, 1, 1, 0, 0, 0, 0},
		{0, 0, 1, 1, 0, 0, 1, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res := CheckStrongLin(pruned, spec.RWRegister{}, nil); !res.Ok {
		t.Fatalf("pruned subtree refuted while full tree passed: %v", res.Counterexample)
	}
}

// Property: the WGL checker is insensitive to the order records appear in
// the history (it keys on timestamps, not positions).
func TestPropertyLinearizableInvariantUnderRecordShuffle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	base := mkHistory(3,
		OpRecord{Proc: 0, Op: spec.MkOp(spec.MethodEnq, 1), Invoke: 0, Return: 3, Resp: "ok"},
		OpRecord{Proc: 1, Op: spec.MkOp(spec.MethodEnq, 2), Invoke: 1, Return: 2, Resp: "ok"},
		OpRecord{Proc: 2, Op: spec.MkOp(spec.MethodDeq), Invoke: 4, Return: 5, Resp: "2"},
		OpRecord{Proc: 2, Op: spec.MkOp(spec.MethodDeq), Invoke: 6, Return: 7, Resp: "1"},
	)
	want := CheckLinearizable(base, spec.Queue{}).Ok
	if !want {
		t.Fatal("base history rejected")
	}
	for trial := 0; trial < 10; trial++ {
		shuffled := History{N: base.N, Ops: append([]OpRecord{}, base.Ops...)}
		rng.Shuffle(len(shuffled.Ops), func(i, j int) {
			shuffled.Ops[i], shuffled.Ops[j] = shuffled.Ops[j], shuffled.Ops[i]
		})
		if got := CheckLinearizable(shuffled, spec.Queue{}).Ok; got != want {
			t.Fatalf("verdict changed under record shuffle")
		}
	}
}

// Property: widening a relaxation never invalidates a history — anything
// linearizable for the FIFO queue linearizes for every k-out-of-order and
// stuttering variant.
func TestPropertyRelaxationMonotonicity(t *testing.T) {
	histories := []History{
		mkHistory(2,
			OpRecord{Proc: 0, Op: spec.MkOp(spec.MethodEnq, 1), Invoke: 0, Return: 1, Resp: "ok"},
			OpRecord{Proc: 1, Op: spec.MkOp(spec.MethodEnq, 2), Invoke: 2, Return: 3, Resp: "ok"},
			OpRecord{Proc: 0, Op: spec.MkOp(spec.MethodDeq), Invoke: 4, Return: 5, Resp: "1"},
		),
		mkHistory(2,
			OpRecord{Proc: 0, Op: spec.MkOp(spec.MethodEnq, 1), Invoke: 0, Return: 3, Resp: "ok"},
			OpRecord{Proc: 1, Op: spec.MkOp(spec.MethodDeq), Invoke: 1, Return: 2, Resp: "empty"},
		),
	}
	relaxed := []spec.Spec{
		spec.OutOfOrderQueue{K: 2},
		spec.OutOfOrderQueue{K: 3},
		spec.StutteringQueue{M: 1},
		spec.MultiplicityQueue{},
	}
	for i, h := range histories {
		if !CheckLinearizable(h, spec.Queue{}).Ok {
			t.Fatalf("history %d rejected by the FIFO queue", i)
		}
		for _, sp := range relaxed {
			if !CheckLinearizable(h, sp).Ok {
				t.Fatalf("history %d rejected by %s though FIFO accepts it", i, sp.Name())
			}
		}
	}
}
