// Package history records operation histories and decides linearizability
// and strong linearizability against the specifications of internal/spec.
//
// Two checkers are provided:
//
//   - CheckLinearizable: a Wing–Gong/Lowe-style search with memoisation over
//     a single history (complete or with pending operations), used as the
//     oracle for large randomized stress runs in the real world.
//   - CheckStrongLin: a complete game search over an execution tree produced
//     by sim.Explore. It decides whether a prefix-closed linearization
//     function exists for the whole tree — the definition of strong
//     linearizability (Golab, Higham, Woelfel) — by searching for a strategy
//     that assigns every tree node a linearization extending its parent's.
//     A refutation is a genuine counterexample; an affirmation is exhaustive
//     for the bounded configuration explored.
package history

import (
	"fmt"

	"strings"
	"sync"

	"stronglin/internal/sim"
	"stronglin/internal/spec"
)

// Pending marks the Return field of an operation that has not returned.
const Pending = -1

// OpRecord is one operation instance of a history.
type OpRecord struct {
	// ID is a dense identifier.
	ID int
	// Proc is the invoking process.
	Proc int
	// Op is the abstract operation.
	Op spec.Op
	// Invoke and Return are event timestamps; Return is Pending for
	// incomplete operations. An operation A precedes B iff A.Return >= 0 and
	// A.Return < B.Invoke.
	Invoke int
	Return int
	// Resp is the recorded response (complete operations only).
	Resp string
}

// Complete reports whether the operation returned.
func (o OpRecord) Complete() bool { return o.Return != Pending }

// History is a set of operation records over n processes.
type History struct {
	N   int
	Ops []OpRecord
}

// Precedes reports whether op a really-precedes op b in the history.
func (h *History) Precedes(a, b OpRecord) bool {
	return a.Complete() && a.Return < b.Invoke
}

// String renders the history for failure messages.
func (h *History) String() string {
	var b strings.Builder
	for _, o := range h.Ops {
		resp := "?"
		if o.Complete() {
			resp = o.Resp
		}
		fmt.Fprintf(&b, "p%d:%v@[%d,%d]=%s ", o.Proc, o.Op, o.Invoke, o.Return, resp)
	}
	return strings.TrimSpace(b.String())
}

// FromEvents builds the history of a trace: invocation/return timestamps are
// event positions.
func FromEvents(n int, ops []sim.OpInfo, events []sim.Event) History {
	byID := make(map[int]*OpRecord)
	var order []int
	for pos, ev := range events {
		switch ev.Kind {
		case sim.EventInvoke:
			byID[ev.OpID] = &OpRecord{ID: ev.OpID, Proc: ev.Proc, Invoke: pos, Return: Pending}
			order = append(order, ev.OpID)
		case sim.EventReturn:
			if rec, ok := byID[ev.OpID]; ok {
				rec.Return = pos
				rec.Resp = ev.Resp
			}
		}
	}
	specs := make(map[int]spec.Op, len(ops))
	for _, oi := range ops {
		specs[oi.ID] = oi.Spec
	}
	h := History{N: n}
	for _, id := range order {
		rec := byID[id]
		rec.Op = specs[id]
		h.Ops = append(h.Ops, *rec)
	}
	return h
}

// FromExecution builds the history of a simulated run.
func FromExecution(exec *sim.Execution) History {
	return FromEvents(exec.Procs, exec.Ops, exec.Events)
}

// Recorder collects a history from a real concurrent run. Timestamps come
// from a global atomic counter bumped inside each operation's interval, so
// the recorded precedence order is a sound sub-order of real time.
type Recorder struct {
	n  int
	mu sync.Mutex
	// clock is protected by mu; a mutex (rather than an atomic) keeps the
	// stamp and the record append in one critical section.
	clock int
	ops   []OpRecord
}

// NewRecorder returns a recorder for n processes.
func NewRecorder(n int) *Recorder {
	return &Recorder{n: n}
}

// Invoke records an invocation and returns the operation's handle.
func (r *Recorder) Invoke(proc int, op spec.Op) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	id := len(r.ops)
	r.ops = append(r.ops, OpRecord{
		ID:     id,
		Proc:   proc,
		Op:     op,
		Invoke: r.clock,
		Return: Pending,
	})
	r.clock++
	return id
}

// Return records the response of the operation with the given handle.
func (r *Recorder) Return(handle int, resp string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ops[handle].Return = r.clock
	r.ops[handle].Resp = resp
	r.clock++
}

// History returns a snapshot of the recorded history.
func (r *Recorder) History() History {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := History{N: r.n, Ops: make([]OpRecord, len(r.ops))}
	copy(out.Ops, r.ops)
	return out
}

// bitset is a small set of op IDs.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) with(i int) bitset {
	out := make(bitset, len(b))
	copy(out, b)
	out[i/64] |= 1 << (i % 64)
	return out
}

func (b bitset) has(i int) bool { return b[i/64]&(1<<(i%64)) != 0 }

func (b bitset) key() string {
	var sb strings.Builder
	for _, w := range b {
		fmt.Fprintf(&sb, "%x.", w)
	}
	return sb.String()
}
