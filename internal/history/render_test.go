package history

import (
	"strings"
	"testing"

	"stronglin/internal/prim"
	"stronglin/internal/sim"
	"stronglin/internal/spec"
)

func TestRenderTimeline(t *testing.T) {
	h := mkHistory(2,
		OpRecord{Proc: 0, Op: spec.MkOp(spec.MethodEnq, 1), Invoke: 0, Return: 2, Resp: "ok"},
		OpRecord{Proc: 1, Op: spec.MkOp(spec.MethodDeq), Invoke: 1, Return: 3, Resp: "1"},
		OpRecord{Proc: 0, Op: spec.MkOp(spec.MethodDeq), Invoke: 4, Return: Pending},
	)
	out := RenderTimeline(h)
	lines := strings.Split(out, "\n")
	if len(lines) != 2 {
		t.Fatalf("want 2 swimlanes, got %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "p0") || !strings.HasPrefix(lines[1], "p1") {
		t.Fatalf("lane order wrong:\n%s", out)
	}
	if !strings.Contains(lines[0], "enq(1)=ok") {
		t.Fatalf("missing completed op label:\n%s", out)
	}
	if !strings.Contains(lines[0], "deq()=?") {
		t.Fatalf("missing pending op label:\n%s", out)
	}
	// The overlapping ops: p1's deq starts before p0's enq returns; check
	// the deq's opening bar is left of the enq's closing bar.
	enqClose := strings.LastIndex(lines[0], "enq(1)=ok") + len("enq(1)=ok")
	deqOpen := strings.Index(lines[1][3:], "|") + 3
	if deqOpen >= enqClose {
		t.Fatalf("overlap not visible: deqOpen=%d enqClose=%d\n%s", deqOpen, enqClose, out)
	}
}

func TestRenderTimelineEmpty(t *testing.T) {
	if out := RenderTimeline(History{N: 2}); out != "(empty history)" {
		t.Fatalf("empty render = %q", out)
	}
}

func TestRenderTree(t *testing.T) {
	setup := func(w *sim.World) []sim.Program {
		r := w.Register("r", 0)
		op := sim.Op{
			Name: "w",
			Spec: spec.MkOp(spec.MethodWrite, 1),
			Run: func(t prim.Thread) string {
				r.Write(t, 1)
				w.MarkLinPoint(t)
				return spec.RespOK
			},
		}
		return []sim.Program{{op}, {op}}
	}
	tree, err := sim.Explore(2, setup, nil)
	if err != nil {
		t.Fatal(err)
	}
	out := RenderTree(tree, 0)
	if !strings.Contains(out, "execution tree:") {
		t.Fatalf("missing header:\n%s", out)
	}
	if !strings.Contains(out, "r.write(1)*") {
		t.Fatalf("lin-point marker missing:\n%s", out)
	}
	// Depth limiting.
	top := RenderTree(tree, 1)
	if strings.Count(top, "\n") >= strings.Count(out, "\n") {
		t.Fatal("maxDepth did not reduce output")
	}
}
