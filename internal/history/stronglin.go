package history

import (
	"fmt"
	"strconv"
	"strings"

	"stronglin/internal/sim"
	"stronglin/internal/spec"
)

// StrongLinResult is the outcome of a strong-linearizability check.
type StrongLinResult struct {
	// Ok reports whether a prefix-closed linearization function exists for
	// the whole execution tree.
	Ok bool
	// Nodes is the number of tree nodes examined.
	Nodes int
	// States is the number of distinct (node, linearization) game positions
	// memoised.
	States int
	// Aborted reports that the search exceeded MaxStates; the verdict is
	// then meaningless.
	Aborted bool
	// Counterexample describes the deepest stuck position when !Ok: a
	// reachable execution prefix and an inherited linearization that cannot
	// be extended consistently into some child.
	Counterexample *SLCounterexample
}

// SLCounterexample pinpoints a failure of strong linearizability.
type SLCounterexample struct {
	// Schedule reaches the stuck node from the root.
	Schedule []int
	// History is the rendered history at the stuck node.
	History string
	// Lin is the inherited linearization that cannot be extended.
	Lin []LinEntry
	// ChildEvents are the events of the unservable child edge.
	ChildEvents []sim.Event
}

func (c *SLCounterexample) String() string {
	parts := make([]string, len(c.Lin))
	for i, e := range c.Lin {
		parts[i] = fmt.Sprintf("#%d=%s", e.OpID, e.Resp)
	}
	evs := make([]string, len(c.ChildEvents))
	for i, e := range c.ChildEvents {
		evs[i] = e.String()
	}
	return fmt.Sprintf("schedule %v, history {%s}, lin [%s], stuck on child events [%s]",
		c.Schedule, c.History, strings.Join(parts, " "), strings.Join(evs, " "))
}

// StrongLinOptions bound the game search.
type StrongLinOptions struct {
	// MaxStates caps memoised game positions (default 4,000,000).
	MaxStates int
}

// CheckStrongLin decides strong linearizability of the implementation whose
// complete execution tree is given, against the specification.
//
// Strong linearizability requires a function L mapping every execution to a
// linearization such that L(prefix) is a prefix of L(extension). On the
// bounded tree this is a game: at every node the checker owns a
// linearization of the node's history; for each child it must extend that
// linearization (appending completed and, possibly, pending operations) into
// a linearization of the child's history, and win recursively. The
// implementation is strongly linearizable on this tree iff the empty
// linearization wins at the root.
//
// The search handles the paper's subtle cases by construction: operations
// linearized at other processes' steps (Theorem 5's test&set losers), and
// operations that must be linearized eagerly while still pending, as soon as
// their return value is determined (Algorithm 2's empty-returning takes).
func CheckStrongLin(tree *sim.Tree, sp spec.Spec, opts *StrongLinOptions) StrongLinResult {
	maxStates := 4000000
	if opts != nil && opts.MaxStates > 0 {
		maxStates = opts.MaxStates
	}
	g := newSLGame(tree, sp, maxStates)
	ok := g.visit(g.root, newLin(sp.Init(tree.Procs)))
	res := StrongLinResult{
		Ok:     ok && !g.aborted,
		Nodes:  g.nodeCount,
		States: len(g.memo),
	}
	if g.aborted {
		res.Aborted = true
		res.Ok = false
		return res
	}
	if !ok {
		res.Counterexample = g.cex
	}
	return res
}

// slNode mirrors the sim tree with preprocessed per-edge deltas.
type slNode struct {
	id       int
	proc     int
	events   []sim.Event
	children []*slNode
	parent   *slNode
	depth    int

	invoked  []int      // op IDs invoked on this edge
	returned []retDelta // ops returned on this edge
}

type retDelta struct {
	opID int
	resp string
}

func (n *slNode) schedule() []int {
	var out []int
	for cur := n; cur.parent != nil; cur = cur.parent {
		out = append(out, cur.proc)
	}
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// linState is an immutable linearization-so-far: the chosen sequence with
// outcome responses, the specification state it induces, and the largest
// invocation timestamp among its members (for O(1) precedence checks).
type linState struct {
	entries   []LinEntry
	state     spec.State
	maxInvoke int
}

func newLin(init spec.State) *linState {
	return &linState{state: init, maxInvoke: -1}
}

func (l *linState) contains(opID int) (string, bool) {
	for _, e := range l.entries {
		if e.OpID == opID {
			return e.Resp, true
		}
	}
	return "", false
}

func (l *linState) append(opID int, out spec.Outcome, invokePos int) *linState {
	entries := make([]LinEntry, len(l.entries)+1)
	copy(entries, l.entries)
	entries[len(l.entries)] = LinEntry{OpID: opID, Resp: out.Resp}
	mi := l.maxInvoke
	if invokePos > mi {
		mi = invokePos
	}
	return &linState{entries: entries, state: out.Next, maxInvoke: mi}
}

func (l *linState) key() string {
	var b strings.Builder
	for _, e := range l.entries {
		b.WriteString(strconv.Itoa(e.OpID))
		b.WriteByte('=')
		b.WriteString(e.Resp)
		b.WriteByte('|')
	}
	b.WriteByte('#')
	b.WriteString(l.state.Key())
	return b.String()
}

type slGame struct {
	tree      *sim.Tree
	sp        spec.Spec
	root      *slNode
	nodeCount int
	numOps    int
	opSpecs   []spec.Op

	// Cumulative history arrays, maintained by apply/undo during the DFS.
	invokePos []int // -1 when not yet invoked
	retPos    []int // -1 when pending
	resps     []string
	pos       int // next event position

	memo      map[string]bool
	maxStates int
	aborted   bool

	cex      *SLCounterexample
	cexDepth int
}

func newSLGame(tree *sim.Tree, sp spec.Spec, maxStates int) *slGame {
	g := &slGame{
		tree:      tree,
		sp:        sp,
		memo:      make(map[string]bool),
		maxStates: maxStates,
		cexDepth:  -1,
	}
	for _, oi := range tree.Ops {
		if oi.ID >= g.numOps {
			g.numOps = oi.ID + 1
		}
	}
	g.opSpecs = make([]spec.Op, g.numOps)
	for _, oi := range tree.Ops {
		g.opSpecs[oi.ID] = oi.Spec
	}
	g.invokePos = make([]int, g.numOps)
	g.retPos = make([]int, g.numOps)
	g.resps = make([]string, g.numOps)
	for i := 0; i < g.numOps; i++ {
		g.invokePos[i] = -1
		g.retPos[i] = -1
	}
	g.root = g.convert(tree.Root, nil)
	return g
}

func (g *slGame) convert(n *sim.Node, parent *slNode) *slNode {
	out := &slNode{id: g.nodeCount, proc: n.Proc, events: n.Events, parent: parent}
	if parent != nil {
		out.depth = parent.depth + 1
	}
	g.nodeCount++
	for _, ev := range n.Events {
		switch ev.Kind {
		case sim.EventInvoke:
			out.invoked = append(out.invoked, ev.OpID)
		case sim.EventReturn:
			out.returned = append(out.returned, retDelta{opID: ev.OpID, resp: ev.Resp})
		}
	}
	for _, c := range n.Children {
		out.children = append(out.children, g.convert(c, out))
	}
	return out
}

func (g *slGame) apply(n *slNode) {
	for _, ev := range n.events {
		switch ev.Kind {
		case sim.EventInvoke:
			g.invokePos[ev.OpID] = g.pos
		case sim.EventReturn:
			g.retPos[ev.OpID] = g.pos
			g.resps[ev.OpID] = ev.Resp
		}
		g.pos++
	}
}

func (g *slGame) undo(n *slNode) {
	for i := len(n.events) - 1; i >= 0; i-- {
		ev := n.events[i]
		g.pos--
		switch ev.Kind {
		case sim.EventInvoke:
			g.invokePos[ev.OpID] = -1
		case sim.EventReturn:
			g.retPos[ev.OpID] = -1
			g.resps[ev.OpID] = ""
		}
	}
}

// visit decides whether linearization l wins at node n. The history arrays
// reflect n on entry.
func (g *slGame) visit(n *slNode, l *linState) bool {
	if g.aborted {
		return false
	}
	key := strconv.Itoa(n.id) + "/" + l.key()
	if v, ok := g.memo[key]; ok {
		return v
	}
	if len(g.memo) >= g.maxStates {
		g.aborted = true
		return false
	}

	ok := true
	for _, c := range n.children {
		g.apply(c)
		served := g.serveChild(c, l)
		g.undo(c)
		if !served {
			ok = false
			break
		}
	}
	g.memo[key] = ok
	return ok
}

// serveChild finds an extension of l valid at child c that wins there. The
// history arrays reflect c on entry.
func (g *slGame) serveChild(c *slNode, l *linState) bool {
	// Operations already linearized (possibly while pending) whose actual
	// response materialised on this edge must match the committed response.
	var need []int
	for _, r := range c.returned {
		if committed, in := l.contains(r.opID); in {
			if committed != r.resp {
				return false
			}
		} else {
			need = append(need, r.opID)
		}
	}
	if g.extend(c, l, need) {
		return true
	}
	if c.depth > g.cexDepth {
		g.cexDepth = c.depth
		g.cex = &SLCounterexample{
			Schedule:    c.parent.schedule(),
			History:     g.renderHistory(c.parent),
			Lin:         append([]LinEntry(nil), l.entries...),
			ChildEvents: c.events,
		}
	}
	return false
}

// extend enumerates extensions of l by operations invoked at c (completed
// ones from need are mandatory; pending ones optional) and recurses into c.
func (g *slGame) extend(c *slNode, l *linState, need []int) bool {
	if g.aborted {
		return false
	}
	if len(need) == 0 && g.visit(c, l) {
		return true
	}
	for opID := 0; opID < g.numOps; opID++ {
		if g.invokePos[opID] < 0 {
			continue // not invoked
		}
		if _, in := l.contains(opID); in {
			continue
		}
		// Real-time order: opID may be appended only if it does not precede
		// any operation already linearized.
		if r := g.retPos[opID]; r >= 0 && r < l.maxInvoke {
			continue
		}
		completed := g.retPos[opID] >= 0
		for _, out := range l.state.Steps(g.opSpecs[opID]) {
			if completed && out.Resp != g.resps[opID] {
				continue
			}
			l2 := l.append(opID, out, g.invokePos[opID])
			if g.extend(c, l2, without(need, opID)) {
				return true
			}
		}
	}
	return false
}

func without(xs []int, x int) []int {
	for i, v := range xs {
		if v == x {
			out := make([]int, 0, len(xs)-1)
			out = append(out, xs[:i]...)
			return append(out, xs[i+1:]...)
		}
	}
	return xs
}

func (g *slGame) renderHistory(n *slNode) string {
	var b strings.Builder
	for id := 0; id < g.numOps; id++ {
		if g.invokePos[id] < 0 {
			continue
		}
		resp := "?"
		if g.retPos[id] >= 0 {
			resp = g.resps[id]
		}
		fmt.Fprintf(&b, "#%d:%v=%s ", id, g.opSpecs[id], resp)
	}
	return strings.TrimSpace(b.String())
}
