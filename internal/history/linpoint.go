package history

import (
	"fmt"

	"stronglin/internal/sim"
	"stronglin/internal/spec"
)

// CertResult is the outcome of a linearization-point certificate check.
type CertResult struct {
	// Ok reports that the certificate establishes strong linearizability on
	// the tree.
	Ok bool
	// Leaves counts the maximal executions checked.
	Leaves int
	// Failure describes the first violation.
	Failure string
}

// CheckLinPointCertificate verifies a linearization-point certificate: the
// implementation marked, on each operation, one of its own base-object steps
// as its linearization point (sim.World.MarkLinPoint). If, on EVERY maximal
// execution of the tree,
//
//   - every completed operation has exactly one marked step,
//   - and replaying the operations in marked-step order through the
//     specification reproduces every completed operation's response,
//
// then the function mapping each execution to its marked-order linearization
// is prefix-closed by construction (marks are own steps, fixed once taken),
// so the implementation is strongly linearizable on the tree.
//
// This check is linear in the tree — it avoids the game search entirely —
// but applies only to constructions with immediate own-step linearization
// points (the fetch&add objects of Theorems 1 and 2; NOT Theorem 5, whose
// losing test&set operations are linearized by another process's step).
// A missing mark on a completed operation fails the certificate even when
// the object is strongly linearizable: see the WithoutNoopFA ablation, where
// no-op WriteMax operations take no step at all.
func CheckLinPointCertificate(tree *sim.Tree, sp spec.Spec) CertResult {
	specs := make(map[int]spec.Op, len(tree.Ops))
	for _, oi := range tree.Ops {
		specs[oi.ID] = oi.Spec
	}
	res := CertResult{Ok: true}
	tree.Walk(func(n *sim.Node, trace []sim.Event) bool {
		if !res.Ok || len(n.Children) > 0 {
			return res.Ok
		}
		res.Leaves++

		var order []int
		marks := make(map[int]int)
		resp := make(map[int]string)
		for _, ev := range trace {
			switch {
			case ev.Kind == sim.EventStep && ev.LinPoint:
				marks[ev.OpID]++
				order = append(order, ev.OpID)
			case ev.Kind == sim.EventReturn:
				resp[ev.OpID] = ev.Resp
			}
		}
		for id, c := range marks {
			if c > 1 {
				res.Ok = false
				res.Failure = fmt.Sprintf("operation #%d marked %d linearization points", id, c)
				return false
			}
		}
		for id := range resp {
			if marks[id] == 0 {
				res.Ok = false
				res.Failure = fmt.Sprintf("completed operation #%d has no linearization point", id)
				return false
			}
		}

		st := sp.Init(tree.Procs)
		for _, id := range order {
			outs := st.Steps(specs[id])
			matched := false
			for _, out := range outs {
				r, completed := resp[id]
				if !completed || out.Resp == r {
					st = out.Next
					matched = true
					break
				}
			}
			if !matched {
				res.Ok = false
				res.Failure = fmt.Sprintf("marked order invalid at #%d (%v): spec offers no outcome matching %q",
					id, specs[id], resp[id])
				return false
			}
		}
		return true
	})
	return res
}
