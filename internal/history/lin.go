package history

import (
	"fmt"

	"stronglin/internal/spec"
)

// LinEntry is one element of a linearization witness.
type LinEntry struct {
	OpID int
	Resp string
}

// LinResult is the outcome of a linearizability check.
type LinResult struct {
	// Ok reports whether the history is linearizable.
	Ok bool
	// Witness is a linearization (op IDs with responses) when Ok.
	Witness []LinEntry
	// States counts distinct search states visited.
	States int
}

// CheckLinearizable decides whether the history linearizes against the
// specification: there is a sequential execution containing every complete
// operation (with its actual response) and some pending ones, respecting the
// history's real-time order.
//
// The search linearizes one minimal operation at a time (an operation is
// minimal if no other unlinearized operation precedes it), branching over
// the specification's outcomes, and memoises failed (linearized-set,
// spec-state) pairs.
func CheckLinearizable(h History, sp spec.Spec) LinResult {
	c := &linChecker{h: h, failed: make(map[string]struct{})}
	for _, o := range h.Ops {
		if o.Complete() {
			c.completed++
		}
	}
	ok, witness := c.search(sp.Init(h.N), newBitset(len(h.Ops)), nil)
	return LinResult{Ok: ok, Witness: witness, States: c.states}
}

type linChecker struct {
	h         History
	completed int
	states    int
	failed    map[string]struct{}
}

func (c *linChecker) search(st spec.State, done bitset, prefix []LinEntry) (bool, []LinEntry) {
	if allCompletedDone(c.h, done) {
		out := make([]LinEntry, len(prefix))
		copy(out, prefix)
		return true, out
	}
	key := done.key() + st.Key()
	if _, bad := c.failed[key]; bad {
		return false, nil
	}
	c.states++

	for i := range c.h.Ops {
		op := c.h.Ops[i]
		if done.has(i) || !c.minimal(i, done) {
			continue
		}
		for _, out := range st.Steps(op.Op) {
			if op.Complete() && out.Resp != op.Resp {
				continue
			}
			if ok, w := c.search(out.Next, done.with(i), append(prefix, LinEntry{OpID: op.ID, Resp: out.Resp})); ok {
				return true, w
			}
		}
	}
	c.failed[key] = struct{}{}
	return false, nil
}

// minimal reports whether no unlinearized operation precedes op i.
func (c *linChecker) minimal(i int, done bitset) bool {
	oi := c.h.Ops[i]
	for j := range c.h.Ops {
		if j == i || done.has(j) {
			continue
		}
		oj := c.h.Ops[j]
		if oj.Complete() && oj.Return < oi.Invoke {
			return false
		}
	}
	return true
}

func allCompletedDone(h History, done bitset) bool {
	for i := range h.Ops {
		if h.Ops[i].Complete() && !done.has(i) {
			return false
		}
	}
	return true
}

// FormatWitness renders a linearization witness.
func FormatWitness(h History, w []LinEntry) string {
	byID := make(map[int]OpRecord, len(h.Ops))
	for _, o := range h.Ops {
		byID[o.ID] = o
	}
	parts := make([]string, len(w))
	for i, e := range w {
		parts[i] = fmt.Sprintf("%v=%s", byID[e.OpID].Op, e.Resp)
	}
	return fmt.Sprintf("%v", parts)
}
