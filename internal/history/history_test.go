package history

import (
	"testing"

	"stronglin/internal/prim"
	"stronglin/internal/sim"
	"stronglin/internal/spec"
)

// mkHistory builds a history from (proc, op, invoke, ret, resp) tuples.
func mkHistory(n int, rows ...OpRecord) History {
	h := History{N: n}
	for i := range rows {
		rows[i].ID = i
		h.Ops = append(h.Ops, rows[i])
	}
	return h
}

func TestLinearizableSequentialQueue(t *testing.T) {
	h := mkHistory(1,
		OpRecord{Proc: 0, Op: spec.MkOp(spec.MethodEnq, 1), Invoke: 0, Return: 1, Resp: "ok"},
		OpRecord{Proc: 0, Op: spec.MkOp(spec.MethodEnq, 2), Invoke: 2, Return: 3, Resp: "ok"},
		OpRecord{Proc: 0, Op: spec.MkOp(spec.MethodDeq), Invoke: 4, Return: 5, Resp: "1"},
	)
	res := CheckLinearizable(h, spec.Queue{})
	if !res.Ok {
		t.Fatalf("sequential FIFO history rejected: %s", h.String())
	}
	if len(res.Witness) != 3 {
		t.Fatalf("witness = %v", res.Witness)
	}
}

func TestNotLinearizableWrongFIFOOrder(t *testing.T) {
	h := mkHistory(1,
		OpRecord{Proc: 0, Op: spec.MkOp(spec.MethodEnq, 1), Invoke: 0, Return: 1, Resp: "ok"},
		OpRecord{Proc: 0, Op: spec.MkOp(spec.MethodEnq, 2), Invoke: 2, Return: 3, Resp: "ok"},
		OpRecord{Proc: 0, Op: spec.MkOp(spec.MethodDeq), Invoke: 4, Return: 5, Resp: "2"},
	)
	if res := CheckLinearizable(h, spec.Queue{}); res.Ok {
		t.Fatal("out-of-order dequeue accepted")
	}
}

func TestLinearizableConcurrentOverlap(t *testing.T) {
	// enq(1) and enq(2) overlap; deq returns 2: legal (linearize enq(2)
	// first).
	h := mkHistory(2,
		OpRecord{Proc: 0, Op: spec.MkOp(spec.MethodEnq, 1), Invoke: 0, Return: 3, Resp: "ok"},
		OpRecord{Proc: 1, Op: spec.MkOp(spec.MethodEnq, 2), Invoke: 1, Return: 2, Resp: "ok"},
		OpRecord{Proc: 1, Op: spec.MkOp(spec.MethodDeq), Invoke: 4, Return: 5, Resp: "2"},
	)
	if res := CheckLinearizable(h, spec.Queue{}); !res.Ok {
		t.Fatal("legal overlapping history rejected")
	}
}

func TestLinearizablePendingEnqueueJustifiesDequeue(t *testing.T) {
	// enq(7) is pending but its effect is visible: deq returned 7. The
	// checker must linearize the pending enqueue.
	h := mkHistory(2,
		OpRecord{Proc: 0, Op: spec.MkOp(spec.MethodEnq, 7), Invoke: 0, Return: Pending},
		OpRecord{Proc: 1, Op: spec.MkOp(spec.MethodDeq), Invoke: 1, Return: 2, Resp: "7"},
	)
	if res := CheckLinearizable(h, spec.Queue{}); !res.Ok {
		t.Fatal("pending-enqueue history rejected")
	}
}

func TestNotLinearizableRealTimeOrderViolated(t *testing.T) {
	// deq returning empty strictly after enq completed: illegal.
	h := mkHistory(2,
		OpRecord{Proc: 0, Op: spec.MkOp(spec.MethodEnq, 7), Invoke: 0, Return: 1, Resp: "ok"},
		OpRecord{Proc: 1, Op: spec.MkOp(spec.MethodDeq), Invoke: 2, Return: 3, Resp: "empty"},
	)
	if res := CheckLinearizable(h, spec.Queue{}); res.Ok {
		t.Fatal("empty dequeue after completed enqueue accepted")
	}
}

func TestLinearizableNondeterministicSpec(t *testing.T) {
	// k-out-of-order queue (k=2) permits dequeuing the second item.
	h := mkHistory(1,
		OpRecord{Proc: 0, Op: spec.MkOp(spec.MethodEnq, 1), Invoke: 0, Return: 1, Resp: "ok"},
		OpRecord{Proc: 0, Op: spec.MkOp(spec.MethodEnq, 2), Invoke: 2, Return: 3, Resp: "ok"},
		OpRecord{Proc: 0, Op: spec.MkOp(spec.MethodDeq), Invoke: 4, Return: 5, Resp: "2"},
	)
	if res := CheckLinearizable(h, spec.OutOfOrderQueue{K: 2}); !res.Ok {
		t.Fatal("2-out-of-order dequeue rejected")
	}
	if res := CheckLinearizable(h, spec.OutOfOrderQueue{K: 1}); res.Ok {
		t.Fatal("1-out-of-order (FIFO) accepted an out-of-order dequeue")
	}
}

func TestLinearizableSnapshotViews(t *testing.T) {
	// update(0,5) concurrent with scan; scan may see either view.
	for _, view := range []string{"[0 0]", "[5 0]"} {
		h := mkHistory(2,
			OpRecord{Proc: 0, Op: spec.MkOp(spec.MethodUpdate, 0, 5), Invoke: 0, Return: 3, Resp: "ok"},
			OpRecord{Proc: 1, Op: spec.MkOp(spec.MethodScan), Invoke: 1, Return: 2, Resp: view},
		)
		if res := CheckLinearizable(h, spec.Snapshot{}); !res.Ok {
			t.Fatalf("concurrent scan view %s rejected", view)
		}
	}
	// A view of a never-written value is illegal.
	h := mkHistory(2,
		OpRecord{Proc: 0, Op: spec.MkOp(spec.MethodUpdate, 0, 5), Invoke: 0, Return: 3, Resp: "ok"},
		OpRecord{Proc: 1, Op: spec.MkOp(spec.MethodScan), Invoke: 1, Return: 2, Resp: "[9 0]"},
	)
	if res := CheckLinearizable(h, spec.Snapshot{}); res.Ok {
		t.Fatal("phantom view accepted")
	}
}

func TestRecorderProducesCheckableHistory(t *testing.T) {
	r := NewRecorder(2)
	h1 := r.Invoke(0, spec.MkOp(spec.MethodEnq, 1))
	r.Return(h1, "ok")
	h2 := r.Invoke(1, spec.MkOp(spec.MethodDeq))
	r.Return(h2, "1")
	h := r.History()
	if len(h.Ops) != 2 {
		t.Fatalf("ops = %d", len(h.Ops))
	}
	if !h.Precedes(h.Ops[0], h.Ops[1]) {
		t.Fatal("recorder lost real-time order")
	}
	if res := CheckLinearizable(h, spec.Queue{}); !res.Ok {
		t.Fatal("recorded history rejected")
	}
}

func TestFromExecution(t *testing.T) {
	exec, err := sim.Run(2, regSetup, []int{0, 0, 0, 0, 1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	h := FromExecution(exec)
	if len(h.Ops) != 4 {
		t.Fatalf("ops = %d, want 4", len(h.Ops))
	}
	for _, o := range h.Ops {
		if !o.Complete() {
			t.Fatalf("op %d incomplete in complete execution", o.ID)
		}
	}
	// p0's two ops are sequential.
	if !h.Precedes(h.Ops[0], h.Ops[1]) {
		t.Fatal("program order lost")
	}
}

func regSetup(w *sim.World) []sim.Program {
	r := w.Register("r", 0)
	read := sim.Op{
		Name: "read",
		Spec: spec.MkOp(spec.MethodRead),
		Run:  func(t prim.Thread) string { return spec.RespInt(r.Read(t)) },
	}
	write := sim.Op{
		Name: "write",
		Spec: spec.MkOp("write", 1),
		Run: func(t prim.Thread) string {
			r.Write(t, 1)
			return spec.RespOK
		},
	}
	return []sim.Program{{write, read}, {write, read}}
}
