package history

import (
	"fmt"
	"sync"

	"stronglin/internal/prim"
	"stronglin/internal/sim"
	"stronglin/internal/spec"
)

// Verdict is the combined result of verifying one bounded configuration.
type Verdict struct {
	// Linearizable reports that every complete execution (leaf history) of
	// the tree is linearizable.
	Linearizable bool
	// LinViolation is a failing leaf history when !Linearizable.
	LinViolation string
	// StrongLin is the game checker's result on the full tree.
	StrongLin StrongLinResult
	// Nodes and Leaves describe the explored tree.
	Nodes, Leaves int
}

// OK reports whether the configuration is both linearizable and strongly
// linearizable.
func (v Verdict) OK() bool { return v.Linearizable && v.StrongLin.Ok }

// Verify explores every interleaving of the configuration and checks (a)
// linearizability of every complete execution and (b) strong linearizability
// of the whole tree. It is the workhorse behind the per-theorem experiments:
// the paper's positive results must yield OK verdicts, the cited
// linearizable-but-not-strongly-linearizable baselines must yield
// Linearizable && !StrongLin.Ok.
func Verify(procs int, setup sim.Setup, sp spec.Spec, eOpts *sim.ExploreOptions, slOpts *StrongLinOptions) (Verdict, error) {
	tree, err := sim.Explore(procs, setup, eOpts)
	if err != nil {
		return Verdict{}, err
	}
	if tree.Truncated {
		return Verdict{}, fmt.Errorf("history: execution tree truncated (%d nodes); shrink the configuration", tree.Nodes)
	}
	v := Verdict{Linearizable: true, Nodes: tree.Nodes, Leaves: tree.Leaves}
	tree.Walk(func(n *sim.Node, trace []sim.Event) bool {
		if !v.Linearizable {
			return false
		}
		if len(n.Children) == 0 {
			h := FromEvents(tree.Procs, tree.Ops, trace)
			if res := CheckLinearizable(h, sp); !res.Ok {
				v.Linearizable = false
				v.LinViolation = h.String()
			}
		}
		return true
	})
	v.StrongLin = CheckStrongLin(tree, sp, slOpts)
	if v.StrongLin.Aborted {
		return v, fmt.Errorf("history: strong-linearizability search aborted after %d states; shrink the configuration", v.StrongLin.States)
	}
	return v, nil
}

// StressOp is one operation issued by the real-world stress harness.
type StressOp struct {
	Op  spec.Op
	Run func(t prim.Thread) string
}

// StressConfig drives a construction under genuine goroutine concurrency and
// checks the recorded history for linearizability.
type StressConfig struct {
	// Procs is the number of concurrent worker goroutines.
	Procs int
	// OpsPerProc is the number of operations each worker issues.
	OpsPerProc int
	// Gen returns the i-th operation of worker proc.
	Gen func(proc, i int) StressOp
}

// Stress runs the workload and returns the recorded history.
func Stress(cfg StressConfig) History {
	rec := NewRecorder(cfg.Procs)
	var wg sync.WaitGroup
	for p := 0; p < cfg.Procs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			th := prim.RealThread(p)
			for i := 0; i < cfg.OpsPerProc; i++ {
				op := cfg.Gen(p, i)
				h := rec.Invoke(p, op.Op)
				resp := op.Run(th)
				rec.Return(h, resp)
			}
		}(p)
	}
	wg.Wait()
	return rec.History()
}
