package history

import (
	"testing"

	"stronglin/internal/prim"
	"stronglin/internal/sim"
	"stronglin/internal/spec"
)

// markedRegisterSetup builds an atomic register whose ops mark their single
// step as the linearization point.
func markedRegisterSetup(mark bool) sim.Setup {
	return func(w *sim.World) []sim.Program {
		r := w.Register("r", 0)
		wr := func(v int64) sim.Op {
			return sim.Op{
				Name: "write",
				Spec: spec.MkOp(spec.MethodWrite, v),
				Run: func(t prim.Thread) string {
					r.Write(t, v)
					if mark {
						w.MarkLinPoint(t)
					}
					return spec.RespOK
				},
			}
		}
		rd := sim.Op{
			Name: "read",
			Spec: spec.MkOp(spec.MethodRead),
			Run: func(t prim.Thread) string {
				v := r.Read(t)
				if mark {
					w.MarkLinPoint(t)
				}
				return spec.RespInt(v)
			},
		}
		return []sim.Program{{wr(1), rd}, {wr(2), rd}}
	}
}

func TestCertificateAcceptsMarkedAtomicRegister(t *testing.T) {
	tree, err := sim.Explore(2, markedRegisterSetup(true), nil)
	if err != nil {
		t.Fatal(err)
	}
	res := CheckLinPointCertificate(tree, spec.RWRegister{})
	if !res.Ok {
		t.Fatalf("certificate rejected: %s", res.Failure)
	}
	if res.Leaves != 70 {
		t.Fatalf("leaves = %d, want 70", res.Leaves)
	}
}

func TestCertificateRequiresMarks(t *testing.T) {
	tree, err := sim.Explore(2, markedRegisterSetup(false), nil)
	if err != nil {
		t.Fatal(err)
	}
	res := CheckLinPointCertificate(tree, spec.RWRegister{})
	if res.Ok {
		t.Fatal("certificate accepted unmarked operations")
	}
}

// A deliberately WRONG mark (the read marks a step but reports a stale
// value) must fail the certificate.
func TestCertificateRejectsInvalidOrder(t *testing.T) {
	setup := func(w *sim.World) []sim.Program {
		r := w.Register("r", 0)
		wr := sim.Op{
			Name: "write",
			Spec: spec.MkOp(spec.MethodWrite, 1),
			Run: func(t prim.Thread) string {
				r.Write(t, 1)
				w.MarkLinPoint(t)
				return spec.RespOK
			},
		}
		badRead := sim.Op{
			Name: "read",
			Spec: spec.MkOp(spec.MethodRead),
			Run: func(t prim.Thread) string {
				first := r.Read(t)
				r.Read(t) // second read is marked, but the FIRST value is returned
				w.MarkLinPoint(t)
				return spec.RespInt(first)
			},
		}
		return []sim.Program{{wr}, {badRead}}
	}
	tree, err := sim.Explore(2, setup, nil)
	if err != nil {
		t.Fatal(err)
	}
	res := CheckLinPointCertificate(tree, spec.RWRegister{})
	if res.Ok {
		t.Fatal("certificate accepted a stale-read linearization point")
	}
}

func TestCertificateRejectsDoubleMark(t *testing.T) {
	setup := func(w *sim.World) []sim.Program {
		r := w.Register("r", 0)
		op := sim.Op{
			Name: "read",
			Spec: spec.MkOp(spec.MethodRead),
			Run: func(t prim.Thread) string {
				r.Read(t)
				w.MarkLinPoint(t)
				v := r.Read(t)
				w.MarkLinPoint(t)
				return spec.RespInt(v)
			},
		}
		return []sim.Program{{op}}
	}
	tree, err := sim.Explore(1, setup, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res := CheckLinPointCertificate(tree, spec.RWRegister{}); res.Ok {
		t.Fatal("certificate accepted two linearization points on one op")
	}
}
