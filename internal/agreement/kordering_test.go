package agreement

import (
	"errors"
	"testing"

	"stronglin/internal/spec"
)

// E-D11: the Section 5 examples really are k-ordering objects — validated
// exhaustively over bounded sequential executions, including every
// nondeterministic outcome resolution of the relaxed variants.
func TestKOrderingDescriptorsSatisfyDefinition11(t *testing.T) {
	descriptors := []Descriptor{
		QueueDescriptor(2),
		QueueDescriptor(3),
		StackDescriptor(2),
		StackDescriptor(3),
		MultiplicityQueueDescriptor(3),
		MultiplicityStackDescriptor(3),
		StutteringQueueDescriptor(2, 1),
		StutteringQueueDescriptor(3, 1),
		StutteringStackDescriptor(2, 1),
		OutOfOrderQueueDescriptor(3, 1),
		ReadableTASDescriptor(),
	}
	for _, d := range descriptors {
		d := d
		t.Run(d.Name+"/n="+itoa(d.N), func(t *testing.T) {
			if err := ValidateDefinition11(d); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func itoa(n int) string { return string(rune('0' + n)) }

// The k window is tight: a 2-out-of-order queue is NOT 1-ordering (two
// distinct winners are reachable), so the validator must reject the
// descriptor with K forced to 1.
func TestOutOfOrderQueueWindowIsTight(t *testing.T) {
	d := OutOfOrderQueueDescriptor(3, 2)
	d.K = 1
	err := ValidateDefinition11(d)
	if err == nil {
		t.Fatal("2-out-of-order queue accepted as 1-ordering")
	}
	var verr *ValidationError
	if !errors.As(err, &verr) {
		t.Fatalf("unexpected error type %T: %v", err, err)
	}
}

// E-D11 discrepancy (reproduction finding): the paper claims k-out-of-order
// queues are k-ordering with S_α = "the first k enqueues in α". For k = 2
// and n = 3 the validator refutes this: from the prefix α = [enq(1)],
// continuations [enq(1) enq(2) enq(3)] and [enq(1) enq(3) enq(2)] place
// different processes in the 2-window, so decisions {0,1,2} — three
// distinct winners — are all reachable, and NO two-element S_α covers them.
// The example (and hence Theorem 19's instantiation for these objects with
// k >= 2) needs a prefix with at least k linearized enqueues, which
// Definition 11 does not guarantee. The k = 1 case (the FIFO queue) is
// unaffected and validated above.
func TestOutOfOrderQueueK2NotKOrderingAsStated(t *testing.T) {
	d := OutOfOrderQueueDescriptor(3, 2)
	err := ValidateDefinition11(d)
	if err == nil {
		t.Fatal("2-out-of-order queue with n=3 validated; expected the S_α coverage gap to surface")
	}
	var verr *ValidationError
	if !errors.As(err, &verr) {
		t.Fatalf("unexpected error type %T: %v", err, err)
	}
	t.Logf("pinned discrepancy: %v", err)
}

// E-D11 discrepancy: with the footnote-4 stuttering semantics, the paper's
// decision-sequence length n(m+1)+1 for the m-stuttering stack does not
// guarantee the stack drains: a resolution that alternates stuttering and
// effectful pops leaves items unpopped, no ε is observed, and d returns a
// non-bottom item. Our descriptor uses n(m+1)(m+1)+1 pops, which the main
// test above validates; this test pins the discrepancy.
func TestStutteringStackPaperLengthInsufficient(t *testing.T) {
	d := StutteringStackPaperDescriptor(2, 1)
	err := ValidateDefinition11(d)
	if err == nil {
		t.Skip("paper-length decision sequence validated; the favourable-resolution reading suffices")
	}
	t.Logf("pinned discrepancy: %v", err)
}

func TestQueueDescriptorShape(t *testing.T) {
	d := QueueDescriptor(3)
	if got := d.Prop(1); len(got) != 1 || !got[0].Equal(spec.MkOp(spec.MethodEnq, 2)) {
		t.Fatalf("prop_1 = %v", got)
	}
	if got := d.Dec(1); len(got) != 1 || got[0].Method != spec.MethodDeq {
		t.Fatalf("dec_1 = %v", got)
	}
	if got := d.D(1, []string{"ok", "3"}); got != 2 {
		t.Fatalf("d(1, OK·3) = %d, want 2", got)
	}
}

func TestStackDescriptorShape(t *testing.T) {
	d := StackDescriptor(3)
	if got := len(d.Dec(0)); got != 4 {
		t.Fatalf("stack dec length = %d, want n+1 = 4", got)
	}
	// d is the last non-empty response.
	if got := d.D(0, []string{"ok", "3", "1", spec.RespEmpty, spec.RespEmpty}); got != 0 {
		t.Fatalf("d = %d, want 0", got)
	}
}

func TestLastNonEmpty(t *testing.T) {
	if got := lastNonEmpty([]string{"ok", "2", "empty", "empty"}); got != "2" {
		t.Fatalf("lastNonEmpty = %q", got)
	}
	if got := lastNonEmpty([]string{"empty"}); got != "" {
		t.Fatalf("lastNonEmpty on all-empty = %q", got)
	}
}

func TestReadableTASDescriptorDecision(t *testing.T) {
	d := ReadableTASDescriptor()
	if got := d.D(0, []string{"0", "1"}); got != 0 {
		t.Fatalf("winner decoding: got %d, want 0", got)
	}
	if got := d.D(1, []string{"1", "1"}); got != 0 {
		t.Fatalf("loser decoding: got %d, want 0", got)
	}
}
