package agreement

import (
	"math/rand"
	"testing"

	"stronglin/internal/prim"
	"stronglin/internal/sim"
	"stronglin/internal/spec"
)

func randNew(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// consensusOutcomes explores every interleaving of the protocol and returns
// the set of decision vectors.
func consensusOutcomes(t *testing.T, procs int, setup sim.Setup) map[string]bool {
	t.Helper()
	tree, err := sim.Explore(procs, setup, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Truncated {
		t.Fatal("tree truncated")
	}
	out := make(map[string]bool)
	tree.Walk(func(n *sim.Node, trace []sim.Event) bool {
		if len(n.Children) == 0 {
			key := ""
			for _, ev := range trace {
				if ev.Kind == sim.EventReturn {
					key += ev.Resp + ","
				}
			}
			out[key] = true
		}
		return true
	})
	return out
}

// Test&set solves 2-process consensus — in EVERY interleaving both processes
// decide the same proposed value (the consensus-number-2 lower bound the
// whole paper builds on).
func TestTAS2ConsensusExhaustive(t *testing.T) {
	setup := func(w *sim.World) []sim.Program {
		c := NewTAS2Consensus(w, "c", 0, 1)
		mk := func(slot int, v int64) sim.Op {
			return sim.Op{
				Name: "propose",
				Spec: spec.MkOp("propose", v),
				Run:  func(t prim.Thread) string { return spec.RespInt(c.Propose(t, slot, v)) },
			}
		}
		return []sim.Program{{mk(0, 10)}, {mk(1, 20)}}
	}
	for outcome := range consensusOutcomes(t, 2, setup) {
		if outcome != "10,10," && outcome != "20,20," {
			t.Fatalf("non-consensus outcome %q", outcome)
		}
	}
}

// Compare&swap solves consensus for any number of processes (universal
// primitive); checked exhaustively for 2 processes and on random schedules
// for 3 (the full 3-process tree exceeds practical bounds).
func TestCASConsensusExhaustiveTwoProcs(t *testing.T) {
	setup := func(w *sim.World) []sim.Program {
		c := NewCASConsensus(w, "c", 2)
		mk := func(v int64) sim.Op {
			return sim.Op{
				Name: "propose",
				Spec: spec.MkOp("propose", v),
				Run:  func(t prim.Thread) string { return spec.RespInt(c.Propose(t, v)) },
			}
		}
		return []sim.Program{{mk(10)}, {mk(20)}}
	}
	for outcome := range consensusOutcomes(t, 2, setup) {
		if outcome != "10,10," && outcome != "20,20," {
			t.Fatalf("non-consensus outcome %q", outcome)
		}
	}
}

func TestCASConsensusRandomThreeProcs(t *testing.T) {
	setup := func(w *sim.World) []sim.Program {
		c := NewCASConsensus(w, "c", 3)
		mk := func(v int64) sim.Op {
			return sim.Op{
				Name: "propose",
				Spec: spec.MkOp("propose", v),
				Run:  func(t prim.Thread) string { return spec.RespInt(c.Propose(t, v)) },
			}
		}
		return []sim.Program{{mk(10)}, {mk(20)}, {mk(30)}}
	}
	for seed := int64(0); seed < 300; seed++ {
		exec, err := sim.RunToCompletion(3, setup, sim.RandomPolicy(randNew(seed)), 10000)
		if err != nil {
			t.Fatal(err)
		}
		resps := exec.Responses()
		if resps[0] != resps[1] || resps[1] != resps[2] {
			t.Fatalf("seed %d: non-consensus outcome %v", seed, resps)
		}
	}
}

// A naive register-only "protocol" (decide the last write you see) must
// fail exhaustive checking — the checker is not vacuous.
func TestNaiveRegisterProtocolFailsConsensus(t *testing.T) {
	setup := func(w *sim.World) []sim.Program {
		r := w.Register("r", -1)
		mk := func(v int64) sim.Op {
			return sim.Op{
				Name: "propose",
				Spec: spec.MkOp("propose", v),
				Run: func(t prim.Thread) string {
					if cur := r.Read(t); cur != -1 {
						return spec.RespInt(cur)
					}
					r.Write(t, v)
					return spec.RespInt(v)
				},
			}
		}
		return []sim.Program{{mk(10)}, {mk(20)}}
	}
	bad := false
	for outcome := range consensusOutcomes(t, 2, setup) {
		if outcome != "10,10," && outcome != "20,20," {
			bad = true
		}
	}
	if !bad {
		t.Fatal("naive register protocol passed exhaustive consensus checking")
	}
}

func TestTAS2ConsensusSolo(t *testing.T) {
	w := sim.NewSoloWorld()
	c := NewTAS2Consensus(w, "c", 0, 1)
	if got := c.Propose(sim.SoloThread(0), 0, 5); got != 5 {
		t.Fatalf("solo propose = %d, want 5", got)
	}
	if got := c.Propose(sim.SoloThread(1), 1, 9); got != 5 {
		t.Fatalf("late propose = %d, want 5", got)
	}
}

func TestCASConsensusSolo(t *testing.T) {
	w := sim.NewSoloWorld()
	c := NewCASConsensus(w, "c", 3)
	if got := c.Propose(sim.SoloThread(2), 7); got != 7 {
		t.Fatalf("solo propose = %d, want 7", got)
	}
	if got := c.Propose(sim.SoloThread(0), 1); got != 7 {
		t.Fatalf("late propose = %d, want 7", got)
	}
}
