package agreement

import (
	"fmt"
	"math/big"
	"sort"
	"strconv"

	"stronglin/internal/prim"
	"stronglin/internal/sim"
	"stronglin/internal/spec"
)

// Object is an implementation of a high-level object, generic over the
// operations it supports.
type Object interface {
	Apply(t prim.Thread, op spec.Op) string
}

// Impl builds an implementation inside a world. Build must allocate every
// base object the implementation can touch in the bounded executions under
// test (pre-allocating arrays), so that the reduction's base-object set R is
// fixed — Lemma 12's "R is finite as there are finitely many such
// executions".
type Impl struct {
	Name  string
	Build func(w prim.World, n int) Object
}

// ReductionResult is the outcome of one execution of Algorithm B.
type ReductionResult struct {
	// Decisions[i] is process i's decision (an input value), or nil if the
	// run was cut off before i decided.
	Decisions []*int64
	// Winners[i] is the process index i decided for, or -1.
	Winners []int
	Steps   int
}

// Distinct returns the number of distinct decision values among processes
// that decided.
func (r *ReductionResult) Distinct() int {
	seen := make(map[int64]bool)
	for _, d := range r.Decisions {
		if d != nil {
			seen[*d] = true
		}
	}
	return len(seen)
}

// Decided reports whether every process decided.
func (r *ReductionResult) Decided() bool {
	for _, d := range r.Decisions {
		if d == nil {
			return false
		}
	}
	return true
}

// RunReduction executes Algorithm B of Lemma 12: n processes solve k-set
// agreement using a single instance of the implementation (assumed
// lock-free; the agreement bound holds iff the implementation is strongly
// linearizable, which is exactly what the experiments demonstrate).
//
// Process i with input x_i:
//
//  1. writes M[i] = x_i;
//  2. executes its proposal sequence prop_i on the implementation, writing
//     T[i] = ++t before every base-object step (the implementation runs in
//     an instrumented world that interposes the T-write);
//  3. repeatedly double-collects T around a collect of the implementation's
//     base objects R until T is stable — the collected states are then a
//     snapshot of R in a possible execution (Claim 13);
//  4. locally simulates its decision sequence dec_i on a forked copy of R;
//  5. decides M[d(i, responses)].
//
// The run is driven by policy for at most maxSteps scheduler grants;
// processes cut off before deciding have nil decisions.
func RunReduction(desc Descriptor, impl Impl, inputs []int64, policy sim.Policy, maxSteps int) (*ReductionResult, error) {
	n := desc.N
	if len(inputs) != n {
		return nil, fmt.Errorf("agreement: %d inputs for %d processes", len(inputs), n)
	}

	res := &ReductionResult{
		Decisions: make([]*int64, n),
		Winners:   make([]int, n),
	}
	for i := range res.Winners {
		res.Winners[i] = -1
	}

	setup := func(w *sim.World) []sim.Program {
		m := make([]prim.Register, n)
		tArr := make([]prim.Register, n)
		for i := 0; i < n; i++ {
			m[i] = w.Register("B.M["+strconv.Itoa(i)+"]", -1)
			tArr[i] = w.Register("B.T["+strconv.Itoa(i)+"]", 0)
		}
		iw := &instrumentedWorld{inner: w, t: tArr, counters: make([]int64, n)}
		obj := impl.Build(iw, n)
		baseObjects := iw.names // fixed after Build (pre-allocated)

		progs := make([]sim.Program, n)
		for i := 0; i < n; i++ {
			i := i
			progs[i] = sim.Program{{
				Name: fmt.Sprintf("decide(%d)", inputs[i]),
				Spec: spec.MkOp("decide", inputs[i]),
				Run: func(t prim.Thread) string {
					// Step 2: write the input.
					m[i].Write(t, inputs[i])
					// Step 3: proposals (instrumented).
					var resps []string
					for _, op := range desc.Prop(i) {
						resps = append(resps, obj.Apply(t, op))
					}
					// Steps 4-5: double collect until stable.
					var states map[string]sim.ObjState
					for {
						t1 := collectT(t, tArr)
						states = collectR(w, t, baseObjects)
						t2 := collectT(t, tArr)
						if equalInts(t1, t2) {
							break
						}
					}
					// Step 6: fork and simulate the decision sequence.
					// B's own registers are absent from the fork; only the
					// implementation is rebuilt.
					w2 := sim.NewSoloWorld()
					obj2 := impl.Build(w2, n)
					w2.LoadStates(states)
					for _, op := range desc.Dec(i) {
						resps = append(resps, obj2.Apply(sim.SoloThread(i), op))
					}
					// Step 7: decide.
					ell := desc.D(i, resps)
					if ell < 0 || ell >= n {
						return "invalid:" + strconv.Itoa(ell)
					}
					v := m[ell].Read(t)
					res.Winners[i] = ell
					res.Decisions[i] = &v
					return spec.RespInt(v)
				},
			}}
		}
		return progs
	}

	exec, err := sim.RunToCompletion(n, setup, policy, maxSteps)
	if err != nil {
		return nil, err
	}
	res.Steps = len(exec.Schedule)
	return res, nil
}

func collectT(t prim.Thread, tArr []prim.Register) []int64 {
	out := make([]int64, len(tArr))
	for j, r := range tArr {
		out[j] = r.Read(t)
	}
	return out
}

func collectR(w *sim.World, t prim.Thread, names []string) map[string]sim.ObjState {
	out := make(map[string]sim.ObjState, len(names))
	for _, name := range names {
		out[name] = w.ReadObject(t, name)
	}
	return out
}

func equalInts(a, b []int64) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// instrumentedWorld wraps every base object so that each operation by
// process i is preceded by a write of i's step counter to T[i] (step 3 of
// Algorithm B). It records the names of the implementation's base objects.
type instrumentedWorld struct {
	inner    prim.World
	t        []prim.Register
	counters []int64
	names    []string
}

var _ prim.World = (*instrumentedWorld)(nil)

func (iw *instrumentedWorld) tick(t prim.Thread) {
	i := t.ID()
	iw.counters[i]++
	iw.t[i].Write(t, iw.counters[i])
}

func (iw *instrumentedWorld) record(name string) {
	iw.names = append(iw.names, name)
	sort.Strings(iw.names)
}

func (iw *instrumentedWorld) Register(name string, init int64) prim.Register {
	iw.record(name)
	return &instrReg{iw: iw, inner: iw.inner.Register(name, init)}
}

func (iw *instrumentedWorld) AnyRegister(name string, init any) prim.AnyRegister {
	iw.record(name)
	return &instrAnyReg{iw: iw, inner: iw.inner.AnyRegister(name, init)}
}

func (iw *instrumentedWorld) TAS(name string) prim.ReadableTAS {
	iw.record(name)
	return &instrTAS{iw: iw, inner: iw.inner.TAS(name)}
}

func (iw *instrumentedWorld) TAS2(name string, p, q int) prim.ReadableTAS {
	iw.record(name)
	return &instrTAS{iw: iw, inner: iw.inner.TAS2(name, p, q)}
}

func (iw *instrumentedWorld) FetchAdd(name string) prim.FetchAdd {
	iw.record(name)
	return &instrFA{iw: iw, inner: iw.inner.FetchAdd(name)}
}

func (iw *instrumentedWorld) FetchAddInt(name string, init int64) prim.FetchAddInt {
	iw.record(name)
	return &instrFAI{iw: iw, inner: iw.inner.FetchAddInt(name, init)}
}

func (iw *instrumentedWorld) MaxReg(name string, init int64) prim.MaxReg {
	iw.record(name)
	return &instrMaxReg{iw: iw, inner: iw.inner.MaxReg(name, init)}
}

func (iw *instrumentedWorld) Swap(name string, init int64) prim.ReadableSwap {
	iw.record(name)
	return &instrSwap{iw: iw, inner: iw.inner.Swap(name, init)}
}

func (iw *instrumentedWorld) CAS(name string, init int64) prim.CAS {
	iw.record(name)
	return &instrCAS{iw: iw, inner: iw.inner.CAS(name, init)}
}

func (iw *instrumentedWorld) CASCell(name string, init any) prim.CASCell {
	iw.record(name)
	return &instrCASCell{iw: iw, inner: iw.inner.CASCell(name, init)}
}

type instrReg struct {
	iw    *instrumentedWorld
	inner prim.Register
}

func (r *instrReg) Read(t prim.Thread) int64 {
	r.iw.tick(t)
	return r.inner.Read(t)
}

func (r *instrReg) Write(t prim.Thread, v int64) {
	r.iw.tick(t)
	r.inner.Write(t, v)
}

type instrAnyReg struct {
	iw    *instrumentedWorld
	inner prim.AnyRegister
}

func (r *instrAnyReg) ReadAny(t prim.Thread) any {
	r.iw.tick(t)
	return r.inner.ReadAny(t)
}

func (r *instrAnyReg) WriteAny(t prim.Thread, v any) {
	r.iw.tick(t)
	r.inner.WriteAny(t, v)
}

type instrTAS struct {
	iw    *instrumentedWorld
	inner prim.ReadableTAS
}

func (r *instrTAS) TestAndSet(t prim.Thread) int64 {
	r.iw.tick(t)
	return r.inner.TestAndSet(t)
}

func (r *instrTAS) Read(t prim.Thread) int64 {
	r.iw.tick(t)
	return r.inner.Read(t)
}

type instrFA struct {
	iw    *instrumentedWorld
	inner prim.FetchAdd
}

func (r *instrFA) FetchAdd(t prim.Thread, delta *big.Int) *big.Int {
	r.iw.tick(t)
	return r.inner.FetchAdd(t, delta)
}

type instrFAI struct {
	iw    *instrumentedWorld
	inner prim.FetchAddInt
}

func (r *instrFAI) FetchAddInt(t prim.Thread, delta int64) int64 {
	r.iw.tick(t)
	return r.inner.FetchAddInt(t, delta)
}

type instrMaxReg struct {
	iw    *instrumentedWorld
	inner prim.MaxReg
}

func (r *instrMaxReg) WriteMax(t prim.Thread, v int64) {
	r.iw.tick(t)
	r.inner.WriteMax(t, v)
}

func (r *instrMaxReg) ReadMax(t prim.Thread) int64 {
	r.iw.tick(t)
	return r.inner.ReadMax(t)
}

type instrSwap struct {
	iw    *instrumentedWorld
	inner prim.ReadableSwap
}

func (r *instrSwap) Swap(t prim.Thread, v int64) int64 {
	r.iw.tick(t)
	return r.inner.Swap(t, v)
}

func (r *instrSwap) Read(t prim.Thread) int64 {
	r.iw.tick(t)
	return r.inner.Read(t)
}

type instrCAS struct {
	iw    *instrumentedWorld
	inner prim.CAS
}

func (r *instrCAS) Read(t prim.Thread) int64 {
	r.iw.tick(t)
	return r.inner.Read(t)
}

func (r *instrCAS) CompareAndSwap(t prim.Thread, old, new int64) bool {
	r.iw.tick(t)
	return r.inner.CompareAndSwap(t, old, new)
}

type instrCASCell struct {
	iw    *instrumentedWorld
	inner prim.CASCell
}

func (r *instrCASCell) Load(t prim.Thread) any {
	r.iw.tick(t)
	return r.inner.Load(t)
}

func (r *instrCASCell) CompareAndSwap(t prim.Thread, old, new any) bool {
	r.iw.tick(t)
	return r.inner.CompareAndSwap(t, old, new)
}
