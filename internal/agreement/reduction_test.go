package agreement

import (
	"math/rand"
	"testing"

	"stronglin/internal/baseline"
	"stronglin/internal/core"
	"stronglin/internal/prim"
	"stronglin/internal/sim"
	"stronglin/internal/spec"
)

// casQueueImpl is the strongly-linearizable queue (CAS universal object).
func casQueueImpl() Impl {
	return Impl{
		Name: "cas-queue",
		Build: func(w prim.World, n int) Object {
			return baseline.NewCASQueue(w, "A", n)
		},
	}
}

// hwQueueImpl is the linearizable-but-not-strongly-linearizable
// Herlihy–Wing queue.
func hwQueueImpl(capacity int) Impl {
	return Impl{
		Name: "hw-queue",
		Build: func(w prim.World, n int) Object {
			return baseline.NewHWQueue(w, "A", capacity)
		},
	}
}

// tasAdapter exposes the Theorem 5 readable test&set as a generic object.
type tasAdapter struct{ r *core.ReadableTAS }

func (a tasAdapter) Apply(t prim.Thread, op spec.Op) string {
	switch op.Method {
	case spec.MethodTAS:
		return spec.RespInt(a.r.TestAndSet(t))
	case spec.MethodRead:
		return spec.RespInt(a.r.Read(t))
	default:
		panic("tasAdapter: unsupported op " + op.Method)
	}
}

func readableTASImpl() Impl {
	return Impl{
		Name: "readable-tas",
		Build: func(w prim.World, n int) Object {
			return tasAdapter{r: core.NewReadableTAS(w, "A")}
		},
	}
}

// E-L12a: Algorithm B over a strongly-linearizable queue solves consensus
// among 3 processes — in EVERY schedule tried, all processes decide the same
// proposed value.
func TestReductionConsensusOverSLQueue(t *testing.T) {
	desc := QueueDescriptor(3)
	inputs := []int64{100, 200, 300}
	for seed := int64(0); seed < 150; seed++ {
		rng := rand.New(rand.NewSource(seed))
		res, err := RunReduction(desc, casQueueImpl(), inputs, sim.RandomPolicy(rng), 200000)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !res.Decided() {
			t.Fatalf("seed %d: not all processes decided (steps=%d)", seed, res.Steps)
		}
		if got := res.Distinct(); got != 1 {
			t.Fatalf("seed %d: agreement violated: decisions %v", seed, render(res))
		}
		// Validity: the decision is a proposed value.
		valid := map[int64]bool{100: true, 200: true, 300: true}
		for i, d := range res.Decisions {
			if !valid[*d] {
				t.Fatalf("seed %d: process %d decided non-input %d", seed, i, *d)
			}
		}
	}
}

// E-L12b: the same over the strongly-linearizable stack.
func TestReductionConsensusOverSLStack(t *testing.T) {
	desc := StackDescriptor(3)
	impl := Impl{
		Name: "cas-stack",
		Build: func(w prim.World, n int) Object {
			return baseline.NewCASStack(w, "A", n)
		},
	}
	inputs := []int64{7, 8, 9}
	for seed := int64(0); seed < 80; seed++ {
		rng := rand.New(rand.NewSource(seed))
		res, err := RunReduction(desc, impl, inputs, sim.RandomPolicy(rng), 200000)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !res.Decided() || res.Distinct() != 1 {
			t.Fatalf("seed %d: decisions %v", seed, render(res))
		}
	}
}

// E-L12c: Algorithm B over Theorem 5's readable test&set solves 2-process
// consensus (test&set has consensus number 2, and the implementation is
// strongly linearizable).
func TestReductionConsensusOverReadableTAS(t *testing.T) {
	desc := ReadableTASDescriptor()
	inputs := []int64{41, 42}
	for seed := int64(0); seed < 150; seed++ {
		rng := rand.New(rand.NewSource(seed))
		res, err := RunReduction(desc, readableTASImpl(), inputs, sim.RandomPolicy(rng), 100000)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !res.Decided() || res.Distinct() != 1 {
			t.Fatalf("seed %d: decisions %v", seed, render(res))
		}
	}
}

// E-T17b: over the merely-linearizable Herlihy–Wing queue, Algorithm B
// violates agreement in reachable schedules — the empirical face of Theorem
// 17 (if the queue were strongly linearizable, B would solve 3-process
// consensus from fetch&add/swap, contradicting Corollary 15).
func TestReductionBreaksWithoutStrongLinearizability(t *testing.T) {
	desc := QueueDescriptor(3)
	inputs := []int64{100, 200, 300}
	violations, runs := 0, 0
	for seed := int64(0); seed < 400 && violations == 0; seed++ {
		rng := rand.New(rand.NewSource(seed))
		res, err := RunReduction(desc, hwQueueImpl(3), inputs, sim.RandomPolicy(rng), 200000)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !res.Decided() {
			continue
		}
		runs++
		if res.Distinct() > 1 {
			violations++
			t.Logf("seed %d: agreement violated as expected: %v", seed, render(res))
		}
	}
	if violations == 0 {
		t.Fatalf("no agreement violation found over the Herlihy–Wing queue in %d complete runs; "+
			"Theorem 17 predicts the reduction must be breakable", runs)
	}
}

// The deterministic version of the violation: an adversary that stalls p0
// between its back-slot reservation (fetch&add) and its slot write. p1 and
// p2 then run to completion — their collects see slot 0 empty, their solo
// dequeues skip to p1's item, and both decide p1's input; p0 finally writes
// slot 0, collects, dequeues its own item first, and decides its own input.
// Two distinct decisions, every time.
func TestReductionDeterministicViolation(t *testing.T) {
	desc := QueueDescriptor(3)
	inputs := []int64{100, 200, 300}
	grants0 := 0
	policy := func(v sim.PolicyView) int {
		// p0's first 5 grants: invoke, M-write, T-write, fetch&add, T-write
		// (stopping just before the slot write).
		if grants0 < 5 {
			for _, p := range v.Enabled {
				if p == 0 {
					grants0++
					return 0
				}
			}
		}
		for _, want := range []int{1, 2, 0} {
			for _, p := range v.Enabled {
				if p == want {
					return p
				}
			}
		}
		return v.Enabled[0]
	}
	res, err := RunReduction(desc, hwQueueImpl(3), inputs, policy, 200000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Decided() {
		t.Fatal("not all processes decided")
	}
	if res.Distinct() < 2 {
		t.Fatalf("expected a deterministic agreement violation, got decisions %v", render(res))
	}
	// p1 and p2 agree with each other; p0 deviates.
	if *res.Decisions[1] != *res.Decisions[2] || *res.Decisions[0] == *res.Decisions[1] {
		t.Fatalf("unexpected violation shape: %v", render(res))
	}
}

// The same adversary cannot break the strongly-linearizable queue.
func TestReductionDeterministicAdversaryFailsAgainstSLQueue(t *testing.T) {
	desc := QueueDescriptor(3)
	inputs := []int64{100, 200, 300}
	grants0 := 0
	policy := func(v sim.PolicyView) int {
		if grants0 < 5 {
			for _, p := range v.Enabled {
				if p == 0 {
					grants0++
					return 0
				}
			}
		}
		for _, want := range []int{1, 2, 0} {
			for _, p := range v.Enabled {
				if p == want {
					return p
				}
			}
		}
		return v.Enabled[0]
	}
	res, err := RunReduction(desc, casQueueImpl(), inputs, policy, 200000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Decided() || res.Distinct() != 1 {
		t.Fatalf("SL queue broken by the stall adversary: %v", render(res))
	}
}

// The violation frequency is a quantitative handle for EXPERIMENTS.md: count
// violations over a fixed seed range for both queues.
func TestReductionViolationCensus(t *testing.T) {
	if testing.Short() {
		t.Skip("census skipped in -short mode")
	}
	desc := QueueDescriptor(3)
	inputs := []int64{100, 200, 300}
	census := func(impl Impl) (violations, runs int) {
		for seed := int64(0); seed < 200; seed++ {
			rng := rand.New(rand.NewSource(seed))
			res, err := RunReduction(desc, impl, inputs, sim.RandomPolicy(rng), 200000)
			if err != nil || !res.Decided() {
				continue
			}
			runs++
			if res.Distinct() > 1 {
				violations++
			}
		}
		return
	}
	slV, slR := census(casQueueImpl())
	hwV, hwR := census(hwQueueImpl(3))
	t.Logf("census: cas-queue %d/%d violations, hw-queue %d/%d violations", slV, slR, hwV, hwR)
	if slV != 0 {
		t.Fatalf("strongly-linearizable queue produced %d violations", slV)
	}
	if hwV == 0 {
		t.Fatalf("Herlihy–Wing queue produced no violations in %d runs", hwR)
	}
}

func render(r *ReductionResult) []int64 {
	out := make([]int64, 0, len(r.Decisions))
	for _, d := range r.Decisions {
		if d == nil {
			out = append(out, -1)
		} else {
			out = append(out, *d)
		}
	}
	return out
}
