// Package agreement implements Section 5 of the paper: k-ordering objects
// (Definition 11), the reduction from lock-free strongly-linearizable
// k-ordering implementations to k-set agreement (Lemma 12, Algorithm B),
// and the consensus protocols that calibrate the consensus hierarchy
// (2-process consensus from test&set, n-process consensus from
// compare&swap).
package agreement

import (
	"fmt"
	"strconv"
	"strings"

	"stronglin/internal/spec"
)

// Descriptor presents an object as k-ordering (Definition 11): per-process
// proposal and decision invocation sequences and a decision function d such
// that executing prop_i on the object, then locally simulating dec_i,
// identifies one of at most k "winning" process indexes, fixed by the prefix
// in which the first process completed its proposals.
type Descriptor struct {
	Name string
	// Spec is the sequential object (for Lemma 12 this is also the object
	// the checked implementation implements).
	Spec spec.Spec
	// SeqSpec is the specification used when enumerating the *sequential*
	// executions of Definition 11. For most objects it equals Spec; for the
	// multiplicity relaxations it is the unrelaxed object, because their
	// relaxation fires only for concurrent operations and Definition 11
	// quantifies over sequential executions (paper footnote 3).
	SeqSpec spec.Spec
	// N is the number of processes, K the agreement bound.
	N, K int
	// Prop and Dec return the proposal/decision invocation sequences of
	// process i.
	Prop func(i int) []spec.Op
	Dec  func(i int) []spec.Op
	// D maps process i and the concatenated responses of prop_i and dec_i
	// to the winning process index.
	D func(i int, resps []string) int
}

// procOf recovers a process index from an item value encoded as i+1 (queue
// and stack proposals enqueue/push i+1 because implementations reserve 0/
// negative values as sentinels).
func procOf(resp string) int {
	v, err := strconv.Atoi(resp)
	if err != nil {
		return -1
	}
	return v - 1
}

// lastNonEmpty returns the last response in resps that is not spec.RespEmpty
// (the paper's "non-ε element of the sequence with largest subindex").
func lastNonEmpty(resps []string) string {
	for i := len(resps) - 1; i >= 0; i-- {
		if resps[i] != spec.RespEmpty {
			return resps[i]
		}
	}
	return ""
}

// QueueDescriptor presents the FIFO queue as a 1-ordering object:
// prop_i = enq(i+1), dec_i = deq(), d(i, OK·ℓ) = ℓ.
func QueueDescriptor(n int) Descriptor {
	return Descriptor{
		Name:    "queue",
		Spec:    spec.Queue{},
		SeqSpec: spec.Queue{},
		N:       n,
		K:       1,
		Prop:    func(i int) []spec.Op { return []spec.Op{spec.MkOp(spec.MethodEnq, int64(i)+1)} },
		Dec:     func(i int) []spec.Op { return []spec.Op{spec.MkOp(spec.MethodDeq)} },
		D:       func(i int, resps []string) int { return procOf(resps[len(resps)-1]) },
	}
}

// StackDescriptor presents the LIFO stack as a 1-ordering object:
// prop_i = push(i+1), dec_i = pop()^(n+1), d = last non-ε response.
func StackDescriptor(n int) Descriptor {
	return Descriptor{
		Name:    "stack",
		Spec:    spec.Stack{},
		SeqSpec: spec.Stack{},
		N:       n,
		K:       1,
		Prop:    func(i int) []spec.Op { return []spec.Op{spec.MkOp(spec.MethodPush, int64(i)+1)} },
		Dec: func(i int) []spec.Op {
			out := make([]spec.Op, n+1)
			for j := range out {
				out[j] = spec.MkOp(spec.MethodPop)
			}
			return out
		},
		D: func(i int, resps []string) int { return procOf(lastNonEmpty(resps)) },
	}
}

// MultiplicityQueueDescriptor presents the queue with multiplicity as a
// 1-ordering object, with the same sequences and decision function as the
// queue (the relaxation fires only under concurrency, never in Definition
// 11's sequential executions).
func MultiplicityQueueDescriptor(n int) Descriptor {
	d := QueueDescriptor(n)
	d.Name = "multiplicity-queue"
	d.Spec = spec.MultiplicityQueue{}
	d.SeqSpec = spec.Queue{}
	return d
}

// MultiplicityStackDescriptor presents the stack with multiplicity as a
// 1-ordering object.
func MultiplicityStackDescriptor(n int) Descriptor {
	d := StackDescriptor(n)
	d.Name = "multiplicity-stack"
	d.Spec = spec.MultiplicityStack{}
	d.SeqSpec = spec.Stack{}
	return d
}

// StutteringQueueDescriptor presents the m-stuttering queue as a 1-ordering
// object: prop_i = enq(i+1)^(m+1) (at least one enqueue takes effect),
// dec_i = deq(), d = process of the dequeued item (a dequeue — stuttering or
// not — returns the oldest item, which is the first effective enqueue).
func StutteringQueueDescriptor(n, m int) Descriptor {
	return Descriptor{
		Name:    fmt.Sprintf("stuttering-queue(%d)", m),
		Spec:    spec.StutteringQueue{M: m},
		SeqSpec: spec.StutteringQueue{M: m},
		N:       n,
		K:       1,
		Prop: func(i int) []spec.Op {
			out := make([]spec.Op, m+1)
			for j := range out {
				out[j] = spec.MkOp(spec.MethodEnq, int64(i)+1)
			}
			return out
		},
		Dec: func(i int) []spec.Op { return []spec.Op{spec.MkOp(spec.MethodDeq)} },
		D:   func(i int, resps []string) int { return procOf(resps[len(resps)-1]) },
	}
}

// StutteringStackDescriptor presents the m-stuttering stack as a 1-ordering
// object: prop_i = push(i+1)^(m+1), dec_i = pop()^L, d = last non-ε.
//
// The paper uses L = n(m+1)+1 pops. Against the footnote-4 semantics
// (a counter per operation type, reset on effect) that length is sufficient
// only when pops resolve favourably: a decision sequence alternating
// stuttering and effectful pops can fail to drain the stack, leaving no ε
// response and making the last response a non-bottom item. We therefore use
// L = n(m+1)(m+1)+1, which guarantees the stack drains and d returns the
// first effective push under EVERY outcome resolution; the Definition 11
// validator demonstrates the discrepancy for the paper's length (see
// TestStutteringStackPaperLengthInsufficient).
func StutteringStackDescriptor(n, m int) Descriptor {
	return Descriptor{
		Name:    fmt.Sprintf("stuttering-stack(%d)", m),
		Spec:    spec.StutteringStack{M: m},
		SeqSpec: spec.StutteringStack{M: m},
		N:       n,
		K:       1,
		Prop: func(i int) []spec.Op {
			out := make([]spec.Op, m+1)
			for j := range out {
				out[j] = spec.MkOp(spec.MethodPush, int64(i)+1)
			}
			return out
		},
		Dec: func(i int) []spec.Op {
			out := make([]spec.Op, n*(m+1)*(m+1)+1)
			for j := range out {
				out[j] = spec.MkOp(spec.MethodPop)
			}
			return out
		},
		D: func(i int, resps []string) int { return procOf(lastNonEmpty(resps)) },
	}
}

// StutteringStackPaperDescriptor is StutteringStackDescriptor with the
// paper's dec length n(m+1)+1; it exists so the validator can exhibit the
// insufficiency (see EXPERIMENTS.md, E-D11 finding 2).
func StutteringStackPaperDescriptor(n, m int) Descriptor {
	d := StutteringStackDescriptor(n, m)
	d.Dec = func(i int) []spec.Op {
		out := make([]spec.Op, n*(m+1)+1)
		for j := range out {
			out[j] = spec.MkOp(spec.MethodPop)
		}
		return out
	}
	return d
}

// OutOfOrderQueueDescriptor presents the k-out-of-order queue as a
// k-ordering object: prop_i = enq(i+1), dec_i = deq(), d = process of the
// dequeued item (one of the k oldest).
func OutOfOrderQueueDescriptor(n, k int) Descriptor {
	return Descriptor{
		Name:    fmt.Sprintf("%d-out-of-order-queue", k),
		Spec:    spec.OutOfOrderQueue{K: k},
		SeqSpec: spec.OutOfOrderQueue{K: k},
		N:       n,
		K:       k,
		Prop:    func(i int) []spec.Op { return []spec.Op{spec.MkOp(spec.MethodEnq, int64(i)+1)} },
		Dec:     func(i int) []spec.Op { return []spec.Op{spec.MkOp(spec.MethodDeq)} },
		D:       func(i int, resps []string) int { return procOf(resps[len(resps)-1]) },
	}
}

// ReadableTASDescriptor presents the 2-process readable test&set as a
// 1-ordering object: prop_i = tas(), dec_i = read(), and d decodes the
// winner from the caller's own test&set response (0 means "I won").
func ReadableTASDescriptor() Descriptor {
	return Descriptor{
		Name:    "readable-tas",
		Spec:    spec.ReadableTAS{},
		SeqSpec: spec.ReadableTAS{},
		N:       2,
		K:       1,
		Prop:    func(i int) []spec.Op { return []spec.Op{spec.MkOp(spec.MethodTAS)} },
		Dec:     func(i int) []spec.Op { return []spec.Op{spec.MkOp(spec.MethodRead)} },
		D: func(i int, resps []string) int {
			if resps[0] == "0" {
				return i
			}
			return 1 - i
		},
	}
}

// --- Definition 11 validation -------------------------------------------------

// ValidationError reports a Definition 11 violation.
type ValidationError struct {
	Desc   string
	Prefix string
	Detail string
}

func (e *ValidationError) Error() string {
	return fmt.Sprintf("agreement: %s is not %s-ordering at prefix %s: %s", e.Desc, "k", e.Prefix, e.Detail)
}

// ValidateDefinition11 exhaustively checks Definition 11 for the descriptor
// on bounded sequential executions: for every sequential execution α built
// from proposal invocations in which some process has completed its
// proposals, the set of decisions reachable in ANY continuation (any
// interleaved completion α′, any deciding process i, any nondeterministic
// outcome resolution of α, α′ and β_i) must (a) contain at most K distinct
// winners and (b) only name winners whose proposals are complete at decision
// time.
func ValidateDefinition11(d Descriptor) error {
	v := &validator{d: d, memo: make(map[string][]int)}
	props := make([][]spec.Op, d.N)
	for i := 0; i < d.N; i++ {
		props[i] = d.Prop(i)
	}
	v.props = props
	return v.walk(d.SeqSpec.Init(d.N), make([]int, d.N), make([][]string, d.N), "")
}

type validator struct {
	d     Descriptor
	props [][]spec.Op
	memo  map[string][]int
}

func key(st spec.State, progress []int, resps [][]string) string {
	var b strings.Builder
	b.WriteString(st.Key())
	for i, p := range progress {
		fmt.Fprintf(&b, "|%d:%d:%s", i, p, strings.Join(resps[i], ","))
	}
	return b.String()
}

// walk visits every reachable α; wherever some process has completed its
// proposals, it checks the decision set.
func (v *validator) walk(st spec.State, progress []int, resps [][]string, trail string) error {
	if v.someComplete(progress) {
		decisions := v.decisionSet(st, progress, resps)
		winners := make(map[int]bool)
		for _, ell := range decisions {
			if ell < 0 || ell >= v.d.N {
				return &ValidationError{Desc: v.d.Name, Prefix: trail, Detail: fmt.Sprintf("decision %d out of range", ell)}
			}
			winners[ell] = true
		}
		if len(winners) > v.d.K {
			return &ValidationError{
				Desc:   v.d.Name,
				Prefix: trail,
				Detail: fmt.Sprintf("%d distinct winners %v exceed k=%d", len(winners), winners, v.d.K),
			}
		}
	}
	for i := 0; i < v.d.N; i++ {
		if progress[i] >= len(v.props[i]) {
			continue
		}
		op := v.props[i][progress[i]]
		for _, out := range st.Steps(op) {
			progress[i]++
			resps[i] = append(resps[i], out.Resp)
			err := v.walk(out.Next, progress, resps, trail+fmt.Sprintf(" p%d:%v=%s", i, op, out.Resp))
			resps[i] = resps[i][:len(resps[i])-1]
			progress[i]--
			if err != nil {
				return err
			}
		}
	}
	return nil
}

func (v *validator) someComplete(progress []int) bool {
	for i, p := range progress {
		if p == len(v.props[i]) {
			return true
		}
	}
	return false
}

// decisionSet returns every winner reachable from (st, progress): complete
// some interleaving of the remaining proposals for a deciding process (and
// any subset of others), then run its decision sequence.
func (v *validator) decisionSet(st spec.State, progress []int, resps [][]string) []int {
	k := key(st, progress, resps)
	if dec, ok := v.memo[k]; ok {
		return dec
	}
	seen := make(map[int]bool)
	// Decide now, for every process whose proposals are complete. The winner
	// must have invoked at least one proposal operation: Definition 11
	// literally requires invs((α·α′)|ℓ) = prop_ℓ, but the paper's own
	// m-stuttering examples weaken this to invs(α|ℓ) ≠ ε ("and possibly ≠
	// prop_ℓ"), which is what Lemma 12's validity actually needs — process ℓ
	// writes M[ℓ] BEFORE its first proposal invocation, so any winner with
	// at least one invocation has its input visible. A winner with no
	// invocations at all is reported as -2 and caught by the caller.
	for i := 0; i < v.d.N; i++ {
		if progress[i] != len(v.props[i]) {
			continue
		}
		for _, decResps := range v.runDec(st, v.d.Dec(i)) {
			all := append(append([]string{}, resps[i]...), decResps...)
			ell := v.d.D(i, all)
			if ell >= 0 && ell < v.d.N && progress[ell] == 0 {
				ell = -2 // winner never invoked anything: a violation
			}
			seen[ell] = true
		}
	}
	// Or take one more proposal step and recurse.
	for i := 0; i < v.d.N; i++ {
		if progress[i] >= len(v.props[i]) {
			continue
		}
		op := v.props[i][progress[i]]
		for _, out := range st.Steps(op) {
			progress[i]++
			resps[i] = append(resps[i], out.Resp)
			for _, ell := range v.decisionSet(out.Next, progress, resps) {
				seen[ell] = true
			}
			resps[i] = resps[i][:len(resps[i])-1]
			progress[i]--
		}
	}
	out := make([]int, 0, len(seen))
	for ell := range seen {
		out = append(out, ell)
	}
	v.memo[k] = out
	return out
}

// runDec returns the response sequences of every outcome resolution of ops
// run solo from st.
func (v *validator) runDec(st spec.State, ops []spec.Op) [][]string {
	if len(ops) == 0 {
		return [][]string{nil}
	}
	var out [][]string
	for _, o := range st.Steps(ops[0]) {
		for _, rest := range v.runDec(o.Next, ops[1:]) {
			out = append(out, append([]string{o.Resp}, rest...))
		}
	}
	return out
}
