package agreement

import (
	"strconv"

	"stronglin/internal/prim"
)

// TAS2Consensus is the classic 2-process consensus protocol from one
// (2-process) test&set object and registers — the protocol that certifies
// test&set's consensus number is at least 2.
//
// propose(i, v): write M[i] = v; apply test&set; a 0 response decides the
// caller's own value, a 1 response decides the other process's.
type TAS2Consensus struct {
	m  [2]prim.Register
	ts prim.ReadableTAS
}

// NewTAS2Consensus allocates the protocol for processes p and q.
func NewTAS2Consensus(w prim.World, name string, p, q int) *TAS2Consensus {
	return &TAS2Consensus{
		m:  [2]prim.Register{w.Register(name+".M[0]", 0), w.Register(name+".M[1]", 0)},
		ts: w.TAS2(name+".ts", p, q),
	}
}

// Propose runs the protocol for slot (0 or 1) with input v and returns the
// decision. The caller's thread must be one of the two registered processes.
func (c *TAS2Consensus) Propose(t prim.Thread, slot int, v int64) int64 {
	c.m[slot].Write(t, v)
	if c.ts.TestAndSet(t) == 0 {
		return v
	}
	return c.m[1-slot].Read(t)
}

// CASConsensus is n-process consensus from one compare&swap register — the
// universal-primitive protocol (consensus number ∞) that the paper's
// impossibility results separate from test&set/swap/fetch&add.
type CASConsensus struct {
	n      int
	m      []prim.Register
	winner prim.CAS
}

// NewCASConsensus allocates the protocol for n processes.
func NewCASConsensus(w prim.World, name string, n int) *CASConsensus {
	c := &CASConsensus{n: n, m: make([]prim.Register, n), winner: w.CAS(name+".winner", -1)}
	for i := range c.m {
		c.m[i] = w.Register(name+".M["+strconv.Itoa(i)+"]", 0)
	}
	return c
}

// Propose runs the protocol for the calling process with input v and
// returns the decision.
func (c *CASConsensus) Propose(t prim.Thread, v int64) int64 {
	i := t.ID()
	c.m[i].Write(t, v)
	c.winner.CompareAndSwap(t, -1, int64(i))
	return c.m[c.winner.Read(t)].Read(t)
}
