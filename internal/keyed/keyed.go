// Package keyed implements the sparse keyed universe: hashed variants of the
// repo's monotone objects whose element domain is arbitrary strings rather
// than dense non-negative ints.
//
//   - GSet — a grow-only set over string keys. Keys hash (fnv-1a 64) to
//     buckets; each bucket is its own k-XADD engine on the
//     interleave.MultiPacked codec, holding one membership bit per
//     (slot, lane): lane l's field in the bucket is a slot-bitmap, so an add
//     is ONE fetch&add of a single bit plus a sequence bump, exactly the
//     FAGSet discipline with the dense domain replaced by a per-bucket
//     directory that assigns slots to keys first-come-first-served.
//
//   - MonotoneMap — a strongly-linearizable map from string keys to monotone
//     values: each key is, at its first write, bound to one of two kinds —
//     a monotone counter (Inc/IncBy) or a max register (Max). Per-key values
//     stripe over per-process lanes inside the key's bucket, so writes stay
//     single-XADD and contention-free across lanes; Get combines the lanes
//     (sum for counters, max for max registers).
//
// # Strong linearizability
//
// Writes linearize at their payload XADD (the sequence field bumps in the
// same atomic step) and then announce on the bucket's epoch register —
// the shard discipline. Reads are epoch-validated collects with the closing
// witness LAST: snapshot the bucket epoch, collect the key's words, re-read
// the epoch, and retry until the two reads are equal. The read's final
// shared step (the closing epoch read) witnesses that no write to the bucket
// completed its announce inside the window, which pins the collected value
// to a real instant and makes the commit decision a function of the past
// only — the prefix-closure that strong linearizability demands. The
// witness-free twins (single collect, no closing read) are retained
// unexported and pinned linearizable-but-NOT-SL by the negative model checks
// in keyed_test.go.
//
// # Rehash: growth rides the cutover discipline
//
// Bucket counts grow at runtime without losing an acked update, by the PR 8
// flip-after-migrate recipe. The bucket array lives behind a single table
// pointer register. Writers hold a shared (read) lock on the rehash gate for
// the duration of one write; Rehash takes the gate exclusively — so the old
// table is frozen while it migrates — copies every directory entry's exact
// value into a freshly-named generation of buckets, and only then flips the
// table pointer. Readers never touch the gate: one table-pointer read inside
// the op's interval suffices. If a rehash overlaps the read, the old
// generation it collected from was FROZEN from the gate's acquisition on, so
// the epoch witness still pins the returned value to an instant inside the
// read's interval (any write that could contradict it lands in the new
// generation and is concurrent with the read); a table pointer loaded before
// an op's invocation can never leak in, because the pointer is re-read per
// attempt. Every acked write either happened before the exclusive lock
// (migrated exactly) or after the flip (lands in the new generation).
package keyed

import (
	"errors"

	"stronglin/internal/interleave"
)

// Errors returned by keyed objects. All are terminal for the op that
// received them; ErrFull is resolved by Rehash to a larger bucket count.
var (
	// ErrFull means the key's bucket has no free slot. Grow with Rehash.
	ErrFull = errors.New("keyed: bucket slots exhausted; rehash to more buckets")
	// ErrBudget means the per-(key, lane) field cannot absorb the update
	// without overflowing its binary field.
	ErrBudget = errors.New("keyed: per-lane field budget exhausted")
	// ErrKindMismatch means the key is already bound to the other kind
	// (counter vs max register).
	ErrKindMismatch = errors.New("keyed: key already bound to the other kind")
	// ErrUnknownKey means the key has never been written.
	ErrUnknownKey = errors.New("keyed: unknown key")
	// ErrRange means a delta or value lies outside the field domain.
	ErrRange = errors.New("keyed: delta or value outside the field range")
)

// Kind is the monotone flavor a MonotoneMap key is bound to at first write.
type Kind uint8

const (
	// KindNone is the zero Kind; no key is ever bound to it.
	KindNone Kind = iota
	// KindCounter keys support Inc/IncBy; Get sums the lanes.
	KindCounter
	// KindMax keys support Max; Get maxes the lanes.
	KindMax
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindMax:
		return "max"
	default:
		return "none"
	}
}

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// Hash is the keyed universe's bucket hash: fnv-1a over the key bytes.
// Exported so the routing tier partitions the keyspace with the identical
// function (allocation-free, unlike hash/fnv's io.Writer surface).
func Hash(key string) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= fnvPrime64
	}
	return h
}

// Option configures NewGSet and NewMonotoneMap.
type Option func(*config)

type config struct {
	buckets    int
	slots      int
	width      int
	maxBuckets int
}

func defaults() config {
	return config{buckets: 8, slots: 16, width: 32, maxBuckets: 1 << 16}
}

// WithBuckets sets the initial bucket count (default 8).
func WithBuckets(n int) Option { return func(c *config) { c.buckets = n } }

// WithSlots sets how many distinct keys one bucket hosts (default 16). For
// a GSet the slot count is also the per-lane field width in bits, so it must
// be at most interleave.LaneBits.
func WithSlots(n int) Option { return func(c *config) { c.slots = n } }

// WithWidth sets a MonotoneMap's bits per (key, lane) field (default 32,
// max interleave.LaneBits). The per-lane value cap is 2^width - 1.
func WithWidth(bits int) Option { return func(c *config) { c.width = bits } }

// WithMaxBuckets caps Rehash growth (default 1<<16 buckets).
func WithMaxBuckets(n int) Option { return func(c *config) { c.maxBuckets = n } }

// Stats is a point-in-time telemetry snapshot of a keyed object.
type Stats struct {
	Buckets        int   // current bucket count
	Slots          int   // keys per bucket
	Keys           int   // distinct keys tracked
	WordsPerBucket int   // engine words per bucket
	Packed         bool  // one-word buckets (the 0-alloc fast shape)
	Generation     int64 // table generation (bumps on every rehash)
	Rehashes       int64 // completed rehashes
	ReadRetries    int64 // validated-collect retries (epoch or table moved)
	EpochAnnounces int64 // total write announces across current buckets
}

func mpPayload(c interleave.MultiPacked, word int64) uint64 {
	return uint64(c.Payload(word))
}
