package keyed

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"stronglin/internal/history"
	"stronglin/internal/prim"
	"stronglin/internal/sim"
	"stronglin/internal/spec"
)

// The keyed objects are verified like every construction in this repo:
// exhaustive strong-linearizability model checks of bounded configurations
// (2 buckets x 2-3 processes, with the same-key two-lane configs forced onto
// multi-word buckets so the collect genuinely spans words), negative twins
// pinning the witness-free reads linearizable-but-NOT-SL, differential
// fuzzing against a mutex-map oracle, and a rehash-under-load proof that a
// bucket-count change loses no acked update.

// pickSpreadKeys returns n keys that hash to n distinct buckets at the given
// bucket count, so tests can pin cross-bucket configurations.
func pickSpreadKeys(buckets, n int) []string {
	used := map[uint64]bool{}
	var out []string
	for i := 0; len(out) < n; i++ {
		k := fmt.Sprintf("k%d", i)
		if b := Hash(k) % uint64(buckets); !used[b] {
			used[b] = true
			out = append(out, k)
		}
	}
	return out
}

// --- sim.Op builders ---------------------------------------------------------

func opKAdd(g *GSet, key string, id int64) sim.Op {
	return sim.Op{
		Name: "add(" + key + ")",
		Spec: spec.MkOp(spec.MethodAdd, id),
		Run: func(t prim.Thread) string {
			if err := g.Add(t, key); err != nil {
				return err.Error()
			}
			return spec.RespOK
		},
	}
}

func opKHas(g *GSet, key string, id int64) sim.Op {
	return sim.Op{
		Name: "has(" + key + ")",
		Spec: spec.MkOp(spec.MethodHas, id),
		Run: func(t prim.Thread) string {
			if g.Has(t, key) {
				return "1"
			}
			return "0"
		},
	}
}

func opKHasWitnessFree(g *GSet, key string, id int64) sim.Op {
	return sim.Op{
		Name: "has-wf(" + key + ")",
		Spec: spec.MkOp(spec.MethodHas, id),
		Run: func(t prim.Thread) string {
			if g.hasWitnessFree(t, key) {
				return "1"
			}
			return "0"
		},
	}
}

func opMInc(m *MonotoneMap, key string, id int64) sim.Op {
	return sim.Op{
		Name: "inc(" + key + ")",
		Spec: spec.MkOp(spec.MethodMapInc, id, 1),
		Run: func(t prim.Thread) string {
			switch err := m.Inc(t, key); {
			case err == nil:
				return spec.RespOK
			case errors.Is(err, ErrKindMismatch):
				return spec.RespKindMismatch
			default:
				return err.Error()
			}
		},
	}
}

func opMMax(m *MonotoneMap, key string, id, v int64) sim.Op {
	return sim.Op{
		Name: fmt.Sprintf("max(%s,%d)", key, v),
		Spec: spec.MkOp(spec.MethodMapMax, id, v),
		Run: func(t prim.Thread) string {
			switch err := m.Max(t, key, v); {
			case err == nil:
				return spec.RespOK
			case errors.Is(err, ErrKindMismatch):
				return spec.RespKindMismatch
			default:
				return err.Error()
			}
		},
	}
}

func opMGet(m *MonotoneMap, key string, id int64) sim.Op {
	return sim.Op{
		Name: "get(" + key + ")",
		Spec: spec.MkOp(spec.MethodMapGet, id),
		Run: func(t prim.Thread) string {
			v, err := m.Get(t, key)
			if errors.Is(err, ErrUnknownKey) {
				return spec.RespNone
			}
			return spec.RespInt(v)
		},
	}
}

func opMGetWitnessFree(m *MonotoneMap, key string, id int64) sim.Op {
	return sim.Op{
		Name: "get-wf(" + key + ")",
		Spec: spec.MkOp(spec.MethodMapGet, id),
		Run: func(t prim.Thread) string {
			v, err := m.getWitnessFree(t, key)
			if errors.Is(err, ErrUnknownKey) {
				return spec.RespNone
			}
			return spec.RespInt(v)
		},
	}
}

func verifySL(t *testing.T, procs int, setup sim.Setup, sp spec.Spec) history.Verdict {
	t.Helper()
	v, err := history.Verify(procs, setup, sp, &sim.ExploreOptions{MaxNodes: 3_000_000}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Linearizable {
		t.Fatalf("linearizability violated: %s", v.LinViolation)
	}
	if !v.StrongLin.Ok {
		t.Fatalf("strong linearizability violated: %v", v.StrongLin.Counterexample)
	}
	return v
}

// --- Sequential sanity -------------------------------------------------------

func TestKeyedGSetSequential(t *testing.T) {
	w := sim.NewSoloWorld()
	g := NewGSet(w, "g", 2, WithBuckets(2), WithSlots(4))
	if g.Has(sim.SoloThread(0), "alpha") {
		t.Fatal("empty set has alpha")
	}
	for i, key := range []string{"alpha", "beta", "gamma", "alpha"} {
		if err := g.Add(sim.SoloThread(i%2), key); err != nil {
			t.Fatalf("Add(%s): %v", key, err)
		}
	}
	for _, key := range []string{"alpha", "beta", "gamma"} {
		if !g.Has(sim.SoloThread(1), key) {
			t.Fatalf("Has(%s) = false after add", key)
		}
	}
	if g.Has(sim.SoloThread(0), "delta") {
		t.Fatal("Has(delta) = true, never added")
	}
	st := g.Stats(sim.SoloThread(0))
	if st.Keys != 3 || st.Buckets != 2 || st.Generation != 0 {
		t.Fatalf("stats = %+v, want 3 keys / 2 buckets / gen 0", st)
	}
}

func TestKeyedMapSequential(t *testing.T) {
	w := sim.NewSoloWorld()
	m := NewMonotoneMap(w, "m", 2, WithBuckets(2), WithSlots(4), WithWidth(16))
	t0, t1 := sim.SoloThread(0), sim.SoloThread(1)
	if err := m.Inc(t0, "hits"); err != nil {
		t.Fatal(err)
	}
	if err := m.IncBy(t1, "hits", 4); err != nil {
		t.Fatal(err)
	}
	if err := m.Max(t0, "peak", 7); err != nil {
		t.Fatal(err)
	}
	if err := m.Max(t1, "peak", 3); err != nil {
		t.Fatal(err)
	}
	if v, err := m.Get(t0, "hits"); err != nil || v != 5 {
		t.Fatalf("Get(hits) = %d, %v; want 5", v, err)
	}
	if v, err := m.Get(t1, "peak"); err != nil || v != 7 {
		t.Fatalf("Get(peak) = %d, %v; want 7", v, err)
	}
	if k := m.Kind(t0, "hits"); k != KindCounter {
		t.Fatalf("Kind(hits) = %v, want counter", k)
	}
	if k := m.Kind(t0, "peak"); k != KindMax {
		t.Fatalf("Kind(peak) = %v, want max", k)
	}
	// Max(k, 0) must CREATE the key (the existence bias stores 0 as 1): a
	// reader sees value 0, not ErrUnknownKey.
	if err := m.Max(t0, "floor", 0); err != nil {
		t.Fatal(err)
	}
	if v, err := m.Get(t1, "floor"); err != nil || v != 0 {
		t.Fatalf("Get(floor) after Max 0 = %d, %v; want 0, nil", v, err)
	}
}

func TestKeyedConstructorValidation(t *testing.T) {
	cases := []func(){
		func() { NewGSet(sim.NewSoloWorld(), "g", 0) },
		func() { NewGSet(sim.NewSoloWorld(), "g", 2, WithSlots(0)) },
		func() { NewGSet(sim.NewSoloWorld(), "g", 2, WithSlots(49)) },
		func() { NewGSet(sim.NewSoloWorld(), "g", 2, WithBuckets(0)) },
		func() { NewGSet(sim.NewSoloWorld(), "g", 2, WithBuckets(8), WithMaxBuckets(4)) },
		func() { NewMonotoneMap(sim.NewSoloWorld(), "m", 0) },
		func() { NewMonotoneMap(sim.NewSoloWorld(), "m", 2, WithWidth(49)) },
		func() { NewMonotoneMap(sim.NewSoloWorld(), "m", 2, WithWidth(1)) },
		func() { NewMonotoneMap(sim.NewSoloWorld(), "m", 2, WithSlots(0)) },
		func() { NewMonotoneMap(sim.NewSoloWorld(), "m", 2, WithBuckets(0)) },
	}
	for i, mk := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			mk()
		}()
	}
}

func TestKeyedMapErrorClasses(t *testing.T) {
	w := prim.NewRealWorld()
	m := NewMonotoneMap(w, "me", 1, WithBuckets(1), WithSlots(4), WithWidth(2)) // field cap 3
	t0 := prim.RealThread(0)
	if err := m.Inc(t0, "c"); err != nil {
		t.Fatal(err)
	}
	if err := m.Max(t0, "c", 2); !errors.Is(err, ErrKindMismatch) {
		t.Fatalf("Max on counter key = %v, want ErrKindMismatch", err)
	}
	if err := m.Max(t0, "x", 2); err != nil {
		t.Fatal(err)
	}
	if err := m.Inc(t0, "x"); !errors.Is(err, ErrKindMismatch) {
		t.Fatalf("Inc on max key = %v, want ErrKindMismatch", err)
	}
	if _, err := m.Get(t0, "ghost"); !errors.Is(err, ErrUnknownKey) {
		t.Fatalf("Get(ghost) = %v, want ErrUnknownKey", err)
	}
	if err := m.IncBy(t0, "c", 0); !errors.Is(err, ErrRange) {
		t.Fatalf("IncBy 0 = %v, want ErrRange", err)
	}
	if err := m.Max(t0, "x", 9); !errors.Is(err, ErrRange) {
		t.Fatalf("Max 9 past cap = %v, want ErrRange", err)
	}
	if err := m.IncBy(t0, "c", 2); !errors.Is(err, ErrBudget) {
		t.Fatalf("IncBy past field cap = %v, want ErrBudget", err)
	}
	if v, err := m.Get(t0, "c"); err != nil || v != 1 {
		t.Fatalf("Get(c) after refused inc = %d, %v; want 1", v, err)
	}
}

func TestKeyedGSetErrFullThenRehashRecovers(t *testing.T) {
	w := prim.NewRealWorld()
	keys := pickSpreadKeys(2, 2) // distinct buckets once grown to 2
	g := NewGSet(w, "gf", 1, WithBuckets(1), WithSlots(1), WithMaxBuckets(4))
	t0 := prim.RealThread(0)
	if err := g.Add(t0, keys[0]); err != nil {
		t.Fatal(err)
	}
	if err := g.Add(t0, keys[1]); !errors.Is(err, ErrFull) {
		t.Fatalf("second key in a 1x1 set = %v, want ErrFull", err)
	}
	if err := g.Rehash(t0, 2); err != nil {
		t.Fatal(err)
	}
	if err := g.Add(t0, keys[1]); err != nil {
		t.Fatalf("Add after rehash: %v", err)
	}
	if !g.Has(t0, keys[0]) || !g.Has(t0, keys[1]) {
		t.Fatal("membership lost across rehash")
	}
	st := g.Stats(t0)
	if st.Generation != 1 || st.Rehashes != 1 || st.Buckets != 2 || st.Keys != 2 {
		t.Fatalf("stats after rehash = %+v", st)
	}
	// Growth is monotone: a racing grower's stale request is a no-op.
	if err := g.Rehash(t0, 2); err != nil || g.Stats(t0).Generation != 1 {
		t.Fatalf("no-op rehash moved the table: %v, %+v", err, g.Stats(t0))
	}
}

// --- Bounded model checks ----------------------------------------------------

// TestKeyedGSetStrongLinTwoBuckets: adds to two distinct buckets with a
// cross-bucket reader — the base SL check of the hashed universe.
func TestKeyedGSetStrongLinTwoBuckets(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive model check; skipped in -short mode")
	}
	keys := pickSpreadKeys(2, 2)
	setup := func(w *sim.World) []sim.Program {
		g := NewGSet(w, "g", 2, WithBuckets(2), WithSlots(4))
		return []sim.Program{
			{opKAdd(g, keys[0], 1)},
			{opKAdd(g, keys[1], 2)},
			{opKHas(g, keys[0], 1), opKHas(g, keys[1], 2)},
		}
	}
	verifySL(t, 3, setup, spec.GSet{})
}

// TestKeyedGSetStrongLinSameKeyMultiWord: the same key added from two lanes
// that live in DIFFERENT words (slots=25 forces one lane per word), so the
// reader's collect genuinely spans words and the epoch witness carries the
// proof. The reader runs a single Has — the two-read reader shape lives in
// the packed TwoBuckets check; doubling it here pushes the tree past any
// workable node budget.
func TestKeyedGSetStrongLinSameKeyMultiWord(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive model check; skipped in -short mode")
	}
	setup := func(w *sim.World) []sim.Program {
		g := NewGSet(w, "g", 2, WithBuckets(1), WithSlots(25))
		return []sim.Program{
			{opKAdd(g, "k", 1)},
			{opKAdd(g, "k", 1)},
			{opKHas(g, "k", 1)},
		}
	}
	verifySL(t, 3, setup, spec.GSet{})
}

// TestKeyedGSetWitnessFreeNotStrongLin pins the negative twin: the same
// configuration read without the closing epoch/table witnesses is
// linearizable (membership is monotone) but NOT strongly linearizable — the
// reader's miss commitment does not survive every future.
func TestKeyedGSetWitnessFreeNotStrongLin(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive model check; skipped in -short mode")
	}
	setup := func(w *sim.World) []sim.Program {
		g := NewGSet(w, "g", 2, WithBuckets(1), WithSlots(25))
		return []sim.Program{
			{opKAdd(g, "k", 1)},
			{opKAdd(g, "k", 1)},
			{opKHasWitnessFree(g, "k", 1), opKHasWitnessFree(g, "k", 1)},
		}
	}
	v, err := history.Verify(3, setup, spec.GSet{}, &sim.ExploreOptions{MaxNodes: 3_000_000}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Linearizable {
		t.Fatalf("witness-free membership should be linearizable; violation: %s", v.LinViolation)
	}
	if v.StrongLin.Ok {
		t.Fatal("witness-free keyed gset verified strongly linearizable; expected a refutation")
	}
}

// TestKeyedMapStrongLinSameKeyMultiWord: two lanes incrementing one key
// striped over two words (width=25), with an epoch-validated reader. Two
// processes — the binding first write's landed-flag step (see mapBucket)
// pushes the dedicated-reader three-process version past any workable node
// budget. The write/write race still pits binder against non-binder lane,
// and the reader's two-word validated collect still overlaps the other
// lane's inc end to end.
func TestKeyedMapStrongLinSameKeyMultiWord(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive model check; skipped in -short mode")
	}
	setup := func(w *sim.World) []sim.Program {
		m := NewMonotoneMap(w, "m", 2, WithBuckets(1), WithSlots(1), WithWidth(25))
		return []sim.Program{
			{opMInc(m, "k", 1)},
			{opMInc(m, "k", 1), opMGet(m, "k", 1)},
		}
	}
	verifySL(t, 2, setup, spec.KeyedMap{})
}

// TestKeyedMapStrongLinTwoBucketsMixedKinds: a counter key and a max key in
// distinct buckets, the reader visiting both with the two-read reader shape
// (commit a value for one key, then observe the other — the shape the
// witness-free twin refutes). Two processes: the three-process version of
// this configuration exceeds any workable node budget, and writer/writer
// concurrency across distinct buckets touches disjoint engine state anyway.
func TestKeyedMapStrongLinTwoBucketsMixedKinds(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive model check; skipped in -short mode")
	}
	keys := pickSpreadKeys(2, 2)
	setup := func(w *sim.World) []sim.Program {
		m := NewMonotoneMap(w, "m", 2, WithBuckets(2), WithSlots(1), WithWidth(20))
		return []sim.Program{
			{opMInc(m, keys[0], 1), opMMax(m, keys[1], 2, 5)},
			{opMGet(m, keys[0], 1), opMGet(m, keys[1], 2)},
		}
	}
	verifySL(t, 2, setup, spec.KeyedMap{})
}

// TestKeyedMapStrongLinKindRace: concurrent first writes of conflicting
// kinds to one key — whichever claims the directory first binds the kind and
// the loser's refusal must linearize after it.
func TestKeyedMapStrongLinKindRace(t *testing.T) {
	setup := func(w *sim.World) []sim.Program {
		m := NewMonotoneMap(w, "m", 2, WithBuckets(1), WithSlots(1), WithWidth(20))
		return []sim.Program{
			{opMInc(m, "k", 1)},
			{opMMax(m, "k", 1, 3)},
		}
	}
	verifySL(t, 2, setup, spec.KeyedMap{})
}

// TestKeyedMapStrongLinKindRaceWithReader extends the kind race with a get
// by the refused process — the shape that caught an eager-refusal bug: a
// refusal observed from a bare directory claim committed "key bound" while
// the binding write had not landed, so the refused process's next get still
// committed "unknown", an ordering no sequential history allows (the get
// would have to precede the inc, which must precede the refusal, which
// completed before the get began). The fix awaits the slot's bound flag
// before refusing; this check pins both linearizability and SL of the trio.
func TestKeyedMapStrongLinKindRaceWithReader(t *testing.T) {
	setup := func(w *sim.World) []sim.Program {
		m := NewMonotoneMap(w, "m", 2, WithBuckets(1), WithSlots(1), WithWidth(20))
		return []sim.Program{
			{opMInc(m, "k", 1)},
			{opMMax(m, "k", 1, 3), opMGet(m, "k", 1)},
		}
	}
	verifySL(t, 2, setup, spec.KeyedMap{})
}

// TestKeyedMapWitnessFreeNotStrongLin: the negative twin for the map read.
// One unvalidated two-word collect racing both writer lanes is already
// refutable — the sum it commits mid-collect does not survive every future —
// so the reader runs a single witness-free get; both writer processes are
// essential (a reader sharing a lane with one writer explores no refuting
// schedule, and the landed-flag step prices the two-read reader out of the
// node budget).
func TestKeyedMapWitnessFreeNotStrongLin(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive model check; skipped in -short mode")
	}
	setup := func(w *sim.World) []sim.Program {
		m := NewMonotoneMap(w, "m", 2, WithBuckets(1), WithSlots(1), WithWidth(25))
		return []sim.Program{
			{opMInc(m, "k", 1)},
			{opMInc(m, "k", 1)},
			{opMGetWitnessFree(m, "k", 1)},
		}
	}
	v, err := history.Verify(3, setup, spec.KeyedMap{}, &sim.ExploreOptions{MaxNodes: 3_000_000}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Linearizable {
		t.Fatalf("witness-free get should be linearizable; violation: %s", v.LinViolation)
	}
	if v.StrongLin.Ok {
		t.Fatal("witness-free keyed map verified strongly linearizable; expected a refutation")
	}
}

// --- Rehash under load -------------------------------------------------------

// TestKeyedRehashUnderLoadZeroLostAcks drives concurrent writers through
// multiple live bucket-count changes and proves the cutover loses no acked
// update: every acked Inc is in the final sum, every acked Add is a member.
func TestKeyedRehashUnderLoadZeroLostAcks(t *testing.T) {
	const (
		lanes   = 4
		nKeys   = 40
		opsEach = 1500
	)
	w := prim.NewRealWorld()
	g := NewGSet(w, "g", lanes, WithBuckets(2), WithSlots(48), WithMaxBuckets(64))
	m := NewMonotoneMap(w, "m", lanes, WithBuckets(2), WithSlots(24), WithWidth(30), WithMaxBuckets(64))
	keys := make([]string, nKeys)
	for i := range keys {
		keys[i] = fmt.Sprintf("user-%d", i)
	}

	ackedInc := make([]map[string]int64, lanes) // per-lane: no locks needed
	ackedAdd := make([]map[string]bool, lanes)
	var wg sync.WaitGroup
	gates := make([]chan struct{}, 3) // writers pause here so rehashes interleave mid-stream
	for i := range gates {
		gates[i] = make(chan struct{})
	}
	for p := 0; p < lanes; p++ {
		ackedInc[p] = make(map[string]int64)
		ackedAdd[p] = make(map[string]bool)
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			th := prim.RealThread(p)
			rng := rand.New(rand.NewSource(int64(100 + p)))
			for i := 0; i < opsEach; i++ {
				if i%(opsEach/4) == opsEach/8 && i/(opsEach/4) < len(gates) {
					<-gates[i/(opsEach/4)]
				}
				key := keys[rng.Intn(nKeys)]
				d := int64(rng.Intn(3) + 1)
				if err := m.IncBy(th, key, d); err != nil {
					t.Errorf("IncBy(%s): %v", key, err)
					return
				}
				ackedInc[p][key] += d
				skey := keys[rng.Intn(nKeys)]
				if err := g.Add(th, skey); err != nil {
					t.Errorf("Add(%s): %v", skey, err)
					return
				}
				ackedAdd[p][skey] = true
			}
		}(p)
	}

	tr := prim.RealThread(lanes) // the migrator's identity
	for i, buckets := range []int{4, 8, 16} {
		if err := g.Rehash(tr, buckets); err != nil {
			t.Fatalf("gset rehash to %d: %v", buckets, err)
		}
		if err := m.Rehash(tr, buckets); err != nil {
			t.Fatalf("map rehash to %d: %v", buckets, err)
		}
		close(gates[i]) // release the writers' next quarter under the new table
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	want := make(map[string]int64)
	for p := 0; p < lanes; p++ {
		for k, v := range ackedInc[p] {
			want[k] += v
		}
	}
	for k, v := range want {
		got, err := m.Get(prim.RealThread(0), k)
		if err != nil || got != v {
			t.Fatalf("Get(%s) = %d, %v; want %d acked", k, got, err, v)
		}
	}
	for p := 0; p < lanes; p++ {
		for k := range ackedAdd[p] {
			if !g.Has(prim.RealThread(0), k) {
				t.Fatalf("acked Add(%s) lost across rehash", k)
			}
		}
	}
	if gs := g.Stats(prim.RealThread(0)); gs.Generation != 3 || gs.Buckets != 16 {
		t.Fatalf("gset stats after three rehashes: %+v", gs)
	}
	if ms := m.Stats(prim.RealThread(0)); ms.Generation != 3 || ms.Buckets != 16 {
		t.Fatalf("map stats after three rehashes: %+v", ms)
	}
}

// --- Differential fuzz vs a mutex-map oracle ---------------------------------

type oracleEntry struct {
	kind Kind
	v    int64
}

// kmOracle is the mutex-map oracle: the obviously-correct sequential
// semantics of the keyed universe, used to differential-test solo runs
// (exact response equality) and concurrent runs (acked-op convergence).
type kmOracle struct {
	mu  sync.Mutex
	m   map[string]oracleEntry
	set map[string]bool
	cap int64
}

func newOracle(cap int64) *kmOracle {
	return &kmOracle{m: make(map[string]oracleEntry), set: make(map[string]bool), cap: cap}
}

func (o *kmOracle) incBy(key string, d int64) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	if d < 1 || d > o.cap {
		return ErrRange
	}
	e, ok := o.m[key]
	if ok && e.kind != KindCounter {
		return ErrKindMismatch
	}
	if e.v+d > o.cap {
		return ErrBudget
	}
	o.m[key] = oracleEntry{KindCounter, e.v + d}
	return nil
}

func (o *kmOracle) maxTo(key string, v int64) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	if v < 0 || v > o.cap {
		return ErrRange
	}
	e, ok := o.m[key]
	if ok && e.kind != KindMax {
		return ErrKindMismatch
	}
	o.m[key] = oracleEntry{KindMax, max(e.v, v)}
	return nil
}

func (o *kmOracle) get(key string) (int64, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	e, ok := o.m[key]
	if !ok {
		return 0, ErrUnknownKey
	}
	return e.v, nil
}

// runSoloDifferential drives one deterministic op script against a fresh
// 1-lane map+set and the oracle, requiring exact agreement on every value
// and error. ErrFull resolves by growing both sides' view (rehash), which
// must itself be invisible.
func runSoloDifferential(t *testing.T, script []byte) {
	t.Helper()
	w := prim.NewRealWorld()
	const width = 3 // field cap 6: small enough that scripts hit ErrBudget
	m := NewMonotoneMap(w, "dm", 1, WithBuckets(1), WithSlots(2), WithWidth(width), WithMaxBuckets(64))
	g := NewGSet(w, "dg", 1, WithBuckets(1), WithSlots(2), WithMaxBuckets(64))
	o := newOracle(m.FieldCap())
	th := prim.RealThread(0)
	keys := []string{"a", "bb", "ccc", "d4", "e-5", "f#6"}
	for i := 0; i+2 < len(script); i += 3 {
		op, key, arg := script[i]%6, keys[int(script[i+1])%len(keys)], int64(script[i+2]%10)
		switch op {
		case 0, 1: // inc
			want := o.incBy(key, arg)
			got := m.IncBy(th, key, arg)
			for errors.Is(got, ErrFull) {
				if err := m.Rehash(th, m.Buckets(th)*2); err != nil {
					t.Fatalf("step %d: rehash: %v", i, err)
				}
				got = m.IncBy(th, key, arg)
			}
			if !errors.Is(got, want) && (got != nil || want != nil) {
				t.Fatalf("step %d: IncBy(%s, %d) = %v, oracle %v", i, key, arg, got, want)
			}
		case 2: // max
			want := o.maxTo(key, arg)
			got := m.Max(th, key, arg)
			for errors.Is(got, ErrFull) {
				if err := m.Rehash(th, m.Buckets(th)*2); err != nil {
					t.Fatalf("step %d: rehash: %v", i, err)
				}
				got = m.Max(th, key, arg)
			}
			if !errors.Is(got, want) && (got != nil || want != nil) {
				t.Fatalf("step %d: Max(%s, %d) = %v, oracle %v", i, key, arg, got, want)
			}
		case 3: // get
			wantV, wantErr := o.get(key)
			gotV, gotErr := m.Get(th, key)
			if !errors.Is(gotErr, wantErr) && (gotErr != nil || wantErr != nil) {
				t.Fatalf("step %d: Get(%s) err = %v, oracle %v", i, key, gotErr, wantErr)
			}
			if gotErr == nil && gotV != wantV {
				t.Fatalf("step %d: Get(%s) = %d, oracle %d", i, key, gotV, wantV)
			}
		case 4: // set add
			got := g.Add(th, key)
			for errors.Is(got, ErrFull) {
				if err := g.Rehash(th, g.Buckets(th)*2); err != nil {
					t.Fatalf("step %d: gset rehash: %v", i, err)
				}
				got = g.Add(th, key)
			}
			if got != nil {
				t.Fatalf("step %d: Add(%s) = %v", i, key, got)
			}
			o.mu.Lock()
			o.set[key] = true
			o.mu.Unlock()
		case 5: // set has
			o.mu.Lock()
			want := o.set[key]
			o.mu.Unlock()
			if got := g.Has(th, key); got != want {
				t.Fatalf("step %d: Has(%s) = %v, oracle %v", i, key, got, want)
			}
		}
	}
}

func TestKeyedDifferentialVsMutexOracle(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		script := make([]byte, 600)
		rng.Read(script)
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) { runSoloDifferential(t, script) })
	}
}

// FuzzKeyedVsOracle lets the fuzzer drive the solo differential with
// arbitrary op scripts (`go test -fuzz=FuzzKeyedVsOracle ./internal/keyed`).
func FuzzKeyedVsOracle(f *testing.F) {
	f.Add([]byte{0, 0, 3, 3, 0, 0, 2, 1, 5, 4, 2, 0, 5, 2, 0})
	f.Add([]byte{1, 0, 9, 1, 0, 9, 3, 0, 0, 2, 0, 4})
	f.Fuzz(func(t *testing.T, script []byte) {
		if len(script) > 3*1024 {
			script = script[:3*1024]
		}
		runSoloDifferential(t, script)
	})
}

// TestKeyedConcurrentConvergence: monotone ops commute, so after a join the
// engine must agree exactly with an oracle replay of every acked op — under
// genuine goroutine concurrency, at a multi-word shape.
func TestKeyedConcurrentConvergence(t *testing.T) {
	const lanes, ops = 4, 3000
	w := prim.NewRealWorld()
	m := NewMonotoneMap(w, "cm", lanes, WithBuckets(4), WithSlots(8), WithWidth(24))
	keys := []string{"q", "r", "s", "tt", "uu", "vv", "w7", "x8"} // counters
	mkeys := []string{"m1", "m2", "m3"}                           // max registers
	type acked struct {
		inc map[string]int64
		mx  map[string]int64
	}
	per := make([]acked, lanes)
	var wg sync.WaitGroup
	for p := 0; p < lanes; p++ {
		per[p] = acked{inc: map[string]int64{}, mx: map[string]int64{}}
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			th := prim.RealThread(p)
			rng := rand.New(rand.NewSource(int64(7 + p)))
			for i := 0; i < ops; i++ {
				if rng.Intn(3) == 0 {
					k, v := mkeys[rng.Intn(len(mkeys))], int64(rng.Intn(1000))
					if err := m.Max(th, k, v); err != nil {
						t.Errorf("Max: %v", err)
						return
					}
					per[p].mx[k] = max(per[p].mx[k], v)
				} else {
					k, d := keys[rng.Intn(len(keys))], int64(rng.Intn(4)+1)
					if err := m.IncBy(th, k, d); err != nil {
						t.Errorf("IncBy: %v", err)
						return
					}
					per[p].inc[k] += d
				}
			}
		}(p)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	th := prim.RealThread(0)
	for _, k := range keys {
		var want int64
		for p := range per {
			want += per[p].inc[k]
		}
		if got, err := m.Get(th, k); err != nil || got != want {
			t.Fatalf("Get(%s) = %d, %v; oracle replay %d", k, got, err, want)
		}
	}
	for _, k := range mkeys {
		var want int64
		for p := range per {
			want = max(want, per[p].mx[k])
		}
		if got, err := m.Get(th, k); err != nil || got != want {
			t.Fatalf("Get(%s) = %d, %v; oracle replay %d", k, got, err, want)
		}
	}
}

// --- Allocation discipline ---------------------------------------------------

// TestKeyedPackedPathZeroAllocs pins the acceptance bar: on packed
// (one-word-bucket) shapes, steady-state Add/Has and Inc/Get perform zero
// heap allocations per op.
func TestKeyedPackedPathZeroAllocs(t *testing.T) {
	w := prim.NewRealWorld()
	g := NewGSet(w, "zg", 4, WithBuckets(4), WithSlots(8))                  // 4x8 bits: 1 word
	m := NewMonotoneMap(w, "zm", 2, WithBuckets(4), WithSlots(2), WithWidth(12)) // 4x12 bits: 1 word
	if !g.Stats(prim.RealThread(0)).Packed || !m.Stats(prim.RealThread(0)).Packed {
		t.Fatal("test shapes must be packed")
	}
	th := prim.RealThread(1)
	if err := g.Add(th, "hot"); err != nil {
		t.Fatal(err)
	}
	if err := m.Inc(th, "hits"); err != nil {
		t.Fatal(err)
	}
	checks := []struct {
		name string
		fn   func()
	}{
		{"gset-add", func() { _ = g.Add(th, "hot") }},
		{"gset-has", func() { _ = g.Has(th, "hot") }},
		{"gset-miss", func() { _ = g.Has(th, "cold") }},
		{"map-inc", func() { _ = m.Inc(th, "hits") }},
		{"map-get", func() { _, _ = m.Get(th, "hits") }},
	}
	for _, c := range checks {
		if avg := testing.AllocsPerRun(200, c.fn); avg != 0 {
			t.Errorf("%s: %.1f allocs/op, want 0", c.name, avg)
		}
	}
}
