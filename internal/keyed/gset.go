package keyed

import (
	"fmt"
	"sync"
	"sync/atomic"

	"stronglin/internal/interleave"
	"stronglin/internal/prim"
)

// GSet is a grow-only set over string keys, hashed into per-bucket k-XADD
// engines. Add and Has are strongly linearizable; see the package comment
// for the discipline. Add must be called with thread identities whose lane
// (ID mod lanes) is not used concurrently by another goroutine — the
// single-writer-per-lane contract every fetch&add construction in this repo
// shares (lease identities from a pool when goroutines outnumber lanes).
// Has may be called from any thread.
type GSet struct {
	w     prim.World
	name  string
	lanes int
	cfg   config

	codec      interleave.MultiPacked // lanes × slots-bit bitmap fields
	slotMask   []uint64               // slotMask[s]: slot s's bit in every lane field of a word
	guardWords int                    // ⌈lanes/64⌉ once-guard words per directory entry

	table prim.AnyRegister // *gsetTable
	gate  sync.RWMutex     // writers share it; Rehash takes it exclusively

	rehashes atomic.Int64
	retries  atomic.Int64
}

type gsetTable struct {
	gen     int64
	buckets []*gsetBucket
}

type gsetBucket struct {
	words []prim.FetchAddInt
	epoch prim.FetchAddInt

	mu  sync.RWMutex
	dir map[string]*gsetEntry
}

type gsetEntry struct {
	slot  int
	added []atomic.Uint64 // per-lane once-guard bits: lane l's XADD happened
}

// NewGSet builds a hashed grow-only set for lanes process lanes. The slot
// count (keys per bucket) doubles as the per-lane bitmap width, so it must
// be at most interleave.LaneBits; the lane count is unbounded (the codec
// stripes lanes over as many words as needed).
func NewGSet(w prim.World, name string, lanes int, opts ...Option) *GSet {
	cfg := defaults()
	for _, o := range opts {
		o(&cfg)
	}
	if lanes < 1 {
		panic(fmt.Sprintf("keyed: GSet lanes %d below 1", lanes))
	}
	if cfg.slots < 1 || cfg.slots > interleave.LaneBits {
		panic(fmt.Sprintf("keyed: GSet slots %d outside [1, %d]", cfg.slots, interleave.LaneBits))
	}
	if cfg.buckets < 1 || cfg.maxBuckets < cfg.buckets {
		panic(fmt.Sprintf("keyed: GSet buckets %d outside [1, %d]", cfg.buckets, cfg.maxBuckets))
	}
	g := &GSet{
		w:          w,
		name:       name,
		lanes:      lanes,
		cfg:        cfg,
		codec:      interleave.MustNewMultiPacked(lanes, cfg.slots),
		guardWords: (lanes + 63) / 64,
	}
	g.slotMask = make([]uint64, cfg.slots)
	for s := 0; s < cfg.slots; s++ {
		var m uint64
		for j := 0; j < g.codec.LanesPerWord(); j++ {
			m |= uint64(1) << uint(j*cfg.slots+s)
		}
		g.slotMask[s] = m
	}
	g.table = w.AnyRegister(name+".table", g.buildTable(0, cfg.buckets))
	return g
}

func (g *GSet) buildTable(gen int64, buckets int) *gsetTable {
	tb := &gsetTable{gen: gen, buckets: make([]*gsetBucket, buckets)}
	for b := range tb.buckets {
		bk := &gsetBucket{
			words: make([]prim.FetchAddInt, g.codec.Words()),
			epoch: g.w.FetchAddInt(fmt.Sprintf("%s.g%d.b%d.epoch", g.name, gen, b), 0),
			dir:   make(map[string]*gsetEntry),
		}
		for wi := range bk.words {
			bk.words[wi] = g.w.FetchAddInt(fmt.Sprintf("%s.g%d.b%d.w%d", g.name, gen, b, wi), 0)
		}
		tb.buckets[b] = bk
	}
	return tb
}

func (tb *gsetTable) bucket(key string) *gsetBucket {
	return tb.buckets[int(Hash(key)%uint64(len(tb.buckets)))]
}

// claim returns key's directory entry, assigning the next free slot on first
// sight. The critical section performs no shared-memory (prim) step, so it
// never blocks across a scheduler yield point.
func (b *gsetBucket) claim(key string, slots, guardWords int) (*gsetEntry, error) {
	b.mu.RLock()
	e := b.dir[key]
	b.mu.RUnlock()
	if e != nil {
		return e, nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if e := b.dir[key]; e != nil {
		return e, nil
	}
	if len(b.dir) >= slots {
		return nil, ErrFull
	}
	e = &gsetEntry{slot: len(b.dir), added: make([]atomic.Uint64, guardWords)}
	b.dir[key] = e
	return e, nil
}

// Add inserts key. The linearization point is the single fetch&add that sets
// the key's membership bit in the caller's lane (bumping the word's sequence
// field in the same step); a repeat add from the same lane is a no-op. The
// directory entry is inserted BEFORE the bit lands, which is what lets a
// reader commit a miss at a directory lookup: absence there proves no add of
// the key had reached its linearization point. Returns ErrFull when the
// key's bucket is out of slots (grow with Rehash and retry).
func (g *GSet) Add(t prim.Thread, key string) error {
	lane := t.ID() % g.lanes
	g.gate.RLock()
	defer g.gate.RUnlock()
	tb := g.table.ReadAny(t).(*gsetTable)
	b := tb.bucket(key)
	e, err := b.claim(key, g.cfg.slots, g.guardWords)
	if err != nil {
		return err
	}
	gi, bit := lane/64, uint64(1)<<uint(lane%64)
	if e.added[gi].Load()&bit != 0 {
		return nil
	}
	wi := g.codec.WordOf(lane)
	b.words[wi].FetchAddInt(t, g.codec.Spread(int64(1)<<uint(e.slot), lane)+interleave.SeqIncrement)
	prim.MarkLinPoint(g.w, t)
	e.added[gi].Or(bit)
	b.epoch.FetchAddInt(t, 1)
	return nil
}

// Has reports key membership. A hit commits at the word read that observed
// the bit (membership is monotone, so no validation can retract it). A miss
// is committed by a directory miss or by the closing epoch re-read of a
// validated collect — the op's final shared step. The table pointer is read
// fresh on every attempt; a rehash overlapping an attempt leaves the old
// generation frozen, so the epoch witness stays sound (see the package
// comment).
func (g *GSet) Has(t prim.Thread, key string) bool {
	for {
		tb := g.table.ReadAny(t).(*gsetTable)
		found, ok := g.hasIn(t, tb, key)
		if found {
			return true
		}
		if ok {
			return false
		}
		g.retries.Add(1)
	}
}

func (g *GSet) hasIn(t prim.Thread, tb *gsetTable, key string) (found, ok bool) {
	b := tb.bucket(key)
	b.mu.RLock()
	e := b.dir[key]
	b.mu.RUnlock()
	if e == nil {
		return false, true
	}
	mask := g.slotMask[e.slot]
	e1 := b.epoch.FetchAddInt(t, 0)
	for wi := range b.words {
		if mpPayload(g.codec, b.words[wi].FetchAddInt(t, 0))&mask != 0 {
			return true, true
		}
	}
	if b.epoch.FetchAddInt(t, 0) != e1 {
		return false, false
	}
	return false, true
}

// hasWitnessFree is Has with the closing witnesses removed: one unvalidated
// collect, no closing epoch or table re-read. It is linearizable — every
// monotone bit it reads is real — but NOT strongly linearizable: the miss is
// committed by information a later step could still contradict. Retained
// only for the negative model check pinning that gap.
func (g *GSet) hasWitnessFree(t prim.Thread, key string) bool {
	tb := g.table.ReadAny(t).(*gsetTable)
	b := tb.bucket(key)
	b.mu.RLock()
	e := b.dir[key]
	b.mu.RUnlock()
	if e == nil {
		return false
	}
	mask := g.slotMask[e.slot]
	for wi := range b.words {
		if mpPayload(g.codec, b.words[wi].FetchAddInt(t, 0))&mask != 0 {
			return true
		}
	}
	return false
}

// Rehash grows the set to the given bucket count (no-op if not larger, so
// concurrent growers don't compound). It blocks writers on the gate, copies
// the frozen directory into a freshly-named bucket generation, then flips
// the table pointer — flip-after-migrate, so an acked add is either migrated
// exactly or lands in the new generation. On ErrFull from the target shape
// the old table stays installed untouched.
func (g *GSet) Rehash(t prim.Thread, buckets int) error {
	if buckets < 1 || buckets > g.cfg.maxBuckets {
		return fmt.Errorf("keyed: bucket count %d outside [1, %d]", buckets, g.cfg.maxBuckets)
	}
	g.gate.Lock()
	defer g.gate.Unlock()
	old := g.table.ReadAny(t).(*gsetTable)
	if buckets <= len(old.buckets) {
		return nil
	}
	nt := g.buildTable(old.gen+1, buckets)
	for _, ob := range old.buckets {
		for key := range ob.dir {
			nb := nt.bucket(key)
			ne, err := nb.claim(key, g.cfg.slots, g.guardWords)
			if err != nil {
				return err
			}
			// Writers are excluded, so directory presence implies the bit
			// landed (claim and XADD share one gate-reader critical section).
			nb.words[g.codec.WordOf(0)].FetchAddInt(t,
				g.codec.Spread(int64(1)<<uint(ne.slot), 0)+interleave.SeqIncrement)
			ne.added[0].Or(1)
		}
	}
	g.table.WriteAny(t, nt)
	g.rehashes.Add(1)
	return nil
}

// Buckets returns the current bucket count.
func (g *GSet) Buckets(t prim.Thread) int {
	return len(g.table.ReadAny(t).(*gsetTable).buckets)
}

// Stats returns a telemetry snapshot.
func (g *GSet) Stats(t prim.Thread) Stats {
	tb := g.table.ReadAny(t).(*gsetTable)
	st := Stats{
		Buckets:        len(tb.buckets),
		Slots:          g.cfg.slots,
		WordsPerBucket: g.codec.Words(),
		Packed:         g.codec.Words() == 1,
		Generation:     tb.gen,
		Rehashes:       g.rehashes.Load(),
		ReadRetries:    g.retries.Load(),
	}
	for _, b := range tb.buckets {
		b.mu.RLock()
		st.Keys += len(b.dir)
		b.mu.RUnlock()
		st.EpochAnnounces += b.epoch.FetchAddInt(t, 0)
	}
	return st
}
