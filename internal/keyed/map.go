package keyed

import (
	"fmt"
	"sync"
	"sync/atomic"

	"stronglin/internal/interleave"
	"stronglin/internal/prim"
)

// MonotoneMap is a strongly-linearizable map from string keys to monotone
// values. A key is bound at first write to KindCounter (Inc/IncBy, read as
// the sum of per-lane fields) or KindMax (Max, read as the max of per-lane
// fields); the other kind's writes then return ErrKindMismatch. Keys hash to
// buckets; inside a bucket a key owns `lanes` contiguous fields of the
// MultiPacked engine — one per process lane — so every write is one exact
// in-field fetch&add plus the bucket epoch announce, and Get is an
// epoch-validated collect of at most ceil(lanes/lanesPerWord) words.
//
// Key EXISTENCE lives in the payload, never in the directory alone: a
// reader that trusted a bare directory claim could answer "present, value 0"
// for a key whose first write has not linearized — a genuine linearizability
// violation the model checks caught. Counters are existence-carrying for
// free (the folded sum is >= 1 once any inc lands); max registers store v+1
// in their fields so a landed Max(k, 0) is distinguishable from no write at
// all. A validated all-zero collect therefore COMMITS ErrUnknownKey: at the
// closing witness instant no first write had landed. The +1 bias is why the
// client value cap is FieldCap = 2^width - 2, one unit under the field mask,
// for both kinds.
//
// The same claim-precedes-landing window makes an EAGER kind refusal
// unsound: a refusal observed from a claim whose binding write has not yet
// landed commits "key bound" while the refused process's next get still
// commits "unknown" — an un-linearizable trio pinned by the
// KindRaceWithReader model check. The refusal therefore AWAITS the slot's
// bound flag (written by the binder right after its payload XADD) before
// returning ErrKindMismatch: a weak-fairness conditional read bounded by
// the binder's two-step claim→XADD→flag window, the same primitive the
// migration protocol uses to wait for a generation flip.
//
// Writers must respect the single-writer-per-lane contract (thread ID mod
// lanes); Get may run on any thread.
type MonotoneMap struct {
	w     prim.World
	name  string
	lanes int
	cfg   config

	codec interleave.MultiPacked // slots*lanes fields × width bits
	mask  int64                  // per-field stored cap: 1<<width - 1; client cap is mask-1

	table prim.AnyRegister // *mapTable
	gate  sync.RWMutex

	rehashes atomic.Int64
	retries  atomic.Int64
}

type mapTable struct {
	gen     int64
	buckets []*mapBucket
}

type mapBucket struct {
	words []prim.FetchAddInt
	epoch prim.FetchAddInt
	// bound[s] is slot s's landed flag: written true by the binding first
	// writer right after its payload XADD. A conflicting-kind writer AWAITS
	// it before returning ErrKindMismatch, so the refusal — which commits
	// "key is bound" — linearizes after the binding write's linearization
	// point, never after a mere directory claim (see the type comment).
	bound []prim.AnyRegister

	mu  sync.RWMutex
	dir map[string]*mapEntry
}

type mapEntry struct {
	slot int
	kind Kind
	// shadow[l] mirrors lane l's field value. Each field has a single
	// writer (the lane owner), so the owner's private mirror is exact and
	// saves the pre-write word read on the hot path; only slot l's owner
	// ever touches shadow[l].
	shadow []int64
}

// NewMonotoneMap builds a keyed monotone map for lanes process lanes.
func NewMonotoneMap(w prim.World, name string, lanes int, opts ...Option) *MonotoneMap {
	cfg := defaults()
	cfg.slots = 8 // denser fields than a GSet bucket: slots*lanes of them
	for _, o := range opts {
		o(&cfg)
	}
	if lanes < 1 {
		panic(fmt.Sprintf("keyed: MonotoneMap lanes %d < 1", lanes))
	}
	if cfg.slots < 1 {
		panic(fmt.Sprintf("keyed: MonotoneMap slots %d < 1", cfg.slots))
	}
	if cfg.width < 2 || cfg.width > interleave.LaneBits {
		// Width 1 leaves no room for the max registers' +1 existence bias
		// (client cap would be 0).
		panic(fmt.Sprintf("keyed: MonotoneMap width %d outside [2, %d]", cfg.width, interleave.LaneBits))
	}
	if cfg.buckets < 1 || cfg.maxBuckets < cfg.buckets {
		panic(fmt.Sprintf("keyed: MonotoneMap buckets %d outside [1, %d]", cfg.buckets, cfg.maxBuckets))
	}
	m := &MonotoneMap{
		w:     w,
		name:  name,
		lanes: lanes,
		cfg:   cfg,
		codec: interleave.MustNewMultiPacked(cfg.slots*lanes, cfg.width),
		mask:  int64(1)<<uint(cfg.width) - 1,
	}
	m.table = w.AnyRegister(name+".table", m.buildTable(0, cfg.buckets))
	return m
}

func (m *MonotoneMap) buildTable(gen int64, buckets int) *mapTable {
	tb := &mapTable{gen: gen, buckets: make([]*mapBucket, buckets)}
	for b := range tb.buckets {
		bk := &mapBucket{
			words: make([]prim.FetchAddInt, m.codec.Words()),
			epoch: m.w.FetchAddInt(fmt.Sprintf("%s.g%d.b%d.epoch", m.name, gen, b), 0),
			bound: make([]prim.AnyRegister, m.cfg.slots),
			dir:   make(map[string]*mapEntry),
		}
		for wi := range bk.words {
			bk.words[wi] = m.w.FetchAddInt(fmt.Sprintf("%s.g%d.b%d.w%d", m.name, gen, b, wi), 0)
		}
		for s := range bk.bound {
			bk.bound[s] = m.w.AnyRegister(fmt.Sprintf("%s.g%d.b%d.s%d.bound", m.name, gen, b, s), false)
		}
		tb.buckets[b] = bk
	}
	return tb
}

func (tb *mapTable) bucket(key string) *mapBucket {
	return tb.buckets[int(Hash(key)%uint64(len(tb.buckets)))]
}

// claim resolves key to its directory entry, inserting a fresh one bound to
// kind if the key is new. The second return reports that THIS call bound the
// key: the caller is then the binding first writer and must land its payload
// XADD and set the slot's bound flag. Kind checking is the caller's job —
// the conflicting-kind refusal needs the await discipline (see mapBucket).
func (b *mapBucket) claim(key string, slots, lanes int, kind Kind) (*mapEntry, bool, error) {
	b.mu.RLock()
	e := b.dir[key]
	b.mu.RUnlock()
	if e != nil {
		return e, false, nil
	}
	b.mu.Lock()
	if e = b.dir[key]; e != nil {
		b.mu.Unlock()
		return e, false, nil
	}
	if len(b.dir) >= slots {
		b.mu.Unlock()
		return nil, false, ErrFull
	}
	e = &mapEntry{slot: len(b.dir), kind: kind, shadow: make([]int64, lanes)}
	b.dir[key] = e
	b.mu.Unlock()
	return e, true, nil
}

// awaitBound blocks until slot's binding first write has landed. The wait is
// a weak-fairness conditional read (prim.AwaitAny — one un-enabled step in
// the simulated world, a read spin in the real one), bounded by the binder's
// claim→XADD→flag window of two shared steps. Pattern precedent: the
// migration protocol's wait-for-generation-flip.
func (b *mapBucket) awaitBound(w prim.World, t prim.Thread, slot int) {
	prim.AwaitAny(w, t, b.bound[slot], func(v any) bool { return v == true })
}

// Inc increments key's counter by one.
func (m *MonotoneMap) Inc(t prim.Thread, key string) error { return m.IncBy(t, key, 1) }

// IncBy adds d >= 1 to key's counter, binding the key to KindCounter on
// first write. The linearization point is the in-field fetch&add; the lane's
// current value comes from its shadow mirror, which is exact because the
// field has a single writer (this lane). Returns ErrBudget when the lane's
// field cannot absorb d.
func (m *MonotoneMap) IncBy(t prim.Thread, key string, d int64) error {
	if d < 1 || d > m.mask-1 {
		return ErrRange
	}
	lane := t.ID() % m.lanes
	m.gate.RLock()
	defer m.gate.RUnlock()
	tb := m.table.ReadAny(t).(*mapTable)
	b := tb.bucket(key)
	e, first, err := b.claim(key, m.cfg.slots, m.lanes, KindCounter)
	if err != nil {
		return err
	}
	if e.kind != KindCounter {
		// The refusal commits "key is bound to the other kind", so it must
		// linearize after the binding first write — which may not have
		// landed yet (the directory claim precedes the binder's payload
		// XADD). Refusing early is the un-linearizable trio the
		// KindRaceWithReader model check pins: refusal says bound, the
		// refused process's next get still says unknown.
		b.awaitBound(m.w, t, e.slot)
		return ErrKindMismatch
	}
	cur := e.shadow[lane]
	if cur+d > m.mask-1 {
		return ErrBudget
	}
	pl := e.slot*m.lanes + lane
	b.words[m.codec.WordOf(pl)].FetchAddInt(t, m.codec.FieldDelta(cur, cur+d, pl))
	prim.MarkLinPoint(m.w, t)
	e.shadow[lane] = cur + d
	if first {
		b.bound[e.slot].WriteAny(t, true)
	}
	b.epoch.FetchAddInt(t, 1)
	return nil
}

// Max raises key's max register to v, binding the key to KindMax on first
// write. The field stores v+1 (the existence bias — see the type comment),
// so even Max(k, 0) on a fresh key lands a real fetch&add and the key's
// existence is readable from the payload. A write at or below the lane's
// current value is a no-op (the lane's own field already dominates it, so
// the combined max cannot drop).
func (m *MonotoneMap) Max(t prim.Thread, key string, v int64) error {
	if v < 0 || v > m.mask-1 {
		return ErrRange
	}
	lane := t.ID() % m.lanes
	stored := v + 1
	m.gate.RLock()
	defer m.gate.RUnlock()
	tb := m.table.ReadAny(t).(*mapTable)
	b := tb.bucket(key)
	e, first, err := b.claim(key, m.cfg.slots, m.lanes, KindMax)
	if err != nil {
		return err
	}
	if e.kind != KindMax {
		// See IncBy: the refusal linearizes after the binding write, so
		// await its landing before committing "bound to counter".
		b.awaitBound(m.w, t, e.slot)
		return ErrKindMismatch
	}
	cur := e.shadow[lane]
	if stored <= cur {
		return nil
	}
	pl := e.slot*m.lanes + lane
	b.words[m.codec.WordOf(pl)].FetchAddInt(t, m.codec.FieldDelta(cur, stored, pl))
	prim.MarkLinPoint(m.w, t)
	e.shadow[lane] = stored
	if first {
		b.bound[e.slot].WriteAny(t, true)
	}
	b.epoch.FetchAddInt(t, 1)
	return nil
}

// Get returns key's combined value (sum of lanes for a counter, max for a
// max register), or ErrUnknownKey. The collect is validated by the closing
// epoch re-read — the read's final shared step — and retried until the
// witness holds. The table pointer is read fresh on every attempt; a rehash
// overlapping an attempt leaves the old generation frozen, so the epoch
// witness stays sound (see the package comment).
func (m *MonotoneMap) Get(t prim.Thread, key string) (int64, error) {
	for {
		tb := m.table.ReadAny(t).(*mapTable)
		v, ok, err := m.getIn(t, tb, key)
		if ok {
			return v, err
		}
		m.retries.Add(1)
	}
}

func (m *MonotoneMap) getIn(t prim.Thread, tb *mapTable, key string) (int64, bool, error) {
	b := tb.bucket(key)
	b.mu.RLock()
	e := b.dir[key]
	b.mu.RUnlock()
	if e == nil {
		return 0, true, ErrUnknownKey
	}
	lo := e.slot * m.lanes
	hi := lo + m.lanes - 1
	perWord := m.codec.LanesPerWord()
	e1 := b.epoch.FetchAddInt(t, 0)
	var acc int64
	for wi := m.codec.WordOf(lo); wi <= m.codec.WordOf(hi); wi++ {
		word := b.words[wi].FetchAddInt(t, 0)
		first := max(lo, wi*perWord)
		last := min(hi, wi*perWord+perWord-1)
		for pl := first; pl <= last; pl++ {
			v := m.codec.Lane(word, pl)
			if e.kind == KindMax {
				acc = max(acc, v)
			} else {
				acc += v
			}
		}
	}
	if b.epoch.FetchAddInt(t, 0) != e1 {
		return 0, false, nil
	}
	if acc == 0 {
		// A validated all-zero collect means no first write of this key had
		// linearized at the witness instant — the directory claim alone does
		// not make the key exist (see the type comment). Committing unknown
		// here, at the closing epoch read, is exactly as sound as a miss.
		return 0, true, ErrUnknownKey
	}
	if e.kind == KindMax {
		acc-- // strip the existence bias
	}
	return acc, true, nil
}

// getWitnessFree is Get with the closing witnesses removed: a single
// unvalidated collect. Linearizable-but-NOT-strongly-linearizable; retained
// for the negative model check only.
func (m *MonotoneMap) getWitnessFree(t prim.Thread, key string) (int64, error) {
	tb := m.table.ReadAny(t).(*mapTable)
	b := tb.bucket(key)
	b.mu.RLock()
	e := b.dir[key]
	b.mu.RUnlock()
	if e == nil {
		return 0, ErrUnknownKey
	}
	lo := e.slot * m.lanes
	hi := lo + m.lanes - 1
	perWord := m.codec.LanesPerWord()
	var acc int64
	for wi := m.codec.WordOf(lo); wi <= m.codec.WordOf(hi); wi++ {
		word := b.words[wi].FetchAddInt(t, 0)
		first := max(lo, wi*perWord)
		last := min(hi, wi*perWord+perWord-1)
		for pl := first; pl <= last; pl++ {
			v := m.codec.Lane(word, pl)
			if e.kind == KindMax {
				acc = max(acc, v)
			} else {
				acc += v
			}
		}
	}
	if acc == 0 {
		return 0, ErrUnknownKey
	}
	if e.kind == KindMax {
		acc--
	}
	return acc, nil
}

// Kind returns the kind key is bound to (KindNone if unknown).
func (m *MonotoneMap) Kind(t prim.Thread, key string) Kind {
	b := m.table.ReadAny(t).(*mapTable).bucket(key)
	b.mu.RLock()
	defer b.mu.RUnlock()
	if e := b.dir[key]; e != nil {
		return e.kind
	}
	return KindNone
}

// Rehash grows the map to the given bucket count; see GSet.Rehash for the
// cutover discipline (gate writers out, migrate exact values, flip the
// table pointer last).
func (m *MonotoneMap) Rehash(t prim.Thread, buckets int) error {
	if buckets < 1 || buckets > m.cfg.maxBuckets {
		return fmt.Errorf("keyed: bucket count %d outside [1, %d]", buckets, m.cfg.maxBuckets)
	}
	m.gate.Lock()
	defer m.gate.Unlock()
	old := m.table.ReadAny(t).(*mapTable)
	if buckets <= len(old.buckets) {
		return nil
	}
	nt := m.buildTable(old.gen+1, buckets)
	for _, ob := range old.buckets {
		for key, oe := range ob.dir {
			nb := nt.bucket(key)
			ne, _, err := nb.claim(key, m.cfg.slots, m.lanes, oe.kind)
			if err != nil {
				return err
			}
			for l := 0; l < m.lanes; l++ {
				opl := oe.slot*m.lanes + l
				v := m.codec.Lane(ob.words[m.codec.WordOf(opl)].FetchAddInt(t, 0), opl)
				ne.shadow[l] = v
				if v == 0 {
					continue
				}
				npl := ne.slot*m.lanes + l
				nb.words[m.codec.WordOf(npl)].FetchAddInt(t, m.codec.FieldDelta(0, v, npl))
			}
			// Writers are gate-excluded, so every migrated entry's binding
			// write has landed; mark the slot bound in the new generation.
			nb.bound[ne.slot].WriteAny(t, true)
		}
	}
	m.table.WriteAny(t, nt)
	m.rehashes.Add(1)
	return nil
}

// Buckets returns the current bucket count.
func (m *MonotoneMap) Buckets(t prim.Thread) int {
	return len(m.table.ReadAny(t).(*mapTable).buckets)
}

// FieldCap returns the per-(key, lane) value cap, 2^width - 2: one unit of
// the field range is reserved for the max registers' existence bias.
func (m *MonotoneMap) FieldCap() int64 { return m.mask - 1 }

// Stats returns a telemetry snapshot.
func (m *MonotoneMap) Stats(t prim.Thread) Stats {
	tb := m.table.ReadAny(t).(*mapTable)
	st := Stats{
		Buckets:        len(tb.buckets),
		Slots:          m.cfg.slots,
		WordsPerBucket: m.codec.Words(),
		Packed:         m.codec.Words() == 1,
		Generation:     tb.gen,
		Rehashes:       m.rehashes.Load(),
		ReadRetries:    m.retries.Load(),
	}
	for _, b := range tb.buckets {
		b.mu.RLock()
		st.Keys += len(b.dir)
		b.mu.RUnlock()
		st.EpochAnnounces += b.epoch.FetchAddInt(t, 0)
	}
	return st
}
