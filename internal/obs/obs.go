// Package obs is the protocol-level telemetry substrate: zero-allocation
// counters, gauges and log₂-bucketed histograms with a registry that serves
// the Prometheus text exposition format.
//
// The package exists because the protocol layers (internal/core's multi-word
// snapshot, internal/shard's epoch-validated combining reads, internal/pool's
// lane leases) have health signals — retry pressure, helping traffic,
// lifetime-budget consumption — that are invisible at runtime, and the
// lifetime budgets in particular (the epoch register's 2⁴⁸ announce capacity,
// the mod-2¹⁶ sequence wrap, the Algorithm 1 reference budgets) must be
// watched as watermarks long before they exhaust.
//
// # Cost model
//
// Every instrument is designed so the engines can afford it on hot paths:
//
//   - An enabled Counter/Gauge/Histogram op is ONE predictable atomic RMW
//     (plus a second for a histogram's sum) on a cache-line-padded word —
//     never a lock, never an allocation.
//   - A nil instrument is a no-op: every method is nil-receiver-safe, so
//     optional instrumentation costs one predicted branch when disabled and
//     disappears from profiles.
//   - The engines additionally keep their own telemetry on SLOW paths only
//     (a failed validation round, a pressure raise, a deposit): the
//     uncontended fast path of an instrumented engine carries zero added
//     atomic ops, and the registry derives watermark gauges at SCRAPE time
//     (reading a word's sequence field, an epoch's announce count) instead
//     of taxing every operation.
//
// # Registry
//
// A Registry owns named metric families and renders them in the Prometheus
// text format (WritePrometheus). Instruments can be allocated by the registry
// (Counter/Gauge/Histogram) or supplied as read-at-scrape closures
// (CounterFunc/GaugeFunc) over telemetry an engine already keeps — the
// closures are how the always-on engine counters and the lifetime watermarks
// are exported without double counting on the hot path. Default is the
// package-level registry for processes that serve a single stack; servers
// that build several stacks (tests, the attack generator) allocate their own.
package obs

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// HelpStats is the always-on helping/retry telemetry block every combining
// read engine keeps (the multi-word snapshot's scans, the sharded objects'
// epoch-validated reads). All counts are slow-path events: the uncontended
// fast path touches none of them.
type HelpStats struct {
	// Deposits counts helper views deposited by writers/updaters that saw
	// raised pressure after announcing.
	Deposits int64 `json:"deposits"`
	// Adopts counts reads/scans that returned a helper-deposited view.
	Adopts int64 `json:"adopts"`
	// AdoptMisses counts adoption attempts whose closing witness failed (a
	// deposit was present but an announce moved past it): each miss is one
	// turn of the documented 2-step slot-read/witness residue window.
	AdoptMisses int64 `json:"adopt_misses"`
	// Retries counts failed validation rounds across all reads/scans — the
	// retry pressure the helping protocol exists to bound.
	Retries int64 `json:"retries"`
	// Raises counts pressure-raise episodes (reads/scans that exhausted
	// their retry budget and solicited help).
	Raises int64 `json:"raises"`
}

// CacheStats is the always-on telemetry block of an anchor-revalidated view
// cache (the multi-word snapshot's cached scans, the sharded objects' cached
// combines). Misses and refreshes are slow-path events — a missing scan falls
// into the full collect anyway — and are always counted by the engines; hits
// ARE the fast path, so they are counted only when the optional scrape-layer
// hit counter (SnapMetrics/ShardMetrics.CacheHits) is attached, keeping the
// uninstrumented hit path at zero added atomic operations.
type CacheStats struct {
	// Hits counts reads/scans served from the cache after re-validating the
	// anchor with one fresh word-0/epoch read. 0 unless the optional hit
	// counter is wired (see the type comment).
	Hits int64 `json:"hits"`
	// Misses counts reads/scans that consulted the cache and fell into the
	// full collect: cold entries and entries whose anchor a completed write
	// had moved past.
	Misses int64 `json:"misses"`
	// Refreshes counts cache publications: validated collects (own or
	// adopted) whose anchor differed from the cached entry's.
	Refreshes int64 `json:"refreshes"`
}

// cacheLine is the assumed cache-line size for padding.
const cacheLine = 64

// Counter is a monotonically-increasing atomic counter padded to its own
// cache line, so arrays and sibling fields of counters never false-share.
// The zero value is ready to use; a nil *Counter is a no-op.
type Counter struct {
	v atomic.Int64
	_ [cacheLine - 8]byte
}

// Inc adds 1.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds d (d must be non-negative for the value to remain monotone).
func (c *Counter) Add(d int64) {
	if c != nil {
		c.v.Add(d)
	}
}

// Load returns the current count (0 on nil).
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value with a watermark helper. The zero
// value is ready; a nil *Gauge is a no-op.
type Gauge struct {
	v atomic.Int64
	_ [cacheLine - 8]byte
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Mark raises the gauge to v if v exceeds the current value — the lock-free
// high-watermark op (CAS loop; at most one retry per concurrent raiser).
func (g *Gauge) Mark(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Load returns the current value (0 on nil).
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the bucket count of a log₂ histogram: bucket 0 holds the
// value 0 and bucket b (1..64) holds values v with bits.Len64(v) == b, i.e.
// v in [2^(b-1), 2^b-1]. 64-bit values always land in a bucket.
const histBuckets = 65

// Histogram is a lock-free log₂-bucketed occurrence histogram for
// non-negative values (latencies in nanoseconds, retry-round counts, batch
// sizes). Observe is two atomic adds and no allocation; buckets are exact
// counts, quantiles are bucket-interpolated (≤ 2× relative error, far below
// run-to-run noise for latency work). The zero value is ready; a nil
// *Histogram is a no-op.
type Histogram struct {
	buckets [histBuckets]atomic.Int64
	sum     atomic.Int64
}

// Observe records v (negative values clamp to 0).
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.buckets[bits.Len64(uint64(v))].Add(1)
	h.sum.Add(v)
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	var n int64
	for i := range h.buckets {
		n += h.buckets[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Quantile returns the q-quantile (0 < q ≤ 1) by nearest rank over the
// buckets, linearly interpolated inside the target bucket; 0 on an empty
// histogram. Concurrent Observes make the result a consistent-enough
// point-in-time estimate (counts are monotone).
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	var counts [histBuckets]int64
	var total int64
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var cum int64
	for b, c := range counts {
		if c == 0 {
			continue
		}
		if cum+c >= rank {
			lo, hi := bucketBounds(b)
			// Position of the target rank inside this bucket, interpolated
			// over the bucket's value range.
			frac := float64(rank-cum) / float64(c)
			return float64(lo) + frac*float64(hi-lo)
		}
		cum += c
	}
	return 0 // unreachable: total > 0
}

// bucketBounds returns the value range [lo, hi] of bucket b.
func bucketBounds(b int) (lo, hi int64) {
	if b == 0 {
		return 0, 0
	}
	if b >= 64 {
		return int64(1) << 62, math.MaxInt64 // bucket 64's true range overflows; clamp
	}
	return int64(1) << (b - 1), int64(1)<<b - 1
}

// Kind names a metric family's Prometheus type.
type Kind string

// Metric kinds.
const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindHistogram Kind = "histogram"
)

// family is one registered metric: a name, help text, and either a scalar
// read function or a histogram.
type family struct {
	name, help string
	kind       Kind
	read       func() int64 // scalar kinds
	hist       *Histogram   // KindHistogram
}

// Registry owns named metric families and serves them in the Prometheus text
// exposition format. Registration takes a lock; reading instruments never
// does. Names must be unique per registry (duplicate registration panics:
// it is a wiring bug, not a runtime condition).
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// Default is the package-level registry, for processes that serve one stack.
var Default = NewRegistry()

func (r *Registry) add(f *family) {
	if !validName(f.name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", f.name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[f.name]; dup {
		panic(fmt.Sprintf("obs: duplicate metric %q", f.name))
	}
	r.byName[f.name] = f
	r.families = append(r.families, f)
}

// validName reports whether name matches the Prometheus metric-name grammar
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func validName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// Counter allocates and registers a counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.add(&family{name: name, help: help, kind: KindCounter, read: c.Load})
	return c
}

// Gauge allocates and registers a gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.add(&family{name: name, help: help, kind: KindGauge, read: g.Load})
	return g
}

// Histogram allocates and registers a log₂ histogram.
func (r *Registry) Histogram(name, help string) *Histogram {
	h := &Histogram{}
	r.add(&family{name: name, help: help, kind: KindHistogram, hist: h})
	return h
}

// CounterFunc registers a counter whose value is read at scrape time — the
// bridge to telemetry an engine already keeps (HelpStats fields, op counts),
// exported without a second hot-path increment.
func (r *Registry) CounterFunc(name, help string, fn func() int64) {
	r.add(&family{name: name, help: help, kind: KindCounter, read: fn})
}

// GaugeFunc registers a gauge read at scrape time — how the lifetime
// watermarks (epoch announce counts, sequence fields, Algorithm 1 budget
// consumption) are derived from the registers themselves instead of taxing
// every operation.
func (r *Registry) GaugeFunc(name, help string, fn func() int64) {
	r.add(&family{name: name, help: help, kind: KindGauge, read: fn})
}

// Names returns the registered family names in registration order — the
// golden list the /metrics endpoint tests assert against.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, len(r.families))
	for i, f := range r.families {
		out[i] = f.name
	}
	return out
}

// WritePrometheus renders every family in the Prometheus text exposition
// format (version 0.0.4): HELP and TYPE comments, then the samples.
// Histograms render cumulative le-labelled buckets (upper bounds 2^b−1) plus
// _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := append([]*family(nil), r.families...)
	r.mu.Unlock()
	for _, f := range fams {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.kind); err != nil {
			return err
		}
		if f.kind != KindHistogram {
			if _, err := fmt.Fprintf(w, "%s %d\n", f.name, f.read()); err != nil {
				return err
			}
			continue
		}
		if err := writeHistogram(w, f.name, f.hist); err != nil {
			return err
		}
	}
	return nil
}

func writeHistogram(w io.Writer, name string, h *Histogram) error {
	var counts [histBuckets]int64
	top := -1
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		if counts[i] > 0 {
			top = i
		}
	}
	var cum int64
	for b := 0; b <= top; b++ {
		cum += counts[b]
		_, hi := bucketBounds(b)
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", name, hi, cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n", name, h.sum.Load(), name, cum)
	return err
}

// SnapMetrics is the optional scrape-layer instrumentation of a multi-word
// snapshot (core.WithSnapshotObs). All fields are nil-safe: an unset field
// is a no-op, so partial wiring is fine and the disabled cost is one
// predicted branch on the slow path only.
type SnapMetrics struct {
	// ScanRounds records the failed validation rounds of each CONTENDED scan
	// (scans that validate their first round — the uncontended fast path —
	// are not observed, so the histogram isolates retry pressure).
	ScanRounds *Histogram
	// CacheHits counts scans served from the view cache. The hit path is the
	// engine's fastest path, so this is the one counter that taxes it (one
	// atomic add when wired, one predicted branch when nil) — attach it where
	// the serving stack wants hit rates, leave it nil where nanoseconds rule.
	CacheHits *Counter
}

// ShardMetrics is the optional scrape-layer instrumentation of a sharded
// object's combining reads (shard.WithObs). Fields are nil-safe like
// SnapMetrics.
type ShardMetrics struct {
	// ReadRounds records the failed validation rounds of each contended
	// combining read (uncontended reads are not observed).
	ReadRounds *Histogram
	// CacheHits counts combining reads served from the epoch-anchored
	// combine cache (see SnapMetrics.CacheHits for the cost contract).
	CacheHits *Counter
}

// SortedNames is Names sorted — convenience for deterministic test output.
func (r *Registry) SortedNames() []string {
	names := r.Names()
	sort.Strings(names)
	return names
}
