package obs

import (
	"bufio"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if got := c.Load(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}

	var g Gauge
	g.Set(7)
	g.Mark(3) // below: no-op
	if got := g.Load(); got != 7 {
		t.Fatalf("gauge after Mark(3) = %d, want 7", got)
	}
	g.Mark(11)
	if got := g.Load(); got != 11 {
		t.Fatalf("gauge after Mark(11) = %d, want 11", got)
	}
}

func TestNilInstrumentsAreNoOps(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Mark(2)
	h.Observe(5)
	if c.Load() != 0 || g.Load() != 0 || h.Count() != 0 || h.Sum() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil instruments must read as zero")
	}
	var sm *SnapMetrics
	_ = sm // struct pointers are only dereferenced by callers after nil checks
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	for _, v := range []int64{0, 1, 2, 3, 4, 7, 8, 1023, 1024, -5} {
		h.Observe(v)
	}
	if got := h.Count(); got != 10 {
		t.Fatalf("count = %d, want 10", got)
	}
	// -5 clamps to 0, so sum = 0+1+2+3+4+7+8+1023+1024+0.
	if got, want := h.Sum(), int64(2072); got != want {
		t.Fatalf("sum = %d, want %d", got, want)
	}
	// Bucket occupancy: b0={0,0}, b1={1}, b2={2,3}, b3={4,7}, b4={8}, b10={1023}, b11={1024}.
	wantBuckets := map[int]int64{0: 2, 1: 1, 2: 2, 3: 2, 4: 1, 10: 1, 11: 1}
	for b := range h.buckets {
		if got := h.buckets[b].Load(); got != wantBuckets[b] {
			t.Fatalf("bucket %d = %d, want %d", b, got, wantBuckets[b])
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile must be 0")
	}
	// 100 observations of 1000: every quantile must land inside bucket 10
	// ([512, 1023]).
	for i := 0; i < 100; i++ {
		h.Observe(1000)
	}
	for _, q := range []float64{0.01, 0.5, 0.99, 1} {
		got := h.Quantile(q)
		if got < 512 || got > 1023 {
			t.Fatalf("Quantile(%v) = %v, want within [512, 1023]", q, got)
		}
	}
	// Skewed: 90 zeros, 10 large. p50 must report 0; p99 must land in the
	// large bucket.
	var h2 Histogram
	for i := 0; i < 90; i++ {
		h2.Observe(0)
	}
	for i := 0; i < 10; i++ {
		h2.Observe(1 << 20)
	}
	if got := h2.Quantile(0.5); got != 0 {
		t.Fatalf("p50 = %v, want 0", got)
	}
	if got := h2.Quantile(0.99); got < 1<<19 {
		t.Fatalf("p99 = %v, want >= %d", got, 1<<19)
	}
}

func TestBucketBounds(t *testing.T) {
	cases := []struct {
		b      int
		lo, hi int64
	}{
		{0, 0, 0},
		{1, 1, 1},
		{2, 2, 3},
		{10, 512, 1023},
		{63, 1 << 62, 1<<63 - 1},
		{64, 1 << 62, math.MaxInt64},
	}
	for _, c := range cases {
		lo, hi := bucketBounds(c.b)
		if lo != c.lo || hi != c.hi {
			t.Fatalf("bucketBounds(%d) = (%d, %d), want (%d, %d)", c.b, lo, hi, c.lo, c.hi)
		}
	}
}

// TestHistogramConcurrent is the -race target for the lock-free histogram:
// concurrent observers, quantile readers, and a Prometheus renderer must be
// data-race-free, and the final totals must be exact.
func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("conc_test_ns", "concurrency test")
	const (
		goroutines = 8
		perG       = 2000
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Observe(int64(g*perG + i))
			}
		}(g)
	}
	// Concurrent readers: quantiles and full text renders while observing.
	var rd sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 2; i++ {
		rd.Add(1)
		go func() {
			defer rd.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_ = h.Quantile(0.99)
					var sb strings.Builder
					_ = r.WritePrometheus(&sb)
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	rd.Wait()
	if got, want := h.Count(), int64(goroutines*perG); got != want {
		t.Fatalf("count = %d, want %d", got, want)
	}
}

func TestRegistryNamesAndDuplicates(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "a")
	r.Gauge("b_value", "b")
	r.Histogram("c_ns", "c")
	r.CounterFunc("d_total", "d", func() int64 { return 1 })
	r.GaugeFunc("e_value", "e", func() int64 { return 2 })
	want := []string{"a_total", "b_value", "c_ns", "d_total", "e_value"}
	got := r.Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names()[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("duplicate registration must panic")
			}
		}()
		r.Counter("a_total", "dup")
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("invalid metric name must panic")
			}
		}()
		r.Counter("9bad name", "bad")
	}()
}

// TestWritePrometheusFormat parses the rendered text line by line against the
// exposition-format grammar: every non-comment line is `name[{labels}] value`,
// every family has HELP and TYPE comments, histogram buckets are cumulative
// and end with +Inf, _sum, _count.
func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("req_total", "requests")
	c.Add(42)
	g := r.Gauge("depth_value", "depth watermark")
	g.Mark(17)
	h := r.Histogram("lat_ns", "latency")
	for _, v := range []int64{1, 5, 5, 900} {
		h.Observe(v)
	}
	r.GaugeFunc("derived_value", "scrape-derived", func() int64 { return 99 })

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()

	samples := map[string]string{}
	helps, types := map[string]bool{}, map[string]bool{}
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			helps[strings.Fields(line)[2]] = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			typ := f[3]
			if typ != "counter" && typ != "gauge" && typ != "histogram" {
				t.Fatalf("bad TYPE %q in %q", typ, line)
			}
			types[f[2]] = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("unexpected comment line %q", line)
		}
		// Sample line: name-with-optional-labels, space, integer value.
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		key, val := line[:sp], line[sp+1:]
		var n int64
		if _, err := fmt.Sscanf(val, "%d", &n); err != nil {
			t.Fatalf("non-integer value in %q: %v", line, err)
		}
		samples[key] = val
	}
	for _, name := range []string{"req_total", "depth_value", "lat_ns", "derived_value"} {
		if !helps[name] || !types[name] {
			t.Fatalf("family %q missing HELP or TYPE in:\n%s", name, text)
		}
	}
	if samples["req_total"] != "42" || samples["depth_value"] != "17" || samples["derived_value"] != "99" {
		t.Fatalf("scalar samples wrong: %v", samples)
	}
	// Histogram: observations 1,5,5,900 → buckets b1(le=1)=1, b3(le=7)=3
	// (cumulative), b10(le=1023)=4, +Inf=4, sum=911, count=4.
	if samples[`lat_ns_bucket{le="1"}`] != "1" ||
		samples[`lat_ns_bucket{le="7"}`] != "3" ||
		samples[`lat_ns_bucket{le="1023"}`] != "4" ||
		samples[`lat_ns_bucket{le="+Inf"}`] != "4" ||
		samples["lat_ns_sum"] != "911" ||
		samples["lat_ns_count"] != "4" {
		t.Fatalf("histogram render wrong:\n%s", text)
	}
}

func TestSortedNames(t *testing.T) {
	r := NewRegistry()
	r.Counter("zz_total", "")
	r.Counter("aa_total", "")
	got := r.SortedNames()
	if got[0] != "aa_total" || got[1] != "zz_total" {
		t.Fatalf("SortedNames() = %v", got)
	}
}
