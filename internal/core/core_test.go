package core

import (
	"testing"

	"stronglin/internal/history"
	"stronglin/internal/prim"
	"stronglin/internal/sim"
	"stronglin/internal/spec"
)

// --- sim.Op builders ---------------------------------------------------------

func opWriteMax(m prim.MaxReg, v int64) sim.Op {
	return sim.Op{
		Name: spec.MkOp(spec.MethodWriteMax, v).String(),
		Spec: spec.MkOp(spec.MethodWriteMax, v),
		Run: func(t prim.Thread) string {
			m.WriteMax(t, v)
			return spec.RespOK
		},
	}
}

func opReadMax(m prim.MaxReg) sim.Op {
	return sim.Op{
		Name: "rmax()",
		Spec: spec.MkOp(spec.MethodReadMax),
		Run:  func(t prim.Thread) string { return spec.RespInt(m.ReadMax(t)) },
	}
}

func opUpdate(s SnapshotAPI, i, v int64) sim.Op {
	return sim.Op{
		Name: spec.MkOp(spec.MethodUpdate, i, v).String(),
		Spec: spec.MkOp(spec.MethodUpdate, i, v),
		Run: func(t prim.Thread) string {
			s.Update(t, v)
			return spec.RespOK
		},
	}
}

func opScan(s SnapshotAPI) sim.Op {
	return sim.Op{
		Name: "scan()",
		Spec: spec.MkOp(spec.MethodScan),
		Run:  func(t prim.Thread) string { return spec.RespVec(s.Scan(t)) },
	}
}

func opTAS(o interface {
	TestAndSet(t prim.Thread) int64
}) sim.Op {
	return sim.Op{
		Name: "tas()",
		Spec: spec.MkOp(spec.MethodTAS),
		Run:  func(t prim.Thread) string { return spec.RespInt(o.TestAndSet(t)) },
	}
}

func opTASRead(o interface {
	Read(t prim.Thread) int64
}) sim.Op {
	return sim.Op{
		Name: "read()",
		Spec: spec.MkOp(spec.MethodRead),
		Run:  func(t prim.Thread) string { return spec.RespInt(o.Read(t)) },
	}
}

func opReset(o *MultiShotTAS) sim.Op {
	return sim.Op{
		Name: "reset()",
		Spec: spec.MkOp(spec.MethodReset),
		Run: func(t prim.Thread) string {
			o.Reset(t)
			return spec.RespOK
		},
	}
}

func opFAI(o FetchIncAPI) sim.Op {
	return sim.Op{
		Name: "fai()",
		Spec: spec.MkOp(spec.MethodFAI),
		Run:  func(t prim.Thread) string { return spec.RespInt(o.FetchIncrement(t)) },
	}
}

func opFAIRead(o FetchIncAPI) sim.Op {
	return sim.Op{
		Name: "read()",
		Spec: spec.MkOp(spec.MethodRead),
		Run:  func(t prim.Thread) string { return spec.RespInt(o.Read(t)) },
	}
}

func opPut(s *TASSet, x int64) sim.Op {
	return sim.Op{
		Name: spec.MkOp(spec.MethodPut, x).String(),
		Spec: spec.MkOp(spec.MethodPut, x),
		Run:  func(t prim.Thread) string { return s.Put(t, x) },
	}
}

func opTake(s *TASSet) sim.Op {
	return sim.Op{
		Name: "take()",
		Spec: spec.MkOp(spec.MethodTake),
		Run:  func(t prim.Thread) string { return s.Take(t) },
	}
}

func opExecute(o *SimpleObject, op spec.Op) sim.Op {
	return sim.Op{
		Name: op.String(),
		Spec: op,
		Run:  func(t prim.Thread) string { return o.Execute(t, op) },
	}
}

// verifySL explores every interleaving of the configuration and requires
// both linearizability and strong linearizability.
func verifySL(t *testing.T, procs int, setup sim.Setup, sp spec.Spec) history.Verdict {
	t.Helper()
	v, err := history.Verify(procs, setup, sp, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Linearizable {
		t.Fatalf("linearizability violated: %s", v.LinViolation)
	}
	if !v.StrongLin.Ok {
		t.Fatalf("strong linearizability violated: %v", v.StrongLin.Counterexample)
	}
	return v
}
