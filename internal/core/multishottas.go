package core

import (
	"strconv"
	"sync"

	"stronglin/internal/prim"
)

// MultiShotTAS is the wait-free strongly-linearizable readable multi-shot
// test&set of Theorem 6, from readable test&set and max register base
// objects.
//
// The processes share a max register curr and an infinite array TS of
// readable test&set objects. test&set() and read() forward to
// TS[curr.readMax()]; reset() reads c = curr.readMax(), reads TS[c], and —
// only if that read returned 1 — performs curr.writeMax(c+1), logically
// resetting the object.
//
// (The paper initialises curr to 1; we index from 0, which is the same
// object modulo renaming of the TS entries.)
//
// Strong linearizability (paper proof sketch): the object's state is that of
// TS[v] for the current value v of curr; the first curr.writeMax(v+1) — the
// event e — linearizes, in order: the test&set/read operations that read v
// from curr but had not yet accessed TS[v] (they will all obtain 1), the
// reset e belongs to, and the remaining reset operations that read v.
//
// Instantiating the base objects with Theorems 1 and 5 gives Corollary 7
// (wait-free, from test&set and fetch&add); a lock-free register-based max
// register gives Corollary 8 (lock-free, from test&set alone).
type MultiShotTAS struct {
	curr prim.MaxReg
	ts   func(i int) prim.ReadableTAS
}

// NewMultiShotTAS builds the construction from explicit base objects: the
// max register curr and the infinite readable-test&set array ts.
func NewMultiShotTAS(curr prim.MaxReg, ts func(i int) prim.ReadableTAS) *MultiShotTAS {
	return &MultiShotTAS{curr: curr, ts: ts}
}

// NewMultiShotTASAtomic builds the construction over atomic base objects
// allocated from w (Theorem 6 exactly as stated: atomic readable test&set
// and atomic max register).
func NewMultiShotTASAtomic(w prim.World, name string) *MultiShotTAS {
	arr := prim.NewTASArray(w, name+".TS")
	return &MultiShotTAS{
		curr: w.MaxReg(name+".curr", 0),
		ts:   func(i int) prim.ReadableTAS { return arr.Get(i) },
	}
}

// NewMultiShotTASFromPrimitives builds Corollary 7's composition for n
// processes: the max register is Theorem 1's fetch&add construction and each
// TS entry is Theorem 5's readable test&set from a plain test&set.
func NewMultiShotTASFromPrimitives(w prim.World, name string, n int) *MultiShotTAS {
	arr := &lazyTAS{w: w, name: name + ".TS"}
	return &MultiShotTAS{
		curr: NewFAMaxRegister(w, name+".curr", n),
		ts:   arr.get,
	}
}

// lazyTAS lazily allocates Theorem 5 readable test&set instances, mirroring
// prim.TASArray for composed objects.
type lazyTAS struct {
	mu   sync.Mutex
	w    prim.World
	name string
	objs map[int]*ReadableTAS
}

func (l *lazyTAS) get(i int) prim.ReadableTAS {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.objs == nil {
		l.objs = make(map[int]*ReadableTAS)
	}
	if o, ok := l.objs[i]; ok {
		return o
	}
	o := NewReadableTAS(l.w, l.name+"["+strconv.Itoa(i)+"]")
	l.objs[i] = o
	return o
}

// TestAndSet applies test&set to the current epoch's object.
func (m *MultiShotTAS) TestAndSet(t prim.Thread) int64 {
	return m.ts(int(m.curr.ReadMax(t))).TestAndSet(t)
}

// Read returns the current state (0 or 1).
func (m *MultiShotTAS) Read(t prim.Thread) int64 {
	return m.ts(int(m.curr.ReadMax(t))).Read(t)
}

// Reset returns the object to state 0 (a no-op when it already is 0).
func (m *MultiShotTAS) Reset(t prim.Thread) {
	c := m.curr.ReadMax(t)
	if m.ts(int(c)).Read(t) == 1 {
		m.curr.WriteMax(t, c+1)
	}
}
