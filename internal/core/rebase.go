package core

import (
	"fmt"
	"sync/atomic"

	"stronglin/internal/interleave"
	"stronglin/internal/prim"
)

// Live re-base: the multi-word engine's watermark-triggered cutover onto
// fresh words, without stopping traffic. The engine's per-word sequence
// fields are mod-2^16 counters (interleave.SeqBits): every validation in the
// protocol — double-collect pairs, adoption witnesses, cache anchors —
// compares full word values, so a field that wraps while a scan is
// descheduled reopens the classic seqlock ABA window. Rather than widening
// the fields (the packing budget is spent on lanes), the engine ROLLS OVER:
// when the watermark nears the wrap, a migrator re-bases the live state onto
// a fresh generation of zero-sequence words and retires the old one. The
// same machinery retires the shard epoch register's announce budget
// (shard.RolloverEpoch) and, operationally, lets slserve renew an engine's
// lifetime budget under load (internal/migrate drives the policy).
//
// # The cutover protocol
//
// A GENERATION is a complete set of engine cells: the k component words, the
// pressure register, the help slot, the optional view cache, and a NEXT
// pointer, initially nil, whose install is the cutover's commit point.
// Clients pin the generation they last used (a process-local pointer — no
// shared step to read it); the migrator works on the LIVE generation, the
// end of the next-pointer chain.
//
// The cutover rides the existing protocol steps — no new fast-path work:
//
//  1. ARM: the migrator sets mwCutoverBit in the generation's pressure
//     register (one XADD), then ANNOUNCES the arm by bumping word 0's
//     sequence field (one XADD of interleave.SeqIncrement). Every
//     value-changing update already polls the pressure register after its
//     announce (the helping obligation), so writers discover the cutover on
//     their next update; the arm announce moves word 0, so every closing
//     witness in flight — collect pair, adoption check, cache anchor —
//     misses and re-examines the world.
//  2. DIVERT: a writer whose poll sees the bit awaits the next generation
//     (a conditional step — sim models it as not-enabled-until-installed)
//     and reconciles its component there (divertUpdate): if the re-based
//     lane already carries its value the update's effect arrived with the
//     migration and it returns; otherwise it re-applies the delta with the
//     standard XADD+announce. Writers therefore land at most one payload
//     XADD and one announce on an armed generation before blocking, which
//     BOUNDS the interference the migrator's final collect must absorb.
//  3. FINAL COLLECT: the migrator runs the standard anchored double collect
//     to validation and deposits the raw words in the generation's help
//     slot. The validating round's word-0 read is the collect's closing
//     announce witness, exactly as for a scan.
//  4. PARK: a scan on an armed generation discovers the cutover IN-ROUND —
//     rebase-mode validation rounds read the pressure register between the
//     words-1..k-1 reads and the closing word-0 read — and, once a round
//     validates with the bit set, parks: it re-reads the help slot and takes
//     ONE fresh word-0 read as its final shared step, adopting the deposit
//     if word 0 still equals the deposit's word 0 (the same closing witness
//     as ordinary adoption), else awaiting the next generation and
//     restarting there. Reading the bit INSIDE the validated pair is what
//     closes the protocol: a pair that validates with the bit CLEAR proves
//     the arm announce — which lands after the bit — either invalidated the
//     pair or postdates its closing word-0 read, so the install (later
//     still) postdates the scan's final shared step and no new-generation
//     completion can precede the scan's return.
//  5. RE-BASE + FLIP: the migrator decodes the deposited view, pre-loads the
//     next generation's words with its payload lanes — sequence fields
//     RESET to zero (interleave.ScatterWords), deltas re-anchored — then
//     ANNOUNCES the flip with a second word-0 sequence bump and installs the
//     next pointer. The flip announce invalidates the deposit's witness, so
//     parked scans that miss it await the install; the install itself is the
//     cutover's announce-as-final-step witness — it is the migrator's last
//     shared step before returning, and nothing it precedes can be observed
//     before it.
//
// Rebase linearizes as a SCAN returning the deposited view: every update
// completed before its return is in the deposit (post-arm completions divert
// and block until install, which is Rebase's last step), and the deposit is
// a true state pinned by the final collect. The package tests model it
// exactly so and decide strong linearizability with the execution-tree game
// checker; rebaseFlipEarly (install before the final validated collect) is
// the lost-update negative control, and scanParkBlindAdoptInto (park
// adoption without the fresh word-0 witness) is the cutover's own
// linearizable-but-not-strongly-linearizable twin.
//
// Old-generation cells are never freed or reused: retired generations keep
// their final deposit (the cutover bit is never cleared, so the
// last-raised-scan slot clearing can never fire there) and stale processes
// self-heal — a parked reader follows next; a stale writer's orphan XADD on
// a retired generation moves its word 0 past the deposit, so no witness can
// resurrect the retired state afterwards.
//
// At most ONE live migrator: concurrent Rebase calls on the same generation
// race benignly on the arm bit (it is idempotent — FetchAdd of an already-set
// bit is detected and not re-applied) but would both collect and install;
// internal/migrate serialises them. A KILLED migrator is recoverable: a
// restarted Rebase sees the armed bit, re-collects, re-deposits, and re-uses
// the successor cells the dead one allocated (successorGen memoizes them —
// base-object names are claimed once per world).
const mwCutoverBit = int64(1) << 62

// mwGen is one generation of multi-word engine cells. words/pressure/slot/
// cache play exactly their pre-rebase roles; next is the generation pointer
// (nil until installed; absent entirely when live re-base is off, in which
// case generation 0 is the engine forever and no rebase-mode step exists on
// any path).
type mwGen struct {
	id       int64
	words    []prim.FetchAddInt
	pressure prim.FetchAddInt
	slot     prim.AnyRegister
	cache    prim.AnyRegister // nil when the view cache is off
	next     prim.AnyRegister // nil when live re-base is off
}

// newGen allocates one generation's cells. Generation 0 keeps the legacy
// names (name.R<j>, name.help, ...), so non-rebase configurations are
// byte-identical to the pre-rebase engine; later generations are prefixed
// name.g<id>.
func (s *FASnapshot) newGen(id int64) *mwGen {
	prefix := s.name
	if id > 0 {
		prefix = fmt.Sprintf("%s.g%d", s.name, id)
	}
	g := &mwGen{id: id, words: make([]prim.FetchAddInt, s.mp.Words())}
	for j := range g.words {
		g.words[j] = s.w.FetchAddInt(fmt.Sprintf("%s.R%d", prefix, j), 0)
	}
	g.pressure = s.w.FetchAddInt(prefix+".help", 0)
	g.slot = s.w.AnyRegister(prefix+".slot", &mwDeposit{})
	if s.cacheOn {
		g.cache = s.w.AnyRegister(prefix+".cache", &mwCachedView{})
	}
	if s.rebaseOn {
		g.next = s.w.AnyRegister(prefix+".next", (*mwGen)(nil))
	}
	return g
}

// successorGen returns generation g's successor, allocating it on first use.
// The memo is what makes a killed migrator restartable: base-object names are
// claimed once per world, so the restarted Rebase must REUSE the cells the
// dead one allocated (including any partial pre-load, which the read-and-
// correct pre-load step repairs).
func (s *FASnapshot) successorGen(g *mwGen) *mwGen {
	s.genMu.Lock()
	defer s.genMu.Unlock()
	if ng, ok := s.nextGens[g.id]; ok {
		return ng
	}
	if s.nextGens == nil {
		s.nextGens = make(map[int64]*mwGen)
	}
	ng := s.newGen(g.id + 1)
	s.nextGens[g.id] = ng
	return ng
}

// engineFor returns the generation process t last used (process-local — no
// shared step), falling back to the live generation for threads outside the
// component range.
func (s *FASnapshot) engineFor(t prim.Thread) *mwGen {
	if s.curGen != nil {
		if id := t.ID(); id >= 0 && id < len(s.curGen) {
			return s.curGen[id]
		}
		return s.liveGen(t)
	}
	return s.eng
}

// setGen records that process t now operates on g.
func (s *FASnapshot) setGen(t prim.Thread, g *mwGen) {
	if s.curGen != nil {
		if id := t.ID(); id >= 0 && id < len(s.curGen) {
			s.curGen[id] = g
		}
	}
}

// liveGen walks the installed next pointers to the end of the chain: the
// generation a fresh operation should use. Read-only (reads of installed
// pointers), so it is safe from scrape/monitoring threads that must never
// touch the per-process generation pins.
func (s *FASnapshot) liveGen(t prim.Thread) *mwGen {
	g := s.eng
	for s.rebaseOn {
		ng, ok := g.next.ReadAny(t).(*mwGen)
		if !ok || ng == nil {
			break
		}
		g = ng
	}
	return g
}

// awaitNext blocks until g's successor is installed and returns it. In the
// simulated world this is a conditional step — the process is simply not
// schedulable until the install lands (and an execution whose migrator was
// killed first ends incomplete, the deadlock recorded); in the real world it
// spins with a yield.
func (s *FASnapshot) awaitNext(t prim.Thread, g *mwGen) *mwGen {
	v := prim.AwaitAny(s.w, t, g.next, func(v any) bool {
		ng, ok := v.(*mwGen)
		return ok && ng != nil
	})
	return v.(*mwGen)
}

// WithLiveRebase enables watermark-triggered live re-base on the multi-word
// engine (default disabled): Rebase rolls the live state onto a fresh
// generation of zero-sequence words while updates and scans continue,
// renewing the mod-2^16 sequence budget (see mwCutoverBit). With re-base off
// every code path is the pre-rebase engine's — no generation pointer exists
// and no operation performs a rebase-mode step. Enabling it adds exactly one
// pressure-register read per scan validation round (the in-round cutover
// check) and nothing to updates, whose pressure poll already existed. No-op
// on the single-register engines, whose substrates have no sequence fields
// to exhaust.
func WithLiveRebase(enabled bool) SnapshotOption {
	return func(s *FASnapshot) { s.rebaseOn = enabled }
}

// RebaseEnabled reports whether live re-base is on (multi-word engine only).
func (s *FASnapshot) RebaseEnabled() bool { return s.eng != nil && s.rebaseOn }

// Generation returns the live generation's id: the number of completed
// cutovers. 0 on the single-register engines and with re-base off. It reads
// the installed next pointers only, so it is scrape-safe.
func (s *FASnapshot) Generation(t prim.Thread) int64 {
	if s.eng == nil || !s.rebaseOn {
		return 0
	}
	return s.liveGen(t).id
}

// CutoverInFlight reports whether the live generation is armed: a Rebase has
// set the cutover bit but not yet installed the successor. Scrape-safe.
func (s *FASnapshot) CutoverInFlight(t prim.Thread) bool {
	if s.eng == nil || !s.rebaseOn {
		return false
	}
	return s.liveGen(t).pressure.FetchAddInt(t, 0)&mwCutoverBit != 0
}

// RebaseStats reports the live re-base telemetry: completed cutovers, scans
// that parked and adopted the migrator's final deposit, scans that parked and
// awaited the install, and updates diverted onto a successor generation. All
// zero with re-base off. Slow-path events only, like HelpStats.
func (s *FASnapshot) RebaseStats() RebaseStats {
	return RebaseStats{
		Generations: s.generations.Load(),
		ParkAdopts:  s.parkAdopts.Load(),
		ParkWaits:   s.parkWaits.Load(),
		Diverts:     s.diverts.Load(),
	}
}

// RebaseStats is the snapshot of FASnapshot.RebaseStats.
type RebaseStats struct {
	Generations int64 `json:"generations"`
	ParkAdopts  int64 `json:"park_adopts"`
	ParkWaits   int64 `json:"park_waits"`
	Diverts     int64 `json:"diverts"`
}

// rebaseCounters groups the atomic telemetry rebase adds to FASnapshot.
type rebaseCounters struct {
	generations atomic.Int64
	parkAdopts  atomic.Int64
	parkWaits   atomic.Int64
	diverts     atomic.Int64
}

// Rebase performs one live cutover of the live generation and returns the
// new generation's id: arm + arm announce, final validated collect deposited
// in the help slot, successor pre-load (payload lanes carried over, sequence
// fields reset), flip announce, install (see the protocol walkthrough at
// mwCutoverBit). It linearizes as a Scan returning the deposited view —
// callers that participate in checked histories model it exactly so.
//
// At most one Rebase may run at a time (internal/migrate serialises); a
// killed migrator's cutover is completed by simply calling Rebase again.
// Panics unless the engine is multi-word with live re-base enabled.
func (s *FASnapshot) Rebase(t prim.Thread) int64 {
	view := make([]int64, s.n)
	s.rebaseInto(t, view)
	return s.liveGen(t).id
}

// RebaseView is Rebase also returning the final validated view it deposited
// — the response the operation linearizes with (a scan's view), which is what
// the model-check harnesses record.
func (s *FASnapshot) RebaseView(t prim.Thread) []int64 {
	view := make([]int64, s.n)
	s.rebaseInto(t, view)
	return view
}

func (s *FASnapshot) rebaseInto(t prim.Thread, view []int64) {
	if s.eng == nil || !s.rebaseOn {
		panic("core: FASnapshot.Rebase requires the multi-word engine with WithLiveRebase")
	}
	g := s.liveGen(t)
	if g.pressure.FetchAddInt(t, 0)&mwCutoverBit == 0 {
		g.pressure.FetchAddInt(t, mwCutoverBit) // ARM: divert new updates
		// Arm announce: move word 0 so every closing witness in flight —
		// collect pair, adoption check, cache anchor — misses and re-reads
		// the pressure register. Stale pre-arm help deposits are thereby
		// unadoptable from here on.
		g.words[0].FetchAddInt(t, interleave.SeqIncrement)
	}
	// Final validated collect. Interference is bounded: every value-changing
	// update that polls after the arm diverts, landing at most one payload
	// XADD and one announce here first, so the collect terminates once the
	// armed writers have blocked.
	var stack [scanStackWords]int64
	cur := collectBuf(&stack, len(g.words))
	s.collectWordsAnchored(t, g, cur)
	for !s.roundAnchored(t, g, cur) {
	}
	g.slot.WriteAny(t, &mwDeposit{words: append([]int64(nil), cur...)})

	// Pre-load the successor: payload lanes carried over, sequence fields
	// reset. Read-and-correct (rather than blind add) repairs a dead
	// predecessor's partial pre-load; the successor is unobservable until the
	// install below, so these XADDs are invisible to the protocol.
	for j, w := range cur {
		s.mp.GatherWord(w, j, view)
	}
	ng := s.successorGen(g)
	base := make([]int64, len(g.words))
	s.mp.ScatterWords(view, base)
	for j := range ng.words {
		raw := ng.words[j].FetchAddInt(t, 0)
		if d := base[j] - raw; d != 0 {
			ng.words[j].FetchAddInt(t, d)
		}
	}

	// Flip announce: invalidate the deposit's witness, so scans that park
	// from here on await the install instead of adopting.
	g.words[0].FetchAddInt(t, interleave.SeqIncrement)
	// INSTALL: the cutover's commit point and this operation's final shared
	// step — the announce-as-final-step witness. Diverted writers and parked
	// readers unblock; new-generation completions all postdate this.
	g.next.WriteAny(t, ng)
	s.generations.Add(1)
}

// divertUpdate reconciles process i's update v onto the successor once its
// pressure poll saw the cutover bit: await the install, then re-read the
// re-based lane — if it already carries v the update's effect arrived with
// the migration (its payload was in the final collect) and nothing need
// announce; otherwise re-apply with the standard XADD + announce. The loop
// handles a cutover of the successor itself arriving mid-divert (and a
// writer waking several generations behind walks them one by one, each step
// an install that already happened, so the walk is bounded by the completed
// cutovers).
func (s *FASnapshot) divertUpdate(t prim.Thread, g *mwGen, i int, v int64) {
	for {
		ng := s.awaitNext(t, g)
		s.setGen(t, ng)
		s.diverts.Add(1)
		w := s.mp.WordOf(i)
		cur := s.mp.Lane(ng.words[w].FetchAddInt(t, 0), i)
		s.prev[i] = cur
		if cur == v {
			return
		}
		ng.words[w].FetchAddInt(t, s.mp.FieldDelta(cur, v, i))
		s.prev[i] = v
		if w != 0 {
			ng.words[0].FetchAddInt(t, interleave.SeqIncrement)
		}
		p := ng.pressure.FetchAddInt(t, 0)
		if p == 0 {
			return
		}
		if p&mwCutoverBit == 0 {
			s.helpScan(t, ng)
			return
		}
		g = ng
	}
}

// rebaseFlipEarly is the flip-before-the-final-validated-collect twin: the
// successor is seeded from a collect taken BEFORE the arm and installed
// immediately — no post-arm collect, no validation, no deposit — kept
// exclusively for the negative fault proof. The ordering inverts the shipped
// protocol's one load-bearing dependency: arm-then-collect means every update
// is either complete before the collect's closing witness (and in the seed)
// or diverted onto the successor (and re-applied); collect-then-arm opens a
// window in which an update lands its payload AND completes — its pressure
// poll still sees no bit — after the seed was read, so its value is in
// neither the successor's base nor any diverted re-apply: a LOST UPDATE,
// observable by any new-generation scan, which is not even linearizable (the
// package tests pin CheckLinearizable rejecting the crafted execution — the
// no-lost-updates negative control for the fault harness).
func (s *FASnapshot) rebaseFlipEarly(t prim.Thread) {
	if s.eng == nil || !s.rebaseOn {
		panic("core: rebaseFlipEarly requires the multi-word engine with WithLiveRebase")
	}
	g := s.liveGen(t)
	var stack [scanStackWords]int64
	cur := collectBuf(&stack, len(g.words))
	s.collectWords(t, g, cur) // premature pre-arm seed: the bug
	if g.pressure.FetchAddInt(t, 0)&mwCutoverBit == 0 {
		g.pressure.FetchAddInt(t, mwCutoverBit)
		g.words[0].FetchAddInt(t, interleave.SeqIncrement)
	}
	view := make([]int64, s.n)
	for j, w := range cur {
		s.mp.GatherWord(w, j, view)
	}
	ng := s.successorGen(g)
	base := make([]int64, len(g.words))
	s.mp.ScatterWords(view, base)
	for j := range ng.words {
		raw := ng.words[j].FetchAddInt(t, 0)
		if d := base[j] - raw; d != 0 {
			ng.words[j].FetchAddInt(t, d)
		}
	}
	g.next.WriteAny(t, ng) // install seeded from the stale pre-arm state
	s.generations.Add(1)
}

// scanParkBlindAdoptInto is the rebase-mode scan with the park path's fresh
// word-0 witness REMOVED — a parked scan adopts whatever the help slot holds
// as soon as a round validates with the cutover bit set — kept exclusively
// for the negative model check. The adopted deposit is a true state (some
// validated collect pinned it), so crafted executions stay linearizable; but
// the deposit may predate an update that COMPLETED before the park (its
// announce is exactly what the skipped witness would have caught), and with
// the migrator still mid-cutover the scan's eventual view hangs on
// scheduling: no prefix-closed linearization survives every future. The
// package tests pin the game checker refuting strong linearizability on a
// schedule tree, documenting that the CUTOVER does not exempt the
// announce-as-final-step rule — a park adoption needs the same closing
// witness every other return path carries. The twin raises the pressure
// register for its whole duration (an eager raised scan) so helper deposits
// exist for it to adopt; lowering on an armed generation can never clear the
// slot (the bit keeps the register nonzero), matching the shipped invariant.
func (s *FASnapshot) scanParkBlindAdoptInto(t prim.Thread, view []int64) []int64 {
	if len(view) != s.n {
		panic(fmt.Sprintf("core: scanParkBlindAdoptInto: view has length %d, want %d", len(view), s.n))
	}
	g := s.engineFor(t)
	g.pressure.FetchAddInt(t, 1)
	var stack [scanStackWords]int64
	cur := collectBuf(&stack, len(g.words))
	s.collectWordsAnchored(t, g, cur)
	for {
		valid, cut := s.roundAnchoredCut(t, g, cur, true)
		if !valid {
			continue
		}
		if !cut {
			break
		}
		if d, ok := g.slot.ReadAny(t).(*mwDeposit); ok && len(d.words) == len(g.words) {
			copy(cur, d.words) // park adoption with NO fresh word-0 witness: the bug
			break
		}
		break // armed but no deposit yet: return the own validated pair
	}
	g.pressure.FetchAddInt(t, -1)
	for j, w := range cur {
		s.mp.GatherWord(w, j, view)
	}
	return view
}
