package core

import (
	"math/rand"
	"testing"

	"stronglin/internal/history"
	"stronglin/internal/prim"
	"stronglin/internal/sim"
	"stronglin/internal/spec"
)

func TestTASSetSequential(t *testing.T) {
	for name, build := range map[string]func() *TASSet{
		"atomic-fai": func() *TASSet { return NewTASSetAtomic(sim.NewSoloWorld(), "s") },
		"fa-fai":     func() *TASSet { return NewTASSet(sim.NewSoloWorld(), "s2", NewFAFetchInc(sim.NewSoloWorld(), "fi")) },
		"thm10-tas":  func() *TASSet { return NewTASSetFromTAS(sim.NewSoloWorld(), "s") },
	} {
		t.Run(name, func(t *testing.T) {
			s := build()
			th := sim.SoloThread(0)
			if got := s.Take(th); got != spec.RespEmpty {
				t.Fatalf("take on empty = %s", got)
			}
			s.Put(th, 7)
			s.Put(th, 9)
			got := map[string]bool{s.Take(th): true, s.Take(th): true}
			if !got["7"] || !got["9"] {
				t.Fatalf("takes returned %v, want {7,9}", got)
			}
			if got := s.Take(th); got != spec.RespEmpty {
				t.Fatalf("take after draining = %s", got)
			}
		})
	}
}

func TestTASSetRejectsNonPositiveItems(t *testing.T) {
	s := NewTASSetAtomic(sim.NewSoloWorld(), "s")
	defer func() {
		if recover() == nil {
			t.Fatal("Put(0) did not panic")
		}
	}()
	s.Put(sim.SoloThread(0), 0)
}

// E-T10: Theorem 10 / Algorithm 2 — strong linearizability on every
// interleaving. The empty-returning take is the delicate case: its
// linearization point is in its past once its return value is locally
// determined, so the checker must commit it eagerly while pending.
func TestTASSetStrongLinTakeEmptyRace(t *testing.T) {
	setup := func(w *sim.World) []sim.Program {
		s := NewTASSetAtomic(w, "s")
		return []sim.Program{
			{opTake(s)},
			{opPut(s, 5)},
		}
	}
	verifySL(t, 2, setup, spec.TakeSet{})
}

func TestTASSetStrongLinTakeTakeRace(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive interleaving check; skipped in -short mode")
	}
	// Two takes racing over a single put: at most one may win the item, the
	// other must return it or empty consistently.
	setup := func(w *sim.World) []sim.Program {
		s := NewTASSetAtomic(w, "s")
		return []sim.Program{
			{opPut(s, 5), opTake(s)},
			{opTake(s)},
		}
	}
	verifySL(t, 2, setup, spec.TakeSet{})
}

func TestTASSetStrongLinTwoPutsOneTake(t *testing.T) {
	setup := func(w *sim.World) []sim.Program {
		s := NewTASSetAtomic(w, "s")
		return []sim.Program{
			{opPut(s, 5), opTake(s)},
			{opPut(s, 6)},
		}
	}
	verifySL(t, 2, setup, spec.TakeSet{})
}

func TestTASSetStrongLinComposedThm10(t *testing.T) {
	// Full composition: set over Theorem 9's fetch&increment over Theorem
	// 5's readable test&sets — base objects are test&set and registers only.
	setup := func(w *sim.World) []sim.Program {
		s := NewTASSetFromTAS(w, "s")
		return []sim.Program{
			{opPut(s, 5)},
			{opTake(s)},
		}
	}
	verifySL(t, 2, setup, spec.TakeSet{})
}

func TestTASSetRealWorldStress(t *testing.T) {
	const procs = 4
	w := prim.NewRealWorld()
	s := NewTASSetFromTAS(w, "s")
	rngs := make([]*rand.Rand, procs)
	for p := range rngs {
		rngs[p] = rand.New(rand.NewSource(int64(p) + 41))
	}
	next := make([]int64, procs)
	h := history.Stress(history.StressConfig{
		Procs:      procs,
		OpsPerProc: 25,
		Gen: func(p, i int) history.StressOp {
			if rngs[p].Intn(2) == 0 {
				// Unique item per put: proc p puts p+1, p+1+procs, ...
				next[p]++
				x := int64(p+1) + (next[p]-1)*procs
				return history.StressOp{
					Op:  spec.MkOp(spec.MethodPut, x),
					Run: func(t prim.Thread) string { return s.Put(t, x) },
				}
			}
			return history.StressOp{
				Op:  spec.MkOp(spec.MethodTake),
				Run: func(t prim.Thread) string { return s.Take(t) },
			}
		},
	})
	if res := history.CheckLinearizable(h, spec.TakeSet{}); !res.Ok {
		t.Fatalf("stress history not linearizable: %s", h.String())
	}
}

func TestTASSetNoDuplicateTakes(t *testing.T) {
	// Every item is taken at most once even under heavy contention.
	const procs, items = 8, 40
	w := prim.NewRealWorld()
	s := NewTASSetAtomic(w, "s")
	th0 := prim.RealThread(0)
	for x := int64(1); x <= items; x++ {
		s.Put(th0, x)
	}
	results := make(chan string, procs*items)
	done := make(chan struct{})
	for p := 0; p < procs; p++ {
		go func(p int) {
			th := prim.RealThread(p)
			for {
				select {
				case <-done:
					return
				default:
				}
				r := s.Take(th)
				results <- r
				if r == spec.RespEmpty {
					return
				}
			}
		}(p)
	}
	taken := make(map[string]bool)
	emptyCount := 0
	for emptyCount < procs {
		r := <-results
		if r == spec.RespEmpty {
			emptyCount++
			continue
		}
		if taken[r] {
			close(done)
			t.Fatalf("item %s taken twice", r)
		}
		taken[r] = true
	}
	close(done)
	if len(taken) != items {
		t.Fatalf("took %d items, want %d", len(taken), items)
	}
}
