package core

import (
	"math/rand"
	"sync"
	"testing"

	"stronglin/internal/history"
	"stronglin/internal/prim"
	"stronglin/internal/sim"
	"stronglin/internal/spec"
)

func TestReadableTASSequential(t *testing.T) {
	w := sim.NewSoloWorld()
	r := NewReadableTAS(w, "rt")
	th := sim.SoloThread(0)
	if got := r.Read(th); got != 0 {
		t.Fatalf("fresh Read = %d", got)
	}
	if got := r.TestAndSet(th); got != 0 {
		t.Fatalf("first TestAndSet = %d, want 0", got)
	}
	if got := r.Read(th); got != 1 {
		t.Fatalf("Read = %d, want 1", got)
	}
	if got := r.TestAndSet(sim.SoloThread(1)); got != 1 {
		t.Fatalf("second TestAndSet = %d, want 1", got)
	}
}

// E-T5: Theorem 5 — strong linearizability on every interleaving. This is
// the construction whose losing test&set operations are linearized at
// ANOTHER process's step (the first write of 1 to state), so it exercises
// the group-linearization capability of the checker.
func TestReadableTASStrongLinTwoSettersOneReader(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive interleaving check; skipped in -short mode")
	}
	setup := func(w *sim.World) []sim.Program {
		r := NewReadableTAS(w, "rt")
		return []sim.Program{
			{opTAS(r)},
			{opTAS(r)},
			{opTASRead(r), opTASRead(r)},
		}
	}
	verifySL(t, 3, setup, spec.ReadableTAS{})
}

func TestReadableTASStrongLinSetterReaderPrograms(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive interleaving check; skipped in -short mode")
	}
	setup := func(w *sim.World) []sim.Program {
		r := NewReadableTAS(w, "rt")
		return []sim.Program{
			{opTASRead(r), opTAS(r), opTASRead(r)},
			{opTASRead(r), opTAS(r), opTASRead(r)},
		}
	}
	verifySL(t, 2, setup, spec.ReadableTAS{})
}

func TestReadableTASRealWorldStress(t *testing.T) {
	const procs = 8
	w := prim.NewRealWorld()
	r := NewReadableTAS(w, "rt")
	var wg sync.WaitGroup
	wins := make([]int64, procs)
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			th := prim.RealThread(p)
			wins[p] = r.TestAndSet(th)
			if got := r.Read(th); got != 1 {
				t.Errorf("Read after TestAndSet = %d", got)
			}
		}(p)
	}
	wg.Wait()
	zeros := 0
	for _, v := range wins {
		if v == 0 {
			zeros++
		}
	}
	if zeros != 1 {
		t.Fatalf("winners = %d, want 1", zeros)
	}
}

func TestMultiShotTASSequential(t *testing.T) {
	for name, build := range map[string]func() *MultiShotTAS{
		"atomic-bases": func() *MultiShotTAS {
			return NewMultiShotTASAtomic(sim.NewSoloWorld(), "ms")
		},
		"composed-cor7": func() *MultiShotTAS {
			return NewMultiShotTASFromPrimitives(sim.NewSoloWorld(), "ms", 2)
		},
	} {
		t.Run(name, func(t *testing.T) {
			m := build()
			th := sim.SoloThread(0)
			if got := m.Read(th); got != 0 {
				t.Fatalf("fresh Read = %d", got)
			}
			m.Reset(th) // reset of a 0 object: no-op
			if got := m.TestAndSet(th); got != 0 {
				t.Fatalf("TestAndSet = %d, want 0", got)
			}
			if got := m.TestAndSet(th); got != 1 {
				t.Fatalf("TestAndSet = %d, want 1", got)
			}
			m.Reset(th)
			if got := m.Read(th); got != 0 {
				t.Fatalf("Read after Reset = %d, want 0", got)
			}
			if got := m.TestAndSet(sim.SoloThread(1)); got != 0 {
				t.Fatalf("TestAndSet after Reset = %d, want 0", got)
			}
		})
	}
}

// E-T6: Theorem 6 over atomic base objects (readable test&set + max
// register), exactly as the theorem states.
func TestMultiShotTASStrongLinAtomicBases(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive interleaving check; skipped in -short mode")
	}
	setup := func(w *sim.World) []sim.Program {
		m := NewMultiShotTASAtomic(w, "ms")
		return []sim.Program{
			{opTAS(m), opTAS(m)},
			{opReset(m)},
			{opTASRead(m)},
		}
	}
	verifySL(t, 3, setup, spec.MultiShotTAS{})
}

func TestMultiShotTASStrongLinTwoProcDeep(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive interleaving check; skipped in -short mode")
	}
	// A deeper 2-process configuration spanning two epochs.
	setup := func(w *sim.World) []sim.Program {
		m := NewMultiShotTASAtomic(w, "ms")
		return []sim.Program{
			{opTAS(m), opReset(m), opTAS(m)},
			{opTASRead(m), opReset(m)},
		}
	}
	verifySL(t, 2, setup, spec.MultiShotTAS{})
}

func TestMultiShotTASStrongLinResetRace(t *testing.T) {
	// Two resets racing with a test&set across an epoch switch.
	setup := func(w *sim.World) []sim.Program {
		m := NewMultiShotTASAtomic(w, "ms")
		return []sim.Program{
			{opTAS(m), opReset(m)},
			{opReset(m), opTAS(m)},
		}
	}
	verifySL(t, 2, setup, spec.MultiShotTAS{})
}

// E-T6/Cor 7: the full composition over Theorem 1's max register and
// Theorem 5's readable test&sets (base objects: fetch&add + test&set only).
func TestMultiShotTASStrongLinComposedCor7(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive interleaving check; skipped in -short mode")
	}
	setup := func(w *sim.World) []sim.Program {
		m := NewMultiShotTASFromPrimitives(w, "ms", 2)
		return []sim.Program{
			{opTAS(m), opReset(m)},
			{opTASRead(m), opTAS(m)},
		}
	}
	verifySL(t, 2, setup, spec.MultiShotTAS{})
}

func TestMultiShotTASRealWorldStress(t *testing.T) {
	const procs = 4
	w := prim.NewRealWorld()
	m := NewMultiShotTASFromPrimitives(w, "ms", procs)
	rngs := make([]*rand.Rand, procs)
	for p := range rngs {
		rngs[p] = rand.New(rand.NewSource(int64(p) + 31))
	}
	h := history.Stress(history.StressConfig{
		Procs:      procs,
		OpsPerProc: 20,
		Gen: func(p, i int) history.StressOp {
			switch rngs[p].Intn(3) {
			case 0:
				return history.StressOp{
					Op:  spec.MkOp(spec.MethodTAS),
					Run: func(t prim.Thread) string { return spec.RespInt(m.TestAndSet(t)) },
				}
			case 1:
				return history.StressOp{
					Op: spec.MkOp(spec.MethodReset),
					Run: func(t prim.Thread) string {
						m.Reset(t)
						return spec.RespOK
					},
				}
			default:
				return history.StressOp{
					Op:  spec.MkOp(spec.MethodRead),
					Run: func(t prim.Thread) string { return spec.RespInt(m.Read(t)) },
				}
			}
		},
	})
	if res := history.CheckLinearizable(h, spec.MultiShotTAS{}); !res.Ok {
		t.Fatalf("stress history not linearizable: %s", h.String())
	}
}
