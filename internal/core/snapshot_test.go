package core

import (
	"math/rand"
	"testing"

	"stronglin/internal/history"
	"stronglin/internal/prim"
	"stronglin/internal/sim"
	"stronglin/internal/spec"
)

func TestFASnapshotSequential(t *testing.T) {
	w := sim.NewSoloWorld()
	s := NewFASnapshot(w, "snap", 3)
	if got := spec.RespVec(s.Scan(sim.SoloThread(0))); got != "[0 0 0]" {
		t.Fatalf("initial scan = %s", got)
	}
	s.Update(sim.SoloThread(1), 7)
	s.Update(sim.SoloThread(0), 3)
	if got := spec.RespVec(s.Scan(sim.SoloThread(2))); got != "[3 7 0]" {
		t.Fatalf("scan = %s", got)
	}
	// Overwrite with a smaller value (exercises negAdj).
	s.Update(sim.SoloThread(1), 1)
	if got := spec.RespVec(s.Scan(sim.SoloThread(2))); got != "[3 1 0]" {
		t.Fatalf("scan = %s", got)
	}
	// Same-value update (fetch&add(0) path).
	s.Update(sim.SoloThread(1), 1)
	if got := spec.RespVec(s.Scan(sim.SoloThread(2))); got != "[3 1 0]" {
		t.Fatalf("scan = %s", got)
	}
	// Update to zero clears the lane.
	s.Update(sim.SoloThread(0), 0)
	if got := spec.RespVec(s.Scan(sim.SoloThread(2))); got != "[0 1 0]" {
		t.Fatalf("scan = %s", got)
	}
}

func TestFASnapshotRejectsNegative(t *testing.T) {
	w := sim.NewSoloWorld()
	s := NewFASnapshot(w, "snap", 1)
	defer func() {
		if recover() == nil {
			t.Fatal("negative update did not panic")
		}
	}()
	s.Update(sim.SoloThread(0), -2)
}

// E-T2: Theorem 2 — strong linearizability on every interleaving.
func TestFASnapshotStrongLinTwoUpdatersOneScanner(t *testing.T) {
	setup := func(w *sim.World) []sim.Program {
		s := NewFASnapshot(w, "snap", 3)
		return []sim.Program{
			{opUpdate(s, 0, 1)},
			{opUpdate(s, 1, 2)},
			{opScan(s), opScan(s)},
		}
	}
	verifySL(t, 3, setup, spec.Snapshot{})
}

func TestFASnapshotStrongLinOverwrites(t *testing.T) {
	// The same component written twice, concurrent with scans: exercises
	// posAdj/negAdj deltas under contention.
	setup := func(w *sim.World) []sim.Program {
		s := NewFASnapshot(w, "snap", 2)
		return []sim.Program{
			{opUpdate(s, 0, 3), opUpdate(s, 0, 1)},
			{opScan(s), opScan(s)},
		}
	}
	verifySL(t, 2, setup, spec.Snapshot{})
}

func TestFASnapshotStrongLinSameValueUpdate(t *testing.T) {
	setup := func(w *sim.World) []sim.Program {
		s := NewFASnapshot(w, "snap", 2)
		return []sim.Program{
			{opUpdate(s, 0, 2), opUpdate(s, 0, 2)},
			{opScan(s), opScan(s)},
		}
	}
	verifySL(t, 2, setup, spec.Snapshot{})
}

func TestFASnapshotRealWorldStress(t *testing.T) {
	w := prim.NewRealWorld()
	const procs = 4
	s := NewFASnapshot(w, "snap", procs)
	rngs := make([]*rand.Rand, procs)
	for p := range rngs {
		rngs[p] = rand.New(rand.NewSource(int64(p) + 11))
	}
	h := history.Stress(history.StressConfig{
		Procs:      procs,
		OpsPerProc: 25,
		Gen: func(p, i int) history.StressOp {
			if rngs[p].Intn(2) == 0 {
				v := int64(rngs[p].Intn(8))
				return history.StressOp{
					Op: spec.MkOp(spec.MethodUpdate, int64(p), v),
					Run: func(t prim.Thread) string {
						s.Update(t, v)
						return spec.RespOK
					},
				}
			}
			return history.StressOp{
				Op:  spec.MkOp(spec.MethodScan),
				Run: func(t prim.Thread) string { return spec.RespVec(s.Scan(t)) },
			}
		},
	})
	if res := history.CheckLinearizable(h, spec.Snapshot{}); !res.Ok {
		t.Fatalf("stress history not linearizable: %s", h.String())
	}
}

// TestWideUpdateUnchangedValueAllocFree: the wide Update compares the new
// value against a cached int64 (no big.NewInt per call), so re-writing the
// same value — the fetch&add(0) fast path — allocates nothing. Small changed
// values go through the interleave.SmallInt cache, so they stay cheap too.
func TestWideUpdateUnchangedValueAllocFree(t *testing.T) {
	w := prim.NewRealWorld()
	s := NewFASnapshot(w, "snap", 2)
	th := prim.RealThread(0)
	s.Update(th, 5)
	if allocs := testing.AllocsPerRun(200, func() { s.Update(th, 5) }); allocs != 0 {
		t.Fatalf("unchanged-value wide Update allocates %.1f per op, want 0", allocs)
	}
}

func TestFASnapshotWidth(t *testing.T) {
	w := sim.NewSoloWorld()
	s := NewFASnapshot(w, "snap", 4)
	th := sim.SoloThread(3)
	s.Update(th, 1<<20)
	// Binary lane encoding: value 2^20 needs 21 lane bits, spread over 4
	// lanes → roughly 21*4 bits.
	width := s.Width(th)
	if width < 80 || width > 88 {
		t.Fatalf("width = %d, want ≈ 84", width)
	}
}
