package core

import (
	"testing"

	"stronglin/internal/history"
	"stronglin/internal/sim"
	"stronglin/internal/spec"
)

// The fetch&add constructions carry linearization-point certificates (every
// operation marks its single fetch&add), giving a second, linear-time proof
// of strong linearizability that scales past the game search.

func TestMaxRegisterCertificate(t *testing.T) {
	setup := func(w *sim.World) []sim.Program {
		m := NewFAMaxRegister(w, "m", 3)
		return []sim.Program{
			{opWriteMax(m, 2)},
			{opWriteMax(m, 1)},
			{opReadMax(m), opReadMax(m)},
		}
	}
	tree, err := sim.Explore(3, setup, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res := history.CheckLinPointCertificate(tree, spec.MaxRegister{}); !res.Ok {
		t.Fatalf("certificate rejected: %s", res.Failure)
	}
}

// A configuration whose tree (about 10^5 leaves) is uncomfortable for the
// game search but trivial for the certificate check.
func TestMaxRegisterCertificateLargeConfig(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive interleaving check; skipped in -short mode")
	}
	setup := func(w *sim.World) []sim.Program {
		m := NewFAMaxRegister(w, "m", 3)
		return []sim.Program{
			{opWriteMax(m, 2), opReadMax(m)},
			{opWriteMax(m, 1), opReadMax(m)},
			{opReadMax(m), opWriteMax(m, 3)},
		}
	}
	tree, err := sim.Explore(3, setup, &sim.ExploreOptions{MaxNodes: 2000000})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Truncated {
		t.Fatal("tree truncated")
	}
	res := history.CheckLinPointCertificate(tree, spec.MaxRegister{})
	if !res.Ok {
		t.Fatalf("certificate rejected: %s", res.Failure)
	}
	if res.Leaves < 30000 {
		t.Fatalf("leaves = %d; expected a large tree", res.Leaves)
	}
}

func TestSnapshotCertificate(t *testing.T) {
	setup := func(w *sim.World) []sim.Program {
		s := NewFASnapshot(w, "s", 3)
		return []sim.Program{
			{opUpdate(s, 0, 1), opScan(s)},
			{opUpdate(s, 1, 2)},
			{opScan(s)},
		}
	}
	tree, err := sim.Explore(3, setup, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res := history.CheckLinPointCertificate(tree, spec.Snapshot{}); !res.Ok {
		t.Fatalf("certificate rejected: %s", res.Failure)
	}
}

func TestFAFetchIncCertificate(t *testing.T) {
	setup := func(w *sim.World) []sim.Program {
		f := NewFAFetchInc(w, "f")
		return []sim.Program{
			{opFAI(f), opFAIRead(f)},
			{opFAI(f), opFAI(f)},
		}
	}
	tree, err := sim.Explore(2, setup, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res := history.CheckLinPointCertificate(tree, spec.FetchInc{}); !res.Ok {
		t.Fatalf("certificate rejected: %s", res.Failure)
	}
}

// E-ABL1, sharpened: WITHOUT the fetch&add(R,0), no-op WriteMax operations
// take no shared step, so they carry no linearization point — the
// certificate fails — yet the object remains strongly linearizable (the
// game checker accepts; a stepless no-op can be linearized anywhere). This
// is precisely why the paper keeps the "unnecessary" fetch&add: it buys the
// simple fixed-linearization-point proof.
func TestMaxRegisterAblationCertificateAsymmetry(t *testing.T) {
	setup := func(w *sim.World) []sim.Program {
		m := NewFAMaxRegister(w, "m", 2, WithoutNoopFA())
		return []sim.Program{
			{opWriteMax(m, 3), opWriteMax(m, 1)}, // the second write is a stepless no-op
			{opReadMax(m)},
		}
	}
	tree, err := sim.Explore(2, setup, nil)
	if err != nil {
		t.Fatal(err)
	}
	cert := history.CheckLinPointCertificate(tree, spec.MaxRegister{})
	if cert.Ok {
		t.Fatal("certificate accepted the ablated variant; expected a missing linearization point")
	}
	game := history.CheckStrongLin(tree, spec.MaxRegister{}, nil)
	if !game.Ok {
		t.Fatalf("game checker rejected the ablated variant: %v", game.Counterexample)
	}
}

// Agreement between the two methods wherever both apply.
func TestCertificateAgreesWithGameChecker(t *testing.T) {
	setup := func(w *sim.World) []sim.Program {
		s := NewFASnapshot(w, "s", 2)
		return []sim.Program{
			{opUpdate(s, 0, 3), opScan(s)},
			{opUpdate(s, 1, 4), opScan(s)},
		}
	}
	tree, err := sim.Explore(2, setup, nil)
	if err != nil {
		t.Fatal(err)
	}
	cert := history.CheckLinPointCertificate(tree, spec.Snapshot{})
	game := history.CheckStrongLin(tree, spec.Snapshot{}, nil)
	if !cert.Ok || !game.Ok {
		t.Fatalf("methods disagree or fail: cert=%v (%s) game=%v", cert.Ok, cert.Failure, game.Ok)
	}
}
