package core

import (
	"math"
	"math/rand"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"stronglin/internal/history"
	"stronglin/internal/prim"
	"stronglin/internal/sim"
	"stronglin/internal/spec"
)

// The multi-word snapshot engine stripes components across k XADD words plus
// an announce-completion epoch word, lifting the single packed word's
// n x bitWidth(maxValue) <= 63 ceiling. It is verified the same three ways
// as the packed cores — exhaustive strong-linearizability model checks on
// bounded configurations (2 words x 2-3 procs x 1-2 ops), differential
// fuzzing against the wide register as oracle, randomized linearizability
// stress under real concurrency — plus the negative exhibit the design rests
// on: the SAME collect without epoch validation is not even linearizable.

// mwBound3 stripes 3 lanes over 2 words: FieldWidth = 22, 2 lanes/word.
const mwBound3 = int64(1)<<22 - 1

// mwBound2 stripes 2 lanes over 2 words: FieldWidth = 32, 1 lane/word.
const mwBound2 = int64(1)<<32 - 1

func TestMultiwordSelection(t *testing.T) {
	w := sim.NewSoloWorld()
	for _, c := range []struct {
		name  string
		n     int
		bound int64
		words int
	}{
		{"m8", 8, 1<<15 - 1, 2},             // 8 x 15 bits: 4 lanes/word x 2 words
		{"m16", 16, 1<<15 - 1, 4},           // 16 x 15 bits: 4 words
		{"m3", 3, mwBound3, 2},              // 3 x 22 bits: 2 words
		{"m64", 64, 3, 3},                   // past 63 lanes entirely: 31 lanes/word
		{"mmax", 2, math.MaxInt64, 2},       // full-width fields: 1 lane/word
		{"m100", 100, int64(1)<<31 - 1, 50}, // 31-bit refs at 100 lanes
	} {
		s := NewFASnapshot(w, c.name, c.n, WithSnapshotBound(c.bound))
		if !s.Multiword() || s.Packed() || s.Engine() != "multiword" {
			t.Errorf("%s: engine = %s, want multiword", c.name, s.Engine())
			continue
		}
		if s.Words() != c.words {
			t.Errorf("%s: words = %d, want %d", c.name, s.Words(), c.words)
		}
	}
	// A bound that fits one word still prefers the cheaper wait-free engine.
	if s := NewFASnapshot(w, "single", 4, WithSnapshotBound(1<<15-1)); !s.Packed() || s.Multiword() {
		t.Error("single-word-fitting bound must select the packed engine")
	}
	// No bound: the wide register remains the only unbounded substrate.
	if s := NewFASnapshot(w, "wide", 4); s.Engine() != "wide" || s.Words() != 0 {
		t.Errorf("unbounded engine = %s, words = %d; want wide, 0", s.Engine(), s.Words())
	}
}

// TestMultiwordSnapshotSequential mirrors TestPackedSnapshotSequential on the
// multi-word engine, with the lanes deliberately spanning both words.
func TestMultiwordSnapshotSequential(t *testing.T) {
	w := sim.NewSoloWorld()
	s := NewFASnapshot(w, "snap", 3, WithSnapshotBound(mwBound3))
	if !s.Multiword() || s.Words() != 2 {
		t.Fatalf("engine = %s x %d words, want multiword x 2", s.Engine(), s.Words())
	}
	if got := spec.RespVec(s.Scan(sim.SoloThread(0))); got != "[0 0 0]" {
		t.Fatalf("initial scan = %s", got)
	}
	s.Update(sim.SoloThread(2), 7) // lane 2: second word
	s.Update(sim.SoloThread(0), 3) // lane 0: first word
	if got := spec.RespVec(s.Scan(sim.SoloThread(1))); got != "[3 0 7]" {
		t.Fatalf("scan = %s", got)
	}
	s.Update(sim.SoloThread(2), 1) // smaller value: negative field delta
	if got := spec.RespVec(s.Scan(sim.SoloThread(1))); got != "[3 0 1]" {
		t.Fatalf("scan = %s", got)
	}
	s.Update(sim.SoloThread(2), 1) // same value: single XADD(0), no announce
	if got := spec.RespVec(s.Scan(sim.SoloThread(1))); got != "[3 0 1]" {
		t.Fatalf("scan = %s", got)
	}
	s.Update(sim.SoloThread(0), 0) // zero clears the field
	if got := spec.RespVec(s.Scan(sim.SoloThread(1))); got != "[0 0 1]" {
		t.Fatalf("scan = %s", got)
	}
	s.Update(sim.SoloThread(1), mwBound3) // full-width value at a word boundary lane
	if got := s.Scan(sim.SoloThread(0))[1]; got != mwBound3 {
		t.Fatalf("component 1 = %d, want %d", got, mwBound3)
	}
	if width := s.Width(sim.SoloThread(0)); width < 1 || width > 2*63 {
		t.Fatalf("multi-word Width = %d, want within (0, 126]", width)
	}
}

func TestMultiwordSnapshotRejectsOverBound(t *testing.T) {
	w := sim.NewSoloWorld()
	s := NewFASnapshot(w, "snap", 2, WithSnapshotBound(mwBound2))
	defer func() {
		if recover() == nil {
			t.Fatal("Update beyond the multi-word bound did not panic")
		}
	}()
	s.Update(sim.SoloThread(0), mwBound2+1)
}

func TestMultiwordScanIntoLengthMismatch(t *testing.T) {
	w := sim.NewSoloWorld()
	s := NewFASnapshot(w, "snap", 3, WithSnapshotBound(mwBound3))
	defer func() {
		if recover() == nil {
			t.Fatal("ScanInto with a short view did not panic")
		}
	}()
	s.ScanInto(sim.SoloThread(0), make([]int64, 2))
}

// --- exhaustive strong-linearizability model checks --------------------------
//
// 2 words x 2-3 procs x 1-2 ops: multi-word operations take several scheduler
// steps (update: word XADD + announce; scan: epoch, k words, epoch, plus
// retries), so the configurations are kept a notch smaller than the
// single-fetch&add engines' to stay within the exploration cap.

func TestMultiwordSnapshotStrongLinTwoUpdatersOneScanner(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive model check; skipped in -short mode")
	}
	setup := func(w *sim.World) []sim.Program {
		s := NewFASnapshot(w, "snap", 3, WithSnapshotBound(mwBound3)) // 2 words
		return []sim.Program{
			{opUpdate(s, 0, 1)},
			{opUpdate(s, 1, 2)},
			{opScan(s)},
		}
	}
	verifySL(t, 3, setup, spec.Snapshot{})
}

// TestMultiwordSnapshotStrongLinCrossWord puts the updaters on DIFFERENT
// words (1 lane per word): the interleavings where a collect reads one word
// before an update and the other after are exactly the ones the epoch
// validation must catch.
func TestMultiwordSnapshotStrongLinCrossWord(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive model check; skipped in -short mode")
	}
	setup := func(w *sim.World) []sim.Program {
		s := NewFASnapshot(w, "snap", 2, WithSnapshotBound(mwBound2)) // 1 lane/word
		return []sim.Program{
			{opUpdate(s, 0, 1), opScan(s)},
			{opUpdate(s, 1, 2), opScan(s)},
		}
	}
	verifySL(t, 2, setup, spec.Snapshot{})
}

func TestMultiwordSnapshotStrongLinOverwrites(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive model check; skipped in -short mode")
	}
	// The same component written twice, concurrent with two scans: exercises
	// negative field deltas and scan retries under repeated announces.
	setup := func(w *sim.World) []sim.Program {
		s := NewFASnapshot(w, "snap", 2, WithSnapshotBound(mwBound2))
		return []sim.Program{
			{opUpdate(s, 0, 3), opUpdate(s, 0, 1)},
			{opScan(s), opScan(s)},
		}
	}
	verifySL(t, 2, setup, spec.Snapshot{})
}

func TestMultiwordSnapshotStrongLinSameValueUpdate(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive model check; skipped in -short mode")
	}
	setup := func(w *sim.World) []sim.Program {
		s := NewFASnapshot(w, "snap", 2, WithSnapshotBound(mwBound2))
		return []sim.Program{
			{opUpdate(s, 0, 2), opUpdate(s, 0, 2)},
			{opScan(s), opScan(s)},
		}
	}
	verifySL(t, 2, setup, spec.Snapshot{})
}

// TestMultiwordNaiveScanNotLinearizable is the negative exhibit the engine's
// design rests on (and the reason a multi-word snapshot is not just "k packed
// snapshots"): the SAME k-word collect WITHOUT epoch validation is not even
// linearizable. With one lane per word, a collect can read lane 0's word
// before an update(1) that then COMPLETES, after which a later update(2) on
// lane 1's word lands and is read — the view contains the later update but
// not the earlier completed one, which no legal ordering explains. This is
// the multi-register analogue of the sharded max register's broken
// single-collect, and the reason naive combining reads fail the paper's
// program (cf. the impossibility companion on consistent refereeing).
func TestMultiwordNaiveScanNotLinearizable(t *testing.T) {
	setup := func(w *sim.World) []sim.Program {
		s := NewFASnapshot(w, "snap", 3, WithSnapshotBound(mwBound2)) // FieldWidth 32: 1 lane/word, 3 words
		naive := sim.Op{
			Name: "scan-naive()",
			Spec: spec.MkOp(spec.MethodScan),
			Run: func(th prim.Thread) string {
				return spec.RespVec(s.scanNaiveInto(th, make([]int64, 3)))
			},
		}
		return []sim.Program{
			{opUpdate(s, 0, 1)}, // word 0
			{opUpdate(s, 1, 2)}, // word 1
			{naive},
		}
	}
	v, err := history.Verify(3, setup, spec.Snapshot{}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v.Linearizable {
		t.Fatal("the unvalidated multi-word collect must NOT be linearizable")
	}
	if v.StrongLin.Ok {
		t.Fatal("the unvalidated multi-word collect must NOT be strongly linearizable")
	}
	t.Logf("naive collect counterexample: %s", v.LinViolation)
}

// --- linearization-point certificates ----------------------------------------

// TestMultiwordUpdateCertificate: updates keep a fixed own-step linearization
// point — the XADD on the owning word, marked before the announce — so
// update-only trees certify linearly, exactly like the single-register
// engines.
func TestMultiwordUpdateCertificate(t *testing.T) {
	setup := func(w *sim.World) []sim.Program {
		s := NewFASnapshot(w, "snap", 2, WithSnapshotBound(mwBound2))
		return []sim.Program{
			{opUpdate(s, 0, 1), opUpdate(s, 0, 3)},
			{opUpdate(s, 1, 2)},
		}
	}
	tree, err := sim.Explore(2, setup, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res := history.CheckLinPointCertificate(tree, spec.Snapshot{}); !res.Ok {
		t.Fatalf("update-only certificate rejected: %s", res.Failure)
	}
}

// TestMultiwordScanDeclinesCertificate pins a deliberate design point: the
// multi-word Scan declares NO linearization-point mark, because no fixed
// own-step mark is valid — whether a concurrent not-yet-announced update is
// in the view depends on the update's XADD timing relative to the scan's
// read of that one word, so neither the validating epoch read nor any other
// own step orders the scan against updates' marked XADDs on every execution
// (the same reason internal/shard's combining reads carry no certificates).
// The certificate checker therefore rejects mixed trees with a missing-mark
// failure, and strong linearizability of the multi-word engine rests on the
// game checker (the positive tests above).
func TestMultiwordScanDeclinesCertificate(t *testing.T) {
	setup := func(w *sim.World) []sim.Program {
		s := NewFASnapshot(w, "snap", 2, WithSnapshotBound(mwBound2))
		return []sim.Program{
			{opUpdate(s, 0, 1)},
			{opScan(s)},
		}
	}
	tree, err := sim.Explore(2, setup, nil)
	if err != nil {
		t.Fatal(err)
	}
	res := history.CheckLinPointCertificate(tree, spec.Snapshot{})
	if res.Ok {
		t.Fatal("a tree with a multi-word scan must not certify by fixed marks")
	}
	t.Logf("certificate correctly rejected: %s", res.Failure)
}

// --- Algorithm 1 over the multi-word snapshot --------------------------------

// TestMultiwordSimpleCounterStrongLin: the Theorem 4 composition with the
// multi-word snapshot substituted — graph-node references stripe across two
// XADD words (1 reference lane per word). One operation per process: each
// Execute is a validated scan plus a publishing update, ~7 scheduler steps.
func TestMultiwordSimpleCounterStrongLin(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive model check; skipped in -short mode")
	}
	setup := func(w *sim.World) []sim.Program {
		o := NewSimpleObjectFromFA(w, "ctr", SimpleCounter{}, 2, WithSnapshotBound(mwBound2))
		if o.SnapshotEngine() != "multiword" {
			t.Fatal("config must select the multi-word engine")
		}
		return []sim.Program{
			{opExecute(o, spec.MkOp(spec.MethodInc))},
			{opExecute(o, spec.MkOp(spec.MethodRead))},
		}
	}
	verifySL(t, 2, setup, spec.Counter{})
}

func TestMultiwordSimpleClockStrongLin(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive model check; skipped in -short mode")
	}
	setup := func(w *sim.World) []sim.Program {
		o := NewSimpleObjectFromFA(w, "clk", SimpleLogicalClock{}, 2, WithSnapshotBound(mwBound2))
		return []sim.Program{
			{opExecute(o, spec.MkOp(spec.MethodTick))},
			{opExecute(o, spec.MkOp(spec.MethodRead))},
		}
	}
	verifySL(t, 2, setup, spec.LogicalClock{})
}

// TestMultiwordSimpleTypesPast63Lanes: the serving payoff — Algorithm 1
// objects at lane counts no single word can host, still machine-word-backed
// (clock, counter-with-read, max-with-read: the full simple-type trio).
func TestMultiwordSimpleTypesPast63Lanes(t *testing.T) {
	w := sim.NewSoloWorld()
	refs := int64(1)<<31 - 1 // 31-bit reference budget

	clk := NewLogicalClockFromFA(w, "clk", 64, WithSnapshotBound(refs))
	if clk.Engine() != "multiword" || clk.Packed() {
		t.Fatalf("64-lane clock engine = %s, want multiword", clk.Engine())
	}
	if clk.Capacity() != refs {
		t.Fatalf("64-lane clock capacity = %d, want %d", clk.Capacity(), refs)
	}
	clk.Tick(sim.SoloThread(63))
	clk.Tick(sim.SoloThread(0))
	if got := clk.Read(sim.SoloThread(17)); got != 2 {
		t.Fatalf("64-lane clock = %d, want 2", got)
	}

	ctr := NewCounterFromFA(w, "ctr", 100, WithSnapshotBound(refs))
	if ctr.Engine() != "multiword" || ctr.Words() != 50 {
		t.Fatalf("100-lane counter engine = %s x %d, want multiword x 50", ctr.Engine(), ctr.Words())
	}
	if err := ctr.TryInc(sim.SoloThread(99)); err != nil {
		t.Fatal(err)
	}
	ctr.Inc(sim.SoloThread(42))
	ctr.Dec(sim.SoloThread(0))
	if got, err := ctr.TryRead(sim.SoloThread(7)); err != nil || got != 1 {
		t.Fatalf("100-lane counter TryRead = (%d, %v), want (1, nil)", got, err)
	}
	if got := ctr.Used(); got != 4 {
		t.Fatalf("counter Used = %d, want 4", got)
	}

	max := NewMaxFromFA(w, "max", 70, WithSnapshotBound(refs))
	if max.Engine() != "multiword" {
		t.Fatalf("70-lane max engine = %s, want multiword", max.Engine())
	}
	max.WriteMax(sim.SoloThread(69), 41)
	if err := max.TryWriteMax(sim.SoloThread(1), 12); err != nil {
		t.Fatal(err)
	}
	if got, err := max.TryReadMax(sim.SoloThread(33)); err != nil || got != 41 {
		t.Fatalf("70-lane max TryReadMax = (%d, %v), want (41, nil)", got, err)
	}
}

// TestMultiwordSimpleObjectCapacity: the reference budget still gates
// operations past 63 lanes — TryExecute refuses cleanly at the bound.
func TestMultiwordSimpleObjectCapacity(t *testing.T) {
	w := sim.NewSoloWorld()
	c := NewLogicalClockFromFA(w, "clk", 64, WithSnapshotBound(3)) // 2-bit refs, 31 lanes/word
	if c.Engine() != "multiword" || c.Capacity() != 3 {
		t.Fatalf("engine = %s, capacity = %d; want multiword with capacity 3", c.Engine(), c.Capacity())
	}
	th := sim.SoloThread(40)
	for i := 0; i < 3; i++ {
		if err := c.TryTick(th); err != nil {
			t.Fatalf("tick %d: %v", i, err)
		}
	}
	if err := c.TryTick(th); err != ErrCapacityExhausted {
		t.Fatalf("over-capacity TryTick error = %v, want ErrCapacityExhausted", err)
	}
}

// --- differential fuzz: multi-word vs the wide oracle ------------------------

func FuzzMultiwordVsWideSnapshot(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7})
	f.Add([]byte{250, 125, 60, 30, 15, 7, 3, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		const lanes, bound = 8, 255 // FieldWidth 8: 7 lanes/word x 2 words
		w := sim.NewSoloWorld()
		multi := NewFASnapshot(w, "m", lanes, WithSnapshotBound(bound))
		wide := NewFASnapshot(w, "w", lanes)
		if !multi.Multiword() {
			t.Fatal("fuzz config must stripe")
		}
		for _, b := range data {
			th := sim.SoloThread(int(b) % lanes)
			if b%2 == 0 {
				v := int64(b)
				multi.Update(th, v)
				wide.Update(th, v)
			} else if p, v := multi.Scan(th), wide.Scan(th); !reflect.DeepEqual(p, v) {
				t.Fatalf("multi-word Scan = %v, wide Scan = %v", p, v)
			}
		}
		th := sim.SoloThread(0)
		if p, v := multi.Scan(th), wide.Scan(th); !reflect.DeepEqual(p, v) {
			t.Fatalf("final multi-word Scan = %v, wide Scan = %v", p, v)
		}
	})
}

// --- randomized stress under real goroutine concurrency ----------------------

func TestMultiwordSnapshotRealWorldStress(t *testing.T) {
	w := prim.NewRealWorld()
	const procs = 4
	s := NewFASnapshot(w, "snap", procs, WithSnapshotBound(mwBound2)) // 1 lane/word x 4 words
	if !s.Multiword() {
		t.Fatal("stress config must stripe")
	}
	rngs := make([]*rand.Rand, procs)
	for p := range rngs {
		rngs[p] = rand.New(rand.NewSource(int64(p) + 53))
	}
	h := history.Stress(history.StressConfig{
		Procs:      procs,
		OpsPerProc: 25,
		Gen: func(p, i int) history.StressOp {
			if rngs[p].Intn(2) == 0 {
				v := int64(rngs[p].Intn(1 << 16))
				return history.StressOp{
					Op: spec.MkOp(spec.MethodUpdate, int64(p), v),
					Run: func(t prim.Thread) string {
						s.Update(t, v)
						return spec.RespOK
					},
				}
			}
			return history.StressOp{
				Op:  spec.MkOp(spec.MethodScan),
				Run: func(t prim.Thread) string { return spec.RespVec(s.Scan(t)) },
			}
		},
	})
	if res := history.CheckLinearizable(h, spec.Snapshot{}); !res.Ok {
		t.Fatalf("stress history not linearizable: %s", h.String())
	}
}

// TestMultiwordScanNeverBlocksUnderUpdates is the race-stress liveness check:
// scans must keep completing (lock-free, with the writer-backoff hint
// engaged) while every other lane updates continuously. Run under -race in
// CI, this is also the data-race gate for the epoch/backoff machinery.
func TestMultiwordScanNeverBlocksUnderUpdates(t *testing.T) {
	w := prim.NewRealWorld()
	const lanes = 4
	s := NewFASnapshot(w, "snap", lanes, WithSnapshotBound(mwBound2))
	if !s.Multiword() {
		t.Fatal("config must stripe")
	}
	var stop atomic.Bool
	var wg sync.WaitGroup
	for p := 1; p < lanes; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			th := prim.RealThread(p)
			for v := int64(0); !stop.Load(); v++ {
				s.Update(th, v%1024)
			}
		}(p)
	}
	th := prim.RealThread(0)
	view := make([]int64, lanes)
	deadline := time.Now().Add(200 * time.Millisecond)
	scans := 0
	for time.Now().Before(deadline) {
		s.ScanInto(th, view)
		for i := 1; i < lanes; i++ {
			if view[i] < 0 || view[i] >= 1024 {
				t.Errorf("scan saw impossible component %d = %d", i, view[i])
			}
		}
		scans++
	}
	stop.Store(true)
	wg.Wait()
	if scans == 0 {
		t.Fatal("no scan completed under concurrent updates")
	}
	t.Logf("%d scans completed under 3 continuous updaters", scans)
}

// TestMultiwordOpsAllocFree pins the 0 allocs/op contract of the hot path:
// Update (XADD + announce) and ScanInto (epoch-validated gather) allocate
// nothing in steady state.
func TestMultiwordOpsAllocFree(t *testing.T) {
	w := prim.NewRealWorld()
	const lanes = 8
	s := NewFASnapshot(w, "snap", lanes, WithSnapshotBound(1<<15-1))
	if !s.Multiword() {
		t.Fatal("config must stripe")
	}
	th := prim.RealThread(0)
	var v int64
	if allocs := testing.AllocsPerRun(200, func() { v++; s.Update(th, v%100) }); allocs != 0 {
		t.Fatalf("multi-word Update allocates %.1f per op, want 0", allocs)
	}
	view := make([]int64, lanes)
	if allocs := testing.AllocsPerRun(200, func() { s.ScanInto(th, view) }); allocs != 0 {
		t.Fatalf("multi-word ScanInto allocates %.1f per op, want 0", allocs)
	}
}
