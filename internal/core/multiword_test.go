package core

import (
	"math"
	"math/rand"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"stronglin/internal/history"
	"stronglin/internal/prim"
	"stronglin/internal/sim"
	"stronglin/internal/spec"
)

// The multi-word snapshot engine stripes components across k XADD words —
// each carrying a per-word sequence field that every value-changing update
// bumps in the same XADD as its payload delta, word 0's doubling as the
// announce counter — lifting the single packed word's
// n x bitWidth(maxValue) <= 63 ceiling. Scans are ANCHORED double collects:
// two consecutive identical k-word reads, each round reading word 0 LAST,
// pin the state to a real instant, and the validating round's own word-0
// read anchors that instant against completed updates. Starving scans are
// HELPED: updates poll a pressure register after announcing and deposit
// validated collects that a scan past its retry budget adopts, with the
// same word-0 witness as its final step (helping_test.go carries the
// helped-path checks and the progress witnesses live in progress_test.go).
// The engine is verified the same three ways as the packed cores —
// exhaustive strong-linearizability model checks on bounded configurations
// (2 words x 2-3 procs x 1-2 ops, including cross-word updater
// placements), differential fuzzing against the wide register as oracle,
// randomized linearizability stress under real concurrency (including the
// 2-updater x 2-scanner view-comparability property) — plus FOUR negative
// exhibits, one per discarded design: a single unvalidated collect is not
// even linearizable; announce-only validation (this engine's originally
// shipped protocol) let two concurrent scans validate incomparable views;
// the double collect whose rounds read word 0 first is linearizable but
// not strongly linearizable; and the same commitment hazard reappears in
// the help path when an adopted view skips the word-0 witness
// (helping_test.go).

// mwBound3 stripes 3 lanes over 2 words: FieldWidth = 22, 2 lanes/word.
const mwBound3 = int64(1)<<22 - 1

// mwBound2 stripes 2 lanes over 2 words: FieldWidth = 32, 1 lane/word.
const mwBound2 = int64(1)<<32 - 1

// mwBound24 stripes 2 lanes per word: FieldWidth = 24. With 3 lanes it is
// the minimal cross-word shape whose updaters can sit on different words
// while the scan still reads only 2 words.
const mwBound24 = int64(1)<<24 - 1

func TestMultiwordSelection(t *testing.T) {
	w := sim.NewSoloWorld()
	for _, c := range []struct {
		name  string
		n     int
		bound int64
		words int
	}{
		{"m8", 8, 1<<15 - 1, 3},              // 8 x 15 bits: 3 lanes/word x 3 words
		{"m16", 16, 1<<15 - 1, 6},            // 16 x 15 bits: 6 words
		{"m3", 3, mwBound3, 2},               // 3 x 22 bits: 2 words
		{"m64", 64, 3, 3},                    // past 63 lanes entirely: 24 lanes/word
		{"m48", 2, int64(1)<<48 - 1, 2},      // full-payload fields: 1 lane/word
		{"m100", 100, int64(1)<<31 - 1, 100}, // 31-bit refs at 100 lanes
	} {
		s := NewFASnapshot(w, c.name, c.n, WithSnapshotBound(c.bound))
		if !s.Multiword() || s.Packed() || s.Engine() != "multiword" {
			t.Errorf("%s: engine = %s, want multiword", c.name, s.Engine())
			continue
		}
		if s.Words() != c.words {
			t.Errorf("%s: words = %d, want %d", c.name, s.Words(), c.words)
		}
	}
	// A bound that fits one word still prefers the cheaper wait-free engine.
	if s := NewFASnapshot(w, "single", 4, WithSnapshotBound(1<<15-1)); !s.Packed() || s.Multiword() {
		t.Error("single-word-fitting bound must select the packed engine")
	}
	// No bound: the wide register remains the only unbounded substrate.
	if s := NewFASnapshot(w, "wide", 4); s.Engine() != "wide" || s.Words() != 0 {
		t.Errorf("unbounded engine = %s, words = %d; want wide, 0", s.Engine(), s.Words())
	}
	// A bound needing 49..63-bit fields exceeds the validated word's payload
	// budget (interleave.LaneBits next to the sequence field): honest wide
	// fallback instead of an unvalidatable striping.
	if s := NewFASnapshot(w, "toowide", 2, WithSnapshotBound(math.MaxInt64)); s.Engine() != "wide" {
		t.Errorf("63-bit fields at 2 lanes: engine = %s, want wide", s.Engine())
	}
}

// TestMultiwordSnapshotSequential mirrors TestPackedSnapshotSequential on the
// multi-word engine, with the lanes deliberately spanning both words.
func TestMultiwordSnapshotSequential(t *testing.T) {
	w := sim.NewSoloWorld()
	s := NewFASnapshot(w, "snap", 3, WithSnapshotBound(mwBound3))
	if !s.Multiword() || s.Words() != 2 {
		t.Fatalf("engine = %s x %d words, want multiword x 2", s.Engine(), s.Words())
	}
	if got := spec.RespVec(s.Scan(sim.SoloThread(0))); got != "[0 0 0]" {
		t.Fatalf("initial scan = %s", got)
	}
	s.Update(sim.SoloThread(2), 7) // lane 2: second word
	s.Update(sim.SoloThread(0), 3) // lane 0: first word
	if got := spec.RespVec(s.Scan(sim.SoloThread(1))); got != "[3 0 7]" {
		t.Fatalf("scan = %s", got)
	}
	s.Update(sim.SoloThread(2), 1) // smaller value: negative field delta
	if got := spec.RespVec(s.Scan(sim.SoloThread(1))); got != "[3 0 1]" {
		t.Fatalf("scan = %s", got)
	}
	s.Update(sim.SoloThread(2), 1) // same value: single XADD(0), no announce
	if got := spec.RespVec(s.Scan(sim.SoloThread(1))); got != "[3 0 1]" {
		t.Fatalf("scan = %s", got)
	}
	s.Update(sim.SoloThread(0), 0) // zero clears the field
	if got := spec.RespVec(s.Scan(sim.SoloThread(1))); got != "[0 0 1]" {
		t.Fatalf("scan = %s", got)
	}
	s.Update(sim.SoloThread(1), mwBound3) // full-width value at a word boundary lane
	if got := s.Scan(sim.SoloThread(0))[1]; got != mwBound3 {
		t.Fatalf("component 1 = %d, want %d", got, mwBound3)
	}
	if width := s.Width(sim.SoloThread(0)); width < 1 || width > 2*63 {
		t.Fatalf("multi-word Width = %d, want within (0, 126]", width)
	}
}

func TestMultiwordSnapshotRejectsOverBound(t *testing.T) {
	w := sim.NewSoloWorld()
	s := NewFASnapshot(w, "snap", 2, WithSnapshotBound(mwBound2))
	defer func() {
		if recover() == nil {
			t.Fatal("Update beyond the multi-word bound did not panic")
		}
	}()
	s.Update(sim.SoloThread(0), mwBound2+1)
}

func TestMultiwordScanIntoLengthMismatch(t *testing.T) {
	w := sim.NewSoloWorld()
	s := NewFASnapshot(w, "snap", 3, WithSnapshotBound(mwBound3))
	defer func() {
		if recover() == nil {
			t.Fatal("ScanInto with a short view did not panic")
		}
	}()
	s.ScanInto(sim.SoloThread(0), make([]int64, 2))
}

// --- exhaustive strong-linearizability model checks --------------------------
//
// 2 words x 2-3 procs x 1-2 ops: a multi-word update is two scheduler steps
// on word 0 and three elsewhere (payload XADD [+ announce] + pressure
// poll), and a scan is 2k word reads plus retries, so the configurations
// are kept a notch smaller than the single-fetch&add engines' to stay
// within the exploration cap. Both hazards the protocol guards against have
// their minimal EXHAUSTIVE witness inside this envelope except one: the
// double-collect commitment hazard needs 2 cross-word updaters + 1 scanner
// (3 procs, TestMultiwordUnanchoredScanNotStrongLin / the positive
// CrossWordUpdaters twin — both past the default node cap since helping
// grew the updates, both checked complete under an explicit 800k cap),
// while the announce-only incomparable-views hazard needs a second scanner
// (4 procs), whose full tree exceeds the exploration cap on any protocol —
// that shape is pinned by a crafted-schedule refutation
// (TestMultiwordAnnounceOnlyProtocolNotLinearizable, soundly: one
// non-linearizable complete history refutes), a crafted-schedule positive
// race (TestMultiwordCrossWordScansCraftedRace), and the real-concurrency
// comparability stress (TestMultiwordConcurrentScansComparable).

func TestMultiwordSnapshotStrongLinTwoUpdatersOneScanner(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive model check; skipped in -short mode")
	}
	setup := func(w *sim.World) []sim.Program {
		s := NewFASnapshot(w, "snap", 3, WithSnapshotBound(mwBound3)) // 2 words
		return []sim.Program{
			{opUpdate(s, 0, 1)},
			{opUpdate(s, 1, 2)},
			{opScan(s)},
		}
	}
	verifySL(t, 3, setup, spec.Snapshot{})
}

// TestMultiwordSnapshotStrongLinCrossWord puts the updaters on DIFFERENT
// words (1 lane per word): the interleavings where a collect reads one word
// before an update and the other after are exactly the ones the double
// collect must catch.
func TestMultiwordSnapshotStrongLinCrossWord(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive model check; skipped in -short mode")
	}
	setup := func(w *sim.World) []sim.Program {
		s := NewFASnapshot(w, "snap", 2, WithSnapshotBound(mwBound2)) // 1 lane/word
		return []sim.Program{
			{opUpdate(s, 0, 1), opScan(s)},
			{opUpdate(s, 1, 2), opScan(s)},
		}
	}
	verifySL(t, 2, setup, spec.Snapshot{})
}

func TestMultiwordSnapshotStrongLinOverwrites(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive model check; skipped in -short mode")
	}
	// The same component written twice, concurrent with two scans: exercises
	// negative field deltas and scan retries under repeated sequence bumps.
	setup := func(w *sim.World) []sim.Program {
		s := NewFASnapshot(w, "snap", 2, WithSnapshotBound(mwBound2))
		return []sim.Program{
			{opUpdate(s, 0, 3), opUpdate(s, 0, 1)},
			{opScan(s), opScan(s)},
		}
	}
	verifySL(t, 2, setup, spec.Snapshot{})
}

func TestMultiwordSnapshotStrongLinSameValueUpdate(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive model check; skipped in -short mode")
	}
	setup := func(w *sim.World) []sim.Program {
		s := NewFASnapshot(w, "snap", 2, WithSnapshotBound(mwBound2))
		return []sim.Program{
			{opUpdate(s, 0, 2), opUpdate(s, 0, 2)},
			{opScan(s), opScan(s)},
		}
	}
	verifySL(t, 2, setup, spec.Snapshot{})
}

// TestMultiwordSnapshotStrongLinCrossWordUpdaters is the review-driven
// envelope extension, and the shape under which BOTH discarded designs
// fail: updaters on two DIFFERENT words concurrent with a full scan, all
// three operations pairwise concurrent possible. Word 0's updater announces
// in its payload XADD; word 1's updater announces in a separate step — so
// this configuration exercises the completion hazard exhaustively: an
// update can land after the scan's validated pair has passed its word and
// complete while the scan is finishing, and the second updater keeps the
// scan's outcome undetermined. The unanchored twin below shows the game
// checker refuting the word-0-first double collect on exactly this
// configuration; the shipped protocol must win it.
//
// PR 5 sizing: helping costs every value-changing update one pressure-poll
// step, which put this configuration past the default 400k-node cap —
// 652244 nodes now, checked under an explicit 800k cap. The retry budget is
// pinned to 3, one above the largest failed-round count three update events
// can force, so the pressure raise is unreachable here and the tree
// exhausts the CORE protocol (identical to the default-budget protocol
// until a raise); the raised/adopt machinery has its own exhaustive config
// (TestMultiwordHelpedScanStrongLin*), crafted races and stress.
func TestMultiwordSnapshotStrongLinCrossWordUpdaters(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive model check; skipped in -short mode")
	}
	setup := func(w *sim.World) []sim.Program {
		s := NewFASnapshot(w, "snap", 3, WithSnapshotBound(mwBound24), WithScanRetryBudget(3)) // lanes 0,1 word 0; lane 2 word 1
		if s.Words() != 2 {
			t.Fatalf("words = %d, want 2", s.Words())
		}
		return []sim.Program{
			{opUpdate(s, 0, 1)}, // word 0: announce fused into the payload XADD
			{opScan(s)},
			{opUpdate(s, 2, 2)}, // word 1: separate announce step
		}
	}
	v, err := history.Verify(3, setup, spec.Snapshot{}, &sim.ExploreOptions{MaxNodes: 800000}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Linearizable {
		t.Fatalf("linearizability violated: %s", v.LinViolation)
	}
	if !v.StrongLin.Ok {
		t.Fatalf("strong linearizability violated: %v", v.StrongLin.Counterexample)
	}
}

// TestMultiwordUnanchoredScanNotStrongLin is the negative twin: the SAME
// cross-word configuration, with the scan's rounds reading word 0 FIRST
// instead of last (scanUnanchoredInto) — equivalently, the anchored scan
// with its closing announce witness removed. Two consecutive identical
// collects still pin a true state, so every complete execution is
// linearizable — but the pinned instant may lie in the past of an update
// that already returned: after the pair has validated word 0, the word-0
// updater can land and complete while the scan is still reading word 1,
// and whether the scan's eventual view includes it still hangs on the
// word-1 updater. No eager linearization of the pending scan survives both
// futures, so prefix-closure fails: the game checker refutes strong
// linearizability exhaustively. This is the
// linearizable-but-not-strongly-linearizable gap the library exists to
// close, reproduced inside the multi-word engine — and the reason the
// shipped rounds read word 0 last. (800k-node cap for the same reason as
// the positive twin above: helping's pressure poll grew the updates.)
func TestMultiwordUnanchoredScanNotStrongLin(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive model check; skipped in -short mode")
	}
	setup := func(w *sim.World) []sim.Program {
		s := NewFASnapshot(w, "snap", 3, WithSnapshotBound(mwBound24))
		unanchored := sim.Op{
			Name: "scan-unanchored()",
			Spec: spec.MkOp(spec.MethodScan),
			Run: func(th prim.Thread) string {
				return spec.RespVec(s.scanUnanchoredInto(th, make([]int64, 3)))
			},
		}
		return []sim.Program{
			{opUpdate(s, 0, 1)},
			{unanchored},
			{opUpdate(s, 2, 2)},
		}
	}
	v, err := history.Verify(3, setup, spec.Snapshot{}, &sim.ExploreOptions{MaxNodes: 800000}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Linearizable {
		t.Fatalf("the unanchored double collect must stay linearizable (it returns true states): %s", v.LinViolation)
	}
	if v.StrongLin.Ok {
		t.Fatal("the unanchored double collect must NOT be strongly linearizable")
	}
	t.Logf("unanchored-scan commitment counterexample: %v", v.StrongLin.Counterexample)
}

// TestMultiwordAnnounceOnlyProtocolNotLinearizable pins the bug this PR's
// review caught in the engine's originally shipped protocol, on the minimal
// 4-process shape that exhibits it (updaters on two words plus TWO
// concurrent scanners — one process more than the exhaustive envelope
// above, whose full tree exceeds the exploration cap; a single
// non-linearizable complete history is a sound refutation). That protocol
// striped components over k words WITHOUT per-word sequence fields and had
// updates announce completion on a separate epoch word AFTER their payload
// XADD, with scans validating one collect against an unchanged epoch. The
// announce gap is fatal: with one update in flight on each word and neither
// yet announced, both scans validate (the epoch never moved) yet split the
// in-flight updates inconsistently — scan A sees update 1 but not update 2,
// scan B sees update 2 but not update 1 — and no total order of the updates
// explains both views. The test rebuilds that protocol from raw registers
// and drives the window with a crafted schedule. The shipped engine closes
// the gap structurally: the payload delta and the owning word's sequence
// bump land in ONE XADD, so a collect pair can never half-see an update.
func TestMultiwordAnnounceOnlyProtocolNotLinearizable(t *testing.T) {
	setup := func(w *sim.World) []sim.Program {
		words := []prim.FetchAddInt{
			w.FetchAddInt("old.R0", 0),
			w.FetchAddInt("old.R1", 0),
		}
		epoch := w.FetchAddInt("old.epoch", 0)
		update := func(word int, delta int64) sim.Op {
			return sim.Op{
				Name: spec.MkOp(spec.MethodUpdate, int64(word), delta).String(),
				Spec: spec.MkOp(spec.MethodUpdate, int64(word), delta),
				Run: func(th prim.Thread) string {
					words[word].FetchAddInt(th, delta) // payload lands...
					epoch.FetchAddInt(th, 1)           // ...and only then announces
					return spec.RespOK
				},
			}
		}
		scan := sim.Op{
			Name: "scan-epoch()",
			Spec: spec.MkOp(spec.MethodScan),
			Run: func(th prim.Thread) string {
				view := make([]int64, 2)
				e := epoch.FetchAddInt(th, 0)
				for {
					view[0] = words[0].FetchAddInt(th, 0)
					view[1] = words[1].FetchAddInt(th, 0)
					e2 := epoch.FetchAddInt(th, 0)
					if e2 == e {
						return spec.RespVec(view)
					}
					e = e2
				}
			},
		}
		return []sim.Program{
			{update(0, 1)},
			{update(1, 2)},
			{scan},
			{scan},
		}
	}
	// The reviewed counterexample, step by step (procs: 0/1 = updaters on
	// words 0/1; 2/3 = scanners): both scanners read epoch 0; scanner 3 reads
	// word 0 BEFORE update 0 lands; update 0 lands (unannounced); scanner 2
	// reads word 0 (sees it) and word 1 (empty); update 1 lands
	// (unannounced); scanner 3 reads word 1 (sees it); both scanners re-read
	// epoch 0 and validate — scanner 2 returns [1 0], scanner 3 returns
	// [0 2]; the updates then announce and return.
	schedule := []int{
		2, 2, // scan A: invoke, epoch read (0)
		3, 3, // scan B: invoke, epoch read (0)
		3,    // scan B: word 0 read -> 0
		0, 0, // update 0: invoke, XADD word 0
		2, 2, // scan A: word 0 read -> 1, word 1 read -> 0
		1, 1, // update 1: invoke, XADD word 1
		3,    // scan B: word 1 read -> 2
		2,    // scan A: epoch re-read (0): validates, returns [1 0]
		3,    // scan B: epoch re-read (0): validates, returns [0 2]
		0, 1, // both updates announce and return
	}
	exec, err := sim.Run(4, setup, schedule)
	if err != nil {
		t.Fatal(err)
	}
	if !exec.Complete {
		t.Fatalf("crafted schedule did not complete the execution (schedule %v)", exec.Schedule)
	}
	h := history.FromEvents(4, exec.Ops, exec.Events)
	res := history.CheckLinearizable(h, spec.Snapshot{})
	if res.Ok {
		t.Fatalf("the announce-only protocol linearized the incomparable-views history: %s", h.String())
	}
	t.Logf("announce-only counterexample history: %s", h.String())
}

// TestMultiwordCrossWordScansCraftedRace drives the SHIPPED engine through
// the same adversarial window the announce-only counterexample exploits —
// scan B reads word 0 before the word-0 update lands, scan A reads it
// after, and the word-1 update lands between the two scans' reads of word 1
// — then lets the run complete deterministically. Where the retired
// protocol returned incomparable views, the shipped scans' validation
// forces re-collects: the recorded history must be linearizable and the two
// views componentwise comparable. (A deterministic regression for the
// 4-proc shape; the exhaustive 3-proc checks and the randomized
// comparability stress carry the general claim.)
func TestMultiwordCrossWordScansCraftedRace(t *testing.T) {
	var views [][]int64
	setup := func(w *sim.World) []sim.Program {
		s := NewFASnapshot(w, "snap", 4, WithSnapshotBound(mwBound24)) // lanes 0,1 word 0; lanes 2,3 word 1
		scan := sim.Op{
			Name: "scan()",
			Spec: spec.MkOp(spec.MethodScan),
			Run: func(th prim.Thread) string {
				v := s.Scan(th)
				views = append(views, v)
				return spec.RespVec(v)
			},
		}
		return []sim.Program{
			{opUpdate(s, 0, 1)}, // word 0
			{scan},              // scan A
			{opUpdate(s, 2, 2)}, // word 1
			{scan},              // scan B
		}
	}
	// The critical window, as a lenient policy: play the crafted grant when
	// it is enabled, fall back to the lowest enabled process otherwise, and
	// round-robin the run to completion past the window.
	window := []int{1, 3, 3, 0, 0, 1, 1, 2, 2, 3, 1, 1, 2}
	policy := func(v sim.PolicyView) int {
		if v.Step < len(window) {
			p := window[v.Step]
			for _, e := range v.Enabled {
				if e == p {
					return p
				}
			}
		}
		return v.Enabled[0]
	}
	exec, err := sim.RunToCompletion(4, setup, policy, 200)
	if err != nil {
		t.Fatal(err)
	}
	if !exec.Complete {
		t.Fatalf("crafted race did not complete (schedule %v)", exec.Schedule)
	}
	h := history.FromEvents(4, exec.Ops, exec.Events)
	if res := history.CheckLinearizable(h, spec.Snapshot{}); !res.Ok {
		t.Fatalf("crafted race history not linearizable: %s", h.String())
	}
	if len(views) != 2 {
		t.Fatalf("recorded %d views, want 2", len(views))
	}
	le, ge := true, true
	for i := range views[0] {
		le = le && views[0][i] <= views[1][i]
		ge = ge && views[0][i] >= views[1][i]
	}
	if !le && !ge {
		t.Fatalf("incomparable views under the crafted race: %v vs %v", views[0], views[1])
	}
	t.Logf("crafted race views: %v / %v, history: %s", views[0], views[1], h.String())
}

// TestMultiwordNaiveScanNotLinearizable is the negative exhibit the engine's
// design rests on (and the reason a multi-word snapshot is not just "k packed
// snapshots"): a LONE k-word collect, without the validating second one, is
// not even linearizable. With one lane per word, a collect can read lane 0's
// word before an update(1) that then COMPLETES, after which a later
// update(2) on lane 1's word lands and is read — the view contains the later
// update but not the earlier completed one, which no legal ordering
// explains. This is the multi-register analogue of the sharded max
// register's broken single-collect, and the reason naive combining reads
// fail the paper's program (cf. the impossibility companion on consistent
// refereeing).
func TestMultiwordNaiveScanNotLinearizable(t *testing.T) {
	setup := func(w *sim.World) []sim.Program {
		s := NewFASnapshot(w, "snap", 3, WithSnapshotBound(mwBound2)) // FieldWidth 32: 1 lane/word, 3 words
		naive := sim.Op{
			Name: "scan-naive()",
			Spec: spec.MkOp(spec.MethodScan),
			Run: func(th prim.Thread) string {
				return spec.RespVec(s.scanNaiveInto(th, make([]int64, 3)))
			},
		}
		return []sim.Program{
			{opUpdate(s, 0, 1)}, // word 0
			{opUpdate(s, 1, 2)}, // word 1
			{naive},
		}
	}
	v, err := history.Verify(3, setup, spec.Snapshot{}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v.Linearizable {
		t.Fatal("the unvalidated multi-word collect must NOT be linearizable")
	}
	if v.StrongLin.Ok {
		t.Fatal("the unvalidated multi-word collect must NOT be strongly linearizable")
	}
	t.Logf("naive collect counterexample: %s", v.LinViolation)
}

// --- linearization-point certificates ----------------------------------------

// TestMultiwordUpdateCertificate: updates keep a fixed own-step linearization
// point — their single XADD on the owning word — so update-only trees
// certify linearly, exactly like the single-register engines.
func TestMultiwordUpdateCertificate(t *testing.T) {
	setup := func(w *sim.World) []sim.Program {
		s := NewFASnapshot(w, "snap", 2, WithSnapshotBound(mwBound2))
		return []sim.Program{
			{opUpdate(s, 0, 1), opUpdate(s, 0, 3)},
			{opUpdate(s, 1, 2)},
		}
	}
	tree, err := sim.Explore(2, setup, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res := history.CheckLinPointCertificate(tree, spec.Snapshot{}); !res.Ok {
		t.Fatalf("update-only certificate rejected: %s", res.Failure)
	}
}

// TestMultiwordScanDeclinesCertificate pins a deliberate design point: the
// multi-word Scan declares NO linearization-point mark. Its linearization
// point is the first read of the round that validates, which is only
// identified in hindsight — when that read executes, whether the round's
// second reads will match still depends on updates that have not happened,
// so no mark placed during execution names the right step on every branch
// (the same reason internal/shard's combining reads carry no certificates).
// The certificate checker therefore rejects mixed trees with a missing-mark
// failure, and strong linearizability of the multi-word engine rests on the
// game checker (the positive tests above).
func TestMultiwordScanDeclinesCertificate(t *testing.T) {
	setup := func(w *sim.World) []sim.Program {
		s := NewFASnapshot(w, "snap", 2, WithSnapshotBound(mwBound2))
		return []sim.Program{
			{opUpdate(s, 0, 1)},
			{opScan(s)},
		}
	}
	tree, err := sim.Explore(2, setup, nil)
	if err != nil {
		t.Fatal(err)
	}
	res := history.CheckLinPointCertificate(tree, spec.Snapshot{})
	if res.Ok {
		t.Fatal("a tree with a multi-word scan must not certify by fixed marks")
	}
	t.Logf("certificate correctly rejected: %s", res.Failure)
}

// --- Algorithm 1 over the multi-word snapshot --------------------------------

// TestMultiwordSimpleCounterStrongLin: the Theorem 4 composition with the
// multi-word snapshot substituted — graph-node references stripe across two
// XADD words (1 reference lane per word). One operation per process: each
// Execute is a validated scan plus a publishing update, ~7 scheduler steps.
func TestMultiwordSimpleCounterStrongLin(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive model check; skipped in -short mode")
	}
	setup := func(w *sim.World) []sim.Program {
		o := NewSimpleObjectFromFA(w, "ctr", SimpleCounter{}, 2, WithSnapshotBound(mwBound2))
		if o.SnapshotEngine() != "multiword" {
			t.Fatal("config must select the multi-word engine")
		}
		return []sim.Program{
			{opExecute(o, spec.MkOp(spec.MethodInc))},
			{opExecute(o, spec.MkOp(spec.MethodRead))},
		}
	}
	verifySL(t, 2, setup, spec.Counter{})
}

func TestMultiwordSimpleClockStrongLin(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive model check; skipped in -short mode")
	}
	setup := func(w *sim.World) []sim.Program {
		o := NewSimpleObjectFromFA(w, "clk", SimpleLogicalClock{}, 2, WithSnapshotBound(mwBound2))
		return []sim.Program{
			{opExecute(o, spec.MkOp(spec.MethodTick))},
			{opExecute(o, spec.MkOp(spec.MethodRead))},
		}
	}
	verifySL(t, 2, setup, spec.LogicalClock{})
}

// TestMultiwordSimpleTypesPast63Lanes: the serving payoff — Algorithm 1
// objects at lane counts no single word can host, still machine-word-backed
// (clock, counter-with-read, max-with-read: the full simple-type trio).
func TestMultiwordSimpleTypesPast63Lanes(t *testing.T) {
	w := sim.NewSoloWorld()
	refs := int64(1)<<31 - 1 // 31-bit reference budget

	clk := NewLogicalClockFromFA(w, "clk", 64, WithSnapshotBound(refs))
	if clk.Engine() != "multiword" || clk.Packed() {
		t.Fatalf("64-lane clock engine = %s, want multiword", clk.Engine())
	}
	if clk.Capacity() != refs {
		t.Fatalf("64-lane clock capacity = %d, want %d", clk.Capacity(), refs)
	}
	clk.Tick(sim.SoloThread(63))
	clk.Tick(sim.SoloThread(0))
	if got := clk.Read(sim.SoloThread(17)); got != 2 {
		t.Fatalf("64-lane clock = %d, want 2", got)
	}

	ctr := NewCounterFromFA(w, "ctr", 100, WithSnapshotBound(refs))
	if ctr.Engine() != "multiword" || ctr.Words() != 100 {
		t.Fatalf("100-lane counter engine = %s x %d, want multiword x 100", ctr.Engine(), ctr.Words())
	}
	if err := ctr.TryInc(sim.SoloThread(99)); err != nil {
		t.Fatal(err)
	}
	ctr.Inc(sim.SoloThread(42))
	ctr.Dec(sim.SoloThread(0))
	if got, err := ctr.TryRead(sim.SoloThread(7)); err != nil || got != 1 {
		t.Fatalf("100-lane counter TryRead = (%d, %v), want (1, nil)", got, err)
	}
	if got := ctr.Used(); got != 4 {
		t.Fatalf("counter Used = %d, want 4", got)
	}

	max := NewMaxFromFA(w, "max", 70, WithSnapshotBound(refs))
	if max.Engine() != "multiword" {
		t.Fatalf("70-lane max engine = %s, want multiword", max.Engine())
	}
	max.WriteMax(sim.SoloThread(69), 41)
	if err := max.TryWriteMax(sim.SoloThread(1), 12); err != nil {
		t.Fatal(err)
	}
	if got, err := max.TryReadMax(sim.SoloThread(33)); err != nil || got != 41 {
		t.Fatalf("70-lane max TryReadMax = (%d, %v), want (41, nil)", got, err)
	}
}

// TestMultiwordSimpleObjectCapacity: the reference budget still gates
// operations past 63 lanes — TryExecute refuses cleanly at the bound.
func TestMultiwordSimpleObjectCapacity(t *testing.T) {
	w := sim.NewSoloWorld()
	c := NewLogicalClockFromFA(w, "clk", 64, WithSnapshotBound(3)) // 2-bit refs, 24 lanes/word
	if c.Engine() != "multiword" || c.Capacity() != 3 {
		t.Fatalf("engine = %s, capacity = %d; want multiword with capacity 3", c.Engine(), c.Capacity())
	}
	th := sim.SoloThread(40)
	for i := 0; i < 3; i++ {
		if err := c.TryTick(th); err != nil {
			t.Fatalf("tick %d: %v", i, err)
		}
	}
	if err := c.TryTick(th); err != ErrCapacityExhausted {
		t.Fatalf("over-capacity TryTick error = %v, want ErrCapacityExhausted", err)
	}
}

// --- differential fuzz: multi-word vs the wide oracle ------------------------

func FuzzMultiwordVsWideSnapshot(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7})
	f.Add([]byte{250, 125, 60, 30, 15, 7, 3, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		const lanes, bound = 8, 255 // FieldWidth 8: 6 lanes/word x 2 words
		w := sim.NewSoloWorld()
		multi := NewFASnapshot(w, "m", lanes, WithSnapshotBound(bound))
		wide := NewFASnapshot(w, "w", lanes)
		if !multi.Multiword() {
			t.Fatal("fuzz config must stripe")
		}
		for _, b := range data {
			th := sim.SoloThread(int(b) % lanes)
			if b%2 == 0 {
				v := int64(b)
				multi.Update(th, v)
				wide.Update(th, v)
			} else if p, v := multi.Scan(th), wide.Scan(th); !reflect.DeepEqual(p, v) {
				t.Fatalf("multi-word Scan = %v, wide Scan = %v", p, v)
			}
		}
		th := sim.SoloThread(0)
		if p, v := multi.Scan(th), wide.Scan(th); !reflect.DeepEqual(p, v) {
			t.Fatalf("final multi-word Scan = %v, wide Scan = %v", p, v)
		}
	})
}

// --- randomized stress under real goroutine concurrency ----------------------

func TestMultiwordSnapshotRealWorldStress(t *testing.T) {
	w := prim.NewRealWorld()
	const procs = 4
	s := NewFASnapshot(w, "snap", procs, WithSnapshotBound(mwBound2)) // 1 lane/word x 4 words
	if !s.Multiword() {
		t.Fatal("stress config must stripe")
	}
	rngs := make([]*rand.Rand, procs)
	for p := range rngs {
		rngs[p] = rand.New(rand.NewSource(int64(p) + 53))
	}
	h := history.Stress(history.StressConfig{
		Procs:      procs,
		OpsPerProc: 25,
		Gen: func(p, i int) history.StressOp {
			if rngs[p].Intn(2) == 0 {
				v := int64(rngs[p].Intn(1 << 16))
				return history.StressOp{
					Op: spec.MkOp(spec.MethodUpdate, int64(p), v),
					Run: func(t prim.Thread) string {
						s.Update(t, v)
						return spec.RespOK
					},
				}
			}
			return history.StressOp{
				Op:  spec.MkOp(spec.MethodScan),
				Run: func(t prim.Thread) string { return spec.RespVec(s.Scan(t)) },
			}
		},
	})
	if res := history.CheckLinearizable(h, spec.Snapshot{}); !res.Ok {
		t.Fatalf("stress history not linearizable: %s", h.String())
	}
}

// TestMultiwordConcurrentScansComparable is the race-stress form of the
// 4-proc property the exploration cap keeps out of the exhaustive envelope:
// views returned by CONCURRENT scans must be pairwise comparable. Two
// updaters write strictly increasing values to lanes on different words
// while two scanners collect continuously; since every lane's history is
// increasing, any two views the object may legally return are componentwise
// ordered — a pair where one scanner saw lane 0's newer value but lane 1's
// older one and the other scanner the reverse (exactly what the retired
// announce-only protocol produced) is a linearizability violation this
// assertion catches directly, without a checker in the loop.
func TestMultiwordConcurrentScansComparable(t *testing.T) {
	w := prim.NewRealWorld()
	const lanes = 4
	s := NewFASnapshot(w, "snap", lanes, WithSnapshotBound(mwBound2)) // 1 lane/word x 4 words
	if !s.Multiword() {
		t.Fatal("config must stripe")
	}
	const scanners, perScanner = 2, 400
	var stop atomic.Bool
	var updWG, scanWG sync.WaitGroup
	for p := 0; p < 2; p++ {
		updWG.Add(1)
		go func(p int) {
			defer updWG.Done()
			th := prim.RealThread(p)
			for v := int64(1); !stop.Load(); v++ {
				s.Update(th, v)
			}
		}(p)
	}
	views := make([][][]int64, scanners)
	for sc := 0; sc < scanners; sc++ {
		scanWG.Add(1)
		go func(sc int) {
			defer scanWG.Done()
			th := prim.RealThread(2 + sc)
			for i := 0; i < perScanner; i++ {
				views[sc] = append(views[sc], s.Scan(th))
			}
		}(sc)
	}
	// Scanners finish their quota first, so every scan ran against live
	// updaters; only then are the updaters released.
	scanWG.Wait()
	stop.Store(true)
	updWG.Wait()
	var all [][]int64
	for sc := range views {
		all = append(all, views[sc]...)
	}
	comparable := func(a, b []int64) bool {
		le, ge := true, true
		for i := range a {
			le = le && a[i] <= b[i]
			ge = ge && a[i] >= b[i]
		}
		return le || ge
	}
	for i := 0; i < len(all); i++ {
		for j := i + 1; j < len(all); j++ {
			if !comparable(all[i], all[j]) {
				t.Fatalf("incomparable views: %v vs %v", all[i], all[j])
			}
		}
	}
}

// TestMultiwordScanNeverBlocksUnderUpdates is the race-stress liveness check:
// scans must keep completing (lock-free, with the writer-backoff hint
// engaged) while every other lane updates continuously. Run under -race in
// CI, this is also the data-race gate for the epoch/backoff machinery.
func TestMultiwordScanNeverBlocksUnderUpdates(t *testing.T) {
	w := prim.NewRealWorld()
	const lanes = 4
	s := NewFASnapshot(w, "snap", lanes, WithSnapshotBound(mwBound2))
	if !s.Multiword() {
		t.Fatal("config must stripe")
	}
	var stop atomic.Bool
	var wg sync.WaitGroup
	for p := 1; p < lanes; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			th := prim.RealThread(p)
			for v := int64(0); !stop.Load(); v++ {
				s.Update(th, v%1024)
			}
		}(p)
	}
	th := prim.RealThread(0)
	view := make([]int64, lanes)
	deadline := time.Now().Add(200 * time.Millisecond)
	scans := 0
	for time.Now().Before(deadline) {
		s.ScanInto(th, view)
		for i := 1; i < lanes; i++ {
			if view[i] < 0 || view[i] >= 1024 {
				t.Errorf("scan saw impossible component %d = %d", i, view[i])
			}
		}
		scans++
	}
	stop.Store(true)
	wg.Wait()
	if scans == 0 {
		t.Fatal("no scan completed under concurrent updates")
	}
	t.Logf("%d scans completed under 3 continuous updaters", scans)
}

// TestMultiwordOpsAllocFree pins the 0 allocs/op contract of the hot path:
// Update (XADD + announce) and ScanInto (epoch-validated gather) allocate
// nothing in steady state.
func TestMultiwordOpsAllocFree(t *testing.T) {
	w := prim.NewRealWorld()
	const lanes = 8
	s := NewFASnapshot(w, "snap", lanes, WithSnapshotBound(1<<15-1))
	if !s.Multiword() {
		t.Fatal("config must stripe")
	}
	th := prim.RealThread(0)
	var v int64
	if allocs := testing.AllocsPerRun(200, func() { v++; s.Update(th, v%100) }); allocs != 0 {
		t.Fatalf("multi-word Update allocates %.1f per op, want 0", allocs)
	}
	view := make([]int64, lanes)
	if allocs := testing.AllocsPerRun(200, func() { s.ScanInto(th, view) }); allocs != 0 {
		t.Fatalf("multi-word ScanInto allocates %.1f per op, want 0", allocs)
	}
}
