package core

import (
	"math/rand"
	"reflect"
	"testing"

	"stronglin/internal/history"
	"stronglin/internal/prim"
	"stronglin/internal/sim"
	"stronglin/internal/spec"
)

// The packed cores are the bounded machine-word variants of FACounter,
// FAMaxRegister and FAGSet (one prim.FetchAddInt register instead of the wide
// fetch&add). They are verified three ways: the SAME exhaustive
// strong-linearizability model checks as the wide cores (the packed register
// is one scheduler step, exactly like the wide one, so the configurations
// match), differential fuzzing against the wide cores as a single-threaded
// oracle, and randomized linearizability stress under real concurrency.

// --- constructor selection ---------------------------------------------------

func TestPackedSelectionAndFallback(t *testing.T) {
	w := sim.NewSoloWorld()
	if c := NewFACounter(w, "cp", WithCounterBound(1<<40)); !c.Packed() {
		t.Error("counter with representable bound did not pack")
	}
	if c := NewFACounter(w, "cw"); c.Packed() {
		t.Error("unbounded counter packed")
	}
	if c := NewFACounter(w, "cw2", WithCounterBound(maxPackedCount+1)); c.Packed() {
		t.Error("counter with over-capacity bound did not fall back to wide")
	}
	// 2 lanes x (30+1) bits = 62 <= 63: packs. 2 x (31+1) = 64: falls back.
	if m := NewFAMaxRegister(w, "mp", 2, WithMaxRegBound(30)); !m.Packed() {
		t.Error("maxreg with fitting bound did not pack")
	}
	if m := NewFAMaxRegister(w, "mw", 2, WithMaxRegBound(31)); m.Packed() {
		t.Error("maxreg with unfitting bound did not fall back to wide")
	}
	if m := NewFAMaxRegister(w, "mw2", 2); m.Packed() {
		t.Error("unbounded maxreg packed")
	}
	if s := NewFAGSet(w, "sp", 3, WithGSetBound(20)); !s.Packed() {
		t.Error("gset with fitting bound did not pack")
	}
	if s := NewFAGSet(w, "sw", 3, WithGSetBound(21)); s.Packed() {
		t.Error("gset with unfitting bound did not fall back to wide")
	}
	// Bounds past the 63-bit lane budget must fall back even where an int
	// conversion would truncate (32-bit platforms).
	if m := NewFAMaxRegister(w, "mhuge", 1, WithMaxRegBound(1<<32)); m.Packed() {
		t.Error("maxreg with huge bound did not fall back to wide")
	}
	if s := NewFAGSet(w, "shuge", 1, WithGSetBound(1<<32)); s.Packed() {
		t.Error("gset with huge bound did not fall back to wide")
	}
}

// TestPackedFallbackStillWorks: a bound too wide to pack must leave a fully
// functional wide object (with the bound still declared and enforced).
func TestPackedFallbackStillWorks(t *testing.T) {
	w := sim.NewSoloWorld()
	m := NewFAMaxRegister(w, "m", 4, WithMaxRegBound(1<<20))
	if m.Packed() {
		t.Fatal("4 lanes x 2^20 bound cannot pack")
	}
	th := sim.SoloThread(1)
	m.WriteMax(th, 100000)
	if got := m.ReadMax(th); got != 100000 {
		t.Fatalf("wide-fallback ReadMax = %d, want 100000", got)
	}
}

// --- sequential behaviour ----------------------------------------------------

func TestPackedCounterSequential(t *testing.T) {
	w := sim.NewSoloWorld()
	c := NewFACounter(w, "c", WithCounterBound(1000))
	th := sim.SoloThread(0)
	if got := c.Read(th); got != 0 {
		t.Fatalf("initial value = %d, want 0", got)
	}
	c.Inc(th)
	c.Inc(th)
	c.Add(th, 5)
	if got := c.Read(th); got != 7 {
		t.Fatalf("value = %d, want 7", got)
	}
}

func TestPackedMaxRegisterSequential(t *testing.T) {
	w := sim.NewSoloWorld()
	m := NewFAMaxRegister(w, "m", 3, WithMaxRegBound(10)) // 3 x 11 = 33 bits
	m.WriteMax(sim.SoloThread(0), 4)
	m.WriteMax(sim.SoloThread(1), 7)
	m.WriteMax(sim.SoloThread(2), 2)
	m.WriteMax(sim.SoloThread(1), 3) // no-op: smaller than lane max
	if got := m.ReadMax(sim.SoloThread(1)); got != 7 {
		t.Fatalf("ReadMax = %d, want 7", got)
	}
	if width := m.Width(sim.SoloThread(0)); width < 1 || width > 33 {
		t.Fatalf("packed Width = %d, want within (0, 33]", width)
	}
}

func TestPackedGSetSequential(t *testing.T) {
	w := sim.NewSoloWorld()
	s := NewFAGSet(w, "s", 2, WithGSetBound(15)) // 2 x 16 = 32 bits
	th := sim.SoloThread(1)
	if s.Has(th, 3) {
		t.Fatal("Has(3) on empty set")
	}
	s.Add(th, 3)
	s.Add(th, 0)
	s.Add(th, 3) // duplicate: exercises the once-bit fetch&add(0) path
	s.Add(sim.SoloThread(0), 3)
	if !s.Has(th, 3) || !s.Has(th, 0) || s.Has(th, 1) || s.Has(th, 99) {
		t.Fatal("membership after adds is wrong")
	}
	if got := s.Elems(th); len(got) != 2 || got[0] != 0 || got[1] != 3 {
		t.Fatalf("Elems = %v, want [0 3]", got)
	}
}

// --- bound enforcement -------------------------------------------------------

func TestPackedMaxRegisterRejectsOverBound(t *testing.T) {
	w := sim.NewSoloWorld()
	m := NewFAMaxRegister(w, "m", 2, WithMaxRegBound(10))
	defer func() {
		if recover() == nil {
			t.Fatal("WriteMax beyond the packed bound did not panic")
		}
	}()
	m.WriteMax(sim.SoloThread(0), 11)
}

func TestPackedGSetRejectsOverBound(t *testing.T) {
	w := sim.NewSoloWorld()
	s := NewFAGSet(w, "s", 2, WithGSetBound(10))
	defer func() {
		if recover() == nil {
			t.Fatal("Add beyond the packed bound did not panic")
		}
	}()
	s.Add(sim.SoloThread(0), 11)
}

// TestWideFallbackBoundEnforced: the declared bound must be enforced even
// when the encoding falls back to the wide register, so that a sharded
// object whose shards mix packed and wide engines behaves uniformly.
func TestWideFallbackBoundEnforced(t *testing.T) {
	w := sim.NewSoloWorld()
	m := NewFAMaxRegister(w, "m", 2, WithMaxRegBound(31)) // 2 x 32 = 64: wide
	if m.Packed() {
		t.Fatal("config must fall back to wide")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("wide-fallback WriteMax beyond the bound did not panic")
			}
		}()
		m.WriteMax(sim.SoloThread(0), 32)
	}()
	s := NewFAGSet(w, "s", 3, WithGSetBound(21)) // 3 x 22 = 66: wide
	if s.Packed() {
		t.Fatal("config must fall back to wide")
	}
	// Out-of-domain queries are misses, not panics, on both engines — even
	// for an x whose wide bit index would overflow int without the bound
	// check.
	if s.Has(sim.SoloThread(0), 22) || s.Has(sim.SoloThread(0), 1<<62) {
		t.Error("wide-fallback Has beyond the bound must be false")
	}
	defer func() {
		if recover() == nil {
			t.Error("wide-fallback Add beyond the bound did not panic")
		}
	}()
	s.Add(sim.SoloThread(0), 22)
}

func TestPackedCounterOverflowPanics(t *testing.T) {
	w := sim.NewSoloWorld()
	c := NewFACounter(w, "c", WithCounterBound(10))
	th := sim.SoloThread(0)
	c.Add(th, maxPackedCount) // fills the packed capacity exactly
	defer func() {
		if recover() == nil {
			t.Fatal("Inc past the packed capacity did not panic")
		}
	}()
	c.Inc(th)
}

// --- exhaustive strong-linearizability model checks --------------------------
//
// Same configurations as the wide cores' checks (TestFACounterStrongLin,
// TestFAMaxRegisterStrongLin*, TestFAGSetStrongLin*): the packed register is
// still one scheduler step per operation.

func TestPackedCounterStrongLin(t *testing.T) {
	setup := func(w *sim.World) []sim.Program {
		c := NewFACounter(w, "c", WithCounterBound(100))
		return []sim.Program{
			{opCtrInc(c)},
			{opCtrInc(c)},
			{opCtrRead(c), opCtrRead(c)},
		}
	}
	verifySL(t, 3, setup, spec.MonotonicCounter{})
}

func TestPackedMaxRegisterStrongLinTwoWritersOneReader(t *testing.T) {
	setup := func(w *sim.World) []sim.Program {
		m := NewFAMaxRegister(w, "max", 3, WithMaxRegBound(5)) // 3 x 6 = 18 bits
		return []sim.Program{
			{opWriteMax(m, 2)},
			{opWriteMax(m, 1)},
			{opReadMax(m), opReadMax(m)},
		}
	}
	v := verifySL(t, 3, setup, spec.MaxRegister{})
	if v.Leaves == 0 {
		t.Fatal("no executions explored")
	}
}

func TestPackedMaxRegisterStrongLinWriteReadMix(t *testing.T) {
	setup := func(w *sim.World) []sim.Program {
		m := NewFAMaxRegister(w, "max", 2, WithMaxRegBound(5))
		return []sim.Program{
			{opWriteMax(m, 1), opReadMax(m)},
			{opWriteMax(m, 2), opReadMax(m)},
		}
	}
	verifySL(t, 2, setup, spec.MaxRegister{})
}

func TestPackedMaxRegisterStrongLinNoopWrites(t *testing.T) {
	setup := func(w *sim.World) []sim.Program {
		m := NewFAMaxRegister(w, "max", 2, WithMaxRegBound(5))
		return []sim.Program{
			{opWriteMax(m, 3), opWriteMax(m, 1)},
			{opReadMax(m), opReadMax(m)},
		}
	}
	verifySL(t, 2, setup, spec.MaxRegister{})
}

func TestPackedGSetStrongLin(t *testing.T) {
	setup := func(w *sim.World) []sim.Program {
		s := NewFAGSet(w, "s", 3, WithGSetBound(5)) // 3 x 6 = 18 bits
		return []sim.Program{
			{opGSetAdd(s, 1)},
			{opGSetAdd(s, 2)},
			{opGSetHas(s, 1), opGSetHas(s, 2)},
		}
	}
	verifySL(t, 3, setup, spec.GSet{})
}

func TestPackedGSetStrongLinDuplicateAdds(t *testing.T) {
	setup := func(w *sim.World) []sim.Program {
		s := NewFAGSet(w, "s", 3, WithGSetBound(5))
		return []sim.Program{
			{opGSetAdd(s, 1), opGSetAdd(s, 1)},
			{opGSetAdd(s, 1)},
			{opGSetHas(s, 1)},
		}
	}
	verifySL(t, 3, setup, spec.GSet{})
}

// The linearization-point certificates (every operation marks its single
// fetch&add) must also verify on the packed engines.

func TestPackedCounterCertificate(t *testing.T) {
	setup := func(w *sim.World) []sim.Program {
		c := NewFACounter(w, "c", WithCounterBound(100))
		return []sim.Program{
			{opCtrInc(c), opCtrRead(c)},
			{opCtrInc(c), opCtrRead(c)},
		}
	}
	tree, err := sim.Explore(2, setup, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res := history.CheckLinPointCertificate(tree, spec.MonotonicCounter{}); !res.Ok {
		t.Fatalf("certificate rejected: %s", res.Failure)
	}
}

func TestPackedGSetCertificate(t *testing.T) {
	setup := func(w *sim.World) []sim.Program {
		s := NewFAGSet(w, "s", 2, WithGSetBound(5))
		return []sim.Program{
			{opGSetAdd(s, 1), opGSetHas(s, 2)},
			{opGSetAdd(s, 2), opGSetHas(s, 1)},
		}
	}
	tree, err := sim.Explore(2, setup, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res := history.CheckLinPointCertificate(tree, spec.GSet{}); !res.Ok {
		t.Fatalf("certificate rejected: %s", res.Failure)
	}
}

// --- differential fuzz: packed vs wide, single-threaded oracle ---------------
//
// The wide cores are the reference; on any op sequence that stays inside the
// packed bound, the packed cores must produce identical responses. The fuzz
// corpus runs as ordinary unit tests; `go test -fuzz` explores further.

func FuzzPackedVsWideCounter(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5})
	f.Add([]byte{2, 2, 2, 0, 0, 1, 2})
	f.Fuzz(func(t *testing.T, data []byte) {
		w := sim.NewSoloWorld()
		packed := NewFACounter(w, "p", WithCounterBound(1<<40))
		wide := NewFACounter(w, "w")
		th := sim.SoloThread(0)
		for _, b := range data {
			switch b % 3 {
			case 0:
				packed.Inc(th)
				wide.Inc(th)
			case 1:
				k := int64(b / 3 % 16)
				packed.Add(th, k)
				wide.Add(th, k)
			case 2:
				if p, v := packed.Read(th), wide.Read(th); p != v {
					t.Fatalf("packed Read = %d, wide Read = %d", p, v)
				}
			}
		}
		if p, v := packed.Read(th), wide.Read(th); p != v {
			t.Fatalf("final packed Read = %d, wide Read = %d", p, v)
		}
	})
}

func FuzzPackedVsWideMaxReg(f *testing.F) {
	f.Add([]byte{5, 17, 33, 2, 250, 9})
	f.Add([]byte{0, 0, 255, 128, 64, 32})
	f.Fuzz(func(t *testing.T, data []byte) {
		const lanes, bound = 3, 6 // 3 x 7 = 21 bits: packs
		w := sim.NewSoloWorld()
		packed := NewFAMaxRegister(w, "p", lanes, WithMaxRegBound(bound))
		wide := NewFAMaxRegister(w, "w", lanes)
		if !packed.Packed() {
			t.Fatal("fuzz config must pack")
		}
		for _, b := range data {
			th := sim.SoloThread(int(b) % lanes)
			if b%2 == 0 {
				v := int64(b / 2 % (bound + 1))
				packed.WriteMax(th, v)
				wide.WriteMax(th, v)
			} else if p, v := packed.ReadMax(th), wide.ReadMax(th); p != v {
				t.Fatalf("packed ReadMax = %d, wide ReadMax = %d", p, v)
			}
		}
		th := sim.SoloThread(0)
		if p, v := packed.ReadMax(th), wide.ReadMax(th); p != v {
			t.Fatalf("final packed ReadMax = %d, wide ReadMax = %d", p, v)
		}
	})
}

func FuzzPackedVsWideGSet(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7})
	f.Add([]byte{0, 0, 9, 9, 200, 100, 50})
	f.Fuzz(func(t *testing.T, data []byte) {
		const lanes, bound = 3, 6 // 3 x 7 = 21 bits: packs
		w := sim.NewSoloWorld()
		packed := NewFAGSet(w, "p", lanes, WithGSetBound(bound))
		wide := NewFAGSet(w, "w", lanes)
		if !packed.Packed() {
			t.Fatal("fuzz config must pack")
		}
		for _, b := range data {
			th := sim.SoloThread(int(b) % lanes)
			x := int64(b / 4 % (bound + 1))
			switch b % 3 {
			case 0:
				packed.Add(th, x)
				wide.Add(th, x)
			case 1:
				if p, v := packed.Has(th, x), wide.Has(th, x); p != v {
					t.Fatalf("packed Has(%d) = %v, wide Has(%d) = %v", x, p, x, v)
				}
			case 2:
				if p, v := packed.Elems(th), wide.Elems(th); !reflect.DeepEqual(p, v) {
					t.Fatalf("packed Elems = %v, wide Elems = %v", p, v)
				}
			}
		}
		th := sim.SoloThread(0)
		if p, v := packed.Elems(th), wide.Elems(th); !reflect.DeepEqual(p, v) {
			t.Fatalf("final packed Elems = %v, wide Elems = %v", p, v)
		}
	})
}

// --- packed snapshot (Theorem 2 on a machine word) ---------------------------

func TestPackedSnapshotSelectionAndFallback(t *testing.T) {
	w := sim.NewSoloWorld()
	// 3 lanes x FieldWidth(100)=7 bits = 21 <= 63: packs.
	if s := NewFASnapshot(w, "sp", 3, WithSnapshotBound(100)); !s.Packed() {
		t.Error("snapshot with fitting bound did not pack")
	}
	if s := NewFASnapshot(w, "sw", 3); s.Packed() {
		t.Error("unbounded snapshot packed")
	}
	// 4 lanes x FieldWidth(2^15)=16 bits = 64 > 63: past the single word —
	// since PR 4 that selects the multi-word engine, not the wide register.
	if s := NewFASnapshot(w, "sw2", 4, WithSnapshotBound(1<<15)); s.Packed() || !s.Multiword() {
		t.Error("snapshot with over-ceiling bound did not select the multi-word engine")
	}
	// 4 lanes x FieldWidth(2^15-1)=15 bits = 60 <= 63: packs.
	if s := NewFASnapshot(w, "sp2", 4, WithSnapshotBound(1<<15-1)); !s.Packed() {
		t.Error("snapshot with fitting 15-bit bound did not pack")
	}
	// Huge bounds stripe across words without truncation surprises.
	if s := NewFASnapshot(w, "shuge", 2, WithSnapshotBound(1<<40)); s.Packed() || !s.Multiword() {
		t.Error("snapshot with huge bound did not select the multi-word engine")
	}
	// A single lane packs up to the full 63-bit budget.
	if s := NewFASnapshot(w, "s1", 1, WithSnapshotBound(1<<62)); !s.Packed() {
		t.Error("1-lane snapshot with 63-bit bound did not pack")
	}
}

// TestPackedSnapshotSequential mirrors TestFASnapshotSequential on the packed
// engine: overwrites with smaller values exercise negative field deltas, the
// same-value path exercises XADD(0), and zeroing clears the field.
func TestPackedSnapshotSequential(t *testing.T) {
	w := sim.NewSoloWorld()
	s := NewFASnapshot(w, "snap", 3, WithSnapshotBound(10)) // 3 x 4 = 12 bits
	if !s.Packed() {
		t.Fatal("config must pack")
	}
	if got := spec.RespVec(s.Scan(sim.SoloThread(0))); got != "[0 0 0]" {
		t.Fatalf("initial scan = %s", got)
	}
	s.Update(sim.SoloThread(1), 7)
	s.Update(sim.SoloThread(0), 3)
	if got := spec.RespVec(s.Scan(sim.SoloThread(2))); got != "[3 7 0]" {
		t.Fatalf("scan = %s", got)
	}
	s.Update(sim.SoloThread(1), 1) // smaller value: negative field delta
	if got := spec.RespVec(s.Scan(sim.SoloThread(2))); got != "[3 1 0]" {
		t.Fatalf("scan = %s", got)
	}
	s.Update(sim.SoloThread(1), 1) // same value: XADD(0) path
	if got := spec.RespVec(s.Scan(sim.SoloThread(2))); got != "[3 1 0]" {
		t.Fatalf("scan = %s", got)
	}
	s.Update(sim.SoloThread(0), 0) // zero clears the field
	if got := spec.RespVec(s.Scan(sim.SoloThread(2))); got != "[0 1 0]" {
		t.Fatalf("scan = %s", got)
	}
	if width := s.Width(sim.SoloThread(0)); width < 1 || width > 12 {
		t.Fatalf("packed Width = %d, want within (0, 12]", width)
	}
}

func TestPackedSnapshotRejectsOverBound(t *testing.T) {
	w := sim.NewSoloWorld()
	s := NewFASnapshot(w, "snap", 2, WithSnapshotBound(10))
	defer func() {
		if recover() == nil {
			t.Fatal("Update beyond the packed bound did not panic")
		}
	}()
	s.Update(sim.SoloThread(0), 11)
}

// TestSnapshotWideFallbackBoundEnforced: the declared bound must be enforced
// even when the encoding exceeds the single packed word — since PR 4 that
// configuration runs on the multi-word engine, uniformly with the other
// bounded cores.
func TestSnapshotWideFallbackBoundEnforced(t *testing.T) {
	w := sim.NewSoloWorld()
	s := NewFASnapshot(w, "snap", 4, WithSnapshotBound(1<<15)) // 4 x 16 = 64: 2 words
	if s.Packed() || !s.Multiword() {
		t.Fatal("config must select the multi-word engine")
	}
	th := sim.SoloThread(1)
	s.Update(th, 1<<15)
	if got := s.Scan(th)[1]; got != 1<<15 {
		t.Fatalf("wide-fallback component = %d, want %d", got, 1<<15)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("wide-fallback Update beyond the bound did not panic")
		}
	}()
	s.Update(th, 1<<15+1)
}

func TestPackedSnapshotScanIntoLengthMismatch(t *testing.T) {
	w := sim.NewSoloWorld()
	s := NewFASnapshot(w, "snap", 3, WithSnapshotBound(5))
	defer func() {
		if recover() == nil {
			t.Fatal("ScanInto with a short view did not panic")
		}
	}()
	s.ScanInto(sim.SoloThread(0), make([]int64, 2))
}

// --- packed snapshot: exhaustive strong-linearizability model checks ---------
//
// Same configurations as the wide snapshot's checks (TestFASnapshotStrongLin*):
// the packed register is still one scheduler step per operation.

func TestPackedSnapshotStrongLinTwoUpdatersOneScanner(t *testing.T) {
	setup := func(w *sim.World) []sim.Program {
		s := NewFASnapshot(w, "snap", 3, WithSnapshotBound(3)) // 3 x 2 = 6 bits
		return []sim.Program{
			{opUpdate(s, 0, 1)},
			{opUpdate(s, 1, 2)},
			{opScan(s), opScan(s)},
		}
	}
	verifySL(t, 3, setup, spec.Snapshot{})
}

func TestPackedSnapshotStrongLinOverwrites(t *testing.T) {
	// The same component written twice, concurrent with scans: exercises
	// positive and negative field deltas under contention.
	setup := func(w *sim.World) []sim.Program {
		s := NewFASnapshot(w, "snap", 2, WithSnapshotBound(3))
		return []sim.Program{
			{opUpdate(s, 0, 3), opUpdate(s, 0, 1)},
			{opScan(s), opScan(s)},
		}
	}
	verifySL(t, 2, setup, spec.Snapshot{})
}

func TestPackedSnapshotStrongLinSameValueUpdate(t *testing.T) {
	setup := func(w *sim.World) []sim.Program {
		s := NewFASnapshot(w, "snap", 2, WithSnapshotBound(3))
		return []sim.Program{
			{opUpdate(s, 0, 2), opUpdate(s, 0, 2)},
			{opScan(s), opScan(s)},
		}
	}
	verifySL(t, 2, setup, spec.Snapshot{})
}

// The linearization-point certificate (every operation marks its single
// fetch&add) must also verify on the packed snapshot engine.
func TestPackedSnapshotCertificate(t *testing.T) {
	setup := func(w *sim.World) []sim.Program {
		s := NewFASnapshot(w, "snap", 2, WithSnapshotBound(3))
		return []sim.Program{
			{opUpdate(s, 0, 1), opScan(s)},
			{opUpdate(s, 1, 2), opScan(s)},
		}
	}
	tree, err := sim.Explore(2, setup, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res := history.CheckLinPointCertificate(tree, spec.Snapshot{}); !res.Ok {
		t.Fatalf("certificate rejected: %s", res.Failure)
	}
}

// --- Algorithm 1 over the packed snapshot (Theorem 4, machine-word) ----------

// TestPackedSimpleCounterStrongLin: the full Theorem 4 composition with the
// packed snapshot substituted — graph-node references are published through
// the packed word's binary fields. 2 procs x 2 ops allocates references
// 1..4, so bound 7 (3-bit fields, 2 x 3 = 6 bits) covers the run.
func TestPackedSimpleCounterStrongLin(t *testing.T) {
	setup := func(w *sim.World) []sim.Program {
		o := NewSimpleObjectFromFA(w, "ctr", SimpleCounter{}, 2, WithSnapshotBound(7))
		if !o.SnapshotPacked() {
			t.Fatal("config must pack")
		}
		return []sim.Program{
			{opExecute(o, spec.MkOp(spec.MethodInc)), opExecute(o, spec.MkOp(spec.MethodRead))},
			{opExecute(o, spec.MkOp(spec.MethodInc)), opExecute(o, spec.MkOp(spec.MethodRead))},
		}
	}
	verifySL(t, 2, setup, spec.Counter{})
}

func TestPackedSimpleGSetStrongLin(t *testing.T) {
	setup := func(w *sim.World) []sim.Program {
		o := NewSimpleObjectFromFA(w, "set", SimpleGSet{}, 2, WithSnapshotBound(7))
		return []sim.Program{
			{opExecute(o, spec.MkOp(spec.MethodAdd, 1)), opExecute(o, spec.MkOp(spec.MethodHas, 2))},
			{opExecute(o, spec.MkOp(spec.MethodAdd, 2)), opExecute(o, spec.MkOp(spec.MethodHas, 1))},
		}
	}
	verifySL(t, 2, setup, spec.GSet{})
}

func TestPackedSimpleLogicalClockStrongLin(t *testing.T) {
	setup := func(w *sim.World) []sim.Program {
		o := NewSimpleObjectFromFA(w, "clk", SimpleLogicalClock{}, 2, WithSnapshotBound(7))
		return []sim.Program{
			{opExecute(o, spec.MkOp(spec.MethodTick)), opExecute(o, spec.MkOp(spec.MethodRead))},
			{opExecute(o, spec.MkOp(spec.MethodTick))},
		}
	}
	verifySL(t, 2, setup, spec.LogicalClock{})
}

// TestSimpleObjectCapacity: a bounded simple object refuses the operation
// past its reference budget — TryExecute errors before any shared step,
// Execute panics, and in-budget responses are unaffected.
func TestSimpleObjectCapacity(t *testing.T) {
	w := sim.NewSoloWorld()
	c := NewLogicalClockFromFA(w, "clk", 1, WithSnapshotBound(3))
	th := sim.SoloThread(0)
	if !c.Packed() || c.Capacity() != 3 {
		t.Fatalf("packed = %v, capacity = %d; want packed with capacity 3", c.Packed(), c.Capacity())
	}
	for i := 0; i < 2; i++ {
		if err := c.TryTick(th); err != nil {
			t.Fatalf("tick %d: %v", i, err)
		}
	}
	v, err := c.TryRead(th)
	if err != nil || v != 2 {
		t.Fatalf("TryRead = (%d, %v), want (2, nil)", v, err)
	}
	if err := c.TryTick(th); err != ErrCapacityExhausted {
		t.Fatalf("over-capacity TryTick error = %v, want ErrCapacityExhausted", err)
	}
	// Rejected attempts do not count against Used.
	if got := c.Used(); got != 3 {
		t.Fatalf("Used after exhaustion = %d, want 3", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("over-capacity Tick did not panic")
		}
	}()
	c.Tick(th)
}

// --- differential fuzz: packed snapshot vs the wide oracle -------------------

func FuzzPackedVsWideSnapshot(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6})
	f.Add([]byte{200, 100, 50, 25, 12, 6, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		const lanes, bound = 3, 6 // FieldWidth(6)=3: 3 x 3 = 9 bits, packs
		w := sim.NewSoloWorld()
		packed := NewFASnapshot(w, "p", lanes, WithSnapshotBound(bound))
		wide := NewFASnapshot(w, "w", lanes)
		if !packed.Packed() {
			t.Fatal("fuzz config must pack")
		}
		for _, b := range data {
			th := sim.SoloThread(int(b) % lanes)
			if b%2 == 0 {
				v := int64(b/2) % (bound + 1)
				packed.Update(th, v)
				wide.Update(th, v)
			} else if p, v := packed.Scan(th), wide.Scan(th); !reflect.DeepEqual(p, v) {
				t.Fatalf("packed Scan = %v, wide Scan = %v", p, v)
			}
		}
		th := sim.SoloThread(0)
		if p, v := packed.Scan(th), wide.Scan(th); !reflect.DeepEqual(p, v) {
			t.Fatalf("final packed Scan = %v, wide Scan = %v", p, v)
		}
	})
}

func TestPackedSnapshotRealWorldStress(t *testing.T) {
	w := prim.NewRealWorld()
	const procs, bound = 4, 7 // 4 x 3 = 12 bits: packs
	s := NewFASnapshot(w, "snap", procs, WithSnapshotBound(bound))
	if !s.Packed() {
		t.Fatal("stress config must pack")
	}
	rngs := make([]*rand.Rand, procs)
	for p := range rngs {
		rngs[p] = rand.New(rand.NewSource(int64(p) + 47))
	}
	h := history.Stress(history.StressConfig{
		Procs:      procs,
		OpsPerProc: 25,
		Gen: func(p, i int) history.StressOp {
			if rngs[p].Intn(2) == 0 {
				v := int64(rngs[p].Intn(bound + 1))
				return history.StressOp{
					Op: spec.MkOp(spec.MethodUpdate, int64(p), v),
					Run: func(t prim.Thread) string {
						s.Update(t, v)
						return spec.RespOK
					},
				}
			}
			return history.StressOp{
				Op:  spec.MkOp(spec.MethodScan),
				Run: func(t prim.Thread) string { return spec.RespVec(s.Scan(t)) },
			}
		},
	})
	if res := history.CheckLinearizable(h, spec.Snapshot{}); !res.Ok {
		t.Fatalf("stress history not linearizable: %s", h.String())
	}
}

// --- randomized stress under real goroutine concurrency ----------------------

func TestPackedMaxRegisterRealWorldStress(t *testing.T) {
	w := prim.NewRealWorld()
	const procs, bound = 4, 14 // 4 x 15 = 60 bits: packs
	m := NewFAMaxRegister(w, "max", procs, WithMaxRegBound(bound))
	if !m.Packed() {
		t.Fatal("stress config must pack")
	}
	rngs := make([]*rand.Rand, procs)
	for p := range rngs {
		rngs[p] = rand.New(rand.NewSource(int64(p) + 41))
	}
	h := history.Stress(history.StressConfig{
		Procs:      procs,
		OpsPerProc: 40,
		Gen: func(p, i int) history.StressOp {
			if rngs[p].Intn(2) == 0 {
				v := int64(rngs[p].Intn(bound + 1))
				return history.StressOp{Op: spec.MkOp(spec.MethodWriteMax, v),
					Run: func(t prim.Thread) string { m.WriteMax(t, v); return spec.RespOK }}
			}
			return history.StressOp{Op: spec.MkOp(spec.MethodReadMax),
				Run: func(t prim.Thread) string { return spec.RespInt(m.ReadMax(t)) }}
		},
	})
	if res := history.CheckLinearizable(h, spec.MaxRegister{}); !res.Ok {
		t.Fatalf("stress history not linearizable:\n%s", h.String())
	}
}

func TestPackedCounterRealWorldStress(t *testing.T) {
	w := prim.NewRealWorld()
	const procs = 4
	c := NewFACounter(w, "c", WithCounterBound(1<<30))
	rngs := make([]*rand.Rand, procs)
	for p := range rngs {
		rngs[p] = rand.New(rand.NewSource(int64(p) + 43))
	}
	h := history.Stress(history.StressConfig{
		Procs:      procs,
		OpsPerProc: 40,
		Gen: func(p, i int) history.StressOp {
			if rngs[p].Intn(3) == 0 {
				return history.StressOp{Op: spec.MkOp(spec.MethodRead),
					Run: func(t prim.Thread) string { return spec.RespInt(c.Read(t)) }}
			}
			return history.StressOp{Op: spec.MkOp(spec.MethodInc),
				Run: func(t prim.Thread) string { c.Inc(t); return spec.RespOK }}
		},
	})
	if res := history.CheckLinearizable(h, spec.MonotonicCounter{}); !res.Ok {
		t.Fatalf("stress history not linearizable:\n%s", h.String())
	}
}
