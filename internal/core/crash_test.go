package core

import (
	"testing"

	"stronglin/internal/history"
	"stronglin/internal/sim"
	"stronglin/internal/spec"
)

// Crash scenarios are prefixes of the execution tree (a crashed process is
// one that is never scheduled again); the exhaustive strong-linearizability
// checks therefore already cover every crash pattern. The named scenarios
// below document the interesting ones explicitly and pin their histories.

// Theorem 5: the WINNER of the inner test&set crashes before writing 1 to
// state. Readers keep seeing 0, later test&sets obtain 1 — the pending
// winner must be linearizable with response 0 ahead of the losers while the
// reads stay ahead of it.
func TestReadableTASWinnerCrashBeforeStateWrite(t *testing.T) {
	setup := func(w *sim.World) []sim.Program {
		r := NewReadableTAS(w, "rt")
		return []sim.Program{
			{opTAS(r)},     // p0: will win ts and crash before writing state
			{opTAS(r)},     // p1: loses
			{opTASRead(r)}, // p2: reads
		}
	}
	// p0: invoke + ts.tas (wins), then CRASH (never scheduled again).
	// p2 reads 0. p1: invoke + ts.tas (loses) + state write, returns 1.
	// p2's read of 0 happened before p1 completed.
	exec, err := sim.RunToCompletion(3, setup, crashPolicy(0, 2, []int{2, 1}), 1000)
	if err != nil {
		t.Fatal(err)
	}
	resps := exec.Responses()
	if resps[2] != "0" {
		t.Fatalf("read = %s, want 0 (crashed winner never wrote state)", resps[2])
	}
	if resps[1] != "1" {
		t.Fatalf("loser tas = %s, want 1", resps[1])
	}
	if _, done := resps[0]; done {
		t.Fatal("crashed winner unexpectedly returned")
	}
	h := history.FromExecution(exec)
	if res := history.CheckLinearizable(h, spec.ReadableTAS{}); !res.Ok {
		t.Fatalf("crash history not linearizable: %s\n%s", h.String(), history.RenderTimeline(h))
	}
}

// Theorem 6: a resetter crashes between reading 1 from the current epoch's
// TS and bumping curr. The object must remain in state 1 (the reset never
// took logical effect).
func TestMultiShotTASResetterCrashBeforeBump(t *testing.T) {
	setup := func(w *sim.World) []sim.Program {
		m := NewMultiShotTASAtomic(w, "ms")
		return []sim.Program{
			{opTAS(m)},     // p0: sets the object
			{opReset(m)},   // p1: crashes mid-reset
			{opTASRead(m)}, // p2: observes
		}
	}
	sched := []int{
		0, 0, 0, // p0: invoke, curr.rmax, TS[0].tas -> 0, return
		1, 1, 1, // p1: invoke, curr.rmax, TS[0].read -> 1; CRASH before wmax
		2, 2, 2, // p2: invoke, curr.rmax, TS[0].read -> 1
	}
	exec, err := sim.Run(3, setup, sched)
	if err != nil {
		t.Fatal(err)
	}
	resps := exec.Responses()
	if resps[2] != "1" {
		t.Fatalf("read after crashed reset = %s, want 1", resps[2])
	}
	h := history.FromExecution(exec)
	if res := history.CheckLinearizable(h, spec.MultiShotTAS{}); !res.Ok {
		t.Fatalf("crash history not linearizable: %s", h.String())
	}
}

// Algorithm 2: a put crashes between its fetch&increment and its Items
// write. The reserved slot stays ⊥ forever; takes must skip it and still
// return EMPTY correctly.
func TestTASSetPutCrashLeavesHoleSkipped(t *testing.T) {
	setup := func(w *sim.World) []sim.Program {
		s := NewTASSetAtomic(w, "s")
		return []sim.Program{
			{opPut(s, 5)},          // p0: crashes after reserving slot 1
			{opPut(s, 6)},          // p1: completes into slot 2
			{opTake(s), opTake(s)}, // p2
		}
	}
	// p0: invoke + fai (slot 1 reserved), CRASH before its Items write; then
	// p1 completes fully; then p2 takes twice.
	exec, err := sim.RunToCompletion(3, setup, crashPolicy(0, 2, []int{1, 2}), 1000)
	if err != nil {
		t.Fatal(err)
	}
	resps := exec.Responses()
	if resps[2] != "6" {
		t.Fatalf("first take = %s, want 6 (the only completed put)", resps[2])
	}
	if resps[3] != spec.RespEmpty {
		t.Fatalf("second take = %s, want empty (crashed put's hole skipped)", resps[3])
	}
	h := history.FromExecution(exec)
	if res := history.CheckLinearizable(h, spec.TakeSet{}); !res.Ok {
		t.Fatalf("crash history not linearizable: %s", h.String())
	}
}

// crashPolicy grants the victim its first `grants` scheduler grants, then
// never again (a crash); the survivors then run to completion in priority
// order. The run stops when only the crashed process remains enabled.
func crashPolicy(victim, grants int, priority []int) sim.Policy {
	given := 0
	return func(v sim.PolicyView) int {
		if given < grants {
			for _, p := range v.Enabled {
				if p == victim {
					given++
					return p
				}
			}
		}
		for _, want := range priority {
			for _, p := range v.Enabled {
				if p == want {
					return p
				}
			}
		}
		return -1 // only the crashed process remains
	}
}

// Crashes never invalidate strong linearizability verdicts: re-run the
// Theorem 5 verification on the subtree where p0 is starved after winning
// ts (a crash), merged with a completing branch. (Acceptance on a pruned
// tree proves nothing by itself; this guards the checker's handling of
// permanently-pending operations against regressions.)
func TestReadableTASCrashSubtreeStillServable(t *testing.T) {
	setup := func(w *sim.World) []sim.Program {
		r := NewReadableTAS(w, "rt")
		return []sim.Program{
			{opTAS(r)},
			{opTAS(r)},
			{opTASRead(r)},
		}
	}
	crashBranch := []int{0, 0, 2, 2, 1, 1, 1} // p0 crashes after winning ts
	fullBranch := []int{0, 0, 0, 2, 2, 1, 1, 1}
	tree, err := sim.TreeFromSchedules(3, setup, [][]int{crashBranch, fullBranch})
	if err != nil {
		t.Fatal(err)
	}
	res := history.CheckStrongLin(tree, spec.ReadableTAS{}, nil)
	if !res.Ok {
		t.Fatalf("crash subtree unservable: %v", res.Counterexample)
	}
}
