package core

import (
	"strconv"

	"stronglin/internal/prim"
)

// mustParseInt converts canonical integer responses back to int64.
func mustParseInt(s string) int64 {
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		panic("core: non-integer canonical response " + strconv.Quote(s))
	}
	return v
}

// ReadableTAS is the wait-free strongly-linearizable readable test&set from
// a plain (non-readable) test&set of Theorem 5.
//
// The processes share a read/write register state (initially 0) and one
// n-process test&set object ts. Read returns state. TestAndSet performs
// ts.test&set(), then writes 1 to state, then returns the value obtained
// from ts.
//
// Strong linearizability (paper proof sketch): state holds the object's
// state at all times; when it first changes from 0 to 1 — the write step e —
// the winning test&set (the one that got 0 from ts) linearizes at e,
// followed by every test&set operation that had already accessed ts; all
// other test&set operations linearize at their ts access, and reads at their
// read of state.
type ReadableTAS struct {
	state prim.Register
	ts    prim.TAS
}

var _ prim.ReadableTAS = (*ReadableTAS)(nil)

// NewReadableTAS allocates the construction: a register named name+".state"
// and a test&set named name+".ts". The base test&set is used through the
// non-readable prim.TAS interface, matching the theorem's hypothesis.
func NewReadableTAS(w prim.World, name string) *ReadableTAS {
	return &ReadableTAS{
		state: w.Register(name+".state", 0),
		ts:    w.TAS(name + ".ts"),
	}
}

// TestAndSet wins (returns 0) for exactly one caller.
func (r *ReadableTAS) TestAndSet(t prim.Thread) int64 {
	v := r.ts.TestAndSet(t)
	r.state.Write(t, 1)
	return v
}

// Read returns the object's current state without modifying it.
func (r *ReadableTAS) Read(t prim.Thread) int64 {
	return r.state.Read(t)
}
