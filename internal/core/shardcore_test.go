package core

import (
	"testing"

	"stronglin/internal/history"
	"stronglin/internal/prim"
	"stronglin/internal/sim"
	"stronglin/internal/spec"
)

// --- sim.Op builders for the shard-friendly cores ---------------------------

func opCtrInc(c *FACounter) sim.Op {
	return sim.Op{
		Name: "inc()",
		Spec: spec.MkOp(spec.MethodInc),
		Run: func(t prim.Thread) string {
			c.Inc(t)
			return spec.RespOK
		},
	}
}

func opCtrRead(c *FACounter) sim.Op {
	return sim.Op{
		Name: "read()",
		Spec: spec.MkOp(spec.MethodRead),
		Run:  func(t prim.Thread) string { return spec.RespInt(c.Read(t)) },
	}
}

func opGSetAdd(s *FAGSet, x int64) sim.Op {
	return sim.Op{
		Name: spec.MkOp(spec.MethodAdd, x).String(),
		Spec: spec.MkOp(spec.MethodAdd, x),
		Run: func(t prim.Thread) string {
			s.Add(t, x)
			return spec.RespOK
		},
	}
}

func opGSetHas(s *FAGSet, x int64) sim.Op {
	return sim.Op{
		Name: spec.MkOp(spec.MethodHas, x).String(),
		Spec: spec.MkOp(spec.MethodHas, x),
		Run: func(t prim.Thread) string {
			if s.Has(t, x) {
				return "1"
			}
			return "0"
		},
	}
}

// --- FACounter ---------------------------------------------------------------

func TestFACounterSequential(t *testing.T) {
	w := sim.NewSoloWorld()
	c := NewFACounter(w, "c")
	th := sim.SoloThread(0)
	if got := c.Read(th); got != 0 {
		t.Fatalf("initial value = %d, want 0", got)
	}
	c.Inc(th)
	c.Inc(th)
	c.Add(th, 5)
	if got := c.Read(th); got != 7 {
		t.Fatalf("value = %d, want 7", got)
	}
}

func TestFACounterRejectsNegativeDelta(t *testing.T) {
	w := sim.NewSoloWorld()
	c := NewFACounter(w, "c")
	defer func() {
		if recover() == nil {
			t.Fatal("Add(-1) did not panic")
		}
	}()
	c.Add(sim.SoloThread(0), -1)
}

func TestFACounterStrongLin(t *testing.T) {
	setup := func(w *sim.World) []sim.Program {
		c := NewFACounter(w, "c")
		return []sim.Program{
			{opCtrInc(c)},
			{opCtrInc(c)},
			{opCtrRead(c), opCtrRead(c)},
		}
	}
	verifySL(t, 3, setup, spec.MonotonicCounter{})
}

func TestFACounterCertificate(t *testing.T) {
	setup := func(w *sim.World) []sim.Program {
		c := NewFACounter(w, "c")
		return []sim.Program{
			{opCtrInc(c), opCtrRead(c)},
			{opCtrInc(c), opCtrRead(c)},
		}
	}
	tree, err := sim.Explore(2, setup, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res := history.CheckLinPointCertificate(tree, spec.MonotonicCounter{}); !res.Ok {
		t.Fatalf("certificate rejected: %s", res.Failure)
	}
}

// --- FAGSet ------------------------------------------------------------------

func TestFAGSetSequential(t *testing.T) {
	w := sim.NewSoloWorld()
	s := NewFAGSet(w, "s", 2)
	th := sim.SoloThread(1)
	if s.Has(th, 3) {
		t.Fatal("Has(3) on empty set")
	}
	s.Add(th, 3)
	s.Add(th, 0)
	s.Add(th, 3) // duplicate: exercises the once-bit fetch&add(0) path
	if !s.Has(th, 3) || !s.Has(th, 0) || s.Has(th, 1) {
		t.Fatal("membership after adds is wrong")
	}
	if got := s.Elems(th); len(got) != 2 || got[0] != 0 || got[1] != 3 {
		t.Fatalf("Elems = %v, want [0 3]", got)
	}
}

func TestFAGSetRejectsNegativeElement(t *testing.T) {
	w := sim.NewSoloWorld()
	s := NewFAGSet(w, "s", 1)
	defer func() {
		if recover() == nil {
			t.Fatal("Add(-1) did not panic")
		}
	}()
	s.Add(sim.SoloThread(0), -1)
}

func TestFAGSetStrongLin(t *testing.T) {
	setup := func(w *sim.World) []sim.Program {
		s := NewFAGSet(w, "s", 3)
		return []sim.Program{
			{opGSetAdd(s, 1)},
			{opGSetAdd(s, 2)},
			{opGSetHas(s, 1), opGSetHas(s, 2)},
		}
	}
	verifySL(t, 3, setup, spec.GSet{})
}

func TestFAGSetStrongLinDuplicateAdds(t *testing.T) {
	// Two processes add the same element; one re-adds it (the fetch&add(0)
	// no-op path must still be a correct linearization point).
	setup := func(w *sim.World) []sim.Program {
		s := NewFAGSet(w, "s", 3)
		return []sim.Program{
			{opGSetAdd(s, 1), opGSetAdd(s, 1)},
			{opGSetAdd(s, 1)},
			{opGSetHas(s, 1)},
		}
	}
	verifySL(t, 3, setup, spec.GSet{})
}

func TestFAGSetCertificate(t *testing.T) {
	setup := func(w *sim.World) []sim.Program {
		s := NewFAGSet(w, "s", 2)
		return []sim.Program{
			{opGSetAdd(s, 1), opGSetHas(s, 2)},
			{opGSetAdd(s, 2), opGSetHas(s, 1)},
		}
	}
	tree, err := sim.Explore(2, setup, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res := history.CheckLinPointCertificate(tree, spec.GSet{}); !res.Ok {
		t.Fatalf("certificate rejected: %s", res.Failure)
	}
}
