package core

import (
	"stronglin/internal/prim"
)

// FetchIncAPI is the readable fetch&increment interface (Theorem 9's object,
// consumed by Algorithm 2).
type FetchIncAPI interface {
	// FetchIncrement returns the current value and increments it.
	FetchIncrement(t prim.Thread) int64
	// Read returns the current value.
	Read(t prim.Thread) int64
}

// FetchInc is the lock-free strongly-linearizable readable fetch&increment
// from test&set of Theorem 9 (a generalisation of the one-shot
// fetch&increment of Afek–Weisberger–Weisman).
//
// The processes share an infinite array M of readable test&set objects.
// fetch&increment applies test&set to M[1], M[2], ... in ascending order
// until obtaining 0, and returns that index; read reads M[1], M[2], ... until
// obtaining 0 and returns that index.
//
// At all times the object's state is the smallest index whose test&set
// object is still 0; every operation linearizes at the step where it obtains
// 0. The implementation is lock-free but not wait-free: an operation can be
// starved only while infinitely many fetch&increments complete.
type FetchInc struct {
	m func(i int) prim.ReadableTAS
}

var _ FetchIncAPI = (*FetchInc)(nil)

// NewFetchInc builds the construction from an explicit infinite array of
// readable test&set base objects.
func NewFetchInc(m func(i int) prim.ReadableTAS) *FetchInc {
	return &FetchInc{m: m}
}

// NewFetchIncAtomic builds the construction over atomic readable test&set
// objects allocated from w.
func NewFetchIncAtomic(w prim.World, name string) *FetchInc {
	arr := prim.NewTASArray(w, name+".M")
	return &FetchInc{m: func(i int) prim.ReadableTAS { return arr.Get(i) }}
}

// NewFetchIncFromTAS builds Theorem 9's full composition: each M entry is
// Theorem 5's readable test&set from a plain test&set, so the whole object
// uses only test&set and registers.
func NewFetchIncFromTAS(w prim.World, name string) *FetchInc {
	arr := &lazyTAS{w: w, name: name + ".M"}
	return &FetchInc{m: arr.get}
}

// FetchIncrement returns the current value (starting from 1) and increments.
func (f *FetchInc) FetchIncrement(t prim.Thread) int64 {
	for i := 1; ; i++ {
		if f.m(i).TestAndSet(t) == 0 {
			return int64(i)
		}
	}
}

// Read returns the current value without modifying the object.
func (f *FetchInc) Read(t prim.Thread) int64 {
	for i := 1; ; i++ {
		if f.m(i).Read(t) == 0 {
			return int64(i)
		}
	}
}

// FAFetchInc is a wait-free strongly-linearizable readable fetch&increment
// from a single fetch&add register: fetch&increment is fetch&add(R, 1) and
// read is fetch&add(R, 0), each a single step (its linearization point). It
// serves as the atomic readable fetch&increment base object that Theorem 10
// assumes, discharged directly against a consensus-number-2 primitive.
type FAFetchInc struct {
	w prim.World
	r prim.FetchAdd
}

var _ FetchIncAPI = (*FAFetchInc)(nil)

// NewFAFetchInc allocates the register name+".R"; the counter starts at 1
// (matching Theorem 9's object, whose first fetch&increment returns 1).
func NewFAFetchInc(w prim.World, name string) *FAFetchInc {
	return &FAFetchInc{w: w, r: w.FetchAdd(name + ".R")}
}

// FetchIncrement returns the current value and increments.
func (f *FAFetchInc) FetchIncrement(t prim.Thread) int64 {
	v := f.r.FetchAdd(t, one).Int64() + 1
	prim.MarkLinPoint(f.w, t)
	return v
}

// Read returns the current value.
func (f *FAFetchInc) Read(t prim.Thread) int64 {
	v := f.r.FetchAdd(t, zero).Int64() + 1
	prim.MarkLinPoint(f.w, t)
	return v
}
