package core

import (
	"errors"
	"sort"
	"sync"
	"sync/atomic"

	"stronglin/internal/prim"
	"stronglin/internal/spec"
)

// SimpleType describes an object whose every pair of operations either
// commutes or one overwrites the other, with respect to the object state
// (Aspnes–Herlihy; "simple types" in Ovens–Woelfel and Section 3.3 of the
// paper). The sequential specification must be deterministic.
//
// The relations are response-inclusive, as in Aspnes–Herlihy:
//
//   - Commutes(a, b): for every state s, applying a then b yields the same
//     state as applying b then a, and each operation's response is the same
//     in both orders.
//   - Overwrites(a, b): for every state s, applying b then a yields the same
//     state and the same response for a as applying a alone.
//
// Response-inclusiveness matters: a "tick" that returned the new clock value
// would commute state-wise but not response-wise, and Algorithm 1 cannot
// implement it (two concurrent ticks would both compute the same value);
// the strong-linearizability model checker exposes exactly this failure.
// Package tests validate the declared relations against the specification
// by randomised state exploration, and require that every operation pair
// commutes or overwrites in at least one direction.
type SimpleType interface {
	spec.Spec
	Commutes(a, b spec.Op) bool
	Overwrites(a, b spec.Op) bool
}

// SimpleObject is Algorithm 1: the wait-free linearizable implementation of
// any simple type from one atomic snapshot (Aspnes–Herlihy), which is
// strongly linearizable when the snapshot is (Ovens–Woelfel; Theorem 3 gives
// the paper's forward-simulation proof). Substituting the fetch&add snapshot
// of Theorem 2 yields Theorem 4.
//
// Every operation: scans the snapshot root, traverses the operation graph
// reachable from the view, linearizes it with lingraph (topological sort
// refined by the dominance relation), computes its response by running the
// specification along that linearization, records itself as a new graph node
// whose preceding pointers are the view, and publishes the node by updating
// its snapshot component.
type SimpleObject struct {
	typ  SimpleType
	snap SnapshotAPI
	n    int

	// views[i] is process i's reusable scan buffer (single-writer, like a
	// snapshot component); with a snapshot that supports ScanInto the scan
	// step of Execute is then allocation-free on the packed engine.
	views    [][]int64
	scanInto func(t prim.Thread, view []int64) []int64 // nil: fall back to Scan

	// capacity bounds the number of operations the object can execute: node
	// references are published through the snapshot as component values, so
	// a snapshot bound of B admits references 1..B — B operations in total.
	// -1 means unbounded. reserved hands out execution slots before any
	// shared step, so an over-capacity operation is refused cleanly instead
	// of panicking mid-publish.
	capacity int64
	reserved atomic.Int64

	// arena maps node references (published through the snapshot as int64
	// component values) to nodes. It is Go-heap plumbing for the paper's
	// "pointers to nodes", not a shared base object: references are only
	// looked up after being obtained from a snapshot scan, which provides
	// the required happens-before edge; the lock protects the map structure
	// itself.
	mu      sync.RWMutex
	arena   map[int64]*graphNode
	nextRef int64
}

// ErrCapacityExhausted is returned by TryExecute when a bounded simple
// object has executed as many operations as its snapshot bound admits.
var ErrCapacityExhausted = errors.New("core: SimpleObject: operation capacity exhausted (snapshot bound reached)")

// graphNode is Algorithm 1's node struct: an invocation with its response
// and the per-process preceding pointers.
type graphNode struct {
	ref       int64
	pid       int
	op        spec.Op
	resp      string
	preceding []int64 // snapshot view at invocation; 0 is the null reference
}

// NewSimpleObject builds the construction over the given snapshot for n
// processes. A snapshot that declares a bound (Bound() >= 0) caps the
// object's lifetime operation count at that bound — references are published
// through the snapshot's components, so the value domain IS the reference
// domain; see TryExecute.
func NewSimpleObject(typ SimpleType, snap SnapshotAPI, n int) *SimpleObject {
	o := &SimpleObject{
		typ:      typ,
		snap:     snap,
		n:        n,
		capacity: -1,
		views:    make([][]int64, n),
		arena:    make(map[int64]*graphNode),
	}
	for i := range o.views {
		o.views[i] = make([]int64, n)
	}
	if si, ok := snap.(interface {
		ScanInto(t prim.Thread, view []int64) []int64
	}); ok {
		o.scanInto = si.ScanInto
	}
	if b, ok := snap.(interface{ Bound() int64 }); ok {
		o.capacity = b.Bound()
	}
	return o
}

// NewSimpleObjectFromFA builds the construction over a fresh fetch&add
// snapshot (Theorem 4's composition). With a WithSnapshotBound option the
// snapshot — and with it the whole composition's shared state — becomes a
// single packed machine word when the encoding fits; the bound then caps the
// object's lifetime operation count (references 1..bound).
func NewSimpleObjectFromFA(w prim.World, name string, typ SimpleType, n int, opts ...SnapshotOption) *SimpleObject {
	return NewSimpleObject(typ, NewFASnapshot(w, name+".snap", n, opts...), n)
}

// SnapshotPacked reports whether the underlying snapshot runs on a single
// packed machine word.
func (o *SimpleObject) SnapshotPacked() bool {
	if p, ok := o.snap.(interface{ Packed() bool }); ok {
		return p.Packed()
	}
	return false
}

// SnapshotEngine names the underlying snapshot's register substrate
// ("packed", "multiword" or "wide"; "wide" when the snapshot does not report
// one). A "multiword" simple object is how Algorithm 1 exceeds 63 lanes of
// packed reference budget: the reference domain stripes across k XADD words
// instead of shrinking to fit one.
func (o *SimpleObject) SnapshotEngine() string {
	if e, ok := o.snap.(interface{ Engine() string }); ok {
		return e.Engine()
	}
	return "wide"
}

// SnapshotWords returns the number of machine words holding the snapshot's
// components (0 on the wide register).
func (o *SimpleObject) SnapshotWords() int {
	if e, ok := o.snap.(interface{ Words() int }); ok {
		return e.Words()
	}
	return 0
}

// Capacity returns the lifetime operation budget imposed by the snapshot
// bound, or -1 when unbounded.
func (o *SimpleObject) Capacity() int64 { return o.capacity }

// Executed returns how many operations have been admitted so far (for a
// bounded object, never more than Capacity — rejected over-capacity attempts
// do not count). It is an upper bound on completed operations.
func (o *SimpleObject) Executed() int64 {
	r := o.reserved.Load()
	if o.capacity >= 0 && r > o.capacity {
		return o.capacity
	}
	return r
}

// Execute runs one high-level operation on behalf of t and returns its
// response (procedure execute_p of Algorithm 1). It panics when a bounded
// object's capacity is exhausted — uniform with the bound panics of the
// packed cores; servers should use TryExecute instead.
func (o *SimpleObject) Execute(t prim.Thread, invoke spec.Op) string {
	resp, err := o.TryExecute(t, invoke)
	if err != nil {
		panic(err.Error())
	}
	return resp
}

// TryExecute runs one high-level operation on behalf of t and returns its
// response, or ErrCapacityExhausted — before taking any shared step — when a
// bounded object has no execution slots left. Slots are reserved up front so
// references never exceed the snapshot bound: at most capacity operations
// pass the gate, and references are assigned densely from 1 in publish
// order, so every published reference is within the declared value domain.
func (o *SimpleObject) TryExecute(t prim.Thread, invoke spec.Op) (string, error) {
	if o.reserved.Add(1) > o.capacity && o.capacity >= 0 {
		return "", ErrCapacityExhausted
	}
	var view []int64
	if o.scanInto != nil { // line 12
		view = o.scanInto(t, o.views[t.ID()])
	} else {
		view = o.snap.Scan(t)
	}
	graph := o.collect(view)                                // line 13: BFS from the view
	seq := o.linearize(graph)                               // line 14: sort of lingraph(G)
	resp := o.respond(seq, invoke)                          // lines 17-19
	node := &graphNode{pid: t.ID(), op: invoke, resp: resp} // lines 15-16
	node.preceding = make([]int64, o.n)                     // lines 20-21
	copy(node.preceding, view)
	o.publish(node)
	o.snap.Update(t, node.ref) // line 22
	return resp, nil           // line 23
}

func (o *SimpleObject) publish(n *graphNode) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.nextRef++
	n.ref = o.nextRef
	o.arena[n.ref] = n
}

func (o *SimpleObject) lookup(ref int64) *graphNode {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return o.arena[ref]
}

// collect returns all nodes reachable from the view through preceding
// pointers.
func (o *SimpleObject) collect(view []int64) map[int64]*graphNode {
	out := make(map[int64]*graphNode)
	var stack []int64
	for _, ref := range view {
		if ref != 0 {
			stack = append(stack, ref)
		}
	}
	for len(stack) > 0 {
		ref := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if _, seen := out[ref]; seen {
			continue
		}
		n := o.lookup(ref)
		out[ref] = n
		for _, p := range n.preceding {
			if p != 0 {
				if _, seen := out[p]; !seen {
					stack = append(stack, p)
				}
			}
		}
	}
	return out
}

// dominated reports whether a is dominated by b: b overwrites a but not
// vice versa, or they overwrite each other and a's process id is smaller
// (the tie-break of Theorem 3's proof). Dominated operations are linearized
// earlier.
func (o *SimpleObject) dominated(a, b *graphNode) bool {
	ba := o.typ.Overwrites(b.op, a.op)
	ab := o.typ.Overwrites(a.op, b.op)
	switch {
	case ba && !ab:
		return true
	case ba && ab:
		return a.pid < b.pid
	default:
		return false
	}
}

// linearize is procedure lingraph followed by the final topological sort
// (lines 1-10 and 14). All sorts break ties by node reference, which makes
// the construction deterministic — a requirement for replay-based model
// checking and irrelevant to correctness.
func (o *SimpleObject) linearize(graph map[int64]*graphNode) []*graphNode {
	refs := make([]int64, 0, len(graph))
	for ref := range graph {
		refs = append(refs, ref)
	}
	sort.Slice(refs, func(i, j int) bool { return refs[i] < refs[j] })

	index := make(map[int64]int, len(refs))
	for i, ref := range refs {
		index[ref] = i
	}

	// Real-time edges: preceding[i] -> node, for every reachable node.
	k := len(refs)
	adj := make([][]bool, k)
	for i := range adj {
		adj[i] = make([]bool, k)
	}
	for i, ref := range refs {
		for _, p := range graph[ref].preceding {
			if p != 0 {
				if j, ok := index[p]; ok {
					adj[j][i] = true
				}
			}
		}
	}

	order := topoSort(adj, k) // line 2: initial topological sort

	// Lines 4-9: refine with dominance edges that do not close a cycle.
	for x := 0; x < k-1; x++ {
		for y := x + 1; y < k; y++ {
			i, j := order[x], order[y]
			ni, nj := graph[refs[i]], graph[refs[j]]
			if o.dominated(nj, ni) && !reachable(adj, i, j) {
				adj[j][i] = true // op_j before op_i
			} else if o.dominated(ni, nj) && !reachable(adj, j, i) {
				adj[i][j] = true
			}
		}
	}

	final := topoSort(adj, k)
	out := make([]*graphNode, k)
	for pos, i := range final {
		out[pos] = graph[refs[i]]
	}
	return out
}

// respond runs the specification along the linearization and applies invoke
// (lines 17-19: the response making S ∘ inv ∘ rsp valid).
func (o *SimpleObject) respond(seq []*graphNode, invoke spec.Op) string {
	st := o.typ.Init(o.n)
	for _, n := range seq {
		outs := st.Steps(n.op)
		if len(outs) != 1 {
			panic("core: simple types require deterministic specifications")
		}
		st = outs[0].Next
	}
	outs := st.Steps(invoke)
	if len(outs) != 1 {
		panic("core: simple types require deterministic specifications")
	}
	return outs[0].Resp
}

// topoSort returns a deterministic topological order (Kahn's algorithm,
// smallest index first).
func topoSort(adj [][]bool, k int) []int {
	indeg := make([]int, k)
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			if adj[i][j] {
				indeg[j]++
			}
		}
	}
	out := make([]int, 0, k)
	used := make([]bool, k)
	for len(out) < k {
		pick := -1
		for i := 0; i < k; i++ {
			if !used[i] && indeg[i] == 0 {
				pick = i
				break
			}
		}
		if pick < 0 {
			panic("core: lingraph produced a cyclic order")
		}
		used[pick] = true
		out = append(out, pick)
		for j := 0; j < k; j++ {
			if adj[pick][j] {
				indeg[j]--
			}
		}
	}
	return out
}

// reachable reports whether j is reachable from i in adj (used for the
// does-not-complete-a-cycle checks of lines 6 and 8: adding j->i is safe iff
// i cannot already reach j).
func reachable(adj [][]bool, i, j int) bool {
	if i == j {
		return true
	}
	k := len(adj)
	seen := make([]bool, k)
	stack := []int{i}
	seen[i] = true
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for next := 0; next < k; next++ {
			if adj[cur][next] && !seen[next] {
				if next == j {
					return true
				}
				seen[next] = true
				stack = append(stack, next)
			}
		}
	}
	return false
}
