package core

import (
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"stronglin/internal/history"
	"stronglin/internal/prim"
	"stronglin/internal/sim"
	"stronglin/internal/spec"
)

// opRebase models a live cutover as the operation it linearizes as: a Scan
// returning the final validated view the migrator deposits (see Rebase).
func opRebase(s *FASnapshot) sim.Op {
	return sim.Op{
		Name: "rebase()",
		Spec: spec.MkOp(spec.MethodScan),
		Run: func(th prim.Thread) string {
			return spec.RespVec(s.RebaseView(th))
		},
	}
}

// TestRebaseSequentialSolo walks the full cutover lifecycle single-threaded:
// values survive re-basing, the sequence watermark resets (the renewal the
// watermark drives), stale-generation operations self-heal through the next
// pointers, and a second cutover stacks on the first.
func TestRebaseSequentialSolo(t *testing.T) {
	w := sim.NewSoloWorld()
	s := NewFASnapshot(w, "snap", 3, WithSnapshotBound(mwBound3), WithLiveRebase(true))
	if !s.Multiword() || !s.RebaseEnabled() || s.Words() != 2 {
		t.Fatalf("engine = %s x %d words, rebase %v; want multiword x 2 with rebase", s.Engine(), s.Words(), s.RebaseEnabled())
	}
	s.Update(sim.SoloThread(0), 7)
	s.Update(sim.SoloThread(2), 9)
	if wm := s.SeqWatermark(sim.SoloThread(0)); wm == 0 {
		t.Fatal("updates must raise the sequence watermark")
	}
	if g := s.Generation(sim.SoloThread(0)); g != 0 {
		t.Fatalf("generation before any cutover = %d, want 0", g)
	}

	view := s.RebaseView(sim.SoloThread(1))
	if want := []int64{7, 0, 9}; !reflect.DeepEqual(view, want) {
		t.Fatalf("rebase view = %v, want %v", view, want)
	}
	if g := s.Generation(sim.SoloThread(0)); g != 1 {
		t.Fatalf("generation after cutover = %d, want 1", g)
	}
	if s.CutoverInFlight(sim.SoloThread(0)) {
		t.Fatal("an installed cutover must not report in-flight")
	}
	if wm := s.SeqWatermark(sim.SoloThread(0)); wm != 0 {
		t.Fatalf("sequence watermark after cutover = %d, want 0 (fresh words)", wm)
	}
	// Readers and writers pinned to the retired generation self-heal.
	if got := spec.RespVec(s.Scan(sim.SoloThread(0))); got != "[7 0 9]" {
		t.Fatalf("post-cutover scan = %s, want [7 0 9]", got)
	}
	s.Update(sim.SoloThread(2), 11) // diverts: its pin still names generation 0
	if got := spec.RespVec(s.Scan(sim.SoloThread(1))); got != "[7 0 11]" {
		t.Fatalf("scan after diverted update = %s, want [7 0 11]", got)
	}

	if id := s.Rebase(sim.SoloThread(1)); id != 2 {
		t.Fatalf("second cutover generation = %d, want 2", id)
	}
	s.Update(sim.SoloThread(0), 8)
	if got := spec.RespVec(s.Scan(sim.SoloThread(2))); got != "[8 0 11]" {
		t.Fatalf("scan on generation 2 = %s, want [8 0 11]", got)
	}
	st := s.RebaseStats()
	if st.Generations != 2 || st.Diverts == 0 {
		t.Fatalf("stats = %+v, want 2 generations and diverted updates", st)
	}
}

// TestRebaseCutoverStrongLin model-checks the cutover exhaustively: every
// interleaving of one writer against one full live Rebase on the 2-word
// engine, decided by the execution-tree game checker with Rebase modeled as
// the scan it linearizes as. The await step keeps the tree honest AND small:
// a diverted writer is simply not schedulable until the install lands, so
// its reconciliation steps cannot interleave with the migrator at all. The
// tallies prove the divert path is actually inside the envelope.
func TestRebaseCutoverStrongLin(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive cutover exploration (skipped in -short)")
	}
	var diverts, generations int64
	tally := func(op sim.Op, s *FASnapshot) sim.Op {
		run := op.Run
		op.Run = func(th prim.Thread) string {
			resp := run(th)
			st := s.RebaseStats()
			if st.Diverts > 0 {
				atomic.AddInt64(&diverts, 1)
			}
			if st.Generations > 0 {
				atomic.AddInt64(&generations, 1)
			}
			return resp
		}
		return op
	}
	setup := func(w *sim.World) []sim.Program {
		s := NewFASnapshot(w, "snap", 2, WithSnapshotBound(mwBound2), WithLiveRebase(true)) // 1 lane/word x 2 words
		return []sim.Program{
			{tally(opUpdate(s, 0, 1), s)}, // word-0 writer: payload XADD is also its announce
			{tally(opRebase(s), s)},
		}
	}
	v := verifySL(t, 2, setup, spec.Snapshot{})
	if atomic.LoadInt64(&generations) == 0 {
		t.Fatal("no explored branch completed a cutover")
	}
	if atomic.LoadInt64(&diverts) == 0 {
		t.Fatal("no explored branch diverted the writer (the cutover race is not in the envelope)")
	}
	t.Logf("cutover envelope: %d nodes, %d leaves, %d divert branches", v.Nodes, v.Leaves, atomic.LoadInt64(&diverts))
}

// TestRebaseParkAdoptCrafted drives the SHIPPED engine through a
// deterministic park-adopt: a scan discovers the cutover in-round after the
// migrator deposits its final validated collect, and adopts that deposit
// under the fresh word-0 witness — returning the pre-cutover state without
// ever touching the successor.
func TestRebaseParkAdoptCrafted(t *testing.T) {
	var st RebaseStats
	setup := func(w *sim.World) []sim.Program {
		s := NewFASnapshot(w, "snap", 3, WithSnapshotBound(mwBound3), WithLiveRebase(true)) // lanes 0,1 word 0; lane 2 word 1
		scan := sim.Op{
			Name: "scan()",
			Spec: spec.MkOp(spec.MethodScan),
			Run: func(th prim.Thread) string {
				resp := spec.RespVec(s.Scan(th))
				st = s.RebaseStats()
				return resp
			},
		}
		return []sim.Program{
			{opUpdate(s, 0, 7)}, // completes pre-arm: the state the cutover carries over
			{scan},
			{opRebase(s)},
		}
	}
	window := []int{
		0, 0, 0, // writer: invoke, payload w0 (also announce), pressure poll (0) -> returns
		1, 1, 1, // scan: invoke, initial collect (w1, w0)
		2, 2, 2, 2, 2, // migrator: invoke, next read, pressure read, ARM, arm announce
		1, 1, 1, // scan round: w1, pressure (cut), w0 (arm bump -> differs) -> invalid
		2, 2, 2, 2, 2, // migrator: final collect w1, w0; round w1, w0 -> valid; DEPOSIT
		1, 1, 1, // scan round: w1, pressure (cut), w0 -> valid, cutover in flight -> PARK
		1, 1, // scan: slot read (deposit), fresh w0 == deposit w0 -> ADOPT
		2, 2, 2, 2, 2, // migrator: pre-load (read, correct, read), flip announce, INSTALL
	}
	policy := func(v sim.PolicyView) int {
		if v.Step < len(window) {
			p := window[v.Step]
			for _, e := range v.Enabled {
				if e == p {
					return p
				}
			}
		}
		return v.Enabled[0]
	}
	exec, err := sim.RunToCompletion(3, setup, policy, 200)
	if err != nil {
		t.Fatal(err)
	}
	if !exec.Complete {
		t.Fatalf("crafted park-adopt did not complete (schedule %v)", exec.Schedule)
	}
	h := history.FromEvents(3, exec.Ops, exec.Events)
	if res := history.CheckLinearizable(h, spec.Snapshot{}); !res.Ok {
		t.Fatalf("crafted park-adopt history not linearizable: %s", h.String())
	}
	if st.ParkAdopts == 0 {
		t.Fatalf("crafted schedule did not reach the park-adopt path (stats %+v, schedule %v)", st, exec.Schedule)
	}
	if got, want := exec.Responses()[1], spec.RespVec([]int64{7, 0, 0}); got != want {
		t.Fatalf("parked scan returned %s, want %s (the migrator's deposit)", got, want)
	}
	t.Logf("park-adopt stats %+v, history: %s", st, h.String())
}

// TestRebaseParkAwaitCrafted is the other park outcome: the migrator's flip
// announce lands before the parked scan's witness, so the adoption fails,
// the scan awaits the install (a reader parked across the whole cutover)
// and re-collects on the successor — whose pre-loaded payload must carry
// the pre-cutover values.
func TestRebaseParkAwaitCrafted(t *testing.T) {
	var st RebaseStats
	setup := func(w *sim.World) []sim.Program {
		s := NewFASnapshot(w, "snap", 3, WithSnapshotBound(mwBound3), WithLiveRebase(true)) // lanes 0,1 word 0; lane 2 word 1
		scan := sim.Op{
			Name: "scan()",
			Spec: spec.MkOp(spec.MethodScan),
			Run: func(th prim.Thread) string {
				resp := spec.RespVec(s.Scan(th))
				st = s.RebaseStats()
				return resp
			},
		}
		return []sim.Program{
			{opUpdate(s, 0, 7)},
			{scan},
			{opRebase(s)},
		}
	}
	window := []int{
		0, 0, 0, // writer completes pre-arm
		1, 1, 1, // scan: invoke, initial collect (w1, w0)
		2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, // migrator: the ENTIRE cutover, install included
		1, 1, 1, // scan round: w1, pressure (cut), w0 (arm+flip bumps) -> invalid
		1, 1, 1, // scan round: valid, cutover in flight -> PARK
		1, 1, // scan: slot read, fresh w0 -> flip announce moved it: witness FAILS
		1,    // scan: await the install (already landed: one conditional step)
		1, 1, // scan on the successor: initial collect
		1, 1, 1, // scan round: w1, pressure (no bit), w0 -> valid -> return
	}
	policy := func(v sim.PolicyView) int {
		if v.Step < len(window) {
			p := window[v.Step]
			for _, e := range v.Enabled {
				if e == p {
					return p
				}
			}
		}
		return v.Enabled[0]
	}
	exec, err := sim.RunToCompletion(3, setup, policy, 200)
	if err != nil {
		t.Fatal(err)
	}
	if !exec.Complete {
		t.Fatalf("crafted park-await did not complete (schedule %v)", exec.Schedule)
	}
	h := history.FromEvents(3, exec.Ops, exec.Events)
	if res := history.CheckLinearizable(h, spec.Snapshot{}); !res.Ok {
		t.Fatalf("crafted park-await history not linearizable: %s", h.String())
	}
	if st.ParkWaits == 0 {
		t.Fatalf("crafted schedule did not reach the park-await path (stats %+v, schedule %v)", st, exec.Schedule)
	}
	if got, want := exec.Responses()[1], spec.RespVec([]int64{7, 0, 0}); got != want {
		t.Fatalf("parked scan returned %s, want %s (the re-based payload)", got, want)
	}
	t.Logf("park-await stats %+v, history: %s", st, h.String())
}

// TestRebaseFlipEarlyLosesUpdate pins the protocol's one load-bearing
// ordering with its negative twin: a migrator that seeds the successor from
// a collect taken BEFORE arming (rebaseFlipEarly) races a writer that
// completes in the seed-to-arm window — the write is in no deposit and no
// divert, so the post-cutover scan misses a COMPLETED update and the
// history is not even linearizable. The same schedule shape against the
// shipped Rebase keeps the value.
func TestRebaseFlipEarlyLosesUpdate(t *testing.T) {
	run := func(t *testing.T, buggy bool) (string, bool) {
		setup := func(w *sim.World) []sim.Program {
			s := NewFASnapshot(w, "snap", 2, WithSnapshotBound(mwBound2), WithLiveRebase(true))
			var mig sim.Op
			if buggy {
				mig = sim.Op{
					Name: "rebase-flip-early()",
					// The twin changes no component values, so it is modeled
					// as a no-op update of its own lane; the damage shows up
					// in the scan that follows it.
					Spec: spec.MkOp(spec.MethodUpdate, 1, 0),
					Run: func(th prim.Thread) string {
						s.rebaseFlipEarly(th)
						return spec.RespOK
					},
				}
			} else {
				mig = opRebase(s)
			}
			scan := sim.Op{
				Name: "scan()",
				Spec: spec.MkOp(spec.MethodScan),
				Run: func(th prim.Thread) string {
					return spec.RespVec(s.Scan(th))
				},
			}
			return []sim.Program{
				{opUpdate(s, 0, 1)}, // completes in the seed-to-arm window
				{mig, scan},
			}
		}
		window := []int{
			1, 1, 1, 1, // twin: invoke, live-gen read, premature seed collect (w0, w1)
			0, 0, 0, // writer: invoke, payload w0, pressure poll (no bit yet!) -> COMPLETES
			// the migrator runs everything else to completion, then its scan
		}
		policy := func(v sim.PolicyView) int {
			if v.Step < len(window) {
				p := window[v.Step]
				for _, e := range v.Enabled {
					if e == p {
						return p
					}
				}
			}
			return v.Enabled[len(v.Enabled)-1] // drain the migrator+scan first
		}
		exec, err := sim.RunToCompletion(2, setup, policy, 200)
		if err != nil {
			t.Fatal(err)
		}
		if !exec.Complete {
			t.Fatalf("crafted flip-early run did not complete (schedule %v)", exec.Schedule)
		}
		h := history.FromEvents(2, exec.Ops, exec.Events)
		return exec.Responses()[2], history.CheckLinearizable(h, spec.Snapshot{}).Ok
	}

	view, lin := run(t, true)
	if lin {
		t.Fatal("flip-early cutover must LOSE the update completed in its seed-to-arm window (history wrongly linearizable)")
	}
	if want := spec.RespVec([]int64{0, 0}); view != want {
		t.Fatalf("flip-early post-cutover scan = %s, want %s (the lost update)", view, want)
	}
	view, lin = run(t, false)
	if !lin {
		t.Fatal("the shipped Rebase on the same schedule shape must stay linearizable")
	}
	if want := spec.RespVec([]int64{1, 0}); view != want {
		t.Fatalf("shipped post-cutover scan = %s, want %s (the update carried over)", view, want)
	}
}

// TestRebaseParkBlindAdoptNotStrongLin pins the park path's negative twin:
// a parked scan that adopts the help slot WITHOUT the fresh word-0 witness
// (scanParkBlindAdoptInto). A stale pre-arm helper deposit can survive in
// the slot when the migrator arms — the word-0 update that staled it had
// its own help attempt invalidated into giving up — and the blind park
// swallows it. The two futures diverge on which deposit the twin adopts
// (the stale one, missing a COMPLETED update, or the migrator's fresh final
// collect), each leaf stays linearizable, and no prefix-closed
// linearization survives both: the game checker refutes strong
// linearizability on the schedule tree, soundly (a pruned tree only removes
// futures). The CUTOVER does not exempt the announce-as-final-step rule — a
// park adoption needs the same closing witness every other return path
// carries, which is exactly what the arm announce feeds it.
func TestRebaseParkBlindAdoptNotStrongLin(t *testing.T) {
	setup := func(w *sim.World) []sim.Program {
		s := NewFASnapshot(w, "snap", 4, WithSnapshotBound(mwBound24), WithLiveRebase(true)) // lanes 0,1 word 0; lanes 2,3 word 1
		twin := sim.Op{
			Name: "scan-park-blind()",
			Spec: spec.MkOp(spec.MethodScan),
			Run: func(th prim.Thread) string {
				return spec.RespVec(s.scanParkBlindAdoptInto(th, make([]int64, 4)))
			},
		}
		return []sim.Program{
			{opUpdate(s, 0, 1)}, // word 0: completes while the stale deposit survives
			{twin},
			{opUpdate(s, 2, 2), opUpdate(s, 2, 3)}, // word 1: depositor, then the diverted straggler
			{opRebase(s)},
		}
	}
	// Shared prefix (mirrors the adopt-unanchored refutation, plus the arm):
	// the twin raises pressure and collects; upd2a deposits a validated
	// [0 0 2]; upd0's payload lands (staling the deposit) and upd2b's payload
	// invalidates upd0's single help attempt, so upd0 gives up and RETURNS
	// with the stale deposit still in the slot; then the migrator ARMS.
	prefix := []int{
		1, 1, 1, 1, // twin: invoke, raise, initial collect (w1, w0)
		2, 2, 2, 2, // upd2a: invoke, payload w1, announce w0, pressure poll (1)
		2, 2, 2, 2, // upd2a help: initial w1, w0; round w1, w0 -> valid
		2,          // upd2a: deposit [0 0 2 0] -> returns
		2,          // upd2b: invoke
		0, 0, 0, 0, // upd0: invoke, payload w0 (stales the deposit), pressure poll (1), help initial w1
		2,       // upd2b: payload w1 (invalidates upd0's help baseline)
		0, 0, 0, // upd0 help: initial w0; round w1 (differs), round w0 -> attempt spent -> upd0 RETURNS
		3, 3, 3, 3, 3, // migrator: invoke, next read, pressure read, ARM, arm announce
	}
	// Future A: the twin parks NOW and blindly adopts the STALE deposit
	// (view [0 0 2], missing completed upd0); the migrator then finishes the
	// cutover and upd2b diverts onto the successor.
	futureA := append(append([]int{
		1, 1, 1, // twin round: w1 (differs), pressure (cut), w0 -> invalid
		1, 1, 1, // twin round: valid, cutover in flight
		1, // twin: slot read -> BLIND adopt of the stale [0 0 2 0]
		1, // twin: lower pressure -> returns
	}, []int{
		3, 3, 3, 3, // migrator: final collect w1, w0; round w1, w0 -> valid
		3,          // migrator: deposit [1 0 3 0]
		3, 3, 3, 3, // migrator: pre-load (read, correct) x 2 words
		3, 3, // migrator: flip announce, INSTALL
	}...), []int{
		2, 2, // upd2b: announce w0, pressure poll (bit) -> divert
		2, 2, // upd2b: await install, successor lane read (3 == v) -> returns
	}...)
	// Future B: the migrator deposits its final collect FIRST, so the same
	// blind adoption takes the FRESH deposit (view [1 0 3], with upd0).
	futureB := append(append([]int{
		3, 3, 3, 3, 3, // migrator: final collect + round -> valid, deposit [1 0 3 0]
	}, []int{
		1, 1, 1, 1, 1, 1, 1, 1, // twin: two rounds, slot read -> adopts [1 0 3 0], lower
	}...), []int{
		3, 3, 3, 3, 3, 3, // migrator: pre-load x 2, flip announce, INSTALL
		2, 2, 2, 2, // upd2b: announce, poll -> divert, await, successor read
	}...)

	futures := []struct {
		name, wantScan string
		sched          []int
	}{
		{"A", spec.RespVec([]int64{0, 0, 2, 0}), append(append([]int{}, prefix...), futureA...)},
		{"B", spec.RespVec([]int64{1, 0, 3, 0}), append(append([]int{}, prefix...), futureB...)},
	}
	var schedules [][]int
	for _, f := range futures {
		exec, err := sim.Run(4, setup, f.sched)
		if err != nil {
			t.Fatalf("schedule %s: %v", f.name, err)
		}
		if !exec.Complete {
			t.Fatalf("schedule %s incomplete: %v (enabled at end: %v)", f.name, exec.Schedule, exec.Enabled[len(exec.Enabled)-1])
		}
		if got := exec.Responses()[1]; got != f.wantScan {
			t.Fatalf("schedule %s: twin scan returned %s, want %s", f.name, got, f.wantScan)
		}
		h := history.FromEvents(4, exec.Ops, exec.Events)
		if res := history.CheckLinearizable(h, spec.Snapshot{}); !res.Ok {
			t.Fatalf("schedule %s must stay linearizable (adopted deposits are true states): %s", f.name, h.String())
		}
		schedules = append(schedules, append([]int{}, exec.Schedule...))
	}

	tree, err := sim.TreeFromSchedules(4, setup, schedules)
	if err != nil {
		t.Fatal(err)
	}
	res := history.CheckStrongLin(tree, spec.Snapshot{}, nil)
	if res.Ok {
		t.Fatal("the witness-free park adoption must NOT be strongly linearizable on the branching futures")
	}
	t.Logf("blind park adoption commitment counterexample: %v", res.Counterexample)
}

// TestRebaseRealWorldStress hammers live cutovers on real hardware: writers
// and scanners run free while a migrator re-bases repeatedly. Views must
// stay pairwise comparable across generations (per-lane monotone), and after
// quiescing plus a final cutover nothing may be lost.
func TestRebaseRealWorldStress(t *testing.T) {
	for _, cached := range []bool{false, true} {
		name := "collect"
		if cached {
			name = "cached"
		}
		t.Run(name, func(t *testing.T) {
			w := prim.NewRealWorld()
			const lanes = 4
			s := NewFASnapshot(w, "snap", lanes, WithSnapshotBound(mwBound2),
				WithLiveRebase(true), WithViewCache(cached), WithScanRetryBudget(0))
			if !s.Multiword() || !s.RebaseEnabled() {
				t.Fatal("config must stripe with rebase on")
			}
			const writers, perWriter, rebases = 2, 600, 40
			var wg sync.WaitGroup
			last := make([]int64, lanes)
			for p := 0; p < writers; p++ {
				wg.Add(1)
				last[p] = int64(perWriter)
				go func(p int) {
					defer wg.Done()
					th := prim.RealThread(p)
					for v := int64(1); v <= perWriter; v++ {
						s.Update(th, v)
					}
				}(p)
			}
			var scanErr error
			var scanMu sync.Mutex
			wg.Add(1)
			go func() {
				defer wg.Done()
				th := prim.RealThread(2)
				prev := make([]int64, lanes)
				view := make([]int64, lanes)
				for i := 0; i < 4*perWriter; i++ {
					s.ScanInto(th, view)
					for l := range view {
						if view[l] < prev[l] {
							scanMu.Lock()
							if scanErr == nil {
								scanErr = &laneRegression{lane: l, prev: prev[l], got: view[l]}
							}
							scanMu.Unlock()
							return
						}
					}
					copy(prev, view)
				}
			}()
			wg.Add(1)
			go func() {
				defer wg.Done()
				th := prim.RealThread(3)
				for i := 0; i < rebases; i++ {
					s.Rebase(th)
				}
			}()
			wg.Wait()
			if scanErr != nil {
				t.Fatal(scanErr)
			}
			// Quiesce: one final cutover, then the view must hold every
			// writer's last value — nothing lost across any generation.
			th := prim.RealThread(3)
			s.Rebase(th)
			final := s.Scan(prim.RealThread(2))
			for p := 0; p < writers; p++ {
				if final[p] != last[p] {
					t.Fatalf("lane %d after quiesce+cutover = %d, want %d (lost update): view %v", p, final[p], last[p], final)
				}
			}
			st := s.RebaseStats()
			if st.Generations < rebases {
				t.Fatalf("generations = %d, want >= %d", st.Generations, rebases)
			}
			t.Logf("%s: %+v, final view %v", name, st, final)
		})
	}
}

type laneRegression struct {
	lane      int
	prev, got int64
}

func (e *laneRegression) Error() string {
	return "scan lane went backwards across cutovers"
}

// TestRebaseModeOpsAllocFree pins that merely ENABLING live re-base keeps
// the steady-state hot paths allocation-free — the generation indirection
// adds a pointer hop, not garbage.
func TestRebaseModeOpsAllocFree(t *testing.T) {
	w := prim.NewRealWorld()
	s := NewFASnapshot(w, "snap", 3, WithSnapshotBound(mwBound3), WithLiveRebase(true))
	th := prim.RealThread(0)
	s.Rebase(prim.RealThread(1)) // measure on generation 1: post-cutover steady state
	var v int64
	if allocs := testing.AllocsPerRun(200, func() {
		v++
		s.Update(th, v%mwBound3)
	}); allocs != 0 {
		t.Errorf("rebase-mode Update allocates %.1f objects/op, want 0", allocs)
	}
	view := make([]int64, 3)
	if allocs := testing.AllocsPerRun(200, func() {
		s.ScanInto(th, view)
	}); allocs != 0 {
		t.Errorf("rebase-mode ScanInto allocates %.1f objects/op, want 0", allocs)
	}
}
