package core

import (
	"fmt"
	"math/big"

	"stronglin/internal/interleave"
	"stronglin/internal/prim"
)

// SnapshotAPI is the single-writer atomic snapshot interface used by the
// simple-type construction: Update writes the caller's component, Scan
// returns the full view.
type SnapshotAPI interface {
	Update(t prim.Thread, v int64)
	Scan(t prim.Thread) []int64
}

// FASnapshot is the wait-free strongly-linearizable n-component
// single-writer atomic snapshot of Section 3.2, built from a single
// unbounded fetch&add register R.
//
// Component i (owned by process i) is stored, in binary, in bit lane i of R.
// Update(v) computes the lane delta posAdj−negAdj between the binary
// encodings of the previous and the new value and applies it with one
// fetch&add; Update with an unchanged value performs fetch&add(R, 0). Scan
// is fetch&add(R, 0) followed by local decoding.
//
// Every operation performs exactly one fetch&add, which is its linearization
// point.
type FASnapshot struct {
	n     int
	codec interleave.Codec
	w     prim.World
	r     prim.FetchAdd
	prev  []*big.Int // prev[i] is accessed only by process i
}

var _ SnapshotAPI = (*FASnapshot)(nil)

// NewFASnapshot allocates the construction for n processes using a single
// fetch&add register named name+".R". Components are initially 0.
func NewFASnapshot(w prim.World, name string, n int) *FASnapshot {
	s := &FASnapshot{
		n:     n,
		codec: interleave.MustNew(n),
		w:     w,
		r:     w.FetchAdd(name + ".R"),
		prev:  make([]*big.Int, n),
	}
	for i := range s.prev {
		s.prev[i] = new(big.Int)
	}
	return s
}

// Update writes v (which must be non-negative) to the caller's component.
func (s *FASnapshot) Update(t prim.Thread, v int64) {
	if v < 0 {
		panic(fmt.Sprintf("core: FASnapshot.Update(%d): values must be non-negative", v))
	}
	i := t.ID()
	val := big.NewInt(v)
	if val.Cmp(s.prev[i]) == 0 {
		s.r.FetchAdd(t, zero)
		prim.MarkLinPoint(s.w, t)
		return
	}
	delta := s.codec.Delta(s.prev[i], val, i)
	s.r.FetchAdd(t, delta)
	prim.MarkLinPoint(s.w, t)
	s.prev[i] = val
}

// Scan returns the current view.
func (s *FASnapshot) Scan(t prim.Thread) []int64 {
	word := s.r.FetchAdd(t, zero)
	prim.MarkLinPoint(s.w, t)
	lanes := s.codec.Decode(word)
	view := make([]int64, s.n)
	for i, lane := range lanes {
		view[i] = lane.Int64()
	}
	return view
}

// Width returns the current bit length of the shared register (see
// FAMaxRegister.Width). It reads R with a fetch&add(0) step.
func (s *FASnapshot) Width(t prim.Thread) int {
	return s.r.FetchAdd(t, zero).BitLen()
}
