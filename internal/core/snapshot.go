package core

import (
	"fmt"
	"math/bits"
	"runtime"
	"sync/atomic"

	"stronglin/internal/interleave"
	"stronglin/internal/prim"
)

// SnapshotAPI is the single-writer atomic snapshot interface used by the
// simple-type construction: Update writes the caller's component, Scan
// returns the full view.
type SnapshotAPI interface {
	Update(t prim.Thread, v int64)
	Scan(t prim.Thread) []int64
}

// FASnapshot is the wait-free strongly-linearizable n-component
// single-writer atomic snapshot of Section 3.2, built from a single
// unbounded fetch&add register R.
//
// Component i (owned by process i) is stored, in binary, in bit lane i of R.
// Update(v) computes the lane delta posAdj−negAdj between the binary
// encodings of the previous and the new value and applies it with one
// fetch&add; Update with an unchanged value performs fetch&add(R, 0). Scan
// is fetch&add(R, 0) followed by local decoding.
//
// Every operation performs exactly one fetch&add, which is its linearization
// point.
//
// # Engine selection
//
// With WithSnapshotBound the constructor picks the cheapest register
// substrate the declared bound admits, by the codec's own budget arithmetic:
//
//   - single packed word, when n x FieldWidth(maxValue) <= 63: each component
//     is a fixed-width binary field of one hardware XADD register
//     (prim.FetchAddInt). Update is one XADD of the signed in-lane field
//     delta, Scan one XADD(0) plus shift-and-mask. One fetch&add per
//     operation: the wide linearization argument transfers unchanged.
//   - multi-word, otherwise (any bound fits: FieldWidth <= 63 always): the
//     components are striped across k XADD words (interleave.MultiPacked)
//     plus one epoch word. Update is one XADD of the field delta on the
//     OWNING word — still its linearization point — followed by an
//     announce-completion bump of the epoch; Scan snapshots the epoch, reads
//     the k words, and re-reads the epoch, retrying until it is unchanged
//     (the proven pattern of internal/shard's combining reads). Updates stay
//     wait-free; scans are lock-free (a retry consumes an update's
//     announce), with a retry-bounded writer-backoff hint so scans are not
//     starved under real-world update storms. An unvalidated multi-word
//     collect is NOT even linearizable — one word can be read before an
//     update that a later-read word already reflects has started — and the
//     model checker exhibits exactly that (see the package tests); the epoch
//     validation is what restores strong linearizability.
//   - wide big.Int register, only when no bound is declared.
//
// The bound is enforced identically on every engine (Update past it panics),
// so behaviour never depends on which substrate was selected.
type FASnapshot struct {
	n     int
	codec interleave.Codec
	w     prim.World
	r     prim.FetchAdd    // wide engine; nil otherwise
	rp    prim.FetchAddInt // single packed word; nil otherwise
	pc    interleave.Packed
	mp    interleave.MultiPacked
	words []prim.FetchAddInt // multi-word engine; nil otherwise
	epoch prim.FetchAddInt   // announce-completion word (multi-word engine)
	bound int64              // -1: unbounded (wide); >= 0: declared max component value
	prev  []int64            // prev[i] is accessed only by process i

	// scanWait is the real-world writer-backoff hint: a scan whose collect
	// keeps getting invalidated raises it, and updaters yield the processor
	// before their XADD while it is up. It is scheduling advice outside the
	// shared-memory protocol (the adversarial simulated scheduler explores
	// all timings regardless), so it affects no correctness argument.
	scanWait atomic.Int32
}

var _ SnapshotAPI = (*FASnapshot)(nil)

// scanSpinRounds is how many invalidated collects a multi-word scan absorbs
// before raising the writer-backoff hint.
const scanSpinRounds = 2

// SnapshotOption configures NewFASnapshot.
type SnapshotOption func(*FASnapshot)

// WithSnapshotBound declares that every component value is in [0, maxValue],
// and makes Update panic on values beyond it (like negatives). The bound
// selects the register engine (see the type comment): one packed machine
// word when n x FieldWidth(maxValue) <= 63 bits, the multi-word k-XADD
// engine otherwise — so every bounded snapshot runs on hardware XADD words;
// the wide big.Int register remains only for unbounded snapshots. The bound
// is enforced on every engine, so behaviour does not depend on which was
// selected.
func WithSnapshotBound(maxValue int64) SnapshotOption {
	if maxValue < 0 {
		panic(fmt.Sprintf("core: WithSnapshotBound(%d): bound must be non-negative", maxValue))
	}
	return func(s *FASnapshot) { s.bound = maxValue }
}

// NewFASnapshot allocates the construction for n processes using a single
// fetch&add register named name+".R" (or, on the multi-word engine, words
// name+".R0".."R<k-1>" plus name+".epoch"). Components are initially 0.
func NewFASnapshot(w prim.World, name string, n int, opts ...SnapshotOption) *FASnapshot {
	s := &FASnapshot{
		n:     n,
		codec: interleave.MustNew(n),
		w:     w,
		bound: -1,
		prev:  make([]int64, n),
	}
	for _, o := range opts {
		o(s)
	}
	if s.bound >= 0 {
		width := interleave.FieldWidth(s.bound)
		if pc, ok := interleave.NewPacked(n, width); ok {
			s.pc = pc
			s.rp = w.FetchAddInt(name+".R", 0)
			return s
		}
		if mp, ok := interleave.NewMultiPacked(n, width); ok {
			s.mp = mp
			s.words = make([]prim.FetchAddInt, mp.Words())
			for j := range s.words {
				s.words[j] = w.FetchAddInt(fmt.Sprintf("%s.R%d", name, j), 0)
			}
			s.epoch = w.FetchAddInt(name+".epoch", 0)
			return s
		}
	}
	s.r = w.FetchAdd(name + ".R")
	return s
}

// Packed reports whether the register is a single packed machine word.
func (s *FASnapshot) Packed() bool { return s.rp != nil }

// Multiword reports whether the components are striped across the k-XADD
// multi-word engine.
func (s *FASnapshot) Multiword() bool { return s.words != nil }

// Words returns the number of machine words holding components: 1 on the
// single packed word, k on the multi-word engine, 0 on the wide register
// (whose width is unbounded; the epoch word of the multi-word engine is not
// counted — it holds no component).
func (s *FASnapshot) Words() int {
	switch {
	case s.rp != nil:
		return 1
	case s.words != nil:
		return len(s.words)
	default:
		return 0
	}
}

// Engine names the selected register substrate: "packed", "multiword" or
// "wide".
func (s *FASnapshot) Engine() string {
	switch {
	case s.rp != nil:
		return "packed"
	case s.words != nil:
		return "multiword"
	default:
		return "wide"
	}
}

// Bound returns the declared maximum component value, or -1 when unbounded.
func (s *FASnapshot) Bound() int64 { return s.bound }

// Update writes v (which must be non-negative) to the caller's component.
// On the multi-word engine the XADD on the owning word is the linearization
// point; the epoch bump that follows announces completion to validating
// scans (an update is not complete — and so not forced into any scan's
// linearization — until it has announced).
func (s *FASnapshot) Update(t prim.Thread, v int64) {
	if v < 0 {
		panic(fmt.Sprintf("core: FASnapshot.Update(%d): values must be non-negative", v))
	}
	if s.bound >= 0 && v > s.bound {
		panic(fmt.Sprintf("core: FASnapshot.Update(%d): value exceeds the declared bound %d", v, s.bound))
	}
	i := t.ID()
	if s.words != nil {
		if s.scanWait.Load() != 0 {
			runtime.Gosched() // back off: a scan is being starved by updates
		}
		if v == s.prev[i] {
			// Unchanged value: the XADD(0) on the owning word is the whole
			// operation (its linearization point, like the packed and wide
			// fast paths). Nothing changed, so there is no completion to
			// announce — bumping the epoch would only force concurrent scans
			// into spurious re-collects of an identical state.
			s.words[s.mp.WordOf(i)].FetchAddInt(t, 0)
			prim.MarkLinPoint(s.w, t)
			return
		}
		s.words[s.mp.WordOf(i)].FetchAddInt(t, s.mp.FieldDelta(s.prev[i], v, i))
		prim.MarkLinPoint(s.w, t)
		s.prev[i] = v
		s.epoch.FetchAddInt(t, 1)
		return
	}
	if v == s.prev[i] {
		if s.rp != nil {
			s.rp.FetchAddInt(t, 0)
		} else {
			s.r.FetchAdd(t, zero)
		}
		prim.MarkLinPoint(s.w, t)
		return
	}
	if s.rp != nil {
		s.rp.FetchAddInt(t, s.pc.FieldDelta(s.prev[i], v, i))
	} else {
		s.r.FetchAdd(t, s.codec.Delta(interleave.SmallInt(s.prev[i]), interleave.SmallInt(v), i))
	}
	prim.MarkLinPoint(s.w, t)
	s.prev[i] = v
}

// Scan returns the current view.
func (s *FASnapshot) Scan(t prim.Thread) []int64 {
	return s.ScanInto(t, make([]int64, s.n))
}

// ScanInto is Scan writing the view into a caller-provided slice of length n
// (returned for convenience). On the machine-word engines it is
// allocation-free: one XADD(0) plus shift-and-mask on the single packed
// word; on the multi-word engine an epoch-validated collect — k relaxed
// XADD(0) word reads bracketed by epoch reads, retried until the epoch is
// unchanged. The multi-word scan is lock-free, not wait-free: every retry
// consumes an update's announce, and after scanSpinRounds invalidated
// collects the scan raises the writer-backoff hint so real-world update
// storms cannot starve it indefinitely.
//
// The multi-word scan deliberately declares no linearization-point
// certificate: unlike every single-register operation in this package, it
// has NO fixed own-step linearization point — whether a concurrent
// not-yet-announced update is included in the view depends on the timing of
// the update's XADD relative to the scan's read of that one word, so no
// single marked step orders the scan against updates' marked XADDs on every
// execution (the package tests pin the certificate checker rejecting any
// such marking). Strong linearizability is instead decided by the
// execution-tree game checker, exactly as for internal/shard's
// epoch-validated combining reads.
func (s *FASnapshot) ScanInto(t prim.Thread, view []int64) []int64 {
	if len(view) != s.n {
		panic(fmt.Sprintf("core: FASnapshot.ScanInto: view has length %d, want %d", len(view), s.n))
	}
	if s.words != nil {
		e := s.epoch.FetchAddInt(t, 0)
		raised := false
		for spins := 0; ; spins++ {
			s.collectWords(t, view)
			e2 := s.epoch.FetchAddInt(t, 0)
			if e2 == e {
				if raised {
					s.scanWait.Add(-1)
				}
				return view
			}
			e = e2
			if spins == scanSpinRounds && !raised {
				raised = true
				s.scanWait.Add(1)
			}
		}
	}
	if s.rp != nil {
		word := s.rp.FetchAddInt(t, 0)
		prim.MarkLinPoint(s.w, t)
		for i := range view {
			view[i] = s.pc.Lane(word, i)
		}
		return view
	}
	word := s.r.FetchAdd(t, zero)
	prim.MarkLinPoint(s.w, t)
	for i, lane := range s.codec.Decode(word) {
		view[i] = lane.Int64()
	}
	return view
}

// collectWords reads the k words once, in order, decoding each into view: a
// single unvalidated collect. It is the body of the validated scan — and, on
// its own, the negative exhibit: updates to different words can be observed
// inconsistently with their real-time order, so scanNaiveInto (the collect
// with no epoch validation) is not linearizable; the package tests pin the
// counterexample.
func (s *FASnapshot) collectWords(t prim.Thread, view []int64) {
	for j, w := range s.words {
		s.mp.GatherWord(w.FetchAddInt(t, 0), j, view)
	}
}

// scanNaiveInto is the unvalidated multi-word collect, kept exclusively for
// the negative model check (like shard's readSingleCollect).
func (s *FASnapshot) scanNaiveInto(t prim.Thread, view []int64) []int64 {
	if len(view) != s.n {
		panic(fmt.Sprintf("core: FASnapshot.scanNaiveInto: view has length %d, want %d", len(view), s.n))
	}
	s.collectWords(t, view)
	return view
}

// Width returns the current bit length of the shared register (see
// FAMaxRegister.Width): on the multi-word engine, the total occupied bits
// summed over the k component words. It reads the register with
// fetch&add(0) steps.
func (s *FASnapshot) Width(t prim.Thread) int {
	switch {
	case s.rp != nil:
		return bits.Len64(uint64(s.rp.FetchAddInt(t, 0)))
	case s.words != nil:
		total := 0
		for _, w := range s.words {
			total += bits.Len64(uint64(w.FetchAddInt(t, 0)))
		}
		return total
	default:
		return s.r.FetchAdd(t, zero).BitLen()
	}
}
