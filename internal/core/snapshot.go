package core

import (
	"fmt"
	"math/bits"

	"stronglin/internal/interleave"
	"stronglin/internal/prim"
)

// SnapshotAPI is the single-writer atomic snapshot interface used by the
// simple-type construction: Update writes the caller's component, Scan
// returns the full view.
type SnapshotAPI interface {
	Update(t prim.Thread, v int64)
	Scan(t prim.Thread) []int64
}

// FASnapshot is the wait-free strongly-linearizable n-component
// single-writer atomic snapshot of Section 3.2, built from a single
// unbounded fetch&add register R.
//
// Component i (owned by process i) is stored, in binary, in bit lane i of R.
// Update(v) computes the lane delta posAdj−negAdj between the binary
// encodings of the previous and the new value and applies it with one
// fetch&add; Update with an unchanged value performs fetch&add(R, 0). Scan
// is fetch&add(R, 0) followed by local decoding.
//
// Every operation performs exactly one fetch&add, which is its linearization
// point.
//
// With WithSnapshotBound the register becomes a single machine word when the
// encoding fits (n x FieldWidth(maxValue) <= 63 bits): each component is a
// fixed-width binary field of a hardware XADD register (prim.FetchAddInt).
// Update is one XADD of the signed in-lane field delta (to−from, shifted to
// the caller's field — the posAdj−negAdj of the wide path collapsed to one
// subtraction), Scan is one XADD(0) followed by shift-and-mask decoding.
// Each operation is still exactly one fetch&add on one register, so the
// linearization argument is unchanged; only the per-operation cost drops (no
// big.Int arithmetic, no allocation). When the bound does not fit, the
// constructor silently falls back to the wide register with the bound still
// enforced.
type FASnapshot struct {
	n     int
	codec interleave.Codec
	w     prim.World
	r     prim.FetchAdd    // wide engine; nil when packed
	rp    prim.FetchAddInt // packed engine; nil when wide
	pc    interleave.Packed
	bound int64   // -1: unbounded (wide); >= 0: declared max component value
	prev  []int64 // prev[i] is accessed only by process i
}

var _ SnapshotAPI = (*FASnapshot)(nil)

// SnapshotOption configures NewFASnapshot.
type SnapshotOption func(*FASnapshot)

// WithSnapshotBound declares that every component value is in [0, maxValue],
// and makes Update panic on values beyond it (like negatives). When the
// binary field encoding fits a machine word (n x FieldWidth(maxValue) <= 63
// bits) the construction runs over a single prim.FetchAddInt register — the
// packed fast path; when it does not fit, the constructor falls back to the
// wide register. The bound is enforced either way, so behaviour does not
// depend on which engine was selected.
func WithSnapshotBound(maxValue int64) SnapshotOption {
	if maxValue < 0 {
		panic(fmt.Sprintf("core: WithSnapshotBound(%d): bound must be non-negative", maxValue))
	}
	return func(s *FASnapshot) { s.bound = maxValue }
}

// NewFASnapshot allocates the construction for n processes using a single
// fetch&add register named name+".R". Components are initially 0.
func NewFASnapshot(w prim.World, name string, n int, opts ...SnapshotOption) *FASnapshot {
	s := &FASnapshot{
		n:     n,
		codec: interleave.MustNew(n),
		w:     w,
		bound: -1,
		prev:  make([]int64, n),
	}
	for _, o := range opts {
		o(s)
	}
	if s.bound >= 0 {
		if pc, ok := interleave.NewPacked(n, interleave.FieldWidth(s.bound)); ok {
			s.pc = pc
			s.rp = w.FetchAddInt(name+".R", 0)
			return s
		}
	}
	s.r = w.FetchAdd(name + ".R")
	return s
}

// Packed reports whether the register is the packed machine word.
func (s *FASnapshot) Packed() bool { return s.rp != nil }

// Bound returns the declared maximum component value, or -1 when unbounded.
func (s *FASnapshot) Bound() int64 { return s.bound }

// Update writes v (which must be non-negative) to the caller's component.
func (s *FASnapshot) Update(t prim.Thread, v int64) {
	if v < 0 {
		panic(fmt.Sprintf("core: FASnapshot.Update(%d): values must be non-negative", v))
	}
	if s.bound >= 0 && v > s.bound {
		panic(fmt.Sprintf("core: FASnapshot.Update(%d): value exceeds the declared bound %d", v, s.bound))
	}
	i := t.ID()
	if v == s.prev[i] {
		if s.rp != nil {
			s.rp.FetchAddInt(t, 0)
		} else {
			s.r.FetchAdd(t, zero)
		}
		prim.MarkLinPoint(s.w, t)
		return
	}
	if s.rp != nil {
		s.rp.FetchAddInt(t, s.pc.FieldDelta(s.prev[i], v, i))
	} else {
		s.r.FetchAdd(t, s.codec.Delta(interleave.SmallInt(s.prev[i]), interleave.SmallInt(v), i))
	}
	prim.MarkLinPoint(s.w, t)
	s.prev[i] = v
}

// Scan returns the current view.
func (s *FASnapshot) Scan(t prim.Thread) []int64 {
	return s.ScanInto(t, make([]int64, s.n))
}

// ScanInto is Scan writing the view into a caller-provided slice of length n
// (returned for convenience). On the packed engine it is allocation-free:
// one XADD(0) plus shift-and-mask decoding — the hot-path form used by the
// simple-type construction and the E-SNAP benchmarks.
func (s *FASnapshot) ScanInto(t prim.Thread, view []int64) []int64 {
	if len(view) != s.n {
		panic(fmt.Sprintf("core: FASnapshot.ScanInto: view has length %d, want %d", len(view), s.n))
	}
	if s.rp != nil {
		word := s.rp.FetchAddInt(t, 0)
		prim.MarkLinPoint(s.w, t)
		for i := range view {
			view[i] = s.pc.Lane(word, i)
		}
		return view
	}
	word := s.r.FetchAdd(t, zero)
	prim.MarkLinPoint(s.w, t)
	for i, lane := range s.codec.Decode(word) {
		view[i] = lane.Int64()
	}
	return view
}

// Width returns the current bit length of the shared register (see
// FAMaxRegister.Width). It reads R with a fetch&add(0) step.
func (s *FASnapshot) Width(t prim.Thread) int {
	if s.rp != nil {
		return bits.Len64(uint64(s.rp.FetchAddInt(t, 0)))
	}
	return s.r.FetchAdd(t, zero).BitLen()
}
