package core

import (
	"fmt"
	"math/bits"
	"runtime"
	"sync/atomic"

	"stronglin/internal/interleave"
	"stronglin/internal/prim"
)

// SnapshotAPI is the single-writer atomic snapshot interface used by the
// simple-type construction: Update writes the caller's component, Scan
// returns the full view.
type SnapshotAPI interface {
	Update(t prim.Thread, v int64)
	Scan(t prim.Thread) []int64
}

// FASnapshot is the wait-free strongly-linearizable n-component
// single-writer atomic snapshot of Section 3.2, built from a single
// unbounded fetch&add register R.
//
// Component i (owned by process i) is stored, in binary, in bit lane i of R.
// Update(v) computes the lane delta posAdj−negAdj between the binary
// encodings of the previous and the new value and applies it with one
// fetch&add; Update with an unchanged value performs fetch&add(R, 0). Scan
// is fetch&add(R, 0) followed by local decoding.
//
// Every operation performs exactly one fetch&add, which is its linearization
// point.
//
// # Engine selection
//
// With WithSnapshotBound the constructor picks the cheapest register
// substrate the declared bound admits, by the codec's own budget arithmetic:
//
//   - single packed word, when n x FieldWidth(maxValue) <= 63: each component
//     is a fixed-width binary field of one hardware XADD register
//     (prim.FetchAddInt). Update is one XADD of the signed in-lane field
//     delta, Scan one XADD(0) plus shift-and-mask. One fetch&add per
//     operation: the wide linearization argument transfers unchanged.
//
//   - multi-word, when FieldWidth(maxValue) <= interleave.LaneBits (48): the
//     components are striped across k XADD words (interleave.MultiPacked),
//     each carrying a 16-bit per-word sequence field above its lane payload.
//     Word 0's sequence field doubles as the ANNOUNCE counter. Update is an
//     XADD on the owning word — the field delta plus a sequence bump,
//     landing atomically, the linearization point — followed, when the
//     owning word is not word 0, by an announce bump of word 0's sequence
//     field; an update owned by word 0 announces and publishes in the same
//     single XADD. Updates are wait-free with a fixed own-step linearization
//     point. Scan is a DOUBLE COLLECT with a closing announce check: read
//     the k words repeatedly until two consecutive collects are identical
//     (payload AND sequence fields), then re-read word 0 as the final step
//     and return only if it still matches the validated pair, feeding every
//     failed read back in as the next round's baseline. Scans are lock-free
//     (a retry witnesses a concurrent update's step) with a retry-bounded
//     writer-backoff hint so real-world update storms cannot starve them.
//
//     BOTH validations are load-bearing, and the package tests pin a
//     counterexample for each half alone. Announce-only validation (one
//     collect bracketed by announce-counter reads) is not even linearizable:
//     an update's payload lands before its announce, so two in-flight
//     updates on different words can be split inconsistently between two
//     concurrent scans that both validate — incomparable views no update
//     order explains (the sequence bump landing IN the payload XADD is what
//     closes that window). Double collect alone is linearizable — two
//     identical consecutive collects pin the k-word state to a real instant
//     inside the scan, so every view is a true state and any two views are
//     comparable — but NOT strongly linearizable: the pinned instant may lie
//     in the PAST, so an update can land after a word's final validated read
//     and RETURN while the scan is finishing, forcing the prefix-closed
//     linearization to commit the scan's view before it is determined (a
//     second writer still threatens the unread words). The closing announce
//     check restores the commitment: every update that announced before the
//     scan's final step is either in the view or forces a retry, so a
//     returned view reflects all updates that completed before the scan
//     did, and appending the scan after them is always consistent. Strong
//     linearizability is decided mechanically by the execution-tree game
//     checker, including on the cross-word configurations where each lone
//     validation fails.
//
//   - wide big.Int register, when no bound is declared — or when the bound
//     needs 49..63-bit fields, which exceed the validated multi-word
//     payload budget (one 48+-bit field per word buys little over a wide
//     limb anyway).
//
// The bound is enforced identically on every engine (Update past it panics),
// so behaviour never depends on which substrate was selected.
type FASnapshot struct {
	n     int
	codec interleave.Codec
	w     prim.World
	r     prim.FetchAdd    // wide engine; nil otherwise
	rp    prim.FetchAddInt // single packed word; nil otherwise
	pc    interleave.Packed
	mp    interleave.MultiPacked
	words []prim.FetchAddInt // multi-word engine; nil otherwise
	bound int64              // -1: unbounded (wide); >= 0: declared max component value
	prev  []int64            // prev[i] is accessed only by process i

	// scanWait is the real-world writer-backoff hint: a scan whose collect
	// keeps getting invalidated raises it, and updaters yield the processor
	// before their XADD while it is up. It is scheduling advice outside the
	// shared-memory protocol (the adversarial simulated scheduler explores
	// all timings regardless), so it affects no correctness argument.
	scanWait atomic.Int32
}

var _ SnapshotAPI = (*FASnapshot)(nil)

// scanSpinRounds is how many invalidated collects a multi-word scan absorbs
// before raising the writer-backoff hint.
const scanSpinRounds = 2

// scanStackWords is the largest word count whose collect buffer lives on the
// scanning goroutine's stack; larger registers fall back to a heap buffer
// per scan. 64 words cover every multi-word shape the serving stack builds
// (up to 64 full-width 48-bit lanes, or thousands of narrow ones).
const scanStackWords = 64

// SnapshotOption configures NewFASnapshot.
type SnapshotOption func(*FASnapshot)

// WithSnapshotBound declares that every component value is in [0, maxValue],
// and makes Update panic on values beyond it (like negatives). The bound
// selects the register engine (see the type comment): one packed machine
// word when n x FieldWidth(maxValue) <= 63 bits, the multi-word k-XADD
// engine when the field fits a validated word (FieldWidth <=
// interleave.LaneBits), the wide big.Int register otherwise. The bound is
// enforced on every engine, so behaviour does not depend on which was
// selected.
func WithSnapshotBound(maxValue int64) SnapshotOption {
	if maxValue < 0 {
		panic(fmt.Sprintf("core: WithSnapshotBound(%d): bound must be non-negative", maxValue))
	}
	return func(s *FASnapshot) { s.bound = maxValue }
}

// NewFASnapshot allocates the construction for n processes using a single
// fetch&add register named name+".R" (or, on the multi-word engine, words
// name+".R0".."R<k-1>"). Components are initially 0.
func NewFASnapshot(w prim.World, name string, n int, opts ...SnapshotOption) *FASnapshot {
	s := &FASnapshot{
		n:     n,
		codec: interleave.MustNew(n),
		w:     w,
		bound: -1,
		prev:  make([]int64, n),
	}
	for _, o := range opts {
		o(s)
	}
	if s.bound >= 0 {
		width := interleave.FieldWidth(s.bound)
		if pc, ok := interleave.NewPacked(n, width); ok {
			s.pc = pc
			s.rp = w.FetchAddInt(name+".R", 0)
			return s
		}
		if mp, ok := interleave.NewMultiPacked(n, width); ok {
			s.mp = mp
			s.words = make([]prim.FetchAddInt, mp.Words())
			for j := range s.words {
				s.words[j] = w.FetchAddInt(fmt.Sprintf("%s.R%d", name, j), 0)
			}
			return s
		}
	}
	s.r = w.FetchAdd(name + ".R")
	return s
}

// Packed reports whether the register is a single packed machine word.
func (s *FASnapshot) Packed() bool { return s.rp != nil }

// Multiword reports whether the components are striped across the k-XADD
// multi-word engine.
func (s *FASnapshot) Multiword() bool { return s.words != nil }

// Words returns the number of machine words holding components: 1 on the
// single packed word, k on the multi-word engine, 0 on the wide register
// (whose width is unbounded).
func (s *FASnapshot) Words() int {
	switch {
	case s.rp != nil:
		return 1
	case s.words != nil:
		return len(s.words)
	default:
		return 0
	}
}

// Engine names the selected register substrate: "packed", "multiword" or
// "wide".
func (s *FASnapshot) Engine() string {
	switch {
	case s.rp != nil:
		return "packed"
	case s.words != nil:
		return "multiword"
	default:
		return "wide"
	}
}

// Bound returns the declared maximum component value, or -1 when unbounded.
func (s *FASnapshot) Bound() int64 { return s.bound }

// Update writes v (which must be non-negative) to the caller's component.
// On the single-register engines Update is one fetch&add, its linearization
// point. On the multi-word engine the payload XADD is the linearization
// point, and it carries the owning word's sequence-field bump in the SAME
// atomic step — so there is never a window in which an update's payload is
// visible to collects but invisible to their validation: at every instant a
// word's sequence field counts exactly the value changes its payload
// reflects. The announce bump of word 0's sequence field that follows (for
// updates not owned by word 0; a word-0 update's payload XADD is already
// its announce) marks completion for the scans' closing check: an update is
// not complete until it has announced, and a scan whose view misses the
// payload retries rather than returning once the announce lands — which is
// what lets the prefix-closed linearization leave an in-flight update after
// any scan it is invisible to (see the type comment).
func (s *FASnapshot) Update(t prim.Thread, v int64) {
	if v < 0 {
		panic(fmt.Sprintf("core: FASnapshot.Update(%d): values must be non-negative", v))
	}
	if s.bound >= 0 && v > s.bound {
		panic(fmt.Sprintf("core: FASnapshot.Update(%d): value exceeds the declared bound %d", v, s.bound))
	}
	i := t.ID()
	if s.words != nil {
		if s.scanWait.Load() != 0 {
			runtime.Gosched() // back off: a scan is being starved by updates
		}
		if v == s.prev[i] {
			// Unchanged value: the XADD(0) on the owning word is the whole
			// operation (its linearization point, like the packed and wide
			// fast paths). The word is untouched, so there is no change for
			// a collect to observe, nothing for its validation to miss, and
			// no completion worth announcing — a scan linearizes correctly
			// on either side of this operation.
			s.words[s.mp.WordOf(i)].FetchAddInt(t, 0)
			prim.MarkLinPoint(s.w, t)
			return
		}
		// Field delta plus sequence bump, one XADD: the linearization point.
		// For a word-0 owner the bump is also the announce.
		w := s.mp.WordOf(i)
		s.words[w].FetchAddInt(t, s.mp.FieldDelta(s.prev[i], v, i))
		prim.MarkLinPoint(s.w, t)
		s.prev[i] = v
		if w != 0 {
			s.words[0].FetchAddInt(t, interleave.SeqIncrement) // announce completion
		}
		return
	}
	if v == s.prev[i] {
		if s.rp != nil {
			s.rp.FetchAddInt(t, 0)
		} else {
			s.r.FetchAdd(t, zero)
		}
		prim.MarkLinPoint(s.w, t)
		return
	}
	if s.rp != nil {
		s.rp.FetchAddInt(t, s.pc.FieldDelta(s.prev[i], v, i))
	} else {
		s.r.FetchAdd(t, s.codec.Delta(interleave.SmallInt(s.prev[i]), interleave.SmallInt(v), i))
	}
	prim.MarkLinPoint(s.w, t)
	s.prev[i] = v
}

// Scan returns the current view.
func (s *FASnapshot) Scan(t prim.Thread) []int64 {
	return s.ScanInto(t, make([]int64, s.n))
}

// ScanInto is Scan writing the view into a caller-provided slice of length n
// (returned for convenience). On the machine-word engines it is
// allocation-free (on the multi-word engine: up to scanStackWords words):
// one XADD(0) plus shift-and-mask on the single packed word; on the
// multi-word engine a DOUBLE COLLECT with a closing announce check — read
// the k words repeatedly until two consecutive collects are identical (each
// failed read seeding the next round's baseline), then re-read word 0 as
// the final step and return only if it still matches the pair.
//
// The double collect makes the view a true state: identical means
// bit-identical words, sequence fields included, and every value-changing
// update bumps its word's sequence field in the same XADD as its payload
// delta, so two identical reads of word j pin j as unmodified throughout
// the interval between them (up to the 2^16 seqlock wrap caveat, see
// interleave.MultiPacked). The k per-word intervals of a validated pair all
// contain the instant between its two collects, so the returned view IS the
// register state at a real moment inside the scan — in particular, any two
// scans return states of the same single timeline, so their views are
// always comparable. The closing word-0 read then anchors that moment
// against completions: every update announces on word 0's sequence field
// after (or, for word-0 owners, in the same XADD as) its payload, so an
// update that announced before the scan's final step either has its payload
// in the view — its announce predates the pair's word-0 reads, its XADD
// predates the announce, and word order puts the pair's read of its word
// later still, so a pair the XADD did not invalidate read the word after
// the payload landed — or moved word 0's sequence field and forced a retry.
// A returned view therefore reflects every update that completed before the
// scan returned, which is exactly what lets the scan be APPENDED to a
// prefix-closed linearization that has already committed those updates; the
// same argument is why a failed check only reseeds the baseline rather than
// discarding the pair history.
//
// Scans are lock-free, not wait-free: a retry witnesses a concurrent
// update's step, and after scanSpinRounds invalidated rounds the scan
// raises the writer-backoff hint so real-world update storms cannot starve
// it indefinitely.
//
// The multi-word scan deliberately declares no linearization-point
// certificate: its linearization point is pinned by the pair of collects
// that validates, which is only identified in hindsight — while those reads
// execute, whether the pair validates (and survives its closing check)
// still depends on updates that have not happened — so no mark placed
// during execution names the right step on every branch (the package tests
// pin the certificate checker rejecting any fixed marking). Strong
// linearizability is instead decided by the execution-tree game checker,
// exactly as for internal/shard's epoch-validated combining reads.
func (s *FASnapshot) ScanInto(t prim.Thread, view []int64) []int64 {
	if len(view) != s.n {
		panic(fmt.Sprintf("core: FASnapshot.ScanInto: view has length %d, want %d", len(view), s.n))
	}
	if s.words != nil {
		var stack [scanStackWords]int64
		cur := collectBuf(&stack, len(s.words))
		s.collectWords(t, cur)
		raised := false
		for spins := 0; ; spins++ {
			valid := true
			for j := range s.words {
				w := s.words[j].FetchAddInt(t, 0)
				if w != cur[j] {
					// This round failed, but its reads are the next round's
					// baseline.
					valid = false
					cur[j] = w
				}
			}
			if valid {
				// Closing announce check: the scan's final shared step.
				w0 := s.words[0].FetchAddInt(t, 0)
				if w0 == cur[0] {
					break
				}
				cur[0] = w0 // an announce landed: retry from the new baseline
			}
			if spins == scanSpinRounds && !raised {
				raised = true
				s.scanWait.Add(1)
			}
		}
		if raised {
			s.scanWait.Add(-1)
		}
		for j, w := range cur {
			s.mp.GatherWord(w, j, view)
		}
		return view
	}
	if s.rp != nil {
		word := s.rp.FetchAddInt(t, 0)
		prim.MarkLinPoint(s.w, t)
		for i := range view {
			view[i] = s.pc.Lane(word, i)
		}
		return view
	}
	word := s.r.FetchAdd(t, zero)
	prim.MarkLinPoint(s.w, t)
	for i, lane := range s.codec.Decode(word) {
		view[i] = lane.Int64()
	}
	return view
}

// collectBuf returns a k-word collect buffer backed by the caller's stack
// array when it fits, falling back to the heap for larger registers (the
// call inlines, so the array does not escape on the common path).
func collectBuf(stack *[scanStackWords]int64, k int) []int64 {
	if k <= scanStackWords {
		return stack[:k]
	}
	return make([]int64, k)
}

// collectWords reads the k words once, in order: a single unvalidated
// collect. It is one round's reads of the validated scan — and, decoded on
// its own, the negative exhibit: updates to different words can be observed
// inconsistently with their real-time order, so scanNaiveInto (a lone
// collect with no second, validating one) is not linearizable; the package
// tests pin the counterexample.
func (s *FASnapshot) collectWords(t prim.Thread, words []int64) {
	for j := range s.words {
		words[j] = s.words[j].FetchAddInt(t, 0)
	}
}

// scanUnanchoredInto is the double collect WITHOUT the closing announce
// check, kept exclusively for the negative model check: two consecutive
// identical collects pin a true state, so it is linearizable — but the
// pinned instant may lie in the past of an update that has already
// completed, and with a second writer threatening the other word no eager
// linearization of the pending scan survives every future, so it is NOT
// strongly linearizable (the package tests pin the game checker finding
// exactly that). It is the reason the shipped scan's final step re-reads
// word 0.
func (s *FASnapshot) scanUnanchoredInto(t prim.Thread, view []int64) []int64 {
	if len(view) != s.n {
		panic(fmt.Sprintf("core: FASnapshot.scanUnanchoredInto: view has length %d, want %d", len(view), s.n))
	}
	var stack [scanStackWords]int64
	cur := collectBuf(&stack, len(s.words))
	s.collectWords(t, cur)
	for {
		valid := true
		for j := range s.words {
			w := s.words[j].FetchAddInt(t, 0)
			if w != cur[j] {
				valid = false
				cur[j] = w
			}
		}
		if valid {
			break
		}
	}
	for j, w := range cur {
		s.mp.GatherWord(w, j, view)
	}
	return view
}

// scanNaiveInto is the unvalidated multi-word collect, kept exclusively for
// the negative model check (like shard's readSingleCollect).
func (s *FASnapshot) scanNaiveInto(t prim.Thread, view []int64) []int64 {
	if len(view) != s.n {
		panic(fmt.Sprintf("core: FASnapshot.scanNaiveInto: view has length %d, want %d", len(view), s.n))
	}
	var stack [scanStackWords]int64
	cur := collectBuf(&stack, len(s.words))
	s.collectWords(t, cur)
	for j, w := range cur {
		s.mp.GatherWord(w, j, view)
	}
	return view
}

// Width returns the current bit length of the shared register (see
// FAMaxRegister.Width): on the multi-word engine, the total occupied lane
// payload bits summed over the k component words (the per-word sequence
// fields are bookkeeping, not component payload, and are not counted). It
// reads the register with fetch&add(0) steps.
func (s *FASnapshot) Width(t prim.Thread) int {
	switch {
	case s.rp != nil:
		return bits.Len64(uint64(s.rp.FetchAddInt(t, 0)))
	case s.words != nil:
		total := 0
		for _, w := range s.words {
			total += s.mp.PayloadLen(w.FetchAddInt(t, 0))
		}
		return total
	default:
		return s.r.FetchAdd(t, zero).BitLen()
	}
}
