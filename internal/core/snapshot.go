package core

import (
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"

	"stronglin/internal/interleave"
	"stronglin/internal/obs"
	"stronglin/internal/prim"
)

// SnapshotAPI is the single-writer atomic snapshot interface used by the
// simple-type construction: Update writes the caller's component, Scan
// returns the full view.
type SnapshotAPI interface {
	Update(t prim.Thread, v int64)
	Scan(t prim.Thread) []int64
}

// FASnapshot is the wait-free strongly-linearizable n-component
// single-writer atomic snapshot of Section 3.2, built from a single
// unbounded fetch&add register R.
//
// Component i (owned by process i) is stored, in binary, in bit lane i of R.
// Update(v) computes the lane delta posAdj−negAdj between the binary
// encodings of the previous and the new value and applies it with one
// fetch&add; Update with an unchanged value performs fetch&add(R, 0). Scan
// is fetch&add(R, 0) followed by local decoding.
//
// Every operation performs exactly one fetch&add, which is its linearization
// point.
//
// # Engine selection
//
// With WithSnapshotBound the constructor picks the cheapest register
// substrate the declared bound admits, by the codec's own budget arithmetic:
//
//   - single packed word, when n x FieldWidth(maxValue) <= 63: each component
//     is a fixed-width binary field of one hardware XADD register
//     (prim.FetchAddInt). Update is one XADD of the signed in-lane field
//     delta, Scan one XADD(0) plus shift-and-mask. One fetch&add per
//     operation: the wide linearization argument transfers unchanged.
//
//   - multi-word, when FieldWidth(maxValue) <= interleave.LaneBits (48): the
//     components are striped across k XADD words (interleave.MultiPacked),
//     each carrying a 16-bit per-word sequence field above its lane payload.
//     Word 0's sequence field doubles as the ANNOUNCE counter. Update is an
//     XADD on the owning word — the field delta plus a sequence bump,
//     landing atomically, the linearization point — followed, when the
//     owning word is not word 0, by an announce bump of word 0's sequence
//     field; an update owned by word 0 announces and publishes in the same
//     single XADD. Updates are wait-free with a fixed own-step linearization
//     point. Scan is a DOUBLE COLLECT with an ANCHORED word order: read the
//     k words repeatedly — words 1..k-1 first, word 0 LAST — until two
//     consecutive collects are identical (payload AND sequence fields),
//     feeding every failed read back in as the next round's baseline. The
//     validating round's own word-0 read is then the scan's final shared
//     step and doubles as the closing announce check: an update announced
//     before it either has its payload in the pair's baseline or landed
//     inside the pair's interval for some word and invalidated the round —
//     so no separate closing re-read is needed (word 0 read FIRST, the
//     unanchored order, is the negative exhibit).
//
//     Scans that keep failing are HELPED. A scan that exhausts its retry
//     budget raises a pressure register (one XADD; the PR 4 writer-backoff
//     hint promoted from scheduling advice to a protocol step). Every
//     value-changing update reads the pressure register after announcing;
//     while it is raised the updater performs a bounded validated collect of
//     its own — a double collect, no closing read — and deposits the raw
//     validated words in the help slot, a register holding the freshest
//     helper view keyed by its word-0 value (payload plus sequence/announce
//     field). A starving scan adopts the deposit: it re-reads word 0 as its
//     final view-determining step and takes the deposited view only if word
//     0 still equals the deposit's word 0 — the SAME closing announce check
//     the unhelped path performs against its own collect pair, so adoption
//     cannot resurrect a past state (an update announced after the helper's
//     validation moves word 0's sequence field and forces a retry; the
//     negative twin in the package tests pins that skipping this witness is
//     linearizable but NOT strongly linearizable). Adoption bounds the
//     scanner's own steps against the update storms that starve the plain
//     double collect — any single-updater storm in particular, since each
//     storm update must refresh the deposit before its next announce can
//     invalidate it (the progress witness in the package tests pins the
//     fixed own-step budget on the schedule that provably starves the
//     unhelped scan). Against adversarial multi-writer schedules a retry of
//     the adopt check still consumes a fresh announce, so scans remain
//     lock-free in the strict sense — the helpers shrink the starvation
//     window from the full k-word collect to the two steps between the slot
//     read and the word-0 witness (cf. the helping impossibilities around
//     consistent refereeing for why a scheduler this strong cannot be
//     defeated outright).
//
//     Validated views can additionally be CACHED (WithViewCache, opt-in):
//     a scan publishes its decoded view keyed by the collect's word-0 value,
//     and a later scan serves the cache after re-validating the anchor with
//     one fresh word-0 read — still its final view-determining step, the
//     identical closing announce witness — making the steady-state read-
//     mostly scan two register reads and a copy instead of a 2k-word double
//     collect (serving the cache without the fresh witness is pinned
//     linearizable-but-not-strongly-linearizable by its own negative twin).
//
//     BOTH validations are load-bearing, and the package tests pin a
//     counterexample for each half alone. Announce-only validation (one
//     collect bracketed by announce-counter reads) is not even linearizable:
//     an update's payload lands before its announce, so two in-flight
//     updates on different words can be split inconsistently between two
//     concurrent scans that both validate — incomparable views no update
//     order explains (the sequence bump landing IN the payload XADD is what
//     closes that window). Double collect alone is linearizable — two
//     identical consecutive collects pin the k-word state to a real instant
//     inside the scan, so every view is a true state and any two views are
//     comparable — but NOT strongly linearizable: the pinned instant may lie
//     in the PAST, so an update can land after a word's final validated read
//     and RETURN while the scan is finishing, forcing the prefix-closed
//     linearization to commit the scan's view before it is determined (a
//     second writer still threatens the unread words). The closing announce
//     check restores the commitment: every update that announced before the
//     scan's final step is either in the view or forces a retry, so a
//     returned view reflects all updates that completed before the scan
//     did, and appending the scan after them is always consistent. Strong
//     linearizability is decided mechanically by the execution-tree game
//     checker, including on the cross-word configurations where each lone
//     validation fails.
//
//   - wide big.Int register, when no bound is declared — or when the bound
//     needs 49..63-bit fields, which exceed the validated multi-word
//     payload budget (one 48+-bit field per word buys little over a wide
//     limb anyway).
//
// The bound is enforced identically on every engine (Update past it panics),
// so behaviour never depends on which substrate was selected.
type FASnapshot struct {
	n     int
	name  string
	codec interleave.Codec
	w     prim.World
	r     prim.FetchAdd    // wide engine; nil otherwise
	rp    prim.FetchAddInt // single packed word; nil otherwise
	pc    interleave.Packed
	mp    interleave.MultiPacked
	bound int64   // -1: unbounded (wide); >= 0: declared max component value
	prev  []int64 // prev[i] is accessed only by process i

	// Multi-word engine (nil on the single-register engines): eng is
	// generation 0 — the k component words, the pressure register counting
	// scans past their retry budget, the help slot holding the freshest
	// helper deposit, and the optional view cache. With live re-base on
	// (WithLiveRebase) eng is merely the FIRST generation: Rebase rolls the
	// state onto successors chained through the generation next pointers (see
	// rebase.go), and curGen[i] pins the generation process i last used
	// (process-local — curGen[i] is only accessed by process i; nil when
	// re-base is off, in which case eng is the engine forever). spinBudget is
	// how many invalidated rounds a scan absorbs before raising pressure
	// (WithScanRetryBudget).
	eng        *mwGen
	curGen     []*mwGen
	rebaseOn   bool
	genMu      sync.Mutex
	nextGens   map[int64]*mwGen
	spinBudget int
	cacheOn    bool

	// Telemetry (never read by the protocol). All counts are batched on the
	// SLOW path only — a scan that validates its first round and an update
	// that owes no help touch none of them, so the instrumented fast paths
	// carry zero added atomic operations. helpDeposits/scanAdopts predate the
	// rest; scanRetries counts failed validation rounds, pressureRaises
	// counts raise episodes (scans that exhausted their budget), adoptMisses
	// counts adoption attempts whose closing word-0 witness failed.
	helpDeposits   atomic.Int64
	scanAdopts     atomic.Int64
	scanRetries    atomic.Int64
	pressureRaises atomic.Int64
	adoptMisses    atomic.Int64

	// View-cache telemetry, same slow-path-only discipline: misses and
	// refreshes precede/follow a full collect anyway; hits are counted only
	// via the optional met.CacheHits (the hit path is the one the cache
	// exists to keep at two loads and a copy).
	cacheMisses    atomic.Int64
	cacheRefreshes atomic.Int64

	// rebaseCounters adds the live re-base telemetry (rebase.go), same
	// slow-path-only discipline: cutovers, parks and diverts are rare by
	// construction.
	rebaseCounters

	// met is the optional scrape-layer instrumentation (WithSnapshotObs);
	// nil fields are no-ops, observed on contended completions only.
	met obs.SnapMetrics
}

// mwDeposit is a helper's validated collect: the raw k words of a double
// collect whose two reads were bit-identical, words[0] carrying the word-0
// payload+sequence value the adopting scan's closing witness must still see.
// The slice is immutable once deposited. An empty words slice is the
// no-deposit sentinel: the slot's initial value, restored by the last
// raised scan when it lowers pressure.
type mwDeposit struct {
	words []int64
}

// mwCachedView is a view-cache entry: the decoded view of a previously
// validated collect together with that collect's word-0 value — payload plus
// sequence/announce field — as the ANCHOR. A scan that reads the entry and
// then sees the anchor unchanged in one fresh word-0 read has re-run the
// closing announce check the full collect ends with: every value-changing
// update moves word 0's sequence field when it completes, so an unchanged
// anchor certifies the cached view is still the current state (up to the
// sequence fields' mod-2^16 wrap — see ScanInto on the cache's wrap window).
// Both slices are immutable once published. A nil view is the cold sentinel,
// the register's initial value.
type mwCachedView struct {
	anchor int64
	view   []int64
}

var _ SnapshotAPI = (*FASnapshot)(nil)

// scanSpinRounds is the default retry budget: how many invalidated collects
// a multi-word scan absorbs before raising the pressure register and trying
// to adopt helper deposits (WithScanRetryBudget overrides it).
const scanSpinRounds = 2

// helperRounds bounds the validation attempts of an updater's help collect,
// keeping updates wait-free: a helper whose collect is invalidated gives up
// — the invalidating update inherits the obligation at its own pressure
// check. One attempt suffices: an uninterfered helper always validates, and
// under interference the interferer re-helps (the bound also keeps the
// helped configurations inside the model checker's exploration budget).
const helperRounds = 1

// scanStackWords is the largest word count whose collect buffer lives on the
// scanning goroutine's stack; larger registers fall back to a heap buffer
// per scan. 64 words cover every multi-word shape the serving stack builds
// (up to 64 full-width 48-bit lanes, or thousands of narrow ones).
const scanStackWords = 64

// SnapshotOption configures NewFASnapshot.
type SnapshotOption func(*FASnapshot)

// WithSnapshotBound declares that every component value is in [0, maxValue],
// and makes Update panic on values beyond it (like negatives). The bound
// selects the register engine (see the type comment): one packed machine
// word when n x FieldWidth(maxValue) <= 63 bits, the multi-word k-XADD
// engine when the field fits a validated word (FieldWidth <=
// interleave.LaneBits), the wide big.Int register otherwise. The bound is
// enforced on every engine, so behaviour does not depend on which was
// selected.
func WithSnapshotBound(maxValue int64) SnapshotOption {
	if maxValue < 0 {
		panic(fmt.Sprintf("core: WithSnapshotBound(%d): bound must be non-negative", maxValue))
	}
	return func(s *FASnapshot) { s.bound = maxValue }
}

// WithScanRetryBudget sets how many invalidated collect rounds a multi-word
// scan absorbs before raising the pressure register and adopting helper
// deposits (default scanSpinRounds). A budget of 0 requests help after the
// first failed round — the configuration the adopt-path model checks and the
// differential fuzzers use to make adoption the common case. The budget
// affects progress only, never the returned views: adopted and self-collected
// views pass the same closing word-0 witness. No-op on the single-register
// engines, whose scans are one fetch&add.
func WithScanRetryBudget(rounds int) SnapshotOption {
	if rounds < 0 {
		panic(fmt.Sprintf("core: WithScanRetryBudget(%d): budget must be non-negative", rounds))
	}
	return func(s *FASnapshot) { s.spinBudget = rounds }
}

// WithViewCache enables the multi-word engine's anchor-revalidated view cache
// (default disabled). With the cache on, every validated scan publishes its
// decoded view keyed by the collect's word-0 value, and a later scan first
// reads the cache and ONE fresh word-0 value: on an anchor match it returns
// the cached view with that read as its final view-determining step — the
// same closing announce witness the full collect and the adopt path end with,
// so the strong-linearizability argument is unchanged (serving the cache
// WITHOUT the fresh witness is the package tests' negative twin). A steady-
// state read-mostly scan is thereby two register reads and a copy instead of
// a 2k-word double collect. The cache is opt-in because it adds one shared
// register and two scan steps to the protocol: deployments (slserve, the
// benchmarks) turn it on, while crafted-schedule tests and exhaustive model
// checks of the bare collect/help protocol keep the default — the cached
// configurations carry their own dedicated model checks. Correctness never
// depends on the setting. No-op on the single-register engines, whose scans
// are already one fetch&add.
func WithViewCache(enabled bool) SnapshotOption {
	return func(s *FASnapshot) { s.cacheOn = enabled }
}

// WithSnapshotObs attaches optional scrape-layer instrumentation: histograms
// observed on CONTENDED scan completions only (a scan that validates its
// first round is never observed), so the uncontended fast path is untouched.
// Nil fields inside m are no-ops. The always-on HelpStats counters are kept
// regardless; this option adds the distribution view on top.
func WithSnapshotObs(m obs.SnapMetrics) SnapshotOption {
	return func(s *FASnapshot) { s.met = m }
}

// NewFASnapshot allocates the construction for n processes using a single
// fetch&add register named name+".R" (or, on the multi-word engine, words
// name+".R0".."R<k-1>"). Components are initially 0.
func NewFASnapshot(w prim.World, name string, n int, opts ...SnapshotOption) *FASnapshot {
	s := &FASnapshot{
		n:          n,
		name:       name,
		codec:      interleave.MustNew(n),
		w:          w,
		bound:      -1,
		spinBudget: scanSpinRounds,
		prev:       make([]int64, n),
	}
	for _, o := range opts {
		o(s)
	}
	if s.bound >= 0 {
		width := interleave.FieldWidth(s.bound)
		if pc, ok := interleave.NewPacked(n, width); ok {
			s.pc = pc
			s.rp = w.FetchAddInt(name+".R", 0)
			return s
		}
		if mp, ok := interleave.NewMultiPacked(n, width); ok {
			s.mp = mp
			s.eng = s.newGen(0)
			if s.rebaseOn {
				s.curGen = make([]*mwGen, n)
				for i := range s.curGen {
					s.curGen[i] = s.eng
				}
			}
			return s
		}
	}
	s.r = w.FetchAdd(name + ".R")
	return s
}

// Packed reports whether the register is a single packed machine word.
func (s *FASnapshot) Packed() bool { return s.rp != nil }

// Multiword reports whether the components are striped across the k-XADD
// multi-word engine.
func (s *FASnapshot) Multiword() bool { return s.eng != nil }

// Words returns the number of machine words holding components: 1 on the
// single packed word, k on the multi-word engine, 0 on the wide register
// (whose width is unbounded).
func (s *FASnapshot) Words() int {
	switch {
	case s.rp != nil:
		return 1
	case s.eng != nil:
		return len(s.eng.words)
	default:
		return 0
	}
}

// Engine names the selected register substrate: "packed", "multiword" or
// "wide".
func (s *FASnapshot) Engine() string {
	switch {
	case s.rp != nil:
		return "packed"
	case s.eng != nil:
		return "multiword"
	default:
		return "wide"
	}
}

// Bound returns the declared maximum component value, or -1 when unbounded.
func (s *FASnapshot) Bound() int64 { return s.bound }

// HelpStats reports the multi-word helping telemetry: helper deposits, scans
// that returned an adopted view, adoption attempts whose closing word-0
// witness failed, failed scan validation rounds, and pressure-raise episodes.
// All fields are 0 on the single-register engines (their one-step scans never
// need help or retry) and in any run where every scan validated its first
// round. Safe to call from any goroutine; counts are slow-path events only.
func (s *FASnapshot) HelpStats() obs.HelpStats {
	return obs.HelpStats{
		Deposits:    s.helpDeposits.Load(),
		Adopts:      s.scanAdopts.Load(),
		AdoptMisses: s.adoptMisses.Load(),
		Retries:     s.scanRetries.Load(),
		Raises:      s.pressureRaises.Load(),
	}
}

// CacheStats reports the multi-word view cache's telemetry: misses (scans
// that consulted the cache and fell into the full collect) and refreshes
// (cache publications) are always counted; hits are counted only when the
// optional WithSnapshotObs CacheHits counter is attached, keeping the
// uninstrumented hit path free of added atomics (see obs.CacheStats). All
// fields are 0 on the single-register engines and with the cache disabled.
func (s *FASnapshot) CacheStats() obs.CacheStats {
	return obs.CacheStats{
		Hits:      s.met.CacheHits.Load(),
		Misses:    s.cacheMisses.Load(),
		Refreshes: s.cacheRefreshes.Load(),
	}
}

// SeqWatermark returns the highest per-word sequence-field value currently
// visible across the component words — the lifetime watermark of the
// multi-word engine's mod-2^16 sequence budget (interleave.SeqBits). The
// counters wrap by design, so the watermark is a position within the current
// wrap window, not a total update count; approaching 2^16−1 means the next
// wrap is near, which is only a hazard if a scan could be descheduled across
// it (see interleave.MultiPacked). 0 on the single-register engines, which
// have no sequence fields. It reads the words with fetch&add(0) steps —
// the LIVE generation's words, with re-base on: a completed cutover resets
// the sequence fields, which is exactly the renewal the watermark drives.
func (s *FASnapshot) SeqWatermark(t prim.Thread) int64 {
	if s.eng == nil {
		return 0
	}
	g := s.eng
	if s.rebaseOn {
		g = s.liveGen(t)
	}
	var max int64
	for _, w := range g.words {
		if q := s.mp.Seq(w.FetchAddInt(t, 0)); q > max {
			max = q
		}
	}
	return max
}

// Update writes v (which must be non-negative) to the caller's component.
// On the single-register engines Update is one fetch&add, its linearization
// point. On the multi-word engine the payload XADD is the linearization
// point, and it carries the owning word's sequence-field bump in the SAME
// atomic step — so there is never a window in which an update's payload is
// visible to collects but invisible to their validation: at every instant a
// word's sequence field counts exactly the value changes its payload
// reflects. The announce bump of word 0's sequence field that follows (for
// updates not owned by word 0; a word-0 update's payload XADD is already
// its announce) marks completion for the scans' closing check: an update is
// not complete until it has announced, and a scan whose view misses the
// payload retries rather than returning once the announce lands — which is
// what lets the prefix-closed linearization leave an in-flight update after
// any scan it is invisible to (see the type comment).
//
// After announcing, a value-changing update reads the pressure register and,
// while any scan is past its retry budget, performs its help obligation: a
// bounded validated collect deposited in the help slot (helpScan). All the
// help steps trail the update's linearization point and touch neither its
// response nor its component, so the update's own argument is unchanged; the
// helper bound keeps updates wait-free (payload + announce + pressure read +
// at most (helperRounds+1)·k collect reads + one deposit).
func (s *FASnapshot) Update(t prim.Thread, v int64) {
	if v < 0 {
		panic(fmt.Sprintf("core: FASnapshot.Update(%d): values must be non-negative", v))
	}
	if s.bound >= 0 && v > s.bound {
		panic(fmt.Sprintf("core: FASnapshot.Update(%d): value exceeds the declared bound %d", v, s.bound))
	}
	i := t.ID()
	if s.eng != nil {
		g := s.engineFor(t)
		if v == s.prev[i] {
			// Unchanged value: the XADD(0) on the owning word is the whole
			// operation (its linearization point, like the packed and wide
			// fast paths). The word is untouched, so there is no change for
			// a collect to observe, nothing for its validation to miss, and
			// no completion worth announcing — a scan linearizes correctly
			// on either side of this operation, and since the update
			// invalidates no collect, it owes no help either. Safe even on a
			// generation a cutover has since retired: re-basing carries the
			// lane values over, so the successor's lane equals prev[i] too.
			g.words[s.mp.WordOf(i)].FetchAddInt(t, 0)
			prim.MarkLinPoint(s.w, t)
			return
		}
		// Field delta plus sequence bump, one XADD: the linearization point.
		// For a word-0 owner the bump is also the announce.
		w := s.mp.WordOf(i)
		g.words[w].FetchAddInt(t, s.mp.FieldDelta(s.prev[i], v, i))
		prim.MarkLinPoint(s.w, t)
		s.prev[i] = v
		if w != 0 {
			g.words[0].FetchAddInt(t, interleave.SeqIncrement) // announce completion
		}
		// The pressure poll — already a protocol step (the helping
		// obligation) — doubles as the cutover check: a raised count means a
		// scan is starving and the update owes a help collect; the cutover
		// bit means a migrator armed this generation and the update must
		// reconcile itself onto the successor (its XADD above may have missed
		// the final collect). Divert wins when both hold: the starving scan
		// is parking on the migrator's deposit anyway.
		if p := g.pressure.FetchAddInt(t, 0); p != 0 {
			if s.rebaseOn && p&mwCutoverBit != 0 {
				s.divertUpdate(t, g, i, v)
			} else {
				s.helpScan(t, g) // a scan is starving: collect and deposit for it
			}
		}
		return
	}
	if v == s.prev[i] {
		if s.rp != nil {
			s.rp.FetchAddInt(t, 0)
		} else {
			s.r.FetchAdd(t, zero)
		}
		prim.MarkLinPoint(s.w, t)
		return
	}
	if s.rp != nil {
		s.rp.FetchAddInt(t, s.pc.FieldDelta(s.prev[i], v, i))
	} else {
		s.r.FetchAdd(t, s.codec.Delta(interleave.SmallInt(s.prev[i]), interleave.SmallInt(v), i))
	}
	prim.MarkLinPoint(s.w, t)
	s.prev[i] = v
}

// Scan returns the current view.
func (s *FASnapshot) Scan(t prim.Thread) []int64 {
	return s.ScanInto(t, make([]int64, s.n))
}

// ScanInto is Scan writing the view into a caller-provided slice of length n
// (returned for convenience). On the machine-word engines it is
// allocation-free (on the multi-word engine: up to scanStackWords words):
// one XADD(0) plus shift-and-mask on the single packed word; on the
// multi-word engine an ANCHORED DOUBLE COLLECT — read the k words
// repeatedly, words 1..k-1 first and word 0 LAST, until two consecutive
// collects are identical (each failed read seeding the next round's
// baseline); the validating round's word-0 read, the scan's final shared
// step, is the closing announce check. With the view cache on (the default)
// the collect is preceded by the cached fast path: read the last validated
// view and one fresh word-0 value, and return the cached view when the
// anchor matches — see the fast-path comment in the body for why that single
// read carries the whole argument.
//
// The double collect makes the view a true state: identical means
// bit-identical words, sequence fields included, and every value-changing
// update bumps its word's sequence field in the same XADD as its payload
// delta, so two identical reads of word j pin j as unmodified throughout
// the interval between them (up to the 2^16 seqlock wrap caveat, see
// interleave.MultiPacked). The k per-word intervals of a validated pair all
// contain the instant between its two collects, so the returned view IS the
// register state at a real moment inside the scan — in particular, any two
// scans return states of the same single timeline, so their views are
// always comparable. The anchored order then makes the pair's LAST word-0
// read anchor that moment against completions: every update announces on
// word 0's sequence field after (or, for word-0 owners, in the same XADD
// as) its payload, so an update that announced before the scan's final step
// either announced before the pair's first word-0 read — its payload XADD
// predates the announce, and a pair it did not invalidate read its word
// after the payload landed, so the payload is in the view — or moved word
// 0's sequence field between the pair's two word-0 reads and invalidated
// the round. A returned view therefore reflects every update that completed
// before the scan returned, which is exactly what lets the scan be APPENDED
// to a prefix-closed linearization that has already committed those
// updates; the same argument is why a failed round only reseeds the
// baseline rather than discarding the pair history. Reading word 0 FIRST
// instead breaks exactly this anchoring (scanUnanchoredInto, the negative
// exhibit).
//
// Scans that exhaust their retry budget (WithScanRetryBudget, default
// scanSpinRounds) raise the pressure register, obliging every subsequent
// value-changing update to deposit a validated collect of its own in the
// help slot. From then on each round is preceded by a slot read, and a
// round that fails attempts an ADOPT: take the deposited view if the
// round's final word-0 read — the scan's most recent shared step, performed
// AFTER the slot read — still equals the deposit's word 0. That is the
// identical closing announce check applied to a helper's pair instead of
// the scan's own, so the adopted view carries the
// same guarantee: it is a true state (the helper's double collect) that
// every update announced before the scan's final step is in (else word 0's
// sequence field moved and the adopt retries). Adoption is what bounds a
// starved scanner's own steps: each storm update must refresh the deposit
// before announcing again, so any single-updater storm — the schedule that
// starves the plain double collect unboundedly, pinned by the progress
// witness — now feeds the scanner a fresh deposit it adopts within a fixed
// budget. Under adversarial multi-writer schedules an adopt retry still
// consumes a fresh announce (lock-free in the strict sense; see the type
// comment).
//
// The multi-word scan deliberately declares no linearization-point
// certificate: its linearization point is pinned by the pair of collects
// that validates (the helper's pair, on an adopted view), which is only
// identified in hindsight — while those reads execute, whether the pair
// validates (and survives its closing check) still depends on updates that
// have not happened — so no mark placed during execution names the right
// step on every branch (the package tests pin the certificate checker
// rejecting any fixed marking). Strong linearizability is instead decided
// by the execution-tree game checker, exactly as for internal/shard's
// epoch-validated combining reads.
func (s *FASnapshot) ScanInto(t prim.Thread, view []int64) []int64 {
	if len(view) != s.n {
		panic(fmt.Sprintf("core: FASnapshot.ScanInto: view has length %d, want %d", len(view), s.n))
	}
	if s.eng != nil {
		// With live re-base on, a scan may cross generations: a cutover
		// discovered mid-collect parks the scan (scanCollectGen returns the
		// installed successor) and the scan restarts there, re-pinning the
		// process's generation. With re-base off the loop body runs exactly
		// once on generation 0 — the pre-rebase protocol, step for step.
		g := s.engineFor(t)
		for {
			// View-cache fast path: read the cached entry, then ONE fresh word-0
			// read. On an anchor match that read — performed AFTER the cache read,
			// so it is the scan's final view-determining shared step — is the same
			// closing announce witness the full collect's validating round ends
			// with: every value-changing update moves word 0 (its own payload XADD
			// for a word-0 owner, its announce bump otherwise) before it completes,
			// so an unchanged word 0 certifies that no update completed since the
			// cached collect validated, and the cached view IS the current state.
			// A cutover cannot be served stale either: the migrator's ARM bumps
			// word 0 before any divert or install, so an anchor match also
			// certifies no cutover transition intervened. Serving the cache
			// without this witness is the negative twin (scanCachedStaleInto).
			// The anchor compares full word-0 values, so the sequence fields'
			// mod-2^16 wrap caveat widens here from one scan's window to the
			// cache entry's lifetime: a false match needs 2^16 announces to
			// elapse with word 0's payload lanes restored bit-identically while
			// some other word changed — exactly the window the watermark-driven
			// live re-base (rebase.go, internal/migrate) retires; active objects
			// refresh the entry on every miss, which keeps it short meanwhile.
			var cached *mwCachedView
			if g.cache != nil {
				if c, ok := g.cache.ReadAny(t).(*mwCachedView); ok && c.view != nil {
					if g.words[0].FetchAddInt(t, 0) == c.anchor {
						s.met.CacheHits.Inc()
						copy(view, c.view)
						return view
					}
					cached = c
				}
				s.cacheMisses.Add(1) // cold entry or a completed update moved the anchor
			}
			next := s.scanCollectGen(t, g, view, cached)
			if next == nil {
				return view
			}
			s.setGen(t, next)
			g = next
		}
	}
	if s.rp != nil {
		word := s.rp.FetchAddInt(t, 0)
		prim.MarkLinPoint(s.w, t)
		for i := range view {
			view[i] = s.pc.Lane(word, i)
		}
		return view
	}
	word := s.r.FetchAdd(t, zero)
	prim.MarkLinPoint(s.w, t)
	for i, lane := range s.codec.Decode(word) {
		view[i] = lane.Int64()
	}
	return view
}

// scanCollectGen is the multi-word helped double collect on generation g —
// ScanInto past a cache miss (cached carries the stale entry read at scan
// start, nil when cold or uncached). It returns nil after writing the view,
// or the installed successor generation when a cutover parked the scan
// without a view (the caller restarts there). It lives in its own frame so
// the cache-hit fast path never pays for the collect buffer: the
// scanStackWords stack array below is zeroed on every call to the function
// that declares it, which would tax every hit with half a kilobyte of frame
// clearing if it sat in ScanInto.
func (s *FASnapshot) scanCollectGen(t prim.Thread, g *mwGen, view []int64, cached *mwCachedView) *mwGen {
	var stack [scanStackWords]int64
	cur := collectBuf(&stack, len(g.words))
	s.collectWordsAnchored(t, g, cur)
	raised, adopted := false, false
	var next *mwGen
	var failedRounds, missed int64
	for spins := 0; ; spins++ {
		// The adoption candidate must be read BEFORE the round's word-0
		// read: the witness has to be the later of the two, or an update
		// could announce (and complete) between them unseen.
		var dep *mwDeposit
		if raised {
			if d, ok := g.slot.ReadAny(t).(*mwDeposit); ok && len(d.words) == len(g.words) {
				dep = d
			}
		}
		valid, cut := s.roundAnchoredCut(t, g, cur, s.rebaseOn)
		if valid {
			if !cut {
				break // the round's own word-0 read is the closing witness
			}
			// PARK: the round validated but a cutover is in flight — reading
			// the bit INSIDE the pair (between the words-1..k-1 reads and the
			// closing word-0 read) is what proves a bit-clear return precedes
			// the install (see rebase.go). Re-read the slot for the
			// migrator's final deposit and take ONE fresh word-0 read as the
			// scan's final shared step: on a match adopt the deposit — the
			// standard closing witness, applied to the final collect — else
			// the flip announce has landed, so await the install and restart
			// on the successor. One attempt only: an unbounded adopt retry
			// here could spin forever against the migrator's own announces.
			pd, _ := g.slot.ReadAny(t).(*mwDeposit)
			if pd != nil && len(pd.words) == len(g.words) &&
				g.words[0].FetchAddInt(t, 0) == pd.words[0] {
				copy(cur, pd.words)
				adopted = true
				s.parkAdopts.Add(1)
				break
			}
			s.parkWaits.Add(1)
			next = s.awaitNext(t, g)
			break
		}
		failedRounds++
		// The round failed, but its reads are the next round's baseline —
		// and cur[0] now holds the word-0 value the round read LAST, the
		// scan's most recent shared step: the witness for adoption. (A
		// cutover's arm announce moves word 0, so a stale pre-arm deposit
		// can never pass this check either.)
		if dep != nil {
			if cur[0] == dep.words[0] {
				copy(cur, dep.words)
				adopted = true
				break
			}
			missed++ // deposit present but an announce moved past it
		}
		if spins >= s.spinBudget && !raised {
			raised = true
			g.pressure.FetchAddInt(t, 1)
		}
	}
	// Telemetry, batched: a scan that validated its first round skips all
	// of it — the uncontended fast path carries zero added atomic ops.
	if failedRounds > 0 {
		s.scanRetries.Add(failedRounds)
		if missed > 0 {
			s.adoptMisses.Add(missed)
		}
		s.met.ScanRounds.Observe(failedRounds)
	}
	if raised {
		s.pressureRaises.Add(1)
		// Lowering returns the previous count for free: the LAST raised
		// scan clears the slot, so deposits never outlive the pressure
		// episode that solicited them. A deposit that persisted across
		// idle epochs would widen the 2^16 seq-wrap ABA caveat from
		// "wraps inside one scan's window" to "wraps over the deposit's
		// unbounded lifetime"; clearing restores the original scope.
		// (The clear may race a concurrent raise and clobber a fresher
		// deposit — a progress delay for that scan, never a wrong view:
		// adoption still demands the word-0 witness.) On an ARMED
		// generation the clear can never fire: the cutover bit is set in
		// the same register and never cleared, so the previous count reads
		// bit+1, not 1 — the migrator's final deposit outlives every
		// pressure episode, which is what parked stragglers adopt.
		if g.pressure.FetchAddInt(t, -1) == 1 {
			g.slot.WriteAny(t, &mwDeposit{})
		}
		if adopted {
			s.scanAdopts.Add(1)
		}
	}
	if next != nil {
		return next // parked across the cutover: restart on the successor
	}
	for j, w := range cur {
		s.mp.GatherWord(w, j, view)
	}
	// Refresh the cache with this validated view (own or adopted — both
	// passed the closing word-0 witness), keyed by the collect's word-0
	// value, unless the entry read at scan start already carries this
	// anchor. Last-writer-wins, like the help slot: a concurrent scan's
	// overwrite can only delay hits, never corrupt one — a hit still
	// demands its own fresh witness.
	if g.cache != nil && (cached == nil || cached.anchor != cur[0]) {
		g.cache.WriteAny(t, &mwCachedView{anchor: cur[0], view: append([]int64(nil), view...)})
		s.cacheRefreshes.Add(1)
	}
	return nil
}

// collectBuf returns a k-word collect buffer backed by the caller's stack
// array when it fits, falling back to the heap for larger registers (the
// call inlines, so the array does not escape on the common path).
func collectBuf(stack *[scanStackWords]int64, k int) []int64 {
	if k <= scanStackWords {
		return stack[:k]
	}
	return make([]int64, k)
}

// helpScan is an updater's help obligation, run after its announce while the
// pressure register is raised: a bounded validated double collect whose raw
// words, if two consecutive collects are bit-identical, are deposited in the
// help slot for starving scans to adopt. No closing word-0 read is needed
// here — the ADOPTING scan performs that witness itself against the
// deposit's word 0, which is what anchors the deposited state against
// completions at adoption time. The helper gives up after helperRounds
// invalidated rounds (keeping updates wait-free): whichever update
// invalidated it will read the still-raised pressure register after its own
// announce and inherit the obligation. Deposits are last-writer-wins; a
// stale deposit never corrupts a scan (its word-0 witness fails and the scan
// retries), it only delays adoption.
func (s *FASnapshot) helpScan(t prim.Thread, g *mwGen) {
	var stack [scanStackWords]int64
	cur := collectBuf(&stack, len(g.words))
	s.collectWordsAnchored(t, g, cur)
	for r := 0; r < helperRounds; r++ {
		if s.roundAnchored(t, g, cur) {
			g.slot.WriteAny(t, &mwDeposit{words: append([]int64(nil), cur...)})
			s.helpDeposits.Add(1)
			return
		}
	}
}

// collectWordsAnchored reads the k words once in ANCHORED order — words
// 1..k-1 first, word 0 LAST — the order every shipped collect uses. Reading
// the announce counter (word 0's sequence field) last is what lets a
// validating round's own word-0 read double as the scan's closing announce
// witness: an update announced before that read either predates the pair's
// earlier read of its word (its payload is in the baseline) or lands inside
// the pair's interval for some word and invalidates the round. The
// word-0-FIRST collect without a separate closing re-read is the negative
// exhibit (scanUnanchoredInto).
func (s *FASnapshot) collectWordsAnchored(t prim.Thread, g *mwGen, words []int64) {
	for j := 1; j < len(g.words); j++ {
		words[j] = g.words[j].FetchAddInt(t, 0)
	}
	words[0] = g.words[0].FetchAddInt(t, 0)
}

// roundAnchored re-reads the k words in anchored order against the baseline
// cur and reports whether all matched (a validated pair whose final word-0
// read is the closing announce witness). Mismatching reads become the next
// round's baseline; after a failed round cur[0] holds the word-0 value read
// last — the caller's most recent shared step, and therefore the witness an
// adoption check may compare a deposit against.
func (s *FASnapshot) roundAnchored(t prim.Thread, g *mwGen, cur []int64) bool {
	valid, _ := s.roundAnchoredCut(t, g, cur, false)
	return valid
}

// roundAnchoredCut is roundAnchored with the rebase-mode cutover check: when
// rebase is set, the round also reads g's pressure register BETWEEN the
// words-1..k-1 reads and the closing word-0 read, reporting whether the
// cutover bit was set. The placement is load-bearing (rebase.go's park
// argument): a pair that validates with the bit CLEAR proves the migrator's
// arm announce either invalidated this pair or postdates its closing word-0
// read — so the install postdates the scan's final shared step and the
// bit-clear return needs no further check. With rebase false the pressure
// read is skipped and the round is the pre-rebase protocol's, step for step.
func (s *FASnapshot) roundAnchoredCut(t prim.Thread, g *mwGen, cur []int64, rebase bool) (valid, cut bool) {
	valid = true
	for j := 1; j < len(g.words); j++ {
		w := g.words[j].FetchAddInt(t, 0)
		if w != cur[j] {
			valid = false
			cur[j] = w
		}
	}
	if rebase {
		cut = g.pressure.FetchAddInt(t, 0)&mwCutoverBit != 0
	}
	w0 := g.words[0].FetchAddInt(t, 0)
	if w0 != cur[0] {
		valid = false
		cur[0] = w0
	}
	return valid, cut
}

// collectWords reads the k words once, in index order (word 0 FIRST): the
// unanchored collect of the negative exhibits. Decoded on its own it is the
// coarsest one: updates to different words can be observed inconsistently
// with their real-time order, so scanNaiveInto (a lone collect with no
// second, validating one) is not linearizable; the package tests pin the
// counterexample.
func (s *FASnapshot) collectWords(t prim.Thread, g *mwGen, words []int64) {
	for j := range g.words {
		words[j] = g.words[j].FetchAddInt(t, 0)
	}
}

// scanUnanchoredInto is the UNANCHORED double collect — word 0 read FIRST
// in every round instead of last, so the scan's final step does not witness
// the announce counter — kept exclusively for the negative model check: two
// consecutive identical collects still pin a true state, so it is
// linearizable — but the pinned instant may lie in the past of an update
// that has already completed (announced after the pair's early word-0 read,
// before the scan's later reads of the other words), and with a second
// writer threatening the other word no eager linearization of the pending
// scan survives every future, so it is NOT strongly linearizable (the
// package tests pin the game checker finding exactly that). It is the
// reason the shipped rounds read word 0 last: the announce witness must be
// the scan's final shared step.
func (s *FASnapshot) scanUnanchoredInto(t prim.Thread, view []int64) []int64 {
	if len(view) != s.n {
		panic(fmt.Sprintf("core: FASnapshot.scanUnanchoredInto: view has length %d, want %d", len(view), s.n))
	}
	g := s.eng
	var stack [scanStackWords]int64
	cur := collectBuf(&stack, len(g.words))
	s.collectWords(t, g, cur)
	for {
		valid := true
		for j := range g.words {
			w := g.words[j].FetchAddInt(t, 0)
			if w != cur[j] {
				valid = false
				cur[j] = w
			}
		}
		if valid {
			break
		}
	}
	for j, w := range cur {
		s.mp.GatherWord(w, j, view)
	}
	return view
}

// scanSpinInto is the PR 4 lock-free scan — the shipped protocol WITHOUT the
// pressure/adopt machinery — kept exclusively for the progress witness and
// the bench baseline: under the single-updater storm schedule its retry
// count (and so the scanner's own steps) grows without bound, which is
// exactly the starvation the helping path closes. Its returned views carry
// the full double-collect + closing-check guarantee; only progress differs.
func (s *FASnapshot) scanSpinInto(t prim.Thread, view []int64) []int64 {
	if len(view) != s.n {
		panic(fmt.Sprintf("core: FASnapshot.scanSpinInto: view has length %d, want %d", len(view), s.n))
	}
	g := s.eng
	var stack [scanStackWords]int64
	cur := collectBuf(&stack, len(g.words))
	s.collectWordsAnchored(t, g, cur)
	for !s.roundAnchored(t, g, cur) {
	}
	for j, w := range cur {
		s.mp.GatherWord(w, j, view)
	}
	return view
}

// scanAdoptUnanchoredInto is the helping path WITHOUT the closing word-0
// witness on adoption, kept exclusively for the negative model check: it
// raises pressure immediately and returns the first helper deposit it sees
// AS IS. The deposit is a true state (the helper's double collect pins it),
// so crafted executions stay linearizable — but the pinned instant may lie
// in the past of an update that announced after the helper validated and
// RETURNED before the scan does, and with a second deposit still possible
// the scan's eventual view hangs on scheduling: no eager linearization of
// the pending scan survives every future. The package tests pin the game
// checker refuting strong linearizability on a schedule tree, documenting
// that HELPING DOES NOT EXEMPT the announce-as-final-step rule — an adopted
// view needs the same closing witness a self-collected one does. Falls back
// to validated own rounds while no deposit exists so crafted schedules can
// still complete.
func (s *FASnapshot) scanAdoptUnanchoredInto(t prim.Thread, view []int64) []int64 {
	if len(view) != s.n {
		panic(fmt.Sprintf("core: FASnapshot.scanAdoptUnanchoredInto: view has length %d, want %d", len(view), s.n))
	}
	g := s.eng
	g.pressure.FetchAddInt(t, 1)
	var stack [scanStackWords]int64
	cur := collectBuf(&stack, len(g.words))
	s.collectWordsAnchored(t, g, cur)
	for {
		if d, ok := g.slot.ReadAny(t).(*mwDeposit); ok && len(d.words) == len(g.words) {
			copy(cur, d.words) // adopt with NO closing word-0 witness: the bug
			break
		}
		if s.roundAnchored(t, g, cur) {
			break
		}
	}
	g.pressure.FetchAddInt(t, -1)
	for j, w := range cur {
		s.mp.GatherWord(w, j, view)
	}
	return view
}

// scanCachedStaleInto is the view-cache fast path WITHOUT the fresh word-0
// witness — it returns the cached entry AS IS, on the strength of the anchor
// recorded when the entry was published — kept exclusively for the negative
// model check. The cached view is a true state (some validated collect pinned
// it), so crafted executions stay linearizable; but the pinned instant may
// lie in the past of an update that completed AFTER the entry was published,
// and with another update still in flight the stale scan's eventual view
// hangs on scheduling: no prefix-closed linearization survives every future.
// The package tests pin the game checker refuting strong linearizability on a
// schedule tree, documenting that the cache does not exempt the
// announce-as-final-step rule — a cached view needs the same closing witness
// a collected or adopted one does. Falls back to the shipped scan while the
// cache is cold so crafted schedules can populate it first.
func (s *FASnapshot) scanCachedStaleInto(t prim.Thread, view []int64) []int64 {
	if len(view) != s.n {
		panic(fmt.Sprintf("core: FASnapshot.scanCachedStaleInto: view has length %d, want %d", len(view), s.n))
	}
	if c, ok := s.eng.cache.ReadAny(t).(*mwCachedView); ok && c.view != nil {
		copy(view, c.view) // serve the cache with NO fresh word-0 witness: the bug
		return view
	}
	return s.ScanInto(t, view)
}

// scanNaiveInto is the unvalidated multi-word collect, kept exclusively for
// the negative model check (like shard's readSingleCollect).
func (s *FASnapshot) scanNaiveInto(t prim.Thread, view []int64) []int64 {
	if len(view) != s.n {
		panic(fmt.Sprintf("core: FASnapshot.scanNaiveInto: view has length %d, want %d", len(view), s.n))
	}
	g := s.eng
	var stack [scanStackWords]int64
	cur := collectBuf(&stack, len(g.words))
	s.collectWords(t, g, cur)
	for j, w := range cur {
		s.mp.GatherWord(w, j, view)
	}
	return view
}

// Width returns the current bit length of the shared register (see
// FAMaxRegister.Width): on the multi-word engine, the total occupied lane
// payload bits summed over the k component words (the per-word sequence
// fields are bookkeeping, not component payload, and are not counted). It
// reads the register with fetch&add(0) steps.
func (s *FASnapshot) Width(t prim.Thread) int {
	switch {
	case s.rp != nil:
		return bits.Len64(uint64(s.rp.FetchAddInt(t, 0)))
	case s.eng != nil:
		g := s.eng
		if s.rebaseOn {
			g = s.liveGen(t)
		}
		total := 0
		for _, w := range g.words {
			total += s.mp.PayloadLen(w.FetchAddInt(t, 0))
		}
		return total
	default:
		return s.r.FetchAdd(t, zero).BitLen()
	}
}
