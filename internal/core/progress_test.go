package core

import (
	"testing"

	"stronglin/internal/prim"
	"stronglin/internal/sim"
	"stronglin/internal/spec"
)

// maxStepsPerOp walks the execution tree and returns, for each operation,
// the largest number of base-object steps it takes over any branch. This
// turns the paper's progress claims into checkable facts: wait-free
// operations have a bound independent of scheduling; lock-free-only
// operations grow with contention.
func maxStepsPerOp(tree *sim.Tree) map[int]int {
	out := make(map[int]int)
	counts := make(map[int]int)
	var walk func(n *sim.Node)
	walk = func(n *sim.Node) {
		deltas := make(map[int]int)
		for _, ev := range n.Events {
			if ev.Kind == sim.EventStep {
				deltas[ev.OpID]++
			}
		}
		for id, d := range deltas {
			counts[id] += d
			if counts[id] > out[id] {
				out[id] = counts[id]
			}
		}
		for _, c := range n.Children {
			walk(c)
		}
		for id, d := range deltas {
			counts[id] -= d
		}
	}
	walk(tree.Root)
	return out
}

func maxSteps(m map[int]int) int {
	max := 0
	for _, v := range m {
		if v > max {
			max = v
		}
	}
	return max
}

// Wait-freedom of the fetch&add constructions (Theorems 1, 2): every
// operation takes EXACTLY one shared step in every interleaving.
func TestMaxRegisterWaitFreeBound(t *testing.T) {
	setup := func(w *sim.World) []sim.Program {
		m := NewFAMaxRegister(w, "m", 2)
		return []sim.Program{
			{opWriteMax(m, 1), opReadMax(m)},
			{opWriteMax(m, 2), opReadMax(m)},
		}
	}
	tree, err := sim.Explore(2, setup, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := maxSteps(maxStepsPerOp(tree)); got != 1 {
		t.Fatalf("max steps per op = %d, want 1 (single fetch&add)", got)
	}
}

func TestSnapshotWaitFreeBound(t *testing.T) {
	setup := func(w *sim.World) []sim.Program {
		s := NewFASnapshot(w, "s", 2)
		return []sim.Program{
			{opUpdate(s, 0, 3), opScan(s)},
			{opUpdate(s, 1, 4), opScan(s)},
		}
	}
	tree, err := sim.Explore(2, setup, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := maxSteps(maxStepsPerOp(tree)); got != 1 {
		t.Fatalf("max steps per op = %d, want 1", got)
	}
}

// Wait-freedom of Theorem 5: TestAndSet takes exactly 2 steps, Read 1, in
// every interleaving.
func TestReadableTASWaitFreeBound(t *testing.T) {
	setup := func(w *sim.World) []sim.Program {
		r := NewReadableTAS(w, "r")
		return []sim.Program{
			{opTAS(r)},
			{opTAS(r), opTASRead(r)},
		}
	}
	tree, err := sim.Explore(2, setup, nil)
	if err != nil {
		t.Fatal(err)
	}
	steps := maxStepsPerOp(tree)
	if steps[0] != 2 || steps[1] != 2 {
		t.Fatalf("TestAndSet steps = %d/%d, want 2", steps[0], steps[1])
	}
	if steps[2] != 1 {
		t.Fatalf("Read steps = %d, want 1", steps[2])
	}
}

// Wait-freedom of Theorem 6 over atomic bases: every operation is bounded
// by 3 steps (readMax + TS access [+ writeMax]) in every interleaving.
func TestMultiShotTASWaitFreeBound(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive interleaving check; skipped in -short mode")
	}
	setup := func(w *sim.World) []sim.Program {
		m := NewMultiShotTASAtomic(w, "m")
		return []sim.Program{
			{opTAS(m), opReset(m)},
			{opTASRead(m), opReset(m)},
		}
	}
	tree, err := sim.Explore(2, setup, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := maxSteps(maxStepsPerOp(tree)); got > 3 {
		t.Fatalf("max steps per op = %d, want <= 3", got)
	}
}

// Theorem 9's fetch&increment is lock-free but NOT wait-free: under the
// adversarial schedule that lets all other processes win first, the victim's
// step count grows linearly with the number of competitors — no
// schedule-independent bound exists.
func TestFetchIncNotWaitFree(t *testing.T) {
	steps := make([]int, 0, 3)
	for _, competitors := range []int{1, 2, 3} {
		n := competitors + 1
		setup := func(w *sim.World) []sim.Program {
			f := NewFetchIncAtomic(w, "f")
			progs := make([]sim.Program, n)
			for i := range progs {
				progs[i] = sim.Program{opFAI(f)}
			}
			return progs
		}
		// Adversary: run every competitor to completion, then the victim
		// (process 0).
		var sched []int
		for p := 1; p < n; p++ {
			// invoke + p TAS attempts (competitor p wins slot p).
			for k := 0; k <= p; k++ {
				sched = append(sched, p)
			}
		}
		exec, err := sim.Run(n, setup, sched)
		if err != nil {
			t.Fatal(err)
		}
		if !allOthersDone(exec, n) {
			t.Fatalf("competitors not done under schedule %v: %s", sched, exec)
		}
		// Victim: invoke + scan over all claimed slots + winning attempt.
		victim := append(append([]int{}, sched...), rep0(n+1)...)
		exec, err = sim.Run(n, setup, victim)
		if err != nil {
			t.Fatal(err)
		}
		resp, ok := exec.Responses()[0]
		if !ok {
			t.Fatalf("victim did not finish with %d extra grants", n+1)
		}
		if want := spec.RespInt(int64(n)); resp != want {
			t.Fatalf("victim got %s, want %s (last slot)", resp, want)
		}
		victimSteps := 0
		for _, ev := range exec.Events {
			if ev.Kind == sim.EventStep && ev.OpID == 0 {
				victimSteps++
			}
		}
		steps = append(steps, victimSteps)
	}
	if !(steps[0] < steps[1] && steps[1] < steps[2]) {
		t.Fatalf("victim step counts %v do not grow with contention", steps)
	}
}

func allOthersDone(exec *sim.Execution, n int) bool {
	resps := exec.Responses()
	for _, oi := range exec.Ops {
		if oi.Proc != 0 {
			if _, ok := resps[oi.ID]; !ok {
				return false
			}
		}
	}
	return true
}

func rep0(n int) []int {
	out := make([]int, n)
	return out
}

// Algorithm 2's take is lock-free but not wait-free: a take whose items are
// stolen by other takes pays a scan over every claimed slot (twice, for the
// stability check); its step count grows with the churn that happened, with
// no schedule-independent bound.
func TestTASSetTakeNotWaitFree(t *testing.T) {
	victimSteps := func(churn int) int {
		setup := func(w *sim.World) []sim.Program {
			s := NewTASSetAtomic(w, "s")
			churner := make(sim.Program, 0, 2*churn)
			for i := 0; i < churn; i++ {
				churner = append(churner, opPut(s, int64(10+i)))
			}
			for i := 0; i < churn; i++ {
				churner = append(churner, opTake(s))
			}
			return []sim.Program{{opTake(s)}, churner}
		}
		// Priority policy: the churner (p1) runs to completion first; the
		// victim (p0) then scans a fully-claimed region.
		policy := func(v sim.PolicyView) int {
			return v.Enabled[len(v.Enabled)-1]
		}
		exec, err := sim.RunToCompletion(2, setup, policy, 100000)
		if err != nil {
			t.Fatal(err)
		}
		if !exec.Complete {
			t.Fatal("run incomplete")
		}
		if got := exec.Responses()[0]; got != spec.RespEmpty {
			t.Fatalf("victim take = %s, want empty", got)
		}
		steps := 0
		for _, ev := range exec.Events {
			if ev.Kind == sim.EventStep && ev.OpID == 0 {
				steps++
			}
		}
		return steps
	}
	s1, s2, s3 := victimSteps(1), victimSteps(2), victimSteps(4)
	if !(s1 < s2 && s2 < s3) {
		t.Fatalf("victim step counts %d,%d,%d do not grow with churn", s1, s2, s3)
	}
}

// --- wait-freedom of the helped multi-word scan (PR 5) -----------------------
//
// The storm adversary itself (sim.AnchorStormPolicy) lives in internal/sim
// so that this witness and internal/shard's drive the identical scheduler.

// victimSteps counts the victim's shared steps in a completed execution.
func victimSteps(t *testing.T, exec *sim.Execution, victim int) int {
	t.Helper()
	if !exec.Complete {
		t.Fatalf("storm run incomplete (schedule %v)", exec.Schedule)
	}
	steps := 0
	for _, e := range exec.Events {
		if e.Kind == sim.EventStep && e.Proc == victim {
			steps++
		}
	}
	return steps
}

// multiwordStormScanSteps runs one scan against a storm of `storm`
// value-changing word-1 updates under the anchor-storm adversary and
// returns the scanner's own step count. helped selects the shipped
// (budget-0, adopting) ScanInto; otherwise the scanner runs scanSpinInto,
// the PR 4 lock-free protocol without helping.
func multiwordStormScanSteps(t *testing.T, storm int, helped bool) int {
	t.Helper()
	setup := func(w *sim.World) []sim.Program {
		s := NewFASnapshot(w, "snap", 2, WithSnapshotBound(1<<32-1), WithScanRetryBudget(0))
		scan := sim.Op{
			Name: "scan()",
			Spec: spec.MkOp(spec.MethodScan),
			Run: func(th prim.Thread) string {
				if helped {
					return spec.RespVec(s.ScanInto(th, make([]int64, 2)))
				}
				return spec.RespVec(s.scanSpinInto(th, make([]int64, 2)))
			},
		}
		var updates sim.Program
		for i := 0; i < storm; i++ {
			updates = append(updates, opUpdate(s, 1, int64(1+i%2)))
		}
		return []sim.Program{{scan}, updates}
	}
	exec, err := sim.RunToCompletion(2, setup, sim.AnchorStormPolicy(0, 1, "snap.R0"), 100000)
	if err != nil {
		t.Fatal(err)
	}
	return victimSteps(t, exec, 0)
}

// TestMultiwordScanStormStarvesLockFreeBaseline pins the starvation the
// helping path exists to close: under the anchor-storm adversary the PR 4
// lock-free scan retries for as long as the storm lasts — its own step
// count grows linearly with the storm length, with no schedule-independent
// bound.
func TestMultiwordScanStormStarvesLockFreeBaseline(t *testing.T) {
	s1, s2, s3 := multiwordStormScanSteps(t, 6, false), multiwordStormScanSteps(t, 12, false), multiwordStormScanSteps(t, 24, false)
	if !(s1 < s2 && s2 < s3) {
		t.Fatalf("lock-free scan steps %d/%d/%d do not grow with the storm — the baseline is not starving", s1, s2, s3)
	}
	t.Logf("lock-free scan own steps under storms 6/12/24: %d/%d/%d (unbounded growth)", s1, s2, s3)
}

// TestMultiwordHelpedScanWaitFreeUnderStorm is the progress witness: on the
// SAME adversary schedule, the helped scan raises pressure, the storm's own
// writes deposit validated views, and the scan adopts — completing within a
// fixed own-step budget independent of the storm length.
func TestMultiwordHelpedScanWaitFreeUnderStorm(t *testing.T) {
	const fixedBudget = 16
	base := multiwordStormScanSteps(t, 6, true)
	if base > fixedBudget {
		t.Fatalf("helped scan took %d own steps, want <= %d", base, fixedBudget)
	}
	for _, storm := range []int{12, 24, 48} {
		if got := multiwordStormScanSteps(t, storm, true); got != base {
			t.Fatalf("helped scan steps = %d under storm %d, want the storm-independent %d", got, storm, base)
		}
	}
	t.Logf("helped scan own steps: %d under storms 6/12/24/48 (fixed budget %d)", base, fixedBudget)
}

// Universal comparator: lock-free only — a CAS loop can be made to retry.
func TestUniversalStyleRetryVisible(t *testing.T) {
	// Two concurrent fetch&adds on the FA-based fetch&inc are wait-free
	// (fetch&add never retries); this is the contrast with CAS loops.
	setup := func(w *sim.World) []sim.Program {
		f := NewFAFetchInc(w, "f")
		return []sim.Program{{opFAI(f)}, {opFAI(f)}}
	}
	tree, err := sim.Explore(2, setup, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := maxSteps(maxStepsPerOp(tree)); got != 1 {
		t.Fatalf("FA fetch&inc steps = %d, want 1 in every interleaving", got)
	}
}
