package core

import (
	"fmt"

	"stronglin/internal/prim"
	"stronglin/internal/spec"
)

// TASSet is Algorithm 2: the lock-free strongly-linearizable set from
// test&set of Theorem 10.
//
// Base objects: an infinite array Items of read/write registers (initially
// ⊥), an infinite array TS of test&set objects, and one readable
// fetch&increment object Max (initially 1).
//
//	Put(x):  m := Max.fetch&increment(); Items[m].write(x); return OK
//	Take():  repeatedly scan Items[1..Max.read()-1]; claim the first
//	         unclaimed item via TS[c].test&set(); return EMPTY once two
//	         consecutive scans observe the same Max and the same number of
//	         claimed slots.
//
// The set contains x iff Items[i] = x for some 1 <= i <= Max-1 with
// TS[i] = 0. Puts linearize at their Items write; takes that return an item
// linearize when they obtain 0 from TS; takes that return EMPTY linearize at
// their last read of Max (the paper's Theorem 10). Items must be positive
// (0 encodes ⊥), and — as the paper assumes — each item is put at most once;
// otherwise the object implements a multiset.
//
// The implementation is lock-free: a take can fail to terminate only while
// infinitely many puts and takes complete.
type TASSet struct {
	items *prim.RegisterArray
	ts    *prim.TASArray
	max   FetchIncAPI
}

// NewTASSet builds the construction over an explicit readable
// fetch&increment (for Theorem 10's statement, an atomic one; for the full
// composition, Theorem 9's).
func NewTASSet(w prim.World, name string, max FetchIncAPI) *TASSet {
	return &TASSet{
		items: prim.NewRegisterArray(w, name+".Items", bottom),
		ts:    prim.NewTASArray(w, name+".TS"),
		max:   max,
	}
}

// NewTASSetAtomic builds the construction over an atomic fetch&increment
// (modelled by Theorem 9's object over atomic readable test&set objects,
// which the theorem allows as base objects).
func NewTASSetAtomic(w prim.World, name string) *TASSet {
	return NewTASSet(w, name, NewFetchIncAtomic(w, name+".Max"))
}

// NewTASSetFromTAS builds Theorem 10's full composition: the
// fetch&increment is Theorem 9's construction over Theorem 5's readable
// test&sets, so the whole set uses only test&set objects and registers.
func NewTASSetFromTAS(w prim.World, name string) *TASSet {
	return NewTASSet(w, name, NewFetchIncFromTAS(w, name+".Max"))
}

// bottom is the ⊥ value of Items entries.
const bottom = 0

// Put adds x (> 0) to the set and returns spec.RespOK.
func (s *TASSet) Put(t prim.Thread, x int64) string {
	if x <= 0 {
		panic(fmt.Sprintf("core: TASSet.Put(%d): items must be positive (0 encodes the empty slot)", x))
	}
	m := s.max.FetchIncrement(t)
	s.items.Get(int(m)).Write(t, x)
	return spec.RespOK
}

// Take removes and returns some item, or returns spec.RespEmpty.
func (s *TASSet) Take(t prim.Thread) string {
	takenOld, maxOld := 0, 0
	for {
		takenNew := 0
		maxNew := int(s.max.Read(t)) - 1
		for c := 1; c <= maxNew; c++ {
			x := s.items.Get(c).Read(t)
			if x == bottom {
				continue
			}
			if s.ts.Get(c).TestAndSet(t) == 0 {
				return spec.RespInt(x)
			}
			takenNew++
		}
		if takenNew == takenOld && maxNew == maxOld {
			return spec.RespEmpty
		}
		takenOld, maxOld = takenNew, maxNew
	}
}
