// Package core implements the paper's constructions:
//
//   - Theorem 1: wait-free strongly-linearizable max register from fetch&add
//     (FAMaxRegister).
//   - Theorem 2: wait-free strongly-linearizable atomic snapshot from
//     fetch&add (FASnapshot).
//   - Theorems 3/4: wait-free strongly-linearizable simple types from atomic
//     snapshot (SimpleObject, Algorithm 1), hence from fetch&add.
//   - Theorem 5: wait-free strongly-linearizable readable test&set from
//     test&set (ReadableTAS).
//   - Theorem 6, Corollaries 7–8: wait-free strongly-linearizable readable
//     multi-shot test&set from test&set and max register (MultiShotTAS).
//   - Theorem 9: lock-free strongly-linearizable readable fetch&increment
//     from test&set (FetchInc).
//   - Theorem 10: lock-free strongly-linearizable set from test&set
//     (TASSet, Algorithm 2).
//
// Every construction is written against internal/prim interfaces and runs
// unchanged under real concurrency (prim.RealWorld) and under the
// model-checking scheduler (sim.World). Construction functions take the
// world, a base name for the shared objects they allocate, and — where the
// algorithm needs per-process lanes — the number of processes n.
package core

import (
	"fmt"
	"math/big"

	"stronglin/internal/interleave"
	"stronglin/internal/prim"
)

// FAMaxRegister is the wait-free strongly-linearizable max register of
// Section 3.1, built from a single unbounded fetch&add register R.
//
// Process i stores the largest value it has written, in unary, in bit lane
// i of R (bits i, n+i, 2n+i, ...): value K occupies lane-local bits 1..K.
// WriteMax(K) raises the caller's lane from its previous value to K with a
// single fetch&add; smaller-or-equal writes perform fetch&add(R, 0), which
// the paper keeps so that every operation has a fetch&add linearization
// point. ReadMax is fetch&add(R, 0) followed by local decoding.
//
// Every operation performs exactly one fetch&add, which is its linearization
// point; strong linearizability is immediate (and model-checked in the
// tests).
type FAMaxRegister struct {
	n      int
	codec  interleave.Codec
	w      prim.World
	r      prim.FetchAdd
	laneOf func(id int) int // process ID -> lane index (identity by default)
	prev   []int64          // prev[i] is written only by the process on lane i
	noopFA bool             // perform fetch&add(R,0) on no-op writes (paper step 1)
}

var _ prim.MaxReg = (*FAMaxRegister)(nil)

// MaxRegOption configures NewFAMaxRegister.
type MaxRegOption func(*FAMaxRegister)

// WithoutNoopFA drops the fetch&add(R, 0) that WriteMax performs when the
// value does not exceed the caller's previous write. The paper notes this
// fetch&add "is not needed for correctness, but it simplifies the
// linearization proof": without it a no-op WriteMax takes no shared step at
// all. This option exists for the E-ABL1 ablation.
func WithoutNoopFA() MaxRegOption {
	return func(m *FAMaxRegister) { m.noopFA = false }
}

// WithLaneMap routes process IDs to lane indices in [0, n). The construction
// then needs only as many lanes as distinct WRITERS rather than one per
// process ID, which keeps the unary register narrow — the sharded layer maps
// its subset of lanes compactly (id/S), shrinking every shard's register
// width (and so the per-operation fetch&add cost) by the shard count. The
// map must be injective over the processes that actually write; it does not
// touch thread identity, so scheduling and trace attribution in the
// simulated world are unaffected.
func WithLaneMap(laneOf func(id int) int) MaxRegOption {
	return func(m *FAMaxRegister) { m.laneOf = laneOf }
}

// NewFAMaxRegister allocates the construction for n processes using a single
// fetch&add register named name+".R".
func NewFAMaxRegister(w prim.World, name string, n int, opts ...MaxRegOption) *FAMaxRegister {
	m := &FAMaxRegister{
		n:      n,
		codec:  interleave.MustNew(n),
		w:      w,
		r:      w.FetchAdd(name + ".R"),
		laneOf: func(id int) int { return id },
		prev:   make([]int64, n),
		noopFA: true,
	}
	for _, o := range opts {
		o(m)
	}
	return m
}

// WriteMax writes v (which must be non-negative) on behalf of t.
func (m *FAMaxRegister) WriteMax(t prim.Thread, v int64) {
	if v < 0 {
		panic(fmt.Sprintf("core: FAMaxRegister.WriteMax(%d): values must be non-negative", v))
	}
	i := m.laneOf(t.ID())
	if v <= m.prev[i] {
		if m.noopFA {
			m.r.FetchAdd(t, zero)
			prim.MarkLinPoint(m.w, t)
		}
		return
	}
	delta := m.codec.Spread(interleave.UnaryDelta(int(m.prev[i]), int(v)), i)
	m.r.FetchAdd(t, delta)
	prim.MarkLinPoint(m.w, t)
	m.prev[i] = v
}

// ReadMax returns the largest value written so far.
func (m *FAMaxRegister) ReadMax(t prim.Thread) int64 {
	word := m.r.FetchAdd(t, zero)
	prim.MarkLinPoint(m.w, t)
	return m.decode(word)
}

func (m *FAMaxRegister) decode(word *big.Int) int64 {
	max := int64(0)
	for _, lane := range m.codec.Decode(word) {
		if v := int64(interleave.UnaryValue(lane)); v > max {
			max = v
		}
	}
	return max
}

// Width returns the current bit length of the shared register — the cost the
// paper's discussion (Section 6) highlights ("extremely large values in a
// single variable"). It reads R with a fetch&add(0) step.
func (m *FAMaxRegister) Width(t prim.Thread) int {
	return m.r.FetchAdd(t, zero).BitLen()
}

// zero and one are immutable fetch&add deltas.
var (
	zero = new(big.Int)
	one  = big.NewInt(1)
)
