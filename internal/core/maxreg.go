// Package core implements the paper's constructions:
//
//   - Theorem 1: wait-free strongly-linearizable max register from fetch&add
//     (FAMaxRegister).
//   - Theorem 2: wait-free strongly-linearizable atomic snapshot from
//     fetch&add (FASnapshot).
//   - Theorems 3/4: wait-free strongly-linearizable simple types from atomic
//     snapshot (SimpleObject, Algorithm 1), hence from fetch&add.
//   - Theorem 5: wait-free strongly-linearizable readable test&set from
//     test&set (ReadableTAS).
//   - Theorem 6, Corollaries 7–8: wait-free strongly-linearizable readable
//     multi-shot test&set from test&set and max register (MultiShotTAS).
//   - Theorem 9: lock-free strongly-linearizable readable fetch&increment
//     from test&set (FetchInc).
//   - Theorem 10: lock-free strongly-linearizable set from test&set
//     (TASSet, Algorithm 2).
//
// Every construction is written against internal/prim interfaces and runs
// unchanged under real concurrency (prim.RealWorld) and under the
// model-checking scheduler (sim.World). Construction functions take the
// world, a base name for the shared objects they allocate, and — where the
// algorithm needs per-process lanes — the number of processes n.
package core

import (
	"fmt"
	"math/big"
	"math/bits"

	"stronglin/internal/interleave"
	"stronglin/internal/prim"
)

// FAMaxRegister is the wait-free strongly-linearizable max register of
// Section 3.1, built from a single unbounded fetch&add register R.
//
// Process i stores the largest value it has written, in unary, in bit lane
// i of R (bits i, n+i, 2n+i, ...): value K occupies lane-local bits 1..K.
// WriteMax(K) raises the caller's lane from its previous value to K with a
// single fetch&add; smaller-or-equal writes perform fetch&add(R, 0), which
// the paper keeps so that every operation has a fetch&add linearization
// point. ReadMax is fetch&add(R, 0) followed by local decoding.
//
// Every operation performs exactly one fetch&add, which is its linearization
// point; strong linearizability is immediate (and model-checked in the
// tests).
//
// With WithMaxRegBound the register becomes a single machine word when the
// encoding fits (lanes x (bound+1) <= 63 bits): the same unary lanes, packed
// into a hardware XADD register (prim.FetchAddInt) instead of the
// arbitrary-precision fetch&add. Each operation is still exactly one
// fetch&add on one register, so the linearization argument is unchanged; only
// the per-operation cost drops (no big.Int arithmetic, no allocation). When
// the bound does not fit, the constructor silently falls back to the wide
// register.
type FAMaxRegister struct {
	n      int
	codec  interleave.Codec
	w      prim.World
	r      prim.FetchAdd    // wide engine; nil when packed
	rp     prim.FetchAddInt // packed engine; nil when wide
	pc     interleave.Packed
	bound  int64            // -1: unbounded (wide); >= 0: declared max value
	laneOf func(id int) int // process ID -> lane index (identity by default)
	prev   []int64          // prev[i] is written only by the process on lane i
	noopFA bool             // perform fetch&add(R,0) on no-op writes (paper step 1)
}

var _ prim.MaxReg = (*FAMaxRegister)(nil)

// MaxRegOption configures NewFAMaxRegister.
type MaxRegOption func(*FAMaxRegister)

// WithoutNoopFA drops the fetch&add(R, 0) that WriteMax performs when the
// value does not exceed the caller's previous write. The paper notes this
// fetch&add "is not needed for correctness, but it simplifies the
// linearization proof": without it a no-op WriteMax takes no shared step at
// all. This option exists for the E-ABL1 ablation.
func WithoutNoopFA() MaxRegOption {
	return func(m *FAMaxRegister) { m.noopFA = false }
}

// WithLaneMap routes process IDs to lane indices in [0, n). The construction
// then needs only as many lanes as distinct WRITERS rather than one per
// process ID, which keeps the unary register narrow — the sharded layer maps
// its subset of lanes compactly (id/S), shrinking every shard's register
// width (and so the per-operation fetch&add cost) by the shard count. The
// map must be injective over the processes that actually write; it does not
// touch thread identity, so scheduling and trace attribution in the
// simulated world are unaffected.
func WithLaneMap(laneOf func(id int) int) MaxRegOption {
	return func(m *FAMaxRegister) { m.laneOf = laneOf }
}

// WithMaxRegBound declares that every written value is in [0, bound], and
// makes WriteMax panic on values beyond it (like negatives). When the unary
// encoding of the bounded lanes fits a machine word (n x (bound+1) <= 63
// bits), the construction runs over a single prim.FetchAddInt register — the
// packed fast path; when it does not fit, the constructor falls back to the
// wide register. The bound is enforced either way, so behaviour does not
// depend on which engine was selected (a sharded object whose shards host
// different lane counts may mix engines).
func WithMaxRegBound(bound int64) MaxRegOption {
	if bound < 0 {
		panic(fmt.Sprintf("core: WithMaxRegBound(%d): bound must be non-negative", bound))
	}
	return func(m *FAMaxRegister) { m.bound = bound }
}

// NewFAMaxRegister allocates the construction for n processes using a single
// fetch&add register named name+".R".
func NewFAMaxRegister(w prim.World, name string, n int, opts ...MaxRegOption) *FAMaxRegister {
	m := &FAMaxRegister{
		n:      n,
		codec:  interleave.MustNew(n),
		w:      w,
		bound:  -1,
		laneOf: func(id int) int { return id },
		prev:   make([]int64, n),
		noopFA: true,
	}
	for _, o := range opts {
		o(m)
	}
	// A packable lane is at most 63 bits wide, so any bound >= 63 can never
	// pack; checking before the int conversion keeps a huge int64 bound from
	// truncating on 32-bit platforms. A bound that does not pack stays
	// declared (and enforced) over the wide register.
	if m.bound >= 0 && m.bound < 63 {
		if pc, ok := interleave.NewPacked(n, int(m.bound)+1); ok {
			m.pc = pc
			m.rp = w.FetchAddInt(name+".R", 0)
			return m
		}
	}
	m.r = w.FetchAdd(name + ".R")
	return m
}

// Packed reports whether the register is the packed machine word.
func (m *FAMaxRegister) Packed() bool { return m.rp != nil }

// WriteMax writes v (which must be non-negative) on behalf of t.
func (m *FAMaxRegister) WriteMax(t prim.Thread, v int64) {
	if v < 0 {
		panic(fmt.Sprintf("core: FAMaxRegister.WriteMax(%d): values must be non-negative", v))
	}
	if m.bound >= 0 && v > m.bound {
		panic(fmt.Sprintf("core: FAMaxRegister.WriteMax(%d): value exceeds the declared bound %d", v, m.bound))
	}
	i := m.laneOf(t.ID())
	if v <= m.prev[i] {
		if m.noopFA {
			if m.rp != nil {
				m.rp.FetchAddInt(t, 0)
			} else {
				m.r.FetchAdd(t, zero)
			}
			prim.MarkLinPoint(m.w, t)
		}
		return
	}
	if m.rp != nil {
		m.rp.FetchAddInt(t, m.pc.Spread(interleave.PackedUnaryDelta(int(m.prev[i]), int(v)), i))
	} else {
		m.r.FetchAdd(t, m.codec.SpreadUnaryDelta(i, int(m.prev[i]), int(v)))
	}
	prim.MarkLinPoint(m.w, t)
	m.prev[i] = v
}

// ReadMax returns the largest value written so far.
func (m *FAMaxRegister) ReadMax(t prim.Thread) int64 {
	if m.rp != nil {
		word := m.rp.FetchAddInt(t, 0)
		prim.MarkLinPoint(m.w, t)
		return m.decodePacked(word)
	}
	word := m.r.FetchAdd(t, zero)
	prim.MarkLinPoint(m.w, t)
	return m.decode(word)
}

func (m *FAMaxRegister) decode(word *big.Int) int64 {
	max := int64(0)
	for _, lane := range m.codec.Decode(word) {
		if v := int64(interleave.UnaryValue(lane)); v > max {
			max = v
		}
	}
	return max
}

func (m *FAMaxRegister) decodePacked(word int64) int64 {
	max := int64(0)
	for i := 0; i < m.n; i++ {
		if v := int64(interleave.PackedUnaryValue(m.pc.Lane(word, i))); v > max {
			max = v
		}
	}
	return max
}

// Width returns the current bit length of the shared register — the cost the
// paper's discussion (Section 6) highlights ("extremely large values in a
// single variable"). It reads R with a fetch&add(0) step.
func (m *FAMaxRegister) Width(t prim.Thread) int {
	if m.rp != nil {
		return bits.Len64(uint64(m.rp.FetchAddInt(t, 0)))
	}
	return m.r.FetchAdd(t, zero).BitLen()
}

// zero and one are immutable fetch&add deltas.
var (
	zero = new(big.Int)
	one  = big.NewInt(1)
)
