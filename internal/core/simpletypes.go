package core

import (
	"stronglin/internal/prim"
	"stronglin/internal/spec"
)

// The simple-type instances below declare the commute/overwrite structure of
// the paper's Section 3.3 examples ("max registers", "counters, logical
// clocks and certain set objects"), plus the plain read/write register whose
// writes mutually overwrite. The declared relations are validated against
// the sequential specifications by property tests.

// SimpleCounter is the counter simple type (inc, dec, read).
type SimpleCounter struct{ spec.Counter }

// Commutes implements SimpleType: mutators commute with mutators and reads
// with reads; a read's response depends on its order relative to a mutator,
// so mixed pairs do not commute — the mutator overwrites the read instead.
func (SimpleCounter) Commutes(a, b spec.Op) bool {
	return (a.Method == spec.MethodRead) == (b.Method == spec.MethodRead)
}

// Overwrites implements SimpleType: reads are overwritten by everything.
func (SimpleCounter) Overwrites(a, b spec.Op) bool { return b.Method == spec.MethodRead }

// SimpleMonotonicCounter is the monotonic counter simple type (inc, read).
type SimpleMonotonicCounter struct{ spec.MonotonicCounter }

// Commutes implements SimpleType.
func (SimpleMonotonicCounter) Commutes(a, b spec.Op) bool {
	return (a.Method == spec.MethodRead) == (b.Method == spec.MethodRead)
}

// Overwrites implements SimpleType.
func (SimpleMonotonicCounter) Overwrites(a, b spec.Op) bool { return b.Method == spec.MethodRead }

// SimpleLogicalClock is the logical clock simple type (tick, read).
type SimpleLogicalClock struct{ spec.LogicalClock }

// Commutes implements SimpleType.
func (SimpleLogicalClock) Commutes(a, b spec.Op) bool {
	return (a.Method == spec.MethodRead) == (b.Method == spec.MethodRead)
}

// Overwrites implements SimpleType.
func (SimpleLogicalClock) Overwrites(a, b spec.Op) bool { return b.Method == spec.MethodRead }

// SimpleMaxRegister is the max register simple type (wmax, rmax).
type SimpleMaxRegister struct{ spec.MaxRegister }

// Commutes implements SimpleType: writes commute with writes (max is
// commutative and their responses are fixed), reads with reads.
func (SimpleMaxRegister) Commutes(a, b spec.Op) bool {
	return (a.Method == spec.MethodReadMax) == (b.Method == spec.MethodReadMax)
}

// Overwrites implements SimpleType: WriteMax(v1) overwrites WriteMax(v2)
// when v1 >= v2 (the paper's example); everything overwrites a read.
func (SimpleMaxRegister) Overwrites(a, b spec.Op) bool {
	if b.Method == spec.MethodReadMax {
		return true
	}
	if a.Method == spec.MethodWriteMax && b.Method == spec.MethodWriteMax {
		return a.Args[0] >= b.Args[0]
	}
	return false
}

// SimpleGSet is the grow-only set simple type (add, has).
type SimpleGSet struct{ spec.GSet }

// Commutes implements SimpleType: adds commute with adds, queries with
// queries, and an add commutes with a query about a different element.
func (SimpleGSet) Commutes(a, b spec.Op) bool {
	if (a.Method == spec.MethodHas) == (b.Method == spec.MethodHas) {
		return true
	}
	return a.Args[0] != b.Args[0]
}

// Overwrites implements SimpleType: membership queries are overwritten by
// everything; duplicate adds overwrite each other.
func (SimpleGSet) Overwrites(a, b spec.Op) bool {
	if b.Method == spec.MethodHas {
		return true
	}
	if a.Method == spec.MethodAdd && b.Method == spec.MethodAdd {
		return a.Args[0] == b.Args[0]
	}
	return false
}

// SimpleRegister is the read/write register simple type (write, read); its
// writes mutually overwrite, exercising the pid tie-break of the dominance
// relation.
type SimpleRegister struct{ spec.RWRegister }

// Commutes implements SimpleType: reads commute with reads; writes commute
// only with writes of the same value.
func (SimpleRegister) Commutes(a, b spec.Op) bool {
	if a.Method == spec.MethodWrite && b.Method == spec.MethodWrite {
		return a.Args[0] == b.Args[0]
	}
	return a.Method == spec.MethodRead && b.Method == spec.MethodRead
}

// Overwrites implements SimpleType: a write overwrites anything; anything
// overwrites a read.
func (SimpleRegister) Overwrites(a, b spec.Op) bool {
	return a.Method == spec.MethodWrite || b.Method == spec.MethodRead
}

// --- Typed front-ends -------------------------------------------------------

// Counter is a wait-free strongly-linearizable counter built from Algorithm
// 1 over a snapshot (Theorems 3/4).
type Counter struct{ obj *SimpleObject }

// NewCounter builds a counter over the given snapshot.
func NewCounter(snap SnapshotAPI, n int) *Counter {
	return &Counter{obj: NewSimpleObject(SimpleCounter{}, snap, n)}
}

// NewCounterFromFA builds a counter over a fresh fetch&add snapshot. A
// WithSnapshotBound option packs the snapshot into a machine word when the
// encoding fits, capping lifetime operations at the bound (see SimpleObject).
func NewCounterFromFA(w prim.World, name string, n int, opts ...SnapshotOption) *Counter {
	return &Counter{obj: NewSimpleObjectFromFA(w, name, SimpleCounter{}, n, opts...)}
}

// Inc increments the counter.
func (c *Counter) Inc(t prim.Thread) { c.obj.Execute(t, spec.MkOp(spec.MethodInc)) }

// Dec decrements the counter.
func (c *Counter) Dec(t prim.Thread) { c.obj.Execute(t, spec.MkOp(spec.MethodDec)) }

// Read returns the counter value.
func (c *Counter) Read(t prim.Thread) int64 {
	return mustParseInt(c.obj.Execute(t, spec.MkOp(spec.MethodRead)))
}

// TryInc increments the counter, or returns ErrCapacityExhausted when a
// bounded counter has no operation slots left (the server-friendly form).
func (c *Counter) TryInc(t prim.Thread) error {
	_, err := c.obj.TryExecute(t, spec.MkOp(spec.MethodInc))
	return err
}

// TryRead returns the counter value, or ErrCapacityExhausted (reads consume
// an operation slot too: every Algorithm 1 operation publishes a node).
func (c *Counter) TryRead(t prim.Thread) (int64, error) {
	resp, err := c.obj.TryExecute(t, spec.MkOp(spec.MethodRead))
	if err != nil {
		return 0, err
	}
	return mustParseInt(resp), nil
}

// Packed reports whether the counter's snapshot runs on a single packed
// machine word; Engine and Words name the substrate precisely (a "multiword"
// counter-with-read exceeds 63 lanes of packed reference budget by striping
// references across k XADD words).
func (c *Counter) Packed() bool { return c.obj.SnapshotPacked() }

// Engine names the counter's snapshot substrate ("packed", "multiword",
// "wide").
func (c *Counter) Engine() string { return c.obj.SnapshotEngine() }

// Words returns the counter snapshot's machine-word count (0 when wide).
func (c *Counter) Words() int { return c.obj.SnapshotWords() }

// Capacity returns the counter's lifetime operation budget, or -1 when
// unbounded.
func (c *Counter) Capacity() int64 { return c.obj.Capacity() }

// Used returns how many operations the counter has admitted against that
// budget.
func (c *Counter) Used() int64 { return c.obj.Executed() }

// LogicalClock is a wait-free strongly-linearizable logical clock built from
// Algorithm 1 over a snapshot.
type LogicalClock struct{ obj *SimpleObject }

// NewLogicalClockFromFA builds a logical clock over a fresh fetch&add
// snapshot. A WithSnapshotBound option packs the snapshot into a machine
// word when the encoding fits, capping lifetime operations at the bound.
func NewLogicalClockFromFA(w prim.World, name string, n int, opts ...SnapshotOption) *LogicalClock {
	return &LogicalClock{obj: NewSimpleObjectFromFA(w, name, SimpleLogicalClock{}, n, opts...)}
}

// Tick advances the clock.
func (c *LogicalClock) Tick(t prim.Thread) { c.obj.Execute(t, spec.MkOp(spec.MethodTick)) }

// Read returns the current time.
func (c *LogicalClock) Read(t prim.Thread) int64 {
	return mustParseInt(c.obj.Execute(t, spec.MkOp(spec.MethodRead)))
}

// TryTick advances the clock, or returns ErrCapacityExhausted when a bounded
// clock has no operation slots left (the server-friendly form of Tick).
func (c *LogicalClock) TryTick(t prim.Thread) error {
	_, err := c.obj.TryExecute(t, spec.MkOp(spec.MethodTick))
	return err
}

// TryRead returns the current time, or ErrCapacityExhausted (reads consume
// an operation slot too: every Algorithm 1 operation publishes a node).
func (c *LogicalClock) TryRead(t prim.Thread) (int64, error) {
	resp, err := c.obj.TryExecute(t, spec.MkOp(spec.MethodRead))
	if err != nil {
		return 0, err
	}
	return mustParseInt(resp), nil
}

// Packed reports whether the clock's snapshot runs on a single packed
// machine word.
func (c *LogicalClock) Packed() bool { return c.obj.SnapshotPacked() }

// Engine names the clock's snapshot substrate ("packed", "multiword",
// "wide"). A "multiword" clock is how the Algorithm 1 composition exceeds 63
// lanes of packed reference budget.
func (c *LogicalClock) Engine() string { return c.obj.SnapshotEngine() }

// Words returns the clock snapshot's machine-word count (0 when wide).
func (c *LogicalClock) Words() int { return c.obj.SnapshotWords() }

// Capacity returns the clock's lifetime operation budget, or -1 when
// unbounded.
func (c *LogicalClock) Capacity() int64 { return c.obj.Capacity() }

// Used returns how many operations the clock has admitted against that
// budget (ticks and reads both count: every Algorithm 1 operation publishes
// a node).
func (c *LogicalClock) Used() int64 { return c.obj.Executed() }

// GSet is a wait-free strongly-linearizable grow-only set built from
// Algorithm 1 over a snapshot.
type GSet struct{ obj *SimpleObject }

// NewGSetFromFA builds a grow-only set over a fresh fetch&add snapshot. A
// WithSnapshotBound option packs the snapshot into a machine word when the
// encoding fits, capping lifetime operations at the bound.
func NewGSetFromFA(w prim.World, name string, n int, opts ...SnapshotOption) *GSet {
	return &GSet{obj: NewSimpleObjectFromFA(w, name, SimpleGSet{}, n, opts...)}
}

// Add inserts x.
func (s *GSet) Add(t prim.Thread, x int64) { s.obj.Execute(t, spec.MkOp(spec.MethodAdd, x)) }

// Has reports membership of x.
func (s *GSet) Has(t prim.Thread, x int64) bool {
	return s.obj.Execute(t, spec.MkOp(spec.MethodHas, x)) == "1"
}

// Max is a wait-free strongly-linearizable max-with-read built from
// Algorithm 1 over a snapshot — the simple-type max register of the paper's
// Section 3.3 examples, as a typed front-end. (Theorem 1's FAMaxRegister is
// the direct construction; this one exists so that the Algorithm 1 pillar
// covers the full clock / counter-with-read / max-with-read trio at any lane
// count, machine-word-backed via the multi-word snapshot past 63 lanes.)
type Max struct{ obj *SimpleObject }

// NewMaxFromFA builds a max-with-read over a fresh fetch&add snapshot. A
// WithSnapshotBound option selects the machine-word engine (single packed
// word or multi-word), capping lifetime operations at the bound.
func NewMaxFromFA(w prim.World, name string, n int, opts ...SnapshotOption) *Max {
	return &Max{obj: NewSimpleObjectFromFA(w, name, SimpleMaxRegister{}, n, opts...)}
}

// WriteMax writes v.
func (m *Max) WriteMax(t prim.Thread, v int64) {
	m.obj.Execute(t, spec.MkOp(spec.MethodWriteMax, v))
}

// ReadMax returns the largest value written so far.
func (m *Max) ReadMax(t prim.Thread) int64 {
	return mustParseInt(m.obj.Execute(t, spec.MkOp(spec.MethodReadMax)))
}

// TryWriteMax writes v, or returns ErrCapacityExhausted when a bounded
// object has no operation slots left.
func (m *Max) TryWriteMax(t prim.Thread, v int64) error {
	_, err := m.obj.TryExecute(t, spec.MkOp(spec.MethodWriteMax, v))
	return err
}

// TryReadMax returns the largest value written so far, or
// ErrCapacityExhausted.
func (m *Max) TryReadMax(t prim.Thread) (int64, error) {
	resp, err := m.obj.TryExecute(t, spec.MkOp(spec.MethodReadMax))
	if err != nil {
		return 0, err
	}
	return mustParseInt(resp), nil
}

// Engine names the snapshot substrate ("packed", "multiword", "wide").
func (m *Max) Engine() string { return m.obj.SnapshotEngine() }

// Words returns the snapshot's machine-word count (0 when wide).
func (m *Max) Words() int { return m.obj.SnapshotWords() }

// Capacity returns the lifetime operation budget, or -1 when unbounded.
func (m *Max) Capacity() int64 { return m.obj.Capacity() }

// Used returns how many operations have been admitted against that budget.
func (m *Max) Used() int64 { return m.obj.Executed() }
