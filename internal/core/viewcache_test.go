package core

import (
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"stronglin/internal/history"
	"stronglin/internal/obs"
	"stronglin/internal/prim"
	"stronglin/internal/sim"
	"stronglin/internal/spec"
)

// The multi-word snapshot's VIEW CACHE (WithViewCache): a validated scan
// publishes its decoded view keyed by the collect's word-0 value, and a later
// scan serves the cached view after re-validating the anchor with ONE fresh
// word-0 read — still its final view-determining step, the identical closing
// announce witness the full collect and the adopt path end with. This file
// verifies the cached configuration the package's usual three ways: an
// exhaustive strong-linearizability model check whose exploration provably
// reaches cache hits AND refreshes, randomized real-concurrency stress
// (comparability under an update storm, then a quiescent phase pinning the
// hit path), and a read-heavy diff-fuzz against the wide oracle — plus the
// negative twin: serving the cache WITHOUT the fresh word-0 witness
// (scanCachedStaleInto) is linearizable on the crafted executions but NOT
// strongly linearizable, pinned by sim.TreeFromSchedules +
// history.CheckStrongLin. The cache does not exempt the
// announce-as-final-step rule.

// TestMultiwordCachedScanStrongLin is the exhaustive cached-path check: two
// scans against a word-1 updater (payload and announce on different words,
// the shape whose in-flight states are hardest on validation) with the view
// cache enabled. The op wrappers tally the cache telemetry across the
// exploration's stateless replays: the tree this verdict covers must
// actually contain refresh branches AND anchor-match hit branches — a serve
// of a previously validated view re-witnessed by one fresh word-0 read —
// otherwise the test is vacuous and fails.
func TestMultiwordCachedScanStrongLin(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive model check; skipped in -short mode")
	}
	var hits obs.Counter
	var misses, refreshes atomic.Int64
	setup := func(w *sim.World) []sim.Program {
		s := NewFASnapshot(w, "snap", 2, WithSnapshotBound(mwBound2), WithViewCache(true),
			WithSnapshotObs(obs.SnapMetrics{CacheHits: &hits}))
		if s.Words() != 2 {
			t.Fatalf("words = %d, want 2", s.Words())
		}
		tally := func(op sim.Op) sim.Op {
			run := op.Run
			op.Run = func(th prim.Thread) string {
				resp := run(th)
				cs := s.CacheStats()
				misses.Add(cs.Misses)
				refreshes.Add(cs.Refreshes)
				return resp
			}
			return op
		}
		return []sim.Program{
			{tally(opScan(s)), tally(opScan(s))},
			{tally(opUpdate(s, 1, 1))}, // lane 1: word 1, separate announce
		}
	}
	verifySL(t, 2, setup, spec.Snapshot{})
	if hits.Load() == 0 || refreshes.Load() == 0 {
		t.Fatalf("exploration reached hits=%d refreshes=%d (misses=%d); the cached-path verdict must cover both",
			hits.Load(), refreshes.Load(), misses.Load())
	}
	t.Logf("view cache reached across replays: hits=%d misses=%d refreshes=%d",
		hits.Load(), misses.Load(), refreshes.Load())
}

// TestMultiwordCachedStaleNotStrongLin pins the negative twin of the view
// cache, mirroring scanUnanchoredInto's lesson one layer up: a scan that
// serves the cached view WITHOUT the fresh word-0 witness
// (scanCachedStaleInto) returns a true state — some validated collect pinned
// it — so crafted executions stay linearizable; but the pinned instant may
// lie in the past of an update that completed after the entry was published,
// and the stale scan's eventual view hangs on whether a fresh scan refreshes
// the shared entry first. The schedule tree below contains exactly that
// commitment point: a scan warms the cache, the stale scan is invoked, a
// word-0 update completes (staling the entry), and the two futures diverge —
// serve the stale entry now (view without the completed update) or after a
// fresh scan has refreshed it (view with it). No prefix-closed linearization
// survives both: sim.TreeFromSchedules + history.CheckStrongLin refute
// strong linearizability, soundly (a pruned tree only removes futures). The
// shipped fast path's one fresh word-0 read is what forecloses this: on the
// stale anchor it misses and falls back to the collect.
func TestMultiwordCachedStaleNotStrongLin(t *testing.T) {
	setup := func(w *sim.World) []sim.Program {
		s := NewFASnapshot(w, "snap", 3, WithSnapshotBound(mwBound24), WithViewCache(true)) // lanes 0,1 word 0; lane 2 word 1
		twin := sim.Op{
			Name: "scan-cached-stale()",
			Spec: spec.MkOp(spec.MethodScan),
			Run: func(th prim.Thread) string {
				return spec.RespVec(s.scanCachedStaleInto(th, make([]int64, 3)))
			},
		}
		return []sim.Program{
			{opUpdate(s, 0, 1)}, // word 0: completes while the stale entry survives
			{twin},
			{opScan(s), opScan(s)}, // warm the cache, then refresh it in future B
		}
	}
	// Shared prefix: p2's first scan validates and publishes ([0 0], anchor
	// a0); the twin is invoked (no steps yet); upd0 completes — its payload
	// XADD moves word 0, staling the entry without touching it.
	prefix := []int{
		2, 2, 2, 2, 2, 2, 2, // scan A: invoke, cache read (cold), collect w1 w0, round w1 w0, publish
		1,       // twin: invoke
		0, 0, 0, // upd0: invoke, payload w0 (= announce), pressure poll
	}
	// Future A: the twin serves the STALE entry right away (view [0 0],
	// missing completed upd0); p2's second scan then sees the moved anchor,
	// misses, and re-collects [1 0].
	futureA := []int{1, 2, 2, 2, 2, 2, 2, 2, 2}
	// Future B: p2's second scan refreshes the entry FIRST (miss: cache read,
	// stale-anchor probe, collect, round, publish [1 0]) — and the twin
	// serves THAT (view [1 0]).
	futureB := []int{2, 2, 2, 2, 2, 2, 2, 2, 1}

	futures := []struct {
		name, wantTwin string
		sched          []int
	}{
		{"A", spec.RespVec([]int64{0, 0, 0}), append(append([]int{}, prefix...), futureA...)},
		{"B", spec.RespVec([]int64{1, 0, 0}), append(append([]int{}, prefix...), futureB...)},
	}
	var schedules [][]int
	for _, f := range futures {
		exec, err := sim.Run(3, setup, f.sched)
		if err != nil {
			t.Fatalf("schedule %s: %v", f.name, err)
		}
		if !exec.Complete {
			t.Fatalf("schedule %s incomplete: %v (enabled at end: %v)", f.name, exec.Schedule, exec.Enabled[len(exec.Enabled)-1])
		}
		if got := exec.Responses()[1]; got != f.wantTwin {
			t.Fatalf("schedule %s: twin scan returned %s, want %s", f.name, got, f.wantTwin)
		}
		h := history.FromEvents(3, exec.Ops, exec.Events)
		if res := history.CheckLinearizable(h, spec.Snapshot{}); !res.Ok {
			t.Fatalf("schedule %s must stay linearizable (cached views are true states): %s", f.name, h.String())
		}
		schedules = append(schedules, append([]int{}, exec.Schedule...))
	}

	tree, err := sim.TreeFromSchedules(3, setup, schedules)
	if err != nil {
		t.Fatal(err)
	}
	res := history.CheckStrongLin(tree, spec.Snapshot{}, nil)
	if res.Ok {
		t.Fatal("the witness-free cached serve must NOT be strongly linearizable on the branching futures")
	}
	t.Logf("witness-free cached-serve commitment counterexample: %v", res.Counterexample)
}

// TestMultiwordCachedScansComparableUnderRace races cached scans against an
// update storm under real goroutine concurrency: 2 updaters storm different
// words while 2 scanners drive the cached fast path — every returned view,
// served or collected, must remain pairwise comparable (each lane's history
// is strictly increasing, so incomparability would expose a torn or
// resurrected view). A quiescent phase then pins the hit path
// deterministically: with the updaters stopped, the first scan refreshes the
// entry and every later scan must serve it by anchor match, agreeing with
// the final collected state exactly.
func TestMultiwordCachedScansComparableUnderRace(t *testing.T) {
	w := prim.NewRealWorld()
	const lanes = 4
	var hits obs.Counter
	s := NewFASnapshot(w, "snap", lanes, WithSnapshotBound(mwBound2), WithViewCache(true),
		WithSnapshotObs(obs.SnapMetrics{CacheHits: &hits}))
	if !s.Multiword() {
		t.Fatal("config must stripe")
	}
	const scanners, perScanner = 2, 400
	var stop atomic.Bool
	var updWG, scanWG sync.WaitGroup
	for p := 0; p < 2; p++ {
		updWG.Add(1)
		go func(p int) {
			defer updWG.Done()
			th := prim.RealThread(p)
			for v := int64(1); !stop.Load(); v++ {
				s.Update(th, v)
			}
		}(p)
	}
	views := make([][][]int64, scanners)
	for sc := 0; sc < scanners; sc++ {
		scanWG.Add(1)
		go func(sc int) {
			defer scanWG.Done()
			th := prim.RealThread(2 + sc)
			for i := 0; i < perScanner; i++ {
				views[sc] = append(views[sc], s.Scan(th))
			}
		}(sc)
	}
	scanWG.Wait()
	stop.Store(true)
	updWG.Wait()
	var all [][]int64
	for sc := range views {
		all = append(all, views[sc]...)
	}
	comparable := func(a, b []int64) bool {
		le, ge := true, true
		for i := range a {
			le = le && a[i] <= b[i]
			ge = ge && a[i] >= b[i]
		}
		return le || ge
	}
	for i := 0; i < len(all); i++ {
		for j := i + 1; j < len(all); j++ {
			if !comparable(all[i], all[j]) {
				t.Fatalf("incomparable views: %v vs %v", all[i], all[j])
			}
		}
	}
	// Quiescent phase: the object no longer changes, so after one refreshing
	// scan every scan must hit — and every served view must equal the
	// collected state bit for bit.
	th := prim.RealThread(2)
	want := s.Scan(th)
	before := hits.Load()
	const quiet = 100
	for i := 0; i < quiet; i++ {
		if got := s.Scan(th); !reflect.DeepEqual(got, want) {
			t.Fatalf("quiescent cached scan %d = %v, want %v", i, got, want)
		}
	}
	gained := hits.Load() - before
	if gained < quiet {
		t.Fatalf("quiescent phase hit %d times, want at least %d", gained, quiet)
	}
	cs := s.CacheStats()
	t.Logf("view cache under stress: %d hits, %d misses, %d refreshes over %d scans",
		hits.Load(), cs.Misses, cs.Refreshes, scanners*perScanner+quiet+1)
}

// TestMultiwordCachedScanAllocFree pins the steady-state 0 allocs/op
// contract of the cached fast path: once the entry is warm and the object
// quiescent, ScanInto serves hits — two register reads and a copy into the
// caller's view — without allocating. (The refresh on a miss allocates the
// published entry; that is a change-driven cost the contended bench carries,
// absorbed here by AllocsPerRun's warmup run.)
func TestMultiwordCachedScanAllocFree(t *testing.T) {
	w := prim.NewRealWorld()
	const lanes = 8
	s := NewFASnapshot(w, "snap", lanes, WithSnapshotBound(1<<15-1), WithViewCache(true))
	if !s.Multiword() {
		t.Fatal("config must stripe")
	}
	th := prim.RealThread(0)
	s.Update(th, 42)
	view := make([]int64, lanes)
	if allocs := testing.AllocsPerRun(200, func() { s.ScanInto(th, view) }); allocs != 0 {
		t.Fatalf("cached ScanInto allocates %.1f per op, want 0", allocs)
	}
	if cs := s.CacheStats(); cs.Refreshes == 0 {
		t.Fatalf("alloc loop never refreshed the cache: %+v", cs)
	}
}

// FuzzMultiwordCachedVsWideSnapshot diff-fuzzes the cached engine against
// the wide register as oracle on a read-heavy mix (three scans per update on
// average, so most scans land on a warm anchor), exactly like the other
// engines' fuzzes: same updates applied to both, every scan must agree. This
// pins hit/miss boundary behaviour around every anchor movement — a scan
// right after an update must miss and re-collect, repeated scans must serve
// the identical view.
func FuzzMultiwordCachedVsWideSnapshot(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7})
	f.Add([]byte{250, 125, 60, 30, 15, 7, 3, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		const lanes, bound = 8, 255
		w := sim.NewSoloWorld()
		cachedS := NewFASnapshot(w, "c", lanes, WithSnapshotBound(bound), WithViewCache(true))
		wide := NewFASnapshot(w, "w", lanes)
		if !cachedS.Multiword() {
			t.Fatal("fuzz config must stripe")
		}
		for _, b := range data {
			th := sim.SoloThread(int(b) % lanes)
			if b%4 == 0 {
				v := int64(b)
				cachedS.Update(th, v)
				wide.Update(th, v)
			} else if p, v := cachedS.Scan(th), wide.Scan(th); !reflect.DeepEqual(p, v) {
				t.Fatalf("cached Scan = %v, wide Scan = %v", p, v)
			}
		}
		th := sim.SoloThread(0)
		if p, v := cachedS.Scan(th), wide.Scan(th); !reflect.DeepEqual(p, v) {
			t.Fatalf("final cached Scan = %v, wide Scan = %v", p, v)
		}
	})
}
