package core

import (
	"fmt"
	"math/big"
	"sync"

	"stronglin/internal/prim"
)

// This file provides the shard-friendly cores used by internal/shard: monotone
// objects whose every operation is a single fetch&add step on one shared
// register. Like FAMaxRegister and FASnapshot, each operation's unique
// fetch&add is its linearization point, so strong linearizability is immediate
// (and model-checked in the tests). The sharded layer stripes writes across S
// independent instances and combines reads; see internal/shard for the
// monotone-combination argument.

// FACounter is a wait-free strongly-linearizable monotone (increment-only)
// counter from a single fetch&add register: Inc is fetch&add(R, 1), Add(k) is
// fetch&add(R, k), and Read is fetch&add(R, 0). It is the increment-only
// specialisation of the paper's observation that fetch&add directly gives
// single-step counting (cf. Theorem 9's readable fetch&increment, which needs
// test&set only because it must also RETURN the pre-increment value); a
// monotone counter's inc returns nothing, so one consensus-number-2 primitive
// suffices with no construction at all.
type FACounter struct {
	w prim.World
	r prim.FetchAdd
}

// NewFACounter allocates the register name+".R"; the counter starts at 0.
func NewFACounter(w prim.World, name string) *FACounter {
	return &FACounter{w: w, r: w.FetchAdd(name + ".R")}
}

// Inc increments the counter.
func (c *FACounter) Inc(t prim.Thread) {
	c.r.FetchAdd(t, one)
	prim.MarkLinPoint(c.w, t)
}

// Add adds k (which must be non-negative) to the counter.
func (c *FACounter) Add(t prim.Thread, k int64) {
	if k < 0 {
		panic(fmt.Sprintf("core: FACounter.Add(%d): deltas must be non-negative", k))
	}
	c.r.FetchAdd(t, big.NewInt(k))
	prim.MarkLinPoint(c.w, t)
}

// Read returns the counter value.
func (c *FACounter) Read(t prim.Thread) int64 {
	v := c.r.FetchAdd(t, zero).Int64()
	prim.MarkLinPoint(c.w, t)
	return v
}

// FAGSet is a wait-free strongly-linearizable grow-only set from a single
// fetch&add register, for n processes and non-negative elements.
//
// Element x of process i occupies bit x*n+i of the shared register (lane-local
// bit x of lane i, in the interleaved layout of FAMaxRegister/FASnapshot): x
// is a member iff any lane has bit x set. Add(x) sets the caller's bit with
// one fetch&add the first time the caller adds x, and performs fetch&add(R, 0)
// on repeats — per-process once-bits make the non-idempotent fetch&add encode
// the idempotent add, exactly as the unary max-register write only ever adds
// fresh bits. Has and Elems are fetch&add(R, 0) followed by local decoding.
//
// Every operation performs exactly one fetch&add, which is its linearization
// point. Unlike the Algorithm 1 GSet (Theorems 3-4), which pays a snapshot
// scan plus an operation-graph linearization per operation, every FAGSet
// operation is O(1) shared steps — the shard-friendly trade: it implements
// only the grow-only set rather than every simple type.
type FAGSet struct {
	n      int
	w      prim.World
	r      prim.FetchAdd
	laneOf func(id int) int // process ID -> lane index (identity by default)

	// added[i] records which elements the process on lane i has already
	// inserted; it is a process-local once-guard (written only by that
	// process), not shared state. The mutex protects nothing across processes
	// — each map is single-writer — but keeps the race detector satisfied
	// about map growth; reads of membership go through the shared register
	// only.
	added []map[int64]struct{}
	mu    []sync.Mutex
}

// GSetOption configures NewFAGSet.
type GSetOption func(*FAGSet)

// WithGSetLaneMap routes process IDs to lane indices in [0, n), exactly as
// WithLaneMap does for the max register: the sharded layer maps its subset of
// writers compactly so each shard's register is only as wide as its own
// writer count requires. The map must be injective over the writing
// processes; thread identity (and so sim scheduling) is unaffected.
func WithGSetLaneMap(laneOf func(id int) int) GSetOption {
	return func(s *FAGSet) { s.laneOf = laneOf }
}

// NewFAGSet allocates the construction for n lanes using a single fetch&add
// register named name+".R".
func NewFAGSet(w prim.World, name string, n int, opts ...GSetOption) *FAGSet {
	s := &FAGSet{
		n:      n,
		w:      w,
		r:      w.FetchAdd(name + ".R"),
		laneOf: func(id int) int { return id },
		added:  make([]map[int64]struct{}, n),
		mu:     make([]sync.Mutex, n),
	}
	for i := range s.added {
		s.added[i] = make(map[int64]struct{})
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Add inserts x (which must be non-negative) on behalf of t.
func (s *FAGSet) Add(t prim.Thread, x int64) {
	if x < 0 {
		panic(fmt.Sprintf("core: FAGSet.Add(%d): elements must be non-negative", x))
	}
	i := s.laneOf(t.ID())
	s.mu[i].Lock()
	_, dup := s.added[i][x]
	if !dup {
		s.added[i][x] = struct{}{}
	}
	s.mu[i].Unlock()
	if dup {
		s.r.FetchAdd(t, zero)
		prim.MarkLinPoint(s.w, t)
		return
	}
	delta := new(big.Int)
	delta.SetBit(delta, int(x)*s.n+i, 1)
	s.r.FetchAdd(t, delta)
	prim.MarkLinPoint(s.w, t)
}

// Has reports membership of x.
func (s *FAGSet) Has(t prim.Thread, x int64) bool {
	word := s.r.FetchAdd(t, zero)
	prim.MarkLinPoint(s.w, t)
	if x < 0 {
		return false
	}
	for i := 0; i < s.n; i++ {
		if word.Bit(int(x)*s.n+i) == 1 {
			return true
		}
	}
	return false
}

// Elems returns the members in ascending order.
func (s *FAGSet) Elems(t prim.Thread) []int64 {
	word := s.r.FetchAdd(t, zero)
	prim.MarkLinPoint(s.w, t)
	var out []int64
	for pos := 0; pos < word.BitLen(); pos++ {
		if word.Bit(pos) == 1 {
			x := int64(pos / s.n)
			if len(out) == 0 || out[len(out)-1] != x {
				out = append(out, x)
			}
		}
	}
	return out
}
