package core

import (
	"fmt"
	"sync"

	"stronglin/internal/interleave"
	"stronglin/internal/prim"
)

// This file provides the shard-friendly cores used by internal/shard: monotone
// objects whose every operation is a single fetch&add step on one shared
// register. Like FAMaxRegister and FASnapshot, each operation's unique
// fetch&add is its linearization point, so strong linearizability is immediate
// (and model-checked in the tests). The sharded layer stripes writes across S
// independent instances and combines reads; see internal/shard for the
// monotone-combination argument.

// FACounter is a wait-free strongly-linearizable monotone (increment-only)
// counter from a single fetch&add register: Inc is fetch&add(R, 1), Add(k) is
// fetch&add(R, k), and Read is fetch&add(R, 0). It is the increment-only
// specialisation of the paper's observation that fetch&add directly gives
// single-step counting (cf. Theorem 9's readable fetch&increment, which needs
// test&set only because it must also RETURN the pre-increment value); a
// monotone counter's inc returns nothing, so one consensus-number-2 primitive
// suffices with no construction at all.
//
// With WithCounterBound the register becomes a single machine word
// (prim.FetchAddInt — hardware XADD) when the declared maximum fits 62 bits;
// every operation is still one fetch&add on one register, so the
// linearization argument is unchanged. Operations that would push the count
// past the packed capacity panic (the value is unrepresentable).
type FACounter struct {
	w     prim.World
	r     prim.FetchAdd    // wide engine; nil when packed
	ri    prim.FetchAddInt // packed engine; nil when wide
	bound int64            // -1: unbounded (wide); >= 0: declared max count
}

// maxPackedCount is the largest count the packed counter represents. Keeping
// it below 2^62 leaves headroom so that a single in-range Add can never wrap
// the int64 sign bit before the overflow check.
const maxPackedCount = int64(1)<<62 - 1

// CounterOption configures NewFACounter.
type CounterOption func(*FACounter)

// WithCounterBound declares that the counter value never exceeds bound
// (>= 0). Any bound up to 2^62-1 is machine-word representable, so the
// constructor selects the packed engine; larger bounds fall back to the wide
// register. Unlike the max-register and set bounds, the declaration is a
// capacity promise used only for engine selection, not a per-operation
// constraint: an increment has no value to check against a domain (and a
// shard of a sharded counter cannot see the global count at all). The packed
// engine panics only when the count would exceed its 2^62-1 capacity.
func WithCounterBound(bound int64) CounterOption {
	if bound < 0 {
		panic(fmt.Sprintf("core: WithCounterBound(%d): bound must be non-negative", bound))
	}
	return func(c *FACounter) { c.bound = bound }
}

// NewFACounter allocates the register name+".R"; the counter starts at 0.
func NewFACounter(w prim.World, name string, opts ...CounterOption) *FACounter {
	c := &FACounter{w: w, bound: -1}
	for _, o := range opts {
		o(c)
	}
	if c.bound >= 0 && c.bound <= maxPackedCount {
		c.ri = w.FetchAddInt(name+".R", 0)
	} else {
		c.r = w.FetchAdd(name + ".R")
	}
	return c
}

// Packed reports whether the register is the packed machine word.
func (c *FACounter) Packed() bool { return c.ri != nil }

// Inc increments the counter.
func (c *FACounter) Inc(t prim.Thread) {
	if c.ri != nil {
		if prev := c.ri.FetchAddInt(t, 1); prev >= maxPackedCount {
			panic("core: FACounter.Inc: packed counter overflow")
		}
	} else {
		c.r.FetchAdd(t, one)
	}
	prim.MarkLinPoint(c.w, t)
}

// Add adds k (which must be non-negative) to the counter.
func (c *FACounter) Add(t prim.Thread, k int64) {
	if k < 0 {
		panic(fmt.Sprintf("core: FACounter.Add(%d): deltas must be non-negative", k))
	}
	if c.ri != nil {
		if k > maxPackedCount {
			panic(fmt.Sprintf("core: FACounter.Add(%d): delta exceeds the packed capacity", k))
		}
		if prev := c.ri.FetchAddInt(t, k); prev > maxPackedCount-k {
			panic(fmt.Sprintf("core: FACounter.Add(%d): packed counter overflow", k))
		}
	} else {
		c.r.FetchAdd(t, interleave.SmallInt(k))
	}
	prim.MarkLinPoint(c.w, t)
}

// Read returns the counter value.
func (c *FACounter) Read(t prim.Thread) int64 {
	var v int64
	if c.ri != nil {
		v = c.ri.FetchAddInt(t, 0)
	} else {
		v = c.r.FetchAdd(t, zero).Int64()
	}
	prim.MarkLinPoint(c.w, t)
	return v
}

// FAGSet is a wait-free strongly-linearizable grow-only set from a single
// fetch&add register, for n processes and non-negative elements.
//
// Element x of process i occupies bit x*n+i of the shared register (lane-local
// bit x of lane i, in the interleaved layout of FAMaxRegister/FASnapshot): x
// is a member iff any lane has bit x set. Add(x) sets the caller's bit with
// one fetch&add the first time the caller adds x, and performs fetch&add(R, 0)
// on repeats — per-process once-bits make the non-idempotent fetch&add encode
// the idempotent add, exactly as the unary max-register write only ever adds
// fresh bits. Has and Elems are fetch&add(R, 0) followed by local decoding.
//
// Every operation performs exactly one fetch&add, which is its linearization
// point. Unlike the Algorithm 1 GSet (Theorems 3-4), which pays a snapshot
// scan plus an operation-graph linearization per operation, every FAGSet
// operation is O(1) shared steps — the shard-friendly trade: it implements
// only the grow-only set rather than every simple type.
//
// With WithGSetBound the register becomes a single machine word when the
// element bitmap fits (lanes x (bound+1) <= 63 bits): one hardware XADD
// register instead of the wide one, same single-fetch&add linearization
// points; Add panics on elements beyond the bound (unrepresentable). When the
// encoding does not fit, the constructor falls back to the wide register.
type FAGSet struct {
	n      int
	w      prim.World
	codec  interleave.Codec
	r      prim.FetchAdd    // wide engine; nil when packed
	rp     prim.FetchAddInt // packed engine; nil when wide
	pc     interleave.Packed
	bound  int64            // -1: unbounded (wide); >= 0: declared max element
	laneOf func(id int) int // process ID -> lane index (identity by default)

	// added[i] records which elements the process on lane i has already
	// inserted; it is a process-local once-guard (written only by that
	// process), not shared state. The mutex protects nothing across processes
	// — each map is single-writer — but keeps the race detector satisfied
	// about map growth; reads of membership go through the shared register
	// only.
	added []map[int64]struct{}
	mu    []sync.Mutex
}

// GSetOption configures NewFAGSet.
type GSetOption func(*FAGSet)

// WithGSetLaneMap routes process IDs to lane indices in [0, n), exactly as
// WithLaneMap does for the max register: the sharded layer maps its subset of
// writers compactly so each shard's register is only as wide as its own
// writer count requires. The map must be injective over the writing
// processes; thread identity (and so sim scheduling) is unaffected.
func WithGSetLaneMap(laneOf func(id int) int) GSetOption {
	return func(s *FAGSet) { s.laneOf = laneOf }
}

// WithGSetBound declares that every element is in [0, bound], and makes Add
// panic on elements beyond it (like negatives); Has and Elems simply never
// find such elements. When the element bitmap fits a machine word
// (n x (bound+1) <= 63 bits) the construction runs over a single
// prim.FetchAddInt register; otherwise it falls back to the wide register.
// The bound is enforced either way, so behaviour does not depend on which
// engine was selected (a sharded object whose shards host different lane
// counts may mix engines).
func WithGSetBound(bound int64) GSetOption {
	if bound < 0 {
		panic(fmt.Sprintf("core: WithGSetBound(%d): bound must be non-negative", bound))
	}
	return func(s *FAGSet) { s.bound = bound }
}

// NewFAGSet allocates the construction for n lanes using a single fetch&add
// register named name+".R".
func NewFAGSet(w prim.World, name string, n int, opts ...GSetOption) *FAGSet {
	s := &FAGSet{
		n:      n,
		w:      w,
		codec:  interleave.MustNew(n),
		bound:  -1,
		laneOf: func(id int) int { return id },
		added:  make([]map[int64]struct{}, n),
		mu:     make([]sync.Mutex, n),
	}
	for i := range s.added {
		s.added[i] = make(map[int64]struct{})
	}
	for _, o := range opts {
		o(s)
	}
	// bound < 63 before the int conversion: a packable lane is at most 63
	// bits, and a huge int64 bound must not truncate on 32-bit platforms. A
	// bound that does not pack stays declared (and enforced) over the wide
	// register.
	if s.bound >= 0 && s.bound < 63 {
		if pc, ok := interleave.NewPacked(n, int(s.bound)+1); ok {
			s.pc = pc
			s.rp = w.FetchAddInt(name+".R", 0)
			return s
		}
	}
	s.r = w.FetchAdd(name + ".R")
	return s
}

// Packed reports whether the register is the packed machine word.
func (s *FAGSet) Packed() bool { return s.rp != nil }

// Add inserts x (which must be non-negative) on behalf of t.
func (s *FAGSet) Add(t prim.Thread, x int64) {
	if x < 0 {
		panic(fmt.Sprintf("core: FAGSet.Add(%d): elements must be non-negative", x))
	}
	if s.bound >= 0 && x > s.bound {
		panic(fmt.Sprintf("core: FAGSet.Add(%d): element exceeds the declared bound %d", x, s.bound))
	}
	i := s.laneOf(t.ID())
	s.mu[i].Lock()
	_, dup := s.added[i][x]
	if !dup {
		s.added[i][x] = struct{}{}
	}
	s.mu[i].Unlock()
	if dup {
		if s.rp != nil {
			s.rp.FetchAddInt(t, 0)
		} else {
			s.r.FetchAdd(t, zero)
		}
		prim.MarkLinPoint(s.w, t)
		return
	}
	if s.rp != nil {
		s.rp.FetchAddInt(t, s.pc.Spread(int64(1)<<x, i))
	} else {
		s.r.FetchAdd(t, s.codec.SpreadBitDelta(i, int(x)))
	}
	prim.MarkLinPoint(s.w, t)
}

// Has reports membership of x.
func (s *FAGSet) Has(t prim.Thread, x int64) bool {
	if s.rp != nil {
		word := s.rp.FetchAddInt(t, 0)
		prim.MarkLinPoint(s.w, t)
		if x < 0 || x > s.bound {
			return false
		}
		for i := 0; i < s.n; i++ {
			if s.pc.Lane(word, i)&(int64(1)<<x) != 0 {
				return true
			}
		}
		return false
	}
	word := s.r.FetchAdd(t, zero)
	prim.MarkLinPoint(s.w, t)
	// Out-of-domain queries are misses on the wide path too (and the bound
	// check keeps a huge x from overflowing the int bit index below).
	if x < 0 || (s.bound >= 0 && x > s.bound) {
		return false
	}
	for i := 0; i < s.n; i++ {
		if word.Bit(int(x)*s.n+i) == 1 {
			return true
		}
	}
	return false
}

// Elems returns the members in ascending order.
func (s *FAGSet) Elems(t prim.Thread) []int64 {
	if s.rp != nil {
		word := s.rp.FetchAddInt(t, 0)
		prim.MarkLinPoint(s.w, t)
		var union int64
		for i := 0; i < s.n; i++ {
			union |= s.pc.Lane(word, i)
		}
		var out []int64
		for x := int64(0); union != 0; x, union = x+1, union>>1 {
			if union&1 == 1 {
				out = append(out, x)
			}
		}
		return out
	}
	word := s.r.FetchAdd(t, zero)
	prim.MarkLinPoint(s.w, t)
	var out []int64
	for pos := 0; pos < word.BitLen(); pos++ {
		if word.Bit(pos) == 1 {
			x := int64(pos / s.n)
			if len(out) == 0 || out[len(out)-1] != x {
				out = append(out, x)
			}
		}
	}
	return out
}
