package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"stronglin/internal/history"
	"stronglin/internal/prim"
	"stronglin/internal/sim"
	"stronglin/internal/spec"
)

// opsOf enumerates a generator of plausible operations per simple type, used
// by the relation-validation property tests.
func opsOf(typ SimpleType, rng *rand.Rand) spec.Op {
	v := int64(rng.Intn(4))
	switch typ.Name() {
	case "counter":
		return []spec.Op{spec.MkOp(spec.MethodInc), spec.MkOp(spec.MethodDec), spec.MkOp(spec.MethodRead)}[rng.Intn(3)]
	case "monocounter":
		return []spec.Op{spec.MkOp(spec.MethodInc), spec.MkOp(spec.MethodRead)}[rng.Intn(2)]
	case "logicalclock":
		return []spec.Op{spec.MkOp(spec.MethodTick), spec.MkOp(spec.MethodRead)}[rng.Intn(2)]
	case "maxregister":
		if rng.Intn(2) == 0 {
			return spec.MkOp(spec.MethodWriteMax, v)
		}
		return spec.MkOp(spec.MethodReadMax)
	case "gset":
		if rng.Intn(2) == 0 {
			return spec.MkOp(spec.MethodAdd, v)
		}
		return spec.MkOp(spec.MethodHas, v)
	case "register":
		if rng.Intn(2) == 0 {
			return spec.MkOp(spec.MethodWrite, v)
		}
		return spec.MkOp(spec.MethodRead)
	default:
		panic("unknown simple type " + typ.Name())
	}
}

func applyState(t *testing.T, st spec.State, op spec.Op) (spec.State, string) {
	t.Helper()
	outs := st.Steps(op)
	if len(outs) != 1 {
		t.Fatalf("simple type op %v not deterministic", op)
	}
	return outs[0].Next, outs[0].Resp
}

// TestSimpleTypeRelationLaws validates the declared Commutes/Overwrites
// relations against the sequential specifications on randomized states —
// including the response-inclusive clauses of the Aspnes–Herlihy
// definitions — and checks the totality requirement: every pair commutes or
// overwrites in at least one direction.
func TestSimpleTypeRelationLaws(t *testing.T) {
	types := []SimpleType{
		SimpleCounter{}, SimpleMonotonicCounter{}, SimpleLogicalClock{},
		SimpleMaxRegister{}, SimpleGSet{}, SimpleRegister{},
	}
	for _, typ := range types {
		typ := typ
		t.Run(typ.Name(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(99))
			f := func(warmup8 uint8) bool {
				// Random reachable state.
				st := typ.Init(2)
				for i := 0; i < int(warmup8%6); i++ {
					st, _ = applyState(t, st, opsOf(typ, rng))
				}
				a, b := opsOf(typ, rng), opsOf(typ, rng)

				afterA, respAFirst := applyState(t, st, a)
				ab, respBSecond := applyState(t, afterA, b)
				afterB, respBFirst := applyState(t, st, b)
				ba, respASecond := applyState(t, afterB, a)

				if typ.Commutes(a, b) {
					if ab.Key() != ba.Key() || respAFirst != respASecond || respBFirst != respBSecond {
						t.Logf("%s: Commutes(%v,%v) violated at %s", typ.Name(), a, b, st.Key())
						return false
					}
				}
				if typ.Overwrites(a, b) && (ba.Key() != afterA.Key() || respASecond != respAFirst) {
					t.Logf("%s: Overwrites(%v,%v) violated at %s", typ.Name(), a, b, st.Key())
					return false
				}
				if typ.Overwrites(b, a) && (ab.Key() != afterB.Key() || respBSecond != respBFirst) {
					t.Logf("%s: Overwrites(%v,%v) violated at %s", typ.Name(), b, a, st.Key())
					return false
				}
				// Totality: simple types require commute-or-overwrite.
				if !typ.Commutes(a, b) && !typ.Overwrites(a, b) && !typ.Overwrites(b, a) {
					t.Logf("%s: pair (%v,%v) neither commutes nor overwrites", typ.Name(), a, b)
					return false
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 400, Rand: rng}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// notSimpleTick wraps the readable fetch&increment specification — "tick
// returning its position" — with bogus relation declarations. It is NOT a
// simple type: two fai operations have order-dependent responses and neither
// overwrites the other. Algorithm 1 over it must therefore produce
// non-linearizable executions, which the model checker detects. This guards
// the totality requirement of the SimpleType contract.
type notSimpleTick struct{ spec.FetchInc }

func (notSimpleTick) Commutes(a, b spec.Op) bool   { return true }
func (notSimpleTick) Overwrites(a, b spec.Op) bool { return b.Method == spec.MethodRead }

func TestLogicalClockWithReturnValueIsNotSimple(t *testing.T) {
	setup := func(w *sim.World) []sim.Program {
		o := NewSimpleObjectFromFA(w, "bad", notSimpleTick{}, 2)
		return []sim.Program{
			{opExecute(o, spec.MkOp(spec.MethodFAI))},
			{opExecute(o, spec.MkOp(spec.MethodFAI))},
		}
	}
	v, err := history.Verify(2, setup, spec.FetchInc{}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v.Linearizable {
		t.Fatal("Algorithm 1 over a non-simple type produced only linearizable executions; expected a violation")
	}
}

func TestSimpleObjectSequential(t *testing.T) {
	w := sim.NewSoloWorld()
	c := NewCounterFromFA(w, "ctr", 2)
	th0, th1 := sim.SoloThread(0), sim.SoloThread(1)
	c.Inc(th0)
	c.Inc(th1)
	c.Dec(th0)
	if got := c.Read(th1); got != 1 {
		t.Fatalf("counter = %d, want 1", got)
	}
}

func TestLogicalClockSequential(t *testing.T) {
	w := sim.NewSoloWorld()
	c := NewLogicalClockFromFA(w, "clk", 2)
	th := sim.SoloThread(0)
	c.Tick(th)
	c.Tick(th)
	if got := c.Read(sim.SoloThread(1)); got != 2 {
		t.Fatalf("read = %d, want 2", got)
	}
}

func TestGSetSequential(t *testing.T) {
	w := sim.NewSoloWorld()
	s := NewGSetFromFA(w, "set", 2)
	th := sim.SoloThread(0)
	if s.Has(th, 4) {
		t.Fatal("fresh set contains 4")
	}
	s.Add(th, 4)
	if !s.Has(sim.SoloThread(1), 4) {
		t.Fatal("added element missing")
	}
}

// E-T3/E-T4: Algorithm 1 over the fetch&add snapshot is strongly
// linearizable for each instantiated simple type.
func TestSimpleCounterStrongLin(t *testing.T) {
	setup := func(w *sim.World) []sim.Program {
		o := NewSimpleObjectFromFA(w, "ctr", SimpleCounter{}, 2)
		return []sim.Program{
			{opExecute(o, spec.MkOp(spec.MethodInc)), opExecute(o, spec.MkOp(spec.MethodRead))},
			{opExecute(o, spec.MkOp(spec.MethodInc)), opExecute(o, spec.MkOp(spec.MethodRead))},
		}
	}
	verifySL(t, 2, setup, spec.Counter{})
}

func TestSimpleCounterStrongLinThreeProcs(t *testing.T) {
	setup := func(w *sim.World) []sim.Program {
		o := NewSimpleObjectFromFA(w, "ctr", SimpleCounter{}, 3)
		return []sim.Program{
			{opExecute(o, spec.MkOp(spec.MethodInc))},
			{opExecute(o, spec.MkOp(spec.MethodDec))},
			{opExecute(o, spec.MkOp(spec.MethodRead))},
		}
	}
	verifySL(t, 3, setup, spec.Counter{})
}

func TestSimpleMaxRegisterStrongLin(t *testing.T) {
	setup := func(w *sim.World) []sim.Program {
		o := NewSimpleObjectFromFA(w, "max", SimpleMaxRegister{}, 2)
		return []sim.Program{
			{opExecute(o, spec.MkOp(spec.MethodWriteMax, 2)), opExecute(o, spec.MkOp(spec.MethodReadMax))},
			{opExecute(o, spec.MkOp(spec.MethodWriteMax, 1)), opExecute(o, spec.MkOp(spec.MethodReadMax))},
		}
	}
	verifySL(t, 2, setup, spec.MaxRegister{})
}

func TestSimpleRegisterStrongLin(t *testing.T) {
	// Writes mutually overwrite: the pid tie-break in the dominance order.
	setup := func(w *sim.World) []sim.Program {
		o := NewSimpleObjectFromFA(w, "reg", SimpleRegister{}, 2)
		return []sim.Program{
			{opExecute(o, spec.MkOp(spec.MethodWrite, 1)), opExecute(o, spec.MkOp(spec.MethodRead))},
			{opExecute(o, spec.MkOp(spec.MethodWrite, 2)), opExecute(o, spec.MkOp(spec.MethodRead))},
		}
	}
	verifySL(t, 2, setup, spec.RWRegister{})
}

func TestSimpleGSetStrongLin(t *testing.T) {
	setup := func(w *sim.World) []sim.Program {
		o := NewSimpleObjectFromFA(w, "set", SimpleGSet{}, 2)
		return []sim.Program{
			{opExecute(o, spec.MkOp(spec.MethodAdd, 1)), opExecute(o, spec.MkOp(spec.MethodHas, 2))},
			{opExecute(o, spec.MkOp(spec.MethodAdd, 2)), opExecute(o, spec.MkOp(spec.MethodHas, 1))},
		}
	}
	verifySL(t, 2, setup, spec.GSet{})
}

func TestSimpleLogicalClockStrongLin(t *testing.T) {
	setup := func(w *sim.World) []sim.Program {
		o := NewSimpleObjectFromFA(w, "clk", SimpleLogicalClock{}, 2)
		return []sim.Program{
			{opExecute(o, spec.MkOp(spec.MethodTick)), opExecute(o, spec.MkOp(spec.MethodRead))},
			{opExecute(o, spec.MkOp(spec.MethodTick))},
		}
	}
	verifySL(t, 2, setup, spec.LogicalClock{})
}

func TestSimpleCounterRealWorldStress(t *testing.T) {
	w := prim.NewRealWorld()
	const procs = 4
	c := NewCounterFromFA(w, "ctr", procs)
	rngs := make([]*rand.Rand, procs)
	for p := range rngs {
		rngs[p] = rand.New(rand.NewSource(int64(p) + 21))
	}
	h := history.Stress(history.StressConfig{
		Procs:      procs,
		OpsPerProc: 12,
		Gen: func(p, i int) history.StressOp {
			switch rngs[p].Intn(3) {
			case 0:
				return history.StressOp{
					Op: spec.MkOp(spec.MethodInc),
					Run: func(t prim.Thread) string {
						c.Inc(t)
						return spec.RespOK
					},
				}
			case 1:
				return history.StressOp{
					Op: spec.MkOp(spec.MethodDec),
					Run: func(t prim.Thread) string {
						c.Dec(t)
						return spec.RespOK
					},
				}
			default:
				return history.StressOp{
					Op:  spec.MkOp(spec.MethodRead),
					Run: func(t prim.Thread) string { return spec.RespInt(c.Read(t)) },
				}
			}
		},
	})
	if res := history.CheckLinearizable(h, spec.Counter{}); !res.Ok {
		t.Fatalf("stress history not linearizable: %s", h.String())
	}
}
