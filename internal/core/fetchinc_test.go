package core

import (
	"sync"
	"testing"

	"stronglin/internal/prim"
	"stronglin/internal/sim"
	"stronglin/internal/spec"
)

func TestFetchIncSequential(t *testing.T) {
	for name, build := range map[string]func() FetchIncAPI{
		"atomic-tas": func() FetchIncAPI { return NewFetchIncAtomic(sim.NewSoloWorld(), "fi") },
		"thm5-tas":   func() FetchIncAPI { return NewFetchIncFromTAS(sim.NewSoloWorld(), "fi") },
		"fa":         func() FetchIncAPI { return NewFAFetchInc(sim.NewSoloWorld(), "fi") },
	} {
		t.Run(name, func(t *testing.T) {
			f := build()
			th := sim.SoloThread(0)
			if got := f.Read(th); got != 1 {
				t.Fatalf("fresh Read = %d, want 1", got)
			}
			for want := int64(1); want <= 4; want++ {
				if got := f.FetchIncrement(th); got != want {
					t.Fatalf("FetchIncrement = %d, want %d", got, want)
				}
			}
			if got := f.Read(sim.SoloThread(1)); got != 5 {
				t.Fatalf("Read = %d, want 5", got)
			}
		})
	}
}

// E-T9: Theorem 9 — lock-free strongly-linearizable readable
// fetch&increment from (readable) test&set.
func TestFetchIncStrongLinAtomicBases(t *testing.T) {
	setup := func(w *sim.World) []sim.Program {
		f := NewFetchIncAtomic(w, "fi")
		return []sim.Program{
			{opFAI(f)},
			{opFAI(f)},
			{opFAIRead(f)},
		}
	}
	verifySL(t, 3, setup, spec.FetchInc{})
}

func TestFetchIncStrongLinComposedThm5(t *testing.T) {
	// The full Theorem 9 composition: readable test&sets are Theorem 5
	// constructions, so base objects are plain test&set and registers.
	setup := func(w *sim.World) []sim.Program {
		f := NewFetchIncFromTAS(w, "fi")
		return []sim.Program{
			{opFAI(f)},
			{opFAI(f), opFAIRead(f)},
		}
	}
	verifySL(t, 2, setup, spec.FetchInc{})
}

func TestFAFetchIncStrongLin(t *testing.T) {
	setup := func(w *sim.World) []sim.Program {
		f := NewFAFetchInc(w, "fi")
		return []sim.Program{
			{opFAI(f), opFAIRead(f)},
			{opFAI(f), opFAIRead(f)},
		}
	}
	verifySL(t, 2, setup, spec.FetchInc{})
}

func TestFetchIncRealWorldStress(t *testing.T) {
	const procs, reps = 8, 50
	w := prim.NewRealWorld()
	f := NewFetchIncFromTAS(w, "fi")
	var wg sync.WaitGroup
	got := make([][]int64, procs)
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			th := prim.RealThread(p)
			for i := 0; i < reps; i++ {
				got[p] = append(got[p], f.FetchIncrement(th))
			}
		}(p)
	}
	wg.Wait()
	// Uniqueness and density: the procs*reps results are a permutation of
	// 1..procs*reps.
	seen := make(map[int64]bool)
	for p := range got {
		for _, v := range got[p] {
			if seen[v] {
				t.Fatalf("duplicate fetch&increment result %d", v)
			}
			seen[v] = true
		}
	}
	for v := int64(1); v <= procs*reps; v++ {
		if !seen[v] {
			t.Fatalf("missing fetch&increment result %d", v)
		}
	}
}

func TestFetchIncReadDoesNotPerturb(t *testing.T) {
	w := sim.NewSoloWorld()
	f := NewFetchIncAtomic(w, "fi")
	th := sim.SoloThread(0)
	f.FetchIncrement(th)
	before := f.Read(th)
	for i := 0; i < 5; i++ {
		if got := f.Read(th); got != before {
			t.Fatalf("Read changed the state: %d -> %d", before, got)
		}
	}
}
