package core

import (
	"math/rand"
	"testing"

	"stronglin/internal/history"
	"stronglin/internal/prim"
	"stronglin/internal/sim"
	"stronglin/internal/spec"
)

func TestFAMaxRegisterSequential(t *testing.T) {
	w := sim.NewSoloWorld()
	m := NewFAMaxRegister(w, "max", 2)
	th := sim.SoloThread(0)
	if got := m.ReadMax(th); got != 0 {
		t.Fatalf("initial ReadMax = %d", got)
	}
	m.WriteMax(th, 5)
	if got := m.ReadMax(th); got != 5 {
		t.Fatalf("ReadMax = %d, want 5", got)
	}
	m.WriteMax(th, 3) // no-op write
	if got := m.ReadMax(th); got != 5 {
		t.Fatalf("ReadMax after smaller write = %d, want 5", got)
	}
	m.WriteMax(th, 9)
	if got := m.ReadMax(th); got != 9 {
		t.Fatalf("ReadMax = %d, want 9", got)
	}
}

func TestFAMaxRegisterPerProcessLanes(t *testing.T) {
	w := sim.NewSoloWorld()
	m := NewFAMaxRegister(w, "max", 3)
	// Different processes write interleaved values; the max must win.
	m.WriteMax(sim.SoloThread(0), 4)
	m.WriteMax(sim.SoloThread(1), 7)
	m.WriteMax(sim.SoloThread(2), 2)
	if got := m.ReadMax(sim.SoloThread(1)); got != 7 {
		t.Fatalf("ReadMax = %d, want 7", got)
	}
}

func TestFAMaxRegisterRejectsNegative(t *testing.T) {
	w := sim.NewSoloWorld()
	m := NewFAMaxRegister(w, "max", 1)
	defer func() {
		if recover() == nil {
			t.Fatal("negative WriteMax did not panic")
		}
	}()
	m.WriteMax(sim.SoloThread(0), -1)
}

// E-T1: Theorem 1 — the construction is strongly linearizable on every
// interleaving of the bounded configurations below.
func TestFAMaxRegisterStrongLinTwoWritersOneReader(t *testing.T) {
	setup := func(w *sim.World) []sim.Program {
		m := NewFAMaxRegister(w, "max", 3)
		return []sim.Program{
			{opWriteMax(m, 2)},
			{opWriteMax(m, 1)},
			{opReadMax(m), opReadMax(m)},
		}
	}
	v := verifySL(t, 3, setup, spec.MaxRegister{})
	if v.Leaves == 0 {
		t.Fatal("no executions explored")
	}
}

func TestFAMaxRegisterStrongLinWriteReadMix(t *testing.T) {
	setup := func(w *sim.World) []sim.Program {
		m := NewFAMaxRegister(w, "max", 2)
		return []sim.Program{
			{opWriteMax(m, 1), opReadMax(m)},
			{opWriteMax(m, 2), opReadMax(m)},
		}
	}
	verifySL(t, 2, setup, spec.MaxRegister{})
}

func TestFAMaxRegisterStrongLinNoopWrites(t *testing.T) {
	// Smaller-than-previous writes exercise the fetch&add(R,0) path.
	setup := func(w *sim.World) []sim.Program {
		m := NewFAMaxRegister(w, "max", 2)
		return []sim.Program{
			{opWriteMax(m, 3), opWriteMax(m, 1)},
			{opReadMax(m), opReadMax(m)},
		}
	}
	verifySL(t, 2, setup, spec.MaxRegister{})
}

// E-ABL1: dropping the fetch&add(R,0) on no-op writes keeps the object
// correct — the paper notes the step is only there to fix linearization
// points. Both variants must pass on the same configuration.
func TestMaxRegisterAblationNoFA0(t *testing.T) {
	setup := func(w *sim.World) []sim.Program {
		m := NewFAMaxRegister(w, "max", 2, WithoutNoopFA())
		return []sim.Program{
			{opWriteMax(m, 3), opWriteMax(m, 1)},
			{opReadMax(m), opReadMax(m)},
		}
	}
	verifySL(t, 2, setup, spec.MaxRegister{})
}

func TestFAMaxRegisterWidthGrowth(t *testing.T) {
	// E-WIDTH: the unary interleaved representation costs n bits per unit of
	// value — writing K as process i of n makes R at least K*n bits wide.
	w := sim.NewSoloWorld()
	const n = 4
	m := NewFAMaxRegister(w, "max", n)
	th := sim.SoloThread(2)
	m.WriteMax(th, 100)
	width := m.Width(th)
	if width < 100*n-n || width > 100*n+n {
		t.Fatalf("width = %d bits, want ≈ %d", width, 100*n)
	}
}

func TestFAMaxRegisterRealWorldStress(t *testing.T) {
	w := prim.NewRealWorld()
	const procs = 4
	m := NewFAMaxRegister(w, "max", procs)
	rngs := make([]*rand.Rand, procs)
	for p := range rngs {
		rngs[p] = rand.New(rand.NewSource(int64(p) + 1))
	}
	h := history.Stress(history.StressConfig{
		Procs:      procs,
		OpsPerProc: 30,
		Gen: func(p, i int) history.StressOp {
			if rngs[p].Intn(2) == 0 {
				v := int64(rngs[p].Intn(20))
				return history.StressOp{
					Op: spec.MkOp(spec.MethodWriteMax, v),
					Run: func(t prim.Thread) string {
						m.WriteMax(t, v)
						return spec.RespOK
					},
				}
			}
			return history.StressOp{
				Op:  spec.MkOp(spec.MethodReadMax),
				Run: func(t prim.Thread) string { return spec.RespInt(m.ReadMax(t)) },
			}
		},
	})
	if res := history.CheckLinearizable(h, spec.MaxRegister{}); !res.Ok {
		t.Fatalf("stress history not linearizable: %s", h.String())
	}
}
