package core

import (
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"stronglin/internal/history"
	"stronglin/internal/prim"
	"stronglin/internal/sim"
	"stronglin/internal/spec"
)

// The multi-word snapshot's HELPING path (PR 5): a scan past its retry
// budget raises the pressure register; value-changing updates poll it after
// announcing and deposit validated collects in the help slot; a starving
// scan adopts the freshest deposit, with the round's own closing word-0
// read — performed AFTER the slot read — witnessing that no update
// announced since the helper validated. This file verifies the helped path
// the package's usual three ways: an exhaustive strong-linearizability
// model check on a bounded configuration where the checker provably reaches
// deposits AND adoptions on explored branches, a crafted-schedule
// deterministic adoption race on the cross-word shape, and randomized
// real-concurrency stress (2 updaters x 2 scanners, budget 0, pairwise
// comparable views) — plus the negative twin: adopting WITHOUT the closing
// word-0 witness is linearizable but NOT strongly linearizable, pinned by
// sim.TreeFromSchedules + history.CheckStrongLin on the 3-proc cross-word
// configuration. Helping does not exempt the announce-as-final-step rule.
// The wait-freedom progress witnesses live in progress_test.go.

// TestMultiwordHelpedScanStrongLin is the exhaustive helped-path check:
// budget 0 (pressure raised after the first failed round) against a word-1
// updater, the minimal shape where adoption is reachable — the update's
// payload lands on word 1 with its announce still pending, so a round can
// fail while word 0 still matches a helper's deposit. The op wrappers tally
// the engine's helping telemetry across the exploration's stateless
// replays: the tree this verdict covers must actually contain deposit and
// adoption branches, otherwise the test is vacuous and fails.
func TestMultiwordHelpedScanStrongLin(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive model check; skipped in -short mode")
	}
	var deposits, adopts atomic.Int64
	setup := func(w *sim.World) []sim.Program {
		s := NewFASnapshot(w, "snap", 2, WithSnapshotBound(mwBound2), WithScanRetryBudget(0))
		if s.Words() != 2 {
			t.Fatalf("words = %d, want 2", s.Words())
		}
		tally := func(op sim.Op) sim.Op {
			run := op.Run
			op.Run = func(th prim.Thread) string {
				resp := run(th)
				hs := s.HelpStats()
				deposits.Add(hs.Deposits)
				adopts.Add(hs.Adopts)
				return resp
			}
			return op
		}
		return []sim.Program{
			{tally(opScan(s))},
			{tally(opUpdate(s, 1, 1))}, // lane 1: word 1, separate announce
		}
	}
	verifySL(t, 2, setup, spec.Snapshot{})
	if deposits.Load() == 0 || adopts.Load() == 0 {
		t.Fatalf("exploration reached deposits=%d adopts=%d; the helped-path verdict must cover both", deposits.Load(), adopts.Load())
	}
	t.Logf("helping reached across replays: deposits=%d adopts=%d", deposits.Load(), adopts.Load())
}

// TestMultiwordHelpedAdoptCraftedRace drives the SHIPPED engine through a
// deterministic adoption on the 3-proc cross-word shape the exhaustive
// envelope cannot hold with helping enabled: the scan exhausts a zero
// budget, the word-1 updater deposits a validated view, a second payload
// lands unannounced to fail the scan's next round while word 0 still
// matches the deposit — the scan must adopt, the recorded history must be
// linearizable, and the adopted view must carry the deposit's state.
func TestMultiwordHelpedAdoptCraftedRace(t *testing.T) {
	var adopted int64
	var view []int64
	setup := func(w *sim.World) []sim.Program {
		s := NewFASnapshot(w, "snap", 3, WithSnapshotBound(mwBound24), WithScanRetryBudget(0)) // lanes 0,1 word 0; lane 2 word 1
		scan := sim.Op{
			Name: "scan()",
			Spec: spec.MkOp(spec.MethodScan),
			Run: func(th prim.Thread) string {
				view = s.Scan(th)
				adopted = s.HelpStats().Adopts
				return spec.RespVec(view)
			},
		}
		return []sim.Program{
			{opUpdate(s, 0, 1)}, // word 0 (kept out of the window: runs last)
			{scan},
			{opUpdate(s, 2, 2), opUpdate(s, 2, 3)}, // word 1: deposit, then fail the round
		}
	}
	// Window: scan collects; upd2a's payload invalidates round 0 -> raise;
	// upd2a announces, polls pressure, helps, deposits; upd2b's payload
	// fails the scan's next round with word 0 untouched -> adopt.
	window := []int{
		1, 1, 1, // scan: invoke, initial collect (w1, w0)
		2, 2, // upd2a: invoke, payload w1
		1, 1, // scan round 0: w1 (differs), w0 -> fail -> raise pressure
		1,    // scan: raise step
		2, 2, // upd2a: announce w0, pressure poll (1)
		2, 2, 2, 2, // upd2a help: initial w1, w0; round w1, w0 -> valid
		2,    // upd2a: deposit
		2, 2, // upd2b: invoke, payload w1 (unannounced!)
		1,    // scan: slot read (deposit)
		1, 1, // scan round: w1 (differs -> fail), w0 (== deposit w0) -> ADOPT
		1,       // scan: lower pressure -> returns adopted view
		2, 2, 0, // upd2b announce + poll; upd0 runs after
	}
	policy := func(v sim.PolicyView) int {
		if v.Step < len(window) {
			p := window[v.Step]
			for _, e := range v.Enabled {
				if e == p {
					return p
				}
			}
		}
		return v.Enabled[0]
	}
	exec, err := sim.RunToCompletion(3, setup, policy, 200)
	if err != nil {
		t.Fatal(err)
	}
	if !exec.Complete {
		t.Fatalf("crafted adoption did not complete (schedule %v)", exec.Schedule)
	}
	h := history.FromEvents(3, exec.Ops, exec.Events)
	if res := history.CheckLinearizable(h, spec.Snapshot{}); !res.Ok {
		t.Fatalf("crafted adoption history not linearizable: %s", h.String())
	}
	if adopted == 0 {
		t.Fatalf("crafted schedule did not reach the adopt path (schedule %v, history %s)", exec.Schedule, h.String())
	}
	if want := []int64{0, 0, 2}; !reflect.DeepEqual(view, want) {
		t.Fatalf("adopted view = %v, want %v (the helper's validated state)", view, want)
	}
	t.Logf("adopted view %v, history: %s", view, h.String())
}

// TestMultiwordAdoptUnanchoredNotStrongLin pins the negative twin of the
// helping path, mirroring scanUnanchoredInto's lesson: a scan that adopts a
// deposited view WITHOUT re-witnessing word 0 as its final step
// (scanAdoptUnanchoredInto) returns a true state — the helper's validated
// pair pins one — so crafted executions stay linearizable; but the pinned
// instant can lie in the past of an update that already completed, and with
// the word-1 updater's second operation still in flight the scan's eventual
// view hangs on scheduling. The schedule tree below contains exactly that
// commitment point: the word-0 update completes after the helper deposited
// (its own help attempt is invalidated into giving up, so the stale deposit
// survives), and the two futures diverge — adopt the stale deposit now
// (view without the completed update) or after the second updater
// re-deposits (view with it). No prefix-closed linearization survives both:
// sim.TreeFromSchedules + history.CheckStrongLin refute strong
// linearizability, soundly (a pruned tree only removes futures). Helping
// does NOT exempt the announce-as-final-step rule — an adopted view needs
// the same closing witness a self-collected one does.
func TestMultiwordAdoptUnanchoredNotStrongLin(t *testing.T) {
	setup := func(w *sim.World) []sim.Program {
		s := NewFASnapshot(w, "snap", 3, WithSnapshotBound(mwBound24))
		twin := sim.Op{
			Name: "scan-adopt-unanchored()",
			Spec: spec.MkOp(spec.MethodScan),
			Run: func(th prim.Thread) string {
				return spec.RespVec(s.scanAdoptUnanchoredInto(th, make([]int64, 3)))
			},
		}
		return []sim.Program{
			{opUpdate(s, 0, 1)}, // word 0: completes while the stale deposit survives
			{twin},
			{opUpdate(s, 2, 2), opUpdate(s, 2, 3)}, // word 1: depositor, then the in-flight threat
		}
	}
	// Shared prefix: the twin raises pressure and collects; upd2a deposits a
	// validated [0 0 2]; upd0's payload lands (staling the deposit) and
	// upd2b's payload invalidates upd0's single help attempt, so upd0 gives
	// up and RETURNS with the stale deposit still in the slot.
	prefix := []int{
		1, 1, 1, 1, // twin: invoke, raise, initial collect (w1, w0)
		2, 2, 2, 2, // upd2a: invoke, payload w1, announce w0, pressure poll (1)
		2, 2, 2, 2, // upd2a help: initial w1, w0; round w1, w0 -> valid
		2,          // upd2a: deposit [0 0 2] -> returns
		2,          // upd2b: invoke
		0, 0, 0, 0, // upd0: invoke, payload w0 (stales the deposit), pressure poll (1), help initial w1
		2,       // upd2b: payload w1 (invalidates upd0's help baseline)
		0, 0, 0, // upd0 help: initial w0; round w1 (differs), round w0 -> single attempt spent -> upd0 RETURNS
	}
	// Future A: the twin adopts the STALE deposit right away (view [0 0 2],
	// missing completed upd0), then upd2b finishes (without helping: the
	// twin has already lowered pressure when upd2b polls).
	futureA := []int{1, 1, 2, 2}
	// Future B: upd2b finishes first — its help re-deposits a fresh view —
	// and the twin adopts THAT (view [1 0 3]).
	futureB := []int{2, 2, 2, 2, 2, 2, 2, 1, 1}

	// Replay each crafted schedule (trailing grants past completion are
	// dropped), check the complete history, and pin the two views whose
	// divergence carries the refutation.
	futures := []struct {
		name, wantScan string
		sched          []int
	}{
		{"A", spec.RespVec([]int64{0, 0, 2}), append(append([]int{}, prefix...), futureA...)},
		{"B", spec.RespVec([]int64{1, 0, 3}), append(append([]int{}, prefix...), futureB...)},
	}
	var schedules [][]int
	for _, f := range futures {
		exec, err := sim.Run(3, setup, f.sched)
		if err != nil {
			t.Fatalf("schedule %s: %v", f.name, err)
		}
		if !exec.Complete {
			t.Fatalf("schedule %s incomplete: %v (enabled at end: %v)", f.name, exec.Schedule, exec.Enabled[len(exec.Enabled)-1])
		}
		if got := exec.Responses()[1]; got != f.wantScan {
			t.Fatalf("schedule %s: twin scan returned %s, want %s", f.name, got, f.wantScan)
		}
		h := history.FromEvents(3, exec.Ops, exec.Events)
		if res := history.CheckLinearizable(h, spec.Snapshot{}); !res.Ok {
			t.Fatalf("schedule %s must stay linearizable (adopted views are true states): %s", f.name, h.String())
		}
		schedules = append(schedules, append([]int{}, exec.Schedule...))
	}

	tree, err := sim.TreeFromSchedules(3, setup, schedules)
	if err != nil {
		t.Fatal(err)
	}
	res := history.CheckStrongLin(tree, spec.Snapshot{}, nil)
	if res.Ok {
		t.Fatal("the witness-free adopt must NOT be strongly linearizable on the branching futures")
	}
	t.Logf("witness-free adopt commitment counterexample: %v", res.Counterexample)
}

// TestMultiwordHelpedConcurrentScansComparable is the helped-path form of
// the 4-proc comparability stress: 2 updaters storm different words while 2
// budget-0 scanners collect — every scan that cannot validate raises
// pressure immediately, so the updaters keep depositing and scans keep
// adopting. All views, adopted or self-collected, must remain pairwise
// comparable (each lane's history is strictly increasing).
func TestMultiwordHelpedConcurrentScansComparable(t *testing.T) {
	w := prim.NewRealWorld()
	const lanes = 4
	s := NewFASnapshot(w, "snap", lanes, WithSnapshotBound(mwBound2), WithScanRetryBudget(0)) // 1 lane/word x 4 words
	if !s.Multiword() {
		t.Fatal("config must stripe")
	}
	const scanners, perScanner = 2, 400
	var stop atomic.Bool
	var updWG, scanWG sync.WaitGroup
	for p := 0; p < 2; p++ {
		updWG.Add(1)
		go func(p int) {
			defer updWG.Done()
			th := prim.RealThread(p)
			for v := int64(1); !stop.Load(); v++ {
				s.Update(th, v)
			}
		}(p)
	}
	views := make([][][]int64, scanners)
	for sc := 0; sc < scanners; sc++ {
		scanWG.Add(1)
		go func(sc int) {
			defer scanWG.Done()
			th := prim.RealThread(2 + sc)
			for i := 0; i < perScanner; i++ {
				views[sc] = append(views[sc], s.Scan(th))
			}
		}(sc)
	}
	scanWG.Wait()
	stop.Store(true)
	updWG.Wait()
	var all [][]int64
	for sc := range views {
		all = append(all, views[sc]...)
	}
	comparable := func(a, b []int64) bool {
		le, ge := true, true
		for i := range a {
			le = le && a[i] <= b[i]
			ge = ge && a[i] >= b[i]
		}
		return le || ge
	}
	for i := 0; i < len(all); i++ {
		for j := i + 1; j < len(all); j++ {
			if !comparable(all[i], all[j]) {
				t.Fatalf("incomparable views: %v vs %v", all[i], all[j])
			}
		}
	}
	hs := s.HelpStats()
	t.Logf("helping under stress: %d deposits, %d adopted scans (of %d), %d retries, %d raises, %d adopt misses",
		hs.Deposits, hs.Adopts, scanners*perScanner, hs.Retries, hs.Raises, hs.AdoptMisses)
}

// TestMultiwordHelpedOpsAllocFree pins the scan side of the 0 allocs/op
// contract with helping compiled in: ScanInto's own path (stack collect
// buffer, gather into the caller's view) and Update's pressure poll
// allocate nothing. The adopt branch itself only copies the deposit into
// the same stack buffer; the single allocation in the helping machinery is
// the HELPER's deposit (an update-path cost, paid only while a scan is
// starving), which the progress witness and the contended bench exercise.
func TestMultiwordHelpedOpsAllocFree(t *testing.T) {
	w := prim.NewRealWorld()
	const lanes = 8
	s := NewFASnapshot(w, "snap", lanes, WithSnapshotBound(1<<15-1), WithScanRetryBudget(0))
	if !s.Multiword() {
		t.Fatal("config must stripe")
	}
	th := prim.RealThread(0)
	var v int64
	if allocs := testing.AllocsPerRun(200, func() { v++; s.Update(th, v%100) }); allocs != 0 {
		t.Fatalf("helped-engine Update allocates %.1f per op, want 0", allocs)
	}
	view := make([]int64, lanes)
	if allocs := testing.AllocsPerRun(200, func() { s.ScanInto(th, view) }); allocs != 0 {
		t.Fatalf("helped-engine ScanInto allocates %.1f per op, want 0", allocs)
	}
}

// FuzzMultiwordHelpedVsWideSnapshot diff-fuzzes the budget-0 helped engine
// against the wide register as oracle, exactly like the lock-free engine's
// fuzz: same updates applied to both, every scan must agree. (Sequential
// runs keep every round validating, so this pins the helped engine's
// decode/update equivalence; the adopt path's values are pinned by the
// crafted race and the sim checks above, and cross-checked against the
// sequential spec under real concurrency by cmd/slfuzz's
// multiword-help workload.)
func FuzzMultiwordHelpedVsWideSnapshot(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7})
	f.Add([]byte{250, 125, 60, 30, 15, 7, 3, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		const lanes, bound = 8, 255
		w := sim.NewSoloWorld()
		helped := NewFASnapshot(w, "h", lanes, WithSnapshotBound(bound), WithScanRetryBudget(0))
		wide := NewFASnapshot(w, "w", lanes)
		if !helped.Multiword() {
			t.Fatal("fuzz config must stripe")
		}
		for _, b := range data {
			th := sim.SoloThread(int(b) % lanes)
			if b%2 == 0 {
				v := int64(b)
				helped.Update(th, v)
				wide.Update(th, v)
			} else if p, v := helped.Scan(th), wide.Scan(th); !reflect.DeepEqual(p, v) {
				t.Fatalf("helped Scan = %v, wide Scan = %v", p, v)
			}
		}
		th := sim.SoloThread(0)
		if p, v := helped.Scan(th), wide.Scan(th); !reflect.DeepEqual(p, v) {
			t.Fatalf("final helped Scan = %v, wide Scan = %v", p, v)
		}
	})
}
