package adversary

import (
	"math"
	"testing"
)

// E-ADV: the strong adversary wins every trial against the merely
// linearizable snapshot and only half the trials against the strongly
// linearizable one — strong linearizability preserves the coin's
// distribution, linearizability does not.
func TestAdversaryBiasAgainstAfekSnapshot(t *testing.T) {
	out := Play(AfekSnapshot, 400, 1)
	if out.Rate() != 1.0 {
		t.Fatalf("adversary win rate vs Afek snapshot = %s, want 1.00", out)
	}
}

func TestAdversaryBoundedAgainstFASnapshot(t *testing.T) {
	out := Play(FASnapshot, 2000, 2)
	if math.Abs(out.Rate()-0.5) > 0.05 {
		t.Fatalf("adversary win rate vs fetch&add snapshot = %s, want ≈ 0.50", out)
	}
}

// The packed machine-word engine must preserve the hyperproperty exactly as
// the wide one does: the scanner's view is committed at its single XADD, so
// the adversary stays at 1/2 whatever it schedules.
func TestAdversaryBoundedAgainstPackedFASnapshot(t *testing.T) {
	out := Play(PackedFASnapshot, 2000, 3)
	if math.Abs(out.Rate()-0.5) > 0.05 {
		t.Fatalf("adversary win rate vs packed fetch&add snapshot = %s, want ≈ 0.50", out)
	}
}

// The multi-word engine's epoch-validated scans must preserve the
// hyperproperty too: update(1) has announced before the scan's window opens,
// so the validated view contains it whatever the coin — the adversary stays
// at 1/2.
func TestAdversaryBoundedAgainstMultiwordFASnapshot(t *testing.T) {
	out := Play(MultiwordFASnapshot, 2000, 5)
	if math.Abs(out.Rate()-0.5) > 0.05 {
		t.Fatalf("adversary win rate vs multi-word fetch&add snapshot = %s, want ≈ 0.50", out)
	}
}

func TestOutcomeString(t *testing.T) {
	o := Outcome{Trials: 4, Matches: 3}
	if got := o.String(); got != "3/4 (0.75)" {
		t.Fatalf("String = %q", got)
	}
	if (Outcome{}).Rate() != 0 {
		t.Fatal("zero-trial rate not 0")
	}
}

func TestViewComponent(t *testing.T) {
	if got := viewComponent("[0 1 2]", 1); got != "1" {
		t.Fatalf("component 1 = %q", got)
	}
	if got := viewComponent("[0 1 2]", 5); got != "" {
		t.Fatalf("out of range = %q", got)
	}
}

func TestSnapshotKindString(t *testing.T) {
	if FASnapshot.String() == "unknown" || AfekSnapshot.String() == "unknown" {
		t.Fatal("kind strings missing")
	}
}
