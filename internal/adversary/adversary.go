// Package adversary quantifies the paper's motivation: linearizability does
// not preserve the probabilistic guarantees of randomized programs against a
// strong adversary, strong linearizability does (Golab–Higham–Woelfel; the
// hyperproperty-preservation results of Attiya–Enea).
//
// The game: a scanner reads a snapshot while process p1 completes
// update(1) and then flips a fair coin; process p2 issues two updates that
// give the adversary scheduling material. The strong adversary — a scheduler
// that observes everything, including the coin — wins a trial if the
// scanner's view contains p1's update exactly when the coin is 1.
//
// Against an atomic (or strongly-linearizable) snapshot, the view's content
// relative to update(1) is committed before the coin exists: the adversary
// wins with probability 1/2, whatever it does.
//
// Against the Afek et al. snapshot — linearizable but NOT strongly
// linearizable — the adversary drives the execution to a prefix where
// update(1) is complete yet BOTH views are still reachable for the pending
// scan (the same prefix the model checker uses to refute strong
// linearizability), then reads the coin and picks the branch that matches:
// it wins every trial.
package adversary

import (
	"fmt"
	"math/rand"
	"strings"

	"stronglin/internal/baseline"
	"stronglin/internal/core"
	"stronglin/internal/prim"
	"stronglin/internal/sim"
	"stronglin/internal/spec"
)

// Outcome aggregates game trials.
type Outcome struct {
	Trials  int
	Matches int
}

// Rate returns the adversary's win rate.
func (o Outcome) Rate() float64 {
	if o.Trials == 0 {
		return 0
	}
	return float64(o.Matches) / float64(o.Trials)
}

func (o Outcome) String() string {
	return fmt.Sprintf("%d/%d (%.2f)", o.Matches, o.Trials, o.Rate())
}

// SnapshotKind selects the snapshot implementation under attack.
type SnapshotKind int

// Snapshot kinds.
const (
	// FASnapshot is the strongly-linearizable fetch&add snapshot (Theorem 2).
	FASnapshot SnapshotKind = iota + 1
	// AfekSnapshot is the linearizable-but-not-strongly-linearizable
	// register snapshot.
	AfekSnapshot
	// PackedFASnapshot is the same Theorem 2 construction on its packed
	// machine-word engine (bounded components, one XADD register). The game
	// values fit a small bound, so the packed word hosts the identical
	// single-fetch&add step structure — and must show the identical 1/2 rate.
	PackedFASnapshot
	// MultiwordFASnapshot is the snapshot on its multi-word engine: 3
	// components striped over 2 XADD words carrying per-word sequence
	// fields, word 0's doubling as the announce counter. Scans are double
	// collects with a closing announce check rather than single fetch&adds,
	// but the engine is strongly linearizable, so the adversary's win rate
	// must still be pinned at 1/2 — the scanner's view relative to a
	// COMPLETED (announced) update is committed before the coin exists.
	MultiwordFASnapshot
)

func (k SnapshotKind) String() string {
	switch k {
	case FASnapshot:
		return "fa-snapshot (strongly linearizable)"
	case AfekSnapshot:
		return "afek-snapshot (linearizable only)"
	case PackedFASnapshot:
		return "packed-fa-snapshot (strongly linearizable)"
	case MultiwordFASnapshot:
		return "multiword-fa-snapshot (strongly linearizable)"
	default:
		return "unknown"
	}
}

type snapshotAPI interface {
	Update(t prim.Thread, v int64)
	Scan(t prim.Thread) []int64
}

// Play runs trials of the game against the chosen snapshot with the
// strongest adversary we implement for it.
func Play(kind SnapshotKind, trials int, seed int64) Outcome {
	rng := rand.New(rand.NewSource(seed))
	out := Outcome{Trials: trials}
	for i := 0; i < trials; i++ {
		coin := rng.Intn(2)
		if playOnce(kind, coin) {
			out.Matches++
		}
	}
	return out
}

// playOnce returns whether the adversary won the trial.
func playOnce(kind SnapshotKind, coin int) bool {
	var view string

	setup := func(w *sim.World) []sim.Program {
		var snap snapshotAPI
		switch kind {
		case FASnapshot:
			snap = core.NewFASnapshot(w, "snap", 3)
		case PackedFASnapshot:
			// Values 1..3 need 2-bit fields: 3 lanes x 2 = 6 bits, packs.
			snap = core.NewFASnapshot(w, "snap", 3, core.WithSnapshotBound(3))
		case MultiwordFASnapshot:
			// A 22-bit bound forces 2 lanes/word x 2 words for 3 lanes (3 x 22
			// = 66 > 63 rules out the single packed word).
			snap = core.NewFASnapshot(w, "snap", 3, core.WithSnapshotBound(1<<22-1))
		case AfekSnapshot:
			snap = baseline.NewAfekSnapshot(w, "snap", 3)
		}
		scan := sim.Op{
			Name: "scan",
			Spec: spec.MkOp(spec.MethodScan),
			Run: func(t prim.Thread) string {
				v := spec.RespVec(snap.Scan(t))
				view = v
				return v
			},
		}
		update := func(v int64) sim.Op {
			return sim.Op{
				Name: "update",
				Spec: spec.MkOp(spec.MethodUpdate, -1, v),
				Run: func(t prim.Thread) string {
					snap.Update(t, v)
					return spec.RespOK
				},
			}
		}
		flip := sim.Op{
			Name: "flip",
			Spec: spec.MkOp("flip"),
			Run:  func(t prim.Thread) string { return spec.RespInt(int64(coin)) },
		}
		return []sim.Program{
			{scan},                 // p0
			{update(1), flip},      // p1
			{update(2), update(3)}, // p2
		}
	}

	var schedule []int
	switch kind {
	case FASnapshot, PackedFASnapshot:
		// Best the adversary can do: let update(1) complete, observe the
		// coin (it already knows it here), then schedule the scan. The view
		// will contain the update regardless of the coin: a coin of 0 loses.
		// The packed engine is one FetchAddInt scheduler step per operation,
		// exactly as the wide engine is one FetchAdd step, so the same
		// schedule drives both.
		schedule = concat(
			rep(2, 4), // p2: both updates (invoke+fa each)
			rep(1, 2), // p1: update(1)
			rep(1, 1), // p1: flip
			rep(0, 2), // p0: scan
		)
	case MultiwordFASnapshot:
		// Same adversary strategy on the multi-word engine's step structure:
		// p2's updates own word 1 (invoke + payload XADD + announce on word
		// 0 + pressure poll: 4 steps each), p1's update owns word 0 (invoke
		// + payload XADD with the announce fused in + pressure poll: 3
		// steps), and a scan is invoke + two anchored 2-word collects (5
		// steps — the validating round's word-0 read is the closing check;
		// no retries here, since nothing lands inside the window, and no
		// pressure is ever raised, so the updates never help). update(1) is
		// complete (announced) before the scan starts, so the validated view
		// contains it on both coin branches: 1/2.
		schedule = concat(
			rep(2, 8), // p2: both updates
			rep(1, 3), // p1: update(1)
			rep(1, 1), // p1: flip
			rep(0, 5), // p0: scan
		)
	case AfekSnapshot:
		// Drive to the fork of the strong-linearizability counterexample:
		// scan's first collect; p2's first update completes; p2's second
		// update stops before its write; update(1) completes; scan's second
		// collect. Then observe the coin and pick the branch.
		prefix := concat(
			rep(0, 4), // p0: invoke scan + collect1
			rep(2, 9), // p2: update(2) complete
			rep(2, 8), // p2: update(3) up to before its write
			rep(1, 9), // p1: update(1) complete
			rep(0, 3), // p0: collect2 (dirty)
			rep(1, 1), // p1: flip — the adversary now knows the coin
		)
		if coin == 1 {
			schedule = concat(prefix, rep(0, 3)) // clean collect3: view [0 1 2]
		} else {
			schedule = concat(prefix, rep(2, 1), rep(0, 3)) // borrow: view [0 0 2]
		}
	}

	if _, err := sim.Run(3, setup, schedule); err != nil {
		panic(fmt.Sprintf("adversary: schedule failed: %v", err))
	}
	hasOne := viewComponent(view, 1) == "1"
	return hasOne == (coin == 1)
}

// viewComponent extracts component i from a "[a b c]" view encoding.
func viewComponent(view string, i int) string {
	parts := strings.Fields(strings.Trim(view, "[]"))
	if i < 0 || i >= len(parts) {
		return ""
	}
	return parts[i]
}

func rep(p, n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = p
	}
	return out
}

func concat(parts ...[]int) []int {
	var out []int
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}
