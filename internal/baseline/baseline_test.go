package baseline

import (
	"testing"

	"stronglin/internal/history"
	"stronglin/internal/prim"
	"stronglin/internal/sim"
	"stronglin/internal/spec"
)

func opEnq(q *HWQueue, v int64) sim.Op {
	return sim.Op{
		Name: spec.MkOp(spec.MethodEnq, v).String(),
		Spec: spec.MkOp(spec.MethodEnq, v),
		Run: func(t prim.Thread) string {
			q.Enqueue(t, v)
			return spec.RespOK
		},
	}
}

func opDeqBounded(q *HWQueue) sim.Op {
	return sim.Op{
		Name: "deq()",
		Spec: spec.MkOp(spec.MethodDeq),
		Run: func(t prim.Thread) string {
			if v, ok := q.DequeueBounded(t); ok {
				return spec.RespInt(v)
			}
			return spec.RespEmpty
		},
	}
}

func TestHWQueueSequential(t *testing.T) {
	w := sim.NewSoloWorld()
	q := NewHWQueue(w, "q", 8)
	th := sim.SoloThread(0)
	q.Enqueue(th, 1)
	q.Enqueue(th, 2)
	q.Enqueue(th, 3)
	for want := int64(1); want <= 3; want++ {
		if got := q.Dequeue(th); got != want {
			t.Fatalf("Dequeue = %d, want %d", got, want)
		}
	}
	if _, ok := q.DequeueBounded(th); ok {
		t.Fatal("DequeueBounded on empty returned a value")
	}
}

func TestHWQueueRejectsNonPositive(t *testing.T) {
	q := NewHWQueue(sim.NewSoloWorld(), "q", 2)
	defer func() {
		if recover() == nil {
			t.Fatal("Enqueue(0) did not panic")
		}
	}()
	q.Enqueue(sim.SoloThread(0), 0)
}

func hwSetup(w *sim.World) []sim.Program {
	q := NewHWQueue(w, "q", 4)
	return []sim.Program{
		{opEnq(q, 1)},
		{opEnq(q, 2)},
		{opDeqBounded(q), opDeqBounded(q)},
	}
}

// E-T17a: the Herlihy–Wing queue is linearizable on every interleaving of
// the bounded configuration...
func TestHWQueueLinearizable(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive interleaving check; skipped in -short mode")
	}
	tree, err := sim.Explore(3, hwSetup, &sim.ExploreOptions{MaxNodes: 3000000})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Truncated {
		t.Fatal("tree truncated; shrink the configuration")
	}
	bad := 0
	tree.Walk(func(n *sim.Node, trace []sim.Event) bool {
		if len(n.Children) == 0 && bad == 0 {
			h := history.FromEvents(tree.Procs, tree.Ops, trace)
			if res := history.CheckLinearizable(h, spec.Queue{}); !res.Ok {
				bad++
				t.Errorf("non-linearizable leaf: %s", h.String())
			}
		}
		return true
	})
}

// ... but E-T17b: it is NOT strongly linearizable — as Theorem 17 proves for
// every lock-free 1-ordering implementation from fetch&add/swap/test&set.
//
// The witness tree has a common prefix in which p1's enq(2) is complete,
// p0's enq(1) holds slot 0 but has not yet written it, and p2's first
// dequeue has read back=2. One branch lets p0's write land before p2 scans
// slot 0 (dequeues return 1 then 2, forcing enq(1) before enq(2)); the other
// lets p2 scan first (dequeues return 2 then 1, forcing the opposite order).
// Since enq(2) is already complete at the fork, every prefix-closed
// linearization function must have committed an order there — and each
// branch contradicts one. (Refutation on a pruned tree is sound.)
func TestHWQueueNotStronglyLinearizable(t *testing.T) {
	prefix := []int{0, 0, 1, 1, 1, 2, 2}
	branchA := append(append([]int{}, prefix...), 0, 2, 2, 2, 2, 2)
	branchB := append(append([]int{}, prefix...), 2, 2, 0, 2, 2, 2)
	tree, err := sim.TreeFromSchedules(3, hwSetup, [][]int{branchA, branchB})
	if err != nil {
		t.Fatal(err)
	}
	// Sanity: the two branches really produce opposite dequeue orders.
	orders := map[string]bool{}
	tree.Walk(func(n *sim.Node, trace []sim.Event) bool {
		if len(n.Children) == 0 {
			var resps string
			for _, ev := range trace {
				if ev.Kind == sim.EventReturn && ev.OpID >= 2 {
					resps += ev.Resp
				}
			}
			orders[resps] = true
		}
		return true
	})
	if !orders["12"] || !orders["21"] {
		t.Fatalf("branches do not force opposite dequeue orders: %v", orders)
	}
	res := history.CheckStrongLin(tree, spec.Queue{}, nil)
	if res.Ok {
		t.Fatal("Herlihy–Wing queue accepted as strongly linearizable; Theorem 17 says it cannot be")
	}
	if res.Counterexample == nil {
		t.Fatal("no counterexample reported")
	}
	t.Logf("counterexample: %s", res.Counterexample)
}

func TestHWQueueRealWorldStress(t *testing.T) {
	// Strict per-process enq/deq alternation with the SPINNING dequeue (the
	// original algorithm): each process enqueues before it dequeues, so
	// every started dequeue has an undequeued item to find and the workload
	// is deadlock-free. (Single-scan "empty" responses are deliberately not
	// used here — they are unsound; see TestHWQueueBoundedEmptinessUnsound.)
	const procs = 4
	w := prim.NewRealWorld()
	q := NewHWQueue(w, "q", 4096)
	var next [procs]int64
	h := history.Stress(history.StressConfig{
		Procs:      procs,
		OpsPerProc: 40,
		Gen: func(p, i int) history.StressOp {
			if i%2 == 0 {
				next[p]++
				v := int64(p+1) + (next[p]-1)*procs
				return history.StressOp{
					Op: spec.MkOp(spec.MethodEnq, v),
					Run: func(t prim.Thread) string {
						q.Enqueue(t, v)
						return spec.RespOK
					},
				}
			}
			return history.StressOp{
				Op:  spec.MkOp(spec.MethodDeq),
				Run: func(t prim.Thread) string { return spec.RespInt(q.Dequeue(t)) },
			}
		},
	})
	if res := history.CheckLinearizable(h, spec.Queue{}); !res.Ok {
		t.Fatalf("stress history not linearizable: %s", h.String())
	}
}

// Reproduction finding (discovered by the randomized stress harness, pinned
// here deterministically): interpreting a fruitless single scan as an
// "empty" response is NOT linearizable. Witness with 4 processes:
//
//   - p0's enq(1) completes into slot 0.
//   - p1's enq(2) reserves slot 1 and crashes before writing.
//   - p2's dequeue reads back=2 and pauses.
//   - p3 completes enq(3) into slot 2 (beyond p2's cutoff!), then dequeues:
//     its scan takes the 1 from slot 0.
//   - p2 resumes: slot 0 empty (taken), slot 1 empty (crashed) -> "empty".
//
// But enq(1) completed before p2's dequeue began, enq(3) completed before
// the deq that removed 1 began, and 3 is never removed: the queue is
// non-empty throughout p2's dequeue. No linearization exists.
func TestHWQueueBoundedEmptinessUnsound(t *testing.T) {
	setup := func(w *sim.World) []sim.Program {
		q := NewHWQueue(w, "q", 4)
		return []sim.Program{
			{opEnq(q, 1)},
			{opEnq(q, 2)},
			{opDeqBounded(q)},
			{opEnq(q, 3), opDeqBounded(q)},
		}
	}
	sched := []int{
		0, 0, 0, // p0: enq(1) complete (slot 0)
		1, 1, // p1: enq(2) reserves slot 1; CRASH before write
		2, 2, // p2: deq invoke + back-read (=2)
		3, 3, 3, // p3: enq(3) complete (slot 2)
		3, 3, 3, // p3: deq invoke + back-read(3) + swap slot0 -> 1
		2, 2, // p2: swap slot0 (empty), swap slot1 (empty) -> "empty"
	}
	exec, err := sim.Run(4, setup, sched)
	if err != nil {
		t.Fatal(err)
	}
	resps := exec.Responses()
	if resps[2] != spec.RespEmpty {
		t.Fatalf("p2's dequeue = %s, want empty (schedule drift)", resps[2])
	}
	if resps[4] != "1" {
		t.Fatalf("p3's dequeue = %s, want 1 (schedule drift)", resps[4])
	}
	h := history.FromExecution(exec)
	if res := history.CheckLinearizable(h, spec.Queue{}); res.Ok {
		t.Fatalf("single-scan emptiness accepted; this history has no linearization:\n%s",
			history.RenderTimeline(h))
	}
}

func TestAACMaxRegisterSequential(t *testing.T) {
	w := sim.NewSoloWorld()
	m := NewAACMaxRegister(w, "aac", 4)
	th := sim.SoloThread(0)
	if got := m.ReadMax(th); got != 0 {
		t.Fatalf("initial ReadMax = %d", got)
	}
	for _, v := range []int64{5, 3, 11, 7} {
		m.WriteMax(th, v)
	}
	if got := m.ReadMax(th); got != 11 {
		t.Fatalf("ReadMax = %d, want 11", got)
	}
	m.WriteMax(th, 15)
	if got := m.ReadMax(th); got != 15 {
		t.Fatalf("ReadMax = %d, want 15", got)
	}
}

func TestAACMaxRegisterDomainCheck(t *testing.T) {
	m := NewAACMaxRegister(sim.NewSoloWorld(), "aac", 3)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-domain write did not panic")
		}
	}()
	m.WriteMax(sim.SoloThread(0), 8)
}

// The AAC max register is linearizable on every interleaving of a bounded
// configuration (its strong-linearizability status is out of scope here; the
// paper's Theorem 1 object is the strongly-linearizable alternative).
func TestAACMaxRegisterLinearizable(t *testing.T) {
	setup := func(w *sim.World) []sim.Program {
		m := NewAACMaxRegister(w, "aac", 2)
		mkW := func(v int64) sim.Op {
			return sim.Op{
				Name: spec.MkOp(spec.MethodWriteMax, v).String(),
				Spec: spec.MkOp(spec.MethodWriteMax, v),
				Run: func(t prim.Thread) string {
					m.WriteMax(t, v)
					return spec.RespOK
				},
			}
		}
		mkR := func() sim.Op {
			return sim.Op{
				Name: "rmax()",
				Spec: spec.MkOp(spec.MethodReadMax),
				Run:  func(t prim.Thread) string { return spec.RespInt(m.ReadMax(t)) },
			}
		}
		return []sim.Program{
			{mkW(2), mkR()},
			{mkW(1), mkR()},
		}
	}
	tree, err := sim.Explore(2, setup, nil)
	if err != nil {
		t.Fatal(err)
	}
	tree.Walk(func(n *sim.Node, trace []sim.Event) bool {
		if len(n.Children) == 0 {
			h := history.FromEvents(tree.Procs, tree.Ops, trace)
			if res := history.CheckLinearizable(h, spec.MaxRegister{}); !res.Ok {
				t.Fatalf("non-linearizable leaf: %s", h.String())
			}
		}
		return true
	})
}

func TestUniversalSequential(t *testing.T) {
	w := sim.NewSoloWorld()
	q := NewCASQueue(w, "q", 2)
	th := sim.SoloThread(0)
	if got := q.Dequeue(th); got != spec.RespEmpty {
		t.Fatalf("dequeue on empty = %s", got)
	}
	q.Enqueue(th, 4)
	q.Enqueue(th, 5)
	if got := q.Dequeue(th); got != "4" {
		t.Fatalf("dequeue = %s, want 4", got)
	}

	s := NewCASStack(w, "st", 2)
	s.Push(th, 1)
	s.Push(th, 2)
	if got := s.Pop(th); got != "2" {
		t.Fatalf("pop = %s, want 2", got)
	}
}

// The CAS universal queue IS strongly linearizable — the comparator pole of
// E-FIG1 and the object that makes the Lemma 12 reduction solve consensus.
func TestCASQueueStronglyLinearizable(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive interleaving check; skipped in -short mode")
	}
	setup := func(w *sim.World) []sim.Program {
		q := NewCASQueue(w, "q", 3)
		enq := func(v int64) sim.Op {
			return sim.Op{
				Name: spec.MkOp(spec.MethodEnq, v).String(),
				Spec: spec.MkOp(spec.MethodEnq, v),
				Run: func(t prim.Thread) string {
					q.Enqueue(t, v)
					return spec.RespOK
				},
			}
		}
		deq := sim.Op{
			Name: "deq()",
			Spec: spec.MkOp(spec.MethodDeq),
			Run:  func(t prim.Thread) string { return q.Dequeue(t) },
		}
		return []sim.Program{
			{enq(1)},
			{enq(2)},
			{deq},
		}
	}
	v, err := history.Verify(3, setup, spec.Queue{}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Linearizable || !v.StrongLin.Ok {
		t.Fatalf("CAS queue verdict: lin=%v sl=%v (%v)", v.Linearizable, v.StrongLin.Ok, v.StrongLin.Counterexample)
	}
}

func TestUniversalRejectsIllegalOp(t *testing.T) {
	u := NewUniversal(sim.NewSoloWorld(), "u", spec.Queue{}, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("illegal op did not panic")
		}
	}()
	u.Apply(sim.SoloThread(0), spec.MkOp("bogus"))
}
