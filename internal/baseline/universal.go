package baseline

import (
	"math/big"

	"stronglin/internal/prim"
	"stronglin/internal/spec"
)

// Universal is the lock-free strongly-linearizable universal object from
// compare&swap: one CAS cell holds a pointer to the (immutable) current
// sequential state; an operation loads it, computes the unique outcome, and
// installs the successor with a CAS, retrying on interference. Its
// linearization point is its successful CAS (a fixed own step), so the
// object is strongly linearizable for any deterministic specification.
//
// This is the repository's stand-in for the "known wait-free [or lock-free]
// strongly-linearizable implementations [that] use primitives such as
// compare&swap" which the paper contrasts with consensus-number-2
// primitives; it is also the strongly-linearizable 1-ordering object that
// makes the Lemma 12 reduction solve consensus.
type Universal struct {
	cell prim.CASCell
	sp   spec.Spec
	n    int
}

type uNode struct{ state spec.State }

// NewUniversal allocates the object with the specification's initial state.
func NewUniversal(w prim.World, name string, sp spec.Spec, n int) *Universal {
	return &Universal{
		cell: w.CASCell(name+".state", &uNode{state: sp.Init(n)}),
		sp:   sp,
		n:    n,
	}
}

// Apply executes op and returns its response.
func (u *Universal) Apply(t prim.Thread, op spec.Op) string {
	for {
		cur := u.cell.Load(t).(*uNode)
		outs := cur.state.Steps(op)
		if len(outs) == 0 {
			panic("baseline: Universal: illegal operation " + op.String())
		}
		out := outs[0]
		if u.cell.CompareAndSwap(t, cur, &uNode{state: out.Next}) {
			return out.Resp
		}
	}
}

// CASQueue is the universal object instantiated as a FIFO queue.
type CASQueue struct{ u *Universal }

// NewCASQueue allocates a CAS-based strongly-linearizable queue.
func NewCASQueue(w prim.World, name string, n int) *CASQueue {
	return &CASQueue{u: NewUniversal(w, name, spec.Queue{}, n)}
}

// Enqueue adds v.
func (q *CASQueue) Enqueue(t prim.Thread, v int64) {
	q.u.Apply(t, spec.MkOp(spec.MethodEnq, v))
}

// Dequeue removes and returns the oldest value, or spec.RespEmpty.
func (q *CASQueue) Dequeue(t prim.Thread) string {
	return q.u.Apply(t, spec.MkOp(spec.MethodDeq))
}

// Apply implements the generic object interface used by the Lemma 12
// reduction.
func (q *CASQueue) Apply(t prim.Thread, op spec.Op) string { return q.u.Apply(t, op) }

// CASStack is the universal object instantiated as a LIFO stack.
type CASStack struct{ u *Universal }

// NewCASStack allocates a CAS-based strongly-linearizable stack.
func NewCASStack(w prim.World, name string, n int) *CASStack {
	return &CASStack{u: NewUniversal(w, name, spec.Stack{}, n)}
}

// Push adds v.
func (s *CASStack) Push(t prim.Thread, v int64) {
	s.u.Apply(t, spec.MkOp(spec.MethodPush, v))
}

// Pop removes and returns the newest value, or spec.RespEmpty.
func (s *CASStack) Pop(t prim.Thread) string {
	return s.u.Apply(t, spec.MkOp(spec.MethodPop))
}

// Apply implements the generic object interface used by the Lemma 12
// reduction.
func (s *CASStack) Apply(t prim.Thread, op spec.Op) string { return s.u.Apply(t, op) }

// zeroBig and oneBig are shared fetch&add deltas.
var (
	zeroBig = new(big.Int)
	oneBig  = big.NewInt(1)
)
