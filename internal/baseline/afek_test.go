package baseline

import (
	"testing"

	"stronglin/internal/history"
	"stronglin/internal/prim"
	"stronglin/internal/sim"
	"stronglin/internal/spec"
)

func opAfekUpdate(s *AfekSnapshot, v int64) sim.Op {
	return sim.Op{
		Name: "update(" + spec.RespInt(v) + ")",
		Spec: spec.MkOp(spec.MethodUpdate, -1, v), // component filled by proc at runtime
		Run: func(t prim.Thread) string {
			s.Update(t, v)
			return spec.RespOK
		},
	}
}

func opAfekScan(s *AfekSnapshot) sim.Op {
	return sim.Op{
		Name: "scan()",
		Spec: spec.MkOp(spec.MethodScan),
		Run:  func(t prim.Thread) string { return spec.RespVec(s.Scan(t)) },
	}
}

// fixComponents rewrites update specs so the component argument equals the
// invoking process (the single-writer convention the Snapshot spec needs).
func fixComponents(ops []sim.OpInfo) []sim.OpInfo {
	out := make([]sim.OpInfo, len(ops))
	copy(out, ops)
	for i := range out {
		if out[i].Spec.Method == spec.MethodUpdate && out[i].Spec.Args[0] == -1 {
			out[i].Spec = spec.MkOp(spec.MethodUpdate, int64(out[i].Proc), out[i].Spec.Args[1])
		}
	}
	return out
}

func TestAfekSnapshotSequential(t *testing.T) {
	w := sim.NewSoloWorld()
	s := NewAfekSnapshot(w, "afek", 3)
	if got := spec.RespVec(s.Scan(sim.SoloThread(0))); got != "[0 0 0]" {
		t.Fatalf("initial scan = %s", got)
	}
	s.Update(sim.SoloThread(1), 7)
	s.Update(sim.SoloThread(2), 9)
	s.Update(sim.SoloThread(1), 8)
	if got := spec.RespVec(s.Scan(sim.SoloThread(0))); got != "[0 8 9]" {
		t.Fatalf("scan = %s", got)
	}
}

func afekSetup(w *sim.World) []sim.Program {
	s := NewAfekSnapshot(w, "afek", 3)
	return []sim.Program{
		{opAfekScan(s)},
		{opAfekUpdate(s, 1)},
		{opAfekUpdate(s, 2), opAfekUpdate(s, 3)},
	}
}

// rep returns n copies of p.
func rep(p, n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = p
	}
	return out
}

func cat(parts ...[]int) []int {
	var out []int
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

// E-ADV/E-T17 companion: the Afek et al. snapshot is NOT strongly
// linearizable (Golab–Higham–Woelfel's original example).
//
// Witness: the scanner p0 performs its first collect; p2 completes
// update(2), then runs update(3) up to (but not including) its register
// write — its embedded scan saw [0 0 2]; p1 completes update(1); p0 performs
// its second collect (dirty). At this node update(1) is COMPLETE and the
// scan is pending. Branch A: p2 stalls; p0's third collect is clean and the
// scan returns [0 1 2] — forcing scan AFTER update(1). Branch B: p2's write
// lands; p0's third collect observes p2 moving a second time, so the scan
// borrows p2's embedded view [0 0 2] — forcing scan BEFORE update(1). Any
// prefix-closed linearization function has already committed the order at
// the fork; each branch refutes one choice. (Refutation on a pruned tree is
// sound.)
func TestAfekSnapshotNotStronglyLinearizable(t *testing.T) {
	prefix := cat(
		rep(0, 4), // p0: invoke scan + collect1 (R0,R1,R2 all initial)
		rep(2, 9), // p2: update(2) completes (6 scan reads, own read, write)
		rep(2, 8), // p2: update(3) up to BEFORE its write (embedded view [0 0 2])
		rep(1, 9), // p1: update(1) completes
		rep(0, 3), // p0: collect2 — observes R1 and R2 moved once
	)
	branchA := cat(prefix, rep(0, 3))            // p0: collect3, clean -> [0 1 2]
	branchB := cat(prefix, rep(2, 1), rep(0, 3)) // p2 writes; p0: collect3 -> borrow [0 0 2]

	tree, err := sim.TreeFromSchedules(3, afekSetup, [][]int{branchA, branchB})
	if err != nil {
		t.Fatal(err)
	}
	tree.Ops = fixComponents(tree.Ops)

	// Sanity: the two branches really produce the two incompatible views.
	views := map[string]bool{}
	tree.Walk(func(n *sim.Node, trace []sim.Event) bool {
		if len(n.Children) == 0 {
			for _, ev := range trace {
				if ev.Kind == sim.EventReturn && ev.OpID == 0 {
					views[ev.Resp] = true
				}
			}
		}
		return true
	})
	if !views["[0 1 2]"] || !views["[0 0 2]"] {
		t.Fatalf("branches do not produce the expected views: %v", views)
	}

	// Each leaf is linearizable on its own...
	tree.Walk(func(n *sim.Node, trace []sim.Event) bool {
		if len(n.Children) == 0 {
			h := history.FromEvents(tree.Procs, tree.Ops, trace)
			if res := history.CheckLinearizable(h, spec.Snapshot{}); !res.Ok {
				t.Fatalf("leaf not linearizable: %s", h.String())
			}
		}
		return true
	})
	// ... but no prefix-closed linearization function covers both branches.
	res := history.CheckStrongLin(tree, spec.Snapshot{}, nil)
	if res.Ok {
		t.Fatal("Afek snapshot accepted as strongly linearizable; the GHW counterexample says it cannot be")
	}
	t.Logf("counterexample: %s", res.Counterexample)
}

func TestAfekSnapshotLinearizableSmallConfig(t *testing.T) {
	// Exhaustive check of a 2-process configuration: one update, one scan.
	setup := func(w *sim.World) []sim.Program {
		s := NewAfekSnapshot(w, "afek", 2)
		return []sim.Program{
			{opAfekUpdate(s, 5)},
			{opAfekScan(s)},
		}
	}
	tree, err := sim.Explore(2, setup, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Truncated {
		t.Fatal("tree truncated")
	}
	tree.Ops = fixComponents(tree.Ops)
	tree.Walk(func(n *sim.Node, trace []sim.Event) bool {
		if len(n.Children) == 0 {
			h := history.FromEvents(tree.Procs, tree.Ops, trace)
			if res := history.CheckLinearizable(h, spec.Snapshot{}); !res.Ok {
				t.Fatalf("non-linearizable leaf: %s", h.String())
			}
		}
		return true
	})
}

func TestAfekSnapshotRealWorldStress(t *testing.T) {
	const procs = 4
	w := prim.NewRealWorld()
	s := NewAfekSnapshot(w, "afek", procs)
	h := history.Stress(history.StressConfig{
		Procs:      procs,
		OpsPerProc: 15,
		Gen: func(p, i int) history.StressOp {
			if i%2 == 0 {
				v := int64(p*100 + i)
				return history.StressOp{
					Op: spec.MkOp(spec.MethodUpdate, int64(p), v),
					Run: func(t prim.Thread) string {
						s.Update(t, v)
						return spec.RespOK
					},
				}
			}
			return history.StressOp{
				Op:  spec.MkOp(spec.MethodScan),
				Run: func(t prim.Thread) string { return spec.RespVec(s.Scan(t)) },
			}
		},
	})
	if res := history.CheckLinearizable(h, spec.Snapshot{}); !res.Ok {
		t.Fatalf("stress history not linearizable: %s", h.String())
	}
}
