package baseline

import (
	"fmt"

	"stronglin/internal/prim"
)

// AACMaxRegister is the bounded max register of Aspnes, Attiya and Censor
// (PODC 2009): a binary trie of switch registers implementing a max register
// over the domain [0, 2^k).
//
//	WriteMax(v), at a node of height h: if v's top bit is set, recurse into
//	the right subtree and then set the node's switch; otherwise recurse into
//	the left subtree only if the switch is still unset.
//	ReadMax, at a node: follow the right subtree iff the switch is set,
//	accumulating bits.
//
// It is wait-free and linearizable, from registers only (consensus number
// 1). Per Helmi–Higham–Woelfel, wait-free strongly-linearizable UNBOUNDED
// max registers from registers are impossible, but bounded ones exist; this
// particular construction is the standard linearizable one and serves as a
// register-based comparison point for Theorem 1's fetch&add construction.
type AACMaxRegister struct {
	root *aacNode
	k    int
}

type aacNode struct {
	sw          prim.Register // absent at leaves
	left, right *aacNode
}

// NewAACMaxRegister builds the trie for the domain [0, 2^k).
func NewAACMaxRegister(w prim.World, name string, k int) *AACMaxRegister {
	if k < 0 || k > 20 {
		panic(fmt.Sprintf("baseline: AACMaxRegister needs 0 <= k <= 20, got %d", k))
	}
	return &AACMaxRegister{root: buildAAC(w, name, k), k: k}
}

func buildAAC(w prim.World, name string, k int) *aacNode {
	if k == 0 {
		return &aacNode{}
	}
	return &aacNode{
		sw:    w.Register(name+".sw", 0),
		left:  buildAAC(w, name+".0", k-1),
		right: buildAAC(w, name+".1", k-1),
	}
}

// WriteMax writes v, which must lie in [0, 2^k).
func (m *AACMaxRegister) WriteMax(t prim.Thread, v int64) {
	if v < 0 || v >= 1<<m.k {
		panic(fmt.Sprintf("baseline: AACMaxRegister.WriteMax(%d) out of domain [0,2^%d)", v, m.k))
	}
	write(m.root, t, v, m.k)
}

func write(n *aacNode, t prim.Thread, v int64, k int) {
	if k == 0 {
		return
	}
	half := int64(1) << (k - 1)
	if v >= half {
		write(n.right, t, v-half, k-1)
		n.sw.Write(t, 1)
		return
	}
	if n.sw.Read(t) == 0 {
		write(n.left, t, v, k-1)
	}
}

// ReadMax returns the largest value written so far.
func (m *AACMaxRegister) ReadMax(t prim.Thread) int64 {
	return read(m.root, t, m.k)
}

func read(n *aacNode, t prim.Thread, k int) int64 {
	if k == 0 {
		return 0
	}
	if n.sw.Read(t) == 1 {
		return 1<<(k-1) + read(n.right, t, k-1)
	}
	return read(n.left, t, k-1)
}

var _ prim.MaxReg = (*AACMaxRegister)(nil)
