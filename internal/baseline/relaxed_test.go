package baseline

import (
	"testing"

	"stronglin/internal/history"
	"stronglin/internal/sim"
	"stronglin/internal/spec"
)

// Theorem 17 extends to the RELAXED queue variants: the same Herlihy–Wing
// witness tree (dequeue orders (1,2) vs (2,1) forced from a fork where
// enq(2) is complete) refutes strong linearizability even against the
// multiplicity and m-stuttering specifications — their relaxations never
// change which item a dequeue returns here, so the commitment conflict
// stands.
//
// The 2-out-of-order specification, in contrast, ACCEPTS this tree: its
// dequeue may return either of the two oldest items, so both branch
// outcomes are consistent with one committed enqueue order. That is exactly
// Theorem 19's boundary — for k = 2 the impossibility needs n > 2k = 4
// processes, and this witness has only 3.
func hwWitnessTree(t *testing.T) *sim.Tree {
	t.Helper()
	prefix := []int{0, 0, 1, 1, 1, 2, 2}
	branchA := append(append([]int{}, prefix...), 0, 2, 2, 2, 2, 2)
	branchB := append(append([]int{}, prefix...), 2, 2, 0, 2, 2, 2)
	tree, err := sim.TreeFromSchedules(3, hwSetup, [][]int{branchA, branchB})
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

func TestHWQueueNotStronglyLinearizableAsMultiplicityQueue(t *testing.T) {
	res := history.CheckStrongLin(hwWitnessTree(t), spec.MultiplicityQueue{}, nil)
	if res.Ok {
		t.Fatal("multiplicity relaxation rescued the Herlihy–Wing witness; Theorem 17 says it cannot")
	}
}

func TestHWQueueNotStronglyLinearizableAsStutteringQueue(t *testing.T) {
	for _, m := range []int{1, 2} {
		res := history.CheckStrongLin(hwWitnessTree(t), spec.StutteringQueue{M: m}, nil)
		if res.Ok {
			t.Fatalf("m=%d stuttering relaxation rescued the Herlihy–Wing witness", m)
		}
	}
}

func TestHWQueueWitnessAcceptedByTwoOutOfOrderSpec(t *testing.T) {
	// NOT a contradiction: 3 processes is outside Theorem 19's n > 2k range
	// for k = 2, and indeed the 2-window makes both branches consistent
	// with a single committed enqueue order.
	res := history.CheckStrongLin(hwWitnessTree(t), spec.OutOfOrderQueue{K: 2}, nil)
	if !res.Ok {
		t.Fatalf("2-out-of-order spec rejected the 3-process witness: %v — "+
			"the k-window should absorb the branch conflict below n > 2k", res.Counterexample)
	}
}

// The leaf histories of the witness remain linearizable for every spec in
// play (the refutations above are purely prefix-closure failures).
func TestHWWitnessLeavesLinearizableForAllSpecs(t *testing.T) {
	tree := hwWitnessTree(t)
	specs := []spec.Spec{
		spec.Queue{},
		spec.MultiplicityQueue{},
		spec.StutteringQueue{M: 1},
		spec.OutOfOrderQueue{K: 2},
	}
	tree.Walk(func(n *sim.Node, trace []sim.Event) bool {
		if len(n.Children) == 0 {
			h := history.FromEvents(tree.Procs, tree.Ops, trace)
			for _, sp := range specs {
				if res := history.CheckLinearizable(h, sp); !res.Ok {
					t.Fatalf("leaf rejected by %s: %s", sp.Name(), h.String())
				}
			}
		}
		return true
	})
}
