package baseline

import (
	"testing"

	"stronglin/internal/history"
	"stronglin/internal/prim"
	"stronglin/internal/sim"
	"stronglin/internal/spec"
)

func opPush(s *NaiveStack, v int64) sim.Op {
	return sim.Op{
		Name: spec.MkOp(spec.MethodPush, v).String(),
		Spec: spec.MkOp(spec.MethodPush, v),
		Run: func(t prim.Thread) string {
			s.Push(t, v)
			return spec.RespOK
		},
	}
}

func opPopBounded(s *NaiveStack) sim.Op {
	return sim.Op{
		Name: "pop()",
		Spec: spec.MkOp(spec.MethodPop),
		Run: func(t prim.Thread) string {
			if v, ok := s.PopBounded(t); ok {
				return spec.RespInt(v)
			}
			return spec.RespEmpty
		},
	}
}

func TestNaiveStackSequential(t *testing.T) {
	s := NewNaiveStack(sim.NewSoloWorld(), "st", 8)
	th := sim.SoloThread(0)
	s.Push(th, 1)
	s.Push(th, 2)
	s.Push(th, 3)
	for want := int64(3); want >= 1; want-- {
		v, ok := s.PopBounded(th)
		if !ok || v != want {
			t.Fatalf("pop = %d,%v want %d", v, ok, want)
		}
	}
	if _, ok := s.PopBounded(th); ok {
		t.Fatal("pop on empty returned a value")
	}
}

func naiveStackSetup(w *sim.World) []sim.Program {
	s := NewNaiveStack(w, "st", 4)
	return []sim.Program{
		{opPush(s, 1)},
		{opPush(s, 2)},
		{opPopBounded(s), opPopBounded(s)},
	}
}

// Empirical verdict: the naive fetch&add+swap stack is linearizable on
// every interleaving of this bounded configuration.
func TestNaiveStackLinearizable(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive interleaving check; skipped in -short mode")
	}
	tree, err := sim.Explore(3, naiveStackSetup, &sim.ExploreOptions{MaxNodes: 3000000})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Truncated {
		t.Fatal("tree truncated")
	}
	tree.Walk(func(n *sim.Node, trace []sim.Event) bool {
		if len(n.Children) == 0 {
			h := history.FromEvents(tree.Procs, tree.Ops, trace)
			if res := history.CheckLinearizable(h, spec.Stack{}); !res.Ok {
				t.Fatalf("non-linearizable leaf: %s\n%s", h.String(), history.RenderTimeline(h))
			}
		}
		return true
	})
}

// ... but, per Theorem 17, NOT strongly linearizable. The stack's witness
// differs from the queue's because pops scan DOWNWARD from the top: the
// fork is a first pop that has already swept past slot 1 while push(2)'s
// write was pending, after which push(2) COMPLETES. Branch A: push(1)'s
// write lands and the pop takes it (pop=1, forcing push order [2,1] with
// the pop after both). Branch B: the pop reaches the (still-empty) slot 0
// and returns EMPTY — valid only if the pop is linearized BEFORE the
// already-complete push(2). Any prefix-closed function must decide at the
// fork whether the pending pop precedes push(2); each branch kills one
// choice.
func TestNaiveStackNotStronglyLinearizable(t *testing.T) {
	// Fork construction: p0 push(1): fetch&add only (slot 0 reserved,
	// unwritten); p1 push(2): fetch&add (slot 1); p2 pop: reads top=2 and
	// swaps slot 1 (empty — push(2) not yet written); then p1's write lands
	// (push(2) complete).
	prefix := []int{0, 0, 1, 1, 2, 2, 2, 1}
	// Branch A: p0 writes slot 0; pop takes it (pop1=1); second pop takes 2.
	branchA := append(append([]int{}, prefix...), 0, 2, 2, 2, 2)
	// Branch B: pop reaches empty slot 0 (pop1=empty); second pop takes 2;
	// p0's write lands last.
	branchB := append(append([]int{}, prefix...), 2, 2, 2, 2, 0)
	tree, err := sim.TreeFromSchedules(3, naiveStackSetup, [][]int{branchA, branchB})
	if err != nil {
		t.Fatal(err)
	}
	// Verify the branch responses before interpreting the verdict.
	got := map[string]bool{}
	tree.Walk(func(n *sim.Node, trace []sim.Event) bool {
		if len(n.Children) == 0 {
			resps := ""
			for _, ev := range trace {
				if ev.Kind == sim.EventReturn && ev.OpID >= 2 {
					resps += ev.Resp + ","
				}
			}
			got[resps] = true
		}
		return true
	})
	if !got["1,2,"] || !got["empty,2,"] {
		t.Fatalf("branches returned %v, want {1,2} and {empty,2}", got)
	}
	// Each branch alone is linearizable...
	tree.Walk(func(n *sim.Node, trace []sim.Event) bool {
		if len(n.Children) == 0 {
			h := history.FromEvents(tree.Procs, tree.Ops, trace)
			if res := history.CheckLinearizable(h, spec.Stack{}); !res.Ok {
				t.Fatalf("leaf not linearizable: %s", h.String())
			}
		}
		return true
	})
	// ... but together they refute prefix-closure.
	res := history.CheckStrongLin(tree, spec.Stack{}, nil)
	if res.Ok {
		t.Fatal("naive stack witness accepted; Theorem 17 says a refutable prefix must exist")
	}
	t.Logf("counterexample: %s", res.Counterexample)
}

func TestNaiveStackReductionViolation(t *testing.T) {
	// Algorithm B over the naive stack: the stall adversary (hold push(1)'s
	// slot write) makes processes collect states whose solo pop sequences
	// see different stacks — agreement breaks, as Theorem 17 demands.
	desc := stackDescriptorLocal(3)
	impl := implLocal{
		build: func(w prim.World, n int) applyObj {
			return NewNaiveStack(w, "A", 3)
		},
	}
	grants0 := 0
	policy := func(v sim.PolicyView) int {
		// p0's first 3 grants: invoke, M-write, fetch&add — stopping just
		// before the slot write (no T instrumentation in this simplified
		// variant).
		if grants0 < 3 {
			for _, p := range v.Enabled {
				if p == 0 {
					grants0++
					return 0
				}
			}
		}
		for _, want := range []int{1, 2, 0} {
			for _, p := range v.Enabled {
				if p == want {
					return p
				}
			}
		}
		return v.Enabled[0]
	}
	decisions := runStackReduction(t, desc, impl, policy)
	distinct := map[int64]bool{}
	for _, d := range decisions {
		distinct[d] = true
	}
	if len(distinct) < 2 {
		t.Fatalf("expected an agreement violation, got %v", decisions)
	}
}

// Minimal local shims so this test file does not import internal/agreement
// (which would create an import cycle: agreement's tests import baseline).
type applyObj interface {
	Apply(t prim.Thread, op spec.Op) string
}

type implLocal struct {
	build func(w prim.World, n int) applyObj
}

type stackDesc struct {
	n    int
	prop func(i int) []spec.Op
	dec  func(i int) []spec.Op
	d    func(i int, resps []string) int
}

func stackDescriptorLocal(n int) stackDesc {
	return stackDesc{
		n:    n,
		prop: func(i int) []spec.Op { return []spec.Op{spec.MkOp(spec.MethodPush, int64(i)+1)} },
		dec: func(i int) []spec.Op {
			out := make([]spec.Op, n+1)
			for j := range out {
				out[j] = spec.MkOp(spec.MethodPop)
			}
			return out
		},
		d: func(i int, resps []string) int {
			for j := len(resps) - 1; j >= 0; j-- {
				if resps[j] != spec.RespEmpty {
					var v int64
					for _, c := range resps[j] {
						v = v*10 + int64(c-'0')
					}
					return int(v - 1)
				}
			}
			return -1
		},
	}
}

func runStackReduction(t *testing.T, desc stackDesc, impl implLocal, policy sim.Policy) []int64 {
	t.Helper()
	inputs := []int64{100, 200, 300}
	out := make([]int64, desc.n)
	setup := func(w *sim.World) []sim.Program {
		m := make([]prim.Register, desc.n)
		for i := range m {
			m[i] = w.Register("B.M."+string(rune('0'+i)), -1)
		}
		obj := impl.build(w, desc.n)
		names := w.ObjectNames()
		progs := make([]sim.Program, desc.n)
		for i := 0; i < desc.n; i++ {
			i := i
			progs[i] = sim.Program{{
				Name: "decide",
				Spec: spec.MkOp("decide", inputs[i]),
				Run: func(th prim.Thread) string {
					m[i].Write(th, inputs[i])
					var resps []string
					for _, op := range desc.prop(i) {
						resps = append(resps, obj.Apply(th, op))
					}
					// Collect (no T instrumentation in this simplified
					// variant: the stall adversary provides the quiescence).
					states := make(map[string]sim.ObjState, len(names))
					for _, name := range names {
						states[name] = w.ReadObject(th, name)
					}
					w2 := sim.NewSoloWorld()
					obj2 := impl.build(w2, desc.n)
					w2.LoadStates(states)
					for _, op := range desc.dec(i) {
						// Bounded pops for the simplified variant.
						if op.Method == spec.MethodPop {
							st := obj2.(*NaiveStack)
							if v, ok := st.PopBounded(sim.SoloThread(i)); ok {
								resps = append(resps, spec.RespInt(v))
							} else {
								resps = append(resps, spec.RespEmpty)
							}
							continue
						}
						resps = append(resps, obj2.Apply(sim.SoloThread(i), op))
					}
					ell := desc.d(i, resps)
					if ell < 0 || ell >= desc.n {
						return "invalid"
					}
					v := m[ell].Read(th)
					out[i] = v
					return spec.RespInt(v)
				},
			}}
		}
		return progs
	}
	exec, err := sim.RunToCompletion(desc.n, setup, policy, 200000)
	if err != nil {
		t.Fatal(err)
	}
	if !exec.Complete {
		t.Fatal("reduction run incomplete")
	}
	return out
}
