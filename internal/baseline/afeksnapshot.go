package baseline

import (
	"strconv"

	"stronglin/internal/prim"
)

// afekRecord is the (data, seq, view) tuple held by each process's
// single-writer register in the Afek et al. snapshot. Records are immutable
// once written.
type afekRecord struct {
	data int64
	seq  int64
	view []int64
}

// AfekSnapshot is the unbounded-sequence-number single-writer atomic
// snapshot of Afek, Attiya, Dolev, Gafni, Merritt and Shavit (J.ACM 1993),
// from registers only.
//
//	update_i(d): view := scan(); R_i.write(d, seq+1, view)
//	scan():      collect repeatedly; return the values of two identical
//	             consecutive collects (a clean double collect), or, once some
//	             process has been observed to move twice, that process's
//	             embedded view (it was obtained inside this scan's interval).
//
// It is wait-free and linearizable. It is NOT strongly linearizable: this is
// the original example of Golab, Higham and Woelfel — a scan's return value
// can remain adversary-controlled after the point where any prefix-closed
// linearization function would have had to commit it. The model-checking
// tests exhibit a concrete such prefix.
type AfekSnapshot struct {
	n    int
	regs []prim.AnyRegister
}

// NewAfekSnapshot allocates one single-writer register per process.
func NewAfekSnapshot(w prim.World, name string, n int) *AfekSnapshot {
	s := &AfekSnapshot{n: n, regs: make([]prim.AnyRegister, n)}
	for i := range s.regs {
		s.regs[i] = w.AnyRegister(name+".R["+strconv.Itoa(i)+"]", &afekRecord{view: make([]int64, n)})
	}
	return s
}

func (s *AfekSnapshot) collect(t prim.Thread) []*afekRecord {
	out := make([]*afekRecord, s.n)
	for i := range s.regs {
		out[i] = s.regs[i].ReadAny(t).(*afekRecord)
	}
	return out
}

// Update writes v to the caller's component.
func (s *AfekSnapshot) Update(t prim.Thread, v int64) {
	view := s.Scan(t)
	i := t.ID()
	prev := s.regs[i].ReadAny(t).(*afekRecord)
	s.regs[i].WriteAny(t, &afekRecord{data: v, seq: prev.seq + 1, view: view})
}

// Scan returns an atomic view.
func (s *AfekSnapshot) Scan(t prim.Thread) []int64 {
	moved := make([]int, s.n)
	prev := s.collect(t)
	for {
		cur := s.collect(t)
		clean := true
		for j := 0; j < s.n; j++ {
			if prev[j].seq != cur[j].seq {
				clean = false
				if moved[j]++; moved[j] >= 2 {
					// j completed an update entirely within this scan; its
					// embedded view is linearizable here.
					out := make([]int64, s.n)
					copy(out, cur[j].view)
					return out
				}
			}
		}
		if clean {
			out := make([]int64, s.n)
			for j, r := range cur {
				out[j] = r.data
			}
			return out
		}
		prev = cur
	}
}
