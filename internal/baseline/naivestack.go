package baseline

import (
	"fmt"

	"stronglin/internal/prim"
	"stronglin/internal/spec"
)

// NaiveStack is the direct stack analog of the Herlihy–Wing queue from
// fetch&add and swap: push reserves the next slot with fetch&add(top, 1) and
// stores its value with a swap; pop reads top and scans DOWNWARD, swapping
// each slot with 0 until it extracts a value.
//
// This is the "obvious" stack that the Common2 constructions of
// Afek–Gafni–Morrison improve upon; the model-checking tests determine its
// verdicts empirically (see naivestack_test.go): it is linearizable on the
// bounded configurations explored, and — like every lock-free stack from
// consensus-number-2 primitives, by Theorem 17 — NOT strongly linearizable,
// with a two-branch witness symmetric to the queue's.
type NaiveStack struct {
	top   prim.FetchAdd
	items *prim.SwapArray
	cap   int
}

// NewNaiveStack allocates the stack with a fixed slot capacity,
// pre-allocating the slots (fixed base-object set, as model checking and
// the reduction require). Use NewNaiveStackLazy for long workloads.
func NewNaiveStack(w prim.World, name string, capacity int) *NaiveStack {
	s := NewNaiveStackLazy(w, name, capacity)
	for i := 0; i < capacity; i++ {
		s.items.Get(i)
	}
	return s
}

// NewNaiveStackLazy is NewNaiveStack without slot pre-allocation.
func NewNaiveStackLazy(w prim.World, name string, capacity int) *NaiveStack {
	return &NaiveStack{
		top:   w.FetchAdd(name + ".top"),
		items: prim.NewSwapArray(w, name+".items", 0),
		cap:   capacity,
	}
}

// Push adds v (> 0).
func (s *NaiveStack) Push(t prim.Thread, v int64) {
	if v <= 0 {
		panic(fmt.Sprintf("baseline: NaiveStack.Push(%d): values must be positive", v))
	}
	slot := s.top.FetchAdd(t, oneBig).Int64()
	if slot >= int64(s.cap) {
		panic(fmt.Sprintf("baseline: NaiveStack capacity %d exceeded", s.cap))
	}
	s.items.Get(int(slot)).Swap(t, v)
}

// PopBounded performs one downward scan and reports whether it extracted a
// value.
func (s *NaiveStack) PopBounded(t prim.Thread) (int64, bool) {
	topIdx := s.top.FetchAdd(t, zeroBig).Int64()
	for i := topIdx - 1; i >= 0; i-- {
		if v := s.items.Get(int(i)).Swap(t, 0); v != 0 {
			return v, true
		}
	}
	return 0, false
}

// Apply implements the generic object interface used by the Lemma 12
// reduction; pop spins until it extracts a value.
func (s *NaiveStack) Apply(t prim.Thread, op spec.Op) string {
	switch op.Method {
	case spec.MethodPush:
		s.Push(t, op.Args[0])
		return spec.RespOK
	case spec.MethodPop:
		for {
			if v, ok := s.PopBounded(t); ok {
				return spec.RespInt(v)
			}
		}
	default:
		panic("baseline: NaiveStack does not implement " + op.Method)
	}
}
