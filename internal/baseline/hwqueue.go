// Package baseline implements published comparator objects:
//
//   - HWQueue: the Herlihy–Wing queue from fetch&add and swap. It is
//     linearizable and lock-free (for non-empty dequeues), but — by the
//     paper's Theorem 17 — it cannot be strongly linearizable, being a
//     1-ordering object built from fetch&add/swap/registers. The
//     model-checking tests exhibit a concrete prefix where no prefix-closed
//     linearization function exists.
//   - AfekSnapshot: the Afek–Attiya–Dolev–Gafni–Merritt–Shavit single-writer
//     atomic snapshot from registers. Wait-free and linearizable; Golab,
//     Higham and Woelfel's original counterexample shows it is not strongly
//     linearizable.
//   - AACMaxRegister: the Aspnes–Attiya–Censor bounded max register from
//     registers (the binary-trie construction). Wait-free and linearizable.
//   - Universal / CASQueue: the lock-free strongly-linearizable universal
//     object from compare&swap — the "universal primitive" comparator the
//     paper contrasts with (its linearization point is its successful CAS).
//
// These are the negative/positive poles of every experiment: the paper's
// constructions must match Universal's verdicts (strongly linearizable)
// while using only consensus-number-2 primitives; HWQueue and AfekSnapshot
// must pass linearizability and fail strong linearizability.
package baseline

import (
	"fmt"

	"stronglin/internal/prim"
	"stronglin/internal/spec"
)

// HWQueue is the Herlihy–Wing queue. Base objects: a fetch&add register back
// and an array items of swap registers (0 encodes an empty slot, so enqueued
// values must be positive).
//
// Enqueue obtains a slot with fetch&add(back, 1) and stores its value with a
// swap (the store of the original algorithm). Dequeue repeatedly scans
// items[0..back) swapping each slot with 0 until it extracts a value; on an
// empty queue it spins (the original algorithm has no empty response), so
// DequeueBounded provides a bounded-scan variant returning empty for use in
// workloads that may observe an empty queue.
type HWQueue struct {
	back  prim.FetchAdd
	items *prim.SwapArray
	cap   int
}

// NewHWQueue allocates the queue. capacity bounds the total number of
// enqueues across the object's lifetime and pre-allocates the slots, keeping
// the base-object set R fixed and finite, as the reduction of Lemma 12
// requires. Use it for model-checking and reduction configurations; for
// long-running workloads use NewHWQueueLazy.
func NewHWQueue(w prim.World, name string, capacity int) *HWQueue {
	q := NewHWQueueLazy(w, name, capacity)
	for i := 0; i < capacity; i++ {
		q.items.Get(i) // pre-allocate
	}
	return q
}

// NewHWQueueLazy is NewHWQueue without slot pre-allocation (slots are
// created on first touch). The base-object set is then execution-dependent,
// which is fine for stress tests and benchmarks but not for the Lemma 12
// reduction.
func NewHWQueueLazy(w prim.World, name string, capacity int) *HWQueue {
	return &HWQueue{
		back:  w.FetchAdd(name + ".back"),
		items: prim.NewSwapArray(w, name+".items", 0),
		cap:   capacity,
	}
}

// Enqueue adds v (> 0) to the queue.
func (q *HWQueue) Enqueue(t prim.Thread, v int64) {
	if v <= 0 {
		panic(fmt.Sprintf("baseline: HWQueue.Enqueue(%d): values must be positive", v))
	}
	slot := q.back.FetchAdd(t, oneBig).Int64()
	if slot >= int64(q.cap) {
		panic(fmt.Sprintf("baseline: HWQueue capacity %d exceeded", q.cap))
	}
	q.items.Get(int(slot)).Swap(t, v)
}

// Dequeue removes and returns the oldest value, spinning while the queue is
// empty.
func (q *HWQueue) Dequeue(t prim.Thread) int64 {
	for {
		rng := q.back.FetchAdd(t, zeroBig).Int64()
		for i := int64(0); i < rng; i++ {
			if v := q.items.Get(int(i)).Swap(t, 0); v != 0 {
				return v
			}
		}
	}
}

// DequeueBounded performs one scan round and returns 0 if it extracted
// nothing. It exists to keep bounded model-checking configurations finite.
//
// CAUTION: treating the false return as an "empty" response is NOT
// linearizable in general — the original Herlihy–Wing queue deliberately
// has no empty response. A scan can miss every item: its back-read cuts off
// a slot whose enqueue completes mid-scan, while the item ahead of it is
// taken by another dequeue after the scan has passed that slot
// (TestHWQueueBoundedEmptinessUnsound pins a 4-process witness found by the
// randomized stress harness). Workloads that interpret false as empty must
// therefore be checked only on configurations where the race cannot occur,
// or use the spinning Dequeue.
func (q *HWQueue) DequeueBounded(t prim.Thread) (int64, bool) {
	rng := q.back.FetchAdd(t, zeroBig).Int64()
	for i := int64(0); i < rng; i++ {
		if v := q.items.Get(int(i)).Swap(t, 0); v != 0 {
			return v, true
		}
	}
	return 0, false
}

// Apply implements the generic object interface used by the Lemma 12
// reduction.
func (q *HWQueue) Apply(t prim.Thread, op spec.Op) string {
	switch op.Method {
	case spec.MethodEnq:
		q.Enqueue(t, op.Args[0])
		return spec.RespOK
	case spec.MethodDeq:
		return spec.RespInt(q.Dequeue(t))
	default:
		panic("baseline: HWQueue does not implement " + op.Method)
	}
}
