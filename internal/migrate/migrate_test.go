package migrate

import (
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"

	"stronglin/internal/core"
	"stronglin/internal/history"
	"stronglin/internal/prim"
	"stronglin/internal/shard"
	"stronglin/internal/sim"
	"stronglin/internal/spec"
)

// mwBound2 stripes 2 lanes over 2 words (FieldWidth 32, 1 lane/word): the
// minimal multi-word shape, same as core's exhaustive cutover configs.
const mwBound2 = int64(1)<<32 - 1

// mwBound3 stripes 3 lanes over 2 words (FieldWidth 22, 2 lanes/word).
const mwBound3 = int64(1)<<22 - 1

func opUpdate(s *core.FASnapshot, i, v int64) sim.Op {
	return sim.Op{
		Name: spec.MkOp(spec.MethodUpdate, i, v).String(),
		Spec: spec.MkOp(spec.MethodUpdate, i, v),
		Run: func(t prim.Thread) string {
			s.Update(t, v)
			return spec.RespOK
		},
	}
}

func opScan(s *core.FASnapshot) sim.Op {
	return sim.Op{
		Name: "scan()",
		Spec: spec.MkOp(spec.MethodScan),
		Run:  func(t prim.Thread) string { return spec.RespVec(s.Scan(t)) },
	}
}

// opRebase models the live cutover as the operation it linearizes as: the
// scan returning the migrator's final validated deposit (see core.Rebase).
func opRebase(s *core.FASnapshot) sim.Op {
	return sim.Op{
		Name: "rebase()",
		Spec: spec.MkOp(spec.MethodScan),
		Run:  func(t prim.Thread) string { return spec.RespVec(s.RebaseView(t)) },
	}
}

// lowestEnabled is the deterministic base policy the fault rules filter: the
// lowest-numbered unfaulted process runs until it blocks or finishes, so the
// stall/kill windows fully determine the interleaving.
func lowestEnabled(v sim.PolicyView) int { return v.Enabled[0] }

func checkLin(t *testing.T, procs int, exec *sim.Execution) {
	t.Helper()
	h := history.FromEvents(procs, exec.Ops, exec.Events)
	if res := history.CheckLinearizable(h, spec.Snapshot{}); !res.Ok {
		t.Fatalf("history not linearizable:\n%v", exec.Events)
	}
}

// --- Watermark states and the Rebaser's trigger ---------------------------

func TestWatermarkStatesAndStep(t *testing.T) {
	w := sim.NewSoloWorld()
	th := sim.SoloThread(0)
	c := shard.NewCounter(w, "c", 2, 2)
	s := core.NewFASnapshot(w, "snap", 2, core.WithSnapshotBound(mwBound2), core.WithLiveRebase(true))

	// Budget 8 with warn 0.5 / crit 0.9: warn at 4, crit at 8.
	r, err := NewRebaser(DefaultThresholds(),
		CounterTarget("counter", c).WithBudget(8),
		SnapshotTarget("msnapshot", s).WithBudget(8))
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Targets(); !reflect.DeepEqual(got, []string{"counter", "msnapshot"}) {
		t.Fatalf("targets = %v", got)
	}

	for i := 0; i < 3; i++ {
		c.Inc(th)
	}
	if got := r.StateOf(th, 0); got != StateOK {
		t.Fatalf("state at 3/8 = %v, want ok", got)
	}
	if n := r.Step(th); n != 0 {
		t.Fatalf("step below warn performed %d rollovers", n)
	}
	c.Inc(th) // 4/8: the warn line
	if got := r.StateOf(th, 0); got != StateWarn {
		t.Fatalf("state at 4/8 = %v, want warn", got)
	}
	if got := r.State(th); got != StateWarn {
		t.Fatalf("aggregate state = %v, want warn (worst target)", got)
	}
	if n := r.Step(th); n != 1 {
		t.Fatalf("step at warn performed %d rollovers, want 1", n)
	}
	if got := r.StateOf(th, 0); got != StateOK {
		t.Fatalf("state after rollover = %v, want ok", got)
	}
	if got := c.Read(th); got != 4 {
		t.Fatalf("counter after rollover = %d, want 4", got)
	}
	if got := c.EpochGeneration(th); got != 1 {
		t.Fatalf("generation after step = %d, want 1", got)
	}

	// The snapshot target crosses crit, and one Step recovers it too.
	for i := int64(1); i <= 8; i++ {
		s.Update(sim.SoloThread(1), i)
	}
	if got := r.StateOf(th, 1); got != StateCrit {
		t.Fatalf("snapshot state at 8/8 = %v, want crit", got)
	}
	if got := r.State(th); got != StateCrit {
		t.Fatalf("aggregate state = %v, want crit", got)
	}
	if n := r.Step(th); n != 1 {
		t.Fatalf("step at crit performed %d rollovers, want 1", n)
	}
	if got := s.SeqWatermark(th); got != 0 {
		t.Fatalf("seq watermark after rebase = %d, want 0", got)
	}
	if got := r.State(th); got != StateOK {
		t.Fatalf("aggregate state after recovery = %v, want ok", got)
	}
	if st := r.Stats(); st.Rollovers != 2 || st.Refused != 0 {
		t.Fatalf("stats = %+v, want 2 rollovers, 0 refused", st)
	}
	// A second Step right after is a no-op: the budgets are fresh.
	if n := r.Step(th); n != 0 {
		t.Fatalf("step on fresh budgets performed %d rollovers", n)
	}
}

func TestRebaserValidation(t *testing.T) {
	w := sim.NewSoloWorld()
	c := shard.NewCounter(w, "c", 2, 2)
	if _, err := NewRebaser(Thresholds{Warn: 0.9, Crit: 0.5}, CounterTarget("c", c)); err == nil {
		t.Fatal("inverted thresholds accepted")
	}
	if _, err := NewRebaser(Thresholds{Warn: 0, Crit: 0.5}, CounterTarget("c", c)); err == nil {
		t.Fatal("zero warn accepted")
	}
	if _, err := NewRebaser(DefaultThresholds(), Target{Name: "hollow"}); err == nil {
		t.Fatal("incomplete target accepted")
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("SnapshotTarget accepted a non-rebasable snapshot")
		}
		if !strings.Contains(fmt.Sprint(r), "not rebase-enabled") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	SnapshotTarget("plain", core.NewFASnapshot(w, "plain", 2, core.WithSnapshotBound(mwBound2)))
}

// --- Injected-failure proofs ----------------------------------------------
//
// Each drives the live cutover through a sim world with a fault rule from
// internal/sim layered over the deterministic lowest-enabled policy, then
// checks the surviving history: linearizable, and the stalled/killed
// process's update is never lost.

// TestFaultWriterStalledAcrossCutover freezes a writer between its payload
// XADD and its cutover poll, runs a complete re-base over it, and resumes
// it into a world two pointer-hops ahead: the poll observes the armed
// generation, the update diverts, and the payload — already inside the
// migrator's final validated collect — is carried, not re-applied.
func TestFaultWriterStalledAcrossCutover(t *testing.T) {
	var s *core.FASnapshot
	setup := func(w *sim.World) []sim.Program {
		s = core.NewFASnapshot(w, "snap", 3, core.WithSnapshotBound(mwBound3), core.WithLiveRebase(true))
		return []sim.Program{
			{opUpdate(s, 0, 5)},    // the stalled writer
			{opRebase(s)},          // the migrator
			{opScan(s), opScan(s)}, // scans on both sides of the resume
		}
	}
	// The writer is frozen after 2 grants (invoke + payload XADD), squarely
	// mid-operation, and thawed at step 30 — after the install (the migrator
	// needs ~20 grants) but while the scanner still has its second scan
	// outstanding, so the resumed writer finishes before that scan begins.
	base := lowestEnabled
	policy := sim.FaultedPolicy(3, base, sim.Stall(0, 2, 30))
	exec, err := sim.RunToCompletion(3, setup, policy, 300)
	if err != nil {
		t.Fatal(err)
	}
	if !exec.Complete {
		t.Fatalf("execution incomplete:\n%v", exec.Events)
	}
	resp := exec.Responses()
	if resp[3] != "[5 0 0]" { // the scan after the writer's resume
		t.Fatalf("final scan = %q, want [5 0 0] (stalled update lost?)", resp[3])
	}
	checkLin(t, 3, exec)
	st := s.RebaseStats()
	if st.Generations != 1 || st.Diverts < 1 {
		t.Fatalf("stats = %+v, want 1 generation and a diverted update", st)
	}
}

// TestFaultReaderParkedTwoGenerations opens a scan's validation window on
// generation 0, freezes it while two complete cutovers run over it, and
// resumes it into generation 2: the scan parks on each retired generation in
// turn (both deposits fail the fresh-word witness — blind adoption is the
// pinned negative twin in core), awaits each install, and re-collects on the
// live generation.
func TestFaultReaderParkedTwoGenerations(t *testing.T) {
	var s *core.FASnapshot
	setup := func(w *sim.World) []sim.Program {
		s = core.NewFASnapshot(w, "snap", 3, core.WithSnapshotBound(mwBound3), core.WithLiveRebase(true))
		return []sim.Program{
			{opUpdate(s, 0, 5)},
			{opScan(s)}, // the parked reader
			{opRebase(s), opRebase(s), opScan(s), opScan(s)}, // the migrator, with slack work
		}
	}
	// Freeze the reader 2 grants into its scan (window open, collect begun)
	// and thaw it only after the second install has landed; the migrator's
	// trailing scans keep the schedule from wedging while the reader is out.
	policy := sim.FaultedPolicy(3, lowestEnabled, sim.Stall(1, 5, 50))
	exec, err := sim.RunToCompletion(3, setup, policy, 300)
	if err != nil {
		t.Fatal(err)
	}
	if !exec.Complete {
		t.Fatalf("execution incomplete:\n%v", exec.Events)
	}
	resp := exec.Responses()
	if resp[1] != "[5 0 0]" { // the parked reader's scan
		t.Fatalf("parked scan = %q, want [5 0 0]", resp[1])
	}
	checkLin(t, 3, exec)
	st := s.RebaseStats()
	if st.Generations != 2 {
		t.Fatalf("generations = %d, want 2", st.Generations)
	}
	if st.ParkWaits < 2 {
		t.Fatalf("stats = %+v, want the reader parked through both generations", st)
	}
}

// TestFaultMigratorKilledRestarted kills a migrator at each of several
// depths into its cutover — before the arm, mid-collect, after the deposit —
// and has a second migrator call Rebase afresh. The restart adopts whatever
// the corpse left (an armed bit, a partial pre-load) and completes the
// cutover; the history stays linearizable with the writer's update intact,
// exactly the contract core.Rebase documents for crashed migrators.
func TestFaultMigratorKilledRestarted(t *testing.T) {
	// The full cutover on this shape takes 15-17 grants; every kill point
	// below leaves it genuinely mid-flight.
	for _, kill := range []int{2, 5, 8, 11, 13, 14} {
		var s *core.FASnapshot
		setup := func(w *sim.World) []sim.Program {
			s = core.NewFASnapshot(w, "snap", 4, core.WithSnapshotBound(mwBound3), core.WithLiveRebase(true))
			return []sim.Program{
				{opUpdate(s, 0, 5)},
				{opRebase(s)}, // killed mid-cutover
				{opRebase(s)}, // the restart
				{opScan(s)},
			}
		}
		policy := sim.FaultedPolicy(4, lowestEnabled, sim.Kill(1, kill))
		exec, err := sim.RunToCompletion(4, setup, policy, 300)
		if err != nil {
			t.Fatalf("kill@%d: %v", kill, err)
		}
		if exec.Complete {
			t.Fatalf("kill@%d: execution completed despite the killed migrator", kill)
		}
		resp := exec.Responses()
		if _, ok := resp[1]; ok {
			t.Fatalf("kill@%d: the killed migrator's op responded %q", kill, resp[1])
		}
		if resp[2] != "[5 0 0 0]" { // the restart's rebase view
			t.Fatalf("kill@%d: restart rebase view = %q, want [5 0 0 0]", kill, resp[2])
		}
		if resp[3] != "[5 0 0 0]" { // the trailing scan
			t.Fatalf("kill@%d: post-cutover scan = %q, want [5 0 0 0]", kill, resp[3])
		}
		checkLin(t, 4, exec)
		if g := s.RebaseStats().Generations; g < 1 {
			t.Fatalf("kill@%d: no cutover completed", kill)
		}
	}
}

// --- The sequence-wrap pin (real world) -----------------------------------

// TestSeqWrapRollover is the wrap-pinning satellite: it spends the sequence
// budget to within striking distance of 2^16 on real atomics, watches the
// watermark cross warn and then crit, and has the Rebaser roll the snapshot
// over live — concurrent scans running throughout — before the mod-2^16
// counters can wrap. After the cutover the budget is fresh and the values
// intact.
func TestSeqWrapRollover(t *testing.T) {
	w := prim.NewRealWorld()
	s := core.NewFASnapshot(w, "snap", 2, core.WithSnapshotBound(mwBound2), core.WithLiveRebase(true))
	r, err := NewRebaser(DefaultThresholds(), SnapshotTarget("msnapshot", s))
	if err != nil {
		t.Fatal(err)
	}
	updater, scanner := prim.RealThread(1), prim.RealThread(0)

	// A scanner runs through the entire burn-down and the cutover itself:
	// every view it returns must be monotone in the updater's lane.
	stop := make(chan struct{})
	scanErr := make(chan string, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		var prev int64
		for {
			select {
			case <-stop:
				return
			default:
			}
			v := s.Scan(scanner)
			if v[0] != 0 || v[1] < prev {
				select {
				case scanErr <- spec.RespVec(v):
				default:
				}
				return
			}
			prev = v[1]
		}
	}()

	// 60000 distinct values: the watermark lands at ~92% of the 2^16 budget,
	// past crit, with ~5500 updates of headroom before the wrap.
	const burn = 60000
	for i := int64(1); i <= burn; i++ {
		s.Update(updater, i)
	}
	if wm := s.SeqWatermark(updater); wm < burn {
		t.Fatalf("seq watermark = %d, want >= %d", wm, burn)
	}
	if got := r.State(updater); got != StateCrit {
		t.Fatalf("state near the wrap = %v, want crit", got)
	}

	if n := r.Step(updater); n != 1 {
		t.Fatalf("step performed %d rollovers, want 1", n)
	}
	if g := s.Generation(updater); g != 1 {
		t.Fatalf("generation = %d, want 1", g)
	}
	if wm := s.SeqWatermark(updater); wm >= burn {
		t.Fatalf("seq watermark after rollover = %d: the budget was not renewed", wm)
	}
	if got := r.State(updater); got != StateOK {
		t.Fatalf("state after rollover = %v, want ok", got)
	}

	// Life goes on, on the fresh budget.
	for i := int64(burn + 1); i <= burn+100; i++ {
		s.Update(updater, i)
	}
	close(stop)
	wg.Wait()
	select {
	case bad := <-scanErr:
		t.Fatalf("concurrent scan regressed: %s", bad)
	default:
	}
	if got := spec.RespVec(s.Scan(scanner)); got != spec.RespVec([]int64{0, burn + 100}) {
		t.Fatalf("final scan = %s, want [0 %d]", got, burn+100)
	}
	if st := r.Stats(); st.Rollovers != 1 {
		t.Fatalf("stats = %+v, want exactly 1 rollover", st)
	}
}
