// Package migrate turns the protocol's finite budgets into renewable ones.
//
// Two consumable resources bound how long the paper's objects can run. The
// multi-word snapshot spends its mod-2^16 per-word sequence field
// (interleave.SeqBits) on every update, and the sharded objects spend the
// 48-bit announce count of their epoch register on every increment. Both
// budgets are enormous in wall-clock terms, but both are FINITE, and a
// long-lived deployment that merely waits for them to wrap trades a proof
// obligation for a probability argument. The live re-base primitives close
// that gap — core.FASnapshot.Rebase rolls the snapshot onto a fresh
// generation of words, and the sharded objects' RolloverEpoch rewinds the
// epoch register under a generation bump — but they are deliberately
// mechanism, not policy: each performs exactly one cutover when called and
// leaves WHEN to call it to the caller.
//
// This package is that caller. A Rebaser watches a set of Targets (one per
// live object), classifies each watermark against warn/crit thresholds, and
// performs the re-base when a target crosses its warn line. It also owns the
// one piece of serialisation the primitives demand: at most one cutover may
// run at a time per object (core.FASnapshot.Rebase and shard.RolloverEpoch
// both state this contract), and the Rebaser's mutex provides it. The
// primitives themselves tolerate a CRASHED migrator — a cutover that died
// mid-flight is adopted and completed by the next call — so the mutex is a
// liveness convenience, not a safety requirement; the injected-failure tests
// in this package prove exactly that, by killing and stalling migrators with
// the internal/sim fault hooks and checking the surviving histories.
//
// States degrade, they do not fail: StateWarn means a re-base is due (and
// the Rebaser performs it on its next Step), StateCrit means the budget is
// nearly spent and the operator should be paged — but even crit is recovered
// by a successful rollover, after which the target reports StateOK again.
// cmd/slserve maps these states onto its /healthz endpoint and the
// slserve_*_watermark_state gauges.
package migrate

import (
	"fmt"
	"sync"
	"sync/atomic"

	"stronglin/internal/core"
	"stronglin/internal/interleave"
	"stronglin/internal/prim"
	"stronglin/internal/shard"
)

// State classifies a target's budget consumption.
type State int

const (
	// StateOK: the watermark is below the warn threshold.
	StateOK State = iota
	// StateWarn: a re-base is due; the Rebaser performs it on its next Step.
	StateWarn
	// StateCrit: the budget is nearly spent. A rollover still recovers it.
	StateCrit
)

func (s State) String() string {
	switch s {
	case StateOK:
		return "ok"
	case StateWarn:
		return "warn"
	case StateCrit:
		return "crit"
	}
	return fmt.Sprintf("State(%d)", int(s))
}

// Thresholds are fractions of a target's budget: a watermark at or above
// Warn*Budget is StateWarn (and triggers a re-base), at or above Crit*Budget
// is StateCrit.
type Thresholds struct {
	Warn float64
	Crit float64
}

// DefaultThresholds re-bases at half the budget and pages at 90%. Half the
// sequence budget is 2^15 updates per word between cutovers, which keeps the
// witness arguments comfortably inside their no-wrap envelope.
func DefaultThresholds() Thresholds { return Thresholds{Warn: 0.5, Crit: 0.9} }

func (th Thresholds) validate() error {
	if !(th.Warn > 0 && th.Warn <= th.Crit && th.Crit < 1) {
		return fmt.Errorf("migrate: thresholds need 0 < warn <= crit < 1, got warn=%v crit=%v", th.Warn, th.Crit)
	}
	return nil
}

// SeqBudget is the multi-word snapshot's per-word sequence budget: the
// watermark domain of core.FASnapshot.SeqWatermark.
const SeqBudget = int64(1)<<interleave.SeqBits - 1

// EpochBudget is the sharded objects' announce budget: the watermark domain
// of their EpochAnnounces decoders (bits 0..47 of the epoch register).
const EpochBudget = int64(1)<<48 - 1

// Target is one live object whose budget the Rebaser renews. Watermark reads
// the current consumption (scrape-safe, any thread), Budget is the domain it
// is measured against, and rebase performs one cutover with the given floor.
type Target struct {
	// Name labels the target in telemetry (e.g. "counter", "msnapshot").
	Name string
	// Budget is the watermark domain; thresholds are fractions of it.
	Budget int64
	// Watermark reads the target's current budget consumption.
	Watermark func(prim.Thread) int64
	// rebase performs one cutover. floor is the refusal threshold handed to
	// the shard rollover (ignored by the snapshot, whose budget renewal has
	// no floor). It reports whether a cutover was performed.
	rebase func(t prim.Thread, floor int64) bool
}

// WithBudget overrides the target's watermark domain. The protocol budget is
// unchanged — only the thresholds tighten. The soak harness uses this to
// force rollovers every few hundred operations instead of every few
// trillion, so a minutes-long run crosses the watermark many times.
func (tg Target) WithBudget(b int64) Target {
	if b <= 0 {
		panic(fmt.Sprintf("migrate: budget override must be positive, got %d", b))
	}
	tg.Budget = b
	return tg
}

// SnapshotTarget watches a multi-word snapshot's sequence watermark and
// renews it with core.FASnapshot.Rebase. Panics unless the snapshot was
// built with core.WithLiveRebase on the multi-word engine: wiring a
// non-rebasable snapshot into the Rebaser is a configuration bug, and the
// watermark it would silently ignore is exactly the wrap this package
// exists to prevent.
func SnapshotTarget(name string, s *core.FASnapshot) Target {
	if !s.RebaseEnabled() {
		panic(fmt.Sprintf("migrate: snapshot target %q is not rebase-enabled (engine %s)", name, s.Engine()))
	}
	return Target{
		Name:      name,
		Budget:    SeqBudget,
		Watermark: s.SeqWatermark,
		rebase: func(t prim.Thread, _ int64) bool {
			s.Rebase(t)
			return true
		},
	}
}

// rollable is the epoch-rollover surface shared by the sharded objects.
type rollable interface {
	EpochAnnounces(t prim.Thread) int64
	RolloverEpoch(t prim.Thread, minAnnounces int64) (int64, bool)
}

func shardTarget(name string, o rollable) Target {
	return Target{
		Name:      name,
		Budget:    EpochBudget,
		Watermark: o.EpochAnnounces,
		rebase: func(t prim.Thread, floor int64) bool {
			_, ok := o.RolloverEpoch(t, floor)
			return ok
		},
	}
}

// CounterTarget watches a sharded counter's epoch announce count and renews
// it with RolloverEpoch.
func CounterTarget(name string, c *shard.Counter) Target { return shardTarget(name, c) }

// MaxRegisterTarget is CounterTarget for a sharded max-register.
func MaxRegisterTarget(name string, m *shard.MaxRegister) Target { return shardTarget(name, m) }

// GSetTarget is CounterTarget for a sharded grow-only set.
func GSetTarget(name string, g *shard.GSet) Target { return shardTarget(name, g) }

// Stats is the Rebaser's cumulative telemetry. Read with Rebaser.Stats.
type Stats struct {
	// Rollovers counts cutovers performed across all targets.
	Rollovers int64 `json:"rollovers"`
	// Refused counts shard rollovers declined below their floor. Under the
	// Rebaser's own gating this stays zero; a nonzero count means an external
	// caller raced a RolloverEpoch against the Rebaser.
	Refused int64 `json:"refused"`
}

// Rebaser drives watermark-triggered live re-bases over a set of targets.
// It serialises cutovers (the at-most-one-migrator contract of the
// underlying primitives) and is safe for concurrent use: State/StateOf are
// lock-free scrapes, Step takes the cutover lock.
type Rebaser struct {
	mu        sync.Mutex
	thr       Thresholds
	targets   []Target
	rollovers atomic.Int64
	refused   atomic.Int64
}

// NewRebaser builds a Rebaser over the given targets. Thresholds must
// satisfy 0 < warn <= crit < 1.
func NewRebaser(thr Thresholds, targets ...Target) (*Rebaser, error) {
	if err := thr.validate(); err != nil {
		return nil, err
	}
	for i, tg := range targets {
		if tg.Name == "" || tg.Budget <= 0 || tg.Watermark == nil || tg.rebase == nil {
			return nil, fmt.Errorf("migrate: target %d (%q) is incomplete", i, tg.Name)
		}
	}
	return &Rebaser{thr: thr, targets: targets}, nil
}

// Targets returns the watched target names, in StateOf index order.
func (r *Rebaser) Targets() []string {
	names := make([]string, len(r.targets))
	for i, tg := range r.targets {
		names[i] = tg.Name
	}
	return names
}

func (r *Rebaser) classify(w int64, budget int64) State {
	frac := float64(w) / float64(budget)
	switch {
	case frac >= r.thr.Crit:
		return StateCrit
	case frac >= r.thr.Warn:
		return StateWarn
	}
	return StateOK
}

// StateOf classifies target i's current watermark. Scrape-safe.
func (r *Rebaser) StateOf(t prim.Thread, i int) State {
	tg := &r.targets[i]
	return r.classify(tg.Watermark(t), tg.Budget)
}

// State is the worst StateOf across all targets. Scrape-safe.
func (r *Rebaser) State(t prim.Thread) State {
	worst := StateOK
	for i := range r.targets {
		if s := r.StateOf(t, i); s > worst {
			worst = s
		}
	}
	return worst
}

// Step evaluates every target once and re-bases those at or past their warn
// line, returning the number of cutovers performed. The floor handed to the
// shard rollovers is the warn line itself, so the quantitative ABA backstop
// documented in internal/shard (64 floor-sized generations inside one reader
// window) is pinned to the operator's own threshold.
func (r *Rebaser) Step(t prim.Thread) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for i := range r.targets {
		tg := &r.targets[i]
		floor := int64(r.thr.Warn * float64(tg.Budget))
		if tg.Watermark(t) < floor {
			continue
		}
		if !tg.rebase(t, floor) {
			r.refused.Add(1)
			continue
		}
		r.rollovers.Add(1)
		n++
	}
	return n
}

// Stats reads the cumulative telemetry.
func (r *Rebaser) Stats() Stats {
	return Stats{Rollovers: r.rollovers.Load(), Refused: r.refused.Load()}
}
