package sim

// Fault injection: deterministic failure hooks layered over any scheduling
// Policy. A crash in this model is a process that is never scheduled again
// (crash_test.go's observation that crash scenarios are prefixes of the
// execution tree), and a stall is a window of the schedule in which a process
// is withheld — both are expressible as FILTERS on the enabled set, so they
// compose with any base policy (fixed schedules, round-robin, the anchor
// storm) without touching the runner. The migration fault harness
// (internal/migrate) drives its injected-failure proofs through these: a
// writer stalled mid-XADD across a cutover, a reader parked through two
// generations, a migrator killed mid-cutover and restarted by another
// process.
//
// Executions under faults may end INCOMPLETE (killed or starved processes
// leave operations pending, and processes blocked on conditional steps —
// World.AwaitAny — can deadlock once their waker is dead). That is recorded,
// not hidden: Execution.Complete stays false, and the history checkers treat
// the unfinished operations as pending, exactly as the formal definitions
// require.

// FaultRule reports whether proc may be scheduled at this point. grants[p] is
// the number of grants process p has received so far.
type FaultRule func(v PolicyView, grants []int, proc int) bool

// Kill crashes victim after it has received afterGrants grants: from then on
// it is never scheduled again. Kill(victim, 0) prevents it from ever running.
func Kill(victim, afterGrants int) FaultRule {
	return func(_ PolicyView, grants []int, p int) bool {
		return p != victim || grants[victim] < afterGrants
	}
}

// Stall withholds victim while the global step count is in [from, until): it
// keeps whatever operation it has in flight — mid-XADD, mid-collect — frozen
// across the window, then resumes. Stall(victim, from, 1<<62) is a kill that
// triggers at a global time instead of a grant count.
func Stall(victim, from, until int) FaultRule {
	return func(v PolicyView, _ []int, p int) bool {
		return p != victim || v.Step < from || v.Step >= until
	}
}

// Partition severs every process in side while the global step count is in
// [from, until): none of them is scheduled inside the window, then all of
// them resume. In this shared-memory model a process's steps ARE its
// messages landing, so withholding a group models a network partition
// honestly: a partitioned node keeps whatever operations it has in flight
// frozen (it does not crash), and when the partition heals those operations
// resume against whatever state the surviving side built — exactly the
// raced-handoff window an ownership-transfer protocol must survive. A
// Partition of one process is a Stall; the point of the group form is
// severing several clients at once while a migrator runs to completion.
func Partition(side []int, from, until int) FaultRule {
	severed := make(map[int]bool, len(side))
	for _, p := range side {
		severed[p] = true
	}
	return func(v PolicyView, _ []int, p int) bool {
		return !severed[p] || v.Step < from || v.Step >= until
	}
}

// FaultedPolicy wraps base so that processes suppressed by any rule are
// removed from the enabled set before base sees it. When every enabled
// process is suppressed the run stops (the remaining system is wedged by the
// injected faults); base is never shown an empty set.
func FaultedPolicy(procs int, base Policy, rules ...FaultRule) Policy {
	grants := make([]int, procs)
	return func(v PolicyView) int {
		filtered := make([]int, 0, len(v.Enabled))
		for _, p := range v.Enabled {
			ok := true
			for _, r := range rules {
				if !r(v, grants, p) {
					ok = false
					break
				}
			}
			if ok {
				filtered = append(filtered, p)
			}
		}
		if len(filtered) == 0 {
			return -1
		}
		fv := v
		fv.Enabled = filtered
		pick := base(fv)
		if pick >= 0 && pick < procs {
			grants[pick]++
		}
		return pick
	}
}
