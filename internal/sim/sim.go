// Package sim executes shared-memory algorithms written against
// internal/prim under a deterministic cooperative scheduler.
//
// Every primitive operation on a base object is one atomic step; the
// scheduler decides, at each point, which process takes its next step. A
// schedule (a sequence of process IDs) therefore determines the execution
// completely, which gives:
//
//   - deterministic replay of any interleaving,
//   - exhaustive enumeration of all interleavings of bounded programs
//     (Explore), producing the execution tree on which strong
//     linearizability is decided (see internal/history),
//   - adversarial and randomized scheduling policies (RunPolicy), and
//   - generic state reads and world forking, which model the "readable base
//     objects" and local solo simulation used by the reduction of Lemma 12.
//
// This is the paper's execution model of Section 2: an execution is a
// sequence of configurations and steps, each step being one base-object
// operation by one process; high-level invocations are events placed by the
// scheduler, and a high-level response is recorded atomically with the
// operation's last step.
package sim

import (
	"fmt"
	"strings"

	"stronglin/internal/prim"
	"stronglin/internal/spec"
)

// EventKind classifies trace events.
type EventKind int

// Event kinds.
const (
	// EventInvoke marks the invocation of a high-level operation.
	EventInvoke EventKind = iota + 1
	// EventStep marks one atomic base-object step.
	EventStep
	// EventReturn marks the response of a high-level operation; it is
	// recorded immediately after the operation's final step.
	EventReturn
)

func (k EventKind) String() string {
	switch k {
	case EventInvoke:
		return "invoke"
	case EventStep:
		return "step"
	case EventReturn:
		return "return"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one entry of an execution trace.
type Event struct {
	Kind EventKind
	Proc int
	OpID int    // dense operation identifier; see Execution.Ops
	Info string // base-object step description (EventStep only)
	Resp string // canonical response (EventReturn only)
	// LinPoint marks a step the implementation declared as the invoking
	// operation's linearization point (see World.MarkLinPoint); it feeds the
	// certificate checker history.CheckLinPointCertificate.
	LinPoint bool
}

func (e Event) String() string {
	switch e.Kind {
	case EventInvoke:
		return fmt.Sprintf("p%d:invoke#%d", e.Proc, e.OpID)
	case EventStep:
		return fmt.Sprintf("p%d:%s", e.Proc, e.Info)
	case EventReturn:
		return fmt.Sprintf("p%d:return#%d=%s", e.Proc, e.OpID, e.Resp)
	default:
		return fmt.Sprintf("p%d:?", e.Proc)
	}
}

// Op is one high-level operation of a process's program.
type Op struct {
	// Name is a human-readable description, e.g. "WriteMax(5)".
	Name string
	// Spec is the abstract operation checked against the sequential
	// specification.
	Spec spec.Op
	// Run executes the operation's implementation on behalf of thread t and
	// returns the canonical response string (matching the spec's outcome
	// encoding).
	Run func(t prim.Thread) string
}

// Program is the sequence of operations one process executes.
type Program []Op

// Setup builds the object(s) under test inside world w and returns one
// program per process. It is invoked once per run; a fresh world is used for
// every run, so Setup must allocate everything it needs from w.
type Setup func(w *World) []Program

// OpInfo describes one operation instance of an execution.
type OpInfo struct {
	ID   int
	Proc int
	Name string
	Spec spec.Op
}

// Execution is the trace of one run.
type Execution struct {
	Procs int
	Ops   []OpInfo
	// Events in global order.
	Events []Event
	// BatchStart[i] is the index in Events of the first event produced by
	// grant i; grant i produced Events[BatchStart[i]:BatchStart[i+1]] (with
	// BatchStart[len(Schedule)] == len(Events)).
	BatchStart []int
	// Schedule is the sequence of granted process IDs.
	Schedule []int
	// Enabled[i] is the sorted set of schedulable processes before grant i;
	// Enabled[len(Schedule)] is the set after the last grant.
	Enabled [][]int
	// Complete reports whether every program ran to completion.
	Complete bool
}

// Batch returns the events produced by grant i.
func (e *Execution) Batch(i int) []Event {
	return e.Events[e.BatchStart[i]:e.BatchStart[i+1]]
}

// Responses returns opID -> response for the operations that completed.
func (e *Execution) Responses() map[int]string {
	out := make(map[int]string)
	for _, ev := range e.Events {
		if ev.Kind == EventReturn {
			out[ev.OpID] = ev.Resp
		}
	}
	return out
}

// String renders the trace compactly, for failure messages.
func (e *Execution) String() string {
	parts := make([]string, len(e.Events))
	for i, ev := range e.Events {
		parts[i] = ev.String()
	}
	return strings.Join(parts, " ")
}
