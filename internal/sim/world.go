package sim

import (
	"fmt"
	"math/big"
	"sort"

	"stronglin/internal/prim"
)

// World allocates simulated base objects. When attached to a runner (inside
// Run/Explore), every primitive operation is a scheduler step; when detached
// (NewSoloWorld, or after Fork), operations execute immediately, which is how
// the reduction of Lemma 12 simulates decision sequences locally.
type World struct {
	objs   map[string]*object
	order  []string
	runner *runner // nil in solo mode
}

var _ prim.World = (*World)(nil)
var _ prim.Awaiter = (*World)(nil)

// NewSoloWorld returns a detached world in which primitive operations
// execute immediately. It is used for sequential testing of constructions
// and for the local solo simulations of the Lemma 12 reduction.
func NewSoloWorld() *World {
	return &World{objs: make(map[string]*object)}
}

func newWorld(r *runner) *World {
	return &World{objs: make(map[string]*object), runner: r}
}

type objKind int

const (
	kindInt objKind = iota + 1
	kindBig
	kindAny
)

type object struct {
	name string
	kind objKind
	i64  int64
	big  *big.Int
	val  any
}

// ObjState is a copy of one base object's state, as returned by the generic
// readable-base-object step ReadObject and consumed by Fork.
type ObjState struct {
	Kind objKind
	I64  int64
	Big  *big.Int
	Val  any
}

func (o *object) state() ObjState {
	st := ObjState{Kind: o.kind, I64: o.i64, Val: o.val}
	if o.big != nil {
		st.Big = new(big.Int).Set(o.big)
	}
	return st
}

// String renders the state for trace output.
func (s ObjState) String() string {
	switch s.Kind {
	case kindBig:
		return s.Big.String()
	case kindAny:
		return fmt.Sprintf("%v", s.Val)
	default:
		return fmt.Sprintf("%d", s.I64)
	}
}

func (w *World) alloc(name string, kind objKind) *object {
	if _, dup := w.objs[name]; dup {
		panic(fmt.Sprintf("sim: duplicate base object name %q", name))
	}
	o := &object{name: name, kind: kind}
	if kind == kindBig {
		o.big = new(big.Int)
	}
	w.objs[name] = o
	w.order = append(w.order, name)
	return o
}

// access executes one primitive step: scheduled when attached to a runner,
// immediate otherwise.
func (w *World) access(t prim.Thread, info string, fn func()) {
	if w.runner == nil {
		fn()
		return
	}
	w.runner.step(t.ID(), info, fn)
}

// AwaitAny implements prim.Awaiter: one CONDITIONAL read step on r that the
// scheduler grants only while ready accepts the register's current value (see
// procMsg.cond — between grants every process is blocked, so the predicate
// may inspect the object directly, and it is a pure function of the object
// state, keeping replay deterministic). Modelling the wait this way — instead
// of a read-and-retry spin — is what keeps exhaustive exploration finite: the
// elided reads would all return values the predicate rejects and carry no
// information, so suppressing those branches is a weak-fairness assumption,
// not a loss of generality. In solo mode an await whose condition does not
// already hold panics (there is no other process to make it true).
func (w *World) AwaitAny(t prim.Thread, r prim.AnyRegister, ready func(any) bool) any {
	sr, ok := r.(*simAnyRegister)
	if !ok || sr.w != w {
		panic("sim: AwaitAny on a register from another world")
	}
	if w.runner == nil {
		if !ready(sr.o.val) {
			panic(fmt.Sprintf("sim: AwaitAny on %q would block forever in solo mode", sr.o.name))
		}
		return sr.o.val
	}
	var v any
	w.runner.stepCond(t.ID(), sr.o.name+".await", func() bool { return ready(sr.o.val) }, func() { v = sr.o.val })
	return v
}

// ObjectNames returns the names of all allocated objects in allocation
// order. The set R of Lemma 12 ("all base objects accessed in all executions
// of A") is approximated by the objects allocated so far, which is exact for
// the executions explored.
func (w *World) ObjectNames() []string {
	out := make([]string, len(w.order))
	copy(out, w.order)
	return out
}

// ReadObject performs one atomic step that reads the full state of the named
// base object, modelling the system where "every base object provides a read
// operation [that] returns the current state of the object" (Lemma 12). The
// object must exist.
func (w *World) ReadObject(t prim.Thread, name string) ObjState {
	o, ok := w.objs[name]
	if !ok {
		panic(fmt.Sprintf("sim: ReadObject of unknown object %q", name))
	}
	var st ObjState
	w.access(t, "read-state("+name+")", func() { st = o.state() })
	return st
}

// MarkLinPoint declares the calling operation's most recent base-object
// step to be its linearization point. Constructions with fixed own-step
// linearization points (the fetch&add objects of Theorems 1 and 2) call it
// right after that step via prim.MarkLinPoint; the flag feeds the
// certificate checker, which verifies strong linearizability in time linear
// in the tree instead of by game search. A no-op in solo mode.
func (w *World) MarkLinPoint(t prim.Thread) {
	if w.runner == nil {
		return
	}
	w.runner.markLinPoint(t.ID())
}

// PeekObject returns the state of the named object without taking a step.
// It is a scheduler/adversary facility (the strong adversary observes the
// configuration), not an algorithm step; ok reports whether the object
// exists.
func (w *World) PeekObject(name string) (ObjState, bool) {
	o, ok := w.objs[name]
	if !ok {
		return ObjState{}, false
	}
	return o.state(), true
}

// LoadStates overwrites the states of existing objects from the collection,
// leaving objects not mentioned at their current state. It is used by Fork.
func (w *World) LoadStates(states map[string]ObjState) {
	names := make([]string, 0, len(states))
	for name := range states {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		o, ok := w.objs[name]
		if !ok {
			continue
		}
		st := states[name]
		if o.kind != st.Kind {
			panic(fmt.Sprintf("sim: LoadStates kind mismatch for %q", name))
		}
		o.i64 = st.I64
		o.val = st.Val
		if st.Big != nil {
			o.big = new(big.Int).Set(st.Big)
		}
	}
}

// --- prim.World implementation -------------------------------------------

// Register allocates a simulated read/write register.
func (w *World) Register(name string, init int64) prim.Register {
	o := w.alloc(name, kindInt)
	o.i64 = init
	return &simRegister{w: w, o: o}
}

// AnyRegister allocates a simulated register holding opaque values.
func (w *World) AnyRegister(name string, init any) prim.AnyRegister {
	o := w.alloc(name, kindAny)
	o.val = init
	return &simAnyRegister{w: w, o: o}
}

// TAS allocates a simulated readable test&set object.
func (w *World) TAS(name string) prim.ReadableTAS {
	o := w.alloc(name, kindInt)
	return &simTAS{w: w, o: o}
}

// TAS2 allocates a 2-process test&set restricted to processes p and q.
func (w *World) TAS2(name string, p, q int) prim.ReadableTAS {
	o := w.alloc(name, kindInt)
	return &simTAS2{simTAS: simTAS{w: w, o: o}, p: p, q: q}
}

// FetchAdd allocates a simulated unbounded fetch&add register.
func (w *World) FetchAdd(name string) prim.FetchAdd {
	o := w.alloc(name, kindBig)
	return &simFetchAdd{w: w, o: o}
}

// FetchAddInt allocates a simulated machine-word fetch&add register.
func (w *World) FetchAddInt(name string, init int64) prim.FetchAddInt {
	o := w.alloc(name, kindInt)
	o.i64 = init
	return &simFetchAddInt{w: w, o: o}
}

// MaxReg allocates a simulated atomic max register.
func (w *World) MaxReg(name string, init int64) prim.MaxReg {
	o := w.alloc(name, kindInt)
	o.i64 = init
	return &simMaxReg{w: w, o: o}
}

// Swap allocates a simulated readable swap register.
func (w *World) Swap(name string, init int64) prim.ReadableSwap {
	o := w.alloc(name, kindInt)
	o.i64 = init
	return &simSwap{w: w, o: o}
}

// CAS allocates a simulated compare&swap register.
func (w *World) CAS(name string, init int64) prim.CAS {
	o := w.alloc(name, kindInt)
	o.i64 = init
	return &simCAS{w: w, o: o}
}

// CASCell allocates a simulated compare&swap cell over opaque values.
func (w *World) CASCell(name string, init any) prim.CASCell {
	o := w.alloc(name, kindAny)
	o.val = init
	return &simCASCell{w: w, o: o}
}

type simRegister struct {
	w *World
	o *object
}

func (r *simRegister) Read(t prim.Thread) int64 {
	var v int64
	r.w.access(t, r.o.name+".read", func() { v = r.o.i64 })
	return v
}

func (r *simRegister) Write(t prim.Thread, v int64) {
	r.w.access(t, fmt.Sprintf("%s.write(%d)", r.o.name, v), func() { r.o.i64 = v })
}

type simAnyRegister struct {
	w *World
	o *object
}

func (r *simAnyRegister) ReadAny(t prim.Thread) any {
	var v any
	r.w.access(t, r.o.name+".read", func() { v = r.o.val })
	return v
}

func (r *simAnyRegister) WriteAny(t prim.Thread, v any) {
	r.w.access(t, r.o.name+".write", func() { r.o.val = v })
}

type simTAS struct {
	w *World
	o *object
}

func (s *simTAS) TestAndSet(t prim.Thread) int64 {
	var old int64
	s.w.access(t, s.o.name+".tas", func() {
		old = s.o.i64
		s.o.i64 = 1
	})
	return old
}

func (s *simTAS) Read(t prim.Thread) int64 {
	var v int64
	s.w.access(t, s.o.name+".read", func() { v = s.o.i64 })
	return v
}

type simTAS2 struct {
	simTAS
	p, q int
}

func (s *simTAS2) check(t prim.Thread) {
	if id := t.ID(); id != s.p && id != s.q {
		panic(fmt.Sprintf("sim: process %d applied an operation to 2-process test&set %q owned by processes %d and %d", id, s.o.name, s.p, s.q))
	}
}

func (s *simTAS2) TestAndSet(t prim.Thread) int64 {
	s.check(t)
	return s.simTAS.TestAndSet(t)
}

func (s *simTAS2) Read(t prim.Thread) int64 {
	s.check(t)
	return s.simTAS.Read(t)
}

type simFetchAdd struct {
	w *World
	o *object
}

func (f *simFetchAdd) FetchAdd(t prim.Thread, delta *big.Int) *big.Int {
	prev := new(big.Int)
	f.w.access(t, fmt.Sprintf("%s.fa(%s)", f.o.name, delta), func() {
		prev.Set(f.o.big)
		f.o.big.Add(f.o.big, delta)
	})
	return prev
}

type simFetchAddInt struct {
	w *World
	o *object
}

func (f *simFetchAddInt) FetchAddInt(t prim.Thread, delta int64) int64 {
	var prev int64
	f.w.access(t, fmt.Sprintf("%s.fai(%d)", f.o.name, delta), func() {
		prev = f.o.i64
		f.o.i64 += delta
	})
	return prev
}

type simMaxReg struct {
	w *World
	o *object
}

func (m *simMaxReg) WriteMax(t prim.Thread, v int64) {
	m.w.access(t, fmt.Sprintf("%s.wmax(%d)", m.o.name, v), func() {
		if v > m.o.i64 {
			m.o.i64 = v
		}
	})
}

func (m *simMaxReg) ReadMax(t prim.Thread) int64 {
	var v int64
	m.w.access(t, m.o.name+".rmax", func() { v = m.o.i64 })
	return v
}

type simSwap struct {
	w *World
	o *object
}

func (s *simSwap) Swap(t prim.Thread, v int64) int64 {
	var old int64
	s.w.access(t, fmt.Sprintf("%s.swap(%d)", s.o.name, v), func() {
		old = s.o.i64
		s.o.i64 = v
	})
	return old
}

func (s *simSwap) Read(t prim.Thread) int64 {
	var v int64
	s.w.access(t, s.o.name+".read", func() { v = s.o.i64 })
	return v
}

type simCAS struct {
	w *World
	o *object
}

func (c *simCAS) Read(t prim.Thread) int64 {
	var v int64
	c.w.access(t, c.o.name+".read", func() { v = c.o.i64 })
	return v
}

func (c *simCAS) CompareAndSwap(t prim.Thread, old, new int64) bool {
	var ok bool
	c.w.access(t, fmt.Sprintf("%s.cas(%d,%d)", c.o.name, old, new), func() {
		if c.o.i64 == old {
			c.o.i64 = new
			ok = true
		}
	})
	return ok
}

type simCASCell struct {
	w *World
	o *object
}

func (c *simCASCell) Load(t prim.Thread) any {
	var v any
	c.w.access(t, c.o.name+".load", func() { v = c.o.val })
	return v
}

func (c *simCASCell) CompareAndSwap(t prim.Thread, old, new any) bool {
	var ok bool
	c.w.access(t, c.o.name+".cas", func() {
		if c.o.val == old {
			c.o.val = new
			ok = true
		}
	})
	return ok
}

// SoloThread is a Thread for use with detached worlds.
type SoloThread int

// ID returns the process index.
func (t SoloThread) ID() int { return int(t) }
