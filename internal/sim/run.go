package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"stronglin/internal/prim"
)

// ErrNotEnabled is returned when a schedule or policy grants a process that
// has no pending step.
var ErrNotEnabled = errors.New("sim: granted process is not enabled")

// errAborted unwinds process goroutines when a run ends early.
var errAborted = errors.New("sim: run aborted")

// PolicyView is what a scheduling policy observes before each grant. World
// gives adversarial policies full read access to the configuration (the
// "strong adversary" of the randomized-programs motivation); honest policies
// ignore it.
type PolicyView struct {
	// Enabled is the sorted set of processes with a pending step.
	Enabled []int
	// Step is the number of grants made so far.
	Step int
	// World exposes PeekObject for adversarial observation.
	World *World
	// Events is the trace so far.
	Events []Event
}

// Policy picks the process to grant next, or a negative value to stop the
// run.
type Policy func(v PolicyView) int

// SchedulePolicy replays a fixed schedule, then stops.
func SchedulePolicy(schedule []int) Policy {
	return func(v PolicyView) int {
		if v.Step >= len(schedule) {
			return -1
		}
		return schedule[v.Step]
	}
}

// RandomPolicy grants a uniformly random enabled process.
func RandomPolicy(rng *rand.Rand) Policy {
	return func(v PolicyView) int {
		return v.Enabled[rng.Intn(len(v.Enabled))]
	}
}

// RoundRobinPolicy cycles through processes, skipping disabled ones.
func RoundRobinPolicy() Policy {
	next := 0
	return func(v PolicyView) int {
		for _, p := range v.Enabled {
			if p >= next {
				next = p + 1
				return p
			}
		}
		next = v.Enabled[0] + 1
		return v.Enabled[0]
	}
}

// Run executes the given fixed schedule (which may be a prefix of a complete
// execution) and returns the trace.
func Run(procs int, setup Setup, schedule []int) (*Execution, error) {
	return RunPolicy(procs, setup, SchedulePolicy(schedule), len(schedule))
}

// RunToCompletion executes with the given policy until every program
// finishes or maxSteps grants have been made.
func RunToCompletion(procs int, setup Setup, policy Policy, maxSteps int) (*Execution, error) {
	return RunPolicy(procs, setup, policy, maxSteps)
}

type msgKind int

const (
	msgYield msgKind = iota + 1
	msgOpDone
	msgProgDone
	msgPanic
)

type procMsg struct {
	kind   msgKind
	invoke bool
	opID   int
	info   string
	resp   string
	panicV any
	// cond, when non-nil, gates a CONDITIONAL step (World.AwaitAny): the
	// process is enabled only while cond reports true. The scheduler evaluates
	// it between grants — every process is blocked then, so the closure may
	// read object state directly — and it is a pure function of the object
	// states, so replays of a schedule prefix reproduce the same enabled sets
	// (which is what keeps Explore and TreeFromSchedules deterministic).
	cond func() bool
}

type procState struct {
	id    int
	grant chan struct{}
	msgs  chan procMsg
	curOp int // written only by the owning goroutine
}

type runner struct {
	procs []*procState
	abort chan struct{}
	// exec and lastStep support MarkLinPoint: lastStep[p] is the index in
	// exec.Events of process p's most recent step. The scheduler writes them
	// before granting; the granted process reads them while the scheduler is
	// blocked, so there is no race.
	exec     *Execution
	lastStep []int
}

func (r *runner) markLinPoint(proc int) {
	if idx := r.lastStep[proc]; idx >= 0 {
		r.exec.Events[idx].LinPoint = true
	}
}

func (r *runner) step(pid int, info string, fn func()) {
	r.stepCond(pid, info, nil, fn)
}

// stepCond is step with an optional enabling condition: while cond reports
// false the process is simply not schedulable (see procMsg.cond). A run whose
// only enabled processes are all condition-blocked ends incomplete — the
// deadlock is recorded, not hidden.
func (r *runner) stepCond(pid int, info string, cond func() bool, fn func()) {
	p := r.procs[pid]
	r.send(p, procMsg{kind: msgYield, opID: p.curOp, info: info, cond: cond})
	select {
	case <-p.grant:
	case <-r.abort:
		panic(errAborted)
	}
	fn()
}

func (r *runner) send(p *procState, m procMsg) {
	select {
	case p.msgs <- m:
	case <-r.abort:
		panic(errAborted)
	}
}

func (r *runner) runProc(p *procState, prog Program, ids []int) {
	defer func() {
		if rec := recover(); rec != nil {
			if err, ok := rec.(error); ok && errors.Is(err, errAborted) {
				return
			}
			// Best effort: report the panic to the scheduler unless the run
			// is already tearing down.
			select {
			case p.msgs <- procMsg{kind: msgPanic, panicV: rec}:
			case <-r.abort:
			}
		}
	}()
	th := thread{id: p.id}
	for k := range prog {
		p.curOp = ids[k]
		r.send(p, procMsg{kind: msgYield, invoke: true, opID: ids[k]})
		select {
		case <-p.grant:
		case <-r.abort:
			panic(errAborted)
		}
		resp := prog[k].Run(th)
		r.send(p, procMsg{kind: msgOpDone, opID: ids[k], resp: resp})
	}
	r.send(p, procMsg{kind: msgProgDone})
}

type thread struct{ id int }

func (t thread) ID() int { return t.id }

var _ prim.Thread = thread{}

// RunPolicy executes programs under the policy, granting at most maxSteps
// steps. The returned execution is complete if every program finished.
func RunPolicy(procs int, setup Setup, policy Policy, maxSteps int) (*Execution, error) {
	if procs < 1 {
		return nil, fmt.Errorf("sim: need at least one process, got %d", procs)
	}
	r := &runner{abort: make(chan struct{})}
	world := newWorld(r)
	programs := setup(world)
	if len(programs) != procs {
		return nil, fmt.Errorf("sim: setup returned %d programs for %d processes", len(programs), procs)
	}

	exec := &Execution{Procs: procs}
	ids := make([][]int, procs)
	next := 0
	for p, prog := range programs {
		ids[p] = make([]int, len(prog))
		for k, op := range prog {
			ids[p][k] = next
			exec.Ops = append(exec.Ops, OpInfo{ID: next, Proc: p, Name: op.Name, Spec: op.Spec})
			next++
		}
	}

	var wg sync.WaitGroup
	r.procs = make([]*procState, procs)
	r.exec = exec
	r.lastStep = make([]int, procs)
	for p := 0; p < procs; p++ {
		r.lastStep[p] = -1
		r.procs[p] = &procState{
			id:    p,
			grant: make(chan struct{}),
			msgs:  make(chan procMsg, 4),
		}
	}
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			r.runProc(r.procs[p], programs[p], ids[p])
		}(p)
	}
	defer func() {
		close(r.abort)
		wg.Wait()
	}()

	// Collect each process's initial status.
	status := make([]procMsg, procs)
	for p := 0; p < procs; p++ {
		m := <-r.procs[p].msgs
		if m.kind == msgPanic {
			return nil, fmt.Errorf("sim: process %d panicked before its first step: %v", p, m.panicV)
		}
		status[p] = m
	}

	for step := 0; ; step++ {
		enabled := enabledSet(status)
		exec.Enabled = append(exec.Enabled, enabled)
		if len(enabled) == 0 {
			// No schedulable process: either every program finished, or the
			// remaining ones are all blocked on conditional steps (a deadlock —
			// e.g. awaiting a generation flip whose migrator was killed). Only
			// the former is a complete execution.
			exec.Complete = allDone(status)
			break
		}
		if step >= maxSteps {
			break
		}
		pick := policy(PolicyView{Enabled: enabled, Step: step, World: world, Events: exec.Events})
		if pick < 0 {
			break
		}
		if pick >= procs || status[pick].kind != msgYield ||
			(status[pick].cond != nil && !status[pick].cond()) {
			return nil, fmt.Errorf("%w: process %d at step %d", ErrNotEnabled, pick, step)
		}

		exec.Schedule = append(exec.Schedule, pick)
		exec.BatchStart = append(exec.BatchStart, len(exec.Events))
		m := status[pick]
		if m.invoke {
			exec.Events = append(exec.Events, Event{Kind: EventInvoke, Proc: pick, OpID: m.opID})
		} else {
			r.lastStep[pick] = len(exec.Events)
			exec.Events = append(exec.Events, Event{Kind: EventStep, Proc: pick, OpID: m.opID, Info: m.info})
		}

		p := r.procs[pick]
		p.grant <- struct{}{}
	drain:
		for {
			m2 := <-p.msgs
			switch m2.kind {
			case msgOpDone:
				exec.Events = append(exec.Events, Event{Kind: EventReturn, Proc: pick, OpID: m2.opID, Resp: m2.resp})
				// A fresh operation must not inherit the previous one's
				// last step as a markable linearization point.
				r.lastStep[pick] = -1
			case msgYield, msgProgDone:
				status[pick] = m2
				break drain
			case msgPanic:
				return nil, fmt.Errorf("sim: process %d panicked: %v", pick, m2.panicV)
			}
		}
	}
	exec.BatchStart = append(exec.BatchStart, len(exec.Events))
	return exec, nil
}

func enabledSet(status []procMsg) []int {
	var out []int
	for p, m := range status {
		if m.kind == msgYield && (m.cond == nil || m.cond()) {
			out = append(out, p)
		}
	}
	sort.Ints(out)
	return out
}

func allDone(status []procMsg) bool {
	for _, m := range status {
		if m.kind != msgProgDone {
			return false
		}
	}
	return true
}

// RunInline executes ops sequentially, in order, on a detached world on
// behalf of the given process, returning their responses. It is how the
// Lemma 12 reduction locally simulates a decision sequence, and how
// sequential sanity tests drive constructions.
func RunInline(w *World, threadID int, ops []Op) ([]string, error) {
	if w.runner != nil {
		return nil, errors.New("sim: RunInline requires a detached world")
	}
	out := make([]string, len(ops))
	for i, op := range ops {
		out[i] = op.Run(SoloThread(threadID))
	}
	return out, nil
}
