package sim

import "strings"

// MidOp reports whether the given process has an invoked-but-unreturned
// operation in the trace.
func MidOp(events []Event, proc int) bool {
	inv, ret := 0, 0
	for _, e := range events {
		if e.Proc != proc {
			continue
		}
		switch e.Kind {
		case EventInvoke:
			inv++
		case EventReturn:
			ret++
		}
	}
	return inv > ret
}

// AnchorStormPolicy is the storm adversary of the wait-freedom progress
// witnesses (internal/core, internal/shard): the victim runs freely, but
// immediately after every step it takes on the ANCHOR register — the
// announce word whose closing read validates its combining read — the storm
// writer lands one COMPLETE write. Every one of the victim's validation
// rounds therefore has a write announced inside its window: an unhelped
// lock-free combining read retries for as long as the storm lasts (its own
// steps grow with the storm), while under helping each injected write is
// itself obliged to deposit a validated view the victim adopts within a
// fixed number of own steps. The injection points deliberately sit BETWEEN
// the victim's iterations — an even stronger adversary could split the
// two-step slot-read/witness window itself, which is the strict
// lock-freedom residue the helping docs disclose; this policy pins the
// storm every real workload produces. The anchor is matched as a prefix of
// the step's Info string (object names, e.g. "snap.R0" or "c.epoch").
func AnchorStormPolicy(victim, writer int, anchor string) Policy {
	lastInjected := -1
	return func(v PolicyView) int {
		enabled := func(p int) bool {
			for _, e := range v.Enabled {
				if e == p {
					return true
				}
			}
			return false
		}
		if !enabled(writer) {
			return victim
		}
		if !enabled(victim) {
			return writer
		}
		if MidOp(v.Events, writer) {
			return writer // finish the in-flight storm write
		}
		for i := len(v.Events) - 1; i >= 0; i-- {
			e := v.Events[i]
			if e.Proc != victim || e.Kind != EventStep {
				continue
			}
			if i > lastInjected && strings.HasPrefix(e.Info, anchor+".") {
				lastInjected = i
				return writer // land one full write right after the witness read
			}
			break
		}
		return victim
	}
}
