package sim

import (
	"errors"
	"math/rand"
	"testing"

	"stronglin/internal/prim"
	"stronglin/internal/spec"
)

// twoRegSetup: two processes; p0 writes r0 then reads r1, p1 writes r1 then
// reads r0. Each op is one primitive step. This is the classic
// store-buffering shape: under sequential consistency (which atomic steps
// give) at least one process must read 1.
func twoRegSetup(w *World) []Program {
	r0 := w.Register("r0", 0)
	r1 := w.Register("r1", 0)
	mkWrite := func(r prim.Register, name string) Op {
		return Op{
			Name: "write(" + name + ")",
			Spec: spec.MkOp("write"),
			Run: func(t prim.Thread) string {
				r.Write(t, 1)
				return spec.RespOK
			},
		}
	}
	mkRead := func(r prim.Register, name string) Op {
		return Op{
			Name: "read(" + name + ")",
			Spec: spec.MkOp("read"),
			Run: func(t prim.Thread) string {
				return spec.RespInt(r.Read(t))
			},
		}
	}
	return []Program{
		{mkWrite(r0, "r0"), mkRead(r1, "r1")},
		{mkWrite(r1, "r1"), mkRead(r0, "r0")},
	}
}

func TestRunFixedSchedule(t *testing.T) {
	// Each op is invoke + 1 step, so a process contributes 4 grants total.
	// Schedule p0 fully, then p1 fully.
	exec, err := Run(2, twoRegSetup, []int{0, 0, 0, 0, 1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !exec.Complete {
		t.Fatalf("execution incomplete: %v", exec)
	}
	resps := exec.Responses()
	if len(resps) != 4 {
		t.Fatalf("want 4 responses, got %v", resps)
	}
	// p0 ran solo first: reads r1 = 0. p1 after: reads r0 = 1.
	if resps[1] != "0" {
		t.Errorf("p0 read = %s, want 0", resps[1])
	}
	if resps[3] != "1" {
		t.Errorf("p1 read = %s, want 1", resps[3])
	}
}

func TestRunDeterministicReplay(t *testing.T) {
	sched := []int{0, 1, 0, 1, 1, 0, 0, 1}
	a, err := Run(2, twoRegSetup, sched)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(2, twoRegSetup, sched)
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("replay diverged:\n%s\n%s", a, b)
	}
}

func TestRunPrefixScheduleLeavesPending(t *testing.T) {
	exec, err := Run(2, twoRegSetup, []int{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if exec.Complete {
		t.Fatal("prefix execution marked complete")
	}
	// p0 invoked and performed its write's step; its return is recorded with
	// that step.
	resps := exec.Responses()
	if len(resps) != 1 {
		t.Fatalf("want 1 response after 2 grants, got %v", resps)
	}
}

func TestRunRejectsDisabledProc(t *testing.T) {
	_, err := Run(2, twoRegSetup, []int{5})
	if !errors.Is(err, ErrNotEnabled) {
		t.Fatalf("want ErrNotEnabled, got %v", err)
	}
}

func TestRunRejectsWrongProgramCount(t *testing.T) {
	_, err := Run(3, twoRegSetup, nil)
	if err == nil {
		t.Fatal("want error for program/process mismatch")
	}
}

func TestEnabledSetsShrinkAsProgramsFinish(t *testing.T) {
	exec, err := Run(2, twoRegSetup, []int{0, 0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	last := exec.Enabled[len(exec.Enabled)-1]
	if len(last) != 1 || last[0] != 1 {
		t.Fatalf("enabled after p0 finished = %v, want [1]", last)
	}
}

func TestResponseRecordedAtomicallyWithLastStep(t *testing.T) {
	exec, err := Run(2, twoRegSetup, []int{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	// Batch of grant 1 (p0's write step) must contain the step AND the
	// return, in that order.
	batch := exec.Batch(1)
	if len(batch) != 2 || batch[0].Kind != EventStep || batch[1].Kind != EventReturn {
		t.Fatalf("batch = %v", batch)
	}
}

func TestStoreBufferingImpossibleOutcomeNeverHappens(t *testing.T) {
	// Atomic steps are sequentially consistent: both processes reading 0 is
	// impossible. Check over every interleaving.
	tree, err := Explore(2, twoRegSetup, nil)
	if err != nil {
		t.Fatal(err)
	}
	seen00 := false
	tree.Walk(func(n *Node, trace []Event) bool {
		if !n.Complete {
			return true
		}
		var r0, r1 string
		for _, ev := range trace {
			if ev.Kind == EventReturn {
				switch ev.OpID {
				case 1:
					r0 = ev.Resp
				case 3:
					r1 = ev.Resp
				}
			}
		}
		if r0 == "0" && r1 == "0" {
			seen00 = true
		}
		return true
	})
	if seen00 {
		t.Fatal("store-buffering outcome (0,0) observed under atomic-step semantics")
	}
}

func TestExploreCountsMatchClosedForm(t *testing.T) {
	// Two processes with 4 grants each: leaves = C(8,4) = 70; nodes =
	// sum over lattice paths = C(8,4) interior structure — check leaves and
	// that every leaf is complete.
	tree, err := Explore(2, twoRegSetup, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Leaves != 70 {
		t.Fatalf("leaves = %d, want 70", tree.Leaves)
	}
	if tree.Truncated {
		t.Fatal("tree unexpectedly truncated")
	}
	incomplete := 0
	tree.Walk(func(n *Node, _ []Event) bool {
		if len(n.Children) == 0 && !n.Complete {
			incomplete++
		}
		return true
	})
	if incomplete != 0 {
		t.Fatalf("%d incomplete leaves", incomplete)
	}
}

func TestExploreTruncation(t *testing.T) {
	tree, err := Explore(2, twoRegSetup, &ExploreOptions{MaxNodes: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !tree.Truncated {
		t.Fatal("want truncated tree")
	}
	if tree.Nodes > 11 {
		t.Fatalf("nodes = %d, want <= 11", tree.Nodes)
	}
}

func TestRunPolicyRandomCompletes(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 50; i++ {
		exec, err := RunToCompletion(2, twoRegSetup, RandomPolicy(rng), 1000)
		if err != nil {
			t.Fatal(err)
		}
		if !exec.Complete {
			t.Fatalf("random run %d incomplete", i)
		}
	}
}

func TestRoundRobinPolicy(t *testing.T) {
	exec, err := RunToCompletion(2, twoRegSetup, RoundRobinPolicy(), 1000)
	if err != nil {
		t.Fatal(err)
	}
	if !exec.Complete {
		t.Fatal("round-robin run incomplete")
	}
	// Alternation: first two grants must be p0 then p1.
	if exec.Schedule[0] != 0 || exec.Schedule[1] != 1 {
		t.Fatalf("schedule = %v, want alternation", exec.Schedule[:2])
	}
}

func TestPanicInOperationSurfacesAsError(t *testing.T) {
	setup := func(w *World) []Program {
		r := w.Register("r", 0)
		return []Program{{
			{
				Name: "boom",
				Spec: spec.MkOp("boom"),
				Run: func(t prim.Thread) string {
					r.Read(t)
					panic("kaboom")
				},
			},
		}}
	}
	_, err := Run(1, setup, []int{0, 0})
	if err == nil {
		t.Fatal("want error from panicking operation")
	}
}

func TestReadObjectIsAStep(t *testing.T) {
	setup := func(w *World) []Program {
		w.Register("r", 42)
		return []Program{{
			{
				Name: "peek",
				Spec: spec.MkOp("peek"),
				Run: func(t prim.Thread) string {
					st := w.ReadObject(t, "r")
					return st.String()
				},
			},
		}}
	}
	exec, err := Run(1, setup, []int{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if got := exec.Responses()[0]; got != "42" {
		t.Fatalf("ReadObject = %s, want 42", got)
	}
	// The read-state access must appear as a step event.
	foundStep := false
	for _, ev := range exec.Events {
		if ev.Kind == EventStep && ev.Info == "read-state(r)" {
			foundStep = true
		}
	}
	if !foundStep {
		t.Fatal("read-state step not recorded")
	}
}

func TestSoloWorldInlineExecution(t *testing.T) {
	w := NewSoloWorld()
	r := w.Register("r", 0)
	ops := []Op{
		{Name: "w", Spec: spec.MkOp("w"), Run: func(t prim.Thread) string { r.Write(t, 9); return spec.RespOK }},
		{Name: "r", Spec: spec.MkOp("r"), Run: func(t prim.Thread) string { return spec.RespInt(r.Read(t)) }},
	}
	out, err := RunInline(w, 0, ops)
	if err != nil {
		t.Fatal(err)
	}
	if out[1] != "9" {
		t.Fatalf("inline read = %s, want 9", out[1])
	}
}

func TestLoadStatesFork(t *testing.T) {
	// Simulate the Lemma 12 fork: collect states from one world, load them
	// into a fresh world built by the same setup, continue solo.
	build := func(w *World) prim.Register { return w.Register("r", 0) }

	w1 := NewSoloWorld()
	r1 := build(w1)
	r1.Write(SoloThread(0), 77)
	st, ok := w1.PeekObject("r")
	if !ok {
		t.Fatal("PeekObject failed")
	}

	w2 := NewSoloWorld()
	r2 := build(w2)
	w2.LoadStates(map[string]ObjState{"r": st})
	if got := r2.Read(SoloThread(1)); got != 77 {
		t.Fatalf("forked read = %d, want 77", got)
	}
	// Mutating the fork must not affect the original.
	r2.Write(SoloThread(1), 5)
	st1, _ := w1.PeekObject("r")
	if st1.I64 != 77 {
		t.Fatalf("fork mutation leaked into original: %v", st1)
	}
}

func TestSimPrimitivesSemantics(t *testing.T) {
	w := NewSoloWorld()
	th := SoloThread(0)

	ts := w.TAS("ts")
	if ts.Read(th) != 0 || ts.TestAndSet(th) != 0 || ts.TestAndSet(th) != 1 || ts.Read(th) != 1 {
		t.Error("TAS semantics broken")
	}

	sw := w.Swap("sw", 3)
	if sw.Swap(th, 8) != 3 || sw.Read(th) != 8 {
		t.Error("Swap semantics broken")
	}

	c := w.CAS("c", 0)
	if c.CompareAndSwap(th, 1, 2) || !c.CompareAndSwap(th, 0, 2) || c.Read(th) != 2 {
		t.Error("CAS semantics broken")
	}

	type nd struct{ x int }
	n1, n2 := &nd{1}, &nd{2}
	cc := w.CASCell("cc", n1)
	if cc.Load(th) != any(n1) || cc.CompareAndSwap(th, n2, n1) || !cc.CompareAndSwap(th, n1, n2) {
		t.Error("CASCell semantics broken")
	}
}

func TestTAS2DisciplineInSim(t *testing.T) {
	w := NewSoloWorld()
	ts := w.TAS2("t2", 0, 1)
	if ts.TestAndSet(SoloThread(0)) != 0 {
		t.Fatal("owner access failed")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("third-party access did not panic")
		}
	}()
	ts.TestAndSet(SoloThread(2))
}

func TestDuplicateObjectNamePanics(t *testing.T) {
	w := NewSoloWorld()
	w.Register("x", 0)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate name did not panic")
		}
	}()
	w.TAS("x")
}

func TestExecutionStringIsStable(t *testing.T) {
	exec, err := Run(2, twoRegSetup, []int{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	want := "p0:invoke#0 p0:r0.write(1) p0:return#0=ok"
	if got := exec.String(); got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}
