package sim

import (
	"testing"

	"stronglin/internal/prim"
	"stronglin/internal/spec"
)

func TestTreeFromSchedulesMergesCommonPrefix(t *testing.T) {
	full := []int{0, 0, 0, 0, 1, 1, 1, 1}
	alt := []int{0, 0, 1, 1, 0, 0, 1, 1}
	tree, err := TreeFromSchedules(2, twoRegSetup, [][]int{full, alt})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Leaves != 2 {
		t.Fatalf("leaves = %d, want 2", tree.Leaves)
	}
	// Shared prefix of length 2 → root + 2 shared nodes + 2×6 distinct.
	if tree.Nodes != 1+2+12 {
		t.Fatalf("nodes = %d, want 15", tree.Nodes)
	}
	// Both leaves complete.
	complete := 0
	tree.Walk(func(n *Node, _ []Event) bool {
		if len(n.Children) == 0 && n.Complete {
			complete++
		}
		return true
	})
	if complete != 2 {
		t.Fatalf("complete leaves = %d, want 2", complete)
	}
}

func TestTreeFromSchedulesPrefixSchedule(t *testing.T) {
	// A schedule that is a strict prefix of another shares all its nodes.
	long := []int{0, 0, 0, 0}
	short := []int{0, 0}
	tree, err := TreeFromSchedules(2, twoRegSetup, [][]int{long, short})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Nodes != 5 {
		t.Fatalf("nodes = %d, want 5 (root + 4 chain)", tree.Nodes)
	}
	if tree.Leaves != 1 {
		t.Fatalf("leaves = %d, want 1", tree.Leaves)
	}
}

func TestTreeFromSchedulesRejectsEmpty(t *testing.T) {
	if _, err := TreeFromSchedules(2, twoRegSetup, nil); err == nil {
		t.Fatal("want error for no schedules")
	}
}

func TestTreeFromSchedulesRejectsInvalidSchedule(t *testing.T) {
	if _, err := TreeFromSchedules(2, twoRegSetup, [][]int{{7}}); err == nil {
		t.Fatal("want error for disabled process")
	}
}

func TestMarkLinPointFlagsCurrentStep(t *testing.T) {
	setup := func(w *World) []Program {
		r := w.Register("r", 0)
		return []Program{{
			{
				Name: "op",
				Spec: spec.MkOp("op"),
				Run: func(t prim.Thread) string {
					r.Read(t) // step 0: unmarked
					r.Write(t, 1)
					w.MarkLinPoint(t) // marks the write
					r.Read(t)         // step 2: unmarked
					return spec.RespOK
				},
			},
		}}
	}
	exec, err := Run(1, setup, []int{0, 0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	var marked []string
	for _, ev := range exec.Events {
		if ev.LinPoint {
			marked = append(marked, ev.Info)
		}
	}
	if len(marked) != 1 || marked[0] != "r.write(1)" {
		t.Fatalf("marked steps = %v, want [r.write(1)]", marked)
	}
}

func TestMarkLinPointNoopInSoloWorld(t *testing.T) {
	w := NewSoloWorld()
	w.Register("r", 0)
	// Must not panic with no runner attached.
	w.MarkLinPoint(SoloThread(0))
}

func TestMarkLinPointBeforeAnyStepIsIgnored(t *testing.T) {
	setup := func(w *World) []Program {
		r := w.Register("r", 0)
		return []Program{{
			{
				Name: "op",
				Spec: spec.MkOp("op"),
				Run: func(t prim.Thread) string {
					w.MarkLinPoint(t) // no step taken yet: ignored
					r.Read(t)
					return spec.RespOK
				},
			},
		}}
	}
	exec, err := Run(1, setup, []int{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range exec.Events {
		if ev.LinPoint {
			t.Fatalf("unexpected lin point on %v", ev)
		}
	}
}

func TestMarkLinPointDoesNotLeakAcrossOps(t *testing.T) {
	// op2 marks before taking any of ITS steps: the mark must not land on
	// op1's last step.
	setup := func(w *World) []Program {
		r := w.Register("r", 0)
		op1 := Op{
			Name: "op1",
			Spec: spec.MkOp("op1"),
			Run: func(t prim.Thread) string {
				r.Write(t, 1)
				return spec.RespOK
			},
		}
		op2 := Op{
			Name: "op2",
			Spec: spec.MkOp("op2"),
			Run: func(t prim.Thread) string {
				w.MarkLinPoint(t) // premature: must be ignored
				r.Write(t, 2)
				return spec.RespOK
			},
		}
		return []Program{{op1, op2}}
	}
	exec, err := Run(1, setup, []int{0, 0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range exec.Events {
		if ev.LinPoint {
			t.Fatalf("premature mark landed on %v", ev)
		}
	}
}
