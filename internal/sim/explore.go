package sim

import "fmt"

// Node is one vertex of an execution tree: the state reached after granting
// the schedule that labels the path from the root.
type Node struct {
	// Proc is the process granted on the edge leading here (-1 at the root).
	Proc int
	// Events are the trace events appended by that grant (an invocation, or
	// a step possibly followed by returns).
	Events []Event
	// Enabled is the sorted set of schedulable processes at this node.
	Enabled []int
	// Complete reports whether every program has finished here.
	Complete bool
	// Children are the successor nodes, in Enabled order.
	Children []*Node
}

// Tree is the complete execution tree of a bounded configuration: every
// interleaving of the programs' steps. Strong linearizability is a property
// of exactly this tree (a prefix-closed linearization function assigns a
// linearization to every node, monotonically along every path).
type Tree struct {
	Procs int
	Ops   []OpInfo
	Root  *Node
	// Nodes and Leaves count the tree's vertices and maximal executions.
	Nodes  int
	Leaves int
	// Truncated reports that exploration hit MaxNodes or MaxDepth; verdicts
	// on a truncated tree cover only the explored prefix.
	Truncated bool
}

// ExploreOptions bound the exploration.
type ExploreOptions struct {
	// MaxNodes caps the number of tree nodes (default 400000).
	MaxNodes int
	// MaxDepth caps the schedule length (default 4096); it guards against
	// non-terminating programs.
	MaxDepth int
}

func (o *ExploreOptions) withDefaults() ExploreOptions {
	out := ExploreOptions{MaxNodes: 400000, MaxDepth: 4096}
	if o != nil {
		if o.MaxNodes > 0 {
			out.MaxNodes = o.MaxNodes
		}
		if o.MaxDepth > 0 {
			out.MaxDepth = o.MaxDepth
		}
	}
	return out
}

// Explore enumerates every interleaving of the configuration's primitive
// steps by stateless replay and returns the execution tree.
func Explore(procs int, setup Setup, opts *ExploreOptions) (*Tree, error) {
	o := opts.withDefaults()

	first, err := Run(procs, setup, nil)
	if err != nil {
		return nil, fmt.Errorf("explore root: %w", err)
	}
	tree := &Tree{
		Procs: procs,
		Ops:   first.Ops,
		Root: &Node{
			Proc:     -1,
			Enabled:  first.Enabled[0],
			Complete: first.Complete,
		},
		Nodes: 1,
	}
	x := &explorer{procs: procs, setup: setup, opts: o, tree: tree}
	if err := x.dfs(tree.Root, nil); err != nil {
		return nil, err
	}
	return tree, nil
}

type explorer struct {
	procs int
	setup Setup
	opts  ExploreOptions
	tree  *Tree
}

func (x *explorer) dfs(n *Node, schedule []int) error {
	if n.Complete || len(n.Enabled) == 0 {
		x.tree.Leaves++
		return nil
	}
	if len(schedule) >= x.opts.MaxDepth {
		x.tree.Truncated = true
		return nil
	}
	for _, p := range n.Enabled {
		if x.tree.Nodes >= x.opts.MaxNodes {
			x.tree.Truncated = true
			return nil
		}
		sched := make([]int, len(schedule)+1)
		copy(sched, schedule)
		sched[len(schedule)] = p

		exec, err := Run(x.procs, x.setup, sched)
		if err != nil {
			return fmt.Errorf("explore schedule %v: %w", sched, err)
		}
		child := &Node{
			Proc:     p,
			Events:   exec.Batch(len(sched) - 1),
			Enabled:  exec.Enabled[len(sched)],
			Complete: exec.Complete,
		}
		n.Children = append(n.Children, child)
		x.tree.Nodes++
		if err := x.dfs(child, sched); err != nil {
			return err
		}
	}
	return nil
}

// TreeFromSchedules builds the execution tree spanned by the given
// schedules: the union of their paths, merged on common prefixes. Each
// schedule is replayed independently (replay is deterministic, so shared
// prefixes agree).
//
// The result is a PRUNED tree — a subtree of the full interleaving tree with
// some children omitted. Refuting strong linearizability on a pruned tree is
// sound (a prefix-closed linearization function for the full tree restricts
// to one for any subtree), and it sidesteps exploring configurations whose
// full trees are too large; verifying on a pruned tree proves nothing.
func TreeFromSchedules(procs int, setup Setup, schedules [][]int) (*Tree, error) {
	if len(schedules) == 0 {
		return nil, fmt.Errorf("sim: TreeFromSchedules needs at least one schedule")
	}
	first, err := Run(procs, setup, schedules[0])
	if err != nil {
		return nil, err
	}
	tree := &Tree{
		Procs: procs,
		Ops:   first.Ops,
		Root: &Node{
			Proc:    -1,
			Enabled: first.Enabled[0],
		},
		Nodes: 1,
	}
	for _, sched := range schedules {
		exec, err := Run(procs, setup, sched)
		if err != nil {
			return nil, fmt.Errorf("sim: schedule %v: %w", sched, err)
		}
		cur := tree.Root
		for i, p := range sched {
			var child *Node
			for _, c := range cur.Children {
				if c.Proc == p {
					child = c
					break
				}
			}
			if child == nil {
				// A node with no enabled process is only Complete if every
				// program finished — conditional steps (World.AwaitAny) can
				// leave processes blocked with work outstanding.
				child = &Node{
					Proc:     p,
					Events:   exec.Batch(i),
					Enabled:  exec.Enabled[i+1],
					Complete: len(exec.Enabled[i+1]) == 0 && exec.Complete,
				}
				cur.Children = append(cur.Children, child)
				tree.Nodes++
			}
			cur = child
		}
	}
	// Count leaves.
	tree.Walk(func(n *Node, _ []Event) bool {
		if len(n.Children) == 0 {
			tree.Leaves++
		}
		return true
	})
	return tree, nil
}

// Walk visits every node of the tree in depth-first order, passing the
// cumulative event trace from the root. It stops early if fn returns false
// for a node (its subtree is skipped).
func (t *Tree) Walk(fn func(n *Node, trace []Event) bool) {
	var trace []Event
	var rec func(n *Node)
	rec = func(n *Node) {
		before := len(trace)
		trace = append(trace, n.Events...)
		if fn(n, trace) {
			for _, c := range n.Children {
				rec(c)
			}
		}
		trace = trace[:before]
	}
	rec(t.Root)
}
