package pool

import (
	"sync"
	"sync/atomic"
	"testing"

	"stronglin/internal/prim"
	"stronglin/internal/shard"
)

func TestPoolAcquireReleaseBasic(t *testing.T) {
	p := New(prim.NewRealWorld(), "p", 3)
	if p.Lanes() != 3 {
		t.Fatalf("Lanes = %d, want 3", p.Lanes())
	}
	a, b, c := p.Acquire(), p.Acquire(), p.Acquire()
	seen := map[int]bool{a.Thread().ID(): true, b.Thread().ID(): true, c.Thread().ID(): true}
	if len(seen) != 3 {
		t.Fatalf("three leases share a lane: %d, %d, %d", a.Thread().ID(), b.Thread().ID(), c.Thread().ID())
	}
	if got := p.InUse(); got != 3 {
		t.Fatalf("InUse = %d, want 3", got)
	}
	b.Release()
	if got := p.InUse(); got != 2 {
		t.Fatalf("InUse after release = %d, want 2", got)
	}
	d := p.Acquire()
	if id := d.Thread().ID(); id != b.Thread().ID() {
		t.Fatalf("reacquired lane %d, want the released lane %d", id, b.Thread().ID())
	}
	a.Release()
	c.Release()
	d.Release()
	if got := p.Acquires(prim.RealThread(0)); got != 4 {
		t.Fatalf("Acquires = %d, want 4", got)
	}
}

func TestPoolTryAcquire(t *testing.T) {
	p := New(prim.NewRealWorld(), "p", 1)
	l, ok := p.TryAcquire()
	if !ok {
		t.Fatal("TryAcquire on an idle pool failed")
	}
	if _, ok := p.TryAcquire(); ok {
		t.Fatal("TryAcquire on an exhausted pool succeeded")
	}
	l.Release()
	l2, ok := p.TryAcquire()
	if !ok {
		t.Fatal("TryAcquire after release failed")
	}
	l2.Release()
}

func TestPoolDoubleReleasePanics(t *testing.T) {
	p := New(prim.NewRealWorld(), "p", 2)
	l := p.Acquire()
	l.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("second Release did not panic")
		}
	}()
	l.Release()
}

// TestPoolStaleReleaseAfterReacquisitionPanics is the nastier double-release:
// the lane has already been leased to someone else, so a silent release would
// hand the new holder's identity to a third party. The generation stamp must
// catch it.
func TestPoolStaleReleaseAfterReacquisitionPanics(t *testing.T) {
	p := New(prim.NewRealWorld(), "p", 1)
	stale := p.Acquire()
	stale.Release()
	fresh := p.Acquire() // same lane, new generation
	defer fresh.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("stale Release against a re-leased lane did not panic")
		}
		if got := p.InUse(); got != 1 {
			t.Fatalf("InUse after rejected stale release = %d, want 1", got)
		}
	}()
	stale.Release()
}

func TestPoolZeroLeasePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Release of zero-value Lease did not panic")
		}
	}()
	var l Lease
	l.Release()
}

// TestPoolLaneExclusivityUnderChurn floods a small pool from many goroutines
// and asserts the leasing invariant: at no instant do two goroutines hold the
// same lane. Run under -race this also checks the happens-before edges of the
// admission channel and the swap registers.
func TestPoolLaneExclusivityUnderChurn(t *testing.T) {
	const lanes, workers, rounds = 4, 32, 200
	p := New(prim.NewRealWorld(), "p", lanes)
	holders := make([]atomic.Int32, lanes)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				l := p.Acquire()
				lane := l.Thread().ID()
				if h := holders[lane].Add(1); h != 1 {
					t.Errorf("lane %d held by %d goroutines", lane, h)
				}
				holders[lane].Add(-1)
				l.Release()
			}
		}()
	}
	wg.Wait()
	if got := p.InUse(); got != 0 {
		t.Fatalf("InUse after churn = %d, want 0", got)
	}
	if got := p.Acquires(prim.RealThread(0)); got != workers*rounds {
		t.Fatalf("Acquires = %d, want %d", got, workers*rounds)
	}
}

// TestPoolWithShardedCounter is the integration the pool exists for: many
// anonymous goroutines drive an n-process sharded counter through leased
// identities, and no increment is lost.
func TestPoolWithShardedCounter(t *testing.T) {
	const lanes, workers, incs = 4, 16, 100
	w := prim.NewRealWorld()
	p := New(w, "p", lanes)
	c := shard.NewCounter(w, "c", lanes, 2)
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < incs; i++ {
				p.With(func(t prim.RealThread) { c.Inc(t) })
			}
		}()
	}
	wg.Wait()
	var got int64
	p.With(func(t prim.RealThread) { got = c.Read(t) })
	if got != workers*incs {
		t.Fatalf("counter = %d, want %d", got, workers*incs)
	}
}
